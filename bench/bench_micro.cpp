// MICRO — google-benchmark microbenchmarks for the substrates: the crypto
// primitives SecMLR leans on, the event queue the simulator leans on, and
// whole-scenario throughput. Not a paper artefact; supports SECOVH's cost
// model and documents simulator capacity.

#include <benchmark/benchmark.h>

#include "core/wmsn.hpp"
#include "crypto/ctr.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/speck.hpp"
#include "crypto/tesla.hpp"
#include "mesh/mesh_routing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace wmsn;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    auto digest = crypto::Sha256::hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  crypto::Key key{};
  key.fill(0x11);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    auto mac = crypto::HmacSha256::mac(key, data);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(32)->Arg(256);

void BM_PacketMac(benchmark::State& state) {
  crypto::Key key{};
  key.fill(0x22);
  const Bytes msg(48, 0x55);  // a typical SecMLR MAC input
  std::uint64_t counter = 0;
  for (auto _ : state) {
    auto tag = crypto::packetMac(key, ++counter, msg);
    benchmark::DoNotOptimize(tag);
  }
}
BENCHMARK(BM_PacketMac);

void BM_SpeckBlock(benchmark::State& state) {
  crypto::Key key{};
  key.fill(0x33);
  crypto::Speck64 cipher(key);
  crypto::Speck64::Block block{};
  for (auto _ : state) {
    block = cipher.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SpeckBlock);

void BM_SpeckCtr24B(benchmark::State& state) {
  crypto::Key key{};
  key.fill(0x44);
  crypto::SpeckCtr ctr(key);
  const Bytes reading(24, 0x77);  // one sensor reading
  std::uint64_t counter = 0;
  for (auto _ : state) {
    auto out = ctr.encrypt(++counter, reading);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * 24);
}
BENCHMARK(BM_SpeckCtr24B);

void BM_TeslaChainBuild(benchmark::State& state) {
  crypto::Key seed{};
  seed.fill(0x66);
  for (auto _ : state) {
    crypto::TeslaChain chain(seed, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(chain.commitment());
  }
}
BENCHMARK(BM_TeslaChainBuild)->Arg(64)->Arg(1024)->Arg(8192);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      queue.push(sim::Time{(t * 7919 + i * 131) % 100000}, [] {});
    for (int i = 0; i < 64; ++i) queue.pop();
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_MeshRecompute(benchmark::State& state) {
  Rng rng(5);
  mesh::MeshTopologyParams params;
  params.wmrCount = static_cast<std::size_t>(state.range(0));
  const auto topo = mesh::makeMeshTopology(
      params, {{100, 100}, {500, 500}, {900, 100}}, rng);
  mesh::MeshRoutingTable table(topo);
  std::vector<bool> alive(topo.nodes.size(), true);
  for (auto _ : state) {
    table.recompute(alive);
    benchmark::DoNotOptimize(table.hopsToBase(0));
  }
}
BENCHMARK(BM_MeshRecompute)->Arg(9)->Arg(25);

void BM_FullScenarioRound(benchmark::State& state) {
  // Simulated-seconds-per-wall-second for a 100-node MLR round.
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 100;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 6;
  cfg.rounds = 1;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 3;
  for (auto _ : state) {
    auto result = core::runScenario(cfg);
    benchmark::DoNotOptimize(result.delivered);
  }
}
BENCHMARK(BM_FullScenarioRound)->Unit(benchmark::kMillisecond);

void BM_SecMlrScenarioRound(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kSecMlr;
  cfg.sensorCount = 100;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 6;
  cfg.rounds = 1;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 3;
  for (auto _ : state) {
    auto result = core::runScenario(cfg);
    benchmark::DoNotOptimize(result.delivered);
  }
}
BENCHMARK(BM_SecMlrScenarioRound)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
