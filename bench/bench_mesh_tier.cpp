// MESH — exercises the three-tier architecture of §3.2 (Fig. 1): three
// sensor networks, each with its own gateways, backhauled over a WMR mesh
// to a base station ("Internet"). Measures end-to-end delivery, per-tier
// latency, backhaul load balance, and self-healing when WMRs fail (§3.1:
// "if one node drops out of the network … its neighbors simply find
// another route").

#include "bench_util.hpp"
#include "util/require.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("MESH", "three-tier end-to-end delivery and self-healing",
                "sensor tier (802.15.4) → WMG/WMR mesh (802.11) → base "
                "station; mesh self-heals around router failures (§3)");

  sim::Simulator simulator;
  Rng rng(99);

  // --- build three sensor networks, 2 gateways each -------------------------
  std::vector<std::unique_ptr<net::SensorNetwork>> networks;
  std::vector<std::unique_ptr<routing::ProtocolStack>> stacks;
  std::vector<net::Point> wmgBackhaulPositions;

  for (int subnet = 0; subnet < 3; ++subnet) {
    net::DeploymentParams dp;
    dp.sensorCount = 50;
    dp.gatewayCount = 2;
    dp.width = 150;
    dp.height = 150;
    net::Deployment d;
    Rng layoutRng(100 + static_cast<std::uint64_t>(subnet));
    for (int attempt = 0;; ++attempt) {
      d = net::uniformDeployment(dp, layoutRng);
      if (net::sensorsConnected(d.sensors, dp.radioRange) &&
          net::placesAttached(d.gateways, d.sensors, dp.radioRange)) break;
      if (attempt > 100) throw wmsn::PreconditionError("no subnet layout");
    }

    net::SensorNetworkParams params;
    params.seed = 1000 + static_cast<std::uint64_t>(subnet);
    auto network = std::make_unique<net::SensorNetwork>(
        simulator, std::make_unique<net::UnitDiskRadio>(dp.radioRange),
        params);
    routing::NetworkKnowledge knowledge;
    knowledge.feasiblePlaces = d.gateways;
    for (const auto& s : d.sensors) network->addSensor(s);
    for (const auto& g : d.gateways)
      knowledge.gatewayIds.push_back(network->addGateway(g));
    auto stack = std::make_unique<routing::ProtocolStack>(
        *network, knowledge,
        [](net::SensorNetwork& n, net::NodeId id,
           const routing::NetworkKnowledge& k) {
          return std::make_unique<routing::MlrRouting>(n, id, k);
        });
    stack->startAll();
    // Each subnet occupies its own corner of the 1200x1200 backhaul plane.
    const double ox = 150.0 + 450.0 * subnet;
    for (const auto& g : d.gateways)
      wmgBackhaulPositions.push_back({ox + g.x, 120.0 + g.y});

    networks.push_back(std::move(network));
    stacks.push_back(std::move(stack));
  }

  // --- the mesh tier ----------------------------------------------------------
  mesh::MeshTopologyParams meshParams;
  meshParams.wmrCount = 12;
  meshParams.width = 1200;
  meshParams.height = 900;
  meshParams.linkRange = 360;
  auto topology = mesh::makeMeshTopology(meshParams, wmgBackhaulPositions, rng);
  mesh::MeshNetwork meshNet(simulator, topology, {}, rng.fork());
  mesh::WmsnStack wmsn(meshNet);

  std::size_t wmgIndex = 0;
  for (std::size_t subnet = 0; subnet < networks.size(); ++subnet) {
    std::map<net::NodeId, mesh::MeshNodeId> mapping;
    for (net::NodeId gw : networks[subnet]->gatewayIds())
      mapping[gw] = static_cast<mesh::MeshNodeId>(wmgIndex++);
    wmsn.attach(*networks[subnet], mapping);
  }

  // --- drive 8 rounds; fail two WMRs at round 4 --------------------------------
  constexpr int kRounds = 8;
  const auto wmrIds = topology.idsOf(mesh::MeshNodeKind::kWmr);
  Rng trafficRng(7);

  std::vector<std::uint64_t> atBasePerRound;
  std::uint64_t lastAtBase = 0;

  for (int round = 0; round < kRounds; ++round) {
    if (round == 4) {
      meshNet.setNodeAlive(wmrIds[0], false);
      meshNet.setNodeAlive(wmrIds[1], false);
    }
    for (std::size_t subnet = 0; subnet < networks.size(); ++subnet) {
      stacks[subnet]->beginRound(static_cast<std::uint32_t>(round));
      if (round == 0) {
        for (std::size_t g = 0; g < networks[subnet]->gatewayIds().size();
             ++g) {
          const net::NodeId gwId = networks[subnet]->gatewayIds()[g];
          dynamic_cast<routing::MlrRouting&>(stacks[subnet]->at(gwId))
              .announceMove(static_cast<std::uint16_t>(g), routing::kNoPlace,
                            0);
        }
      }
      for (net::NodeId s : networks[subnet]->sensorIds()) {
        const auto delay =
            sim::Time::seconds(4.0 + trafficRng.uniform(0.0, 12.0));
        simulator.schedule(delay, [&stacks, subnet, s] {
          stacks[subnet]->at(s).originate(Bytes(24, 0x33));
        });
      }
    }
    simulator.runUntil(simulator.now() + sim::Time::seconds(20));
    atBasePerRound.push_back(wmsn.readingsAtBase() - lastAtBase);
    lastAtBase = wmsn.readingsAtBase();
  }

  // --- report -------------------------------------------------------------------
  TextTable perRound({"round", "readings at base", "note"});
  for (int r = 0; r < kRounds; ++r)
    perRound.addRow({TextTable::num(r), TextTable::num(atBasePerRound[static_cast<std::size_t>(r)]),
                     r == 4 ? "2 WMRs fail here" : ""});
  core::printSection(std::cout, "per-round base-station arrivals", perRound);

  std::uint64_t sensed = 0, atGw = wmsn.readingsAtGateways();
  for (const auto& n : networks) sensed += n->stats().generated();

  TextTable totals({"stage", "count", "ratio"});
  totals.addRow({"readings generated", TextTable::num(sensed), "1.000"});
  totals.addRow({"delivered to a WMG (tier 1)", TextTable::num(atGw),
                 TextTable::num(static_cast<double>(atGw) /
                                    static_cast<double>(sensed), 3)});
  totals.addRow({"delivered to base (tier 2)",
                 TextTable::num(wmsn.readingsAtBase()),
                 TextTable::num(static_cast<double>(wmsn.readingsAtBase()) /
                                    static_cast<double>(sensed), 3)});
  core::printSection(std::cout, "end-to-end funnel", totals);

  TextTable meshStats({"metric", "value"});
  meshStats.addRow({"mesh hops (mean)",
                    TextTable::num(meshNet.hopStats().count()
                                       ? meshNet.hopStats().mean()
                                       : 0.0, 2)});
  meshStats.addRow({"mesh latency ms (mean)",
                    TextTable::num(meshNet.latencyStats().count()
                                       ? meshNet.latencyStats().mean() * 1e3
                                       : 0.0, 3)});
  meshStats.addRow({"backhaul drops", TextTable::num(meshNet.dropped())});
  std::vector<double> loads;
  for (const auto& [node, count] : meshNet.forwardLoad())
    loads.push_back(static_cast<double>(count));
  meshStats.addRow({"backhaul load Jain", TextTable::num(jainFairness(loads), 3)});
  core::printSection(std::cout, "mesh-tier statistics", meshStats);

  CsvWriter csv({"round", "at_base"});
  for (int r = 0; r < kRounds; ++r)
    csv.addRow({TextTable::num(r), TextTable::num(atBasePerRound[static_cast<std::size_t>(r)])});
  bench::maybeWriteCsv(args, csv);

  std::cout << "expected shape: arrivals dip at most briefly when the WMRs "
               "die — link-state recomputation routes around them (some "
               "drop only if a WMG is partitioned outright).\n";
  return 0;
}
