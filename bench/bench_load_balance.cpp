// LOADBAL — §4.3 "Multiple-Gateway Based Fault Tolerance, Load Balance and
// QoS": "if too [much] traffic is forwarded to an overloaded gateway …
// other gateways are under [a] starvation state. Therefore, it is necessary
// to … redirect parts of network traffic to the starved gateways."
//
// Stressor: §4.2's forest-fire burst — sensors near gateway 0's region
// suddenly report 4× as often. Compares MLR with and without the
// load-advisory mechanism (overloaded gateways flood a congestion
// notification; sensors penalise them for a round).

#include "bench_util.hpp"

namespace {

using namespace wmsn;

struct LoadResult {
  core::RunResult run;
  std::vector<double> perRoundJain;
};

LoadResult runCase(bool loadBalancing) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 120;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 6;
  cfg.gatewaysMove = false;  // isolate the load-balance effect
  cfg.width = 220;
  cfg.height = 220;
  cfg.rounds = 8;
  cfg.packetsPerSensorPerRound = 1;
  cfg.hotspot.enabled = true;
  cfg.hotspot.placeOrdinal = 0;
  cfg.hotspot.radius = 80.0;
  cfg.hotspot.extraPacketsPerSensor = 4;
  cfg.hotspot.startRound = 2;
  if (loadBalancing) {
    // Fair share would be n*T/m = 40 packets/round; advise above 1.5x that.
    cfg.mlr.loadAdvisoryThreshold = 60;
    cfg.mlr.loadPenaltyHops = 3.0;
  }
  cfg.seed = 31;

  auto scenario = core::buildScenario(cfg);
  core::Experiment experiment(*scenario);
  LoadResult out;
  std::map<net::NodeId, std::uint64_t> lastLoads;
  experiment.setRoundObserver([&](std::uint32_t) {
    std::vector<double> delta;
    for (const auto& [gw, count] :
         scenario->network->stats().perGatewayDeliveries()) {
      delta.push_back(static_cast<double>(count - lastLoads[gw]));
      lastLoads[gw] = count;
    }
    out.perRoundJain.push_back(jainFairness(delta));
  });
  out.run = experiment.run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("LOADBAL", "congestion control under a traffic hotspot",
                "overloaded gateways shed marginal traffic to starved "
                "gateways (§4.3), stressed by §4.2's burst scenario");

  const LoadResult plain = runCase(false);
  const LoadResult balanced = runCase(true);

  TextTable series({"round", "Jain (no balancing)", "Jain (advisories)",
                    "note"});
  CsvWriter csv({"round", "jain_plain", "jain_balanced"});
  for (std::size_t r = 0; r < plain.perRoundJain.size(); ++r) {
    series.addRow({TextTable::num(r), TextTable::num(plain.perRoundJain[r], 3),
                   TextTable::num(balanced.perRoundJain[r], 3),
                   r == 2 ? "hotspot ignites" : ""});
    csv.addRow({TextTable::num(r), TextTable::num(plain.perRoundJain[r], 4),
                TextTable::num(balanced.perRoundJain[r], 4)});
  }
  wmsn::core::printSection(
      std::cout, "per-round gateway-load fairness (Jain; 1.0 = balanced)",
      series);

  TextTable totals({"variant", "PDR", "mean latency ms", "p95 latency ms",
                    "hottest gateway share"});
  auto hotShare = [](const wmsn::core::RunResult& r) {
    double total = 0, hottest = 0;
    for (const auto& [gw, count] : r.perGatewayDeliveries) {
      total += static_cast<double>(count);
      hottest = std::max(hottest, static_cast<double>(count));
    }
    return total > 0 ? hottest / total : 0.0;
  };
  totals.addRow({"no balancing", TextTable::num(plain.run.deliveryRatio, 3),
                 TextTable::num(plain.run.meanLatencyMs, 1),
                 TextTable::num(plain.run.p95LatencyMs, 1),
                 TextTable::num(hotShare(plain.run), 3)});
  totals.addRow({"load advisories (§4.3)",
                 TextTable::num(balanced.run.deliveryRatio, 3),
                 TextTable::num(balanced.run.meanLatencyMs, 1),
                 TextTable::num(balanced.run.p95LatencyMs, 1),
                 TextTable::num(hotShare(balanced.run), 3)});
  wmsn::core::printSection(std::cout, "totals over 8 rounds", totals);

  std::cout << "expected shape: once the hotspot ignites (round 2) the "
               "unbalanced run funnels the burst into the nearest gateway "
               "(fairness collapses); advisories shed the marginal flows to "
               "the starved gateways at a small hop cost.\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
