// SLEEP — §4.4 topology control: "sleep scheduling controls sensors between
// work and sleep states, i.e., schedules sensor nodes to work in turn" to
// "maximiz[e] network lifetime … on condition that main network
// performances … are satisfied."
//
// GAF-style duty cycling over a DENSE deployment: one awake node per
// virtual grid cell, rotating by residual energy each epoch. Compares
// lifetime / delivery / energy with and without the scheduler at several
// densities.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("SLEEP", "GAF-style sleep scheduling vs always-on",
                "duty-cycled dense networks live longer at unchanged "
                "delivery (§4.4 topology control)");

  constexpr std::array<std::size_t, 3> kDensities = {120, 240, 360};
  std::vector<core::ScenarioConfig> configs;
  for (std::size_t n : kDensities) {
    for (bool sleep : {false, true}) {
      core::ScenarioConfig cfg;
      cfg.protocol = core::ProtocolKind::kMlr;
      cfg.sensorCount = n;
      cfg.gatewayCount = 3;
      cfg.feasiblePlaceCount = 6;
      cfg.width = 200;
      cfg.height = 200;
      // GAF needs several sensors per r/√5-cell to have anything to
      // silence: r=50 → 22 m cells → 3-9 sensors each at these densities.
      cfg.radioRange = 50;
      cfg.rounds = 400;
      cfg.stopAtFirstDeath = true;
      cfg.packetsPerSensorPerRound = 2;
      cfg.energy.initialEnergyJ = 0.1;
      cfg.sleep.enabled = sleep;
      cfg.sleep.epochRounds = 2;
      cfg.seed = 8;
      configs.push_back(cfg);
    }
  }
  const auto results = core::runScenariosParallel(configs, args.threads);

  TextTable table({"sensors", "scheduler", "lifetime (rounds)", "PDR",
                   "mean hops", "energy/sensor mJ"});
  CsvWriter csv({"sensors", "sleep", "lifetime_rounds", "pdr", "mean_hops",
                 "energy_per_sensor_mj"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& r = results[i];
    const auto lifetime =
        r.firstDeathObserved ? r.firstDeathRound : r.roundsCompleted;
    table.addRow({TextTable::num(configs[i].sensorCount),
                  configs[i].sleep.enabled ? "GAF sleep" : "always-on",
                  TextTable::num(lifetime), TextTable::num(r.deliveryRatio, 3),
                  TextTable::num(r.meanHops, 2),
                  TextTable::num(r.sensorEnergy.meanJ * 1e3, 2)});
    csv.addRow({TextTable::num(configs[i].sensorCount),
                configs[i].sleep.enabled ? "1" : "0",
                TextTable::num(lifetime), TextTable::num(r.deliveryRatio, 4),
                TextTable::num(r.meanHops, 3),
                TextTable::num(r.sensorEnergy.meanJ * 1e3, 3)});
  }
  core::printSection(std::cout,
                     "lifetime to first death, 200x200 m, MLR, 3 gateways",
                     table);
  std::cout
      << "measured shape (and an honest finding): duty cycling slashes the "
         "MEAN energy burn ~2-3x at high density (the silenced overhearing) "
         "at unchanged delivery — but the FIRST-death lifetime barely "
         "moves, because it is pinned by the relay hot spot next to each "
         "gateway, which must stay awake regardless. Sleep scheduling "
         "stretches the fleet's total energy; only gateway MOBILITY (§5.3, "
         "see LIFETIME) relocates the hot spot itself. The two mechanisms "
         "are complementary, exactly as §4.4's 'power control AND sleep "
         "scheduling' framing suggests.\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
