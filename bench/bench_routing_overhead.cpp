// OVERHEAD — quantifies §5.3's central efficiency claim: MLR's incremental
// tables ("accumulate routing tables round by round … not all sensor nodes
// need to set up routing tables") versus (a) a conventional table-driven
// protocol that rebuilds everything every round and (b) pure on-demand SPR
// re-discovery. Also ablates SPR's answer-from-cache optimisation (§5.2
// remark 2: "directly return path information rather than further flood").

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("OVERHEAD",
                "control overhead: incremental vs rebuilt vs on-demand",
                "incremental tables 'significantly reduce delay and save "
                "energy for routing discovery' (§5.3)");

  struct Case {
    const char* label;
    core::ProtocolKind protocol;
    bool rebuild;
    bool answerFromCache;
  };
  const std::vector<Case> cases = {
      {"mlr incremental (paper)", core::ProtocolKind::kMlr, false, true},
      {"mlr rebuild-every-round (ablation)", core::ProtocolKind::kMlr, true,
       true},
      {"spr on-demand + cache answers (paper)", core::ProtocolKind::kSpr,
       false, true},
      {"spr on-demand, no cache (ablation)", core::ProtocolKind::kSpr, false,
       false},
  };
  constexpr std::uint32_t kRounds = 20;

  std::vector<core::ScenarioConfig> configs;
  for (const Case& c : cases) {
    core::ScenarioConfig cfg;
    cfg.protocol = c.protocol;
    cfg.sensorCount = 100;
    cfg.gatewayCount = 3;
    cfg.feasiblePlaceCount = 6;
    cfg.rounds = kRounds;
    cfg.packetsPerSensorPerRound = 2;
    cfg.mlr.rebuildEveryRound = c.rebuild;
    cfg.spr.answerFromCache = c.answerFromCache;
    cfg.seed = 11;
    configs.push_back(cfg);
  }

  // Per-round cumulative control-frame series (the figure a paper would
  // plot) — run serially with observers.
  TextTable series({"round", cases[0].label, cases[1].label, cases[2].label,
                    cases[3].label});
  CsvWriter seriesCsv({"round", "mlr_incremental", "mlr_rebuild",
                       "spr_cache", "spr_nocache"});
  std::vector<std::vector<std::uint64_t>> perRound(
      cases.size(), std::vector<std::uint64_t>(kRounds, 0));
  std::vector<core::RunResult> finals;

  for (std::size_t i = 0; i < cases.size(); ++i) {
    auto scenario = core::buildScenario(configs[i]);
    core::Experiment experiment(*scenario);
    experiment.setRoundObserver([&, i](std::uint32_t round) {
      perRound[i][round] = scenario->network->stats().controlFrames();
    });
    finals.push_back(experiment.run());
  }

  for (std::uint32_t r = 0; r < kRounds; r += (r < 5 ? 1 : 5)) {
    std::vector<std::string> row{TextTable::num(r + 1)};
    std::vector<std::string> csvRow{TextTable::num(r + 1)};
    for (std::size_t i = 0; i < cases.size(); ++i) {
      row.push_back(TextTable::num(perRound[i][r]));
      csvRow.push_back(TextTable::num(perRound[i][r]));
    }
    series.addRow(row);
    seriesCsv.addRow(csvRow);
  }
  core::printSection(std::cout,
                     "cumulative control frames after each round "
                     "(100 sensors, 3 mobile gateways)",
                     series);

  TextTable totals({"variant", "ctrl frames", "ctrl bytes", "data frames",
                    "energy/sensor mJ", "PDR", "mean latency ms"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& r = finals[i];
    totals.addRow({cases[i].label, TextTable::num(r.controlFrames),
                   TextTable::num(r.controlBytes),
                   TextTable::num(r.dataFrames),
                   TextTable::num(r.sensorEnergy.meanJ * 1e3, 3),
                   TextTable::num(r.deliveryRatio, 3),
                   TextTable::num(r.meanLatencyMs, 1)});
  }
  core::printSection(std::cout, "20-round totals", totals);
  std::cout << "expected shape: the rebuild ablation pays ~|moved-all| times "
               "more control traffic; SPR pays per-source floods each round; "
               "incremental MLR's curve flattens once all |P| places are "
               "known.\n";
  bench::maybeWriteCsv(args, seriesCsv);
  return 0;
}
