// BALANCE — exercises the MLR design objective of §5.3, equations (1)–(6):
// minimise total energy ΣEᵢ AND the balance variance
// D² = Σ(Eᵢ − E̅)². Reports both, plus Jain fairness and the max/mean hot-spot
// ratio, per protocol, after a fixed workload.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("BALANCE", "per-sensor energy balance (eq. 1 objective)",
                "MLR minimises variance D² subject to minimal total ΣEᵢ "
                "(§5.3 eqs. (1)–(6))");

  struct Case {
    core::ProtocolKind protocol;
    std::size_t gateways;
    bool move;
    bool energyAware;
    const char* label;
  };
  const std::vector<Case> cases = {
      {core::ProtocolKind::kFlooding, 3, false, false, "flooding"},
      {core::ProtocolKind::kSingleSink, 1, false, false, "single-sink"},
      {core::ProtocolKind::kLeach, 1, false, false, "leach"},
      {core::ProtocolKind::kSpr, 3, false, false, "spr"},
      {core::ProtocolKind::kMlr, 3, false, false, "mlr (static gw)"},
      {core::ProtocolKind::kMlr, 3, true, false, "mlr (mobile gw)"},
      {core::ProtocolKind::kMlr, 3, true, true,
       "mlr + energy-aware selection (extension)"},
  };
  constexpr std::array<std::uint64_t, 3> kSeeds = {3, 5, 7};

  std::vector<core::ScenarioConfig> configs;
  for (const Case& c : cases) {
    for (std::uint64_t seed : kSeeds) {
      core::ScenarioConfig cfg;
      cfg.protocol = c.protocol;
      cfg.sensorCount = 150;
      cfg.gatewayCount = c.gateways;
      cfg.feasiblePlaceCount = 6;
      cfg.gatewaysMove = c.move;
      cfg.mlr.energyAwareSelection = c.energyAware;
      cfg.width = 240;
      cfg.height = 240;
      cfg.rounds = 10;
      cfg.packetsPerSensorPerRound = 2;
      cfg.seed = seed;
      configs.push_back(cfg);
    }
  }

  const auto results = core::runScenariosParallel(configs, args.threads);

  TextTable table({"protocol", "total ΣEᵢ mJ", "D² (uJ²)", "Jain",
                   "max/mean", "PDR"});
  CsvWriter csv({"protocol", "total_mj", "d2_uj2", "jain", "max_over_mean",
                 "pdr"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::vector<core::RunResult> slice(
        results.begin() + static_cast<long>(i * kSeeds.size()),
        results.begin() + static_cast<long>((i + 1) * kSeeds.size()));
    const double total = core::meanOver(slice, [](const core::RunResult& r) {
      return r.sensorEnergy.totalJ * 1e3;
    });
    const double d2 = core::meanOver(slice, [](const core::RunResult& r) {
      return r.sensorEnergy.varianceD2 * 1e6;
    });
    const double jain = core::meanOver(slice, [](const core::RunResult& r) {
      return r.sensorEnergy.jainFairness;
    });
    const double hotspot =
        core::meanOver(slice, [](const core::RunResult& r) {
          return r.sensorEnergy.meanJ > 0
                     ? r.sensorEnergy.maxJ / r.sensorEnergy.meanJ
                     : 0.0;
        });
    const double pdr = core::meanOver(
        slice, [](const core::RunResult& r) { return r.deliveryRatio; });
    table.addRow({cases[i].label, TextTable::num(total, 2),
                  TextTable::num(d2, 1), TextTable::num(jain, 3),
                  TextTable::num(hotspot, 2), TextTable::num(pdr, 3)});
    csv.addRow({cases[i].label, TextTable::num(total, 3),
                TextTable::num(d2, 2), TextTable::num(jain, 4),
                TextTable::num(hotspot, 3), TextTable::num(pdr, 4)});
  }
  core::printSection(
      std::cout, "energy balance, 150 sensors, 10 rounds (3 seeds averaged)",
      table);
  std::cout << "expected shape: single-sink shows the worst hot-spot ratio "
               "(relays at the sink), multi-gateway MLR the best Jain index; "
               "gateway mobility further narrows the spread.\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
