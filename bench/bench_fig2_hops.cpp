// FIG2 — reproduces Fig. 2 of the paper: "Routing in sensor networks with
// one sink and three gateways". The paper's worked example: sensor nodes
// S1, S2, S3, S4 need 2, 7, 6 and 9 hops to reach a single sink, but only
// 1, 1, 1 and 2 hops when three gateways G1..G3 are deployed.
//
// Part 1 rebuilds the example's topology exactly and measures the hop
// counts with the SPR protocol. Part 2 generalises to a randomly deployed
// 100-node network, sweeping the sink/gateway count.

#include "bench_util.hpp"
#include "routing/spr.hpp"

namespace {

using namespace wmsn;

struct Fig2Layout {
  std::vector<net::Point> sensors;
  std::vector<net::Point> places;  ///< [sink, G1, G2, G3]
  net::NodeId s1, s2, s3, s4;
};

/// Four relay chains radiating from the sink position (0,0); S1..S4 sit at
/// the BFS depths of the paper's example. Radio range 25 m, 20 m spacing.
Fig2Layout makeLayout() {
  Fig2Layout layout;
  auto add = [&](double x, double y) {
    layout.sensors.push_back({x, y});
    return static_cast<net::NodeId>(layout.sensors.size() - 1);
  };

  // East arm: 1 relay, then S1 (2 hops from the sink).
  add(20, 0);
  layout.s1 = add(40, 0);
  // North arm: 6 relays, S2 at 7 hops, one more relay, S4 at 9 hops.
  for (int i = 1; i <= 6; ++i) add(0, 20.0 * i);  // (0,20)..(0,120)
  layout.s2 = add(0, 140);
  add(0, 160);  // n7
  layout.s4 = add(0, 180);
  // West arm: 5 relays, then S3 (6 hops).
  for (int i = 1; i <= 5; ++i) add(-20.0 * i, 0);
  layout.s3 = add(-120, 0);

  layout.places = {
      {0, 0},      // the single sink's position
      {60, 0},     // G1: next to S1
      {15, 155},   // G2: next to S2, two hops from S4 via n7
      {-140, 0},   // G3: next to S3
  };
  return layout;
}

struct HopResult {
  std::uint16_t s1 = 0, s2 = 0, s3 = 0, s4 = 0;
};

/// Runs SPR on the layout with the given gateway places and reads each
/// S-node's discovered route length.
HopResult measure(const Fig2Layout& layout,
                  std::vector<std::size_t> gatewayPlaces) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kSpr;
  cfg.mac = net::MacKind::kIdeal;  // the paper's example assumes a clean channel
  cfg.medium.collisions = false;
  cfg.gatewaysMove = false;
  cfg.rounds = 1;
  cfg.packetsPerSensorPerRound = 0;  // we originate manually
  cfg.radioRange = 25.0;
  cfg.spr.answerFromCache = false;   // measure pure shortest paths

  auto scenario = core::buildScenarioAt(cfg, layout.sensors, layout.places,
                                        std::move(gatewayPlaces));
  core::Experiment experiment(*scenario);

  HopResult out;
  experiment.setRoundObserver([&](std::uint32_t) {});
  // Drive one round; originate from the four S nodes mid-round.
  scenario->simulator.schedule(sim::Time::seconds(1.0), [&] {
    for (net::NodeId s : {layout.s1, layout.s2, layout.s3, layout.s4})
      scenario->stack->at(s).originate(Bytes(24, 0x01));
  });
  experiment.run();

  auto hopsOf = [&](net::NodeId id) -> std::uint16_t {
    const auto& spr =
        dynamic_cast<const routing::SprRouting&>(scenario->stack->at(id));
    return spr.currentRouteHops().value_or(0);
  };
  out.s1 = hopsOf(layout.s1);
  out.s2 = hopsOf(layout.s2);
  out.s3 = hopsOf(layout.s3);
  out.s4 = hopsOf(layout.s4);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("FIG2", "hop counts: single sink vs three gateways",
                "S1..S4 need 2/7/6/9 hops to one sink but 1/1/1/2 hops to "
                "three gateways (Fig. 2)");

  const Fig2Layout layout = makeLayout();
  const HopResult single = measure(layout, {0});
  const HopResult multi = measure(layout, {1, 2, 3});

  TextTable table({"node", "paper (1 sink)", "measured (1 sink)",
                   "paper (3 gateways)", "measured (3 gateways)"});
  table.addRow({"S1", "2", TextTable::num(single.s1), "1",
                TextTable::num(multi.s1)});
  table.addRow({"S2", "7", TextTable::num(single.s2), "1",
                TextTable::num(multi.s2)});
  table.addRow({"S3", "6", TextTable::num(single.s3), "1",
                TextTable::num(multi.s3)});
  table.addRow({"S4", "9", TextTable::num(single.s4), "2",
                TextTable::num(multi.s4)});
  core::printSection(std::cout, "Fig. 2 exact example (SPR, ideal channel)",
                     table);

  // --- Part 2: randomised generalisation -----------------------------------
  std::vector<core::ScenarioConfig> configs;
  std::vector<std::string> labels;
  for (std::size_t m : {1u, 3u}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      core::ScenarioConfig cfg;
      cfg.protocol = core::ProtocolKind::kMlr;
      cfg.sensorCount = 100;
      cfg.gatewayCount = m;
      cfg.feasiblePlaceCount = 4;
      cfg.gatewaysMove = false;
      cfg.rounds = 2;
      cfg.seed = seed;
      configs.push_back(cfg);
    }
  }
  const auto results = core::runScenariosParallel(configs, args.threads);

  TextTable general({"gateways", "mean hops (3 seeds)", "p95 latency ms",
                     "PDR"});
  CsvWriter csv({"gateways", "mean_hops", "p95_latency_ms", "pdr"});
  for (std::size_t block = 0; block < 2; ++block) {
    std::vector<core::RunResult> slice(results.begin() + block * 3,
                                       results.begin() + block * 3 + 3);
    const double hops = core::meanOver(
        slice, [](const core::RunResult& r) { return r.meanHops; });
    const double latency = core::meanOver(
        slice, [](const core::RunResult& r) { return r.p95LatencyMs; });
    const double pdr = core::meanOver(
        slice, [](const core::RunResult& r) { return r.deliveryRatio; });
    const std::string m = block == 0 ? "1" : "3";
    general.addRow({m, TextTable::num(hops, 2), TextTable::num(latency, 1),
                    TextTable::num(pdr, 3)});
    csv.addRow({m, TextTable::num(hops, 3), TextTable::num(latency, 2),
                TextTable::num(pdr, 4)});
  }
  core::printSection(std::cout,
                     "generalisation: 100 random sensors, m sinks (MLR)",
                     general);
  bench::maybeWriteCsv(args, csv);
  return 0;
}
