// GWSCALE — quantifies §4.1's gateway-number claim: "multiple gateways …
// significantly reduce the average number of hops of data transmission,
// saving energy consumption and accordingly lengthening network lifetime",
// with diminishing returns past K_max (the paper cites [34]'s ILP result).
//
// Sweeps m = 1..8 gateways over a fixed 200-sensor deployment and reports
// mean hops, per-sensor energy, lifetime (rounds to first death), and
// per-gateway load balance.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("GWSCALE", "hops / energy / lifetime vs gateway count",
                "more gateways → fewer hops and longer lifetime, saturating "
                "at K_max (§4.1)");

  constexpr std::array<std::size_t, 8> kGatewayCounts = {1, 2, 3, 4,
                                                         5, 6, 7, 8};
  constexpr std::array<std::uint64_t, 3> kSeeds = {1, 2, 3};

  // Short fixed-duration runs for hops/energy…
  std::vector<core::ScenarioConfig> hopConfigs;
  // …and lifetime runs with a scaled-down battery so first death happens
  // within the cap.
  std::vector<core::ScenarioConfig> lifeConfigs;
  for (std::size_t m : kGatewayCounts) {
    for (std::uint64_t seed : kSeeds) {
      core::ScenarioConfig cfg;
      cfg.protocol = core::ProtocolKind::kMlr;
      cfg.sensorCount = 200;
      cfg.gatewayCount = m;
      cfg.feasiblePlaceCount = 10;
      cfg.width = 280;
      cfg.height = 280;
      cfg.rounds = 4;
      cfg.packetsPerSensorPerRound = 2;
      cfg.seed = seed;
      hopConfigs.push_back(cfg);

      cfg.rounds = 300;
      cfg.stopAtFirstDeath = true;
      cfg.energy.initialEnergyJ = 0.1;
      lifeConfigs.push_back(cfg);
    }
  }

  const auto hopResults = core::runScenariosParallel(hopConfigs, args.threads);
  const auto lifeResults =
      core::runScenariosParallel(lifeConfigs, args.threads);

  TextTable table({"gateways (m)", "mean hops", "energy/sensor mJ",
                   "lifetime (rounds)", "gateway-load Jain", "PDR"});
  CsvWriter csv({"gateways", "mean_hops", "energy_per_sensor_mj",
                 "lifetime_rounds", "gateway_load_jain", "pdr"});

  for (std::size_t i = 0; i < kGatewayCounts.size(); ++i) {
    std::vector<core::RunResult> hops(
        hopResults.begin() + static_cast<long>(i * kSeeds.size()),
        hopResults.begin() + static_cast<long>((i + 1) * kSeeds.size()));
    std::vector<core::RunResult> life(
        lifeResults.begin() + static_cast<long>(i * kSeeds.size()),
        lifeResults.begin() + static_cast<long>((i + 1) * kSeeds.size()));

    const double meanHops = core::meanOver(
        hops, [](const core::RunResult& r) { return r.meanHops; });
    const double energy = core::meanOver(hops, [](const core::RunResult& r) {
      return r.sensorEnergy.meanJ * 1e3;
    });
    const double lifetime = core::meanOver(
        life, [](const core::RunResult& r) {
          return static_cast<double>(r.firstDeathObserved
                                         ? r.firstDeathRound
                                         : r.roundsCompleted);
        });
    const double pdr = core::meanOver(
        hops, [](const core::RunResult& r) { return r.deliveryRatio; });
    const double loadJain =
        core::meanOver(hops, [](const core::RunResult& r) {
          std::vector<double> loads;
          for (const auto& [gw, count] : r.perGatewayDeliveries)
            loads.push_back(static_cast<double>(count));
          return jainFairness(loads);
        });

    table.addRow({TextTable::num(kGatewayCounts[i]),
                  TextTable::num(meanHops, 2), TextTable::num(energy, 3),
                  TextTable::num(lifetime, 0), TextTable::num(loadJain, 3),
                  TextTable::num(pdr, 3)});
    csv.addRow({TextTable::num(kGatewayCounts[i]),
                TextTable::num(meanHops, 3), TextTable::num(energy, 4),
                TextTable::num(lifetime, 1), TextTable::num(loadJain, 4),
                TextTable::num(pdr, 4)});
  }

  core::printSection(
      std::cout, "gateway-count sweep (200 sensors, MLR, 3 seeds averaged)",
      table);
  std::cout << "expected shape: hops and energy fall steeply from m=1, "
               "lifetime rises, both flattening at larger m (K_max).\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
