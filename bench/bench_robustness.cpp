// ROBUST — the architecture's reliability claims (§1, §3): a flat network
// has a "single point of failure … WSNs cannot work completely if the
// single sink node fails", while the multi-gateway WMSN degrades gracefully
// and self-heals. We kill gateways mid-run and track the per-round delivery
// ratio before and after.

#include "bench_util.hpp"

namespace {

using namespace wmsn;

struct Series {
  std::vector<double> perRoundPdr;
  core::RunResult final;
};

Series runWithFailure(core::ProtocolKind protocol, std::size_t gateways,
                      bool reliable,
                      std::vector<core::GatewayFailure> failures) {
  core::ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.sensorCount = 100;
  cfg.gatewayCount = gateways;
  cfg.feasiblePlaceCount = 6;
  cfg.rounds = 10;
  cfg.packetsPerSensorPerRound = 2;
  cfg.mlr.reliableForwarding = reliable;
  cfg.failures = std::move(failures);
  cfg.seed = 4;

  auto scenario = core::buildScenario(cfg);
  core::Experiment experiment(*scenario);
  Series series;
  std::uint64_t lastGen = 0, lastDel = 0;
  experiment.setRoundObserver([&](std::uint32_t) {
    const auto& stats = scenario->network->stats();
    const auto gen = stats.generated() - lastGen;
    const auto del = stats.delivered() - lastDel;
    series.perRoundPdr.push_back(
        gen ? static_cast<double>(del) / static_cast<double>(gen) : 1.0);
    lastGen = stats.generated();
    lastDel = stats.delivered();
  });
  series.final = experiment.run();
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("ROBUST", "delivery under gateway failure",
                "single sink = single point of failure; multiple gateways "
                "self-heal (§1, §3, §4.2 fault-tolerance)");

  // The sink / first gateway dies at round 4 in every scenario.
  const std::vector<core::GatewayFailure> killFirst = {{4, 0}};

  const Series singleSink = runWithFailure(core::ProtocolKind::kSingleSink,
                                           1, false, killFirst);
  const Series mlrOneGw =
      runWithFailure(core::ProtocolKind::kMlr, 1, false, killFirst);
  const Series mlrThreeGw =
      runWithFailure(core::ProtocolKind::kMlr, 3, false, killFirst);
  const Series mlrThreeReliable =
      runWithFailure(core::ProtocolKind::kMlr, 3, true, killFirst);
  // Even two of three gateways dying leaves the network functional.
  const Series mlrTwoFail = runWithFailure(core::ProtocolKind::kMlr, 3, true,
                                           {{4, 0}, {6, 1}});

  TextTable table({"round", "single-sink", "mlr m=1", "mlr m=3",
                   "mlr m=3 reliable", "mlr m=3, 2 failures"});
  CsvWriter csv({"round", "single_sink", "mlr_m1", "mlr_m3",
                 "mlr_m3_reliable", "mlr_m3_two_failures"});
  for (std::size_t r = 0; r < singleSink.perRoundPdr.size(); ++r) {
    std::vector<std::string> row{TextTable::num(r)};
    for (const Series* s : {&singleSink, &mlrOneGw, &mlrThreeGw,
                            &mlrThreeReliable, &mlrTwoFail})
      row.push_back(TextTable::num(s->perRoundPdr[r], 3));
    std::vector<std::string> csvRow = row;
    table.addRow(row);
    csv.addRow(csvRow);
  }
  wmsn::core::printSection(
      std::cout,
      "per-round delivery ratio (gateway 0 dies entering round 4; the "
      "two-failure column also loses gateway 1 at round 6)",
      table);

  TextTable totals({"scenario", "overall PDR", "PDR rounds 5-9"});
  auto tail = [](const Series& s) {
    double sum = 0;
    for (std::size_t r = 5; r < s.perRoundPdr.size(); ++r)
      sum += s.perRoundPdr[r];
    return sum / 5.0;
  };
  totals.addRow({"single-sink", TextTable::num(singleSink.final.deliveryRatio, 3),
                 TextTable::num(tail(singleSink), 3)});
  totals.addRow({"mlr m=1", TextTable::num(mlrOneGw.final.deliveryRatio, 3),
                 TextTable::num(tail(mlrOneGw), 3)});
  totals.addRow({"mlr m=3", TextTable::num(mlrThreeGw.final.deliveryRatio, 3),
                 TextTable::num(tail(mlrThreeGw), 3)});
  totals.addRow({"mlr m=3 reliable",
                 TextTable::num(mlrThreeReliable.final.deliveryRatio, 3),
                 TextTable::num(tail(mlrThreeReliable), 3)});
  totals.addRow({"mlr m=3, 2 failures",
                 TextTable::num(mlrTwoFail.final.deliveryRatio, 3),
                 TextTable::num(tail(mlrTwoFail), 3)});
  wmsn::core::printSection(std::cout, "totals", totals);

  std::cout << "expected shape: single-sink (and m=1) delivery collapses to "
               "~0 after the failure; m=3 keeps roughly the share of traffic "
               "owned by the surviving gateways, and hop-by-hop ACK mode "
               "recovers more by re-routing around the dead sink.\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
