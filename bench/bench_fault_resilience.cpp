// FAULT — the reliability benchmark behind §3/§4.2's fault-tolerance claim:
// "WSNs cannot work completely if the single sink node fails", while the
// multi-gateway WMSN re-homes traffic onto the surviving WMGs. We drive the
// same sensor field through a matrix of fault scenarios (permanent gateway
// crash, gateway churn, sensor churn, bursty link loss) for each routing
// protocol and report PDR plus the recovery telemetry collected by
// wmsn::fault — outage episodes, recovery latency, PDR during outage.
//
// Reproduce any cell from the command line, e.g. the gw-crash column:
//   ./wmsn_cli --protocol mlr --gateways 3 --rounds 12 --fault-plan gw0@3

#include "bench_util.hpp"

namespace {

using namespace wmsn;

struct ProtocolSetup {
  std::string label;
  core::ProtocolKind kind = core::ProtocolKind::kSpr;
  std::size_t gateways = 3;
  bool failover = true;
};

struct FaultScenario {
  std::string label;
  fault::FaultPlan plan;
};

core::ScenarioConfig makeConfig(const ProtocolSetup& p,
                                const FaultScenario& f) {
  core::ScenarioConfig cfg;
  cfg.protocol = p.kind;
  cfg.sensorCount = 80;
  cfg.gatewayCount = p.gateways;
  cfg.feasiblePlaceCount = 6;
  cfg.rounds = 12;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 7;
  cfg.faults = f.plan;
  if (p.failover) {
    cfg.mlr.failover = true;
    cfg.mlr.reliableForwarding = true;
    cfg.spr.retryBackoff = sim::Time::seconds(0.2);
  }
  cfg.obs.metrics = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("FAULT", "delivery and recovery under injected faults",
                "multiple gateways + route maintenance keep the mesh "
                "delivering through failures a single sink cannot survive "
                "(§1, §3, §4.2)");

  const std::vector<ProtocolSetup> protocols = {
      {"spr m=1", core::ProtocolKind::kSpr, 1, false},
      {"spr m=3", core::ProtocolKind::kSpr, 3, true},
      {"mlr m=3", core::ProtocolKind::kMlr, 3, true},
      {"secmlr m=3", core::ProtocolKind::kSecMlr, 3, true},
  };

  std::vector<FaultScenario> scenarios;
  scenarios.push_back({"baseline", {}});
  {
    FaultScenario s{"gw-crash", {}};  // gateway 0 dies entering round 3
    s.plan.events.push_back({3, fault::FaultTargetKind::kGateway, 0, false});
    scenarios.push_back(std::move(s));
  }
  {
    FaultScenario s{"gw-churn", {}};
    s.plan.gatewayMtbfRounds = 8;
    s.plan.gatewayMttrRounds = 4;
    scenarios.push_back(std::move(s));
  }
  {
    FaultScenario s{"sensor-churn", {}};
    s.plan.sensorMtbfRounds = 30;
    s.plan.sensorMttrRounds = 5;
    scenarios.push_back(std::move(s));
  }
  {
    FaultScenario s{"burst-loss", {}};  // ~10% steady-state frame loss
    s.plan.linkLoss.enabled = true;
    s.plan.linkLoss.pGoodToBad = s.plan.linkLoss.pBadToGood * 0.1 / 0.9;
    scenarios.push_back(std::move(s));
  }

  // One flat batch over the whole matrix: runScenariosParallel preserves
  // input order, so results[s * protocols + p] is (scenario s, protocol p).
  std::vector<core::ScenarioConfig> configs;
  for (const auto& s : scenarios)
    for (const auto& p : protocols) configs.push_back(makeConfig(p, s));
  const auto results = core::runScenariosParallel(configs, args.threads);
  auto at = [&](std::size_t s, std::size_t p) -> const core::RunResult& {
    return results[s * protocols.size() + p];
  };

  std::vector<std::string> header{"fault scenario"};
  for (const auto& p : protocols) header.push_back(p.label);
  TextTable pdr(header);
  std::vector<std::string> csvHeader{"scenario", "protocol", "pdr",
                                     "outage_episodes", "unrecovered",
                                     "mean_recovery_latency_s",
                                     "pdr_during_outage", "link_fault_drops"};
  CsvWriter csv(csvHeader);
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    std::vector<std::string> row{scenarios[s].label};
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      const auto& r = at(s, p);
      row.push_back(TextTable::num(r.deliveryRatio, 3));
      csv.addRow({scenarios[s].label, protocols[p].label,
                  TextTable::num(r.deliveryRatio, 4),
                  TextTable::num(r.faults.outageEpisodes),
                  TextTable::num(r.faults.unrecoveredOutages),
                  TextTable::num(r.faults.meanRecoveryLatencyS, 2),
                  TextTable::num(r.faults.pdrDuringOutage, 4),
                  TextTable::num(r.faults.linkFaultDrops)});
    }
    pdr.addRow(row);
  }
  core::printSection(std::cout, "overall PDR by fault scenario", pdr);

  TextTable recovery({"protocol", "outages", "unrecovered",
                      "mean recovery latency (s)", "PDR during outage"});
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    const auto& f = at(1, p).faults;  // the gw-crash scenario
    recovery.addRow({protocols[p].label, TextTable::num(f.outageEpisodes),
                     TextTable::num(f.unrecoveredOutages),
                     TextTable::num(f.meanRecoveryLatencyS, 2),
                     TextTable::num(f.pdrDuringOutage, 3)});
  }
  core::printSection(
      std::cout,
      "recovery telemetry under the permanent gateway-0 crash (round 3)",
      recovery);

  // The recovery-latency histogram lands in the metrics registry too — the
  // same wmsn_fault_* family --metrics-out exports from wmsn_cli.
  const auto& mlrCrash = at(1, 2);
  if (mlrCrash.observations) {
    const std::string json = mlrCrash.observations->metrics.json();
    std::cout << "metrics registry carries wmsn_fault_recovery_latency_s: "
              << (json.find("wmsn_fault_recovery_latency_s") !=
                          std::string::npos
                      ? "yes"
                      : "NO (bug)")
              << "\n\n";
  }

  std::cout << "expected shape: with its only gateway dead, spr m=1 "
               "collapses for the remaining rounds; the m=3 columns re-home "
               "onto the surviving gateways within a round or two, so their "
               "gw-crash PDR stays close to baseline and their outage "
               "episodes close quickly. Churn and burst loss cost a few "
               "points of PDR but never strand the mesh.\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
