#pragma once

// Shared plumbing for the experiment binaries: --csv output, titled
// sections, and a tiny argument parser. Every binary runs with no arguments
// and prints the paper-shaped tables to stdout.

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/wmsn.hpp"
#include "util/csv.hpp"

namespace wmsn::bench {

struct BenchArgs {
  std::optional<std::string> csvPath;
  unsigned threads = 0;  ///< 0 = hardware concurrency
};

inline BenchArgs parseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv" && i + 1 < argc) {
      args.csvPath = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--csv <path>] [--threads <n>]\n";
      std::exit(0);
    }
  }
  return args;
}

inline void banner(const std::string& experimentId, const std::string& title,
                   const std::string& paperClaim) {
  std::cout << "================================================================\n"
            << experimentId << " — " << title << "\n"
            << "paper: " << paperClaim << "\n"
            << "================================================================\n\n";
}

inline void maybeWriteCsv(const BenchArgs& args, const CsvWriter& csv) {
  if (!args.csvPath) return;
  csv.writeFile(*args.csvPath);
  std::cout << "(csv written to " << *args.csvPath << ")\n";
}

}  // namespace wmsn::bench
