// ATTACK — the paper's security claim (§1, §6): SecMLR "can resist most of
// attacks against routing in WMSNs". Runs the full Karlof–Wagner catalogue
// (§2.3) against both plain MLR and SecMLR and reports the damage.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("ATTACK", "attack-resistance matrix: MLR vs SecMLR",
                "spoofed/replayed routing info, selective forwarding, "
                "sinkhole, sybil, wormhole, HELLO flood, ACK spoofing "
                "(§2.3, §6)");

  struct Case {
    attacks::AttackKind kind;
    std::size_t attackers;
  };
  const std::vector<Case> cases = {
      {attacks::AttackKind::kNone, 0},
      {attacks::AttackKind::kSpoofMove, 2},
      {attacks::AttackKind::kReplay, 2},
      {attacks::AttackKind::kSelectiveForward, 6},
      {attacks::AttackKind::kSinkhole, 3},
      {attacks::AttackKind::kSybil, 2},
      {attacks::AttackKind::kHelloFlood, 1},
      {attacks::AttackKind::kWormhole, 2},
  };

  std::vector<core::ScenarioConfig> configs;
  for (const auto protocol :
       {core::ProtocolKind::kMlr, core::ProtocolKind::kSecMlr}) {
    for (const Case& c : cases) {
      core::ScenarioConfig cfg;
      cfg.protocol = protocol;
      cfg.sensorCount = 80;
      cfg.gatewayCount = 3;
      cfg.feasiblePlaceCount = 5;
      cfg.width = 180;
      cfg.height = 180;
      cfg.rounds = 6;
      cfg.packetsPerSensorPerRound = 2;
      cfg.attack.kind = c.kind;
      cfg.attackerCount = c.attackers;
      cfg.seed = 77;
      configs.push_back(cfg);
    }
  }
  const auto results = core::runScenariosParallel(configs, args.threads);

  TextTable table({"attack", "MLR PDR", "SecMLR PDR", "MLR dup-deliv",
                   "Sec rejects (mac/replay/tesla)", "attacker actions"});
  CsvWriter csv({"attack", "mlr_pdr", "secmlr_pdr", "mlr_duplicates",
                 "sec_rejected_mac", "sec_rejected_replay",
                 "sec_rejected_tesla"});
  const std::size_t n = cases.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& mlr = results[i];
    const auto& sec = results[n + i];
    const std::string rejects = TextTable::num(sec.rejectedMacs) + "/" +
                                TextTable::num(sec.rejectedReplays) + "/" +
                                TextTable::num(sec.rejectedTesla);
    const auto& atk = mlr.attackerStats;
    const std::string actions =
        "drop:" + TextTable::num(atk.framesDropped) +
        " forge:" + TextTable::num(atk.framesForged) +
        " replay:" + TextTable::num(atk.framesReplayed) +
        " tunnel:" + TextTable::num(atk.framesTunnelled);
    table.addRow({attacks::toString(cases[i].kind),
                  TextTable::num(mlr.deliveryRatio, 3),
                  TextTable::num(sec.deliveryRatio, 3),
                  TextTable::num(mlr.duplicateDeliveries), rejects, actions});
    csv.addRow({attacks::toString(cases[i].kind),
                TextTable::num(mlr.deliveryRatio, 4),
                TextTable::num(sec.deliveryRatio, 4),
                TextTable::num(mlr.duplicateDeliveries),
                TextTable::num(sec.rejectedMacs),
                TextTable::num(sec.rejectedReplays),
                TextTable::num(sec.rejectedTesla)});
  }
  core::printSection(
      std::cout,
      "80 sensors, 3 gateways, 6 rounds, attackers are captured sensors",
      table);

  std::cout
      << "expected shape:\n"
      << "  spoofed-move / sybil / hello-flood — MLR's cost field is "
         "poisoned, PDR drops hard; SecMLR's TESLA authentication rejects "
         "every forgery and PDR matches the no-attack baseline.\n"
      << "  replay — MLR gateways re-accept old frames (duplicate "
         "deliveries); SecMLR's counters reject them all.\n"
      << "  sinkhole — severe against MLR; SecMLR limits the damage because "
         "data paths must be physically real end-to-end.\n"
      << "  selective forwarding / wormhole — hurt both (the paper's §8 "
         "remedy is multi-gateway redundancy, visible as partial delivery "
         "rather than collapse); wormholes also defeat SecMLR's hop counts "
         "— a known limitation of the design (Karlof & Wagner §2.3).\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
