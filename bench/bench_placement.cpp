// PLACE — §4.1's gateway deployment model: "how to select locations … to
// maximize the lifetime of the sensor network. The basic principle is
// minimizing the total energy consumption … while balancing the energy
// consumption of individual sensor nodes." Also the gateway-NUMBER model:
// the planner's cost curve exposes K_max.
//
// Compares the greedy hop-cost planner against naive (first-m feasible
// places) placement, on uniform and clustered fields.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("PLACE", "planned vs naive gateway placement",
                "choose gateway locations to minimise total hop cost and "
                "balance per-node energy (§4.1 deployment model)");

  // --- planner cost curve → K_max -------------------------------------------
  {
    Rng rng(6);
    net::DeploymentParams dp;
    dp.sensorCount = 150;
    dp.width = 260;
    dp.height = 260;
    const auto d = net::uniformDeployment(dp, rng);
    const auto places = net::feasiblePlaces(dp, 10, rng);

    TextTable curve({"m (gateways)", "total hop cost", "marginal gain %"});
    double prev = 0.0;
    for (std::size_t m = 1; m <= 8; ++m) {
      const auto sel =
          core::planGatewayPlaces(d.sensors, places, m, dp.radioRange);
      const double cost =
          core::totalHopCost(d.sensors, places, sel, dp.radioRange);
      curve.addRow({TextTable::num(m), TextTable::num(cost, 0),
                    m == 1 ? "-"
                           : TextTable::num(100.0 * (prev - cost) / prev, 1)});
      prev = cost;
    }
    core::printSection(std::cout,
                       "greedy planner cost curve (150 sensors, |P|=10)",
                       curve);
    const std::size_t kmax =
        core::estimateGatewayCount(d.sensors, places, dp.radioRange);
    std::cout << "estimated K_max (knee of the curve, §4.1 / ref [34]): "
              << kmax << "\n\n";
  }

  // --- planned vs naive, simulated ------------------------------------------
  std::vector<core::ScenarioConfig> configs;
  std::vector<std::string> labels;
  for (const auto deployment :
       {core::DeploymentKind::kUniform, core::DeploymentKind::kClustered}) {
    for (bool planned : {false, true}) {
      core::ScenarioConfig cfg;
      cfg.protocol = core::ProtocolKind::kMlr;
      cfg.deployment = deployment;
      cfg.sensorCount = 150;
      cfg.gatewayCount = 3;
      cfg.feasiblePlaceCount = 8;
      cfg.gatewaysMove = false;  // isolate placement from mobility
      cfg.planGatewayPlacement = planned;
      cfg.radioRange =
          deployment == core::DeploymentKind::kClustered ? 45.0 : 30.0;
      cfg.width = 260;
      cfg.height = 260;
      cfg.rounds = 6;
      cfg.packetsPerSensorPerRound = 2;
      cfg.seed = 14;
      configs.push_back(cfg);
      labels.push_back(std::string(core::toString(deployment)) +
                       (planned ? " / planned" : " / naive"));
    }
  }
  const auto results = core::runScenariosParallel(configs, args.threads);

  TextTable table({"placement", "mean hops", "energy/sensor mJ", "D2 (uJ²)",
                   "Jain", "PDR"});
  CsvWriter csv({"placement", "mean_hops", "energy_mj", "d2_uj2", "jain",
                 "pdr"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.addRow({labels[i], TextTable::num(r.meanHops, 2),
                  TextTable::num(r.sensorEnergy.meanJ * 1e3, 3),
                  TextTable::num(r.sensorEnergy.varianceD2 * 1e6, 1),
                  TextTable::num(r.sensorEnergy.jainFairness, 3),
                  TextTable::num(r.deliveryRatio, 3)});
    csv.addRow({labels[i], TextTable::num(r.meanHops, 3),
                TextTable::num(r.sensorEnergy.meanJ * 1e3, 4),
                TextTable::num(r.sensorEnergy.varianceD2 * 1e6, 2),
                TextTable::num(r.sensorEnergy.jainFairness, 4),
                TextTable::num(r.deliveryRatio, 4)});
  }
  core::printSection(std::cout, "planned vs naive placement (static, m=3)",
                     table);
  std::cout << "expected shape: planning matters most on the clustered "
               "field, where the naive grid-ordinal placement can park a "
               "gateway far from any cluster; the planner's hop savings "
               "translate directly into energy.\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
