// bench_kernel_scale — the kernel-scaling curve (ROADMAP item 1):
// rounds/sec, frames/sec, grid candidates examined, and peak RSS vs node
// count on the CURRENT round-loop kernel (spatial-grid neighbor index +
// active set, docs/KERNEL.md). The committed BENCH_kernel.json is the
// campaign-driven version of this curve (campaigns/kernel_scale.spec); this
// binary is the quick local view and the place to eyeball a kernel change
// before re-running the campaign.
//
// Scenario shape (same as the spec): grid deployment at a fixed ~20 m pitch
// (constant density, guaranteed connectivity at range 30), two static
// gateways, MLR, and a Poisson workload whose per-sensor rate shrinks as
// 1/n so the OFFERED load is the same at every size — the curve then
// isolates kernel cost (medium delivery + neighbor queries) from protocol
// load.
//
// Peak RSS is process-wide and monotone (getrusage), so points run in
// increasing size order: each point's RSS is dominated by its own
// footprint. The campaign runs each point in its own worker process and
// reports true per-run RSS.
//
//   ./bench_kernel_scale                 # 1k → 16k (quick)
//   ./bench_kernel_scale --max-nodes 64000   # the full committed curve

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

using namespace wmsn;

struct CurvePoint {
  std::size_t sensors;
  double area;    ///< square side for a ~20 m grid pitch
  double rate;    ///< Poisson readings/sensor/sec (~70 total offered pkt/s)
};

// The committed curve sizes. area = 20·sqrt(n); rate = 70/n. The 256k
// point only became reachable with the spatial-grid kernel (docs/KERNEL.md)
// — under the old all-pairs medium scan it would have examined ~4×10¹¹
// candidate pairs.
const std::vector<CurvePoint> kCurve = {
    {1000, 630.0, 0.07},
    {4000, 1270.0, 0.0175},
    {16000, 2530.0, 0.0044},
    {64000, 5060.0, 0.0011},
    {256000, 10120.0, 0.000273},
};

core::ScenarioConfig pointConfig(const CurvePoint& p) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.deployment = core::DeploymentKind::kGrid;
  cfg.sensorCount = p.sensors;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = cfg.height = p.area;
  cfg.gatewaysMove = false;
  cfg.rounds = 2;
  cfg.workload.kind = workload::WorkloadKind::kPoisson;
  cfg.workload.ratePerSensor = p.rate;
  cfg.seed = 31;
  cfg.obs.perf = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wmsn;

  std::size_t maxNodes = 16000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-nodes" && i + 1 < argc)
      maxNodes = std::stoul(argv[++i]);
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--max-nodes <n>] [--csv <path>]\n"
                   "  --max-nodes <n>  largest curve point to run "
                   "(default 16000; 256000 = full committed curve)\n";
      return 0;
    }
  }
  const bench::BenchArgs args = bench::parseArgs(argc, argv);

  bench::banner(
      "bench_kernel_scale",
      "kernel work and throughput vs node count (current round-loop kernel)",
      "ROADMAP item 1: pairs examined must stay ~O(n*k) (spatial grid, "
      "docs/KERNEL.md) -- the pre-grid kernel grew O(n^2)");

  CsvWriter csv({"sensors", "rounds_per_sec", "frames_per_sec",
                 "pairs_examined", "rng_draws", "frames_transmitted", "pdr",
                 "peak_rss_kb", "wall_seconds"});
  TextTable table({"sensors", "rounds/s", "frames/s", "pairs examined",
                   "peak RSS MB", "wall s", "PDR"});

  for (const CurvePoint& p : kCurve) {
    if (p.sensors > maxNodes) break;
    const auto result = core::runScenario(pointConfig(p));
    const core::RunObservations& run = *result.observations;
    const obs::ResourceTelemetry& tel = run.telemetry;
    const std::uint64_t pairs =
        run.perf.value(obs::PerfCounter::kPairsExamined);
    table.addRow({TextTable::num(p.sensors), TextTable::num(tel.roundsPerSec(), 3),
                  TextTable::num(tel.framesPerSec(), 1),
                  TextTable::num(pairs),
                  TextTable::num(static_cast<double>(tel.peakRssKb) / 1024.0, 1),
                  TextTable::num(tel.wallSeconds, 2),
                  TextTable::num(result.deliveryRatio, 3)});
    csv.addRow({TextTable::num(p.sensors), TextTable::num(tel.roundsPerSec(), 6),
                TextTable::num(tel.framesPerSec(), 3), TextTable::num(pairs),
                TextTable::num(run.perf.value(obs::PerfCounter::kRngDraws)),
                TextTable::num(
                    run.perf.value(obs::PerfCounter::kFramesTransmitted)),
                TextTable::num(result.deliveryRatio, 4),
                TextTable::num(tel.peakRssKb),
                TextTable::num(tel.wallSeconds, 4)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";

  core::printSection(std::cout, "kernel scaling curve", table);
  std::cout << "pairs examined counts grid candidates: ~constant per "
               "transmission at fixed density (O(n*k) total). The pre-grid "
               "kernel examined every node per transmission (O(n^2)).\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
