// OFFLOAD — workload-engine capacity curves: delivery ratio, latency and
// congestion drops vs offered load, for the paper's three routing designs
// (SPR, MLR, SecMLR) under two traffic processes (Poisson and CBR), plus an
// event-front burst showcase. The offered-load axis is what the related WMN
// capacity literature evaluates and the original paper's fixed
// one-reading-per-round model cannot express.
//
// Shape to expect: below the network's saturation point PDR is flat and
// queue drops are zero; past it the finite MAC transmit queues overflow,
// PDR falls monotonically and latency climbs.
//
//   ./bench_offered_load [--csv out.csv] [--json out.json] [--threads n]
//                        [--seeds k]

#include <fstream>
#include <sstream>

#include "bench_util.hpp"

namespace {

using namespace wmsn;

constexpr std::size_t kSensors = 80;
constexpr std::size_t kQueueCapacity = 8;

const std::vector<core::ProtocolKind> kProtocols = {
    core::ProtocolKind::kSpr, core::ProtocolKind::kMlr,
    core::ProtocolKind::kSecMlr};

const std::vector<workload::WorkloadKind> kGenerators = {
    workload::WorkloadKind::kPoisson, workload::WorkloadKind::kPeriodic};

// Per-sensor offered rates in packets/second. The low end sits well under
// the CSMA channel's capacity; the top end is deep into saturation.
const std::vector<double> kRates = {0.1, 0.25, 0.5, 1.0, 2.0, 3.0};

core::ScenarioConfig baseConfig(core::ProtocolKind protocol,
                                workload::WorkloadKind generator, double rate,
                                std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.sensorCount = kSensors;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 6;
  cfg.width = 200;
  cfg.height = 200;
  cfg.rounds = 6;
  cfg.workload.kind = generator;
  cfg.workload.ratePerSensor = rate;
  cfg.workload.burst.backgroundRate = rate;  // burst showcase reuses `rate`
  cfg.macQueue.capacity = kQueueCapacity;
  cfg.seed = seed;
  // Every run records its per-round trajectory; --csv writes them next to
  // the summary so saturation onset is visible round by round.
  cfg.obs.timeseries = true;
  return cfg;
}

std::string runLabel(const core::ScenarioConfig& cfg, double rate) {
  return core::toString(cfg.protocol) + "/" +
         workload::toString(cfg.workload.kind) + "/r" +
         TextTable::num(rate, 2) + "/s" + std::to_string(cfg.seed);
}

/// `out.csv` → `out.timeseries.csv` (or plain append when no .csv suffix).
std::string timeseriesPath(const std::string& csvPath) {
  const std::string suffix = ".csv";
  if (csvPath.size() > suffix.size() &&
      csvPath.compare(csvPath.size() - suffix.size(), suffix.size(),
                      suffix) == 0)
    return csvPath.substr(0, csvPath.size() - suffix.size()) +
           ".timeseries.csv";
  return csvPath + ".timeseries.csv";
}

struct Point {
  std::string protocol;
  std::string generator;
  double rate = 0.0;
  double offeredPps = 0.0;
  double goodputPps = 0.0;
  double pdr = 0.0;
  double meanLatencyMs = 0.0;
  double p95LatencyMs = 0.0;
  double queueDrops = 0.0;
  double macDrops = 0.0;
  double collisions = 0.0;
  double peakQueueDepth = 0.0;
  double meanQueueDepth = 0.0;
};

Point averagePoint(const std::vector<core::RunResult>& runs) {
  Point p;
  p.protocol = runs.front().protocol;
  p.generator = runs.front().workload;
  p.offeredPps = core::meanOver(runs, [](const auto& r) { return r.offeredPps; });
  p.goodputPps = core::meanOver(runs, [](const auto& r) { return r.goodputPps; });
  p.pdr = core::meanOver(runs, [](const auto& r) { return r.deliveryRatio; });
  p.meanLatencyMs =
      core::meanOver(runs, [](const auto& r) { return r.meanLatencyMs; });
  p.p95LatencyMs =
      core::meanOver(runs, [](const auto& r) { return r.p95LatencyMs; });
  p.queueDrops = core::meanOver(
      runs, [](const auto& r) { return static_cast<double>(r.queueDrops); });
  p.macDrops = core::meanOver(
      runs, [](const auto& r) { return static_cast<double>(r.macDrops); });
  p.collisions = core::meanOver(
      runs, [](const auto& r) { return static_cast<double>(r.collisions); });
  p.peakQueueDepth = core::meanOver(runs, [](const auto& r) {
    return static_cast<double>(r.peakQueueDepth);
  });
  p.meanQueueDepth =
      core::meanOver(runs, [](const auto& r) { return r.meanQueueDepth; });
  return p;
}

std::string jsonEscapeless(const Point& p) {
  std::ostringstream os;
  os << "{\"protocol\":\"" << p.protocol << "\",\"generator\":\""
     << p.generator << "\",\"rate_pps_per_sensor\":" << p.rate
     << ",\"offered_pps\":" << p.offeredPps << ",\"goodput_pps\":"
     << p.goodputPps << ",\"pdr\":" << p.pdr << ",\"mean_latency_ms\":"
     << p.meanLatencyMs << ",\"p95_latency_ms\":" << p.p95LatencyMs
     << ",\"queue_drops\":" << p.queueDrops << ",\"mac_drops\":" << p.macDrops
     << ",\"collisions\":" << p.collisions << ",\"peak_queue_depth\":"
     << p.peakQueueDepth << ",\"mean_queue_depth\":" << p.meanQueueDepth
     << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv);
  std::string jsonPath;
  unsigned seeds = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) jsonPath = argv[++i];
    if (arg == "--seeds" && i + 1 < argc)
      seeds = static_cast<unsigned>(std::stoul(argv[++i]));
  }
  if (seeds == 0) seeds = 1;

  bench::banner(
      "OFFLOAD", "offered-load capacity curves (workload engine)",
      "continuous sensing traffic at increasing offered load saturates the "
      "shared channel; finite MAC queues localise the congestion loss");

  // One config per (protocol, generator, rate, seed); all runs fan out over
  // the thread pool at once.
  std::vector<core::ScenarioConfig> configs;
  std::vector<std::string> runLabels;
  for (core::ProtocolKind protocol : kProtocols)
    for (workload::WorkloadKind generator : kGenerators)
      for (double rate : kRates)
        for (unsigned s = 0; s < seeds; ++s) {
          configs.push_back(baseConfig(protocol, generator, rate, 40 + s));
          runLabels.push_back(runLabel(configs.back(), rate));
        }
  const auto results = core::runScenariosParallel(configs, args.threads);

  // Per-round trajectories of every run, concatenated under run labels
  // (protocol/generator/rate/seed). Input order, so --threads never changes
  // the bytes.
  std::optional<CsvWriter> seriesCsv;
  auto appendSeries = [&seriesCsv](const core::RunResult& r,
                                   const std::string& label) {
    if (!r.observations) return;
    const auto& series = r.observations->timeseries;
    if (!seriesCsv) seriesCsv.emplace(series.csvHeader());
    series.appendCsv(*seriesCsv, label);
  };
  for (std::size_t i = 0; i < results.size(); ++i)
    appendSeries(results[i], runLabels[i]);

  std::vector<Point> points;
  std::size_t cursor = 0;
  for (core::ProtocolKind protocol : kProtocols) {
    (void)protocol;
    for (workload::WorkloadKind generator : kGenerators) {
      (void)generator;
      for (double rate : kRates) {
        std::vector<core::RunResult> group(
            results.begin() + static_cast<std::ptrdiff_t>(cursor),
            results.begin() + static_cast<std::ptrdiff_t>(cursor + seeds));
        cursor += seeds;
        Point p = averagePoint(group);
        p.rate = rate;
        points.push_back(std::move(p));
      }
    }
  }

  CsvWriter csv({"protocol", "generator", "rate_pps_per_sensor",
                 "offered_pps", "goodput_pps", "pdr", "mean_latency_ms",
                 "p95_latency_ms", "queue_drops", "mac_drops", "collisions",
                 "peak_queue_depth", "mean_queue_depth"});
  for (const auto& generator : kGenerators) {
    const std::string genName = workload::toString(generator);
    TextTable table({"protocol", "rate/sensor", "offered pps", "goodput pps",
                     "PDR", "mean lat ms", "p95 lat ms", "queue drops",
                     "peak queue"});
    for (const Point& p : points) {
      if (p.generator != genName) continue;
      table.addRow({p.protocol, TextTable::num(p.rate, 2),
                    TextTable::num(p.offeredPps, 1),
                    TextTable::num(p.goodputPps, 1), TextTable::num(p.pdr, 3),
                    TextTable::num(p.meanLatencyMs, 1),
                    TextTable::num(p.p95LatencyMs, 1),
                    TextTable::num(p.queueDrops, 0),
                    TextTable::num(p.peakQueueDepth, 0)});
      csv.addRow({p.protocol, p.generator, TextTable::num(p.rate, 3),
                  TextTable::num(p.offeredPps, 2),
                  TextTable::num(p.goodputPps, 2), TextTable::num(p.pdr, 4),
                  TextTable::num(p.meanLatencyMs, 2),
                  TextTable::num(p.p95LatencyMs, 2),
                  TextTable::num(p.queueDrops, 1),
                  TextTable::num(p.macDrops, 1),
                  TextTable::num(p.collisions, 1),
                  TextTable::num(p.peakQueueDepth, 1),
                  TextTable::num(p.meanQueueDepth, 3)});
    }
    core::printSection(std::cout,
                       "capacity curve — " + genName + " generator, " +
                           std::to_string(kSensors) + " sensors, queue cap " +
                           std::to_string(kQueueCapacity),
                       table);
  }

  // Event-front showcase: the burst generator sweeps a correlated report
  // wave across the field — the congestion is localised under the front.
  {
    std::vector<core::ScenarioConfig> burstConfigs;
    for (core::ProtocolKind protocol : kProtocols) {
      core::ScenarioConfig cfg =
          baseConfig(protocol, workload::WorkloadKind::kBurst, 0.02, 40);
      cfg.workload.burst.frontSpeed = 15.0;
      cfg.workload.burst.radius = 60.0;
      cfg.workload.burst.reportInterval = 0.4;
      burstConfigs.push_back(cfg);
    }
    const auto burstRuns =
        core::runScenariosParallel(burstConfigs, args.threads);
    for (const auto& r : burstRuns)
      appendSeries(r, r.protocol + "/burst/r0.02/s40");
    TextTable table({"protocol", "offered pps", "goodput pps", "PDR",
                     "p95 lat ms", "queue drops", "peak queue"});
    for (const auto& r : burstRuns) {
      table.addRow({r.protocol, TextTable::num(r.offeredPps, 1),
                    TextTable::num(r.goodputPps, 1),
                    TextTable::num(r.deliveryRatio, 3),
                    TextTable::num(r.p95LatencyMs, 1),
                    TextTable::num(static_cast<double>(r.queueDrops), 0),
                    TextTable::num(static_cast<double>(r.peakQueueDepth), 0)});
      Point p;
      p.protocol = r.protocol;
      p.generator = r.workload;
      p.rate = 0.02;
      p.offeredPps = r.offeredPps;
      p.goodputPps = r.goodputPps;
      p.pdr = r.deliveryRatio;
      p.meanLatencyMs = r.meanLatencyMs;
      p.p95LatencyMs = r.p95LatencyMs;
      p.queueDrops = static_cast<double>(r.queueDrops);
      p.macDrops = static_cast<double>(r.macDrops);
      p.collisions = static_cast<double>(r.collisions);
      p.peakQueueDepth = static_cast<double>(r.peakQueueDepth);
      p.meanQueueDepth = r.meanQueueDepth;
      points.push_back(std::move(p));
      csv.addRow({r.protocol, r.workload, "0.02",
                  TextTable::num(r.offeredPps, 2),
                  TextTable::num(r.goodputPps, 2),
                  TextTable::num(r.deliveryRatio, 4),
                  TextTable::num(r.meanLatencyMs, 2),
                  TextTable::num(r.p95LatencyMs, 2),
                  TextTable::num(static_cast<double>(r.queueDrops), 1),
                  TextTable::num(static_cast<double>(r.macDrops), 1),
                  TextTable::num(static_cast<double>(r.collisions), 1),
                  TextTable::num(static_cast<double>(r.peakQueueDepth), 1),
                  TextTable::num(r.meanQueueDepth, 3)});
    }
    core::printSection(std::cout, "event-front burst showcase", table);
  }

  std::cout << "expected shape: PDR flat and queue drops ~0 below "
               "saturation; past it goodput plateaus at channel capacity, "
               "queue drops grow and PDR falls monotonically.\n";

  bench::maybeWriteCsv(args, csv);
  if (args.csvPath && seriesCsv) {
    const std::string path = timeseriesPath(*args.csvPath);
    seriesCsv->writeFile(path);
    std::cout << "(per-round time series written to " << path << ")\n";
  }
  if (!jsonPath.empty()) {
    std::ofstream out(jsonPath);
    out << "[\n";
    for (std::size_t i = 0; i < points.size(); ++i)
      out << "  " << jsonEscapeless(points[i])
          << (i + 1 < points.size() ? ",\n" : "\n");
    out << "]\n";
    std::cout << "(json written to " << jsonPath << ")\n";
  }
  return 0;
}
