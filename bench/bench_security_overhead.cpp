// SECOVH — the cost of SecMLR's security (§6.2, §8): the paper claims the
// protocol "work[s] in [an] energy-efficient way" because "it performs main
// computing tasks on resource-rich gateways". We measure:
//   1. where the crypto CPU cost lands (sensors vs gateways vs forwarders),
//   2. the network-wide overhead of SecMLR vs plain MLR,
//   3. how the fixed discovery cost amortises as the data rate grows.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("SECOVH", "the price of SecMLR's security",
                "heavyweight computation belongs on gateways; sensors do "
                "lightweight symmetric crypto only (§6.1, §6.2.4)");

  // --- 1+2: MLR vs SecMLR at the default workload -----------------------------
  auto makeConfig = [](core::ProtocolKind protocol,
                       std::uint32_t packetsPerRound) {
    core::ScenarioConfig cfg;
    cfg.protocol = protocol;
    cfg.sensorCount = 100;
    cfg.gatewayCount = 3;
    cfg.feasiblePlaceCount = 6;
    cfg.rounds = 8;
    cfg.packetsPerSensorPerRound = packetsPerRound;
    cfg.seed = 12;
    return cfg;
  };

  std::vector<core::ScenarioConfig> configs = {
      makeConfig(core::ProtocolKind::kMlr, 2),
      makeConfig(core::ProtocolKind::kSecMlr, 2),
  };
  for (std::uint32_t rate : {1u, 4u, 8u, 16u})
    configs.push_back(makeConfig(core::ProtocolKind::kSecMlr, rate));
  const auto results = core::runScenariosParallel(configs, args.threads);
  const auto& mlr = results[0];
  const auto& sec = results[1];

  TextTable side({"metric", "mlr", "secmlr", "overhead"});
  auto ratio = [](double a, double b) {
    return b > 0 ? TextTable::num(a / b, 2) + "x" : std::string("-");
  };
  side.addRow({"PDR", TextTable::num(mlr.deliveryRatio, 3),
               TextTable::num(sec.deliveryRatio, 3), "-"});
  side.addRow({"control frames", TextTable::num(mlr.controlFrames),
               TextTable::num(sec.controlFrames),
               ratio(static_cast<double>(sec.controlFrames),
                     static_cast<double>(mlr.controlFrames))});
  side.addRow({"sensor energy mJ (total)",
               TextTable::num(mlr.sensorEnergy.totalJ * 1e3, 1),
               TextTable::num(sec.sensorEnergy.totalJ * 1e3, 1),
               ratio(sec.sensorEnergy.totalJ, mlr.sensorEnergy.totalJ)});
  side.addRow({"sensor CPU (crypto) mJ",
               TextTable::num(mlr.sensorEnergy.cpuJ * 1e3, 4),
               TextTable::num(sec.sensorEnergy.cpuJ * 1e3, 4), "-"});
  side.addRow({"gateway CPU (crypto) mJ",
               TextTable::num(mlr.gatewayEnergy.cpuJ * 1e3, 4),
               TextTable::num(sec.gatewayEnergy.cpuJ * 1e3, 4), "-"});
  side.addRow({"mean latency ms", TextTable::num(mlr.meanLatencyMs, 1),
               TextTable::num(sec.meanLatencyMs, 1),
               ratio(sec.meanLatencyMs, mlr.meanLatencyMs)});
  side.addRow({"mean hops", TextTable::num(mlr.meanHops, 2),
               TextTable::num(sec.meanHops, 2), "-"});
  core::printSection(std::cout,
                     "MLR vs SecMLR (100 sensors, 8 rounds, T=2)", side);

  const double gwShare =
      sec.gatewayEnergy.cpuJ /
      std::max(1e-12, sec.gatewayEnergy.cpuJ + sec.sensorEnergy.cpuJ);
  std::cout << "crypto CPU landing on gateways: "
            << TextTable::num(gwShare * 100.0, 1)
            << "% — the §6.2.4 offloading claim, measured.\n\n";

  // --- 3: amortisation with data rate ------------------------------------------
  TextTable amort({"packets/sensor/round", "PDR", "ctrl frames",
                   "energy per delivered reading uJ", "ctrl share of bytes"});
  CsvWriter csv({"rate", "pdr", "ctrl_frames", "energy_per_reading_uj",
                 "ctrl_byte_share"});
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& r = results[2 + i];
    const double perReading =
        r.delivered ? r.sensorEnergy.totalJ / static_cast<double>(r.delivered)
                    : 0.0;
    const double ctrlShare =
        static_cast<double>(r.controlBytes) /
        std::max<double>(1.0, static_cast<double>(r.controlBytes +
                                                  r.dataBytes));
    const std::uint32_t rate = (i == 0) ? 1u : (i == 1) ? 4u : (i == 2) ? 8u : 16u;
    amort.addRow({TextTable::num(rate), TextTable::num(r.deliveryRatio, 3),
                  TextTable::num(r.controlFrames),
                  TextTable::num(perReading * 1e6, 1),
                  TextTable::num(ctrlShare, 3)});
    csv.addRow({TextTable::num(rate), TextTable::num(r.deliveryRatio, 4),
                TextTable::num(r.controlFrames),
                TextTable::num(perReading * 1e6, 2),
                TextTable::num(ctrlShare, 4)});
  }
  core::printSection(
      std::cout,
      "SecMLR discovery amortisation: fixed per-round floods, growing data",
      amort);
  std::cout << "expected shape: the per-delivered-reading energy falls "
               "steeply with the data rate — discovery is a fixed cost, so "
               "SecMLR approaches MLR's per-packet economics as sessions are "
               "reused (the paper's energy-efficiency claim holds for the "
               "data plane).\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
