// OBSOVH — what observability costs. Runs the same MLR scenario with each
// instrumentation layer switched on in turn and reports wall-clock overhead
// against the bare run. The contract the subsystem is built around: a null
// (counting) trace sink must stay within ~5% of the uninstrumented run, so
// "how many frames flew" is always affordable; serialising sinks and the
// per-round sampler are allowed to cost more since they buffer real output.
//
//   ./bench_obs_overhead [--csv out.csv] [--reps n] [--check]
//
// --check enforces the observability budget and exits non-zero when it is
// blown: the null trace sink must stay within 2% of bare, and sampled span
// tracing (10% of readings retained) within 5%. The budget is evaluated on
// the min-of-reps numbers — the least-perturbed samples.

#include <chrono>
#include <functional>

#include "bench_util.hpp"
#include "core/trace.hpp"

namespace {

using namespace wmsn;

core::ScenarioConfig baseConfig() {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 100;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 6;
  cfg.rounds = 8;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 11;
  return cfg;
}

struct Variant {
  std::string name;
  std::function<core::ScenarioConfig()> config;
  /// Optional per-run hook attaching a trace sink; returns the logger so it
  /// lives for the duration of the run.
  obs::TraceFormat traceFormat = obs::TraceFormat::kNull;
  bool trace = false;
};

/// Wall seconds for one build+run, timing only the run itself. Returns the
/// best (minimum) of `reps` attempts — the least-perturbed sample.
double timeVariant(const Variant& v, unsigned reps, std::uint64_t& events) {
  double best = 1e18;
  for (unsigned rep = 0; rep < reps; ++rep) {
    auto scenario = core::buildScenario(v.config());
    core::TraceLogger trace(v.traceFormat);
    if (v.trace) trace.attach(*scenario);
    core::Experiment experiment(*scenario);
    const auto start = std::chrono::steady_clock::now();
    const auto result = experiment.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
    events = v.trace ? trace.rows() : result.eventsProcessed;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parseArgs(argc, argv);
  unsigned reps = 10;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--reps" && i + 1 < argc)
      reps = static_cast<unsigned>(std::stoul(argv[++i]));
    else if (std::string(argv[i]) == "--check")
      check = true;
  }
  if (reps == 0) reps = 1;

  bench::banner(
      "OBSOVH", "observability overhead (null sink, metrics, profiler)",
      "instrumentation must not distort the experiments it measures: the "
      "counting sink and disabled-profiler paths stay near the bare run");

  std::vector<Variant> variants;
  variants.push_back({"bare", baseConfig});
  variants.push_back({"null-trace-sink", baseConfig,
                      obs::TraceFormat::kNull, true});
  variants.push_back({"metrics", [] {
                        auto cfg = baseConfig();
                        cfg.obs.metrics = true;
                        return cfg;
                      }});
  variants.push_back({"metrics+timeseries", [] {
                        auto cfg = baseConfig();
                        cfg.obs.metrics = true;
                        cfg.obs.timeseries = true;
                        return cfg;
                      }});
  variants.push_back({"csv-trace-sink", baseConfig,
                      obs::TraceFormat::kCsv, true});
  variants.push_back({"jsonl-trace-sink", baseConfig,
                      obs::TraceFormat::kJsonl, true});
  variants.push_back({"trace-spans-full", [] {
                        auto cfg = baseConfig();
                        cfg.obs.traceSpans = true;
                        return cfg;
                      }});
  variants.push_back({"trace-spans-sampled", [] {
                        auto cfg = baseConfig();
                        cfg.obs.traceSpans = true;
                        cfg.obs.traceSamplePermille = 100;
                        return cfg;
                      }});
  variants.push_back({"profile", [] {
                        auto cfg = baseConfig();
                        cfg.obs.profile = true;
                        return cfg;
                      }});
  // The WMSN_PERF sites are always compiled in; "perf-disabled" re-measures
  // the bare configuration so the null-ledger path (one thread-local load
  // per site) is shown to sit inside run-to-run noise, and "perf-counters"
  // measures the armed ledger plus the allocation-counting window.
  variants.push_back({"perf-disabled", baseConfig});
  variants.push_back({"perf-counters", [] {
                        auto cfg = baseConfig();
                        cfg.obs.perf = true;
                        return cfg;
                      }});

  // Warm-up run so first-touch costs (page faults, allocator growth) do not
  // land on the bare baseline.
  {
    std::uint64_t ignore = 0;
    timeVariant(variants.front(), 1, ignore);
  }

  double baseline = 0.0;
  TextTable table({"variant", "events", "best ms", "overhead %"});
  CsvWriter csv({"variant", "events", "best_ms", "overhead_pct"});
  std::vector<std::pair<std::string, double>> overheads;
  for (const Variant& v : variants) {
    std::uint64_t events = 0;
    const double seconds = timeVariant(v, reps, events);
    if (v.name == "bare") baseline = seconds;
    const double overheadPct =
        baseline > 0.0 ? (seconds / baseline - 1.0) * 100.0 : 0.0;
    overheads.emplace_back(v.name, overheadPct);
    table.addRow({v.name, TextTable::num(events),
                  TextTable::num(seconds * 1e3, 2),
                  TextTable::num(overheadPct, 1)});
    csv.addRow({v.name, TextTable::num(events),
                TextTable::num(seconds * 1e3, 3),
                TextTable::num(overheadPct, 2)});
  }

  core::printSection(std::cout,
                     "wall-clock overhead vs bare run (min of " +
                         std::to_string(reps) + " reps)",
                     table);
  std::cout << "expected shape: null-trace-sink and profile within a few "
               "percent of bare; serialising sinks cost more because they "
               "buffer one row per frame event.\n";
  bench::maybeWriteCsv(args, csv);

  if (check) {
    // The obs budget the PR contract enforces in CI (min-of-reps):
    //   null-trace-sink   <= 2%  — counting frames is always affordable
    //   trace-spans-sampled <= 5% — head-sampled causal tracing stays cheap
    //   perf-disabled     <= 2%  — un-armed WMSN_PERF sites are noise
    //   perf-counters     <= 5%  — the armed ledger is one add per site
    const std::vector<std::pair<std::string, double>> budget = {
        {"null-trace-sink", 2.0},
        {"trace-spans-sampled", 5.0},
        {"perf-disabled", 2.0},
        {"perf-counters", 5.0},
    };
    bool ok = true;
    for (const auto& [name, limitPct] : budget) {
      double measured = 0.0;
      for (const auto& [vname, pct] : overheads)
        if (vname == name) measured = pct;
      const bool pass = measured <= limitPct;
      std::cout << "budget " << name << ": " << TextTable::num(measured, 1)
                << "% (limit " << TextTable::num(limitPct, 1) << "%) "
                << (pass ? "ok" : "EXCEEDED") << "\n";
      ok = ok && pass;
    }
    if (!ok) {
      std::cout << "observability budget exceeded\n";
      return 1;
    }
    std::cout << "observability budget ok\n";
  }
  return 0;
}
