// TAB1 — reproduces Table 1 of the paper: "Routing table generation and
// maintenance of node Si" under MLR. Five feasible places A..E, three
// gateways; the scripted schedule follows the paper's narrative:
//   round 1: gateways at A, B, C     → Si's table: A:8, B:6, C:7 (selects B)
//   round 2: B's gateway moves to D  → adds D:5              (selects D)
//   round 3: A's gateway moves to E  → adds E:6              (selects D)
//
// The topology is a 17-sensor line with Si at index 8; places sit next to
// line indices {1, 3, 14, 12, 13}, giving exactly the paper's hop column.

#include "bench_util.hpp"
#include "routing/mlr.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("TAB1", "MLR incremental routing-table evolution",
                "Si accumulates one entry per feasible place, round by "
                "round, never rebuilding (Table 1)");

  // Line of 17 sensors, 20 m spacing, radio 25 m. Hops from Si (index 8)
  // to a place adjacent to index j is |8-j|+1.
  std::vector<net::Point> sensors;
  for (int i = 0; i < 17; ++i) sensors.push_back({20.0 * i, 0.0});
  const std::array<int, 5> placeIndex = {1, 3, 14, 12, 13};  // A..E
  std::vector<net::Point> places;
  for (int j : placeIndex) places.push_back({20.0 * j, 18.0});
  const net::NodeId si = 8;
  const std::array<std::uint16_t, 5> paperHops = {8, 6, 7, 5, 6};
  const char* placeName = "ABCDE";

  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.mac = net::MacKind::kIdeal;
  cfg.medium.collisions = false;
  cfg.rounds = 3;
  cfg.packetsPerSensorPerRound = 1;
  cfg.radioRange = 25.0;
  cfg.roundDuration = sim::Time::seconds(10);
  cfg.trafficStart = sim::Time::seconds(2);

  // The paper's schedule: {A,B,C} → {A,D,C} → {E,D,C}.
  auto schedule = std::make_unique<net::ScriptedSchedule>(
      std::vector<std::vector<std::size_t>>{{0, 1, 2}, {0, 3, 2}, {4, 3, 2}},
      places.size());

  auto scenario =
      core::buildScenarioAt(cfg, sensors, places, {0, 1, 2},
                            std::move(schedule));
  core::Experiment experiment(*scenario);

  CsvWriter csv({"round", "place", "paper_hops", "measured_hops",
                 "occupied", "selected"});
  experiment.setRoundObserver([&](std::uint32_t round) {
    const auto& mlr =
        dynamic_cast<const routing::MlrRouting&>(scenario->stack->at(si));
    TextTable table({"Pi", "paper hops", "measured hops", "route"});
    const auto selected = mlr.selectedPlace();
    for (std::size_t p = 0; p < places.size(); ++p) {
      const auto& entry = mlr.placeTable()[p];
      std::string route = "------";
      if (entry.known && mlr.occupancy().contains(static_cast<std::uint16_t>(p)))
        route = std::string("-----,") + placeName[p];
      if (selected && *selected == p) route += "  <== selected";
      table.addRow({std::string(1, placeName[p]),
                    entry.known ? TextTable::num(paperHops[p]) : "-",
                    entry.known ? TextTable::num(entry.hops) : "-",
                    route});
      csv.addRow({TextTable::num(round + 1), std::string(1, placeName[p]),
                  TextTable::num(paperHops[p]),
                  entry.known ? TextTable::num(entry.hops) : "",
                  mlr.occupancy().contains(static_cast<std::uint16_t>(p))
                      ? "1"
                      : "0",
                  selected && *selected == p ? "1" : "0"});
    }
    core::printSection(std::cout,
                       "Si routing table during round " +
                           std::to_string(round + 1) +
                           " (paper Table 1" +
                           (round == 0   ? "a"
                            : round == 1 ? "b"
                                         : "c") +
                           ")",
                       table);
  });

  const auto result = experiment.run();
  std::cout << "entries accumulated by Si: "
            << dynamic_cast<const routing::MlrRouting&>(
                   scenario->stack->at(si))
                   .knownEntryCount()
            << " of |P| = " << places.size() << "\n";
  std::cout << "delivery ratio over the 3 rounds: "
            << TextTable::num(result.deliveryRatio, 3) << "\n";
  bench::maybeWriteCsv(args, csv);
  return 0;
}
