// LIFETIME — the paper's headline metric (§5.3): "we define network
// lifetime as the time when the first sensor node drains its energy."
// Compares rounds-to-first-death across all implemented protocols on both
// even (grid-like uniform) and uneven (clustered) deployments, the two
// regimes §5.2/§5.3 distinguish: SPR "has good performance for sensor
// networks with nodes distributed evenly", MLR targets the uneven case.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("LIFETIME", "rounds to first sensor death, per protocol",
                "MLR maximises lifetime; flat/single-sink baselines exhaust "
                "nodes near the sink first (§1, §5.3)");

  struct Case {
    core::ProtocolKind protocol;
    std::size_t gateways;
    bool move;
  };
  const std::vector<Case> cases = {
      {core::ProtocolKind::kFlooding, 3, false},
      {core::ProtocolKind::kSingleSink, 1, false},
      {core::ProtocolKind::kLeach, 1, false},
      {core::ProtocolKind::kPegasis, 1, false},
      {core::ProtocolKind::kSpr, 3, false},
      {core::ProtocolKind::kMlr, 3, false},   // multi-gateway, static
      {core::ProtocolKind::kMlr, 3, true},    // + mobility (full MLR)
      {core::ProtocolKind::kSecMlr, 3, true},
  };
  constexpr std::array<std::uint64_t, 3> kSeeds = {1, 2, 3};

  for (const auto deployment :
       {core::DeploymentKind::kUniform, core::DeploymentKind::kClustered}) {
    std::vector<core::ScenarioConfig> configs;
    for (const Case& c : cases) {
      for (std::uint64_t seed : kSeeds) {
        core::ScenarioConfig cfg;
        cfg.protocol = c.protocol;
        cfg.deployment = deployment;
        cfg.sensorCount = 100;
        cfg.gatewayCount = c.gateways;
        cfg.feasiblePlaceCount = 6;
        cfg.gatewaysMove = c.move;
        cfg.radioRange =
            deployment == core::DeploymentKind::kClustered ? 45.0 : 30.0;
        cfg.rounds = 400;
        cfg.stopAtFirstDeath = true;
        cfg.packetsPerSensorPerRound = 2;
        cfg.energy.initialEnergyJ = 0.1;  // scaled battery → finite runs
        cfg.seed = seed;
        configs.push_back(cfg);
      }
    }

    const auto results = core::runScenariosParallel(configs, args.threads);

    TextTable table({"protocol", "lifetime (rounds)", "PDR", "mean hops",
                     "energy/sensor mJ", "D2 at death (uJ^2)"});
    CsvWriter csv({"deployment", "protocol", "lifetime_rounds", "pdr",
                   "mean_hops", "energy_per_sensor_mj", "d2_uj2"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
      std::vector<core::RunResult> slice(
          results.begin() + static_cast<long>(i * kSeeds.size()),
          results.begin() + static_cast<long>((i + 1) * kSeeds.size()));
      const double lifetime =
          core::meanOver(slice, [](const core::RunResult& r) {
            return static_cast<double>(
                r.firstDeathObserved ? r.firstDeathRound : r.roundsCompleted);
          });
      const double pdr = core::meanOver(
          slice, [](const core::RunResult& r) { return r.deliveryRatio; });
      const double hops = core::meanOver(
          slice, [](const core::RunResult& r) { return r.meanHops; });
      const double energy =
          core::meanOver(slice, [](const core::RunResult& r) {
            return r.sensorEnergy.meanJ * 1e3;
          });
      const double d2 = core::meanOver(slice, [](const core::RunResult& r) {
        return r.sensorEnergy.varianceD2 * 1e6;
      });
      std::string label = core::toString(cases[i].protocol);
      if (cases[i].protocol == core::ProtocolKind::kMlr)
        label += cases[i].move ? " (mobile gw)" : " (static gw)";
      table.addRow({label, TextTable::num(lifetime, 0),
                    TextTable::num(pdr, 3), TextTable::num(hops, 2),
                    TextTable::num(energy, 2), TextTable::num(d2, 1)});
      csv.addRow({core::toString(deployment), label,
                  TextTable::num(lifetime, 1), TextTable::num(pdr, 4),
                  TextTable::num(hops, 3), TextTable::num(energy, 3),
                  TextTable::num(d2, 2)});
    }
    core::printSection(std::cout,
                       "lifetime — " + core::toString(deployment) +
                           " deployment (100 sensors, 3 seeds averaged)",
                       table);
    bench::maybeWriteCsv(args, csv);
  }

  std::cout << "expected shape: flooding dies first (implosion), single-sink "
               "next (hot relays at the sink), SPR/MLR multi-gateway last; "
               "mobility adds further rounds, especially when clustered. "
               "SecMLR pays its secure-discovery floods out of the same "
               "batteries — the price of the §6 threat model.\n\n";

  // --- area scaling: LEACH vs MLR -------------------------------------------
  // §2.2.2: LEACH "is not applicable to networks deployed in large regions"
  // — its single-hop member→head and head→sink transmissions pay the d²/d⁴
  // amplifier. MLR's multi-hop forwarding keeps per-hop distances constant.
  {
    constexpr std::array<double, 4> kSides = {200, 400, 600, 800};
    std::vector<core::ScenarioConfig> configs;
    for (double side : kSides) {
      for (auto protocol :
           {core::ProtocolKind::kLeach, core::ProtocolKind::kMlr}) {
        core::ScenarioConfig cfg;
        cfg.protocol = protocol;
        cfg.sensorCount = 100;
        cfg.gatewayCount = protocol == core::ProtocolKind::kLeach ? 1 : 3;
        cfg.feasiblePlaceCount = 6;
        cfg.width = side;
        cfg.height = side;
        // Keep density constant: scale radio range with the same node
        // count over a larger area.
        cfg.radioRange = 30.0 * side / 200.0;
        cfg.rounds = 400;
        cfg.stopAtFirstDeath = true;
        cfg.packetsPerSensorPerRound = 2;
        cfg.energy.initialEnergyJ = 0.1;
        cfg.seed = 2;
        configs.push_back(cfg);
      }
    }
    const auto results = core::runScenariosParallel(configs, args.threads);
    TextTable table({"area (m)", "leach lifetime", "mlr lifetime",
                     "leach PDR", "mlr PDR"});
    for (std::size_t i = 0; i < kSides.size(); ++i) {
      const auto& leach = results[i * 2];
      const auto& mlr = results[i * 2 + 1];
      auto life = [](const core::RunResult& r) {
        return r.firstDeathObserved ? r.firstDeathRound : r.roundsCompleted;
      };
      table.addRow({TextTable::num(kSides[i], 0) + "x" +
                        TextTable::num(kSides[i], 0),
                    TextTable::num(life(leach)), TextTable::num(life(mlr)),
                    TextTable::num(leach.deliveryRatio, 3),
                    TextTable::num(mlr.deliveryRatio, 3)});
    }
    core::printSection(
        std::cout,
        "area scaling — LEACH's long-haul radio vs MLR's multi-hop (§2.2.2)",
        table);
    std::cout << "expected shape: LEACH wins on a small field (cheap "
                 "aggregation) but collapses as the d^4 long-haul cost "
                 "grows; MLR's lifetime degrades gently.\n";
  }
  return 0;
}
