// REACTIVE — the §2.2.2 related-work protocols, measured: PEGASIS's chain
// gathering ("nodes need only communicate with their closest neighbors and
// they take turns in communicating with the sink") against LEACH, and
// TEEN's threshold knob ("the user can control the trade-off between
// energy efficiency and data accuracy").

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace wmsn;
  const auto args = bench::parseArgs(argc, argv);
  bench::banner("REACTIVE", "PEGASIS chains and TEEN thresholds",
                "the §2.2.2 hierarchical/reactive baselines, quantified");

  // --- flat dissemination baselines (§2.2.1) ---------------------------------
  {
    std::vector<core::ScenarioConfig> configs;
    for (auto protocol :
         {core::ProtocolKind::kFlooding, core::ProtocolKind::kGossip,
          core::ProtocolKind::kSpin, core::ProtocolKind::kDiffusion}) {
      core::ScenarioConfig cfg;
      cfg.protocol = protocol;
      cfg.sensorCount = 80;
      cfg.gatewayCount = 1;
      cfg.feasiblePlaceCount = 2;
      cfg.gatewaysMove = false;
      cfg.width = 180;
      cfg.height = 180;
      cfg.rounds = 4;
      cfg.packetsPerSensorPerRound = 1;
      cfg.seed = 19;
      configs.push_back(cfg);
    }
    const auto results = core::runScenariosParallel(configs, args.threads);

    TextTable table({"protocol", "PDR", "data frames", "ctrl frames",
                     "on-air kB", "energy/sensor mJ", "mean latency ms"});
    for (const auto& r : results) {
      table.addRow(
          {r.protocol, TextTable::num(r.deliveryRatio, 3),
           TextTable::num(r.dataFrames), TextTable::num(r.controlFrames),
           TextTable::num(
               static_cast<double>(r.dataBytes + r.controlBytes) / 1024.0, 1),
           TextTable::num(r.sensorEnergy.meanJ * 1e3, 3),
           TextTable::num(r.meanLatencyMs, 1)});
    }
    core::printSection(std::cout,
                       "flat dissemination (§2.2.1): 80 sensors, 1 sink",
                       table);
    std::cout
        << "measured shape: directed diffusion is the efficiency winner — "
           "one exploratory flood, then unicast down the reinforced "
           "gradient (~half of flooding's frames at equal delivery). SPIN "
           "costs MORE than flooding on this workload: every reading is "
           "novel everywhere, so every node still pulls every payload and "
           "the ADV/REQ handshake is pure overhead — SPIN's savings require "
           "REDUNDANT observations (the implosion/overlap problems of "
           "§2.2.1), not unique-data gathering. Gossip's random walk is "
           "cheap but loses half the readings to its TTL.\n\n";
  }

  // --- PEGASIS vs LEACH vs single-sink: energy per delivered reading --------
  {
    std::vector<core::ScenarioConfig> configs;
    for (auto protocol :
         {core::ProtocolKind::kLeach, core::ProtocolKind::kPegasis,
          core::ProtocolKind::kSingleSink}) {
      core::ScenarioConfig cfg;
      cfg.protocol = protocol;
      cfg.sensorCount = 80;
      cfg.gatewayCount = 1;
      cfg.feasiblePlaceCount = 2;
      cfg.gatewaysMove = false;
      cfg.width = 180;
      cfg.height = 180;
      cfg.rounds = 8;
      cfg.packetsPerSensorPerRound = 2;
      cfg.seed = 19;
      configs.push_back(cfg);
    }
    const auto results = core::runScenariosParallel(configs, args.threads);

    TextTable table({"protocol", "PDR", "energy/reading uJ", "data frames",
                     "D2 (uJ²)"});
    for (const auto& r : results) {
      const double perReading =
          r.delivered
              ? r.sensorEnergy.totalJ / static_cast<double>(r.delivered)
              : 0.0;
      table.addRow({r.protocol, TextTable::num(r.deliveryRatio, 3),
                    TextTable::num(perReading * 1e6, 1),
                    TextTable::num(r.dataFrames),
                    TextTable::num(r.sensorEnergy.varianceD2 * 1e6, 1)});
    }
    core::printSection(
        std::cout, "gathering baselines, 80 sensors, single sink, 8 rounds",
        table);
    std::cout << "expected shape: PEGASIS's short chain links + one uplink "
                 "per flush beat LEACH's cluster long-hauls on energy per "
                 "reading; both beat hop-by-hop single-sink relaying on "
                 "per-node balance.\n\n";
  }

  // --- TEEN's soft-threshold knob ---------------------------------------------
  {
    TextTable table({"soft threshold", "sensing events", "reports sent",
                     "suppression %", "energy/sensor mJ"});
    CsvWriter csv({"soft_threshold", "sensing_events", "reports",
                   "suppression_pct", "energy_mj"});
    for (double soft : {0.0, 1.0, 2.0, 5.0, 10.0, 20.0}) {
      core::ScenarioConfig cfg;
      cfg.protocol = core::ProtocolKind::kTeen;
      cfg.sensorCount = 60;
      cfg.gatewayCount = 1;
      cfg.feasiblePlaceCount = 2;
      cfg.width = 150;
      cfg.height = 150;
      cfg.gatewaysMove = false;
      cfg.rounds = 6;
      cfg.packetsPerSensorPerRound = 6;  // six sensing events per round
      cfg.teen.hardThreshold = 20.0;
      cfg.teen.softThreshold = soft;
      cfg.seed = 23;

      auto scenario = core::buildScenario(cfg);
      core::Experiment experiment(*scenario);
      const auto r = experiment.run();

      std::uint64_t sensed = 0, reported = 0;
      for (net::NodeId s : scenario->network->sensorIds()) {
        const auto& teen =
            dynamic_cast<const routing::TeenRouting&>(scenario->stack->at(s));
        sensed += teen.sensingEvents();
        reported += teen.reportsSent();
      }
      const double suppression =
          sensed ? 100.0 * (1.0 - static_cast<double>(reported) /
                                      static_cast<double>(sensed))
                 : 0.0;
      table.addRow({TextTable::num(soft, 1), TextTable::num(sensed),
                    TextTable::num(reported),
                    TextTable::num(suppression, 1),
                    TextTable::num(r.sensorEnergy.meanJ * 1e3, 3)});
      csv.addRow({TextTable::num(soft, 1), TextTable::num(sensed),
                  TextTable::num(reported), TextTable::num(suppression, 2),
                  TextTable::num(r.sensorEnergy.meanJ * 1e3, 4)});
    }
    core::printSection(
        std::cout,
        "TEEN: soft threshold vs reporting rate (hard threshold fixed)",
        table);
    std::cout << "expected shape: suppression (energy saved) rises "
                 "monotonically with the soft threshold — the energy/"
                 "accuracy dial of §2.2.2, measured.\n";
    bench::maybeWriteCsv(args, csv);
  }
  return 0;
}
