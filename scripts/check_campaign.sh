#!/usr/bin/env bash
# Campaign orchestration smoke gate (scripts/check_all.sh "campaign" row).
# Exercises the wmsn_campaign determinism contract on campaigns/smoke.spec:
#
#   1. worker-count independence  — the artifact from --workers 1 and
#      --workers 4 must be byte-identical
#   2. kill + resume              — run with --stop-after (deterministic
#      mid-campaign stop, exit 3), then --resume; the final artifact must be
#      byte-identical to the uninterrupted one
#   3. crash isolation            — WMSN_CAMPAIGN_CRASH_RUN kills one worker
#      mid-run; the campaign must still complete (exit 0) and record exactly
#      that run as failed
#
# usage: check_campaign.sh <path-to-wmsn_campaign> <repo-source-dir>
set -euo pipefail

bin="${1:?usage: check_campaign.sh <wmsn_campaign> <source-dir>}"
srcdir="${2:?usage: check_campaign.sh <wmsn_campaign> <source-dir>}"
spec="$srcdir/campaigns/smoke.spec"
[ -f "$spec" ] || { echo "check_campaign: missing $spec" >&2; exit 1; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

run() {  # out-tag extra-args...
  local tag="$1"; shift
  "$bin" "$spec" --out "$work/$tag.json" --journal "$work/$tag.journal" \
         --quiet "$@"
}

# 1. Worker-count independence.
run w1 --workers 1
run w4 --workers 4
cmp -s "$work/w1.json" "$work/w4.json" || {
  echo "check_campaign: artifact differs between --workers 1 and 4" >&2
  exit 1
}

# 2. Kill mid-campaign (exit 3 by contract), then resume to the same bytes.
set +e
run resumed --workers 2 --stop-after 3
stop_status=$?
set -e
[ "$stop_status" -eq 3 ] || {
  echo "check_campaign: --stop-after exited $stop_status, expected 3" >&2
  exit 1
}
[ ! -f "$work/resumed.json" ] || {
  echo "check_campaign: --stop-after must not write the artifact" >&2
  exit 1
}
run resumed --workers 2 --resume
cmp -s "$work/w1.json" "$work/resumed.json" || {
  echo "check_campaign: resumed artifact differs from uninterrupted run" >&2
  exit 1
}

# 3. Crash isolation: one injected worker death -> exactly one failed run,
#    campaign completes.
WMSN_CAMPAIGN_CRASH_RUN="mlr/baseline/s3" run crash --workers 2
grep -q '"runs_failed": 1' "$work/crash.json" || {
  echo "check_campaign: injected crash not recorded as one failed run" >&2
  exit 1
}
grep -q 'worker process died mid-run' "$work/crash.json" || {
  echo "check_campaign: crashed run missing its failure reason" >&2
  exit 1
}

echo "check_campaign: worker-count, resume and crash-isolation gates green"
