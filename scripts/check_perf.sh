#!/usr/bin/env bash
# Perf-counter gate (scripts/check_all.sh "perf" row). Four contracts:
#
#   1. zero perturbation — arming the perf ledger (--perf-out) must not
#      change a single byte of the run's stdout or its metrics registry.
#      The pinned scenario runs twice, counters off and on; the only
#      allowed difference is the "(perf counters written to ...)" notice
#      line, which is stripped before the diff.
#   2. pre-grid byte identity — the pinned 1k kernel scenario (the 1k
#      point of campaigns/kernel_scale.spec) must reproduce the committed
#      tests/golden/kernel_1k/ stdout and metrics registry byte for byte.
#      That golden was captured on the pre-spatial-grid O(n²) kernel, so
#      this is the standing proof that the grid + active-set kernel
#      (docs/KERNEL.md) changed HOW the work is done, not WHAT happens.
#   3. pairs budget — at the 4k curve point, pairs_examined (grid
#      candidates) must stay within an O(n·k) budget: at most
#      WMSN_PERF_PAIRS_BUDGET_PER_FRAME (default 200) candidates per
#      transmitted frame. The pre-grid kernel examined ~4000 per frame
#      (one per node); the grid examines ~19. A regression back toward
#      all-pairs scanning trips this long before it trips a wall-clock
#      gate.
#   4. throughput smoke  — the 1k point of the committed kernel-scaling
#      baseline (BENCH_kernel.json, campaigns/kernel_scale.spec) must be
#      reproducible: best-of-3 rounds/sec within a tolerance of the
#      committed figure, re-measured through wmsn_campaign's fork pool —
#      the same machinery that produced the baseline, so the comparison is
#      apples-to-apples. Default ±20%; override with
#      WMSN_PERF_RPS_TOLERANCE_PCT for slower/noisier machines. SKIPs when
#      the baseline file or the wmsn_campaign binary is absent.
#
# usage: check_perf.sh <path-to-wmsn_cli> <repo-source-dir> [wmsn_campaign]
# exit: 0 ok (including SKIPped smoke), 1 contract broken, 2 usage.
set -euo pipefail

cli="${1:?usage: check_perf.sh <wmsn_cli> <source-dir> [wmsn_campaign]}"
srcdir="${2:?usage: check_perf.sh <wmsn_cli> <source-dir> [wmsn_campaign]}"
campaign="${3:-}"
[ -x "$cli" ] || { echo "check_perf: $cli not executable" >&2; exit 2; }
cli="$(cd "$(dirname "$cli")" && pwd)/$(basename "$cli")"  # survives the cd below

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# --- 1. zero perturbation on the pinned scenario ---------------------------
pinned=(--protocol mlr --sensors 40 --gateways 2 --places 4 --area 140
        --rounds 3 --seed 5)

# Each pass runs in its own directory with identical relative output paths,
# so the "(metrics written to ...)" notice is byte-identical too and the
# stdout diff stays strict.
mkdir "$work/off" "$work/on"
(cd "$work/off" && "$cli" "${pinned[@]}" --metrics-out metrics.json) \
    >"$work/off.stdout"
(cd "$work/on" && "$cli" "${pinned[@]}" --metrics-out metrics.json \
     --perf-out perf.json) >"$work/on.stdout.raw"
grep -v '^(perf counters' "$work/on.stdout.raw" >"$work/on.stdout"

if ! diff -u "$work/off.stdout" "$work/on.stdout" >"$work/stdout.diff"; then
  echo "check_perf: stdout changed when perf counters were armed:" >&2
  cat "$work/stdout.diff" >&2
  exit 1
fi
if ! cmp -s "$work/off/metrics.json" "$work/on/metrics.json"; then
  echo "check_perf: metrics registry changed when perf counters were" \
       "armed (wmsn_perf_* must only ever appear in --perf-out)" >&2
  exit 1
fi

# The armed run must actually have counted something.
python3 - "$work/on/perf.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc["counters"]
assert counters["frames_transmitted"] > 0, counters
assert counters["pairs_examined"] > 0, counters
assert doc["telemetry"]["rounds"] == 3, doc["telemetry"]
assert doc["telemetry"]["rounds_per_sec"] > 0, doc["telemetry"]
EOF
echo "check_perf: zero-perturbation ok (stdout + metrics byte-identical)"

# --- 2. byte identity vs the committed pre-grid golden ---------------------
# The exact [variant 1k] scenario of campaigns/kernel_scale.spec. The golden
# was captured before the spatial-grid kernel landed; any stdout or metrics
# drift here means the kernel changed simulation outcomes, not just cost.
kernel1k=(--protocol mlr --deployment grid --sensors 1000 --gateways 2
          --places 4 --area 630 --rounds 2 --static --workload poisson
          --rate 0.07 --seed 31)
mkdir "$work/golden"
(cd "$work/golden" && "$cli" "${kernel1k[@]}" --metrics-out metrics.json) \
    >"$work/golden.stdout"
if ! diff -u "$srcdir/tests/golden/kernel_1k/stdout.txt" \
             "$work/golden.stdout" >"$work/golden.diff"; then
  echo "check_perf: 1k kernel scenario stdout drifted from the pre-grid" \
       "golden (tests/golden/kernel_1k/stdout.txt):" >&2
  head -40 "$work/golden.diff" >&2
  exit 1
fi
if ! cmp -s "$srcdir/tests/golden/kernel_1k/metrics.json" \
            "$work/golden/metrics.json"; then
  echo "check_perf: 1k kernel scenario metrics drifted from the pre-grid" \
       "golden (tests/golden/kernel_1k/metrics.json)" >&2
  exit 1
fi
echo "check_perf: pre-grid golden ok (1k stdout + metrics byte-identical)"

# --- 3. pairs budget at the 4k curve point ---------------------------------
kernel4k=(--protocol mlr --deployment grid --sensors 4000 --gateways 2
          --places 4 --area 1270 --rounds 2 --static --workload poisson
          --rate 0.0175 --seed 31)
mkdir "$work/pairs"
(cd "$work/pairs" && "$cli" "${kernel4k[@]}" --perf-out perf.json) \
    >/dev/null
budget="${WMSN_PERF_PAIRS_BUDGET_PER_FRAME:-200}"
python3 - "$work/pairs/perf.json" "$budget" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
budget = float(sys.argv[2])
pairs = doc["counters"]["pairs_examined"]
frames = doc["counters"]["frames_transmitted"]
assert frames > 0 and pairs > 0, doc["counters"]
per_frame = pairs / frames
ok = per_frame <= budget
print(f"check_perf: 4k pairs budget {per_frame:.1f} candidates/frame "
      f"(budget {budget:g}; all-pairs would be ~4000) "
      f"{'ok' if ok else 'EXCEEDED'}")
sys.exit(0 if ok else 1)
EOF

# --- 4. throughput smoke vs the committed baseline -------------------------
baseline="$srcdir/BENCH_kernel.json"
if [ ! -f "$baseline" ]; then
  echo "check_perf: SKIP throughput smoke (no BENCH_kernel.json)"
  exit 0
fi
if [ -z "$campaign" ] || [ ! -x "$campaign" ]; then
  echo "check_perf: SKIP throughput smoke (no wmsn_campaign binary)"
  exit 0
fi

committed="$(python3 - "$baseline" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for run in doc["runs"]:
    if run["cell"] == "1k" and run["status"] == "ok":
        print(run["perf_rounds_per_sec"])
        break
EOF
)"
if [ -z "$committed" ]; then
  echo "check_perf: BENCH_kernel.json has no 1k cell" >&2
  exit 1
fi

# Re-run the 1k curve point (campaigns/kernel_scale.spec [variant 1k])
# through the fork pool that produced the baseline, best of 3 so scheduler
# noise costs retries, not false failures.
cat >"$work/smoke.spec" <<'EOF'
name = kernel_scale_smoke
seed = 31
repeats = 1
protocol = mlr
deployment = grid
gateways = 2
places = 4
rounds = 2
static = on
workload = poisson
perf = on

[variant 1k]
sensors = 1000
area = 630
rate = 0.07

[sweep]
variant = 1k
EOF
best=0
for rep in 1 2 3; do
  "$campaign" "$work/smoke.spec" --out "$work/smoke$rep.json" \
              --journal "$work/smoke$rep.journal" --quiet
  rps="$(python3 -c \
    "import json;print(json.load(open('$work/smoke$rep.json'))['runs'][0]['perf_rounds_per_sec'])")"
  best="$(python3 -c "print(max($best, $rps))")"
done

tol="${WMSN_PERF_RPS_TOLERANCE_PCT:-20}"
python3 - "$best" "$committed" "$tol" <<'EOF' || exit 1
import sys
best, committed, tol = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
lo, hi = committed * (1 - tol / 100), committed * (1 + tol / 100)
ok = lo <= best <= hi
print(f"check_perf: 1k rounds/sec {best:.3f} vs committed {committed:.3f} "
      f"(tolerance +/-{tol:g}%) {'ok' if ok else 'OUT OF RANGE'}")
sys.exit(0 if ok else 1)
EOF
echo "check_perf: ok"
