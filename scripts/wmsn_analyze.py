#!/usr/bin/env python3
"""wmsn-analyze — the project determinism auditor.

Statically enforces the byte-identity contract (output identical across
`--threads`, `--resume`, and worker crashes) over every translation unit
in src/ tests/ bench/ examples/. Pure stdlib Python: runs everywhere
scripts/check_all.sh does.

Rule pack (see `--list-rules` and DESIGN.md "Correctness tooling"):

  R1-unordered-iteration  iteration over std::unordered_{map,set} in any
                          file #include-reachable from the output/metrics/
                          trace/artifact path classes
                          (tools/analyze/manifest.toml)
  R2-pointer-keyed-order  std::map<T*,..>/std::set<T*>, std::hash/less
                          over pointers — ordering by heap address
  R3-nondet-source        wall clock, std::random_device, rand(), getenv,
                          <random>/<ctime> outside the whitelisted
                          telemetry files and the RNG facade
  R4-rng-draw-divergence  util::Rng draws inside conditionals not
                          annotated `// wmsn:fixed-draws`
  R5-float-reduction      floating-point +=/-= reductions in files the
                          kernel rewrite will parallelize
  R6-macro-discipline     WMSN_TRACE / WMSN_PERF null-guard discipline;
                          side-effect-free WMSN_INVARIANT conditions
  (plus the legacy wmsn-lint rules: float-equality, observer-contract,
   include-guard, process-discipline, rangescan-discipline)

Suppressions for the determinism rules live ONLY in the committed,
audited ledger tools/analyze/suppressions.toml — every entry needs a
justification, and stale entries are findings themselves. Legacy rules
keep honouring `// wmsn-lint: allow(<rule>)` inline comments.

usage: wmsn_analyze.py [--root DIR] [--list-rules] [--json]
                       [--rules A,B] [--fixtures [DIR]]
exit status: 0 clean, 1 findings, 2 usage error.
"""

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools", "analyze"))

from driver import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
