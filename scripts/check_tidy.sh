#!/usr/bin/env bash
# clang-tidy gate: run the committed .clang-tidy over every translation unit
# in src/ tests/ bench/ examples/ and fail on any finding.
#
# The container image does not always ship clang-tidy (only the gcc
# toolchain is baked in), so the gate degrades gracefully: with no
# clang-tidy on PATH it reports SKIP and exits 0, unless --require is
# passed (CI images that do ship it should pass --require so the gate can
# never silently rot). Override the binary with $CLANG_TIDY.
#
# usage: check_tidy.sh [--require] [build-dir]
#   build-dir: an existing CMake build tree with compile_commands.json
#              (default: <repo>/build-tidy, configured on demand)
set -uo pipefail

require=0
if [ "${1:-}" = "--require" ]; then
  require=1
  shift
fi

scriptdir="$(cd "$(dirname "$0")" && pwd)"
repo="$(dirname "$scriptdir")"
builddir="${1:-$repo/build-tidy}"

tidy="${CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
  for candidate in clang-tidy clang-tidy-{21,20,19,18,17,16,15,14}; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi

if [ -z "$tidy" ]; then
  if [ "$require" -eq 1 ]; then
    echo "check_tidy: clang-tidy not found and --require given" >&2
    exit 1
  fi
  echo "check_tidy: SKIP (clang-tidy not installed; set \$CLANG_TIDY or" \
       "install it to enable the gate)"
  exit 0
fi

# The gate needs a compilation database; configure a dedicated tree once.
if [ ! -f "$builddir/compile_commands.json" ]; then
  echo "check_tidy: configuring $builddir for compile_commands.json"
  cmake -B "$builddir" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null || exit 1
fi

mapfile -t sources < <(find "$repo/src" "$repo/tests" "$repo/bench" \
                            "$repo/examples" -name '*.cpp' \
                            -not -path '*/golden/*' | sort)
echo "check_tidy: $tidy over ${#sources[@]} translation units"

status=0
logfile="$(mktemp)"
trap 'rm -f "$logfile"' EXIT
for src in "${sources[@]}"; do
  if ! "$tidy" -p "$builddir" --quiet "$src" >>"$logfile" 2>/dev/null; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  grep -E "(warning|error):" "$logfile" | sort -u
  echo "check_tidy: FAIL — findings above" >&2
else
  echo "check_tidy: clean"
fi
exit "$status"
