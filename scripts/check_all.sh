#!/usr/bin/env bash
# check_all.sh — the one-stop correctness gate. Runs, in order:
#
#   werror       full tree with -Werror (WMSN_WERROR=ON); under --quick this
#                gate also runs the tier-1 ctest suite
#   asan-ubsan   full ctest under AddressSanitizer + UBSanitizer
#   tsan         full ctest under ThreadSanitizer (the threaded repeat-mode
#                determinism tests included)
#   invariants   full ctest with WMSN_INVARIANTS=ON (runtime protocol checks
#                live; the deliberate-violation tests fire)
#   clang-tidy   scripts/check_tidy.sh over the committed .clang-tidy
#                (SKIPs when clang-tidy is not installed)
#   wmsn-lint    legacy lint rule group via the deprecated wmsn_lint.py shim
#   analyze      scripts/wmsn_analyze.py determinism auditor: R1-R6
#                ordering/RNG rules + absorbed lint rules + the audited
#                suppression ledger, then its fixture self-test corpus
#   docs         scripts/check_docs.sh CLI-flag/documentation drift
#   campaign     scripts/check_campaign.sh kill/resume/crash-containment
#   perf         scripts/check_perf.sh perf-counter zero-perturbation
#                (byte-identical stdout/metrics with counters armed) and
#                the BENCH_kernel.json 1k rounds/sec smoke
#   obs-budget   bench_obs_overhead --check observability overhead budget
#                (null trace sink <= 2%, sampled span tracing <= 5%,
#                perf counters off <= 2% / on <= 5%)
#
# and prints a per-gate summary table with wall time. Exit 0 iff no gate
# FAILed. SKIPs are not failures — a gate whose tool is absent from the
# image, or that --quick elides, reports SKIP with the reason, never a
# silent pass.
#
# usage: check_all.sh [--quick] [--jobs N]
#   --quick   the fast pre-commit loop: werror build + tier-1 ctest +
#             wmsn-lint + analyze. Sanitizer/invariants rebuilds and the
#             binary-driven gates report SKIP (--quick). Reuses an existing
#             build-werror cache when present.
#   --jobs N  parallel build/test jobs (default: nproc)
set -uo pipefail

scriptdir="$(cd "$(dirname "$0")" && pwd)"
repo="$(dirname "$scriptdir")"
jobs="$(nproc 2>/dev/null || echo 2)"
quick=0
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick=1 ;;
    --jobs) shift; jobs="${1:?--jobs needs a value}" ;;
    *) echo "usage: check_all.sh [--quick] [--jobs N]" >&2; exit 2 ;;
  esac
  shift
done

declare -a gate_names=() gate_results=() gate_notes=() gate_secs=()
overall=0
mark=$SECONDS

note_gate() {  # name result note
  gate_names+=("$1")
  gate_results+=("$2")
  gate_notes+=("$3")
  gate_secs+=("$((SECONDS - mark))")
  mark=$SECONDS
  [ "$2" = "FAIL" ] && overall=1
  echo "=== $1: $2 ${3:+($3)}"
}

configure() {  # dir flags...
  local dir="$1"; shift
  if [ "$quick" -eq 1 ] && [ -f "$repo/$dir/CMakeCache.txt" ]; then
    return 0
  fi
  cmake -B "$repo/$dir" -S "$repo" "$@" >/dev/null
}

build_and_test() {  # gate-name dir run-ctest flags...
  local name="$1" dir="$2" run_ctest="$3"; shift 3
  echo "=== $name: configuring + building $dir"
  if ! configure "$dir" "$@"; then
    note_gate "$name" FAIL "cmake configure failed"
    return
  fi
  if ! cmake --build "$repo/$dir" -j "$jobs" >"$repo/$dir/build.log" 2>&1; then
    tail -n 40 "$repo/$dir/build.log"
    note_gate "$name" FAIL "build failed (full log: $dir/build.log)"
    return
  fi
  if [ "$run_ctest" = "no-ctest" ]; then
    note_gate "$name" PASS "build clean"
    return
  fi
  if (cd "$repo/$dir" && ctest --output-on-failure -j "$jobs" \
        >"$repo/$dir/ctest.log" 2>&1); then
    local count
    count="$(grep -oE '[0-9]+ tests? passed' "$repo/$dir/ctest.log" | head -1)"
    note_gate "$name" PASS "${count:-ctest green}"
  else
    tail -n 60 "$repo/$dir/ctest.log"
    note_gate "$name" FAIL "ctest failed (full log: $dir/ctest.log)"
  fi
}

# 1. -Werror across src/ tests/ bench/ examples/. Under --quick this tree
#    also carries the tier-1 ctest suite (the only build --quick does).
if [ "$quick" -eq 1 ]; then
  build_and_test werror build-werror ctest -DWMSN_WERROR=ON
else
  build_and_test werror build-werror no-ctest -DWMSN_WERROR=ON
fi

# 2-4. Sanitizer + invariants rebuilds — the expensive gates --quick elides.
if [ "$quick" -eq 1 ]; then
  note_gate asan-ubsan SKIP "--quick"
  note_gate tsan SKIP "--quick"
  note_gate invariants SKIP "--quick"
else
  build_and_test asan-ubsan build-asan ctest -DWMSN_ASAN_UBSAN=ON
  # TSan: the threaded repeat-mode determinism tests are the point —
  # repeat-mode workers must stay race-free.
  build_and_test tsan build-tsan ctest -DWMSN_TSAN=ON
  # Runtime invariants live, full suite (violation tests fire here).
  build_and_test invariants build-invariants ctest -DWMSN_INVARIANTS=ON
fi

# 5. clang-tidy gate (SKIPs if the binary is absent).
if [ "$quick" -eq 1 ]; then
  note_gate clang-tidy SKIP "--quick"
else
  tidy_out="$("$scriptdir/check_tidy.sh" 2>&1)"; tidy_status=$?
  echo "$tidy_out"
  if [ "$tidy_status" -ne 0 ]; then
    note_gate clang-tidy FAIL "see findings above"
  elif echo "$tidy_out" | grep -q "SKIP"; then
    note_gate clang-tidy SKIP "clang-tidy not installed"
  else
    note_gate clang-tidy PASS "zero findings"
  fi
fi

# 6. Legacy lint group via the back-compat shim (keeps the historical gate
#    row alive while anything still invokes wmsn_lint.py).
if lint_out="$(python3 "$scriptdir/wmsn_lint.py" --root "$repo" 2>&1)"; then
  note_gate wmsn-lint PASS "$(echo "$lint_out" | tail -1)"
else
  echo "$lint_out"
  note_gate wmsn-lint FAIL "findings above"
fi

# 7. Determinism auditor: full rule pack + ledger audit over the tree, then
#    the fixture corpus that tests the analyzer itself.
if an_out="$(python3 "$scriptdir/wmsn_analyze.py" --root "$repo" 2>&1)"; then
  if fx_out="$(python3 "$scriptdir/wmsn_analyze.py" --fixtures 2>&1)"; then
    note_gate analyze PASS \
      "$(echo "$an_out" | tail -1); $(echo "$fx_out" | tail -1)"
  else
    echo "$fx_out"
    note_gate analyze FAIL "fixture self-test mismatches above"
  fi
else
  echo "$an_out"
  note_gate analyze FAIL "unsuppressed findings above"
fi

cli="$repo/build-werror/examples/wmsn_cli"
campaign_cli="$repo/build-werror/examples/wmsn_campaign"

if [ "$quick" -eq 1 ]; then
  note_gate docs SKIP "--quick"
  note_gate campaign SKIP "--quick"
  note_gate perf SKIP "--quick"
  note_gate obs-budget SKIP "--quick"
else
  # 8. Documentation drift (needs built CLIs; the werror tree has them).
  if [ -x "$cli" ] && [ -x "$campaign_cli" ]; then
    if docs_out="$(bash "$scriptdir/check_docs.sh" "$cli" "$repo" \
                   "$campaign_cli" 2>&1)"; then
      note_gate docs PASS "$(echo "$docs_out" | tail -1)"
    else
      echo "$docs_out"
      note_gate docs FAIL "drift above"
    fi
  else
    note_gate docs SKIP "no CLI binaries (werror build failed?)"
  fi

  # 9. Campaign orchestration smoke gate: run → kill → --resume must land on
  #    the same bytes as uninterrupted, across worker counts, and an injected
  #    worker crash must be contained to one failed run.
  if [ -x "$campaign_cli" ]; then
    if camp_out="$(bash "$scriptdir/check_campaign.sh" "$campaign_cli" \
                   "$repo" 2>&1)"; then
      note_gate campaign PASS "$(echo "$camp_out" | tail -1)"
    else
      echo "$camp_out"
      note_gate campaign FAIL "see above"
    fi
  else
    note_gate campaign SKIP "no wmsn_campaign binary (werror build failed?)"
  fi

  # 10. Perf-counter discipline: arming the deterministic work-counter ledger
  #     must not perturb a single output byte, and the committed
  #     kernel-scaling baseline's 1k point must still be reproducible.
  if [ -x "$cli" ]; then
    if perf_out="$(bash "$scriptdir/check_perf.sh" "$cli" "$repo" \
                   "$campaign_cli" 2>&1)"; then
      if echo "$perf_out" | grep -q "SKIP"; then
        note_gate perf PASS "zero-perturbation ok; smoke SKIPped (no baseline)"
      else
        note_gate perf PASS "$(echo "$perf_out" | tail -1)"
      fi
    else
      echo "$perf_out"
      note_gate perf FAIL "see above"
    fi
  else
    note_gate perf SKIP "no wmsn_cli binary (werror build failed?)"
  fi

  # 11. Observability overhead budget: causal tracing must not distort the
  #     experiments it observes. Evaluated on min-of-reps wall time, so a
  #     noisy scheduler costs retries, not false failures.
  obs_bench="$repo/build-werror/bench/bench_obs_overhead"
  if [ -x "$obs_bench" ]; then
    if obs_out="$("$obs_bench" --reps 5 --check 2>&1)"; then
      note_gate obs-budget PASS "$(echo "$obs_out" | tail -1)"
    else
      echo "$obs_out"
      note_gate obs-budget FAIL "budget exceeded (see above)"
    fi
  else
    note_gate obs-budget SKIP "no bench_obs_overhead binary"
  fi
fi

echo
echo "┌──────────────┬────────┬────────┬──────────────────────────────────────────────┐"
printf "│ %-12s │ %-6s │ %6s │ %-44s │\n" "gate" "result" "time" "detail"
echo "├──────────────┼────────┼────────┼──────────────────────────────────────────────┤"
for i in "${!gate_names[@]}"; do
  printf "│ %-12s │ %-6s │ %5ss │ %-44.44s │\n" \
         "${gate_names[$i]}" "${gate_results[$i]}" "${gate_secs[$i]}" \
         "${gate_notes[$i]}"
done
echo "└──────────────┴────────┴────────┴──────────────────────────────────────────────┘"

if [ "$overall" -eq 0 ]; then
  echo "check_all: all gates green"
else
  echo "check_all: FAILURES above" >&2
fi
exit "$overall"
