#!/usr/bin/env python3
"""wmsn-lint — DEPRECATED shim over scripts/wmsn_analyze.py.

The legacy lint rules (rng-discipline, float-equality, observer-contract,
include-guard, banned-header, process-discipline, trace-discipline,
perf-discipline, rangescan-discipline) now live in the determinism auditor's
rule pack (tools/analyze/rules.py), alongside the R1-R6 ordering/RNG rules.
This entry point keeps the historical CLI working — same flags, same exit
codes, now with --json — but runs only the legacy "lint" rule group.

Run the full auditor instead:

    python3 scripts/wmsn_analyze.py --root . [--json] [--list-rules]

This shim will be removed once nothing invokes it; new callers (CI rows,
editor integrations) should target wmsn_analyze.py directly.
"""

import os
import sys

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO, "tools", "analyze"))

import driver  # noqa: E402


def main(argv=None):
    args = list(argv) if argv is not None else sys.argv[1:]
    return driver.main(
        args + ["--rules", "lint"],
        label="wmsn-lint",
        deprecation_note=(
            "note: wmsn_lint.py is a deprecated shim; it runs only the "
            "legacy lint rules. Use scripts/wmsn_analyze.py for the full "
            "determinism rule pack."
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
