#!/usr/bin/env python3
"""wmsn-lint — project-specific static checker for the wmsn tree.

Enforces the repo-wide invariants that generic tooling cannot know about:

  rng-discipline    All simulation randomness flows through wmsn::Rng
                    (src/util/random.*). std::rand, srand, random_device,
                    mt19937, time(nullptr)/time(NULL) and wall-clock
                    system_clock anywhere else silently break the
                    bit-for-bit replay guarantee that the repeat-mode and
                    fault-seed determinism tests rely on.
                    (steady_clock is fine: it only feeds profiling.)

  float-equality    Raw == / != against floating-point literals compares
                    metrics for exact equality; use a tolerance or an
                    ordered comparison. GTest EXPECT_*/ASSERT_* lines are
                    exempt — determinism tests intentionally compare exact
                    replayed values.

  observer-contract Observer fan-out goes through obs::ObserverMux
                    (src/obs/mux.hpp): consumers attach under a unique
                    string-literal name. Single-slot std::function observer
                    members and mux attaches whose name is not a literal
                    defeat the double-attach check the contract documents.

  include-guard     Every header starts with #pragma once.

  banned-header     <random> and <ctime> are banned outside
                    src/util/random.* — their only legitimate use is inside
                    the deterministic RNG façade.

  process-discipline
                    fork/exec/system/popen/posix_spawn are confined to
                    src/campaign/ — the campaign worker pool owns process
                    creation (crash isolation, fd hygiene, reaping). A
                    stray fork elsewhere duplicates simulator state and
                    sanitizer runtimes in ways the pool is built to
                    contain. (Member calls like rng.fork() are fine.)

  trace-discipline  Hot-path trace emission goes through the WMSN_TRACE
                    macro (src/obs/packet_trace.hpp): it null-guards the
                    tracer and keeps every emission site greppable. Direct
                    emitSpan()/onEvent() calls outside src/obs/ bypass the
                    guard and the disabled-tracing zero-cost contract.
                    (Tests may drive sinks directly.)

  perf-discipline   Hot-path work-counter increments go through the
                    WMSN_PERF macro (src/obs/perf_stats.hpp): it
                    null-guards the active ledger so disabled counters
                    cost one thread-local load. A direct
                    PerfStats::add(PerfCounter...) outside src/obs/
                    bypasses the guard and crashes when no ledger is
                    active. (Tests may drive ledgers directly.)

  rangescan-discipline
                    Radio-range membership tests (RadioModel::linked)
                    outside the kernel layers re-introduce the all-pairs
                    O(n²) position scans the sim::SpatialGrid deleted
                    (docs/KERNEL.md). Range queries go through
                    SensorNetwork::neighborsOf or the grid; only src/sim/,
                    src/net/ (the radio model and its grid-fed callers)
                    and src/mesh/ (its own small topology) may call
                    linked() directly. Tests/benches compare against
                    brute force by design.

Suppress a finding with an inline comment on the offending line (or the
line directly above):   // wmsn-lint: allow(<rule-id>)

usage: wmsn_lint.py [--root DIR] [--list-rules]
exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = (".cpp", ".hpp", ".h")

# Files exempt from the RNG / banned-header discipline: the deterministic
# RNG façade itself.
RNG_EXEMPT = re.compile(r"src[/\\]util[/\\]random\.(cpp|hpp)$")

ALLOW = re.compile(r"wmsn-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

RULES = {
    "rng-discipline": "non-deterministic randomness/clock outside src/util/random.*",
    "float-equality": "raw ==/!= on floating-point values",
    "observer-contract": "observer wiring outside the ObserverMux contract",
    "include-guard": "header missing #pragma once",
    "banned-header": "<random>/<ctime> outside src/util/random.*",
    "process-discipline": "fork/exec/system/popen outside src/campaign/",
    "trace-discipline": "direct emitSpan/onEvent outside src/obs/ (use WMSN_TRACE)",
    "perf-discipline": "direct PerfCounter add outside src/obs/ (use WMSN_PERF)",
    "rangescan-discipline":
        "direct linked() range test outside src/sim|net|mesh (use "
        "neighborsOf / the spatial grid)",
}

RNG_TOKENS = [
    (re.compile(r"\bstd::rand\b|\brand\s*\(\s*\)"), "std::rand"),
    (re.compile(r"\bsrand\s*\("), "srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time(nullptr)"),
    (re.compile(r"\bsystem_clock\b"), "wall-clock system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "high_resolution_clock"),
]

FLOAT_EQ = re.compile(
    r"(?<![=!<>+\-*/&|^])(==|!=)\s*[+-]?\d+\.\d*(?![\w.])"
    r"|[+-]?\d+\.\d*\s*(==|!=)(?![=])"
)

GTEST_LINE = re.compile(r"\b(EXPECT|ASSERT)_[A-Z_]+\s*\(")

# A mux attach: <something>bservers_.attach( or the documented wrapper
# entry points. The first argument must be a string literal so name
# uniqueness stays auditable at the call site.
MUX_ATTACH = re.compile(
    r"\b\w*[oO]bservers?_\.attach\s*\(\s*(?P<arg>[^),]*)"
)
STRING_LITERAL = re.compile(r'^\s*"')

# The pre-mux single-slot pattern: a std::function member whose name ends
# in Observer_/observer_. The mux replaced these; re-introducing one brings
# back silent observer eviction.
SINGLE_SLOT = re.compile(r"std::function\s*<[^;]*>\s*\w*[oO]bserver_\s*[;{=]")

BANNED_INCLUDE = re.compile(r'#\s*include\s*<(random|ctime)>')

# Process creation calls. The lookbehind excludes member calls (rng.fork(),
# obj->fork()) and identifiers that merely end in a banned name; a plain or
# globally-qualified (::fork) call matches. The Rng façade is exempt: its
# stream-splitting member is *named* fork and its declaration line would
# otherwise match.
PROCESS_EXEMPT = re.compile(
    r"src[/\\]campaign[/\\]|src[/\\]util[/\\]random\.(cpp|hpp)$")
PROCESS_CALL = re.compile(
    r"(?<![\w.>])(?:::)?"
    r"(fork|vfork|execl|execle|execlp|execv|execve|execvp|execvpe"
    r"|posix_spawnp?|popen|system)\s*\(")

PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b")

# Trace emission outside the obs layer must ride the WMSN_TRACE macro so
# the null-tracer guard (and the "tracing off costs nothing" contract) is
# uniform. src/obs/ owns the primitives; tests drive sinks directly by
# design.
TRACE_EXEMPT = re.compile(r"src[/\\]obs[/\\]|tests[/\\]")
TRACE_CALL = re.compile(r"\b(emitSpan|onEvent)\s*\(")

# Perf-counter increments outside the obs layer must ride the WMSN_PERF
# macro so the null-ledger guard (and the "counters off costs one TLS
# load" contract) is uniform. Matches add(PerfCounter::...) calls, not
# value() reads; src/obs/ owns the primitives, tests drive ledgers
# directly by design.
PERF_EXEMPT = re.compile(r"src[/\\]obs[/\\]|tests[/\\]")
PERF_CALL = re.compile(
    r"\badd\s*\(\s*(::\s*)?(wmsn\s*::\s*)?(obs\s*::\s*)?PerfCounter\b")

# Radio-range membership tests outside the kernel layers re-grow the O(n²)
# wall the spatial grid removed: every such loop is an all-pairs position
# scan in disguise. The radio model (src/net/) and the grid-backed kernel
# (src/sim/) own the predicate; src/mesh/ runs its own small topology;
# tests and benches compare against brute force by design.
RANGESCAN_EXEMPT = re.compile(
    r"src[/\\](sim|net|mesh)[/\\]|tests[/\\]|bench[/\\]")
RANGESCAN_CALL = re.compile(r"[.>]\s*linked\s*\(")


def allowed(rule, line, prev_line):
    for text in (line, prev_line):
        m = ALLOW.search(text or "")
        if m and rule in [r.strip() for r in m.group(1).split(",")]:
            return True
    return False


def strip_comment(line):
    """Drop // comments and the contents of string literals (crude but
    sufficient: the tree bans multi-line relevant constructs)."""
    out = []
    i, n = 0, len(line)
    in_str = in_chr = False
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_str = False
                out.append('"')
            i += 1
            continue
        if in_chr:
            if c == "\\":
                i += 2
                continue
            if c == "'":
                in_chr = False
                out.append("'")
            i += 1
            continue
        if c == '"':
            in_str = True
            out.append('"')
            i += 1
            continue
        if c == "'":
            in_chr = True
            out.append("'")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path, rel, findings):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        findings.append((rel, 0, "io", str(e)))
        return

    rng_exempt = bool(RNG_EXEMPT.search(rel))
    process_exempt = bool(PROCESS_EXEMPT.search(rel))
    trace_exempt = bool(TRACE_EXEMPT.search(rel))
    perf_exempt = bool(PERF_EXEMPT.search(rel))
    rangescan_exempt = bool(RANGESCAN_EXEMPT.search(rel))
    is_header = rel.endswith((".hpp", ".h"))

    if is_header:
        head = [l for l in lines[:10] if l.strip()]
        if not any(PRAGMA_ONCE.match(l) for l in head):
            findings.append((rel, 1, "include-guard",
                             "header must start with #pragma once"))

    prev = ""
    for i, raw in enumerate(lines, start=1):
        code = strip_comment(raw)

        if not rng_exempt:
            for pattern, label in RNG_TOKENS:
                if pattern.search(code) and not allowed("rng-discipline", raw, prev):
                    findings.append(
                        (rel, i, "rng-discipline",
                         f"{label} breaks deterministic replay; use wmsn::Rng "
                         "(src/util/random.hpp)"))
            if BANNED_INCLUDE.search(code) and not allowed("banned-header", raw, prev):
                findings.append(
                    (rel, i, "banned-header",
                     "<random>/<ctime> only inside src/util/random.*"))

        if (not process_exempt and PROCESS_CALL.search(code)
                and not allowed("process-discipline", raw, prev)):
            findings.append(
                (rel, i, "process-discipline",
                 "process creation is confined to src/campaign/ (the "
                 "campaign worker pool owns fork/exec hygiene)"))

        if (not trace_exempt and TRACE_CALL.search(code)
                and not allowed("trace-discipline", raw, prev)):
            findings.append(
                (rel, i, "trace-discipline",
                 "trace emission outside src/obs/ must go through the "
                 "WMSN_TRACE macro (src/obs/packet_trace.hpp)"))

        if (not perf_exempt and PERF_CALL.search(code)
                and not allowed("perf-discipline", raw, prev)):
            findings.append(
                (rel, i, "perf-discipline",
                 "perf-counter increments outside src/obs/ must go through "
                 "the WMSN_PERF macro (src/obs/perf_stats.hpp)"))

        if (not rangescan_exempt and RANGESCAN_CALL.search(code)
                and not allowed("rangescan-discipline", raw, prev)):
            findings.append(
                (rel, i, "rangescan-discipline",
                 "direct linked() range test re-grows the O(n²) all-pairs "
                 "scan; query SensorNetwork::neighborsOf or the spatial grid "
                 "(docs/KERNEL.md)"))

        if (FLOAT_EQ.search(code) and not GTEST_LINE.search(code)
                and not allowed("float-equality", raw, prev)):
            findings.append(
                (rel, i, "float-equality",
                 "exact ==/!= on a floating-point literal; compare with a "
                 "tolerance or an ordered test"))

        m = MUX_ATTACH.search(code)
        if m and not allowed("observer-contract", raw, prev):
            arg = m.group("arg").strip()
            if not arg and i < len(lines):
                # Call spans lines; the name is the first token of the next.
                arg = strip_comment(lines[i]).strip()
            if not STRING_LITERAL.match(arg):
                findings.append(
                    (rel, i, "observer-contract",
                     "ObserverMux::attach needs a string-literal name at the "
                     "call site (see src/obs/mux.hpp)"))

        if (SINGLE_SLOT.search(code) and "mux.hpp" not in rel
                and not allowed("observer-contract", raw, prev)):
            findings.append(
                (rel, i, "observer-contract",
                 "single-slot std::function observer member; fan out through "
                 "obs::ObserverMux instead (see src/obs/mux.hpp)"))

        prev = raw


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: the linter's grandparent dir)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:18} {desc}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print(f"wmsn-lint: no such directory: {root}", file=sys.stderr)
        return 2

    findings = []
    scanned = 0
    for sub in SCAN_DIRS:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    scanned += 1
                    path = os.path.join(dirpath, name)
                    lint_file(path, os.path.relpath(path, root), findings)

    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"wmsn-lint: {len(findings)} finding(s) in {scanned} files",
              file=sys.stderr)
        return 1
    print(f"wmsn-lint: clean ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
