#!/usr/bin/env bash
# Documentation drift check, run from ctest (-L docs): every flag each
# listed binary advertises in --help must be documented in README.md,
# EXPERIMENTS.md or docs/METRICS.md. Adding a flag without documenting it
# fails the suite.
#
# usage: check_docs.sh <path-to-binary> <repo-source-dir> [more-binaries...]
set -euo pipefail

cli="${1:?usage: check_docs.sh <binary> <source-dir> [more-binaries...]}"
srcdir="${2:?usage: check_docs.sh <binary> <source-dir> [more-binaries...]}"
shift 2
binaries=("$cli" "$@")
docs=("$srcdir/README.md" "$srcdir/EXPERIMENTS.md" "$srcdir/docs/METRICS.md")

for doc in "${docs[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "check_docs: missing documentation file: $doc" >&2
    exit 1
  fi
done

status=0
total=0
for bin in "${binaries[@]}"; do
  name="$(basename "$bin")"
  # Flags are the "  --name" column of the usage text.
  flags=$("$bin" --help | sed -n 's/^ *\(--[a-z][a-z-]*\).*/\1/p' | sort -u)
  if [ -z "$flags" ]; then
    echo "check_docs: extracted no flags from '$bin --help'" >&2
    exit 1
  fi
  for flag in $flags; do
    total=$((total + 1))
    if ! grep -q -- "$flag" "${docs[@]}"; then
      echo "check_docs: $name flag '$flag' is advertised by --help but" \
           "documented in none of: ${docs[*]}" >&2
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "check_docs: all $total flags (${#binaries[@]} binaries) are documented"
fi
exit "$status"
