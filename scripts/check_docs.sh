#!/usr/bin/env bash
# Documentation drift check, run from ctest (-L docs): every flag wmsn_cli
# advertises in --help must be documented in README.md, EXPERIMENTS.md or
# docs/METRICS.md. Adding a flag without documenting it fails the suite.
#
# usage: check_docs.sh <path-to-wmsn_cli> <repo-source-dir>
set -euo pipefail

cli="${1:?usage: check_docs.sh <wmsn_cli> <source-dir>}"
srcdir="${2:?usage: check_docs.sh <wmsn_cli> <source-dir>}"
docs=("$srcdir/README.md" "$srcdir/EXPERIMENTS.md" "$srcdir/docs/METRICS.md")

for doc in "${docs[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "check_docs: missing documentation file: $doc" >&2
    exit 1
  fi
done

# Flags are the "  --name" column of the usage text.
flags=$("$cli" --help | sed -n 's/^ *\(--[a-z][a-z-]*\).*/\1/p' | sort -u)
if [ -z "$flags" ]; then
  echo "check_docs: extracted no flags from '$cli --help'" >&2
  exit 1
fi

status=0
for flag in $flags; do
  if ! grep -q -- "$flag" "${docs[@]}"; then
    echo "check_docs: flag '$flag' is advertised by --help but documented" \
         "in none of: ${docs[*]}" >&2
    status=1
  fi
done

count=$(echo "$flags" | wc -l)
if [ "$status" -eq 0 ]; then
  echo "check_docs: all $count wmsn_cli flags are documented"
fi
exit "$status"
