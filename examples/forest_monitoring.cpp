// Forest monitoring — the paper's running example for energy-constrained,
// large-area sensing (§4.1 explicitly calls out forest monitoring as the
// case where even the mesh gateways are energy-restricted).
//
// Scenario: 250 temperature/humidity sensors over a 400 m × 400 m forest
// block, monitored by 4 battery-powered mobile gateways cycling between 8
// feasible clearings. We run the network to first-node-death twice — with
// static and with mobile gateways — to show how gateway mobility spreads
// the relaying load and extends the monitoring mission.

#include <iostream>

#include "core/wmsn.hpp"

namespace {

wmsn::core::ScenarioConfig forestConfig(bool mobileGateways) {
  wmsn::core::ScenarioConfig cfg;
  cfg.protocol = wmsn::core::ProtocolKind::kMlr;
  cfg.deployment = wmsn::core::DeploymentKind::kClustered;  // stands of trees
  cfg.clusterCount = 5;
  cfg.sensorCount = 250;
  cfg.gatewayCount = 4;
  cfg.feasiblePlaceCount = 8;
  cfg.gatewaysMove = mobileGateways;
  cfg.gatewaysBatteryLimited = true;  // §4.1: gateways are not mains-powered
  cfg.width = 400;
  cfg.height = 400;
  cfg.radioRange = 60;  // long-range 802.15.4 amplified radios
  cfg.rounds = 300;
  cfg.stopAtFirstDeath = true;
  cfg.packetsPerSensorPerRound = 2;  // one reading per ~10 s
  cfg.energy.initialEnergyJ = 0.15;
  cfg.seed = 2024;
  return cfg;
}

}  // namespace

int main() {
  using namespace wmsn;
  std::cout << "Forest monitoring WMSN — 250 sensors / 400 m x 400 m, "
               "4 battery-powered gateways over 8 clearings\n\n";

  const auto staticRun = core::runScenario(forestConfig(false));
  const auto mobileRun = core::runScenario(forestConfig(true));

  core::printSection(
      std::cout, "mission length (rounds until the first sensor dies)",
      core::comparisonTable({staticRun, mobileRun},
                            {"static gateways", "mobile gateways (MLR)"}));

  auto report = [](const char* label, const core::RunResult& r) {
    std::cout << label << ": lifetime "
              << (r.firstDeathObserved ? r.firstDeathRound
                                       : r.roundsCompleted)
              << " rounds, hottest sensor spent "
              << TextTable::num(r.sensorEnergy.maxJ * 1e3, 1)
              << " mJ vs a mean of "
              << TextTable::num(r.sensorEnergy.meanJ * 1e3, 1)
              << " mJ (Jain "
              << TextTable::num(r.sensorEnergy.jainFairness, 3) << ")\n";
  };
  report("static ", staticRun);
  report("mobile ", mobileRun);

  const double gain =
      staticRun.firstDeathRound
          ? static_cast<double>(mobileRun.firstDeathRound) /
                static_cast<double>(staticRun.firstDeathRound)
          : 0.0;
  std::cout << "\nGateway mobility extended the mission by "
            << TextTable::num((gain - 1.0) * 100.0, 0)
            << "% — the relaying hot spots around each clearing rotate "
               "instead of burning out (§5.3).\n";
  return 0;
}
