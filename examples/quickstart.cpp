// Quickstart: build a 100-node wireless mesh sensor network with 3 mobile
// gateways, run 8 rounds of MLR routing, and print what happened.
//
//   $ ./quickstart
//
// This is the 20-line tour of the public API; the other examples show
// domain-specific scenarios (forest monitoring, battlefield security,
// building HVAC).

#include <iostream>

#include "core/wmsn.hpp"

int main() {
  using namespace wmsn;

  core::ScenarioConfig config;
  config.protocol = core::ProtocolKind::kMlr;
  config.sensorCount = 100;
  config.gatewayCount = 3;       // m gateways (multi-sink architecture, §3)
  config.feasiblePlaceCount = 6; // |P| feasible places (MLR, §5.3)
  config.rounds = 8;
  config.packetsPerSensorPerRound = 2;
  config.seed = 42;

  auto scenario = core::buildScenario(config);
  core::Experiment experiment(*scenario);
  const core::RunResult result = experiment.run();

  std::cout << "WMSN quickstart — " << config.sensorCount << " sensors, "
            << config.gatewayCount << " mobile gateways, "
            << result.roundsCompleted << " rounds\n\n";
  std::cout << core::summaryLine(result) << "\n\n";
  core::printSection(std::cout, "run summary",
                     core::comparisonTable({result}, {"mlr"}));
  core::printSection(std::cout, "per-gateway load (§4.3)",
                     core::gatewayLoadTable(result));
  return 0;
}
