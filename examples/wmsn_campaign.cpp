// wmsn_campaign — campaign orchestration CLI.
//
// Expands a declarative spec (protocol × topology × workload × fault × seed
// grid) into runs, executes them across a fork-based worker pool with crash
// isolation and resumable checkpointing, and writes one deterministic
// campaign artifact (JSON) with per-cell statistics and paired-seed deltas.
//
//   wmsn_campaign campaigns/fault.spec --out BENCH_fault.json --workers 4
//   wmsn_campaign campaigns/fault.spec --out BENCH_fault.json --resume
//
// The artifact is byte-identical for a given spec regardless of worker
// count, completion order, or how many times the campaign was killed and
// resumed (EXPERIMENTS.md "Campaign orchestration").

#include <cstdlib>
#include <iostream>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "util/require.hpp"

namespace {

using namespace wmsn;  // NOLINT

void usage() {
  std::cout <<
      "usage: wmsn_campaign <spec-file> [options]\n"
      "\n"
      "options:\n"
      "  --out <path>          artifact JSON path (default BENCH_<name>.json)\n"
      "  --journal <path>      checkpoint journal   (default <out>.journal)\n"
      "  --resume              load the journal and skip finished runs\n"
      "  --workers <n>         forked worker processes      (default 1)\n"
      "  --metrics-out <path>  merged per-run metrics registries as JSON\n"
      "                        (plan order; requires `metrics = on` in spec)\n"
      "  --worker-stats        add scheduling telemetry (steals, crashes,\n"
      "                        per-worker run counts) to --metrics-out\n"
      "  --stop-after <n>      stop after n fresh runs without writing the\n"
      "                        artifact; exit 3 (deterministic kill, for the\n"
      "                        resume gate)\n"
      "  --flight-recorder-dir <dir>\n"
      "                        arm the crash flight recorder in every worker;\n"
      "                        a dying run dumps its recent packet spans to\n"
      "                        <dir>/flight-<runId>.jsonl\n"
      "  --dry-run             print the expanded plan and exit\n"
      "  --quiet               suppress per-run progress lines\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string specPath;
  campaign::CampaignOptions opts;
  bool dryRun = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--out") {
      opts.outPath = next();
    } else if (arg == "--journal") {
      opts.journalPath = next();
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--workers") {
      opts.workers = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--metrics-out") {
      opts.metricsOutPath = next();
    } else if (arg == "--worker-stats") {
      opts.workerStats = true;
    } else if (arg == "--stop-after") {
      opts.stopAfter = std::stoul(next());
    } else if (arg == "--flight-recorder-dir") {
      opts.flightRecorderDir = next();
    } else if (arg == "--dry-run") {
      dryRun = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else if (specPath.empty()) {
      specPath = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return 2;
    }
  }
  if (specPath.empty()) {
    usage();
    return 2;
  }
  if (opts.workers < 1) {
    std::cerr << "--workers must be >= 1\n";
    return 2;
  }

  try {
    const campaign::CampaignSpec spec = campaign::loadSpec(specPath);
    if (opts.outPath.empty()) opts.outPath = "BENCH_" + spec.name + ".json";
    if (opts.journalPath.empty()) opts.journalPath = opts.outPath + ".journal";

    if (dryRun) {
      const auto plan = campaign::expand(spec);
      std::cout << "campaign '" << spec.name << "': " << plan.size()
                << " runs (" << spec.repeats << " seeds x "
                << plan.size() / spec.repeats << " cells), compare axis '"
                << spec.compareKey << "'\n";
      for (const auto& run : plan) std::cout << "  " << run.id << "\n";
      return 0;
    }

    const campaign::CampaignOutcome outcome = campaign::runCampaign(spec, opts);
    if (!opts.quiet) {
      std::cout << "campaign '" << spec.name << "': " << outcome.runsTotal
                << " runs (" << outcome.runsFromJournal << " from journal, "
                << outcome.runsExecuted << " executed, " << outcome.runsFailed
                << " failed";
      if (outcome.pool.stolen > 0)
        std::cout << ", " << outcome.pool.stolen << " stolen";
      if (outcome.pool.crashes > 0)
        std::cout << ", " << outcome.pool.crashes << " worker crashes";
      std::cout << ")\n";
    }
    if (outcome.stoppedEarly) {
      if (!opts.quiet)
        std::cout << "stopped after --stop-after; resume with --resume\n";
      return 3;
    }
    if (!opts.quiet)
      std::cout << "artifact written to " << opts.outPath << "\n";
    return 0;
  } catch (const wmsn::PreconditionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "unexpected error: " << e.what() << "\n";
    return 1;
  }
}
