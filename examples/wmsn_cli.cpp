// wmsn_cli — a command-line front-end over the whole library: pick a
// protocol, size, attack, and knobs; run; get the full result table.
// The fifth "example", and the tool a downstream user scripts against.
//
//   ./wmsn_cli --protocol secmlr --sensors 150 --gateways 3 --rounds 10
//   ./wmsn_cli --protocol mlr --attack sinkhole --attackers 3 --seed 7
//   ./wmsn_cli --protocol mlr --sleep --lifetime
//   ./wmsn_cli --list

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "core/wmsn.hpp"
#include "obs/trace_analyze.hpp"

namespace {

using namespace wmsn;

const std::map<std::string, core::ProtocolKind> kProtocols = {
    {"flooding", core::ProtocolKind::kFlooding},
    {"gossip", core::ProtocolKind::kGossip},
    {"spin", core::ProtocolKind::kSpin},
    {"diffusion", core::ProtocolKind::kDiffusion},
    {"leach", core::ProtocolKind::kLeach},
    {"pegasis", core::ProtocolKind::kPegasis},
    {"teen", core::ProtocolKind::kTeen},
    {"single-sink", core::ProtocolKind::kSingleSink},
    {"spr", core::ProtocolKind::kSpr},
    {"mlr", core::ProtocolKind::kMlr},
    {"secmlr", core::ProtocolKind::kSecMlr},
};

const std::map<std::string, attacks::AttackKind> kAttacks = {
    {"replay", attacks::AttackKind::kReplay},
    {"spoof", attacks::AttackKind::kSpoofMove},
    {"selective", attacks::AttackKind::kSelectiveForward},
    {"sinkhole", attacks::AttackKind::kSinkhole},
    {"hello-flood", attacks::AttackKind::kHelloFlood},
    {"sybil", attacks::AttackKind::kSybil},
    {"wormhole", attacks::AttackKind::kWormhole},
    {"ack-spoof", attacks::AttackKind::kAckSpoof},
};

void usage() {
  std::cout <<
      "usage: wmsn_cli [options]\n"
      "  --protocol <name>     flooding|gossip|spin|diffusion|leach|pegasis|teen|\n"
      "                        single-sink|spr|mlr|secmlr   (default mlr)\n"
      "  --sensors <n>         sensor count                 (default 100)\n"
      "  --gateways <m>        gateway count                (default 3)\n"
      "  --places <p>          feasible places |P|          (default 6)\n"
      "  --area <metres>       square side                  (default 200)\n"
      "  --range <metres>      radio range                  (default 30)\n"
      "  --rounds <r>          rounds to run                (default 10)\n"
      "  --packets <t>         packets/sensor/round         (default 2)\n"
      "  --seed <s>            RNG seed                     (default 1)\n"
      "  --repeat <k>          run k consecutive seeds, report each + mean\n"
      "  --threads <n>         worker threads for --repeat  (default: cores)\n"
      "  --workload <kind>     legacy|periodic|poisson|burst (default legacy)\n"
      "  --rate <pps>          offered pkt/s/sensor (periodic/poisson)\n"
      "  --queue <cap>         finite MAC transmit queue capacity (0 = off)\n"
      "  --queue-policy <p>    drop-tail|drop-oldest        (default drop-tail)\n"
      "  --deployment <kind>   uniform|grid|clustered       (default uniform)\n"
      "  --static              gateways do not move\n"
      "  --plan                §4.1 planner picks gateway places\n"
      "  --sleep               §4.4 GAF sleep scheduling (MLR only)\n"
      "  --reliable            hop-by-hop ACK forwarding (MLR family)\n"
      "  --lossy               log-distance fringe radio\n"
      "  --lifetime            run to first death (battery scaled down)\n"
      "  --attack <name>       replay|spoof|selective|sinkhole|sybil|\n"
      "                        hello-flood|wormhole|ack-spoof\n"
      "  --attackers <k>       captured-sensor count        (default 3)\n"
      "  --fault-plan <spec>   scheduled crash/recover events, e.g.\n"
      "                        \"gw0@3,gw0+@6,s17@4\" (s<n> sensor, gw<n>\n"
      "                        gateway, + = recovery, @r = round)\n"
      "  --node-mtbf <rounds>  mean rounds between random sensor crashes\n"
      "  --node-mttr <rounds>  mean rounds until a crashed sensor recovers\n"
      "  --gateway-mtbf <r>    mean rounds between random gateway failures\n"
      "  --gateway-mttr <r>    mean rounds until a failed gateway recovers\n"
      "  --link-loss <p>       Gilbert-Elliott bursty loss, steady-state\n"
      "                        fraction p in [0,1)\n"
      "  --no-failover         keep legacy routing under faults (fault flags\n"
      "                        otherwise enable MLR failover + SPR backoff)\n"
      "  --svg <path>          write the final topology/energy heat map\n"
      "  --trace <path>        write a per-frame event trace\n"
      "  --trace-format <f>    csv|jsonl trace serialisation (default csv)\n"
      "  --trace-spans <path>  write causal per-reading lifecycle spans as\n"
      "                        Chrome-trace-event JSONL (--repeat merges all\n"
      "                        seeds in order; byte-identical at any --threads)\n"
      "  --trace-sample <f>    head-sample fraction of readings in (0,1]\n"
      "                        traced (deterministic hash of uid; default 1)\n"
      "  --trace-analyze <p>   analyze a span JSONL file: reconstruct delivery\n"
      "                        paths, route flaps, reroute latency, drop\n"
      "                        attribution; print the report and exit\n"
      "                        (--metrics-out adds wmsn_trace_* metrics JSON)\n"
      "  --flight-recorder <p> arm the crash flight recorder: on invariant\n"
      "                        failure or fatal signal, dump the last spans\n"
      "                        from the in-memory ring to <p>\n"
      "  --metrics-out <path>  write the end-of-run metrics registry as JSON\n"
      "  --timeseries-out <p>  write the per-round time series (CSV, or JSON\n"
      "                        for a .json path; --repeat concatenates CSV)\n"
      "  --perf-out <path>     count deterministic hot-path work (frames,\n"
      "                        O(n^2) pairs examined, RNG draws, ...) and\n"
      "                        write them with resource telemetry (peak RSS,\n"
      "                        allocations, rounds/sec) as JSON; --repeat\n"
      "                        merges all seeds in order\n"
      "  --profile             time simulation phases, print the table\n"
      "  --list                print available protocols/attacks and exit\n";
}

/// The --perf-out document: the deterministic counter ledger twice (raw
/// key→count object and the labelled wmsn_perf_* registry) plus the
/// non-deterministic resource telemetry under its own key. Deterministic
/// counters and wall-clock telemetry never mix.
void writePerfJson(const std::string& path, const std::string& protocol,
                   const obs::PerfStats& perf,
                   const obs::ResourceTelemetry& telemetry) {
  obs::MetricsRegistry registry;
  core::fillPerfMetrics(protocol, perf, registry);
  std::string metricsJson = registry.json();
  while (!metricsJson.empty() && metricsJson.back() == '\n')
    metricsJson.pop_back();
  std::ofstream out(path, std::ios::binary);
  out << "{\n\"counters\": " << perf.json() << ",\n\"metrics\": "
      << metricsJson << ",\n\"telemetry\": " << telemetry.json() << "\n}\n";
}

/// CSV by default; a `.json` path selects the JSON array form instead.
void writeTimeseries(const obs::TimeSeriesRecorder& series,
                     const std::string& path, const std::string& runLabel) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json)
    series.writeJson(path);
  else
    series.writeCsv(path, runLabel);
  std::cout << "(time series with " << series.rounds()
            << " rounds written to " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioConfig cfg;
  cfg.rounds = 10;
  cfg.packetsPerSensorPerRound = 2;
  cfg.attackerCount = 3;
  std::string svgPath;
  std::string tracePath;
  std::string metricsPath;
  std::string timeseriesPath;
  std::string perfPath;
  std::string traceSpansPath;
  std::string traceAnalyzePath;
  obs::TraceFormat traceFormat = obs::TraceFormat::kCsv;
  unsigned repeat = 1;
  unsigned threads = 0;
  bool anyFaultFlag = false;
  bool noFailover = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--list") {
      std::cout << "protocols:";
      for (const auto& [name, kind] : kProtocols) std::cout << " " << name;
      std::cout << "\nattacks:";
      for (const auto& [name, kind] : kAttacks) std::cout << " " << name;
      std::cout << "\n";
      return 0;
    } else if (arg == "--protocol") {
      const std::string name = next();
      const auto it = kProtocols.find(name);
      if (it == kProtocols.end()) {
        std::cerr << "unknown protocol: " << name << "\n";
        return 2;
      }
      cfg.protocol = it->second;
    } else if (arg == "--attack") {
      const std::string name = next();
      const auto it = kAttacks.find(name);
      if (it == kAttacks.end()) {
        std::cerr << "unknown attack: " << name << "\n";
        return 2;
      }
      cfg.attack.kind = it->second;
    } else if (arg == "--deployment") {
      const std::string name = next();
      if (name == "uniform") cfg.deployment = core::DeploymentKind::kUniform;
      else if (name == "grid") cfg.deployment = core::DeploymentKind::kGrid;
      else if (name == "clustered")
        cfg.deployment = core::DeploymentKind::kClustered;
      else {
        std::cerr << "unknown deployment: " << name << "\n";
        return 2;
      }
    } else if (arg == "--sensors") {
      cfg.sensorCount = std::stoul(next());
    } else if (arg == "--gateways") {
      cfg.gatewayCount = std::stoul(next());
    } else if (arg == "--places") {
      cfg.feasiblePlaceCount = std::stoul(next());
    } else if (arg == "--area") {
      cfg.width = cfg.height = std::stod(next());
    } else if (arg == "--range") {
      cfg.radioRange = std::stod(next());
    } else if (arg == "--rounds") {
      cfg.rounds = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--packets") {
      cfg.packetsPerSensorPerRound =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--repeat") {
      repeat = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--workload") {
      const std::string name = next();
      if (name == "legacy")
        cfg.workload.kind = workload::WorkloadKind::kLegacyRounds;
      else if (name == "periodic")
        cfg.workload.kind = workload::WorkloadKind::kPeriodic;
      else if (name == "poisson")
        cfg.workload.kind = workload::WorkloadKind::kPoisson;
      else if (name == "burst")
        cfg.workload.kind = workload::WorkloadKind::kBurst;
      else {
        std::cerr << "unknown workload: " << name << "\n";
        return 2;
      }
    } else if (arg == "--rate") {
      cfg.workload.ratePerSensor = std::stod(next());
    } else if (arg == "--queue") {
      const long cap = std::stol(next());
      if (cap < 0) {
        std::cerr << "queue capacity must be >= 0\n";
        return 2;
      }
      cfg.macQueue.capacity = static_cast<std::size_t>(cap);
    } else if (arg == "--queue-policy") {
      const std::string name = next();
      if (name == "drop-tail")
        cfg.macQueue.policy = net::QueuePolicy::kDropTail;
      else if (name == "drop-oldest")
        cfg.macQueue.policy = net::QueuePolicy::kDropOldest;
      else {
        std::cerr << "unknown queue policy: " << name << "\n";
        return 2;
      }
    } else if (arg == "--attackers") {
      cfg.attackerCount = std::stoul(next());
    } else if (arg == "--fault-plan") {
      try {
        cfg.faults.events = fault::parseFaultPlan(next());
      } catch (const std::exception& e) {
        std::cerr << "bad --fault-plan: " << e.what() << "\n";
        return 2;
      }
      anyFaultFlag = true;
    } else if (arg == "--node-mtbf") {
      cfg.faults.sensorMtbfRounds =
          static_cast<std::uint32_t>(std::stoul(next()));
      anyFaultFlag = true;
    } else if (arg == "--node-mttr") {
      cfg.faults.sensorMttrRounds =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--gateway-mtbf") {
      cfg.faults.gatewayMtbfRounds =
          static_cast<std::uint32_t>(std::stoul(next()));
      anyFaultFlag = true;
    } else if (arg == "--gateway-mttr") {
      cfg.faults.gatewayMttrRounds =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--link-loss") {
      const double p = std::stod(next());
      if (p < 0.0 || p >= 1.0) {
        std::cerr << "--link-loss expects a fraction in [0,1)\n";
        return 2;
      }
      if (p > 0.0) {
        // Solve the two-state chain for the requested steady-state loss,
        // keeping the default burst length (1/pBadToGood frames).
        cfg.faults.linkLoss.enabled = true;
        cfg.faults.linkLoss.pGoodToBad =
            cfg.faults.linkLoss.pBadToGood * p / (1.0 - p);
        anyFaultFlag = true;
      }
    } else if (arg == "--no-failover") {
      noFailover = true;
    } else if (arg == "--static") {
      cfg.gatewaysMove = false;
    } else if (arg == "--plan") {
      cfg.planGatewayPlacement = true;
    } else if (arg == "--sleep") {
      cfg.sleep.enabled = true;
    } else if (arg == "--reliable") {
      cfg.mlr.reliableForwarding = true;
    } else if (arg == "--lossy") {
      cfg.lossyRadio = true;
    } else if (arg == "--svg") {
      svgPath = next();
    } else if (arg == "--trace") {
      tracePath = next();
    } else if (arg == "--trace-format" ||
               arg.rfind("--trace-format=", 0) == 0) {
      const std::string name = arg == "--trace-format"
                                   ? next()
                                   : arg.substr(std::strlen("--trace-format="));
      try {
        traceFormat = obs::parseTraceFormat(name);
      } catch (const std::exception&) {
        std::cerr << "unknown trace format: " << name << "\n";
        return 2;
      }
    } else if (arg == "--trace-spans") {
      traceSpansPath = next();
      cfg.obs.traceSpans = true;
    } else if (arg == "--trace-sample") {
      const double f = std::stod(next());
      if (f <= 0.0 || f > 1.0) {
        std::cerr << "--trace-sample expects a fraction in (0,1]\n";
        return 2;
      }
      cfg.obs.traceSamplePermille =
          static_cast<std::uint32_t>(std::lround(f * 1000.0));
    } else if (arg == "--trace-analyze") {
      traceAnalyzePath = next();
    } else if (arg == "--flight-recorder") {
      obs::setFlightRecorderPath(next());
    } else if (arg == "--metrics-out") {
      metricsPath = next();
      cfg.obs.metrics = true;
    } else if (arg == "--timeseries-out") {
      timeseriesPath = next();
      cfg.obs.timeseries = true;
    } else if (arg == "--perf-out") {
      perfPath = next();
      cfg.obs.perf = true;
    } else if (arg == "--profile") {
      cfg.obs.profile = true;
    } else if (arg == "--lifetime") {
      cfg.stopAtFirstDeath = true;
      cfg.rounds = 1000;
      cfg.energy.initialEnergyJ = 0.1;
    } else {
      std::cerr << "unknown option: " << arg << " (try --help)\n";
      return 2;
    }
  }

  if (anyFaultFlag && !noFailover) {
    // Fault runs get the hardened routing by default: MLR/SecMLR heartbeat
    // failover and SPR discovery backoff. --no-failover ablates back to the
    // legacy behaviour for comparison.
    cfg.mlr.failover = true;
    if (cfg.spr.retryBackoff.us == 0)
      cfg.spr.retryBackoff = sim::Time::seconds(0.2);
  }

  if (!traceAnalyzePath.empty()) {
    // Standalone analytics mode: no simulation — reconstruct reading fates
    // from a previously exported span JSONL file.
    std::ifstream in(traceAnalyzePath, std::ios::binary);
    if (!in) {
      std::cerr << "cannot open trace file: " << traceAnalyzePath << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const auto spans = obs::parseTraceJsonl(buf.str());
      const obs::TraceAnalysis analysis = obs::analyzeSpans(spans);
      std::cout << obs::analysisReport(analysis);
      if (!metricsPath.empty()) {
        obs::MetricsRegistry registry;
        obs::fillTraceMetrics(analysis, registry);
        registry.writeJson(metricsPath);
        std::cout << "(trace metrics written to " << metricsPath << ")\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  try {
    cfg.validate();
    if (repeat > 1) {
      // Multi-seed capacity sweep: k independent runs fan out over the
      // thread pool; the table reports each seed plus the mean.
      const auto configs = core::expandSeeds(cfg, repeat);
      std::vector<std::string> labels;
      for (const auto& c : configs)
        labels.push_back("seed " + std::to_string(c.seed));
      const auto results = core::runScenariosParallel(configs, threads);
      for (const auto& r : results) std::cout << core::summaryLine(r) << "\n";
      std::cout << "\n";
      core::printSection(std::cout,
                         "per-seed results (" + std::to_string(repeat) +
                             " runs, workload " +
                             workload::toString(cfg.workload.kind) + ")",
                         core::comparisonTable(results, labels));
      if (cfg.macQueue.capacity > 0 ||
          cfg.workload.kind != workload::WorkloadKind::kLegacyRounds)
        core::printSection(std::cout, "congestion",
                           core::congestionTable(results, labels));
      std::cout << "mean PDR " << std::fixed
                << core::meanOver(results,
                                  [](const core::RunResult& r) {
                                    return r.deliveryRatio;
                                  })
                << ", mean queue drops "
                << core::meanOver(results,
                                  [](const core::RunResult& r) {
                                    return static_cast<double>(r.queueDrops);
                                  })
                << "\n";
      // Observability outputs merge in seed order (the input order of the
      // sweep), so they are byte-identical for any --threads value.
      if (!metricsPath.empty()) {
        obs::MetricsRegistry merged;
        for (const auto& r : results)
          if (r.observations) merged.merge(r.observations->metrics);
        merged.writeJson(metricsPath);
        std::cout << "(metrics for " << repeat << " seeds written to "
                  << metricsPath << ")\n";
      }
      if (!timeseriesPath.empty()) {
        std::optional<CsvWriter> csv;
        std::size_t rows = 0;
        for (std::size_t k = 0; k < results.size(); ++k) {
          if (!results[k].observations) continue;
          const auto& series = results[k].observations->timeseries;
          if (!csv) csv.emplace(series.csvHeader());
          series.appendCsv(*csv, labels[k]);
          rows += series.rounds();
        }
        if (csv) csv->writeFile(timeseriesPath);
        std::cout << "(time series with " << rows << " rounds written to "
                  << timeseriesPath << ")\n";
      }
      if (!traceSpansPath.empty()) {
        // Span logs concatenate in seed order — the sweep's input order —
        // so the merged JSONL is byte-identical at any --threads value.
        std::string merged;
        std::size_t spans = 0;
        for (const auto& r : results) {
          if (!r.observations) continue;
          merged += r.observations->trace.jsonl();
          spans += r.observations->trace.spans.size();
        }
        std::ofstream out(traceSpansPath, std::ios::binary);
        out << merged;
        std::cout << "(" << spans << " spans for " << repeat
                  << " seeds written to " << traceSpansPath << ")\n";
      }
      if (!perfPath.empty()) {
        // Counter ledgers merge in seed order like every other obs output;
        // sums are order-independent, so the file is byte-identical at any
        // --threads value. Telemetry sums wall/work and takes the max RSS.
        obs::PerfStats mergedPerf;
        obs::ResourceTelemetry mergedTelemetry;
        for (const auto& r : results) {
          if (!r.observations || !r.observations->perfCounted) continue;
          mergedPerf.merge(r.observations->perf);
          mergedTelemetry.merge(r.observations->telemetry);
        }
        writePerfJson(perfPath, core::toString(cfg.protocol), mergedPerf,
                      mergedTelemetry);
        std::cout << "(perf counters for " << repeat << " seeds written to "
                  << perfPath << ")\n";
      }
      if (cfg.obs.profile) {
        obs::Profiler merged;
        for (const auto& r : results)
          if (r.observations) merged.merge(r.observations->profiler);
        core::printSection(std::cout,
                           "phase profile (all seeds)", merged.table());
      }
      return 0;
    }
    auto scenario = core::buildScenario(cfg);
    core::TraceLogger trace(traceFormat);
    if (!tracePath.empty()) trace.attach(*scenario);
    core::Experiment experiment(*scenario);
    const auto result = experiment.run();
    if (!svgPath.empty()) {
      core::writeTopologySvg(*scenario, svgPath);
      std::cout << "(topology SVG written to " << svgPath << ")\n";
    }
    if (!tracePath.empty()) {
      trace.writeFile(tracePath);
      std::cout << "(" << toString(trace.format()) << " trace with "
                << trace.rows() << " events written to " << tracePath
                << ")\n";
    }
    if (!traceSpansPath.empty() && result.observations) {
      result.observations->trace.writeFile(traceSpansPath);
      std::cout << "(" << result.observations->trace.spans.size()
                << " spans written to " << traceSpansPath << ")\n";
    }
    if (!metricsPath.empty() && result.observations) {
      result.observations->metrics.writeJson(metricsPath);
      std::cout << "(metrics written to " << metricsPath << ")\n";
    }
    if (!timeseriesPath.empty() && result.observations)
      writeTimeseries(result.observations->timeseries, timeseriesPath,
                      "seed " + std::to_string(cfg.seed));
    if (!perfPath.empty() && result.observations) {
      writePerfJson(perfPath, result.protocol, result.observations->perf,
                    result.observations->telemetry);
      std::cout << "(perf counters written to " << perfPath << ")\n";
    }
    std::cout << core::summaryLine(result) << "\n\n";
    core::printSection(std::cout, "result",
                       core::comparisonTable({result}));
    if (cfg.macQueue.capacity > 0 ||
        cfg.workload.kind != workload::WorkloadKind::kLegacyRounds)
      core::printSection(std::cout, "congestion",
                         core::congestionTable({result}));
    if (!result.perGatewayDeliveries.empty())
      core::printSection(std::cout, "per-gateway load",
                         core::gatewayLoadTable(result));
    if (cfg.faults.any()) {
      const auto& f = result.faults;
      std::cout << "faults: sensor crashes=" << f.sensorCrashes << " (recovered "
                << f.sensorRecoveries << "), gateway failures="
                << f.gatewayFailures << " (recovered " << f.gatewayRecoveries
                << "), link drops=" << f.linkFaultDrops << "\n"
                << "outages: episodes=" << f.outageEpisodes << " (unrecovered "
                << f.unrecoveredOutages << "), mean recovery latency="
                << f.meanRecoveryLatencyS << " s, PDR during outage="
                << f.pdrDuringOutage << "\n";
    }
    if (result.rejectedMacs + result.rejectedReplays + result.rejectedTesla >
        0)
      std::cout << "security rejections: mac=" << result.rejectedMacs
                << " replay=" << result.rejectedReplays
                << " tesla=" << result.rejectedTesla << "\n";
    if (cfg.attack.kind != attacks::AttackKind::kNone)
      std::cout << "attacker actions: dropped="
                << result.attackerStats.framesDropped
                << " forged=" << result.attackerStats.framesForged
                << " replayed=" << result.attackerStats.framesReplayed
                << " tunnelled=" << result.attackerStats.framesTunnelled
                << "\n";
    if (cfg.obs.profile && result.observations)
      core::printSection(std::cout, "phase profile",
                         result.observations->profiler.table());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
