// Battlefield surveillance — the paper's motivating scenario for SECURE
// routing (§6: "battlefield environments, where the base station and
// possibly the sensors need to be mobile" and nodes face capture).
//
// Scenario: 120 seismic sensors along a border strip, 3 mobile gateways.
// An adversary captures several sensors and mounts, in turn, a sinkhole and
// a replay campaign. We run each attack against plain MLR and against
// SecMLR and print the resulting intelligence picture.

#include <iostream>

#include "core/wmsn.hpp"

namespace {

wmsn::core::ScenarioConfig fieldConfig(wmsn::core::ProtocolKind protocol,
                                       wmsn::attacks::AttackKind attack) {
  wmsn::core::ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.sensorCount = 120;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 6;
  cfg.width = 300;
  cfg.height = 120;  // a border strip
  cfg.radioRange = 35;
  cfg.rounds = 6;
  cfg.packetsPerSensorPerRound = 2;
  cfg.attack.kind = attack;
  cfg.attackerCount = attack == wmsn::attacks::AttackKind::kNone ? 0 : 4;
  cfg.seed = 1944;
  return cfg;
}

}  // namespace

int main() {
  using namespace wmsn;
  std::cout << "Battlefield WMSN — 120 seismic sensors on a 300 m border "
               "strip, 3 mobile gateways, 4 captured nodes\n\n";

  const std::vector<attacks::AttackKind> campaigns = {
      attacks::AttackKind::kNone, attacks::AttackKind::kSinkhole,
      attacks::AttackKind::kReplay, attacks::AttackKind::kHelloFlood};

  TextTable table({"campaign", "MLR readings received", "MLR PDR",
                   "SecMLR readings received", "SecMLR PDR",
                   "SecMLR rejections"});
  for (const auto attack : campaigns) {
    const auto mlr = core::runScenario(
        fieldConfig(core::ProtocolKind::kMlr, attack));
    const auto sec = core::runScenario(
        fieldConfig(core::ProtocolKind::kSecMlr, attack));
    table.addRow({attacks::toString(attack), TextTable::num(mlr.delivered),
                  TextTable::num(mlr.deliveryRatio, 3),
                  TextTable::num(sec.delivered),
                  TextTable::num(sec.deliveryRatio, 3),
                  TextTable::num(sec.rejectedMacs + sec.rejectedReplays +
                                 sec.rejectedTesla)});
  }
  core::printSection(std::cout,
                     "intelligence picture under each attack campaign",
                     table);

  std::cout
      << "Reading the table: against forged routing state (sinkhole, HELLO "
         "flood) the unsecured network goes dark across whole sectors, while "
         "SecMLR's TESLA-authenticated notifications and gateway-verified "
         "paths keep the picture intact; replayed frames are rejected by "
         "freshness counters instead of polluting the feed (§6.2).\n";
  return 0;
}
