// Building HVAC monitoring — the scenario that started WMSNs: Sereiko's
// proposal (the paper's ref [14]) of mesh-networked sensors letting
// "building owners, managers, and contractors easily monitor HVAC
// performance". Three floors, each a sensor subnet with two WMGs, meshed
// over the building riser to a basement base station ("the Internet").
//
// Demonstrates the full three-tier WmsnStack API and its self-healing when
// a riser router is unplugged.

#include <iostream>

#include "core/wmsn.hpp"
#include "util/require.hpp"

int main() {
  using namespace wmsn;
  std::cout << "Building HVAC WMSN — 3 floors x 40 sensors, 2 WMGs per "
               "floor, riser mesh to the basement base station\n\n";

  sim::Simulator simulator;
  Rng rng(7);

  // --- one sensor subnet per floor -------------------------------------------
  std::vector<std::unique_ptr<net::SensorNetwork>> floors;
  std::vector<std::unique_ptr<routing::ProtocolStack>> stacks;
  std::vector<net::Point> wmgRiserPositions;

  for (int floor = 0; floor < 3; ++floor) {
    net::DeploymentParams dp;
    dp.sensorCount = 40;
    dp.gatewayCount = 2;
    dp.width = 80;   // one floor plate
    dp.height = 40;
    dp.radioRange = 18;
    net::Deployment d;
    Rng layoutRng(10 + static_cast<std::uint64_t>(floor));
    for (int attempt = 0;; ++attempt) {
      d = net::uniformDeployment(dp, layoutRng);
      if (net::sensorsConnected(d.sensors, dp.radioRange)) break;
      WMSN_REQUIRE_MSG(attempt < 200, "no floor layout found");
    }

    net::SensorNetworkParams params;
    params.seed = 77 + static_cast<std::uint64_t>(floor);
    auto network = std::make_unique<net::SensorNetwork>(
        simulator, std::make_unique<net::UnitDiskRadio>(dp.radioRange),
        params);
    routing::NetworkKnowledge knowledge;
    knowledge.feasiblePlaces = d.gateways;
    for (const auto& s : d.sensors) network->addSensor(s);
    for (const auto& g : d.gateways)
      knowledge.gatewayIds.push_back(network->addGateway(g));
    auto stack = std::make_unique<routing::ProtocolStack>(
        *network, knowledge,
        [](net::SensorNetwork& n, net::NodeId id,
           const routing::NetworkKnowledge& k) {
          return std::make_unique<routing::MlrRouting>(n, id, k);
        });
    stack->startAll();

    // Riser coordinates: floors stacked 150 "metres" apart in the backhaul
    // plane (an abstraction of the riser topology).
    for (const auto& g : d.gateways)
      wmgRiserPositions.push_back({g.x + 100, 150.0 * floor + 100});

    floors.push_back(std::move(network));
    stacks.push_back(std::move(stack));
  }

  // --- the riser mesh ----------------------------------------------------------
  mesh::MeshTopologyParams meshParams;
  meshParams.wmrCount = 4;      // riser repeaters
  meshParams.width = 300;
  meshParams.height = 450;
  meshParams.linkRange = 200;
  auto topology = mesh::makeMeshTopology(meshParams, wmgRiserPositions, rng);
  mesh::MeshNetwork riser(simulator, topology, {}, rng.fork());
  mesh::WmsnStack building(riser);

  std::size_t wmg = 0;
  for (auto& floor : floors) {
    std::map<net::NodeId, mesh::MeshNodeId> mapping;
    for (net::NodeId gw : floor->gatewayIds())
      mapping[gw] = static_cast<mesh::MeshNodeId>(wmg++);
    building.attach(*floor, mapping);
  }

  // --- run a day of monitoring (compressed to 6 rounds) ------------------------
  Rng traffic(3);
  for (int round = 0; round < 6; ++round) {
    for (std::size_t f = 0; f < floors.size(); ++f) {
      stacks[f]->beginRound(static_cast<std::uint32_t>(round));
      if (round == 0) {
        for (std::size_t g = 0; g < floors[f]->gatewayIds().size(); ++g)
          dynamic_cast<routing::MlrRouting&>(
              stacks[f]->at(floors[f]->gatewayIds()[g]))
              .announceMove(static_cast<std::uint16_t>(g), routing::kNoPlace,
                            0);
      }
      for (net::NodeId s : floors[f]->sensorIds()) {
        simulator.schedule(
            sim::Time::seconds(3.0 + traffic.uniform(0.0, 14.0)),
            [&stacks, f, s] {
              stacks[f]->at(s).originate(Bytes(24, 0x20));  // temp+flow
            });
      }
    }
    if (round == 3) {
      // A contractor unplugs a riser repeater mid-day.
      const auto wmrs = topology.idsOf(mesh::MeshNodeKind::kWmr);
      riser.setNodeAlive(wmrs[0], false);
      std::cout << "(round 3: riser repeater " << wmrs[0]
                << " unplugged — link-state reroute)\n";
    }
    simulator.runUntil(simulator.now() + sim::Time::seconds(20));
  }

  // --- the dashboard ------------------------------------------------------------
  std::uint64_t generated = 0;
  for (const auto& floor : floors) generated += floor->stats().generated();

  TextTable dashboard({"metric", "value"});
  dashboard.addRow({"readings generated", TextTable::num(generated)});
  dashboard.addRow({"readings at floor WMGs",
                    TextTable::num(building.readingsAtGateways())});
  dashboard.addRow({"readings at base station",
                    TextTable::num(building.readingsAtBase())});
  dashboard.addRow(
      {"end-to-end success",
       TextTable::num(static_cast<double>(building.readingsAtBase()) /
                          static_cast<double>(generated), 3)});
  dashboard.addRow({"riser latency (mean ms)",
                    TextTable::num(riser.latencyStats().count()
                                       ? riser.latencyStats().mean() * 1e3
                                       : 0.0, 3)});
  dashboard.addRow({"riser frames dropped", TextTable::num(riser.dropped())});
  core::printSection(std::cout, "building dashboard", dashboard);

  std::cout << "Even with a repeater unplugged mid-run, the riser mesh "
               "reroutes and the dashboard keeps filling — the architecture "
               "Sereiko pitched to building managers (§2.1, ref [14]).\n";
  return 0;
}
