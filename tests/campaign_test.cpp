// Campaign orchestration: spec parsing and grid expansion, run-record and
// registry wire codecs, the resumable journal, paired-seed statistics, the
// deterministic artifact, and the fork pool driven end to end (worker-count
// independence, kill + resume, crash isolation).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "campaign/artifact.hpp"
#include "campaign/journal.hpp"
#include "campaign/pool.hpp"
#include "campaign/record.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/stats.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "obs/trace_analyze.hpp"
#include "util/random.hpp"
#include "util/require.hpp"

namespace {

using namespace wmsn;
using campaign::RunRecord;

std::string tmpPath(const std::string& name) {
  return testing::TempDir() + "wmsn_campaign_test_" + name;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

constexpr const char* kTinySpec =
    "name = tiny\n"
    "seed = 3\n"
    "repeats = 2\n"
    "sensors = 40\n"
    "area = 120\n"
    "gateways = 2\n"
    "places = 4\n"
    "rounds = 2\n"
    "packets = 1\n"
    "metrics = on\n"
    "\n"
    "[sweep]\n"
    "protocol = spr, mlr\n"
    "fault = baseline=none, gw-crash=gw0@1\n";

// --- seed derivation (the contract wmsn_cli --repeat and campaigns share) --

TEST(SeedDerivation, SequenceIsPinned) {
  // BENCH_* baselines and every journaled campaign depend on this exact
  // sequence; changing replicaSeed invalidates them all.
  EXPECT_EQ(replicaSeed(40, 0), 40u);
  EXPECT_EQ(replicaSeed(40, 4), 44u);
  const std::vector<std::uint64_t> expected{40, 41, 42, 43, 44};
  EXPECT_EQ(seedSequence(40, 5), expected);
}

TEST(SeedDerivation, ExpandSeedsMatchesSeedSequence) {
  core::ScenarioConfig cfg;
  cfg.seed = 7;
  const auto configs = core::expandSeeds(cfg, 3);
  ASSERT_EQ(configs.size(), 3u);
  const auto seeds = seedSequence(7, 3);
  for (std::size_t k = 0; k < configs.size(); ++k)
    EXPECT_EQ(configs[k].seed, seeds[k]);
}

// --- spec parsing ----------------------------------------------------------

TEST(CampaignSpec, ParsesCampaignKeysVariantsAndAxes) {
  const auto spec = campaign::parseSpec(
      "name = demo\n"
      "seed = 11\n"
      "repeats = 4\n"
      "compare = variant\n"
      "sensors = 80\n"
      "# a comment\n"
      "[variant a]\n"
      "protocol = spr\n"
      "[variant b]\n"
      "protocol = mlr\n"
      "gateways = 3\n"
      "[sweep]\n"
      "variant = a, b\n"
      "rate = slow=0.5, fast=2.0\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.seedBase, 11u);
  EXPECT_EQ(spec.repeats, 4u);
  EXPECT_EQ(spec.compareKey, "variant");
  ASSERT_EQ(spec.base.size(), 1u);
  EXPECT_EQ(spec.base[0].first, "sensors");
  ASSERT_EQ(spec.variants.size(), 2u);
  ASSERT_NE(spec.findVariant("b"), nullptr);
  EXPECT_EQ(spec.findVariant("b")->size(), 2u);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[1].values[0].label, "slow");
  EXPECT_EQ(spec.axes[1].values[0].value, "0.5");
  EXPECT_EQ(spec.axes[0].values[1].label, "b");  // bare item: label == value
}

TEST(CampaignSpec, CompareDefaultsToVariantThenProtocol) {
  const auto withVariant = campaign::parseSpec(
      "[variant a]\nprotocol = spr\n[sweep]\nvariant = a\nprotocol = spr\n");
  EXPECT_EQ(withVariant.compareKey, "variant");
  const auto withProtocol =
      campaign::parseSpec("[sweep]\nprotocol = spr, mlr\n");
  EXPECT_EQ(withProtocol.compareKey, "protocol");
}

TEST(CampaignSpec, RejectsMalformedInput) {
  EXPECT_THROW(campaign::parseSpec("sensors = 80\n"), PreconditionError);
  EXPECT_THROW(campaign::parseSpec("[sweep\nprotocol = spr\n"),
               PreconditionError);
  EXPECT_THROW(campaign::parseSpec("[sweep]\nprotocol = spr\nprotocol = mlr\n"),
               PreconditionError);
  EXPECT_THROW(campaign::parseSpec("not a key value line\n[sweep]\nx = 1\n"),
               PreconditionError);
  EXPECT_THROW(
      campaign::parseSpec("compare = rate\n[sweep]\nprotocol = spr\n"),
      PreconditionError);
  EXPECT_THROW(campaign::parseSpec("[sweep]\nprotocol = spr, spr\n"),
               PreconditionError);
  // Unknown setting keys surface at expansion time for axis values...
  const auto spec =
      campaign::parseSpec("[sweep]\nvariant = nosuch\nprotocol = spr\n");
  EXPECT_THROW(campaign::expand(spec), PreconditionError);
  // ...and unknown base keys at expansion too.
  EXPECT_THROW(
      campaign::expand(campaign::parseSpec("warp = 9\n[sweep]\nprotocol = spr\n")),
      PreconditionError);
}

TEST(CampaignSpec, FingerprintTracksText) {
  const auto a = campaign::parseSpec("[sweep]\nprotocol = spr\n");
  const auto b = campaign::parseSpec("[sweep]\nprotocol = mlr\n");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(),
            campaign::parseSpec("[sweep]\nprotocol = spr\n").fingerprint());
}

// --- expansion -------------------------------------------------------------

TEST(CampaignExpand, OrderIsAxesOuterSeedsInnermost) {
  const auto spec = campaign::parseSpec(kTinySpec);
  const auto plan = campaign::expand(spec);
  ASSERT_EQ(plan.size(), 8u);
  const std::vector<std::string> expected{
      "spr/baseline/s3", "spr/baseline/s4", "spr/gw-crash/s3",
      "spr/gw-crash/s4", "mlr/baseline/s3", "mlr/baseline/s4",
      "mlr/gw-crash/s3", "mlr/gw-crash/s4"};
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].id, expected[i]);
    EXPECT_EQ(plan[i].seed, seedSequence(3, 2)[plan[i].seedIndex]);
  }
  EXPECT_EQ(plan[0].config.sensorCount, 40u);
  EXPECT_EQ(plan[2].config.faults.events.size(), 1u);
  EXPECT_TRUE(plan[0].config.faults.events.empty());
  EXPECT_TRUE(plan[0].config.obs.metrics);
}

TEST(CampaignExpand, VariantBundlesApplyTheirSettings) {
  const auto spec = campaign::parseSpec(
      "sensors = 40\narea = 120\n"
      "[variant one]\nprotocol = spr\ngateways = 1\n"
      "[variant three]\nprotocol = mlr\ngateways = 3\nplaces = 6\n"
      "[sweep]\nvariant = one, three\n");
  const auto plan = campaign::expand(spec);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].config.gatewayCount, 1u);
  EXPECT_EQ(plan[1].config.gatewayCount, 3u);
  EXPECT_EQ(plan[1].config.protocol, core::ProtocolKind::kMlr);
}

// --- record wire -----------------------------------------------------------

TEST(CampaignRecord, WireRoundTripsLosslessly) {
  RunRecord r;
  r.id = "mlr/gw-crash/s4";
  r.cell = "mlr/gw-crash";
  r.seed = 4;
  r.seedIndex = 1;
  r.pdr = 0.123456789012345;
  r.meanLatencyMs = 17.25;
  r.p95LatencyMs = 42.0;
  r.meanHops = 2.5;
  r.offeredPps = 8.0;
  r.goodputPps = 7.5;
  r.generated = 1000;
  r.delivered = 987;
  r.queueDrops = 3;
  r.macDrops = 1;
  r.collisions = 17;
  r.controlBytes = 123456;
  r.dataBytes = 654321;
  r.roundsCompleted = 12;
  r.firstDeathObserved = true;
  r.lifetimeS = 123.75;
  r.energyTotalJ = 1.0625;
  r.energyD2 = 1e-9;
  r.outageEpisodes = 2;
  r.meanRecoveryLatencyS = 20.5;
  r.pdrDuringOutage = 0.25;
  r.traceSpans = 4242;
  r.traceReadings = 120;
  r.traceReroutes = 7;
  r.traceDropEvents = 13;
  r.traceMeanPathHops = 2.125;
  r.perfCaptured = true;
  r.perfNodeSteps = 360;
  r.perfFramesTransmitted = 4100;
  r.perfPairsExamined = 164000;
  r.perfRngDraws = 9001;
  r.perfPeakRssKb = 5120;
  r.perfWallSeconds = 0.125;
  r.perfRoundsPerSec = 96.0;
  r.perfFramesPerSec = 32800.5;
  r.metricsWire = "wmsnmr1\x1e" "payload with \x1f and \x1d inside";

  const RunRecord back = campaign::decodeRecord(campaign::encodeRecord(r));
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.cell, r.cell);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.seedIndex, r.seedIndex);
  EXPECT_TRUE(back.ok());
  EXPECT_EQ(back.pdr, r.pdr);  // wmsn-lint: allow(float-equality)
  EXPECT_EQ(back.energyD2, r.energyD2);  // wmsn-lint: allow(float-equality)
  EXPECT_EQ(back.generated, r.generated);
  EXPECT_EQ(back.firstDeathObserved, r.firstDeathObserved);
  EXPECT_EQ(back.traceSpans, r.traceSpans);
  EXPECT_EQ(back.traceReadings, r.traceReadings);
  EXPECT_EQ(back.traceReroutes, r.traceReroutes);
  EXPECT_EQ(back.traceDropEvents, r.traceDropEvents);
  // wmsn-lint: allow(float-equality)
  EXPECT_EQ(back.traceMeanPathHops, r.traceMeanPathHops);
  EXPECT_EQ(back.perfCaptured, r.perfCaptured);
  EXPECT_EQ(back.perfNodeSteps, r.perfNodeSteps);
  EXPECT_EQ(back.perfFramesTransmitted, r.perfFramesTransmitted);
  EXPECT_EQ(back.perfPairsExamined, r.perfPairsExamined);
  EXPECT_EQ(back.perfRngDraws, r.perfRngDraws);
  EXPECT_EQ(back.perfPeakRssKb, r.perfPeakRssKb);
  // wmsn-lint: allow(float-equality)
  EXPECT_EQ(back.perfWallSeconds, r.perfWallSeconds);
  // wmsn-lint: allow(float-equality)
  EXPECT_EQ(back.perfRoundsPerSec, r.perfRoundsPerSec);
  // wmsn-lint: allow(float-equality)
  EXPECT_EQ(back.perfFramesPerSec, r.perfFramesPerSec);
  EXPECT_EQ(back.metricsWire, r.metricsWire);
}

TEST(CampaignRecord, FailedRecordCarriesError) {
  const RunRecord r = campaign::makeFailedRecord("a/s1", "a", 1, 0, "boom");
  const RunRecord back = campaign::decodeRecord(campaign::encodeRecord(r));
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.error, "boom");
  EXPECT_TRUE(back.metricsWire.empty());
}

TEST(CampaignRecord, DecodeRejectsGarbage) {
  EXPECT_THROW(campaign::decodeRecord(""), PreconditionError);
  EXPECT_THROW(campaign::decodeRecord("not a record"), PreconditionError);
  const std::string line =
      campaign::encodeRecord(campaign::makeFailedRecord("a/s1", "a", 1, 0, ""));
  EXPECT_THROW(campaign::decodeRecord(line.substr(0, line.size() / 2)),
               PreconditionError);
}

// --- metrics registry wire -------------------------------------------------

TEST(CampaignRegistryWire, RoundTripPreservesJsonExactly) {
  obs::MetricsRegistry reg;
  reg.counter("wmsn_generated", {{"protocol", "mlr"}}).add(123);
  reg.gauge("wmsn_pdr").set(0.9876543210123);
  auto& h = reg.histogram("wmsn_latency_ms", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(55.0);
  h.observe(1e6);
  const obs::MetricsRegistry back =
      obs::MetricsRegistry::fromWire(reg.wire());
  EXPECT_EQ(back.json(), reg.json());
  EXPECT_EQ(obs::MetricsRegistry::fromWire(back.wire()).json(), reg.json());
}

TEST(CampaignRegistryWire, MergeAfterTransportMatchesDirectMerge) {
  obs::MetricsRegistry a;
  a.counter("c").add(1);
  a.histogram("h", {1.0, 2.0}).observe(1.5);
  obs::MetricsRegistry b;
  b.counter("c").add(2);
  b.histogram("h", {1.0, 2.0}).observe(5.0);

  obs::MetricsRegistry direct;
  direct.merge(a);
  direct.merge(b);
  obs::MetricsRegistry shipped;
  shipped.merge(obs::MetricsRegistry::fromWire(a.wire()));
  shipped.merge(obs::MetricsRegistry::fromWire(b.wire()));
  EXPECT_EQ(shipped.json(), direct.json());
}

// --- journal ---------------------------------------------------------------

TEST(CampaignJournal, AppendThenResumeRestoresRecords) {
  const std::string path = tmpPath("journal_roundtrip");
  {
    auto j = campaign::Journal::create(path, 42, 3);
    j.append(campaign::makeFailedRecord("a/s1", "a", 1, 0, "x"));
    RunRecord ok = campaign::makeFailedRecord("a/s2", "a", 2, 1, "");
    ok.status = RunRecord::Status::kOk;
    ok.pdr = 0.5;
    j.append(ok);
  }
  const auto j = campaign::Journal::resume(path, 42, 3);
  ASSERT_EQ(j.loaded().size(), 2u);
  EXPECT_FALSE(j.loaded().at("a/s1").ok());
  EXPECT_TRUE(j.loaded().at("a/s2").ok());
  EXPECT_EQ(j.loaded().at("a/s2").pdr, 0.5);  // wmsn-lint: allow(float-equality)
  std::remove(path.c_str());
}

TEST(CampaignJournal, ToleratesTornFinalLineOnly) {
  const std::string path = tmpPath("journal_torn");
  {
    auto j = campaign::Journal::create(path, 7, 2);
    j.append(campaign::makeFailedRecord("a/s1", "a", 1, 0, "x"));
  }
  // Simulate a kill mid-append: a half-written record with no newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << campaign::encodeRecord(
               campaign::makeFailedRecord("a/s2", "a", 2, 1, "y"))
               .substr(0, 10);
  }
  auto j = campaign::Journal::resume(path, 7, 2);
  EXPECT_EQ(j.loaded().size(), 1u);
  // The torn fragment was dropped on rewrite, so the re-append succeeds.
  j.append(campaign::makeFailedRecord("a/s2", "a", 2, 1, "y"));
  j.close();
  EXPECT_EQ(campaign::Journal::resume(path, 7, 2).loaded().size(), 2u);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RejectsDuplicatesAndForeignSpecs) {
  const std::string path = tmpPath("journal_dupe");
  {
    auto j = campaign::Journal::create(path, 42, 3);
    j.append(campaign::makeFailedRecord("a/s1", "a", 1, 0, "x"));
    EXPECT_THROW(j.append(campaign::makeFailedRecord("a/s1", "a", 1, 0, "x")),
                 PreconditionError);
  }
  EXPECT_THROW(campaign::Journal::resume(path, 43, 3), PreconditionError);
  EXPECT_THROW(campaign::Journal::resume(path, 42, 4), PreconditionError);
  EXPECT_THROW(campaign::Journal::resume(tmpPath("journal_missing"), 42, 3),
               PreconditionError);
  std::remove(path.c_str());
}

// --- statistics ------------------------------------------------------------

TEST(CampaignStats, AggregateMatchesHandComputation) {
  const auto a = campaign::aggregate({2.0, 4.0, 4.0, 4.0, 6.0});
  EXPECT_EQ(a.n, 5u);
  EXPECT_DOUBLE_EQ(a.mean, 4.0);
  EXPECT_NEAR(a.stddev, 1.4142135623730951, 1e-12);
  // t(df=4) = 2.776: ci95 = 2.776 * stddev / sqrt(5)
  EXPECT_NEAR(a.ci95, 2.776 * a.stddev / std::sqrt(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.max, 6.0);
  EXPECT_EQ(campaign::aggregate({}).n, 0u);
  EXPECT_DOUBLE_EQ(campaign::aggregate({3.0}).ci95, 0.0);
}

TEST(CampaignStats, TCriticalTable) {
  EXPECT_DOUBLE_EQ(campaign::tCritical95(1), 12.706);
  EXPECT_DOUBLE_EQ(campaign::tCritical95(4), 2.776);
  EXPECT_DOUBLE_EQ(campaign::tCritical95(30), 2.042);
  EXPECT_DOUBLE_EQ(campaign::tCritical95(1000), 1.96);
}

TEST(CampaignStats, ExactSignTest) {
  // 5-0 split: 2 * (1/2)^5 = 0.0625.
  EXPECT_NEAR(campaign::signTestTwoSided(5, 0), 0.0625, 1e-15);
  // 4-1 split: 2 * (C(5,0)+C(5,1)) / 32 = 0.375.
  EXPECT_NEAR(campaign::signTestTwoSided(4, 1), 0.375, 1e-15);
  EXPECT_DOUBLE_EQ(campaign::signTestTwoSided(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(campaign::signTestTwoSided(0, 0), 1.0);
  // 9-1: 2 * (1 + 10) / 1024.
  EXPECT_NEAR(campaign::signTestTwoSided(9, 1), 22.0 / 1024.0, 1e-15);
}

// --- artifact determinism --------------------------------------------------

TEST(CampaignArtifact, IndependentOfRecordArrivalOrder) {
  const auto spec = campaign::parseSpec(kTinySpec);
  const auto plan = campaign::expand(spec);

  // Synthesize records (no simulation needed to test rendering).
  std::vector<RunRecord> recs;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    RunRecord r = campaign::makeFailedRecord(plan[i].id, plan[i].cell,
                                             plan[i].seed, plan[i].seedIndex,
                                             "");
    r.status = RunRecord::Status::kOk;
    r.pdr = 0.5 + 0.01 * static_cast<double>(i);
    r.meanLatencyMs = 10.0 + static_cast<double>(i);
    r.lifetimeS = 40.0;
    recs.push_back(r);
  }
  std::map<std::string, RunRecord> inOrder;
  for (const auto& r : recs) inOrder.emplace(r.id, r);

  // Deterministic reorder (reverse + rotate) — any permutation must render
  // the same artifact, since the map and the plan fix the iteration order.
  std::reverse(recs.begin(), recs.end());
  std::rotate(recs.begin(), recs.begin() + 3, recs.end());
  std::map<std::string, RunRecord> shuffled;
  for (const auto& r : recs) shuffled.emplace(r.id, r);

  const std::string a = campaign::renderArtifact(spec, plan, inOrder);
  const std::string b = campaign::renderArtifact(spec, plan, shuffled);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"wmsn-campaign-v1\""), std::string::npos);
  EXPECT_NE(a.find("\"deltas\""), std::string::npos);

  // A missing run is a hard error, not a silent gap.
  std::map<std::string, RunRecord> incomplete = inOrder;
  incomplete.erase(plan[3].id);
  EXPECT_THROW(campaign::renderArtifact(spec, plan, incomplete),
               PreconditionError);
}

TEST(CampaignArtifact, FailedRunsExcludedFromAggregatesButCounted) {
  const auto spec = campaign::parseSpec(kTinySpec);
  const auto plan = campaign::expand(spec);
  std::map<std::string, RunRecord> records;
  for (const auto& run : plan) {
    RunRecord r = campaign::makeFailedRecord(run.id, run.cell, run.seed,
                                             run.seedIndex, "died");
    if (run.id != plan[0].id) {
      r.status = RunRecord::Status::kOk;
      r.error.clear();
      r.pdr = 0.75;
    }
    records.emplace(r.id, r);
  }
  const std::string json = campaign::renderArtifact(spec, plan, records);
  EXPECT_NE(json.find("\"runs_failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"n_ok\": 1, \"n_failed\": 1"), std::string::npos);
}

// --- fork pool -------------------------------------------------------------

TEST(CampaignPool, RunsEveryJobOnceAnyWorkerCount) {
  for (const unsigned workers : {1u, 3u}) {
    std::vector<int> results(20, -1);
    const auto stats = campaign::runForkPool(
        20, workers,
        [](std::size_t i) { return std::to_string(i * i); },
        [&](std::size_t i, bool crashed, const std::string& payload,
            unsigned) {
          EXPECT_FALSE(crashed);
          results[i] = std::stoi(payload);
        });
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_EQ(results[i], static_cast<int>(i * i));
    std::uint64_t total = 0;
    for (const auto c : stats.perWorkerCompleted) total += c;
    EXPECT_EQ(total, 20u);
  }
}

TEST(CampaignPool, CrashIsolatesToOneJob) {
  std::vector<int> ok(10, 0);
  int crashes = 0;
  const auto stats = campaign::runForkPool(
      10, 2,
      [](std::size_t i) -> std::string {
        if (i == 4) ::_exit(86);  // simulated segfault mid-job
        return "ok";
      },
      [&](std::size_t i, bool crashed, const std::string&, unsigned) {
        if (crashed) {
          EXPECT_EQ(i, 4u);
          ++crashes;
        } else {
          ok[i] = 1;
        }
      });
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(stats.crashes, 1u);
  for (std::size_t i = 0; i < ok.size(); ++i)
    EXPECT_EQ(ok[i], i == 4 ? 0 : 1) << i;
}

// --- end-to-end campaigns --------------------------------------------------

class CampaignEndToEnd : public ::testing::Test {
 protected:
  campaign::CampaignSpec spec_ = campaign::parseSpec(kTinySpec);

  campaign::CampaignOptions options(const std::string& tag) {
    campaign::CampaignOptions opts;
    opts.outPath = tmpPath(tag + ".json");
    opts.journalPath = tmpPath(tag + ".journal");
    opts.quiet = true;
    return opts;
  }

  void cleanup(const campaign::CampaignOptions& opts) {
    std::remove(opts.outPath.c_str());
    std::remove(opts.journalPath.c_str());
    if (!opts.metricsOutPath.empty())
      std::remove(opts.metricsOutPath.c_str());
  }
};

TEST_F(CampaignEndToEnd, ArtifactIsByteIdenticalAcrossWorkerCounts) {
  auto one = options("workers1");
  one.workers = 1;
  auto four = options("workers4");
  four.workers = 4;
  four.metricsOutPath = tmpPath("workers4_metrics.json");
  auto oneMetrics = options("workers1m");
  oneMetrics.workers = 1;
  oneMetrics.metricsOutPath = tmpPath("workers1_metrics.json");

  const auto r1 = campaign::runCampaign(spec_, one);
  const auto r4 = campaign::runCampaign(spec_, four);
  const auto r1m = campaign::runCampaign(spec_, oneMetrics);
  EXPECT_EQ(r1.runsExecuted, 8u);
  EXPECT_EQ(r4.runsExecuted, 8u);
  EXPECT_EQ(r1.runsFailed, 0u);
  EXPECT_EQ(readFile(one.outPath), readFile(four.outPath));
  EXPECT_EQ(readFile(one.outPath), readFile(oneMetrics.outPath));
  EXPECT_EQ(readFile(oneMetrics.metricsOutPath),
            readFile(four.metricsOutPath));
  cleanup(one);
  cleanup(four);
  cleanup(oneMetrics);
}

TEST_F(CampaignEndToEnd, StopAfterThenResumeMatchesUninterrupted) {
  auto full = options("full");
  full.workers = 2;
  campaign::runCampaign(spec_, full);

  auto interrupted = options("interrupted");
  interrupted.workers = 2;
  interrupted.stopAfter = 3;
  const auto stopped = campaign::runCampaign(spec_, interrupted);
  EXPECT_TRUE(stopped.stoppedEarly);
  EXPECT_EQ(stopped.runsExecuted, 3u);

  interrupted.stopAfter = 0;
  interrupted.resume = true;
  const auto resumed = campaign::runCampaign(spec_, interrupted);
  EXPECT_FALSE(resumed.stoppedEarly);
  EXPECT_EQ(resumed.runsFromJournal, 3u);
  EXPECT_EQ(resumed.runsExecuted, 5u);
  EXPECT_EQ(readFile(full.outPath), readFile(interrupted.outPath));
  cleanup(full);
  cleanup(interrupted);
}

// Tracing-enabled campaign: a `trace = on` spec whose per-run trace
// summaries land in the artifact, stay byte-identical across kill + resume,
// and whose crash-injected worker leaves a flight-recorder dump behind.
constexpr const char* kTracedSpec =
    "name = traced\n"
    "seed = 9\n"
    "repeats = 2\n"
    "sensors = 40\n"
    "area = 120\n"
    "gateways = 2\n"
    "places = 4\n"
    "rounds = 2\n"
    "packets = 1\n"
    "metrics = on\n"
    "trace = on\n"
    "\n"
    "[sweep]\n"
    "protocol = mlr, secmlr\n";

TEST_F(CampaignEndToEnd, TracedArtifactSurvivesKillAndResume) {
  const auto traced = campaign::parseSpec(kTracedSpec);
  auto full = options("traced_full");
  full.workers = 2;
  const auto complete = campaign::runCampaign(traced, full);
  EXPECT_EQ(complete.runsExecuted, 4u);
  EXPECT_EQ(complete.runsFailed, 0u);
  const std::string json = readFile(full.outPath);
  EXPECT_NE(json.find("\"trace_spans\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace_mean_path_hops\":"), std::string::npos);

  auto interrupted = options("traced_cut");
  interrupted.workers = 2;
  interrupted.stopAfter = 2;
  const auto stopped = campaign::runCampaign(traced, interrupted);
  EXPECT_TRUE(stopped.stoppedEarly);
  interrupted.stopAfter = 0;
  interrupted.resume = true;
  const auto resumed = campaign::runCampaign(traced, interrupted);
  EXPECT_EQ(resumed.runsFromJournal, 2u);
  EXPECT_EQ(json, readFile(interrupted.outPath));
  cleanup(full);
  cleanup(interrupted);
}

TEST_F(CampaignEndToEnd, CrashedWorkerDumpsFlightRecorder) {
  const auto traced = campaign::parseSpec(kTracedSpec);
  auto opts = options("traced_crash");
  opts.workers = 2;
  opts.flightRecorderDir = testing::TempDir();
  const std::string dumpPath = opts.flightRecorderDir + "flight-mlr_s9.jsonl";
  std::remove(dumpPath.c_str());
  ::setenv(campaign::kCrashRunEnv, "mlr/s9", 1);
  const auto outcome = campaign::runCampaign(traced, opts);
  ::unsetenv(campaign::kCrashRunEnv);
  EXPECT_EQ(outcome.runsFailed, 1u);
  // The injected _exit(86) dumped the worker's flight ring post-mortem: the
  // file parses as trace JSONL (header line skipped) and names the cause.
  const std::string dump = readFile(dumpPath);
  EXPECT_NE(dump.find("campaign-crash-injected"), std::string::npos);
  EXPECT_NE(dump.find("flight-recorder"), std::string::npos);
  (void)obs::parseTraceJsonl(dump);  // must not throw
  std::remove(dumpPath.c_str());
  cleanup(opts);
}

TEST_F(CampaignEndToEnd, WorkerCrashRecordsFailureAndCompletes) {
  auto opts = options("crash");
  opts.workers = 2;
  opts.metricsOutPath = tmpPath("crash_metrics.json");
  ::setenv(campaign::kCrashRunEnv, "mlr/baseline/s3", 1);
  const auto outcome = campaign::runCampaign(spec_, opts);
  ::unsetenv(campaign::kCrashRunEnv);
  EXPECT_EQ(outcome.runsExecuted, 8u);
  EXPECT_EQ(outcome.runsFailed, 1u);
  EXPECT_GE(outcome.pool.crashes, 1u);
  const std::string json = readFile(opts.outPath);
  EXPECT_NE(json.find("\"runs_failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("worker process died mid-run"), std::string::npos);
  // The merged registry still writes — failed runs contribute nothing, and
  // the campaign bookkeeping records the failure.
  const std::string metrics = readFile(opts.metricsOutPath);
  EXPECT_NE(metrics.find("wmsn_campaign_runs_failed"), std::string::npos);
  EXPECT_NE(metrics.find("wmsn_campaign_runs_total"), std::string::npos);
  cleanup(opts);
}

}  // namespace
