#include <gtest/gtest.h>

#include "net/sensor_network.hpp"
#include "routing/flooding.hpp"
#include "routing/leach.hpp"
#include "routing/messages.hpp"
#include "routing/mlr.hpp"
#include "routing/single_sink.hpp"
#include "routing/spr.hpp"
#include "util/require.hpp"

namespace wmsn::routing {
namespace {

// --- wire formats -------------------------------------------------------------

TEST(Messages, RreqRoundTrip) {
  RreqMsg m;
  m.reqId = 77;
  m.targetGateway = 3;
  m.path = {1, 2, 3};
  const RreqMsg out = RreqMsg::decode(m.encode());
  EXPECT_EQ(out.reqId, 77u);
  EXPECT_EQ(out.targetGateway, 3);
  EXPECT_EQ(out.path, m.path);
}

TEST(Messages, RresAndDataRoundTrip) {
  RresMsg r;
  r.reqId = 5;
  r.gateway = 9;
  r.place = 2;
  r.path = {4, 5, 9};
  r.cursor = 1;
  const RresMsg rOut = RresMsg::decode(r.encode());
  EXPECT_EQ(rOut.path, r.path);
  EXPECT_EQ(rOut.cursor, 1);
  EXPECT_EQ(rOut.place, 2);

  DataMsg d;
  d.source = 4;
  d.gateway = 9;
  d.place = 1;
  d.dataSeq = 100;
  d.route = {4, 5, 9};
  d.cursor = 2;
  d.reading = {1, 2, 3, 4};
  const DataMsg dOut = DataMsg::decode(d.encode());
  EXPECT_EQ(dOut.reading, d.reading);
  EXPECT_EQ(dOut.route, d.route);
  EXPECT_EQ(dOut.dataSeq, 100u);
}

TEST(Messages, GatewayMoveAndBeaconRoundTrip) {
  GatewayMoveMsg g;
  g.gateway = 7;
  g.newPlace = 3;
  g.prevPlace = kNoPlace;
  g.round = 12;
  g.hopCount = 4;
  const GatewayMoveMsg gOut = GatewayMoveMsg::decode(g.encode());
  EXPECT_EQ(gOut.newPlace, 3);
  EXPECT_EQ(gOut.prevPlace, kNoPlace);
  EXPECT_EQ(gOut.hopCount, 4);

  CostBeaconMsg c;
  c.sink = 1;
  c.cost = 6;
  c.epoch = 2;
  const CostBeaconMsg cOut = CostBeaconMsg::decode(c.encode());
  EXPECT_EQ(cOut.cost, 6);
  EXPECT_EQ(cOut.epoch, 2u);
}

TEST(Messages, AggregateRoundTrip) {
  AggregateMsg a;
  a.entries.push_back({111, 5, 2});
  a.entries.push_back({222, 6, 1});
  const AggregateMsg out = AggregateMsg::decode(a.encode());
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0].uid, 111u);
  EXPECT_EQ(out.entries[1].origin, 6);
}

TEST(Messages, SecureMessagesRoundTrip) {
  SecRreqMsg q;
  q.source = 2;
  q.gateway = 8;
  q.reqId = 3;
  q.counter = 99;
  q.encReq = {1, 2, 3};
  q.path = {2, 4};
  q.mac.fill(0xaa);
  const SecRreqMsg qOut = SecRreqMsg::decode(q.encode());
  EXPECT_EQ(qOut.counter, 99u);
  EXPECT_EQ(qOut.path, q.path);
  EXPECT_EQ(qOut.mac, q.mac);
  EXPECT_EQ(qOut.macInput(), q.macInput());

  SecDataMsg d;
  d.source = 2;
  d.gateway = 8;
  d.immediateSender = 2;
  d.immediateReceiver = 4;
  d.counter = 7;
  d.encData = {9, 9};
  d.mac.fill(0xbb);
  const SecDataMsg dOut = SecDataMsg::decode(d.encode());
  EXPECT_EQ(dOut.immediateReceiver, 4);
  EXPECT_EQ(dOut.encData, d.encData);
}

TEST(Messages, MacInputExcludesMutableFields) {
  SecRreqMsg q;
  q.source = 2;
  q.gateway = 8;
  q.reqId = 3;
  q.counter = 99;
  q.encReq = {1, 2, 3};
  q.path = {2};
  const Bytes before = q.macInput();
  q.path.push_back(17);  // per-hop append must not break the MAC
  EXPECT_EQ(q.macInput(), before);

  SecDataMsg d;
  d.source = 1;
  d.immediateSender = 1;
  d.immediateReceiver = 2;
  const Bytes dBefore = d.macInput();
  d.immediateSender = 2;  // rewritten at every hop (§6.2.4)
  d.immediateReceiver = 3;
  EXPECT_EQ(d.macInput(), dBefore);
}

TEST(Messages, MalformedPayloadThrows) {
  EXPECT_THROW(RreqMsg::decode(Bytes{1, 2}), PreconditionError);
  EXPECT_THROW(DataMsg::decode(Bytes{}), PreconditionError);
  EXPECT_THROW(SecRreqMsg::decode(Bytes(5, 0xff)), PreconditionError);
  // A path length byte claiming more hops than present.
  Bytes bogus{0x01, 0x00, 0x00, 0x00, 0xff, 0xff, 0xff};
  EXPECT_THROW(RreqMsg::decode(bogus), PreconditionError);
}

TEST(Messages, PathIsSimple) {
  EXPECT_TRUE(pathIsSimple({1, 2, 3}));
  EXPECT_TRUE(pathIsSimple({}));
  EXPECT_FALSE(pathIsSimple({1, 2, 1}));
}

// --- shared test harness ---------------------------------------------------------

/// A deterministic line topology: sensors every 20 m, gateways appended at
/// given positions. Ideal MAC, no collisions — routing logic in isolation.
struct LineNet {
  sim::Simulator simulator;
  net::SensorNetwork network;
  NetworkKnowledge knowledge;
  std::unique_ptr<ProtocolStack> stack;

  LineNet(std::size_t sensorCount, std::vector<net::Point> gatewayPositions,
          const ProtocolStack::Factory& factory,
          std::vector<net::Point> places = {})
      : network(simulator, std::make_unique<net::UnitDiskRadio>(25.0),
                idealParams()) {
    for (std::size_t i = 0; i < sensorCount; ++i)
      network.addSensor({20.0 * static_cast<double>(i), 0.0});
    knowledge.feasiblePlaces = places.empty() ? gatewayPositions : places;
    for (const auto& p : gatewayPositions)
      knowledge.gatewayIds.push_back(network.addGateway(p));
    stack = std::make_unique<ProtocolStack>(network, knowledge, factory);
    stack->startAll();
  }

  static net::SensorNetworkParams idealParams() {
    net::SensorNetworkParams p;
    p.mac = net::MacKind::kIdeal;
    p.medium.collisions = false;
    return p;
  }

  void run(double seconds = 5.0) {
    simulator.runUntil(simulator.now() + sim::Time::seconds(seconds));
  }
};

template <typename Params, typename Protocol>
ProtocolStack::Factory factoryFor(Params params) {
  return [params](net::SensorNetwork& n, net::NodeId id,
                  const NetworkKnowledge& k) {
    return std::make_unique<Protocol>(n, id, k, params);
  };
}

// --- flooding / gossip ----------------------------------------------------------

TEST(Flooding, DeliversAcrossMultipleHops) {
  // 5 sensors in a line, gateway past the last one: 0→…→4→G.
  LineNet net(5, {{100.0, 0.0}},
              factoryFor<FloodingParams, FloodingRouting>({}));
  net.stack->at(0).originate(Bytes(24, 1));
  net.run();
  EXPECT_EQ(net.network.stats().delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.network.stats().hopStats().max(), 5.0);
}

TEST(Flooding, TtlLimitsPropagation) {
  FloodingParams params;
  params.maxHops = 3;
  LineNet net(6, {{140.0, 0.0}},
              factoryFor<FloodingParams, FloodingRouting>(params));
  net.stack->at(0).originate(Bytes(24, 1));  // gateway is 7 hops away
  net.run();
  EXPECT_EQ(net.network.stats().delivered(), 0u);
}

TEST(Flooding, EveryNodeRebroadcastsOnce) {
  LineNet net(5, {{120.0, 0.0}},
              factoryFor<FloodingParams, FloodingRouting>({}));
  net.stack->at(0).originate(Bytes(24, 1));
  net.run();
  // Source + 4 relays transmit exactly once each (implosion guard);
  // the gateway consumes without rebroadcasting.
  EXPECT_EQ(net.network.stats().dataFrames(), 5u);
}

TEST(Gossip, RandomWalkReachesGatewayEventually) {
  LineNet net(4, {{80.0, 0.0}},
              factoryFor<FloodingParams, GossipRouting>({}));
  for (int i = 0; i < 10; ++i) net.stack->at(0).originate(Bytes(24, 1));
  net.run(30.0);
  // On a line with a gateway neighbour-preference the walk terminates; most
  // packets make it, a few may exceed the TTL.
  EXPECT_GE(net.network.stats().delivered(), 5u);
}

// --- single sink -------------------------------------------------------------------

TEST(SingleSink, GradientFormsAndRoutes) {
  LineNet net(5, {{-20.0, 0.0}},
              factoryFor<SingleSinkParams, SingleSinkRouting>({}));
  net.run(1.0);  // let the start() beacon flood
  auto& node4 = dynamic_cast<SingleSinkRouting&>(net.stack->at(4));
  ASSERT_TRUE(node4.costToSink().has_value());
  EXPECT_EQ(*node4.costToSink(), 5);  // 5 hops from the far end

  net.stack->at(4).originate(Bytes(24, 1));
  net.run();
  EXPECT_EQ(net.network.stats().delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.network.stats().hopStats().mean(), 5.0);
}

TEST(SingleSink, OnlyFirstGatewayActsAsSink) {
  // Second gateway adjacent to the source is IGNORED — the whole point of
  // the single-sink baseline.
  LineNet net(5, {{-20.0, 0.0}, {100.0, 0.0}},
              factoryFor<SingleSinkParams, SingleSinkRouting>({}));
  net.run(1.0);
  net.stack->at(4).originate(Bytes(24, 1));
  net.run();
  ASSERT_EQ(net.network.stats().delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.network.stats().hopStats().mean(), 5.0);
  EXPECT_TRUE(net.network.stats().perGatewayDeliveries().contains(
      net.knowledge.gatewayIds[0]));
}

TEST(SingleSink, ReBeaconAdaptsToDeadRelay) {
  // Diamond: two parallel 2-hop paths; kill one relay, re-beacon, reroute.
  sim::Simulator simulator;
  net::SensorNetwork network(simulator,
                             std::make_unique<net::UnitDiskRadio>(25.0),
                             LineNet::idealParams());
  const auto src = network.addSensor({40, 0});
  const auto relayTop = network.addSensor({20, 10});
  const auto relayBot = network.addSensor({20, -10});
  NetworkKnowledge knowledge;
  knowledge.gatewayIds.push_back(network.addGateway({0, 0}));
  knowledge.feasiblePlaces = {{0, 0}};
  ProtocolStack stack(network, knowledge,
                      factoryFor<SingleSinkParams, SingleSinkRouting>({}));
  stack.startAll();
  simulator.runUntil(sim::Time::seconds(1.0));

  network.node(relayTop).kill(simulator.now());
  network.node(relayBot).kill(simulator.now());
  // Without the relays the gradient is stale; data dies.
  stack.at(src).originate(Bytes(24, 1));
  simulator.runUntil(sim::Time::seconds(2.0));
  EXPECT_EQ(network.stats().delivered(), 0u);
  (void)relayTop;
  (void)relayBot;
}

// --- LEACH ---------------------------------------------------------------------------

TEST(Leach, HeadElectionRespectsRotation) {
  // With p=0.5 over many rounds roughly half the rounds elect, and a node
  // never heads twice within 1/p rounds.
  LineNet net(1, {{500.0, 0.0}},
              factoryFor<LeachParams, LeachRouting>([] {
                LeachParams p;
                p.clusterHeadFraction = 0.5;
                return p;
              }()));
  auto& node = dynamic_cast<LeachRouting&>(net.stack->at(0));
  std::uint32_t headCount = 0;
  std::uint32_t lastHead = 0;
  bool wasHead = false;
  for (std::uint32_t r = 0; r < 40; ++r) {
    net.stack->beginRound(r);
    net.run(0.5);
    if (node.isClusterHead()) {
      if (wasHead) {
        EXPECT_GE(r - lastHead, 2u);
      }
      lastHead = r;
      wasHead = true;
      ++headCount;
    }
  }
  EXPECT_GE(headCount, 8u);
  EXPECT_LE(headCount, 25u);
}

TEST(Leach, MembersSendToHeadHeadAggregatesToGateway) {
  // Force clustering: node 0 heads (p≈1), others join and send.
  LeachParams params;
  params.clusterHeadFraction = 0.99;
  params.aggregateDelay = sim::Time::seconds(0.5);
  LineNet net(3, {{200.0, 0.0}}, factoryFor<LeachParams, LeachRouting>(params));
  net.stack->beginRound(0);
  net.run(1.0);  // adverts + joins
  for (net::NodeId s = 0; s < 3; ++s) net.stack->at(s).originate(Bytes(24, 1));
  net.run(3.0);
  // All three readings reach the gateway (as heads or members).
  EXPECT_EQ(net.network.stats().delivered(), 3u);
}

TEST(Leach, FallbackDirectWhenNoHeadHeard) {
  LeachParams params;
  params.clusterHeadFraction = 0.01;  // nobody will self-elect round 0..
  LineNet net(2, {{300.0, 0.0}}, factoryFor<LeachParams, LeachRouting>(params));
  net.stack->beginRound(1);  // threshold formula: r=1 keeps T small
  net.run(1.0);
  net.stack->at(0).originate(Bytes(24, 1));
  net.run(2.0);
  EXPECT_EQ(net.network.stats().delivered(), 1u);  // direct long-haul
}

// --- SPR ------------------------------------------------------------------------------

SprParams sprDefaults() { return SprParams{}; }

TEST(Spr, DiscoversMinHopGatewayAmongSeveral) {
  // Line 0..4; near gateway behind node 4, far gateway behind node 0 is
  // further in hops from the source (node 4).
  LineNet net(5, {{-20.0, 0.0}, {100.0, 0.0}},
              factoryFor<SprParams, SprRouting>(sprDefaults()));
  net.stack->beginRound(0);
  net.stack->at(4).originate(Bytes(24, 1));
  net.run();
  auto& src = dynamic_cast<SprRouting&>(net.stack->at(4));
  ASSERT_TRUE(src.currentBestGateway().has_value());
  EXPECT_EQ(*src.currentBestGateway(), net.knowledge.gatewayIds[1]);
  ASSERT_TRUE(src.currentRouteHops().has_value());
  EXPECT_EQ(*src.currentRouteHops(), 1);  // node 4 → adjacent gateway
  EXPECT_EQ(net.network.stats().delivered(), 1u);
}

TEST(Spr, FindsExactShortestPathLength) {
  LineNet net(6, {{-20.0, 0.0}},
              factoryFor<SprParams, SprRouting>(sprDefaults()));
  net.stack->beginRound(0);
  net.stack->at(5).originate(Bytes(24, 1));
  net.run();
  ASSERT_EQ(net.network.stats().delivered(), 1u);
  EXPECT_DOUBLE_EQ(net.network.stats().hopStats().mean(), 6.0);  // BFS dist
}

TEST(Spr, SecondPacketUsesInstalledTablesWithoutNewQuery) {
  LineNet net(4, {{-20.0, 0.0}},
              factoryFor<SprParams, SprRouting>(sprDefaults()));
  net.stack->beginRound(0);
  net.stack->at(3).originate(Bytes(24, 1));
  net.run();
  const auto rreqsAfterFirst =
      net.network.stats().framesByKind().at(net::PacketKind::kRreq);
  net.stack->at(3).originate(Bytes(24, 2));
  net.run();
  EXPECT_EQ(net.network.stats().framesByKind().at(net::PacketKind::kRreq),
            rreqsAfterFirst);  // no new flood (step 1 table hit)
  EXPECT_EQ(net.network.stats().delivered(), 2u);
}

TEST(Spr, IntermediateAnswersFromCacheSuppressingFlood) {
  LineNet net(4, {{-20.0, 0.0}},
              factoryFor<SprParams, SprRouting>(sprDefaults()));
  net.stack->beginRound(0);
  // Node 1 (next to the gateway side) learns a route first.
  net.stack->at(1).originate(Bytes(24, 1));
  net.run();
  const auto rreqsBefore =
      net.network.stats().framesByKind().at(net::PacketKind::kRreq);
  // Node 3's query should be answered by node 2 or 1 from cache — fewer
  // RREQ frames than its own full flood would cost.
  net.stack->at(3).originate(Bytes(24, 2));
  net.run();
  const auto rreqsAfter =
      net.network.stats().framesByKind().at(net::PacketKind::kRreq);
  EXPECT_EQ(net.network.stats().delivered(), 2u);
  EXPECT_LE(rreqsAfter - rreqsBefore, 3u);
}

TEST(Spr, RoundBoundaryInvalidatesRoutes) {
  LineNet net(4, {{-20.0, 0.0}},
              factoryFor<SprParams, SprRouting>(sprDefaults()));
  net.stack->beginRound(0);
  net.stack->at(3).originate(Bytes(24, 1));
  net.run();
  auto& src = dynamic_cast<SprRouting&>(net.stack->at(3));
  ASSERT_TRUE(src.currentBestGateway().has_value());
  net.stack->beginRound(1);
  EXPECT_FALSE(src.currentBestGateway().has_value());  // §5.1 round reset
}

TEST(Spr, UnreachableGatewayDropsAfterRetries) {
  // Gateway far outside radio range of every sensor.
  LineNet net(3, {{1000.0, 1000.0}},
              factoryFor<SprParams, SprRouting>(sprDefaults()));
  net.stack->beginRound(0);
  net.stack->at(0).originate(Bytes(24, 1));
  net.run(5.0);
  EXPECT_EQ(net.network.stats().generated(), 1u);
  EXPECT_EQ(net.network.stats().delivered(), 0u);
}

// --- MLR -------------------------------------------------------------------------------

/// Gateways at both ends of the line; places = the two end positions.
struct MlrNet : LineNet {
  MlrNet(std::size_t sensors, MlrParams params = {})
      : LineNet(sensors,
                {{-20.0, 0.0},
                 {20.0 * static_cast<double>(sensors), 0.0}},
                factoryFor<MlrParams, MlrRouting>(params),
                {{-20.0, 0.0},
                 {20.0 * static_cast<double>(sensors), 0.0},
                 {20.0 * static_cast<double>(sensors) / 2.0, 20.0}}) {}

  MlrRouting& mlrAt(net::NodeId id) {
    return dynamic_cast<MlrRouting&>(stack->at(id));
  }

  void announceInitial() {
    stack->beginRound(0);
    mlrAt(knowledge.gatewayIds[0]).announceMove(0, kNoPlace, 0);
    mlrAt(knowledge.gatewayIds[1]).announceMove(1, kNoPlace, 0);
    run(1.0);
  }
};

TEST(Mlr, FloodBuildsBfsCostField) {
  MlrNet net(5);
  net.announceInitial();
  // Node 0 is 1 hop from place 0 and 5 hops from place 1.
  EXPECT_EQ(net.mlrAt(0).placeTable()[0].hops, 1);
  EXPECT_EQ(net.mlrAt(0).placeTable()[1].hops, 5);
  EXPECT_EQ(net.mlrAt(4).placeTable()[0].hops, 5);
  EXPECT_EQ(net.mlrAt(4).placeTable()[1].hops, 1);
  // Occupancy learned everywhere.
  EXPECT_EQ(net.mlrAt(2).occupancy().size(), 2u);
}

TEST(Mlr, SelectsNearestOccupiedPlace) {
  MlrNet net(5);
  net.announceInitial();
  EXPECT_EQ(*net.mlrAt(0).selectedPlace(), 0);
  EXPECT_EQ(*net.mlrAt(4).selectedPlace(), 1);
}

TEST(Mlr, DataReachesNearestGateway) {
  MlrNet net(5);
  net.announceInitial();
  net.stack->at(0).originate(Bytes(24, 1));
  net.stack->at(4).originate(Bytes(24, 2));
  net.run();
  EXPECT_EQ(net.network.stats().delivered(), 2u);
  EXPECT_DOUBLE_EQ(net.network.stats().hopStats().mean(), 1.0);
  EXPECT_EQ(net.network.stats().perGatewayDeliveries().size(), 2u);
}

TEST(Mlr, TablesAccumulateAcrossRounds) {
  // Table 1's central behaviour: entries are added, never discarded.
  MlrNet net(5);
  net.announceInitial();
  EXPECT_EQ(net.mlrAt(2).knownEntryCount(), 2u);

  // Round 1: gateway 0 moves to place 2 (the third feasible place).
  net.stack->beginRound(1);
  net.network.setGatewayPosition(net.knowledge.gatewayIds[0],
                                 net.knowledge.feasiblePlaces[2]);
  net.mlrAt(net.knowledge.gatewayIds[0]).announceMove(2, 0, 1);
  net.run(1.0);

  auto& node2 = net.mlrAt(2);
  EXPECT_EQ(node2.knownEntryCount(), 3u);  // old entries kept, one added
  EXPECT_TRUE(node2.placeTable()[0].known);  // place 0 entry survives
  EXPECT_FALSE(node2.occupancy().contains(0));  // ..but nobody is there now
  EXPECT_TRUE(node2.occupancy().contains(2));
}

TEST(Mlr, RebuildAblationDiscardsTables) {
  MlrParams params;
  params.rebuildEveryRound = true;
  MlrNet net(5, params);
  net.announceInitial();
  EXPECT_GE(net.mlrAt(2).knownEntryCount(), 2u);
  net.stack->beginRound(1);
  EXPECT_EQ(net.mlrAt(2).knownEntryCount(), 0u);  // cleared, must re-learn
}

TEST(Mlr, ReoccupiedPlaceRepointsToNewOccupant) {
  MlrNet net(5);
  net.announceInitial();
  // Gateway 0 leaves place 0; gateway 1 later occupies place 0.
  net.stack->beginRound(1);
  net.network.setGatewayPosition(net.knowledge.gatewayIds[0],
                                 net.knowledge.feasiblePlaces[2]);
  net.mlrAt(net.knowledge.gatewayIds[0]).announceMove(2, 0, 1);
  net.run(1.0);
  net.stack->beginRound(2);
  net.network.setGatewayPosition(net.knowledge.gatewayIds[1],
                                 net.knowledge.feasiblePlaces[0]);
  net.mlrAt(net.knowledge.gatewayIds[1]).announceMove(0, 1, 2);
  net.run(1.0);

  net.stack->at(0).originate(Bytes(24, 1));
  net.run();
  ASSERT_EQ(net.network.stats().delivered(), 1u);
  // Delivery must be recorded by gateway 1 — the CURRENT occupant.
  EXPECT_TRUE(net.network.stats().perGatewayDeliveries().contains(
      net.knowledge.gatewayIds[1]));
}

TEST(Mlr, UnknownPlaceMeansNoRouteDrop) {
  MlrNet net(3);
  // No announcements at all: occupancy empty → originate drops.
  net.stack->beginRound(0);
  net.stack->at(1).originate(Bytes(24, 1));
  net.run();
  EXPECT_EQ(net.network.stats().generated(), 1u);
  EXPECT_EQ(net.network.stats().delivered(), 0u);
}

TEST(Mlr, ReliableModeRecoversViaOtherGateway) {
  MlrParams params;
  params.reliableForwarding = true;
  MlrNet net(5, params);
  net.announceInitial();

  // Kill node 1 — the relay between node 2 and gateway at place 0.
  net.network.node(1).kill(net.simulator.now());
  net.stack->at(2).originate(Bytes(24, 1));
  net.run(2.0);
  // First packet dies (3 ARQ + 3 protocol retries), but the failed link
  // invalidates the entry; the next packet takes the other gateway.
  net.stack->at(2).originate(Bytes(24, 2));
  net.run(3.0);
  EXPECT_GE(net.network.stats().delivered(), 1u);
  EXPECT_TRUE(net.network.stats().perGatewayDeliveries().contains(
      net.knowledge.gatewayIds[1]));
}

TEST(Mlr, MalformedPacketIsDroppedNotFatal) {
  MlrNet net(3);
  net.announceInitial();
  net::Packet evil;
  evil.kind = net::PacketKind::kGatewayMove;
  evil.hopDst = net::kBroadcastId;
  evil.payload = {0xde, 0xad};  // truncated
  net.network.sendFrom(0, evil);
  EXPECT_NO_THROW(net.run());
}

}  // namespace
}  // namespace wmsn::routing
