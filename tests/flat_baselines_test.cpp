// Tests for the §2.2.1 flat-routing baselines: SPIN's ADV/REQ/DATA
// negotiation and Directed Diffusion's interest/gradient/reinforcement
// machinery.

#include <gtest/gtest.h>

#include "core/wmsn.hpp"
#include "routing/diffusion.hpp"
#include "routing/spin.hpp"

namespace wmsn::routing {
namespace {

struct FlatNet {
  sim::Simulator simulator;
  net::SensorNetwork network;
  NetworkKnowledge knowledge;
  std::unique_ptr<ProtocolStack> stack;

  FlatNet(std::size_t sensors, const ProtocolStack::Factory& factory)
      : network(simulator, std::make_unique<net::UnitDiskRadio>(25.0),
                params()) {
    for (std::size_t i = 0; i < sensors; ++i)
      network.addSensor({20.0 * static_cast<double>(i), 0.0});
    knowledge.feasiblePlaces = {
        {20.0 * static_cast<double>(sensors), 0.0}};
    knowledge.gatewayIds.push_back(
        network.addGateway(knowledge.feasiblePlaces[0]));
    stack = std::make_unique<ProtocolStack>(network, knowledge, factory);
    stack->startAll();
  }

  static net::SensorNetworkParams params() {
    net::SensorNetworkParams p;
    p.mac = net::MacKind::kIdeal;
    p.medium.collisions = false;
    return p;
  }

  void run(double seconds) {
    simulator.runUntil(simulator.now() + sim::Time::seconds(seconds));
  }
};

// --- SPIN ---------------------------------------------------------------------

ProtocolStack::Factory spinFactory() {
  return [](net::SensorNetwork& n, net::NodeId id,
            const NetworkKnowledge& k) {
    return std::make_unique<SpinRouting>(n, id, k);
  };
}

TEST(Spin, NegotiatedDeliveryAcrossHops) {
  FlatNet net(5, spinFactory());
  net.stack->at(0).originate(Bytes(24, 1));
  net.run(5.0);
  EXPECT_EQ(net.network.stats().delivered(), 1u);
  const auto& kinds = net.network.stats().framesByKind();
  // The three-way handshake happened at every hop.
  EXPECT_GE(kinds.at(net::PacketKind::kAdv), 5u);
  EXPECT_GE(kinds.at(net::PacketKind::kReq), 5u);
  EXPECT_GE(kinds.at(net::PacketKind::kData), 5u);
}

TEST(Spin, NoDuplicateDataTransmissions) {
  // SPIN's whole point: a node that already holds the data never requests
  // it again, so data frames stay bounded by the node count — unlike
  // flooding, where every node retransmits the payload blindly.
  FlatNet net(6, spinFactory());
  net.stack->at(0).originate(Bytes(24, 1));
  net.run(8.0);
  const auto& kinds = net.network.stats().framesByKind();
  // Each node transmits the payload at most once per requester; on a line,
  // each hop serves its two neighbours at most.
  EXPECT_LE(kinds.at(net::PacketKind::kData), 12u);
  EXPECT_EQ(net.network.stats().delivered(), 1u);
}

TEST(Spin, AdvSmallerThanData) {
  FlatNet net(3, spinFactory());
  net.stack->at(0).originate(Bytes(24, 1));
  net.run(3.0);
  const auto& stats = net.network.stats();
  // Control bytes per frame (ADV/REQ ≈ 9 B payload) < data bytes per frame
  // (≈ 35 B payload): the negotiation is cheaper than blind payload
  // flooding per §2.2.1.
  const double ctrlPerFrame =
      static_cast<double>(stats.controlBytes()) /
      static_cast<double>(stats.controlFrames());
  const double dataPerFrame = static_cast<double>(stats.dataBytes()) /
                              static_cast<double>(stats.dataFrames());
  EXPECT_LT(ctrlPerFrame, dataPerFrame);
}

TEST(Spin, EndToEndOnGeneratedNetwork) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kSpin;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 3;
  cfg.width = 150;
  cfg.height = 150;
  cfg.gatewaysMove = false;
  cfg.rounds = 3;
  cfg.packetsPerSensorPerRound = 1;
  cfg.seed = 8;
  const auto r = core::runScenario(cfg);
  // SPIN's ADV broadcasts get no ARQ; a lost advertisement means a branch
  // never pulls the data — mid-80s delivery under CSMA is the protocol's
  // honest ceiling here.
  EXPECT_GT(r.deliveryRatio, 0.8);
}

// --- Directed Diffusion ---------------------------------------------------------

ProtocolStack::Factory diffusionFactory() {
  return [](net::SensorNetwork& n, net::NodeId id,
            const NetworkKnowledge& k) {
    return std::make_unique<DiffusionRouting>(n, id, k);
  };
}

TEST(Diffusion, InterestFloodBuildsGradients) {
  FlatNet net(5, diffusionFactory());
  net.run(1.0);  // the sink's start() interest flood
  // A middle node hears the interest from both line neighbours.
  auto& node2 = dynamic_cast<DiffusionRouting&>(net.stack->at(2));
  EXPECT_EQ(node2.gradientCount(), 2u);
  EXPECT_FALSE(node2.reinforced());
}

TEST(Diffusion, FirstPacketExploratoryThenReinforcedUnicast) {
  FlatNet net(5, diffusionFactory());
  net.run(1.0);
  net.stack->at(0).originate(Bytes(24, 1));  // exploratory flood
  net.run(3.0);
  EXPECT_EQ(net.network.stats().delivered(), 1u);
  auto& src = dynamic_cast<DiffusionRouting&>(net.stack->at(0));
  EXPECT_TRUE(src.reinforced());  // the sink's reinforcement walked back

  const auto dataBefore =
      net.network.stats().framesByKind().at(net::PacketKind::kData);
  net.stack->at(0).originate(Bytes(24, 2));  // now unicast down the gradient
  net.run(3.0);
  const auto dataAfter =
      net.network.stats().framesByKind().at(net::PacketKind::kData);
  EXPECT_EQ(net.network.stats().delivered(), 2u);
  // Reinforced path: exactly one frame per hop (5 hops), no flood.
  EXPECT_EQ(dataAfter - dataBefore, 5u);
}

TEST(Diffusion, NoInterestNoTransmission) {
  // A node that never heard an interest has no gradient — data is not owed
  // to anyone (data-centric semantics).
  sim::Simulator simulator;
  net::SensorNetworkParams params = FlatNet::params();
  net::SensorNetwork network(
      simulator, std::make_unique<net::UnitDiskRadio>(25.0), params);
  network.addSensor({0, 0});
  NetworkKnowledge knowledge;
  knowledge.feasiblePlaces = {{500, 500}};  // unreachable sink
  knowledge.gatewayIds.push_back(network.addGateway({500, 500}));
  ProtocolStack stack(network, knowledge, diffusionFactory());
  stack.startAll();
  stack.at(0).originate(Bytes(24, 1));
  simulator.runUntil(sim::Time::seconds(2.0));
  EXPECT_EQ(network.stats().framesByKind().count(net::PacketKind::kData),
            0u);
}

TEST(Diffusion, RoundRefreshRebuildsSoftState) {
  FlatNet net(4, diffusionFactory());
  net.run(1.0);
  net.stack->at(0).originate(Bytes(24, 1));
  net.run(3.0);
  auto& src = dynamic_cast<DiffusionRouting&>(net.stack->at(0));
  ASSERT_TRUE(src.reinforced());
  net.stack->beginRound(1);  // fresh interest epoch
  EXPECT_FALSE(src.reinforced());
  net.run(1.0);  // new interest flood re-arms gradients
  net.stack->at(0).originate(Bytes(24, 2));
  net.run(3.0);
  EXPECT_EQ(net.network.stats().delivered(), 2u);
}

TEST(Diffusion, EndToEndOnGeneratedNetwork) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kDiffusion;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 1;
  cfg.feasiblePlaceCount = 2;
  cfg.width = 150;
  cfg.height = 150;
  cfg.gatewaysMove = false;
  cfg.rounds = 3;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 9;
  const auto r = core::runScenario(cfg);
  EXPECT_GT(r.deliveryRatio, 0.9);
}

}  // namespace
}  // namespace wmsn::routing
