// Tests for wmsn::fault — plan parsing, the Gilbert–Elliott burst-loss
// chain, the deterministic injector, and the end-to-end guarantees the
// subsystem makes: byte-identical replay across thread counts, gateway
// failover that actually re-homes traffic, and loss that shows up in the
// fault counters without touching runs that never enabled it.

#include <gtest/gtest.h>

#include "core/wmsn.hpp"
#include "fault/gilbert_elliott.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "util/require.hpp"

namespace wmsn {
namespace {

// --- FaultPlan parsing --------------------------------------------------------

TEST(FaultPlan, ParsesEventsAndRecoveries) {
  const auto events = fault::parseFaultPlan("gw0@3,gw0+@6,s17@4");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].target, fault::FaultTargetKind::kGateway);
  EXPECT_EQ(events[0].ordinal, 0u);
  EXPECT_EQ(events[0].round, 3u);
  EXPECT_FALSE(events[0].recover);
  EXPECT_TRUE(events[1].recover);
  EXPECT_EQ(events[1].round, 6u);
  EXPECT_EQ(events[2].target, fault::FaultTargetKind::kSensor);
  EXPECT_EQ(events[2].ordinal, 17u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::parseFaultPlan("x1@2"), PreconditionError);
  EXPECT_THROW(fault::parseFaultPlan("gw@1"), PreconditionError);
  EXPECT_THROW(fault::parseFaultPlan("s5"), PreconditionError);
  EXPECT_THROW(fault::parseFaultPlan("s5@"), PreconditionError);
  EXPECT_THROW(fault::parseFaultPlan(""), PreconditionError);
  // Stray commas are tolerated; the events still parse.
  EXPECT_EQ(fault::parseFaultPlan("gw1@2,,s0@1").size(), 2u);
}

TEST(FaultPlan, SteadyStateLossFormula) {
  fault::GilbertElliottParams ge;
  ge.pGoodToBad = 0.05;
  ge.pBadToGood = 0.2;
  EXPECT_NEAR(ge.steadyStateLoss(), 0.2, 1e-12);  // πB = 0.05/0.25
  ge.lossGood = 0.1;
  ge.lossBad = 0.5;
  EXPECT_NEAR(ge.steadyStateLoss(), 0.2 * 0.5 + 0.8 * 0.1, 1e-12);
}

// --- Gilbert–Elliott chain ----------------------------------------------------

TEST(GilbertElliott, EmpiricalLossMatchesSteadyState) {
  fault::GilbertElliottParams ge;
  ge.enabled = true;
  ge.pGoodToBad = 0.05;
  ge.pBadToGood = 0.2;
  fault::GilbertElliottChain chain(ge, 0xfa117);
  const int steps = 200000;
  int lost = 0;
  for (int i = 0; i < steps; ++i) lost += chain.step() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(lost) / steps, ge.steadyStateLoss(), 0.01);
}

TEST(GilbertElliott, LossComesInBursts) {
  // With lossBad=1/lossGood=0, every loss run has geometric length with
  // mean 1/pBadToGood — far longer than i.i.d. loss at the same rate.
  fault::GilbertElliottParams ge;
  ge.enabled = true;
  ge.pGoodToBad = 0.02;
  ge.pBadToGood = 0.2;
  fault::GilbertElliottChain chain(ge, 7);
  int losses = 0, runs = 0;
  bool inRun = false;
  for (int i = 0; i < 100000; ++i) {
    if (chain.step()) {
      ++losses;
      if (!inRun) ++runs;
      inRun = true;
    } else {
      inRun = false;
    }
  }
  ASSERT_GT(runs, 0);
  const double meanRunLength = static_cast<double>(losses) / runs;
  EXPECT_GT(meanRunLength, 2.0);  // i.i.d. at ~9% loss would give ~1.1
}

// --- FaultInjector ------------------------------------------------------------

TEST(FaultInjector, SameSeedReplaysIdentically) {
  fault::FaultPlan plan;
  plan.sensorMtbfRounds = 10;
  plan.sensorMttrRounds = 3;
  plan.gatewayMtbfRounds = 15;
  plan.gatewayMttrRounds = 5;
  plan.events.push_back({4, fault::FaultTargetKind::kGateway, 1, false});

  fault::FaultInjector a(plan, 20, 3, 42);
  fault::FaultInjector b(plan, 20, 3, 42);
  for (std::uint32_t round = 0; round < 50; ++round) {
    const auto ea = a.actionsAtRound(round);
    const auto eb = b.actionsAtRound(round);
    ASSERT_EQ(ea.size(), eb.size()) << "round " << round;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].target, eb[i].target);
      EXPECT_EQ(ea[i].ordinal, eb[i].ordinal);
      EXPECT_EQ(ea[i].recover, eb[i].recover);
    }
  }
  EXPECT_EQ(a.sensorCrashes(), b.sensorCrashes());
  EXPECT_EQ(a.gatewayFailures(), b.gatewayFailures());
  EXPECT_GT(a.sensorCrashes() + a.gatewayFailures(), 0u);
}

TEST(FaultInjector, FiltersNoOpTransitions) {
  fault::FaultPlan plan;
  plan.events.push_back({2, fault::FaultTargetKind::kGateway, 0, false});
  plan.events.push_back({3, fault::FaultTargetKind::kGateway, 0, false});
  plan.events.push_back({4, fault::FaultTargetKind::kSensor, 1, true});
  plan.events.push_back({5, fault::FaultTargetKind::kGateway, 0, true});
  fault::FaultInjector inj(plan, 4, 2, 1);
  EXPECT_TRUE(inj.actionsAtRound(0).empty());
  EXPECT_EQ(inj.actionsAtRound(2).size(), 1u);
  EXPECT_TRUE(inj.actionsAtRound(3).empty());  // gw0 already down
  EXPECT_TRUE(inj.actionsAtRound(4).empty());  // s1 was never failed
  EXPECT_EQ(inj.actionsAtRound(5).size(), 1u);
  EXPECT_EQ(inj.gatewayFailures(), 1u);
  EXPECT_EQ(inj.gatewayRecoveries(), 1u);
  EXPECT_EQ(inj.failedGateways(), 0u);
}

TEST(FaultInjector, RejectsOutOfRangeOrdinals) {
  fault::FaultPlan plan;
  plan.events.push_back({1, fault::FaultTargetKind::kGateway, 5, false});
  EXPECT_THROW(fault::FaultInjector(plan, 10, 3, 1), PreconditionError);
}

// --- RecoveryTracker ----------------------------------------------------------

TEST(RecoveryTracker, MeasuresLatencyAndOutagePdr) {
  fault::RecoveryTracker tracker(0.9, 20.0);
  tracker.onRoundEnd(0, 100, 100, 0);  // healthy baseline (PDR 1.0)
  tracker.onRoundEnd(1, 100, 98, 0);
  tracker.onRoundEnd(2, 100, 40, 1);  // failure hits, PDR collapses
  tracker.onRoundEnd(3, 100, 60, 0);
  tracker.onRoundEnd(4, 100, 95, 0);  // ≥ 0.9×baseline — recovered
  ASSERT_EQ(tracker.episodes().size(), 1u);
  const auto& e = tracker.episodes().front();
  EXPECT_TRUE(e.recovered);
  EXPECT_EQ(e.latencyRounds(), 2u);
  EXPECT_EQ(tracker.unrecovered(), 0u);
  EXPECT_NEAR(tracker.meanRecoveryLatencySeconds(), 40.0, 1e-9);
  EXPECT_NEAR(tracker.pdrDuringOutage(), 100.0 / 200.0, 1e-9);
}

TEST(RecoveryTracker, AbsorbedFailureRecoversInZeroRounds) {
  fault::RecoveryTracker tracker(0.9, 20.0);
  tracker.onRoundEnd(0, 100, 100, 0);
  tracker.onRoundEnd(1, 100, 99, 1);  // failover absorbs the hit same-round
  ASSERT_EQ(tracker.episodes().size(), 1u);
  EXPECT_TRUE(tracker.episodes().front().recovered);
  EXPECT_EQ(tracker.episodes().front().latencyRounds(), 0u);
}

// --- End-to-end ---------------------------------------------------------------

core::ScenarioConfig faultConfig() {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 3;
  cfg.rounds = 8;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 11;
  cfg.mlr.failover = true;
  cfg.faults.events.push_back(
      {3, fault::FaultTargetKind::kGateway, 0, false});
  cfg.faults.sensorMtbfRounds = 20;
  cfg.faults.sensorMttrRounds = 3;
  cfg.faults.linkLoss.enabled = true;
  cfg.faults.linkLoss.pGoodToBad = 0.02;
  cfg.obs.metrics = true;
  return cfg;
}

TEST(FaultExperiment, PlanReplaysIdenticallyAcrossThreadCounts) {
  std::vector<core::ScenarioConfig> configs;
  for (std::uint64_t s = 0; s < 3; ++s) {
    configs.push_back(faultConfig());
    configs.back().seed = 11 + s;
  }
  const auto serial = core::runScenariosParallel(configs, 1);
  const auto parallel = core::runScenariosParallel(configs, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(core::summaryLine(serial[i]), core::summaryLine(parallel[i]));
    EXPECT_EQ(serial[i].delivered, parallel[i].delivered);
    EXPECT_EQ(serial[i].faults.sensorCrashes, parallel[i].faults.sensorCrashes);
    EXPECT_EQ(serial[i].faults.gatewayFailures,
              parallel[i].faults.gatewayFailures);
    EXPECT_EQ(serial[i].faults.linkFaultDrops,
              parallel[i].faults.linkFaultDrops);
    ASSERT_TRUE(serial[i].observations && parallel[i].observations);
    EXPECT_EQ(serial[i].observations->metrics.json(),
              parallel[i].observations->metrics.json());
  }
}

TEST(FaultExperiment, GatewayFailoverReHomesTraffic) {
  core::ScenarioConfig mlr;
  mlr.protocol = core::ProtocolKind::kMlr;
  mlr.sensorCount = 60;
  mlr.gatewayCount = 3;
  mlr.rounds = 10;
  mlr.packetsPerSensorPerRound = 2;
  mlr.seed = 5;
  mlr.mlr.failover = true;
  mlr.faults.events.push_back(
      {3, fault::FaultTargetKind::kGateway, 0, false});

  core::ScenarioConfig spr = mlr;
  spr.protocol = core::ProtocolKind::kSpr;
  spr.gatewayCount = 1;
  spr.mlr.failover = false;

  auto mlrScenario = core::buildScenario(mlr);
  const auto mlrResult = core::Experiment(*mlrScenario).run();
  auto sprScenario = core::buildScenario(spr);
  const auto sprResult = core::Experiment(*sprScenario).run();

  // The multi-gateway mesh must strictly beat the single sink once the
  // (only/first) gateway dies, and must re-home within the backoff bound.
  EXPECT_GT(mlrResult.deliveryRatio, sprResult.deliveryRatio);
  EXPECT_GT(mlrResult.deliveryRatio, 0.8);
  EXPECT_EQ(mlrResult.faults.gatewayFailures, 1u);
  EXPECT_EQ(mlrResult.faults.failedGatewaysAtEnd, 1u);
  ASSERT_GE(mlrResult.faults.outageEpisodes, 1u);
  EXPECT_EQ(mlrResult.faults.unrecoveredOutages, 0u);
  // staleAfterRounds=1 detection + one round of re-discovery: recovery must
  // land within two rounds of the crash.
  EXPECT_LE(mlrResult.faults.meanRecoveryLatencyS,
            2.0 * mlr.roundDuration.seconds());
}

TEST(FaultExperiment, BurstLossIsCountedAndHurtsPdr) {
  core::ScenarioConfig base;
  base.protocol = core::ProtocolKind::kMlr;
  base.sensorCount = 60;
  base.gatewayCount = 3;
  base.rounds = 6;
  base.packetsPerSensorPerRound = 2;
  base.seed = 9;

  core::ScenarioConfig lossy = base;
  lossy.mlr.failover = true;
  lossy.faults.linkLoss.enabled = true;  // ~17% steady-state loss
  lossy.faults.linkLoss.pGoodToBad = 0.05;

  auto baseScenario = core::buildScenario(base);
  const auto baseResult = core::Experiment(*baseScenario).run();
  auto lossyScenario = core::buildScenario(lossy);
  const auto lossyResult = core::Experiment(*lossyScenario).run();

  EXPECT_EQ(baseResult.faults.linkFaultDrops, 0u);
  EXPECT_GT(lossyResult.faults.linkFaultDrops, 0u);
  EXPECT_LE(lossyResult.deliveryRatio, baseResult.deliveryRatio);
}

TEST(FaultExperiment, EmptyPlanKeepsFaultMachineryDormant) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 3;
  cfg.rounds = 5;
  cfg.seed = 3;
  cfg.obs.metrics = true;
  cfg.obs.timeseries = true;
  auto scenario = core::buildScenario(cfg);
  const auto result = core::Experiment(*scenario).run();
  EXPECT_EQ(result.faults.sensorCrashes, 0u);
  EXPECT_EQ(result.faults.gatewayFailures, 0u);
  EXPECT_EQ(result.faults.linkFaultDrops, 0u);
  EXPECT_EQ(result.faults.outageEpisodes, 0u);
  ASSERT_TRUE(result.observations);
  // No fault columns in the time series and no wmsn_fault_* metrics unless
  // a plan is active — output stays byte-identical to pre-fault builds.
  EXPECT_FALSE(result.observations->timeseries.faultColumns());
  EXPECT_EQ(result.observations->metrics.json().find("wmsn_fault_"),
            std::string::npos);
}

TEST(FaultExperiment, FaultColumnsAppearWhenPlanActive) {
  auto cfg = faultConfig();
  cfg.obs.timeseries = true;
  auto scenario = core::buildScenario(cfg);
  const auto result = core::Experiment(*scenario).run();
  ASSERT_TRUE(result.observations);
  EXPECT_TRUE(result.observations->timeseries.faultColumns());
  const std::string json = result.observations->metrics.json();
  EXPECT_NE(json.find("wmsn_fault_gateway_failures_total"), std::string::npos);
  EXPECT_NE(json.find("wmsn_fault_recovery_latency_s"), std::string::npos);
}

}  // namespace
}  // namespace wmsn
