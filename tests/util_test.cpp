#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/random.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace wmsn {
namespace {

// --- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniformInt(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniformInt(5, 4), PreconditionError);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(3);
  EXPECT_THROW(rng.index(0), PreconditionError);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(19);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(29);
  Rng child = a.fork();
  // The child's stream should not track the parent's.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

// --- ByteWriter / ByteReader -------------------------------------------------

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  w.str("hello");
  Bytes payload{1, 2, 3};
  w.bytes(payload);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_TRUE(r.empty());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.data()[0], 0x02);
  EXPECT_EQ(w.data()[1], 0x01);
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), PreconditionError);
}

TEST(Bytes, TruncatedLengthPrefixedThrows) {
  Bytes raw{0x10, 0x00, 1, 2};  // claims 16 bytes, has 2
  ByteReader r(raw);
  EXPECT_THROW(r.bytes(), PreconditionError);
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data{0x00, 0x7f, 0xff, 0x10};
  EXPECT_EQ(toHex(data), "007fff10");
  EXPECT_EQ(fromHex("007fff10"), data);
  EXPECT_EQ(fromHex("007FFF10"), data);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(fromHex("abc"), PreconditionError);   // odd length
  EXPECT_THROW(fromHex("zz"), PreconditionError);    // bad digit
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  const Bytes d{1, 2};
  EXPECT_TRUE(constantTimeEqual(a, b));
  EXPECT_FALSE(constantTimeEqual(a, c));
  EXPECT_FALSE(constantTimeEqual(a, d));
}

// --- RunningStats -------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variancePopulation(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variancePopulation(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variancePopulation(), all.variancePopulation(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

// --- SampleStats -----------------------------------------------------------------

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.1);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleStats, SingleSample) {
  SampleStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
}

TEST(SampleStats, EmptyPercentileThrows) {
  SampleStats s;
  EXPECT_THROW(s.percentile(50), PreconditionError);
}

// --- jainFairness -----------------------------------------------------------------

TEST(JainFairness, PerfectBalance) {
  EXPECT_DOUBLE_EQ(jainFairness({3.0, 3.0, 3.0, 3.0}), 1.0);
}

TEST(JainFairness, WorstCase) {
  // All load on one of n: index = 1/n.
  EXPECT_NEAR(jainFairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZero) {
  EXPECT_DOUBLE_EQ(jainFairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jainFairness({0.0, 0.0}), 1.0);
}

// --- TextTable / CsvWriter ------------------------------------------------------------

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), PreconditionError);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(42), "42");
  EXPECT_EQ(TextTable::num(std::uint64_t{7}), "7");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  CsvWriter csv({"a", "b"});
  csv.addRow({"plain", "with,comma"});
  csv.addRow({"with\"quote", "multi\nline"});
  const std::string s = csv.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(CsvWriter, RejectsMismatchedRow) {
  CsvWriter csv({"a"});
  EXPECT_THROW(csv.addRow({"x", "y"}), PreconditionError);
}

}  // namespace
}  // namespace wmsn
