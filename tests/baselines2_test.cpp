// Tests for the second wave of §2.2 related-work baselines: PEGASIS (chain
// gathering) and TEEN (threshold-reactive reporting).

#include <gtest/gtest.h>

#include "core/wmsn.hpp"
#include "routing/pegasis.hpp"
#include "routing/teen.hpp"

namespace wmsn::routing {
namespace {

struct BaselineNet {
  sim::Simulator simulator;
  net::SensorNetwork network;
  NetworkKnowledge knowledge;
  std::unique_ptr<ProtocolStack> stack;

  BaselineNet(std::size_t sensors, const ProtocolStack::Factory& factory)
      : network(simulator, std::make_unique<net::UnitDiskRadio>(25.0),
                params()) {
    for (std::size_t i = 0; i < sensors; ++i)
      network.addSensor({20.0 * static_cast<double>(i), 0.0});
    knowledge.feasiblePlaces = {{-40.0, 0.0}};
    knowledge.gatewayIds.push_back(network.addGateway({-40.0, 0.0}));
    stack = std::make_unique<ProtocolStack>(network, knowledge, factory);
    stack->startAll();
  }

  static net::SensorNetworkParams params() {
    net::SensorNetworkParams p;
    p.mac = net::MacKind::kIdeal;
    p.medium.collisions = false;
    return p;
  }

  void run(double seconds) {
    simulator.runUntil(simulator.now() + sim::Time::seconds(seconds));
  }
};

ProtocolStack::Factory pegasisFactory() {
  return [](net::SensorNetwork& n, net::NodeId id,
            const NetworkKnowledge& k) {
    return std::make_unique<PegasisRouting>(n, id, k);
  };
}

// --- PEGASIS ----------------------------------------------------------------

TEST(Pegasis, ChainLinksNeighbours) {
  BaselineNet net(5, pegasisFactory());
  net.stack->beginRound(0);
  // On a line the greedy chain is the line itself: farthest-from-sink end
  // is node 4 → chain 4,3,2,1,0.
  auto& node2 = dynamic_cast<PegasisRouting&>(net.stack->at(2));
  ASSERT_TRUE(node2.chainPrev().has_value());
  ASSERT_TRUE(node2.chainNext().has_value());
  EXPECT_EQ(*node2.chainPrev(), 3u);
  EXPECT_EQ(*node2.chainNext(), 1u);
}

TEST(Pegasis, LeaderRotatesWithRounds) {
  BaselineNet net(4, pegasisFactory());
  std::set<net::NodeId> leaders;
  for (std::uint32_t r = 0; r < 4; ++r) {
    net.stack->beginRound(r);
    for (net::NodeId s : net.network.sensorIds())
      if (dynamic_cast<PegasisRouting&>(net.stack->at(s)).isLeader())
        leaders.insert(s);
  }
  EXPECT_EQ(leaders.size(), 4u);  // "they take turns"
}

TEST(Pegasis, ReadingsFuseAlongChainToSink) {
  BaselineNet net(5, pegasisFactory());
  net.stack->beginRound(0);
  for (net::NodeId s : net.network.sensorIds())
    net.stack->at(s).originate(Bytes(24, 1));
  net.run(16.0);  // past the gathering sweep
  EXPECT_EQ(net.network.stats().delivered(), 5u);
  // One sweep: 4 chain links + 1 leader uplink — fusion, not per-reading
  // relaying.
  EXPECT_LE(net.network.stats().dataFrames(), 6u);
}

TEST(Pegasis, SurvivesDeadChainMember) {
  BaselineNet net(5, pegasisFactory());
  net.stack->beginRound(0);
  net.network.node(2).kill(net.simulator.now());
  net.stack->beginRound(1);  // chain rebuilds without the dead node
  for (net::NodeId s : {0u, 1u, 3u, 4u})
    net.stack->at(s).originate(Bytes(24, 1));
  net.run(16.0);
  EXPECT_EQ(net.network.stats().delivered(), 4u);
}

TEST(Pegasis, EndToEndOnGeneratedNetwork) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kPegasis;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 1;
  cfg.feasiblePlaceCount = 2;
  cfg.width = 150;
  cfg.height = 150;
  cfg.gatewaysMove = false;
  cfg.rounds = 4;
  cfg.packetsPerSensorPerRound = 2;
  // Sweep late enough to catch the whole traffic window; only the final
  // round's stragglers are unswept.
  cfg.pegasis.sweepStart = sim::Time::seconds(18.6);
  cfg.seed = 6;
  const auto r = core::runScenario(cfg);
  EXPECT_GT(r.deliveryRatio, 0.95);
}

// --- TEEN ---------------------------------------------------------------------

ProtocolStack::Factory teenFactory(TeenParams teen) {
  return [teen](net::SensorNetwork& n, net::NodeId id,
                const NetworkKnowledge& k) {
    return std::make_unique<TeenRouting>(n, id, k, teen);
  };
}

TEST(Teen, SuppressesBelowHardThreshold) {
  TeenParams teen;
  teen.hardThreshold = 1e9;  // nothing ever qualifies
  BaselineNet net(3, teenFactory(teen));
  net.stack->beginRound(0);
  for (int i = 0; i < 20; ++i) net.stack->at(0).originate(Bytes(24, 1));
  net.run(3.0);
  auto& node = dynamic_cast<TeenRouting&>(net.stack->at(0));
  EXPECT_EQ(node.sensingEvents(), 20u);
  EXPECT_EQ(node.reportsSent(), 0u);
  EXPECT_EQ(net.network.stats().generated(), 0u);
}

TEST(Teen, ReportsWhenThresholdsCross) {
  TeenParams teen;
  teen.hardThreshold = 0.0;   // everything above hard…
  teen.softThreshold = 0.0;   // …and every change is reportable
  BaselineNet net(3, teenFactory(teen));
  net.stack->beginRound(0);
  for (int i = 0; i < 5; ++i) net.stack->at(1).originate(Bytes(24, 1));
  net.run(5.0);
  auto& node = dynamic_cast<TeenRouting&>(net.stack->at(1));
  EXPECT_EQ(node.reportsSent(), 5u);
  EXPECT_EQ(net.network.stats().delivered(), 5u);
}

TEST(Teen, SoftThresholdControlsReportRate) {
  // §2.2.2: "the user can control the trade-off between energy efficiency
  // and data accuracy" — a larger soft threshold must suppress more.
  auto reportsWith = [](double soft) {
    TeenParams teen;
    teen.hardThreshold = 0.0;
    teen.softThreshold = soft;
    BaselineNet net(2, teenFactory(teen));
    net.stack->beginRound(0);
    for (int i = 0; i < 200; ++i) net.stack->at(0).originate(Bytes(24, 1));
    net.run(10.0);
    return dynamic_cast<TeenRouting&>(net.stack->at(0)).reportsSent();
  };
  const auto fine = reportsWith(0.5);
  const auto coarse = reportsWith(10.0);
  EXPECT_GT(fine, coarse);
  EXPECT_GT(coarse, 0u);
}

TEST(Teen, ValueStaysBounded) {
  TeenParams teen;
  BaselineNet net(2, teenFactory(teen));
  net.stack->beginRound(0);
  auto& node = dynamic_cast<TeenRouting&>(net.stack->at(0));
  for (int i = 0; i < 500; ++i) {
    net.stack->at(0).originate(Bytes(24, 1));
    EXPECT_GE(node.currentValue(), teen.valueMin);
    EXPECT_LE(node.currentValue(), teen.valueMax);
  }
}

TEST(Teen, EndToEndOnGeneratedNetwork) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kTeen;
  cfg.sensorCount = 50;
  cfg.gatewayCount = 1;
  cfg.feasiblePlaceCount = 2;
  cfg.width = 140;
  cfg.height = 140;
  cfg.gatewaysMove = false;
  cfg.rounds = 4;
  cfg.packetsPerSensorPerRound = 4;  // sensing events, mostly suppressed
  cfg.teen.hardThreshold = 30.0;
  cfg.seed = 7;
  const auto r = core::runScenario(cfg);
  // Reactive contract: whatever was reported got delivered.
  EXPECT_GT(r.deliveryRatio, 0.95);
  EXPECT_LT(r.generated, 50u * 4u * 4u);  // suppression happened
  EXPECT_GT(r.generated, 0u);
}

}  // namespace
}  // namespace wmsn::routing
