// Tests for wmsn::obs — the metrics registry, per-round time series,
// pluggable trace sinks, the observer mux, and the phase profiler — plus
// their wiring through ScenarioConfig::obs and the Experiment.

#include <gtest/gtest.h>

#include <thread>

#include "core/wmsn.hpp"
#include "net/sensor_network.hpp"
#include "obs/perf_stats.hpp"
#include "util/require.hpp"

namespace wmsn {
namespace {

// --- MetricsRegistry ----------------------------------------------------------

TEST(Metrics, LabelKeyIsOrderInsensitive) {
  EXPECT_EQ(obs::labelKey({{"b", "2"}, {"a", "1"}}),
            obs::labelKey({{"a", "1"}, {"b", "2"}}));
  EXPECT_EQ(obs::labelKey({{"a", "1"}, {"b", "2"}}), "a=1,b=2");
  EXPECT_EQ(obs::labelKey({}), "");
}

TEST(Metrics, SameNameDifferentLabelsAreDistinct) {
  obs::MetricsRegistry registry;
  registry.counter("frames", {{"node", "1"}}).add(3);
  registry.counter("frames", {{"node", "2"}}).add(5);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.findCounter("frames", {{"node", "1"}})->value(), 3u);
  EXPECT_EQ(registry.findCounter("frames", {{"node", "2"}})->value(), 5u);
  // Label order does not create a new metric.
  registry.counter("pair", {{"a", "1"}, {"b", "2"}}).add(1);
  registry.counter("pair", {{"b", "2"}, {"a", "1"}}).add(1);
  EXPECT_EQ(registry.findCounter("pair", {{"a", "1"}, {"b", "2"}})->value(),
            2u);
}

TEST(Metrics, FindReturnsNullForAbsentOrWrongKind) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(1);
  registry.gauge("g").set(2.0);
  EXPECT_EQ(registry.findCounter("absent"), nullptr);
  EXPECT_EQ(registry.findCounter("g"), nullptr);   // wrong kind
  EXPECT_EQ(registry.findGauge("c"), nullptr);     // wrong kind
  EXPECT_NE(registry.findGauge("g"), nullptr);
}

TEST(Metrics, MergeAddsCountersAndHistogramsGaugesLatestWin) {
  obs::MetricsRegistry a;
  a.counter("events").add(10);
  a.gauge("pdr").set(0.5);
  a.histogram("hops", {1, 2, 4}).observe(3.0);

  obs::MetricsRegistry b;
  b.counter("events").add(7);
  b.counter("only_in_b").add(1);
  b.gauge("pdr").set(0.75);
  b.histogram("hops", {1, 2, 4}).observe(1.0);

  a.merge(b);
  EXPECT_EQ(a.findCounter("events")->value(), 17u);
  EXPECT_EQ(a.findCounter("only_in_b")->value(), 1u);
  EXPECT_DOUBLE_EQ(a.findGauge("pdr")->value(), 0.75);
  const obs::Histogram* h = a.findHistogram("hops");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->counts()[0], 1u);  // the 1.0 from b
  EXPECT_EQ(h->counts()[2], 1u);  // the 3.0 from a
}

TEST(Metrics, MergeRejectsMismatchedHistogramEdges) {
  obs::MetricsRegistry a;
  a.histogram("h", {1, 2}).observe(1.0);
  obs::MetricsRegistry b;
  b.histogram("h", {1, 2, 3}).observe(1.0);
  EXPECT_THROW(a.merge(b), PreconditionError);
}

TEST(Metrics, JsonIsWellFormedAndDeterministic) {
  obs::MetricsRegistry registry;
  registry.counter("zz_last").add(1);
  registry.counter("aa_first", {{"kind", "DA\"TA"}}).add(2);
  registry.gauge("gauge").set(0.125);
  registry.histogram("hist", {1, 10}).observe(5);
  const std::string json = registry.json();
  // Sorted by name: aa_first before zz_last.
  EXPECT_LT(json.find("aa_first"), json.find("zz_last"));
  // Label values are escaped.
  EXPECT_NE(json.find("DA\\\"TA"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
  EXPECT_EQ(json, obs::MetricsRegistry(registry).json());
}

// --- Histogram bucket edges ----------------------------------------------------

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <=1
  h.observe(1.0);   // <=1 (inclusive edge)
  h.observe(1.001); // <=2
  h.observe(4.0);   // <=4 (inclusive edge)
  h.observe(4.5);   // overflow
  h.observe(100);   // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 4.0 + 4.5 + 100);
}

TEST(Histogram, RejectsNonIncreasingEdges) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), PreconditionError);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), PreconditionError);
  EXPECT_THROW(obs::Histogram({}), PreconditionError);
}

// --- trace sinks ---------------------------------------------------------------

obs::TraceEvent sampleEvent() {
  obs::TraceEvent e;
  e.timeSeconds = 1.5;
  e.transmit = true;
  e.kind = "DATA";
  e.node = 7;
  e.broadcast = false;
  e.hopDst = 9;
  e.origin = 7;
  e.uid = 42;
  e.bytes = 24;
  return e;
}

TEST(TraceSinks, FormatRoundTrip) {
  EXPECT_EQ(obs::parseTraceFormat("csv"), obs::TraceFormat::kCsv);
  EXPECT_EQ(obs::parseTraceFormat("jsonl"), obs::TraceFormat::kJsonl);
  EXPECT_EQ(obs::parseTraceFormat("null"), obs::TraceFormat::kNull);
  EXPECT_THROW(obs::parseTraceFormat("xml"), PreconditionError);
  for (auto f : {obs::TraceFormat::kCsv, obs::TraceFormat::kJsonl,
                 obs::TraceFormat::kNull})
    EXPECT_EQ(obs::parseTraceFormat(obs::toString(f)), f);
}

TEST(TraceSinks, JsonlEscaping) {
  EXPECT_EQ(obs::JsonlTraceSink::escape("plain"), "plain");
  EXPECT_EQ(obs::JsonlTraceSink::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonlTraceSink::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonlTraceSink::escape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::JsonlTraceSink::escape(std::string("a\x01") + "b"),
            "a\\u0001b");
}

TEST(TraceSinks, JsonlRowShape) {
  obs::JsonlTraceSink sink;
  sink.onEvent(sampleEvent());
  EXPECT_EQ(sink.events(), 1u);
  const std::string row = sink.str();
  EXPECT_NE(row.find("\"event\":\"tx\""), std::string::npos);
  EXPECT_NE(row.find("\"kind\":\"DATA\""), std::string::npos);
  EXPECT_NE(row.find("\"uid\":42"), std::string::npos);
  EXPECT_EQ(row.back(), '\n');
}

TEST(TraceSinks, CountingSinkCountsWithoutBuffering) {
  obs::CountingTraceSink sink;
  for (int i = 0; i < 1000; ++i) sink.onEvent(sampleEvent());
  EXPECT_EQ(sink.events(), 1000u);
  EXPECT_EQ(sink.str(), "");
}

// --- profiler ------------------------------------------------------------------

TEST(Profiler, NestedScopesSplitSelfAndInclusive) {
  obs::Profiler profiler;
  {
    obs::Profiler::Activation activation(&profiler);
    ASSERT_EQ(obs::Profiler::current(), &profiler);
    {
      WMSN_PROFILE_PHASE(kEventDispatch);
      EXPECT_EQ(profiler.depth(), 1u);
      {
        WMSN_PROFILE_PHASE(kCrypto);
        EXPECT_EQ(profiler.depth(), 2u);
        // Busy-wait so the inner phase accumulates measurable time.
        const auto start = std::chrono::steady_clock::now();
        while (std::chrono::steady_clock::now() - start <
               std::chrono::milliseconds(2)) {
        }
      }
    }
  }
  EXPECT_EQ(obs::Profiler::current(), nullptr);  // Activation restored
  EXPECT_TRUE(profiler.any());
  EXPECT_EQ(profiler.depth(), 0u);

  const obs::PhaseTotals& dispatch =
      profiler.totals(obs::Phase::kEventDispatch);
  const obs::PhaseTotals& crypto = profiler.totals(obs::Phase::kCrypto);
  EXPECT_EQ(dispatch.calls, 1u);
  EXPECT_EQ(crypto.calls, 1u);
  // The nested crypto time is inside dispatch's inclusive time but outside
  // its self time.
  EXPECT_GE(dispatch.inclusiveSeconds, crypto.inclusiveSeconds);
  EXPECT_LE(dispatch.selfSeconds,
            dispatch.inclusiveSeconds - crypto.inclusiveSeconds + 1e-6);
  EXPECT_GT(crypto.selfSeconds, 0.0);
}

TEST(Profiler, ScopesAreNoOpsWithoutActivation) {
  ASSERT_EQ(obs::Profiler::current(), nullptr);
  WMSN_PROFILE_PHASE(kCrypto);  // must not crash or record anywhere
  SUCCEED();
}

TEST(Profiler, ActivationRestoresPreviousProfiler) {
  obs::Profiler outer, inner;
  obs::Profiler::Activation a(&outer);
  {
    obs::Profiler::Activation b(&inner);
    EXPECT_EQ(obs::Profiler::current(), &inner);
  }
  EXPECT_EQ(obs::Profiler::current(), &outer);
}

TEST(Profiler, MergeSumsTotals) {
  auto work = [](obs::Profiler& p) {
    obs::Profiler::Activation activation(&p);
    WMSN_PROFILE_PHASE(kMacContention);
  };
  obs::Profiler a, b;
  work(a);
  work(b);
  a.merge(b);
  EXPECT_EQ(a.totals(obs::Phase::kMacContention).calls, 2u);
}

TEST(Profiler, EmptyProfilerHasNoRowsAndMergesAsIdentity) {
  const obs::Profiler empty;
  EXPECT_FALSE(empty.any());
  // The table of an untouched profiler carries the header and nothing else:
  // zero-call phases are skipped, so no row invents a phase that never ran.
  const std::string table = empty.table().str();
  for (const obs::Phase phase :
       {obs::Phase::kEventDispatch, obs::Phase::kMacContention,
        obs::Phase::kCrypto, obs::Phase::kRouteMaintenance})
    EXPECT_EQ(table.find(obs::toString(phase)), std::string::npos) << table;

  obs::Profiler touched;
  {
    obs::Profiler::Activation activation(&touched);
    WMSN_PROFILE_PHASE(kCrypto);
  }
  const double before = touched.totals(obs::Phase::kCrypto).inclusiveSeconds;
  touched.merge(empty);  // merging an empty profiler changes nothing
  EXPECT_EQ(touched.totals(obs::Phase::kCrypto).calls, 1u);
  // wmsn-lint: allow(float-equality)
  EXPECT_EQ(touched.totals(obs::Phase::kCrypto).inclusiveSeconds, before);
  EXPECT_FALSE(empty.any());  // and leaves the source untouched

  obs::Profiler sink;
  sink.merge(empty);  // empty into empty stays empty
  EXPECT_FALSE(sink.any());
}

TEST(Profiler, RepeatMergeAccumulatesLikeSeedOrderMerge) {
  // The --repeat path merges one per-seed profiler after another into the
  // first; merging the same source repeatedly must keep summing, exactly as
  // distinct seeds with identical phase mixes would.
  auto work = [](obs::Profiler& p, int times) {
    obs::Profiler::Activation activation(&p);
    for (int i = 0; i < times; ++i) {
      WMSN_PROFILE_PHASE(kRouteMaintenance);
    }
  };
  obs::Profiler merged, seedA, seedB;
  work(merged, 1);
  work(seedA, 2);
  work(seedB, 3);
  merged.merge(seedA);
  merged.merge(seedB);
  merged.merge(seedB);
  EXPECT_EQ(merged.totals(obs::Phase::kRouteMaintenance).calls, 9u);
  EXPECT_GE(merged.totals(obs::Phase::kRouteMaintenance).inclusiveSeconds,
            seedB.totals(obs::Phase::kRouteMaintenance).inclusiveSeconds);
}

TEST(Profiler, TableRowsAreSortedByPhaseName) {
  obs::Profiler profiler;
  {
    obs::Profiler::Activation activation(&profiler);
    // Touch phases in reverse-alphabetical order; the table must not care.
    {
      WMSN_PROFILE_PHASE(kRouteMaintenance);
    }
    {
      WMSN_PROFILE_PHASE(kMacContention);
    }
    {
      WMSN_PROFILE_PHASE(kCrypto);
    }
  }
  const std::string table = profiler.table().str();
  const std::size_t crypto = table.find("crypto");
  const std::size_t mac = table.find("mac-contention");
  const std::size_t route = table.find("route-maintenance");
  ASSERT_NE(crypto, std::string::npos);
  ASSERT_NE(mac, std::string::npos);
  ASSERT_NE(route, std::string::npos);
  EXPECT_LT(crypto, mac);
  EXPECT_LT(mac, route);
  EXPECT_EQ(table.find("event-dispatch"), std::string::npos);  // never ran
}

// --- observer mux --------------------------------------------------------------

TEST(ObserverMux, DoubleAttachOfSameNameFails) {
  obs::ObserverMux<int> mux;
  mux.attach("a", [](int) {});
  EXPECT_THROW(mux.attach("a", [](int) {}), PreconditionError);
  EXPECT_THROW(mux.attach("b", nullptr), PreconditionError);
  EXPECT_TRUE(mux.detach("a"));
  EXPECT_FALSE(mux.detach("a"));  // already gone
  mux.attach("a", [](int) {});    // reattach after detach is fine
}

TEST(ObserverMux, NotifiesAllInAttachOrder) {
  obs::ObserverMux<int> mux;
  std::vector<std::string> order;
  mux.attach("first", [&](int v) { order.push_back("first:" + std::to_string(v)); });
  mux.attach("second", [&](int v) { order.push_back("second:" + std::to_string(v)); });
  mux.notify(7);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "first:7");
  EXPECT_EQ(order[1], "second:7");
}

TEST(ObserverMux, MultipleFrameConsumersCoexist) {
  core::ScenarioConfig cfg;
  cfg.sensorCount = 25;
  cfg.gatewayCount = 1;
  cfg.feasiblePlaceCount = 2;
  cfg.width = 110;
  cfg.height = 110;
  cfg.rounds = 1;
  cfg.seed = 6;
  auto scenario = core::buildScenario(cfg);

  core::TraceLogger trace;  // consumer 1: the CSV trace
  trace.attach(*scenario);
  std::uint64_t counted = 0;  // consumer 2: an ad-hoc counter
  scenario->network->attachFrameObserver(
      "test-counter",
      [&counted](const net::Packet&, net::NodeId, bool) { ++counted; });

  core::Experiment experiment(*scenario);
  experiment.run();
  EXPECT_GT(counted, 0u);
  EXPECT_EQ(counted, trace.rows());  // both saw every frame event

  // The single-slot footgun is gone, but the same consumer attaching twice
  // is still an error.
  EXPECT_THROW(trace.attach(*scenario), PreconditionError);
}

// --- TrafficStats queue accounting ---------------------------------------------

TEST(QueueStats, PerNodeDropsSumToNetworkTotal) {
  core::ScenarioConfig cfg;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 1;
  cfg.feasiblePlaceCount = 2;
  cfg.width = 120;
  cfg.height = 120;
  cfg.rounds = 3;
  cfg.workload.kind = workload::WorkloadKind::kPoisson;
  cfg.workload.ratePerSensor = 3.0;  // deep saturation
  cfg.macQueue.capacity = 2;
  cfg.seed = 9;
  auto scenario = core::buildScenario(cfg);
  core::Experiment experiment(*scenario);
  experiment.run();

  const net::TrafficStats& stats = scenario->network->stats();
  ASSERT_GT(stats.queueDrops(), 0u);
  std::uint64_t perNodeSum = 0;
  for (const auto& [node, drops] : stats.queueDropsByNode()) perNodeSum += drops;
  EXPECT_EQ(perNodeSum, stats.queueDrops());
  EXPECT_FALSE(stats.peakQueueDepthByNode().empty());
}

// --- experiment wiring ---------------------------------------------------------

core::ScenarioConfig obsConfig(std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.sensorCount = 40;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = 140;
  cfg.height = 140;
  cfg.rounds = 3;
  cfg.seed = seed;
  cfg.obs.metrics = true;
  cfg.obs.timeseries = true;
  return cfg;
}

TEST(Observability, OffByDefaultAndCheapToCarry) {
  core::ScenarioConfig cfg = obsConfig(3);
  cfg.obs = {};  // defaults
  EXPECT_FALSE(cfg.obs.any());
  const auto result = core::runScenario(cfg);
  EXPECT_EQ(result.observations, nullptr);
}

TEST(Observability, TimeSeriesHasOneRowPerRoundWithD2) {
  const auto result = core::runScenario(obsConfig(3));
  ASSERT_NE(result.observations, nullptr);
  const obs::TimeSeriesRecorder& series = result.observations->timeseries;
  EXPECT_EQ(series.rounds(), result.roundsCompleted);
  double prevD2 = -1.0;
  std::uint64_t delivered = 0;
  for (const obs::RoundSample& s : series.samples()) {
    EXPECT_GE(s.energyVarianceD2, 0.0);
    EXPECT_GE(s.energyMaxJ, s.energyMinJ);
    EXPECT_GE(s.pdrRound, 0.0);
    EXPECT_LE(s.pdrRound, 1.0);
    prevD2 = s.energyVarianceD2;
    delivered += s.delivered;
  }
  (void)prevD2;
  EXPECT_EQ(delivered, result.delivered);  // round deltas sum to the total
  const std::string csv = series.csv("seed 3").str();
  EXPECT_NE(csv.find("energy_d2"), std::string::npos);
  EXPECT_NE(csv.find("qdepth_le_"), std::string::npos);
  EXPECT_NE(csv.find("gw1_deliveries"), std::string::npos);
  EXPECT_NE(csv.find("seed 3"), std::string::npos);
}

TEST(Observability, RegistryCoversAllFourSources) {
  const auto result = core::runScenario(obsConfig(3));
  ASSERT_NE(result.observations, nullptr);
  const obs::MetricsRegistry& m = result.observations->metrics;
  const obs::Labels proto = {{"protocol", result.protocol}};
  // TrafficStats.
  ASSERT_NE(m.findCounter("wmsn_readings_delivered_total", proto), nullptr);
  EXPECT_EQ(m.findCounter("wmsn_readings_delivered_total", proto)->value(),
            result.delivered);
  // MAC queues.
  EXPECT_NE(m.findHistogram("wmsn_node_peak_queue_depth", proto), nullptr);
  // Energy model.
  ASSERT_NE(m.findGauge("wmsn_sensor_energy_variance_d2", proto), nullptr);
  EXPECT_DOUBLE_EQ(
      m.findGauge("wmsn_sensor_energy_variance_d2", proto)->value(),
      result.sensorEnergy.varianceD2);
  // Per-gateway load.
  EXPECT_NE(m.findCounter("wmsn_gateway_deliveries_total",
                          {{"protocol", result.protocol}, {"gateway", "0"}}),
            nullptr);
  // Routing (SecMLR counters appear for secmlr runs).
  auto secCfg = obsConfig(3);
  secCfg.protocol = core::ProtocolKind::kSecMlr;
  const auto secResult = core::runScenario(secCfg);
  EXPECT_NE(secResult.observations->metrics.findCounter(
                "wmsn_secmlr_rejected_macs_total",
                {{"protocol", secResult.protocol}}),
            nullptr);
}

TEST(Observability, ProfilerRecordsPhasesWhenEnabled) {
  auto cfg = obsConfig(4);
  cfg.obs.profile = true;
  const auto result = core::runScenario(cfg);
  ASSERT_NE(result.observations, nullptr);
  EXPECT_TRUE(result.observations->profiled);
  EXPECT_TRUE(result.observations->profiler.any());
  EXPECT_GT(
      result.observations->profiler.totals(obs::Phase::kEventDispatch).calls,
      0u);
  EXPECT_GT(
      result.observations->profiler.totals(obs::Phase::kMacContention).calls,
      0u);
}

TEST(Observability, MetricsIdenticalAcrossThreadCounts) {
  auto sweep = [](unsigned threads) {
    std::vector<core::ScenarioConfig> configs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
      configs.push_back(obsConfig(seed));
    const auto results = core::runScenariosParallel(configs, threads);
    obs::MetricsRegistry merged;
    std::string timeseries;
    for (std::size_t i = 0; i < results.size(); ++i) {
      merged.merge(results[i].observations->metrics);
      timeseries += results[i]
                        .observations->timeseries
                        .csv("seed " + std::to_string(i + 1))
                        .str();
    }
    return merged.json() + "\n---\n" + timeseries;
  };
  const std::string serial = sweep(1);
  const std::string parallel = sweep(4);
  EXPECT_EQ(serial, parallel);  // byte-identical, any --threads
}

// --- perf counters --------------------------------------------------------------

TEST(PerfStats, MacroIsNoOpWithoutLedgerAndCountsWithOne) {
  ASSERT_EQ(obs::PerfStats::current(), nullptr);
  WMSN_PERF(kRngDraws);  // no active ledger: must not crash or record
  obs::PerfStats stats;
  {
    obs::PerfStats::Activation counting(&stats);
    ASSERT_EQ(obs::PerfStats::current(), &stats);
    WMSN_PERF(kRngDraws);
    WMSN_PERF(kPairsExamined, 40);
    WMSN_PERF(kPairsExamined, 2);
  }
  EXPECT_EQ(obs::PerfStats::current(), nullptr);  // Activation restored
  EXPECT_TRUE(stats.any());
  EXPECT_EQ(stats.value(obs::PerfCounter::kRngDraws), 1u);
  EXPECT_EQ(stats.value(obs::PerfCounter::kPairsExamined), 42u);
  EXPECT_EQ(stats.value(obs::PerfCounter::kFramesOffered), 0u);
}

TEST(PerfStats, ActivationNestsAndRestoresPreviousLedger) {
  obs::PerfStats outer, inner;
  obs::PerfStats::Activation a(&outer);
  {
    obs::PerfStats::Activation b(&inner);
    WMSN_PERF(kNodeSteps, 5);
  }
  WMSN_PERF(kNodeSteps, 2);
  EXPECT_EQ(inner.value(obs::PerfCounter::kNodeSteps), 5u);
  EXPECT_EQ(outer.value(obs::PerfCounter::kNodeSteps), 2u);
}

TEST(PerfStats, MergeSumsAndJsonIsSortedByMetricName) {
  obs::PerfStats a, b;
  a.add(obs::PerfCounter::kFramesOffered, 3);
  b.add(obs::PerfCounter::kFramesOffered, 4);
  b.add(obs::PerfCounter::kMacBackoffs);
  a.merge(b);
  EXPECT_EQ(a.value(obs::PerfCounter::kFramesOffered), 7u);
  EXPECT_EQ(a.value(obs::PerfCounter::kMacBackoffs), 1u);
  const std::string json = a.json();
  // Keys appear in metric-name order regardless of enumerator order, so the
  // document is byte-stable across refactors of the counter list.
  EXPECT_LT(json.find("\"frames_offered\""), json.find("\"mac_backoffs\""));
  EXPECT_NE(json.find("\"frames_offered\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rng_draws\": 0"), std::string::npos) << json;
}

TEST(PerfStats, ThreeNodeLineTopologyCountsExactly) {
  // A(0,0) — B(20,0) — C(40,0) with range 30: A hears B, B hears both, C
  // hears B only. Ideal MAC (no jitter draw) and collisions off make every
  // counter exactly predictable.
  sim::Simulator simulator;
  net::SensorNetworkParams params;
  params.mac = net::MacKind::kIdeal;
  params.medium.collisions = false;
  net::SensorNetwork network(
      simulator, std::make_unique<net::UnitDiskRadio>(30.0), params);
  const net::NodeId a = network.addSensor({0, 0});
  const net::NodeId b = network.addSensor({20, 0});
  network.addSensor({40, 0});  // C: out of A's range

  obs::PerfStats stats;
  {
    obs::PerfStats::Activation counting(&stats);

    // Broadcast from A: one transmission scanning all 3 nodes, one in-range
    // receiver (B) costing one channel draw and one delivery.
    net::Packet hello;
    hello.kind = net::PacketKind::kHello;
    hello.hopDst = net::kBroadcastId;
    network.sendFrom(a, hello);
    simulator.run();
    EXPECT_EQ(stats.value(obs::PerfCounter::kFramesOffered), 1u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kFramesTransmitted), 1u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kFramesReceived), 1u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kPairsExamined), 3u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kRngDraws), 1u);

    // Unicast data A→B: delivered on the first attempt, so the default ARQ
    // budget is never spent — same per-transmission costs as the broadcast.
    net::Packet data;
    data.kind = net::PacketKind::kData;
    data.hopDst = b;
    network.sendFrom(a, data);
    simulator.run();
    EXPECT_EQ(stats.value(obs::PerfCounter::kFramesOffered), 2u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kFramesTransmitted), 2u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kFramesReceived), 2u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kPairsExamined), 6u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kRngDraws), 2u);

    // One neighbor scan examines all 3 nodes.
    EXPECT_EQ(network.neighborsOf(a).size(), 1u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kNeighborScans), 1u);
    EXPECT_EQ(stats.value(obs::PerfCounter::kPairsExamined), 9u);
  }

  // Nothing else ran: no MAC contention, no protocol rounds, no route
  // writes, no attached observers.
  EXPECT_EQ(stats.value(obs::PerfCounter::kMacBackoffs), 0u);
  EXPECT_EQ(stats.value(obs::PerfCounter::kNodeSteps), 0u);
  EXPECT_EQ(stats.value(obs::PerfCounter::kRouteMutations), 0u);
  EXPECT_EQ(stats.value(obs::PerfCounter::kObserverDispatches), 0u);
}

TEST(PerfStats, CountersAreMonotonePerRoundDuringARun) {
  core::ScenarioConfig cfg = obsConfig(6);
  cfg.obs.perf = true;
  const auto scenario = core::buildScenario(cfg);
  core::Experiment experiment(*scenario);

  std::vector<std::uint64_t> workPerRound;
  experiment.addRoundObserver("perf-monotone-probe", [&](std::uint32_t) {
    const obs::PerfStats* live = obs::PerfStats::current();
    ASSERT_NE(live, nullptr);  // the run's ledger is active on this thread
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < obs::kPerfCounterCount; ++i)
      total += live->value(static_cast<obs::PerfCounter>(i));
    workPerRound.push_back(total);
  });
  const auto result = experiment.run();

  ASSERT_EQ(workPerRound.size(), result.roundsCompleted);
  ASSERT_FALSE(workPerRound.empty());
  EXPECT_GT(workPerRound.front(), 0u);  // round 0 already did work
  for (std::size_t i = 1; i < workPerRound.size(); ++i)
    EXPECT_GE(workPerRound[i], workPerRound[i - 1]) << "round " << i;
  ASSERT_NE(result.observations, nullptr);
  EXPECT_TRUE(result.observations->perfCounted);
  // The final ledger includes everything the last observed round saw.
  std::uint64_t finalTotal = 0;
  for (std::size_t i = 0; i < obs::kPerfCounterCount; ++i)
    finalTotal += result.observations->perf.value(
        static_cast<obs::PerfCounter>(i));
  EXPECT_GE(finalTotal, workPerRound.back());
}

TEST(PerfStats, CountersIdenticalAcrossThreadCounts) {
  // The deterministic half of the ledger is part of the byte-identical
  // contract: any --threads, same counters, run by run and merged.
  auto sweep = [](unsigned threads) {
    std::vector<core::ScenarioConfig> configs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      configs.push_back(obsConfig(seed));
      configs.back().obs.perf = true;
    }
    const auto results = core::runScenariosParallel(configs, threads);
    obs::PerfStats merged;
    std::string perRun;
    for (const auto& r : results) {
      EXPECT_TRUE(r.observations->perfCounted);
      EXPECT_TRUE(r.observations->telemetry.captured);
      merged.merge(r.observations->perf);
      perRun += r.observations->perf.json() + "\n";
    }
    return merged.json() + "\n---\n" + perRun;
  };
  const std::string serial = sweep(1);
  const std::string parallel = sweep(4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace wmsn
