#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/wmsn.hpp"
#include "net/radio.hpp"
#include "net/sensor_network.hpp"
#include "workload/workload.hpp"

namespace wmsn {
namespace {

std::vector<workload::SensorInfo> lineOfSensors(std::size_t count,
                                                double spacing) {
  std::vector<workload::SensorInfo> sensors;
  for (std::size_t i = 0; i < count; ++i)
    sensors.push_back({static_cast<net::NodeId>(i),
                       {spacing * static_cast<double>(i), 100.0}});
  return sensors;
}

// --- generators ---------------------------------------------------------------

TEST(PeriodicGenerator, ExactCadencePerSensor) {
  workload::PeriodicGenerator gen(0.5, 42);  // one packet every 2 s
  const auto sensors = lineOfSensors(4, 10.0);
  const auto arrivals = gen.arrivalsInWindow(
      0, sim::Time::seconds(0.0), sim::Time::seconds(20.0), sensors);
  // Each sensor fires exactly window * rate = 10 times.
  for (const auto& s : sensors) {
    std::vector<sim::Time> times;
    for (const auto& a : arrivals)
      if (a.sensor == s.id) times.push_back(a.at);
    ASSERT_EQ(times.size(), 10u) << "sensor " << s.id;
    for (std::size_t k = 1; k < times.size(); ++k)
      EXPECT_EQ((times[k] - times[k - 1]).us, sim::Time::seconds(2.0).us);
  }
}

TEST(PeriodicGenerator, PhasesDifferAcrossSensors) {
  workload::PeriodicGenerator gen(0.1, 7);
  const auto arrivals = gen.arrivalsInWindow(
      0, sim::Time::zero(), sim::Time::seconds(10.0), lineOfSensors(8, 5.0));
  std::set<std::int64_t> firstTimes;
  for (const auto& a : arrivals) firstTimes.insert(a.at.us);
  EXPECT_GT(firstTimes.size(), 4u) << "sensors should not fire in lockstep";
}

TEST(PeriodicGenerator, WindowsTileWithoutGapsOrOverlap) {
  // Consecutive windows must partition the timeline: regenerating with the
  // same seed over [0,7) and [7,20) equals one pass over [0,20).
  const auto sensors = lineOfSensors(5, 20.0);
  workload::PeriodicGenerator whole(0.3, 99);
  workload::PeriodicGenerator split(0.3, 99);
  auto all = whole.arrivalsInWindow(0, sim::Time::zero(),
                                    sim::Time::seconds(20.0), sensors);
  auto a = split.arrivalsInWindow(0, sim::Time::zero(),
                                  sim::Time::seconds(7.0), sensors);
  const auto b = split.arrivalsInWindow(1, sim::Time::seconds(7.0),
                                        sim::Time::seconds(20.0), sensors);
  a.insert(a.end(), b.begin(), b.end());
  auto key = [](const workload::Arrival& x) {
    return std::pair<std::int64_t, net::NodeId>{x.at.us, x.sensor};
  };
  auto sortByKey = [&](std::vector<workload::Arrival>& v) {
    std::sort(v.begin(), v.end(),
              [&](const auto& l, const auto& r) { return key(l) < key(r); });
  };
  sortByKey(all);
  sortByKey(a);
  EXPECT_EQ(all, a);
}

TEST(PoissonGenerator, MeanRateWithinTolerance) {
  const double rate = 0.8;
  workload::PoissonGenerator gen(rate, 11);
  const auto sensors = lineOfSensors(50, 4.0);
  const double window = 200.0;
  const auto arrivals = gen.arrivalsInWindow(
      0, sim::Time::zero(), sim::Time::seconds(window), sensors);
  const double expected = rate * window * static_cast<double>(sensors.size());
  const double got = static_cast<double>(arrivals.size());
  // 8000 expected arrivals; allow ±4 standard deviations (~±360).
  EXPECT_NEAR(got, expected, 4.0 * std::sqrt(expected));
}

TEST(PoissonGenerator, DeterministicUnderSeedAndDiffersAcrossSeeds) {
  const auto sensors = lineOfSensors(10, 8.0);
  auto run = [&](std::uint64_t seed) {
    workload::PoissonGenerator gen(0.5, seed);
    return gen.arrivalsInWindow(0, sim::Time::zero(),
                                sim::Time::seconds(30.0), sensors);
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(BurstGenerator, DeterministicUnderSeed) {
  workload::BurstParams params;
  params.backgroundRate = 0.1;
  auto run = [&](std::uint64_t seed) {
    workload::BurstGenerator gen(params, 200.0, 200.0, seed);
    std::vector<workload::Arrival> all;
    for (std::uint32_t round = 0; round < 3; ++round) {
      const auto w = gen.arrivalsInWindow(
          round, sim::Time::seconds(20.0 * round),
          sim::Time::seconds(20.0 * (round + 1)), lineOfSensors(20, 10.0));
      all.insert(all.end(), w.begin(), w.end());
    }
    return all;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

TEST(BurstGenerator, SweptSensorsReportFasterThanBackground) {
  workload::BurstParams params;
  params.frontSpeed = 10.0;
  params.radius = 30.0;
  params.reportInterval = 0.25;
  params.backgroundRate = 0.01;
  workload::BurstGenerator gen(params, 200.0, 200.0, 1);
  // A long window so the front crosses the whole field.
  std::size_t sweptRounds = 0;
  for (std::uint32_t round = 0; round < 5; ++round) {
    const auto arrivals = gen.arrivalsInWindow(
        round, sim::Time::seconds(30.0 * round),
        sim::Time::seconds(30.0 * (round + 1)), lineOfSensors(20, 10.0));
    // Background alone over 30 s * 20 sensors at 0.01 pps ≈ 6 arrivals; a
    // front crossing the sensor line adds a dense wave on top.
    if (arrivals.size() > 30) ++sweptRounds;
  }
  EXPECT_GE(sweptRounds, 1u)
      << "in 5 rounds the front should sweep the sensor line at least once";
}

// --- finite MAC queues --------------------------------------------------------

/// Two-node network: one sensor a few metres from one gateway, CSMA MAC with
/// a tiny finite queue. A burst of back-to-back sends from the sensor must
/// overflow it.
struct QueueFixture {
  sim::Simulator simulator;
  std::unique_ptr<net::SensorNetwork> network;
  net::NodeId sensor = 0;
  net::NodeId gateway = 0;

  explicit QueueFixture(net::QueueParams queue) {
    net::SensorNetworkParams params;
    params.queue = queue;
    params.medium.collisions = false;  // single sender; keep it clean
    network = std::make_unique<net::SensorNetwork>(
        simulator, std::make_unique<net::UnitDiskRadio>(30.0), params);
    sensor = network->addSensor({0.0, 0.0});
    gateway = network->addGateway({10.0, 0.0});
  }

  /// Fires `count` payload-stamped frames in one instant, runs to quiescence
  /// and returns the payload stamps that reached the gateway.
  std::set<std::uint8_t> blast(std::size_t count) {
    std::set<std::uint8_t> received;
    network->node(gateway).setReceiveHandler(
        [&](const net::Packet& p, net::NodeId) {
          if (!p.payload.empty()) received.insert(p.payload[0]);
        });
    simulator.schedule(sim::Time::zero(), [&, count] {
      for (std::size_t k = 0; k < count; ++k) {
        net::Packet p;
        p.kind = net::PacketKind::kData;
        p.origin = sensor;
        p.finalDst = gateway;
        p.hopDst = gateway;
        p.payload = Bytes(8, static_cast<std::uint8_t>(k));
        network->sendFrom(sensor, std::move(p));
      }
    });
    simulator.run();
    return received;
  }
};

TEST(MacQueue, DropTailKeepsEarliestFrames) {
  QueueFixture fx({.capacity = 3, .policy = net::QueuePolicy::kDropTail});
  const auto received = fx.blast(10);
  // One frame in service + 3 queued survive; the other 6 are rejected.
  EXPECT_EQ(received, (std::set<std::uint8_t>{0, 1, 2, 3}));
  EXPECT_EQ(fx.network->stats().queueDrops(), 6u);
  EXPECT_EQ(fx.network->node(fx.sensor).mac().queueDrops(), 6u);
  EXPECT_EQ(fx.network->node(fx.sensor).mac().peakQueueDepth(), 3u);
}

TEST(MacQueue, DropOldestKeepsFreshestFrames) {
  QueueFixture fx({.capacity = 3, .policy = net::QueuePolicy::kDropOldest});
  const auto received = fx.blast(10);
  // Frame 0 is already in service; the queue ends holding the 3 newest.
  EXPECT_EQ(received, (std::set<std::uint8_t>{0, 7, 8, 9}));
  EXPECT_EQ(fx.network->stats().queueDrops(), 6u);
}

TEST(MacQueue, NoDropsBelowCapacity) {
  QueueFixture fx({.capacity = 8, .policy = net::QueuePolicy::kDropTail});
  const auto received = fx.blast(5);
  EXPECT_EQ(received.size(), 5u);
  EXPECT_EQ(fx.network->stats().queueDrops(), 0u);
  EXPECT_GT(fx.network->node(fx.sensor)
                .mac()
                .queueDepthIntegral(fx.simulator.now()),
            0.0);
}

TEST(MacQueue, LegacyZeroCapacityNeverDropsForSpace) {
  QueueFixture fx({.capacity = 0});
  const auto received = fx.blast(10);
  EXPECT_EQ(received.size(), 10u);
  EXPECT_EQ(fx.network->stats().queueDrops(), 0u);
  EXPECT_EQ(fx.network->node(fx.sensor).mac().peakQueueDepth(), 0u);
}

// --- end-to-end workload runs -------------------------------------------------

core::ScenarioConfig smallWorkloadConfig(workload::WorkloadKind kind) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 40;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = 140;
  cfg.height = 140;
  cfg.rounds = 3;
  cfg.workload.kind = kind;
  cfg.workload.ratePerSensor = 0.2;
  cfg.macQueue.capacity = 6;
  cfg.seed = 9;
  return cfg;
}

TEST(WorkloadRun, GeneratorsDriveTrafficThroughEveryProtocolPath) {
  for (const auto kind :
       {workload::WorkloadKind::kPeriodic, workload::WorkloadKind::kPoisson,
        workload::WorkloadKind::kBurst}) {
    const auto result = core::runScenario(smallWorkloadConfig(kind));
    EXPECT_GT(result.generated, 0u) << workload::toString(kind);
    EXPECT_GT(result.delivered, 0u) << workload::toString(kind);
    EXPECT_EQ(result.workload, workload::toString(kind));
    EXPECT_GT(result.offeredPps, 0.0);
  }
}

TEST(WorkloadRun, LegacyDefaultReportsLegacyWorkload) {
  core::ScenarioConfig cfg = smallWorkloadConfig(
      workload::WorkloadKind::kLegacyRounds);
  cfg.macQueue.capacity = 0;
  const auto result = core::runScenario(cfg);
  EXPECT_EQ(result.workload, "legacy-rounds");
  EXPECT_EQ(result.queueDrops, 0u);
  EXPECT_EQ(result.peakQueueDepth, 0u);
}

// --- sweep determinism --------------------------------------------------------

void expectSameResult(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.controlFrames, b.controlFrames);
  EXPECT_EQ(a.dataFrames, b.dataFrames);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.queueDrops, b.queueDrops);
  EXPECT_EQ(a.macDrops, b.macDrops);
  EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
  EXPECT_DOUBLE_EQ(a.meanLatencyMs, b.meanLatencyMs);
  EXPECT_DOUBLE_EQ(a.meanQueueDepth, b.meanQueueDepth);
}

TEST(SweepDeterminism, ThreadCountDoesNotChangeResults) {
  std::vector<core::ScenarioConfig> configs;
  for (std::uint64_t seed : {1, 2, 3, 4}) {
    core::ScenarioConfig cfg =
        smallWorkloadConfig(workload::WorkloadKind::kPoisson);
    cfg.seed = seed;
    configs.push_back(cfg);
    cfg = smallWorkloadConfig(workload::WorkloadKind::kLegacyRounds);
    cfg.seed = seed;
    configs.push_back(cfg);
  }
  const auto serial = core::runScenariosParallel(configs, 1);
  const auto parallel = core::runScenariosParallel(configs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    expectSameResult(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace wmsn
