// Spatial-grid neighbor index + active-set kernel (docs/KERNEL.md).
//
// The grid is a candidate pre-filter: its queries must return a superset of
// the exact in-range set, sorted ascending, and stay correct through node
// moves. The active set must make dead/failed nodes cost literally nothing:
// zero node-steps, zero RNG draws. Both properties are load-bearing for the
// byte-identity gates, so they get brute-force oracles here.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/radio.hpp"
#include "net/sensor_network.hpp"
#include "obs/perf_stats.hpp"
#include "routing/protocol.hpp"
#include "sim/node_state.hpp"
#include "sim/spatial_grid.hpp"
#include "util/random.hpp"

namespace wmsn {
namespace {

// --- SpatialGrid ------------------------------------------------------------

TEST(SpatialGrid, FindsNodesOnCellBoundaries) {
  sim::SpatialGrid grid(10.0);
  grid.insert(0, 0.0, 0.0);    // exactly on a cell corner
  grid.insert(1, 10.0, 0.0);   // on the boundary of the next cell
  grid.insert(2, 20.0, 20.0);  // two cells away diagonally
  grid.insert(3, -0.5, -0.5);  // negative coordinates, adjacent cell

  std::vector<std::uint32_t> out;
  grid.query(0.0, 0.0, 10.0, out);
  // The bounding square [-10,10]² touches cells -1..1 in each axis, so
  // nodes 0, 1 and 3 are candidates; node 2 sits in cell (2,2), outside.
  EXPECT_TRUE(std::binary_search(out.begin(), out.end(), 0u));
  EXPECT_TRUE(std::binary_search(out.begin(), out.end(), 1u));
  EXPECT_TRUE(std::binary_search(out.begin(), out.end(), 3u));
  EXPECT_FALSE(std::binary_search(out.begin(), out.end(), 2u));
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(SpatialGrid, QueryMatchesBruteForceOracleOnRandomTopologies) {
  // The exact in-range set (distance <= r) computed two ways: grid
  // candidates + exact filter vs a full O(n²) scan. Any node the grid
  // misses breaks frame delivery; any duplicate breaks draw order.
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const double range = rng.uniform(5.0, 40.0);
    const double area = rng.uniform(50.0, 300.0);
    sim::SpatialGrid grid(range);
    std::vector<double> xs, ys;
    const std::size_t n = 120;
    for (std::uint32_t i = 0; i < n; ++i) {
      xs.push_back(rng.uniform(0.0, area));
      ys.push_back(rng.uniform(0.0, area));
      grid.insert(i, xs.back(), ys.back());
    }
    std::vector<std::uint32_t> candidates;
    for (int q = 0; q < 20; ++q) {
      const double cx = rng.uniform(-10.0, area + 10.0);
      const double cy = rng.uniform(-10.0, area + 10.0);
      grid.query(cx, cy, range, candidates);
      EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
      EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                  candidates.end());

      std::vector<std::uint32_t> viaGrid;
      for (const std::uint32_t id : candidates) {
        const double dx = xs[id] - cx, dy = ys[id] - cy;
        if (dx * dx + dy * dy <= range * range) viaGrid.push_back(id);
      }
      std::vector<std::uint32_t> viaBrute;
      for (std::uint32_t id = 0; id < n; ++id) {
        const double dx = xs[id] - cx, dy = ys[id] - cy;
        if (dx * dx + dy * dy <= range * range) viaBrute.push_back(id);
      }
      EXPECT_EQ(viaGrid, viaBrute);
    }
  }
}

TEST(SpatialGrid, ExactRadioRangeEdgeIsInclusive) {
  // distance == range is linked (UnitDiskRadio uses <=); the grid must not
  // lose the node that sits exactly on the disk edge, even when the edge
  // coincides with a cell boundary.
  sim::SpatialGrid grid(30.0);
  grid.insert(0, 0.0, 0.0);
  grid.insert(1, 30.0, 0.0);  // exactly at range, on the cell boundary
  std::vector<std::uint32_t> out;
  grid.query(0.0, 0.0, 30.0, out);
  ASSERT_TRUE(std::binary_search(out.begin(), out.end(), 1u));
  net::UnitDiskRadio radio(30.0);
  EXPECT_TRUE(radio.linked({0.0, 0.0}, {30.0, 0.0}));
}

TEST(SpatialGrid, MoveRebucketsAcrossCells) {
  sim::SpatialGrid grid(10.0);
  grid.insert(0, 5.0, 5.0);
  grid.insert(1, 5.0, 6.0);

  std::vector<std::uint32_t> out;
  grid.move(0, 95.0, 95.0);  // far cell
  grid.query(5.0, 5.0, 10.0, out);
  EXPECT_FALSE(std::binary_search(out.begin(), out.end(), 0u));
  EXPECT_TRUE(std::binary_search(out.begin(), out.end(), 1u));
  grid.query(95.0, 95.0, 10.0, out);
  EXPECT_TRUE(std::binary_search(out.begin(), out.end(), 0u));

  grid.move(0, 96.0, 96.0);  // same cell: no rebucket, still found
  grid.query(95.0, 95.0, 10.0, out);
  EXPECT_TRUE(std::binary_search(out.begin(), out.end(), 0u));

  grid.move(0, 5.5, 5.5);  // and back
  grid.query(5.0, 5.0, 10.0, out);
  EXPECT_TRUE(std::binary_search(out.begin(), out.end(), 0u));
}

// --- NodeStateBlock ---------------------------------------------------------

TEST(NodeStateBlock, ActiveSetTracksFailKillRecover) {
  sim::NodeStateBlock block(10.0);
  for (int i = 0; i < 5; ++i) block.add(static_cast<double>(i), 0.0);
  EXPECT_EQ(block.activeIds(), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));

  block.setFailed(2, true);  // crash: reversible
  block.setDead(4);          // battery death: permanent
  EXPECT_EQ(block.activeIds(), (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_FALSE(block.alive(2));
  EXPECT_FALSE(block.alive(4));

  block.setFailed(2, false);  // recovery rejoins the sweep
  EXPECT_EQ(block.activeIds(), (std::vector<std::uint32_t>{0, 1, 2, 3}));

  // Sleeping nodes stay active (they still step, §4.4) but stop listening.
  block.setSleeping(1, true);
  EXPECT_EQ(block.activeIds(), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(block.alive(1));
  EXPECT_FALSE(block.listening(1));
}

// --- neighborsOf vs brute force --------------------------------------------

TEST(SensorNetwork, NeighborsOfMatchesBruteForce) {
  sim::Simulator simulator;
  net::SensorNetworkParams params;
  params.mac = net::MacKind::kIdeal;
  net::SensorNetwork network(simulator,
                             std::make_unique<net::UnitDiskRadio>(25.0),
                             params);
  Rng rng(7);
  for (int i = 0; i < 80; ++i)
    network.addSensor({rng.uniform(0.0, 120.0), rng.uniform(0.0, 120.0)});
  network.addGateway({60.0, 60.0});
  network.node(3).kill(sim::Time::zero());
  network.node(9).setFailed(true);

  const net::NodeId count = static_cast<net::NodeId>(network.size());
  for (net::NodeId id = 0; id < count; ++id) {
    std::vector<net::NodeId> brute;
    for (net::NodeId other = 0; other < count; ++other) {
      if (other == id || !network.node(other).alive()) continue;
      if (network.radio().linked(network.node(id).position(),
                                 network.node(other).position()))
        brute.push_back(other);
    }
    EXPECT_EQ(network.neighborsOf(id), brute) << "node " << id;
  }
}

// --- active-set round stepping ----------------------------------------------

// Counts onRoundStart invocations and draws from the node's RNG stream on
// every step — so "zero calls" proves both zero node-steps and zero draws
// for the skipped node.
class CountingProtocol final : public routing::RoutingProtocol {
 public:
  CountingProtocol(net::SensorNetwork& network, net::NodeId self,
                   const routing::NetworkKnowledge& knowledge,
                   std::vector<int>& calls)
      : RoutingProtocol(network, self, knowledge), calls_(calls) {}

  std::string name() const override { return "counting"; }
  void onRoundStart(std::uint32_t) override {
    ++calls_[self()];
    rng().uniformInt(0, 1000);  // a skipped node must not advance its stream
  }
  void onReceive(const net::Packet&, net::NodeId) override {}
  void originate(Bytes) override {}

 private:
  std::vector<int>& calls_;
};

TEST(ProtocolStack, ActiveSetSkipsDeadAndFailedEntirely) {
  sim::Simulator simulator;
  net::SensorNetworkParams params;
  params.mac = net::MacKind::kIdeal;
  net::SensorNetwork network(simulator,
                             std::make_unique<net::UnitDiskRadio>(25.0),
                             params);
  for (int i = 0; i < 6; ++i)
    network.addSensor({static_cast<double>(10 * i), 0.0});
  routing::NetworkKnowledge knowledge;
  knowledge.gatewayIds.push_back(network.addGateway({0.0, 10.0}));

  std::vector<int> calls(network.size(), 0);
  routing::ProtocolStack stack(
      network, knowledge,
      [&calls](net::SensorNetwork& n, net::NodeId id,
               const routing::NetworkKnowledge& k) {
        return std::make_unique<CountingProtocol>(n, id, k, calls);
      });

  network.node(1).setFailed(true);             // crashed
  network.node(4).kill(sim::Time::zero());     // battery-dead

  obs::PerfStats perf;
  {
    obs::PerfStats::Activation counting(&perf);
    stack.beginRound(0);
    stack.beginRound(1);
  }

  EXPECT_EQ(calls[0], 2);
  EXPECT_EQ(calls[1], 0) << "failed node was stepped";
  EXPECT_EQ(calls[4], 0) << "dead node was stepped";
  EXPECT_EQ(calls[5], 2);
  // node-steps counts only active nodes: (7 total - 2 down) × 2 rounds.
  // Each step drew exactly once from its node's stream, so zero calls on
  // nodes 1 and 4 is also zero RNG draws for them.
  EXPECT_EQ(perf.value(obs::PerfCounter::kNodeSteps), 10u);

  // Recovery rejoins the sweep on the next boundary.
  network.node(1).setFailed(false);
  stack.beginRound(2);
  EXPECT_EQ(calls[1], 1);
}

}  // namespace
}  // namespace wmsn
