// Tests for the runtime invariants layer (WMSN_INVARIANT, src/util/
// invariants.hpp). Every invariant class the library checks at its protocol
// hot points — SPR Property 1, MLR table bounds/monotone accumulation,
// energy monotonicity, MAC queue bounds, SecMLR session consistency — has a
// deliberate violation here that asserts the check fires. Firing requires a
// tree configured with -DWMSN_INVARIANTS=ON (scripts/check_all.sh builds
// one); in the default build those tests skip and the compiled-out tests
// run instead.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/energy.hpp"
#include "net/radio.hpp"
#include "net/sensor_network.hpp"
#include "routing/messages.hpp"
#include "routing/mlr.hpp"
#include "routing/spr.hpp"
#include "sim/simulator.hpp"
#include "util/invariants.hpp"
#include "util/require.hpp"

namespace wmsn::routing {
namespace {

// --- predicate layer (always active, any build) ------------------------------

TEST(InvariantPredicates, SimplePath) {
  EXPECT_TRUE(inv::simplePath({}));
  EXPECT_TRUE(inv::simplePath({1, 2, 3}));
  EXPECT_FALSE(inv::simplePath({1, 2, 1}));
  EXPECT_FALSE(inv::simplePath({7, 7}));
}

TEST(InvariantPredicates, SprSubPathShape) {
  // Property 1 (§5.2): a stored sub-path runs self → gateway and is simple.
  EXPECT_TRUE(inv::sprSubPath({4, 5, 9}, 4, 9));
  EXPECT_TRUE(inv::sprSubPath({9}, 9, 9));          // the gateway's own entry
  EXPECT_FALSE(inv::sprSubPath({}, 4, 9));           // empty
  EXPECT_FALSE(inv::sprSubPath({5, 9}, 4, 9));       // wrong start
  EXPECT_FALSE(inv::sprSubPath({4, 5}, 4, 9));       // wrong terminus
  EXPECT_FALSE(inv::sprSubPath({4, 5, 5, 9}, 4, 9)); // cycle
}

TEST(InvariantPredicates, MlrTableBounds) {
  EXPECT_TRUE(inv::tableWithinPlaces(0, 6));
  EXPECT_TRUE(inv::tableWithinPlaces(6, 6));
  EXPECT_FALSE(inv::tableWithinPlaces(7, 6));  // more entries than |P|
}

TEST(InvariantPredicates, MlrEntryMonotone) {
  EXPECT_TRUE(inv::entryMonotone(false, 0, 12));  // first sighting: anything
  EXPECT_TRUE(inv::entryMonotone(true, 5, 5));    // refresh at equal cost
  EXPECT_TRUE(inv::entryMonotone(true, 5, 3));    // improvement
  EXPECT_FALSE(inv::entryMonotone(true, 5, 6));   // a rebuild worsened it
}

TEST(InvariantPredicates, EnergyMonotone) {
  EXPECT_TRUE(inv::energyMonotone(2.0, 2.0));
  EXPECT_TRUE(inv::energyMonotone(2.0, 1.5));
  EXPECT_FALSE(inv::energyMonotone(1.5, 2.0));  // charge grew back
}

TEST(InvariantPredicates, QueueWithinCapacity) {
  EXPECT_TRUE(inv::queueWithinCapacity(123, 0));  // legacy unbounded mode
  EXPECT_TRUE(inv::queueWithinCapacity(4, 4));
  EXPECT_FALSE(inv::queueWithinCapacity(5, 4));
}

TEST(InvariantPredicates, SecMlrSessionConsistency) {
  EXPECT_TRUE(inv::sessionConsistent(false, false, false, 0, false));
  EXPECT_TRUE(inv::sessionConsistent(true, true, true, 3, true));
  EXPECT_FALSE(inv::sessionConsistent(true, false, true, 3, true));
  EXPECT_FALSE(inv::sessionConsistent(true, true, false, 3, true));
  EXPECT_FALSE(inv::sessionConsistent(true, true, true, 0, true));
  EXPECT_FALSE(inv::sessionConsistent(true, true, true, 3, false));
}

// --- macro machinery ---------------------------------------------------------

TEST(InvariantMacro, BuildFlagMatchesLibrary) {
  // The test TU and the wmsn libraries are compiled with the same global
  // -DWMSN_INVARIANTS flag; if these ever disagree the build is miswired.
#ifdef WMSN_INVARIANTS
  EXPECT_TRUE(inv::enabledInBuild());
#else
  EXPECT_FALSE(inv::enabledInBuild());
#endif
}

TEST(InvariantMacro, FiresOnViolationWhenEnabled) {
  if (!inv::enabledInBuild())
    GTEST_SKIP() << "invariants compiled out; configure -DWMSN_INVARIANTS=ON";
  EXPECT_NO_THROW(WMSN_INVARIANT(2 + 2 == 4));
  EXPECT_THROW(WMSN_INVARIANT(2 + 2 == 5), InvariantError);
  try {
    WMSN_INVARIANT_MSG(false, "the context message");
    FAIL() << "violated invariant did not throw";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the context message"), std::string::npos) << what;
    EXPECT_NE(what.find("invariants_test"), std::string::npos) << what;
  }
}

TEST(InvariantMacro, CompiledOutCostsNothingByDefault) {
  if (inv::enabledInBuild())
    GTEST_SKIP() << "this probes the default (compiled-out) configuration";
  int evaluations = 0;
  auto probe = [&evaluations]() {
    ++evaluations;
    return false;
  };
  // Compiled out, the expression sits in an unevaluated context: the probe
  // must never run and the violated condition must never throw.
  EXPECT_NO_THROW(WMSN_INVARIANT(probe()));
  EXPECT_NO_THROW(WMSN_INVARIANT_MSG(probe(), "unused"));
  EXPECT_EQ(evaluations, 0);
}

// --- per-class violation firing ---------------------------------------------

/// Skips unless the tree was built with -DWMSN_INVARIANTS=ON.
class InvariantFiring : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!inv::enabledInBuild())
      GTEST_SKIP() << "requires a -DWMSN_INVARIANTS=ON build "
                      "(scripts/check_all.sh runs one)";
  }
};

TEST_F(InvariantFiring, SprPropertyOneViolation) {
  EXPECT_THROW(WMSN_INVARIANT(inv::sprSubPath({4, 5, 5, 9}, 4, 9)),
               InvariantError);
}

TEST_F(InvariantFiring, MlrTableBoundViolation) {
  EXPECT_THROW(WMSN_INVARIANT(inv::tableWithinPlaces(7, 6)), InvariantError);
}

TEST_F(InvariantFiring, MlrEntryRebuildViolation) {
  EXPECT_THROW(WMSN_INVARIANT(inv::entryMonotone(true, 5, 6)), InvariantError);
}

TEST_F(InvariantFiring, EnergyMonotoneViolation) {
  EXPECT_THROW(WMSN_INVARIANT(inv::energyMonotone(1.5, 2.0)), InvariantError);
}

TEST_F(InvariantFiring, MacQueueBoundViolation) {
  EXPECT_THROW(WMSN_INVARIANT(inv::queueWithinCapacity(5, 4)), InvariantError);
}

TEST_F(InvariantFiring, SecMlrSessionViolation) {
  EXPECT_THROW(
      WMSN_INVARIANT(inv::sessionConsistent(true, false, false, 0, false)),
      InvariantError);
}

// --- library-level firing through real protocol state ------------------------

net::SensorNetworkParams idealParams() {
  net::SensorNetworkParams p;
  p.mac = net::MacKind::kIdeal;
  p.medium.collisions = false;
  return p;
}

/// MlrRouting exposes its table to subclasses; corrupting it and entering a
/// round boundary must trip the one-slot-per-place invariant inside
/// onRoundStart (not merely a checker function called with fake values).
struct TableCorruptingMlr final : MlrRouting {
  using MlrRouting::MlrRouting;
  void growTableBeyondPlaces() { table_.push_back(PlaceEntry{}); }
};

TEST_F(InvariantFiring, MlrOnRoundStartCatchesCorruptTable) {
  sim::Simulator simulator;
  net::SensorNetwork network(simulator,
                             std::make_unique<net::UnitDiskRadio>(25.0),
                             idealParams());
  network.addSensor({0.0, 0.0});
  NetworkKnowledge knowledge;
  knowledge.feasiblePlaces = {{40.0, 0.0}, {80.0, 0.0}};
  knowledge.gatewayIds.push_back(network.addGateway({40.0, 0.0}));

  TableCorruptingMlr mlr(network, 0, knowledge, MlrParams{});
  EXPECT_NO_THROW(mlr.onRoundStart(1));
  mlr.growTableBeyondPlaces();
  EXPECT_THROW(mlr.onRoundStart(2), InvariantError);
}

TEST_F(InvariantFiring, SprInstallRejectsNonSimplePath) {
  // A crafted RRES carrying a cyclic path reaches installFromPath, whose
  // Property-1 invariant must reject the state before it is stored.
  sim::Simulator simulator;
  net::SensorNetwork network(simulator,
                             std::make_unique<net::UnitDiskRadio>(25.0),
                             idealParams());
  for (int i = 0; i < 3; ++i)
    network.addSensor({20.0 * static_cast<double>(i), 0.0});
  NetworkKnowledge knowledge;
  knowledge.feasiblePlaces = {{60.0, 0.0}};
  const net::NodeId gw = network.addGateway({60.0, 0.0});
  knowledge.gatewayIds.push_back(gw);

  SprRouting spr(network, 1, knowledge, SprParams{});

  RresMsg res;
  res.reqId = 1;
  res.gateway = static_cast<std::uint16_t>(gw);
  res.path = {1, 2, 2, static_cast<std::uint16_t>(gw)};  // revisits node 2
  res.cursor = 0;  // addressed to node 1, the path head

  net::Packet pkt;
  pkt.kind = net::PacketKind::kRres;
  pkt.hopDst = 1;
  pkt.payload = res.encode();
  EXPECT_THROW(spr.onReceive(pkt, 2), InvariantError);
}

TEST(InvariantLayer, BatteryPreconditionStillActiveEverywhere) {
  // The invariant layer supplements — never replaces — the always-on
  // precondition checks: a negative draw is a caller bug in every build.
  net::Battery battery(2.0);
  EXPECT_THROW(battery.drawTx(-1.0), PreconditionError);
}

}  // namespace
}  // namespace wmsn::routing
