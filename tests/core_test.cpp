#include <gtest/gtest.h>

#include "core/wmsn.hpp"
#include "util/require.hpp"

namespace wmsn::core {
namespace {

ScenarioConfig smallConfig() {
  ScenarioConfig cfg;
  cfg.sensorCount = 40;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = 140;
  cfg.height = 140;
  cfg.rounds = 3;
  cfg.seed = 5;
  return cfg;
}

// --- config validation ----------------------------------------------------------

TEST(Config, ValidatesFieldRanges) {
  ScenarioConfig cfg = smallConfig();
  cfg.feasiblePlaceCount = 1;  // < gatewayCount
  EXPECT_THROW(cfg.validate(), PreconditionError);

  cfg = smallConfig();
  cfg.trafficStart = cfg.roundDuration;  // must fall inside the round
  EXPECT_THROW(cfg.validate(), PreconditionError);

  cfg = smallConfig();
  cfg.failures.push_back({0, 9});  // no gateway ordinal 9
  EXPECT_THROW(cfg.validate(), PreconditionError);

  cfg = smallConfig();
  cfg.attack.kind = attacks::AttackKind::kSinkhole;
  cfg.protocol = ProtocolKind::kFlooding;  // attacks target MLR/SecMLR
  EXPECT_THROW(cfg.validate(), PreconditionError);

  EXPECT_NO_THROW(smallConfig().validate());
}

TEST(Config, ToStringCoversKinds) {
  EXPECT_EQ(toString(ProtocolKind::kSecMlr), "secmlr");
  EXPECT_EQ(toString(ProtocolKind::kSingleSink), "single-sink");
  EXPECT_EQ(toString(DeploymentKind::kClustered), "clustered");
}

// --- builder ---------------------------------------------------------------------

TEST(Builder, BuildsConnectedScenario) {
  auto scenario = buildScenario(smallConfig());
  EXPECT_EQ(scenario->network->sensorIds().size(), 40u);
  EXPECT_EQ(scenario->network->gatewayIds().size(), 2u);
  EXPECT_EQ(scenario->feasiblePlaces.size(), 4u);
  EXPECT_TRUE(scenario->network->allSensorsCovered());
}

TEST(Builder, AutoPicksAttackersFromSensors) {
  ScenarioConfig cfg = smallConfig();
  cfg.attack.kind = attacks::AttackKind::kSelectiveForward;
  cfg.attackerCount = 3;
  auto scenario = buildScenario(cfg);
  EXPECT_EQ(scenario->config.attack.attackers.size(), 3u);
  for (net::NodeId id : scenario->config.attack.attackers)
    EXPECT_FALSE(scenario->network->node(id).isGateway());
}

TEST(Builder, SecMlrChainSizedToRun) {
  ScenarioConfig cfg = smallConfig();
  cfg.protocol = ProtocolKind::kSecMlr;
  cfg.rounds = 30;
  auto scenario = buildScenario(cfg);
  const auto& tesla = scenario->config.secmlr.tesla;
  EXPECT_GE(tesla.chainLength,
            static_cast<std::size_t>(30 * cfg.roundDuration.us /
                                     tesla.intervalDuration.us));
}

TEST(Builder, ExplicitLayoutRespected) {
  ScenarioConfig cfg = smallConfig();
  auto scenario = buildScenarioAt(
      cfg, {{0, 0}, {20, 0}}, {{-20, 0}, {40, 0}}, {0});
  EXPECT_EQ(scenario->network->sensorIds().size(), 2u);
  EXPECT_EQ(scenario->network->gatewayIds().size(), 1u);
  EXPECT_EQ(scenario->network->node(scenario->network->gatewayIds()[0])
                .position(),
            (net::Point{-20, 0}));
}

// --- metrics ---------------------------------------------------------------------

TEST(Metrics, EnergySummaryMatchesPaperDefinitions) {
  sim::Simulator simulator;
  net::SensorNetworkParams params;
  params.energy.initialEnergyJ = 10.0;
  net::SensorNetwork network(
      simulator, std::make_unique<net::UnitDiskRadio>(30.0), params);
  const auto a = network.addSensor({0, 0});
  const auto b = network.addSensor({10, 0});
  network.node(a).battery().drawTx(2.0);
  network.node(b).battery().drawRx(4.0);

  const EnergySummary s = summarizeSensorEnergy(network);
  EXPECT_DOUBLE_EQ(s.totalJ, 6.0);   // ΣEᵢ (eq. 2)
  EXPECT_DOUBLE_EQ(s.meanJ, 3.0);
  EXPECT_DOUBLE_EQ(s.varianceD2, 2.0);  // (2−3)² + (4−3)² (eq. 1)
  EXPECT_DOUBLE_EQ(s.minJ, 2.0);
  EXPECT_DOUBLE_EQ(s.maxJ, 4.0);
  EXPECT_DOUBLE_EQ(s.txJ, 2.0);
  EXPECT_DOUBLE_EQ(s.rxJ, 4.0);
  EXPECT_NEAR(s.jainFairness, 36.0 / (2 * 20.0), 1e-12);
}

// --- experiment ------------------------------------------------------------------

TEST(Experiment, DeterministicAcrossRuns) {
  const RunResult a = runScenario(smallConfig());
  const RunResult b = runScenario(smallConfig());
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.controlFrames, b.controlFrames);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
  EXPECT_DOUBLE_EQ(a.sensorEnergy.totalJ, b.sensorEnergy.totalJ);
  EXPECT_DOUBLE_EQ(a.meanLatencyMs, b.meanLatencyMs);
}

TEST(Experiment, DifferentSeedsDiffer) {
  ScenarioConfig cfg = smallConfig();
  const RunResult a = runScenario(cfg);
  cfg.seed = 6;
  const RunResult b = runScenario(cfg);
  EXPECT_NE(a.eventsProcessed, b.eventsProcessed);
}

TEST(Experiment, RoundObserverFiresPerRound) {
  auto scenario = buildScenario(smallConfig());
  Experiment experiment(*scenario);
  std::vector<std::uint32_t> rounds;
  experiment.setRoundObserver(
      [&](std::uint32_t round) { rounds.push_back(round); });
  const RunResult result = experiment.run();
  EXPECT_EQ(result.roundsCompleted, 3u);
  EXPECT_EQ(rounds, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Experiment, GatewayFailureReducesDelivery) {
  ScenarioConfig cfg = smallConfig();
  cfg.gatewayCount = 1;
  cfg.feasiblePlaceCount = 2;
  cfg.gatewaysMove = false;
  cfg.rounds = 4;
  const RunResult healthy = runScenario(cfg);
  cfg.failures.push_back({2, 0});  // the only gateway dies at round 2
  const RunResult failed = runScenario(cfg);
  EXPECT_LT(failed.deliveryRatio, healthy.deliveryRatio - 0.3);
}

TEST(Experiment, StopAtFirstDeathEndsRun) {
  ScenarioConfig cfg = smallConfig();
  cfg.energy.initialEnergyJ = 0.003;  // tiny battery → early death
  cfg.rounds = 500;
  cfg.stopAtFirstDeath = true;
  cfg.packetsPerSensorPerRound = 4;
  const RunResult result = runScenario(cfg);
  EXPECT_TRUE(result.firstDeathObserved);
  EXPECT_LT(result.roundsCompleted, 500u);
  EXPECT_EQ(result.firstDeathRound + 1, result.roundsCompleted);
}

// --- parallel sweeps -----------------------------------------------------------------

TEST(Sweep, ParallelMatchesSerial) {
  std::vector<ScenarioConfig> configs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ScenarioConfig cfg = smallConfig();
    cfg.seed = seed;
    configs.push_back(cfg);
  }
  const auto parallel = runScenariosParallel(configs, 4);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const RunResult serial = runScenario(configs[i]);
    EXPECT_EQ(parallel[i].eventsProcessed, serial.eventsProcessed);
    EXPECT_EQ(parallel[i].delivered, serial.delivered);
  }
}

TEST(Sweep, PropagatesWorkerExceptions) {
  std::vector<ScenarioConfig> configs{smallConfig()};
  configs[0].sensorCount = 3;
  configs[0].width = 5000;  // hopeless density → builder throws
  configs[0].height = 5000;
  EXPECT_THROW(runScenariosParallel(configs, 2), PreconditionError);
}

TEST(Sweep, MeanOver) {
  RunResult a, b;
  a.deliveryRatio = 0.8;
  b.deliveryRatio = 1.0;
  EXPECT_DOUBLE_EQ(
      meanOver({a, b}, [](const RunResult& r) { return r.deliveryRatio; }),
      0.9);
}

// --- report ----------------------------------------------------------------------------

TEST(Report, TablesRender) {
  const RunResult result = runScenario(smallConfig());
  EXPECT_FALSE(summaryLine(result).empty());
  const TextTable table = comparisonTable({result}, {"test-run"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NE(table.str().find("test-run"), std::string::npos);
  const TextTable load = gatewayLoadTable(result);
  EXPECT_EQ(load.rows(), result.perGatewayDeliveries.size());
}

}  // namespace
}  // namespace wmsn::core
