// Whole-system integration tests: generated topologies, realistic channel
// (CSMA + collisions + ARQ), several rounds, multiple modules interacting.

#include <gtest/gtest.h>

#include "core/wmsn.hpp"

namespace wmsn {
namespace {

TEST(Integration, MlrFullLifecycleWithMovingGateways) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 100;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 6;
  cfg.rounds = 8;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 42;

  const core::RunResult r = core::runScenario(cfg);
  EXPECT_GT(r.deliveryRatio, 0.95);
  EXPECT_GT(r.meanHops, 1.0);
  EXPECT_LT(r.meanHops, 8.0);
  // All three gateways participate — the multi-sink architecture works.
  EXPECT_EQ(r.perGatewayDeliveries.size(), 3u);
  EXPECT_EQ(r.aliveSensors, 100u);
}

TEST(Integration, SecMlrSurvivesRealisticChannel) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kSecMlr;
  cfg.sensorCount = 80;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 5;
  cfg.rounds = 6;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 42;

  const core::RunResult r = core::runScenario(cfg);
  EXPECT_GT(r.deliveryRatio, 0.9);
  // No spurious security rejections beyond a trickle of races.
  EXPECT_EQ(r.rejectedMacs, 0u);
  EXPECT_LT(r.rejectedReplays, 20u);
}

TEST(Integration, MultiGatewayBeatsSingleSinkOnHops) {
  // §4.1's Fig. 2 claim, on a generated network: three gateways cut the
  // mean hop count substantially vs one sink.
  auto run = [](std::size_t gateways) {
    core::ScenarioConfig cfg;
    cfg.protocol = core::ProtocolKind::kMlr;
    cfg.sensorCount = 120;
    cfg.gatewayCount = gateways;
    cfg.feasiblePlaceCount = std::max<std::size_t>(gateways + 1, 4);
    cfg.gatewaysMove = false;
    cfg.width = 240;
    cfg.height = 240;
    cfg.rounds = 3;
    cfg.seed = 9;
    return core::runScenario(cfg);
  };
  const auto one = run(1);
  const auto three = run(3);
  EXPECT_GT(one.meanHops, three.meanHops * 1.3);
}

TEST(Integration, LifetimeOrderingMlrVsSingleSink) {
  // The headline §5.3 effect: multiple mobile gateways balance relaying
  // load, postponing the first death vs a flat single-sink network.
  auto lifetime = [](core::ProtocolKind protocol, std::size_t gateways,
                     bool move) {
    core::ScenarioConfig cfg;
    cfg.protocol = protocol;
    cfg.sensorCount = 80;
    cfg.gatewayCount = gateways;
    cfg.feasiblePlaceCount = 6;
    cfg.gatewaysMove = move;
    cfg.energy.initialEnergyJ = 0.02;  // scaled down → deaths within test
    cfg.rounds = 400;
    cfg.stopAtFirstDeath = true;
    cfg.packetsPerSensorPerRound = 2;
    cfg.seed = 21;
    const auto r = core::runScenario(cfg);
    EXPECT_TRUE(r.firstDeathObserved);
    return r.firstDeathRound;
  };
  const auto singleSink =
      lifetime(core::ProtocolKind::kSingleSink, 1, false);
  const auto mlr = lifetime(core::ProtocolKind::kMlr, 3, true);
  EXPECT_GT(mlr, singleSink);
}

TEST(Integration, EnergyBalanceMlrVsSingleSink) {
  // Eq. (1): D² (and Jain) should favour the multi-gateway network.
  auto run = [](core::ProtocolKind protocol, std::size_t gateways) {
    core::ScenarioConfig cfg;
    cfg.protocol = protocol;
    cfg.sensorCount = 80;
    cfg.gatewayCount = gateways;
    cfg.feasiblePlaceCount = 6;
    cfg.rounds = 6;
    cfg.packetsPerSensorPerRound = 2;
    cfg.seed = 33;
    return core::runScenario(cfg);
  };
  const auto single = run(core::ProtocolKind::kSingleSink, 1);
  const auto mlr = run(core::ProtocolKind::kMlr, 3);
  EXPECT_GT(mlr.sensorEnergy.jainFairness, single.sensorEnergy.jainFairness);
}

TEST(Integration, RoutingOverheadIncrementalVsRebuild) {
  // §5.3's overhead claim: accumulating tables beats rebuilding each round.
  auto run = [](bool rebuild) {
    core::ScenarioConfig cfg;
    cfg.protocol = core::ProtocolKind::kMlr;
    cfg.sensorCount = 80;
    cfg.gatewayCount = 3;
    cfg.feasiblePlaceCount = 6;
    cfg.rounds = 10;
    cfg.mlr.rebuildEveryRound = rebuild;
    cfg.seed = 17;
    return core::runScenario(cfg);
  };
  const auto incremental = run(false);
  const auto rebuild = run(true);
  EXPECT_LT(incremental.controlFrames, rebuild.controlFrames / 2);
  EXPECT_GE(incremental.deliveryRatio, rebuild.deliveryRatio - 0.05);
}

TEST(Integration, LossyRadioStillDelivers) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 80;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 5;
  cfg.lossyRadio = true;  // LogDistance fringe losses + ARQ recovery
  cfg.rounds = 5;
  cfg.seed = 11;
  const auto r = core::runScenario(cfg);
  // Min-hop routing deliberately prefers LONG (hence fringe-lossy) links —
  // the classic hop-count-vs-ETX trade-off; ARQ claws back most of it but a
  // unit-disk PDR is not attainable. Anything above ~0.6 shows the ARQ +
  // capture machinery working.
  EXPECT_GT(r.deliveryRatio, 0.6);
  EXPECT_LT(r.deliveryRatio, 1.0);
}

TEST(Integration, BatteryLimitedGatewaysEventuallyDie) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.gatewaysBatteryLimited = true;  // §4.1 forest-monitoring variant
  cfg.energy.initialEnergyJ = 0.01;
  cfg.rounds = 200;
  cfg.packetsPerSensorPerRound = 3;
  cfg.stopAtFirstDeath = true;
  cfg.seed = 13;
  const auto r = core::runScenario(cfg);
  EXPECT_TRUE(r.firstDeathObserved);
}

TEST(Integration, ClusteredDeploymentFavoursMlrBalance) {
  // §5.3: uneven distributions concentrate forwarding on few nodes; MLR's
  // mobile gateways spread it. Compare Jain fairness clustered-vs-uniform.
  auto run = [](core::DeploymentKind deployment) {
    core::ScenarioConfig cfg;
    cfg.protocol = core::ProtocolKind::kMlr;
    cfg.deployment = deployment;
    cfg.sensorCount = 80;
    cfg.gatewayCount = 3;
    cfg.feasiblePlaceCount = 6;
    cfg.radioRange =
        deployment == core::DeploymentKind::kClustered ? 45.0 : 30.0;
    cfg.rounds = 6;
    cfg.seed = 29;
    return core::runScenario(cfg);
  };
  const auto uniform = run(core::DeploymentKind::kUniform);
  const auto clustered = run(core::DeploymentKind::kClustered);
  EXPECT_GT(uniform.deliveryRatio, 0.9);
  EXPECT_GT(clustered.deliveryRatio, 0.85);
}

TEST(Integration, SecurityOverheadIsBounded) {
  // SecMLR costs more than MLR (crypto + discovery floods) but delivery and
  // latency stay in the same regime — the paper's "energy-efficient way"
  // claim holds per-packet on the data plane.
  auto run = [](core::ProtocolKind protocol) {
    core::ScenarioConfig cfg;
    cfg.protocol = protocol;
    cfg.sensorCount = 80;
    cfg.gatewayCount = 3;
    cfg.feasiblePlaceCount = 5;
    cfg.rounds = 6;
    cfg.packetsPerSensorPerRound = 2;
    cfg.seed = 42;
    return core::runScenario(cfg);
  };
  const auto mlr = run(core::ProtocolKind::kMlr);
  const auto sec = run(core::ProtocolKind::kSecMlr);
  EXPECT_GT(sec.sensorEnergy.totalJ, mlr.sensorEnergy.totalJ);
  EXPECT_GT(sec.deliveryRatio, 0.9);
  // Data-plane hop counts comparable — security does not lengthen routes.
  EXPECT_LT(sec.meanHops, mlr.meanHops * 1.6);
}

}  // namespace
}  // namespace wmsn
