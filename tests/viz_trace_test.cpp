// Tests for the observability subsystems: the SVG topology renderer and the
// per-frame trace logger.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/wmsn.hpp"
#include "util/require.hpp"
#include "util/svg.hpp"

namespace wmsn {
namespace {

// --- SvgWriter ----------------------------------------------------------------

TEST(Svg, DocumentStructure) {
  SvgWriter svg(100, 80);
  svg.circle(10, 10, 3, "#ff0000");
  svg.rect(20, 20, 5, 5, "#00ff00", "#000000", 1.0);
  svg.line(0, 0, 100, 80, "#0000ff", 2.0);
  svg.text(5, 5, "hello & <world>");
  svg.cross(50, 40, 4, "#333333");
  const std::string doc = svg.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("<rect"), std::string::npos);
  // 1 explicit line + 2 from the cross.
  EXPECT_NE(doc.find("<line"), std::string::npos);
  // XML escaping of text content.
  EXPECT_NE(doc.find("hello &amp; &lt;world&gt;"), std::string::npos);
  EXPECT_EQ(doc.find("<world>"), std::string::npos);
}

TEST(Svg, HeatColorRamp) {
  EXPECT_EQ(SvgWriter::heatColor(0.0), "#2ca25f");   // green
  EXPECT_EQ(SvgWriter::heatColor(0.5), "#ffd92f");   // yellow
  EXPECT_EQ(SvgWriter::heatColor(1.0), "#d7301f");   // red
  EXPECT_EQ(SvgWriter::heatColor(-5.0), SvgWriter::heatColor(0.0));
  EXPECT_EQ(SvgWriter::heatColor(7.0), SvgWriter::heatColor(1.0));
}

TEST(Svg, WritesFile) {
  SvgWriter svg(10, 10);
  svg.circle(5, 5, 1, "#123456");
  const std::string path = "/tmp/wmsn_svg_test.svg";
  svg.writeFile(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("<?xml"), std::string::npos);
  std::remove(path.c_str());
}

// --- topology renderer ----------------------------------------------------------

TEST(Viz, RendersAllNodeClasses) {
  core::ScenarioConfig cfg;
  cfg.sensorCount = 40;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = 140;
  cfg.height = 140;
  cfg.rounds = 2;
  cfg.seed = 3;
  auto scenario = core::buildScenario(cfg);
  core::Experiment experiment(*scenario);
  experiment.run();
  // Kill one sensor so the hollow-dead rendering path is exercised.
  scenario->network->node(0).kill(scenario->simulator.now());

  const std::string doc = core::renderTopology(*scenario).str();
  // 39 alive sensors (filled) + 1 dead (hollow) + crosses + 2 gateways.
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("<rect"), std::string::npos);   // gateway squares
  EXPECT_NE(doc.find("P0"), std::string::npos);      // place labels
  EXPECT_NE(doc.find("G40"), std::string::npos);     // gateway label
  // Energy heat used at least one non-default colour.
  EXPECT_NE(doc.find("fill=\"#"), std::string::npos);
}

TEST(Viz, WriteTopologySvg) {
  core::ScenarioConfig cfg;
  cfg.sensorCount = 30;
  cfg.gatewayCount = 1;
  cfg.feasiblePlaceCount = 2;
  cfg.width = 120;
  cfg.height = 120;
  cfg.rounds = 1;
  cfg.seed = 4;
  auto scenario = core::buildScenario(cfg);
  const std::string path = "/tmp/wmsn_viz_test.svg";
  core::writeTopologySvg(*scenario, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

// --- trace logger ------------------------------------------------------------------

TEST(Trace, RecordsTxAndRxEvents) {
  core::ScenarioConfig cfg;
  cfg.sensorCount = 30;
  cfg.gatewayCount = 1;
  cfg.feasiblePlaceCount = 2;
  cfg.width = 120;
  cfg.height = 120;
  cfg.rounds = 1;
  cfg.packetsPerSensorPerRound = 1;
  cfg.seed = 5;
  auto scenario = core::buildScenario(cfg);
  core::TraceLogger trace;
  trace.attach(*scenario);
  core::Experiment experiment(*scenario);
  const auto result = experiment.run();
  EXPECT_GT(result.delivered, 0u);
  EXPECT_GT(trace.rows(), result.delivered);  // at least one row per frame
  const std::string csv = trace.csv().str();
  EXPECT_NE(csv.find("tx,"), std::string::npos);
  EXPECT_NE(csv.find("rx,"), std::string::npos);
  EXPECT_NE(csv.find("GW_MOVE"), std::string::npos);
  EXPECT_NE(csv.find("DATA"), std::string::npos);
}

TEST(Trace, DeterministicReplay) {
  auto traceOf = [] {
    core::ScenarioConfig cfg;
    cfg.sensorCount = 25;
    cfg.gatewayCount = 1;
    cfg.feasiblePlaceCount = 2;
    cfg.width = 110;
    cfg.height = 110;
    cfg.rounds = 1;
    cfg.seed = 6;
    auto scenario = core::buildScenario(cfg);
    core::TraceLogger trace;
    trace.attach(*scenario);
    core::Experiment experiment(*scenario);
    experiment.run();
    return trace.csv().str();
  };
  EXPECT_EQ(traceOf(), traceOf());  // bit-identical event streams
}

}  // namespace
}  // namespace wmsn
