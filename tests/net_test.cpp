#include <gtest/gtest.h>

#include "net/deployment.hpp"
#include "net/mobility.hpp"
#include "net/sensor_network.hpp"
#include "util/require.hpp"

namespace wmsn::net {
namespace {

// --- geometry / energy --------------------------------------------------------

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distanceSq({1, 1}, {1, 1}), 0.0);
}

TEST(Energy, CrossoverDistance) {
  EnergyParams p;
  const double d0 = p.crossoverDistance();
  EXPECT_NEAR(d0, std::sqrt(10e-12 / 0.0013e-12), 1e-6);
}

TEST(Energy, TxCostUsesFreeSpaceBelowCrossover) {
  EnergyParams p;
  const double d = p.crossoverDistance() / 2.0;
  const double expected =
      p.eElecJPerBit * 100 + p.eFsJPerBitM2 * d * d * 100;
  EXPECT_NEAR(p.txCost(100, d), expected, 1e-18);
}

TEST(Energy, TxCostUsesMultipathAboveCrossover) {
  EnergyParams p;
  const double d = p.crossoverDistance() * 2.0;
  const double expected =
      p.eElecJPerBit * 100 + p.eMpJPerBitM4 * d * d * d * d * 100;
  EXPECT_NEAR(p.txCost(100, d), expected, 1e-15);
}

TEST(Energy, RxCostIsElectronicsOnly) {
  EnergyParams p;
  EXPECT_DOUBLE_EQ(p.rxCost(1000), p.eElecJPerBit * 1000);
}

TEST(Battery, DrainsAndDies) {
  Battery b(1.0);
  EXPECT_TRUE(b.drawTx(0.4));
  EXPECT_TRUE(b.drawRx(0.4));
  EXPECT_FALSE(b.depleted());
  EXPECT_FALSE(b.drawCpu(0.3));  // this charge kills it
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remainingJ(), 0.0);
  EXPECT_DOUBLE_EQ(b.txJ(), 0.4);
  EXPECT_DOUBLE_EQ(b.rxJ(), 0.4);
  EXPECT_DOUBLE_EQ(b.cpuJ(), 0.3);
}

TEST(Battery, DeadBatteryAbsorbsNothing) {
  Battery b(0.1);
  b.drawTx(0.2);
  const double consumed = b.consumedJ();
  EXPECT_TRUE(b.drawTx(0.5));  // no-op on a dead node
  EXPECT_DOUBLE_EQ(b.consumedJ(), consumed);
}

TEST(Battery, InfiniteTracksConsumption) {
  Battery b = Battery::infinite();
  EXPECT_TRUE(b.drawTx(100.0));
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.txJ(), 100.0);
}

// --- radio -------------------------------------------------------------------

TEST(UnitDiskRadio, SharpCutoff) {
  UnitDiskRadio radio(10.0);
  EXPECT_TRUE(radio.linked({0, 0}, {10, 0}));
  EXPECT_FALSE(radio.linked({0, 0}, {10.01, 0}));
  EXPECT_DOUBLE_EQ(radio.deliveryProbability({0, 0}, {5, 0}), 1.0);
}

TEST(LogDistanceRadio, FringeDecays) {
  LogDistanceRadio radio(10.0, 20.0);
  EXPECT_DOUBLE_EQ(radio.deliveryProbability({0, 0}, {9, 0}), 1.0);
  const double mid = radio.deliveryProbability({0, 0}, {15, 0});
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
  EXPECT_DOUBLE_EQ(radio.deliveryProbability({0, 0}, {20, 0}), 0.0);
  EXPECT_TRUE(radio.linked({0, 0}, {19, 0}));
  EXPECT_FALSE(radio.linked({0, 0}, {21, 0}));
}

// --- SensorNetwork + Medium -----------------------------------------------------

struct NetFixture {
  sim::Simulator simulator;
  SensorNetwork network;

  explicit NetFixture(SensorNetworkParams params = {})
      : network(simulator, std::make_unique<UnitDiskRadio>(30.0), params) {}
};

SensorNetworkParams idealParams() {
  SensorNetworkParams p;
  p.mac = MacKind::kIdeal;
  p.medium.collisions = false;
  return p;
}

TEST(SensorNetwork, AddAndQueryNodes) {
  NetFixture f;
  const NodeId s0 = f.network.addSensor({0, 0});
  const NodeId s1 = f.network.addSensor({20, 0});
  const NodeId g0 = f.network.addGateway({40, 0});
  EXPECT_EQ(f.network.size(), 3u);
  EXPECT_FALSE(f.network.node(s0).isGateway());
  EXPECT_TRUE(f.network.node(g0).isGateway());
  EXPECT_EQ(f.network.neighborsOf(s0), (std::vector<NodeId>{s1}));
  EXPECT_EQ(f.network.neighborsOf(s1), (std::vector<NodeId>{s0, g0}));
  EXPECT_TRUE(f.network.allSensorsCovered());
}

TEST(SensorNetwork, BroadcastReachesNeighborsOnly) {
  NetFixture f(idealParams());
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId b = f.network.addSensor({20, 0});
  const NodeId c = f.network.addSensor({100, 0});  // out of range
  int bGot = 0, cGot = 0;
  f.network.node(b).setReceiveHandler([&](const Packet&, NodeId) { ++bGot; });
  f.network.node(c).setReceiveHandler([&](const Packet&, NodeId) { ++cGot; });

  Packet pkt;
  pkt.kind = PacketKind::kHello;
  pkt.hopDst = kBroadcastId;
  f.network.sendFrom(a, pkt);
  f.simulator.run();
  EXPECT_EQ(bGot, 1);
  EXPECT_EQ(cGot, 0);
}

TEST(SensorNetwork, UnicastAddressingFiltersOthers) {
  NetFixture f(idealParams());
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId b = f.network.addSensor({10, 0});
  const NodeId c = f.network.addSensor({0, 10});  // in range, not addressed
  int bGot = 0, cGot = 0;
  f.network.node(b).setReceiveHandler([&](const Packet&, NodeId) { ++bGot; });
  f.network.node(c).setReceiveHandler([&](const Packet&, NodeId) { ++cGot; });

  Packet pkt;
  pkt.kind = PacketKind::kData;
  pkt.hopDst = b;
  f.network.sendFrom(a, pkt);
  f.simulator.run();
  EXPECT_EQ(bGot, 1);
  EXPECT_EQ(cGot, 0);
  // ...but c still paid RX energy: its radio had to decode the header.
  EXPECT_GT(f.network.node(c).battery().rxJ(), 0.0);
}

TEST(SensorNetwork, PromiscuousModeSeesForeignUnicast) {
  NetFixture f(idealParams());
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId b = f.network.addSensor({10, 0});
  const NodeId spy = f.network.addSensor({0, 10});
  int spyGot = 0;
  f.network.node(spy).setReceiveHandler(
      [&](const Packet&, NodeId) { ++spyGot; });
  f.network.medium().setPromiscuous(spy, true);

  Packet pkt;
  pkt.kind = PacketKind::kData;
  pkt.hopDst = b;
  f.network.sendFrom(a, pkt);
  f.simulator.run();
  EXPECT_EQ(spyGot, 1);
}

TEST(SensorNetwork, TxChargesSenderRxChargesListeners) {
  NetFixture f(idealParams());
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId b = f.network.addSensor({10, 0});
  Packet pkt;
  pkt.kind = PacketKind::kHello;
  pkt.hopDst = kBroadcastId;
  f.network.sendFrom(a, pkt);
  f.simulator.run();
  const auto& ep = f.network.energyParams();
  EXPECT_NEAR(f.network.node(a).battery().txJ(),
              ep.txCost(Packet::kHeaderBytes * 8, 30.0), 1e-12);
  EXPECT_NEAR(f.network.node(b).battery().rxJ(),
              ep.rxCost(Packet::kHeaderBytes * 8), 1e-12);
}

TEST(SensorNetwork, NodeDiesWhenBatteryDrains) {
  SensorNetworkParams params = idealParams();
  params.energy.initialEnergyJ = 2e-5;  // ~3 transmissions' worth
  NetFixture f(params);
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId b = f.network.addSensor({10, 0});

  Packet pkt;
  pkt.kind = PacketKind::kHello;
  pkt.hopDst = kBroadcastId;
  for (int i = 0; i < 10; ++i) {
    Packet copy = pkt;
    copy.uid = 0;
    f.network.sendFrom(a, copy);
    f.simulator.run();
  }
  // The sender burnt through its battery and stopped transmitting; the
  // listener only paid RX for the frames that actually went out.
  EXPECT_FALSE(f.network.node(a).alive());
  EXPECT_TRUE(f.network.node(b).alive());
  EXPECT_TRUE(f.network.firstSensorDeathTime().has_value());
  EXPECT_EQ(f.network.aliveSensorCount(), 1u);
}

TEST(SensorNetwork, DeadNodeNeitherSendsNorReceives) {
  NetFixture f(idealParams());
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId b = f.network.addSensor({10, 0});
  int got = 0;
  f.network.node(b).setReceiveHandler([&](const Packet&, NodeId) { ++got; });
  f.network.node(b).kill(f.simulator.now());

  Packet pkt;
  pkt.kind = PacketKind::kHello;
  pkt.hopDst = kBroadcastId;
  f.network.sendFrom(a, pkt);
  f.simulator.run();
  EXPECT_EQ(got, 0);

  f.network.node(a).kill(f.simulator.now());
  f.network.sendFrom(a, pkt);
  f.simulator.run();
  EXPECT_EQ(f.network.stats().framesByKind().count(PacketKind::kHello), 1u);
}

TEST(Medium, CollisionCorruptsOverlap) {
  SensorNetworkParams params;
  params.mac = MacKind::kIdeal;  // both transmit in the same instant
  params.medium.collisions = true;
  params.medium.unicastArq = false;
  NetFixture f(params);
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId b = f.network.addSensor({20, 0});
  const NodeId mid = f.network.addSensor({10, 0});
  int got = 0;
  f.network.node(mid).setReceiveHandler(
      [&](const Packet&, NodeId) { ++got; });

  Packet pkt;
  pkt.kind = PacketKind::kHello;
  pkt.hopDst = kBroadcastId;
  f.network.sendFrom(a, pkt);
  Packet pkt2 = pkt;
  pkt2.uid = 0;
  f.network.sendFrom(b, pkt2);  // same tick → simultaneous start → jam
  f.simulator.run();
  EXPECT_EQ(got, 0);
  EXPECT_GE(f.network.medium().framesCorrupted(), 1u);
}

TEST(Medium, CaptureEffectKeepsLockedFrame) {
  SensorNetworkParams params;
  params.mac = MacKind::kIdeal;
  params.medium.collisions = true;
  params.medium.unicastArq = false;
  NetFixture f(params);
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId b = f.network.addSensor({20, 0});
  const NodeId mid = f.network.addSensor({10, 0});
  int got = 0;
  f.network.node(mid).setReceiveHandler(
      [&](const Packet&, NodeId) { ++got; });

  Packet pkt;
  pkt.kind = PacketKind::kHello;
  pkt.hopDst = kBroadcastId;
  f.network.sendFrom(a, pkt);
  // Second transmission starts 100 us later, mid-frame: the receiver stays
  // locked on the first frame and decodes it.
  f.simulator.schedule(sim::Time::microseconds(100), [&] {
    Packet late;
    late.kind = PacketKind::kHello;
    late.hopDst = kBroadcastId;
    f.network.sendFrom(b, late);
  });
  f.simulator.run();
  EXPECT_EQ(got, 1);
}

TEST(Medium, ArqRetransmitsThroughTransientLoss) {
  // Lossy fringe link: without ARQ most frames die; with ARQ nearly all
  // arrive.
  auto runWith = [](bool arq) {
    sim::Simulator simulator;
    SensorNetworkParams params;
    params.mac = MacKind::kIdeal;
    params.medium.unicastArq = arq;
    params.seed = 7;
    SensorNetwork network(simulator,
                          std::make_unique<LogDistanceRadio>(10.0, 30.0),
                          params);
    const NodeId a = network.addSensor({0, 0});
    const NodeId b = network.addSensor({15, 0});  // fringe: p ≈ 0.56 per try
    int got = 0;
    network.node(b).setReceiveHandler([&](const Packet&, NodeId) { ++got; });
    for (int i = 0; i < 50; ++i) {
      simulator.schedule(sim::Time::milliseconds(10 * (i + 1)), [&network, a, b] {
        Packet pkt;
        pkt.kind = PacketKind::kData;
        pkt.hopDst = b;
        network.sendFrom(a, pkt);
      });
    }
    simulator.run();
    return got;
  };
  const int withoutArq = runWith(false);
  const int withArq = runWith(true);
  EXPECT_GT(withArq, withoutArq);
  EXPECT_GE(withArq, 40);  // 4 tries at ~56% each ≈ 96%
}

TEST(Medium, ChannelBusyDuringTransmission) {
  NetFixture f(idealParams());
  const NodeId a = f.network.addSensor({0, 0});
  f.network.addSensor({10, 0});
  Packet pkt;
  pkt.kind = PacketKind::kData;
  pkt.hopDst = kBroadcastId;
  pkt.payload.resize(100);
  f.network.sendFrom(a, pkt);
  EXPECT_TRUE(f.network.medium().channelBusy(a));
  f.simulator.run();
  EXPECT_FALSE(f.network.medium().channelBusy(a));
}

TEST(Medium, LongRangeBypassesRadioRange) {
  NetFixture f(idealParams());
  const NodeId a = f.network.addSensor({0, 0});
  const NodeId g = f.network.addGateway({500, 0});  // far outside 30 m
  int got = 0;
  f.network.node(g).setReceiveHandler([&](const Packet&, NodeId) { ++got; });

  Packet pkt;
  pkt.kind = PacketKind::kData;
  f.network.sendLongRangeFrom(a, g, pkt);
  f.simulator.run();
  EXPECT_EQ(got, 1);
  // Multipath amplifier at 500 m dominates the budget.
  const auto& ep = f.network.energyParams();
  EXPECT_NEAR(f.network.node(a).battery().txJ(),
              ep.txCost(Packet::kHeaderBytes * 8, 500.0), 1e-9);
}

TEST(SensorNetwork, GatewayRepositioning) {
  NetFixture f;
  const NodeId g = f.network.addGateway({0, 0});
  f.network.setGatewayPosition(g, {50, 50});
  EXPECT_EQ(f.network.node(g).position(), (Point{50, 50}));
  const NodeId s = f.network.addSensor({0, 0});
  EXPECT_THROW(f.network.setGatewayPosition(s, {1, 1}), PreconditionError);
}

// --- deployment ----------------------------------------------------------------

TEST(Deployment, UniformIsConnectedAndInBounds) {
  Rng rng(5);
  DeploymentParams p;
  p.sensorCount = 80;
  const Deployment d = uniformDeployment(p, rng);
  EXPECT_EQ(d.sensors.size(), 80u);
  EXPECT_EQ(d.gateways.size(), 3u);
  for (const Point& pt : d.sensors) {
    EXPECT_GE(pt.x, 0.0);
    EXPECT_LE(pt.x, p.width);
    EXPECT_GE(pt.y, 0.0);
    EXPECT_LE(pt.y, p.height);
  }
  EXPECT_TRUE(isConnected(d, p.radioRange));
}

TEST(Deployment, GridAndClusteredConnected) {
  Rng rng(6);
  DeploymentParams p;
  p.sensorCount = 64;
  EXPECT_TRUE(isConnected(gridDeployment(p, rng), p.radioRange));
  // Clusters leave inter-cluster gaps; a wider radio is realistic there.
  p.radioRange = 45.0;
  EXPECT_TRUE(isConnected(clusteredDeployment(p, 4, rng), p.radioRange));
}

TEST(Deployment, DisconnectedDetected) {
  Deployment d;
  d.sensors = {{0, 0}, {100, 100}};
  d.gateways = {{5, 5}};
  EXPECT_FALSE(isConnected(d, 10.0));
  EXPECT_FALSE(sensorsConnected(d.sensors, 10.0));
  EXPECT_TRUE(sensorsConnected(d.sensors, 200.0));
}

TEST(Deployment, PlacesAttachedCheck) {
  const std::vector<Point> sensors = {{0, 0}, {10, 0}};
  EXPECT_TRUE(placesAttached({{5, 0}}, sensors, 6.0));
  EXPECT_FALSE(placesAttached({{50, 50}}, sensors, 6.0));
}

TEST(Deployment, ImpossibleLayoutThrows) {
  Rng rng(7);
  DeploymentParams p;
  p.sensorCount = 5;
  p.width = 10000.0;
  p.height = 10000.0;
  p.radioRange = 10.0;
  p.maxAttempts = 3;
  EXPECT_THROW(uniformDeployment(p, rng), PreconditionError);
}

// --- mobility -----------------------------------------------------------------

TEST(Mobility, StaticScheduleNeverMoves) {
  StaticSchedule schedule({0, 1, 2}, 5);
  for (std::uint32_t r = 0; r < 10; ++r) {
    EXPECT_EQ(schedule.placeOf(0, r), 0u);
    EXPECT_EQ(schedule.placeOf(2, r), 2u);
    EXPECT_TRUE(schedule.movedGateways(r).empty());
  }
}

TEST(Mobility, ScriptedScheduleFollowsScript) {
  // Table 1's scenario: A,B,C → A,C,D → C,D,E  (places 0..4 = A..E).
  ScriptedSchedule schedule({{0, 1, 2}, {0, 3, 2}, {4, 3, 2}}, 5);
  EXPECT_EQ(schedule.placeOf(1, 0), 1u);
  EXPECT_EQ(schedule.placeOf(1, 1), 3u);  // B → D
  EXPECT_EQ(schedule.movedGateways(1), (std::vector<std::size_t>{1}));
  EXPECT_EQ(schedule.movedGateways(2), (std::vector<std::size_t>{0}));
  // Past the script's end the last round holds.
  EXPECT_EQ(schedule.placeOf(0, 9), 4u);
  EXPECT_TRUE(schedule.movedGateways(3).empty());
}

TEST(Mobility, RotatingRandomMovesOnePerRound) {
  RotatingRandomSchedule schedule(3, 6, 42);
  for (std::uint32_t r = 1; r <= 20; ++r) {
    const auto moved = schedule.movedGateways(r);
    EXPECT_LE(moved.size(), 1u);
    // No two gateways share a place.
    std::set<std::size_t> places;
    for (std::size_t g = 0; g < 3; ++g) places.insert(schedule.placeOf(g, r));
    EXPECT_EQ(places.size(), 3u);
  }
}

TEST(Mobility, RotatingRandomEventuallyVisitsAllPlaces) {
  RotatingRandomSchedule schedule(2, 4, 11);
  std::set<std::size_t> visited;
  for (std::uint32_t r = 0; r < 60; ++r)
    for (std::size_t g = 0; g < 2; ++g) visited.insert(schedule.placeOf(g, r));
  EXPECT_EQ(visited.size(), 4u);  // MLR table convergence precondition
}

TEST(Mobility, RandomAccessAfterAdvance) {
  RotatingRandomSchedule schedule(2, 5, 3);
  const auto late = schedule.placeOf(0, 10);
  EXPECT_EQ(schedule.placeOf(0, 10), late);  // history is stable
  (void)schedule.placeOf(1, 2);              // going back works
}

}  // namespace
}  // namespace wmsn::net
