#include <gtest/gtest.h>

#include "core/wmsn.hpp"
#include "util/require.hpp"

namespace wmsn::attacks {
namespace {

/// Shared scenario shape for attack tests: moderately sized network, fixed
/// seed, a few rounds — enough for the attack to bite, small enough to stay
/// fast.
core::ScenarioConfig baseConfig(core::ProtocolKind protocol) {
  core::ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = 160;
  cfg.height = 160;
  cfg.rounds = 4;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = 7;
  return cfg;
}

core::RunResult runAttack(core::ProtocolKind protocol, AttackKind kind,
                          std::size_t attackers, double dropProbability = 1.0) {
  core::ScenarioConfig cfg = baseConfig(protocol);
  cfg.attack.kind = kind;
  cfg.attack.dropProbability = dropProbability;
  cfg.attackerCount = attackers;
  return core::runScenario(cfg);
}

TEST(Attacks, BaselinesDeliverWell) {
  const auto mlr = core::runScenario(baseConfig(core::ProtocolKind::kMlr));
  const auto sec = core::runScenario(baseConfig(core::ProtocolKind::kSecMlr));
  EXPECT_GT(mlr.deliveryRatio, 0.95);
  EXPECT_GT(sec.deliveryRatio, 0.90);
}

TEST(Attacks, SelectiveForwardingDegradesBoth) {
  const auto mlr =
      runAttack(core::ProtocolKind::kMlr, AttackKind::kSelectiveForward, 6);
  EXPECT_LT(mlr.deliveryRatio, 0.95);
  EXPECT_GT(mlr.attackerStats.framesDropped, 0u);
}

TEST(Attacks, SinkholeCollapsesMlrButNotSecMlr) {
  const auto mlr =
      runAttack(core::ProtocolKind::kMlr, AttackKind::kSinkhole, 3);
  const auto sec =
      runAttack(core::ProtocolKind::kSecMlr, AttackKind::kSinkhole, 3);
  // The sinkhole forges hop-count-0 lures into MLR's cost field and
  // swallows what it attracts.
  EXPECT_LT(mlr.deliveryRatio, 0.80);
  // SecMLR's data plane uses gateway-authenticated paths; the lure still
  // skews hop counts but attracted traffic needs a *physically real* path
  // through the attacker, so delivery holds up far better.
  EXPECT_GT(sec.deliveryRatio, mlr.deliveryRatio + 0.10);
}

TEST(Attacks, SpoofedMoveRedirectsMlrOnly) {
  const auto mlr =
      runAttack(core::ProtocolKind::kMlr, AttackKind::kSpoofMove, 2);
  const auto sec =
      runAttack(core::ProtocolKind::kSecMlr, AttackKind::kSpoofMove, 2);
  EXPECT_LT(mlr.deliveryRatio, 0.85);
  // TESLA neutralises the forgery: the spoofed interval's key is never
  // disclosed by the real gateway, so the buffered fake expires unverified
  // and the routing state stays clean — delivery is unaffected.
  EXPECT_GT(sec.deliveryRatio, 0.90);
  EXPECT_GT(mlr.attackerStats.framesForged, 0u);
}

TEST(Attacks, HelloFloodPoisonsMlrOnly) {
  const auto mlr =
      runAttack(core::ProtocolKind::kMlr, AttackKind::kHelloFlood, 1);
  const auto sec =
      runAttack(core::ProtocolKind::kSecMlr, AttackKind::kHelloFlood, 1);
  EXPECT_LT(mlr.deliveryRatio, 0.75);  // asymmetric links eat the traffic
  EXPECT_GT(sec.deliveryRatio, 0.90);
  EXPECT_GT(mlr.attackerStats.framesForged, 0u);
}

TEST(Attacks, SybilFakeGatewaysFoolMlrOnly) {
  const auto mlr = runAttack(core::ProtocolKind::kMlr, AttackKind::kSybil, 2);
  const auto sec =
      runAttack(core::ProtocolKind::kSecMlr, AttackKind::kSybil, 2);
  EXPECT_LT(mlr.deliveryRatio, 0.90);
  EXPECT_GT(sec.deliveryRatio, 0.90);  // unknown ids have no commitments
  EXPECT_GT(sec.rejectedTesla, 0u);
}

TEST(Attacks, ReplayInflatesMlrDuplicatesSecMlrRejects) {
  const auto mlr = runAttack(core::ProtocolKind::kMlr, AttackKind::kReplay, 2);
  const auto sec =
      runAttack(core::ProtocolKind::kSecMlr, AttackKind::kReplay, 2);
  EXPECT_GT(mlr.attackerStats.framesReplayed, 0u);
  // MLR gateways re-accept replayed frames (visible as duplicate
  // deliveries); SecMLR's counter window rejects them.
  EXPECT_GT(mlr.duplicateDeliveries, 0u);
  EXPECT_GT(sec.rejectedReplays, 0u);
  EXPECT_EQ(sec.duplicateDeliveries, 0u);
}

TEST(Attacks, WormholeTunnelsAndDrops) {
  const auto mlr =
      runAttack(core::ProtocolKind::kMlr, AttackKind::kWormhole, 2);
  EXPECT_GT(mlr.attackerStats.framesTunnelled, 0u);
  // The wormhole shortens perceived distances and the endpoints swallow
  // attracted data — delivery suffers.
  EXPECT_LT(mlr.deliveryRatio, 0.95);
}

TEST(Attacks, AckSpoofBlocksReliableModeHealing) {
  // Reliable MLR + a dead relay: without the attacker, senders detect the
  // dead link (no ACKs) and reroute; the ACK spoofer keeps the dead route
  // alive.
  auto configure = [](bool withAttacker) {
    core::ScenarioConfig cfg = baseConfig(core::ProtocolKind::kMlr);
    cfg.mlr.reliableForwarding = true;
    cfg.rounds = 5;
    if (withAttacker) {
      cfg.attack.kind = AttackKind::kAckSpoof;
      cfg.attackerCount = 4;
    }
    return cfg;
  };

  // Kill a batch of relays after round 1 by failing one gateway AND some
  // sensors — simplest reproducible stressor: fail gateway 0 at round 2.
  core::ScenarioConfig honest = configure(false);
  honest.failures.push_back({2, 0});
  core::ScenarioConfig attacked = configure(true);
  attacked.failures.push_back({2, 0});

  const auto honestRun = core::runScenario(honest);
  const auto attackedRun = core::runScenario(attacked);
  EXPECT_GT(attackedRun.attackerStats.framesForged, 0u);
  // Spoofed ACKs suppress route invalidation → delivery is no better (and
  // typically worse) than the honest run.
  EXPECT_LE(attackedRun.deliveryRatio, honestRun.deliveryRatio + 0.02);
}

TEST(Attacks, InstallerRejectsGatewayCompromise) {
  core::ScenarioConfig cfg = baseConfig(core::ProtocolKind::kMlr);
  auto scenario = core::buildScenario(cfg);
  AttackPlan plan;
  plan.kind = AttackKind::kSelectiveForward;
  plan.attackers = {scenario->network->gatewayIds().front()};
  EXPECT_THROW(installAttack(*scenario->stack, *scenario->network, plan,
                             VictimProtocol::kMlr, {}, {}),
               PreconditionError);
}

TEST(Attacks, WormholeNeedsTwoEndpoints) {
  core::ScenarioConfig cfg = baseConfig(core::ProtocolKind::kMlr);
  cfg.attack.kind = AttackKind::kWormhole;
  cfg.attackerCount = 3;
  EXPECT_THROW(core::runScenario(cfg), PreconditionError);
}

TEST(Attacks, ToStringCoversAllKinds) {
  EXPECT_STREQ(toString(AttackKind::kSinkhole), "sinkhole");
  EXPECT_STREQ(toString(AttackKind::kHelloFlood), "hello-flood");
  EXPECT_STREQ(toString(AttackKind::kAckSpoof), "ack-spoofing");
}

}  // namespace
}  // namespace wmsn::attacks
