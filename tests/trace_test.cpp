// Tests for the causal packet-trace pipeline: deterministic head sampling,
// the flight-recorder ring and its crash dumps, Chrome-trace JSONL
// round-tripping, thread-count invariance of merged exports, and the trace
// analyzer's agreement with the metrics the simulation reports directly.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "core/wmsn.hpp"
#include "obs/packet_trace.hpp"
#include "obs/trace_analyze.hpp"
#include "util/require.hpp"

namespace wmsn {
namespace {

core::ScenarioConfig traceConfig() {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 40;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = cfg.height = 120.0;
  cfg.rounds = 3;
  cfg.packetsPerSensorPerRound = 1;
  cfg.seed = 5;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- head sampling -----------------------------------------------------------

TEST(TraceSampling, DeterministicAndMonotone) {
  // Same uid, same answer, every time.
  for (std::uint64_t uid = 1; uid < 200; ++uid)
    EXPECT_EQ(obs::traceSampled(uid, 300), obs::traceSampled(uid, 300));
  // Permille 1000 keeps everything; uid 0 is always kept.
  for (std::uint64_t uid = 0; uid < 200; ++uid)
    EXPECT_TRUE(obs::traceSampled(uid, 1000));
  EXPECT_TRUE(obs::traceSampled(0, 1));
  // Raising the rate never drops a previously sampled uid (head sampling is
  // monotone in permille) and the sampled fraction lands near the target.
  std::size_t at100 = 0;
  std::size_t at500 = 0;
  for (std::uint64_t uid = 1; uid <= 5000; ++uid) {
    const bool s100 = obs::traceSampled(uid, 100);
    const bool s500 = obs::traceSampled(uid, 500);
    if (s100) {
      ++at100;
      EXPECT_TRUE(s500) << "uid " << uid << " sampled at 100 but not 500";
    }
    if (s500) ++at500;
  }
  EXPECT_NEAR(static_cast<double>(at100) / 5000.0, 0.10, 0.03);
  EXPECT_NEAR(static_cast<double>(at500) / 5000.0, 0.50, 0.05);
}

TEST(TraceSampling, TracerRetainsOnlySampledUids) {
  obs::PacketTraceOptions opt;
  opt.retainSpans = true;
  opt.samplePermille = 400;
  obs::PacketTracer tracer(opt);
  std::set<std::uint64_t> expected;
  for (std::uint64_t uid = 1; uid <= 300; ++uid) {
    tracer.emitSpan(obs::TraceSpanKind::kOriginate, 1000 * uid, uid, 3);
    if (obs::traceSampled(uid, 400)) expected.insert(uid);
  }
  std::set<std::uint64_t> retained;
  for (const auto& span : tracer.log().spans) retained.insert(span.uid);
  EXPECT_EQ(retained, expected);
  // uid 0 network-scope events always retained.
  tracer.emitSpan(obs::TraceSpanKind::kGatewayEvict, 7, 0, 3, 41);
  EXPECT_EQ(tracer.log().spans.back().kind,
            obs::TraceSpanKind::kGatewayEvict);
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingKeepsTheMostRecentSpans) {
  obs::FlightRecorder& ring = obs::FlightRecorder::current();
  ring.clear();
  const std::size_t total = obs::FlightRecorder::kCapacity + 37;
  for (std::size_t i = 0; i < total; ++i) {
    obs::PacketSpan span;
    span.uid = i + 1;
    span.timeUs = static_cast<std::int64_t>(i);
    ring.push(span);
  }
  EXPECT_EQ(ring.size(), obs::FlightRecorder::kCapacity);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), obs::FlightRecorder::kCapacity);
  // Oldest-first, ending at the last pushed span.
  EXPECT_EQ(spans.front().uid, total - obs::FlightRecorder::kCapacity + 1);
  EXPECT_EQ(spans.back().uid, total);
  ring.clear();
}

TEST(FlightRecorder, InvariantFailureDumpsTheRing) {
  const std::string path = "/tmp/wmsn_flight_invariant_test.jsonl";
  std::remove(path.c_str());
  obs::setFlightRecorderPath(path);
  obs::FlightRecorder::current().clear();
  obs::PacketSpan span;
  span.uid = 42;
  span.node = 7;
  span.kind = obs::TraceSpanKind::kDrop;
  span.reason = obs::TraceDropReason::kQueueOverflow;
  obs::FlightRecorder::current().push(span);

  // invariantFailed is the plain function behind WMSN_INVARIANT, so this
  // fires in every build configuration, not just -DWMSN_INVARIANTS=ON.
  EXPECT_THROW(detail::invariantFailed("x == y", "trace_test.cpp", 1, ""),
               InvariantError);

  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("flight-recorder"), std::string::npos);
  EXPECT_NE(dump.find("invariant"), std::string::npos);
  const auto parsed = obs::parseTraceJsonl(dump);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].uid, 42u);
  EXPECT_EQ(parsed[0].reason, obs::TraceDropReason::kQueueOverflow);

  obs::setFlightRecorderPath("");  // disarm for the rest of the suite
  obs::FlightRecorder::current().clear();
  std::remove(path.c_str());
}

// --- end-to-end span pipeline ------------------------------------------------

TEST(PacketTrace, RunEmitsLifecycleSpansAndJsonlRoundTrips) {
  auto cfg = traceConfig();
  cfg.obs.traceSpans = true;
  const auto result = core::runScenario(cfg);
  ASSERT_TRUE(result.observations);
  const obs::PacketTraceLog& log = result.observations->trace;
  ASSERT_FALSE(log.spans.empty());
  EXPECT_EQ(log.streamId, cfg.seed);

  std::set<obs::TraceSpanKind> kinds;
  for (const auto& span : log.spans) kinds.insert(span.kind);
  EXPECT_TRUE(kinds.count(obs::TraceSpanKind::kOriginate));
  EXPECT_TRUE(kinds.count(obs::TraceSpanKind::kEnqueue));
  EXPECT_TRUE(kinds.count(obs::TraceSpanKind::kMacTx));
  EXPECT_TRUE(kinds.count(obs::TraceSpanKind::kDeliver));

  // The Chrome-trace JSONL is lossless: parsing it back yields the exact
  // span sequence.
  const auto parsed = obs::parseTraceJsonl(log.jsonl());
  EXPECT_EQ(parsed, log.spans);
}

TEST(PacketTrace, TracingDoesNotPerturbTheRun) {
  auto bare = traceConfig();
  auto traced = traceConfig();
  traced.obs.traceSpans = true;
  const auto a = core::runScenario(bare);
  const auto b = core::runScenario(traced);
  // Span emission draws no RNG and schedules nothing: every simulation
  // outcome must be identical with tracing on.
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_DOUBLE_EQ(a.deliveryRatio, b.deliveryRatio);
  EXPECT_DOUBLE_EQ(a.meanLatencyMs, b.meanLatencyMs);
}

TEST(PacketTrace, SampledSpansAreASubsetOfFullTrace) {
  auto full = traceConfig();
  full.obs.traceSpans = true;
  auto sampled = traceConfig();
  sampled.obs.traceSpans = true;
  sampled.obs.traceSamplePermille = 250;
  const auto a = core::runScenario(full);
  const auto b = core::runScenario(sampled);
  ASSERT_TRUE(a.observations && b.observations);
  const auto& fullSpans = a.observations->trace.spans;
  const auto& sampledSpans = b.observations->trace.spans;
  ASSERT_FALSE(sampledSpans.empty());
  EXPECT_LT(sampledSpans.size(), fullSpans.size());
  // Every sampled span appears in the full trace, in the same order.
  std::size_t cursor = 0;
  for (const auto& span : sampledSpans) {
    while (cursor < fullSpans.size() && !(fullSpans[cursor] == span)) ++cursor;
    ASSERT_LT(cursor, fullSpans.size())
        << "sampled span missing from the full trace";
    ++cursor;
  }
  // And the sampling decision matches the pure predicate.
  for (const auto& span : sampledSpans)
    EXPECT_TRUE(obs::traceSampled(span.uid, 250));
}

TEST(PacketTrace, MergedExportIsThreadCountInvariant) {
  auto cfg = traceConfig();
  cfg.obs.traceSpans = true;
  const auto configs = core::expandSeeds(cfg, 4);
  const auto one = core::runScenariosParallel(configs, 1);
  const auto four = core::runScenariosParallel(configs, 4);
  ASSERT_EQ(one.size(), four.size());
  std::string mergedOne;
  std::string mergedFour;
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_TRUE(one[i].observations && four[i].observations);
    mergedOne += one[i].observations->trace.jsonl();
    mergedFour += four[i].observations->trace.jsonl();
  }
  EXPECT_FALSE(mergedOne.empty());
  EXPECT_EQ(mergedOne, mergedFour);
}

// --- analyzer ----------------------------------------------------------------

TEST(TraceAnalyze, ReconstructsPathsReroutesAndDrops) {
  std::vector<obs::PacketSpan> spans;
  auto add = [&](obs::TraceSpanKind kind, std::int64_t us, std::uint64_t uid,
                 std::uint32_t node, std::uint32_t peer = obs::kTraceNoPeer,
                 obs::TraceDropReason reason = obs::TraceDropReason::kNone,
                 std::uint32_t info = 0) {
    obs::PacketSpan s;
    s.kind = kind;
    s.timeUs = us;
    s.uid = uid;
    s.node = node;
    s.peer = peer;
    s.reason = reason;
    s.info = info;
    spans.push_back(s);
  };
  using K = obs::TraceSpanKind;
  using R = obs::TraceDropReason;
  // Reading 1: 3 -> 5 -> 9 (gateway), rerouted once after an ACK loss.
  add(K::kOriginate, 1000, 1, 3);
  add(K::kEnqueue, 1100, 1, 3, 5);
  add(K::kMacTx, 1200, 1, 3, 5);
  add(K::kRecv, 1300, 1, 5, 3);
  add(K::kForward, 1400, 1, 5, 9);
  add(K::kReroute, 5400, 1, 5, 9, R::kAckExhausted, 1);
  add(K::kMacTx, 5500, 1, 5, 9);
  add(K::kRecv, 5600, 1, 9, 5);
  add(K::kDeliver, 5600, 1, 9, 3, R::kNone, 2);
  // Reading 2: dropped at the MAC queue, never delivered.
  add(K::kOriginate, 2000, 2, 4);
  add(K::kEnqueue, 2100, 2, 4, 5);
  add(K::kDrop, 2100, 2, 4, obs::kTraceNoPeer, R::kQueueOverflow);
  // Network-scope gateway eviction.
  add(K::kGatewayEvict, 3000, 0, 7, 9);

  const obs::TraceAnalysis analysis = obs::analyzeSpans(spans);
  EXPECT_EQ(analysis.readings, 2u);
  EXPECT_EQ(analysis.delivered, 1u);
  EXPECT_EQ(analysis.reroutes, 1u);
  EXPECT_EQ(analysis.routeFlaps, 1u);
  EXPECT_EQ(analysis.dropEvents, 1u);
  EXPECT_EQ(analysis.gatewayEvictions, 1u);
  EXPECT_EQ(analysis.dropsByReason.at("queue-overflow"), 1u);

  ASSERT_EQ(analysis.perReading.size(), 2u);
  const obs::ReadingTrace& r1 = analysis.perReading[0];
  EXPECT_EQ(r1.uid, 1u);
  EXPECT_TRUE(r1.delivered);
  EXPECT_EQ(r1.deliverHops, 2u);
  EXPECT_EQ(r1.path, (std::vector<std::uint32_t>{3, 5, 9}));
  EXPECT_EQ(r1.reroutes, 1u);
  // Detection: last transmission-ish span before the reroute was the
  // kForward at 1400us -> 4.0ms; recovery: reroute 5400us -> deliver 5600us.
  EXPECT_NEAR(r1.detectionMs, 4.0, 1e-9);
  EXPECT_NEAR(r1.recoveryMs, 0.2, 1e-9);

  const obs::ReadingTrace& r2 = analysis.perReading[1];
  EXPECT_FALSE(r2.delivered);
  ASSERT_EQ(r2.drops.size(), 1u);
  EXPECT_EQ(r2.drops[0], R::kQueueOverflow);

  const std::string report = obs::analysisReport(analysis);
  EXPECT_NE(report.find("queue-overflow"), std::string::npos);
}

TEST(TraceAnalyze, PathHopsAgreeWithDeliveryHopsMetric) {
  auto cfg = traceConfig();
  cfg.obs.traceSpans = true;
  cfg.obs.metrics = true;
  const auto result = core::runScenario(cfg);
  ASSERT_TRUE(result.observations);

  const obs::TraceAnalysis analysis =
      obs::analyzeSpans(result.observations->trace.spans);
  obs::MetricsRegistry traceReg;
  obs::fillTraceMetrics(analysis, traceReg);

  const obs::Histogram* traced =
      traceReg.findHistogram("wmsn_trace_path_hops");
  const obs::Histogram* direct = result.observations->metrics.findHistogram(
      "wmsn_delivery_hops", {{"protocol", "mlr"}});
  ASSERT_NE(traced, nullptr);
  ASSERT_NE(direct, nullptr);
  // Full sampling: the analyzer saw every first delivery the traffic stats
  // counted, with the same hop counts — bucket for bucket.
  EXPECT_EQ(analysis.delivered, result.delivered);
  EXPECT_EQ(traced->edges(), direct->edges());
  EXPECT_EQ(traced->counts(), direct->counts());
  EXPECT_EQ(traced->count(), direct->count());
}

TEST(TraceAnalyze, ParserRejectsGarbage) {
  EXPECT_THROW(obs::parseTraceJsonl("{\"name\":\"nonsense\",\"ph\":\"b\"}\n"),
               PreconditionError);
  EXPECT_TRUE(obs::parseTraceJsonl("\n\n").empty());
}

}  // namespace
}  // namespace wmsn
