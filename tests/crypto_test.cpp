#include <gtest/gtest.h>

#include "crypto/ctr.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keystore.hpp"
#include "crypto/sha256.hpp"
#include "crypto/speck.hpp"
#include "crypto/tesla.hpp"
#include "util/bytes.hpp"
#include "util/require.hpp"

namespace wmsn::crypto {
namespace {

Bytes strBytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// --- SHA-256 (FIPS 180-4 test vectors) ---------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(toHex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(toHex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(toHex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(toHex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update(std::string(1, c));
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise the padding paths at 55/56/63/64/65 bytes.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    const std::string msg(n, 'x');
    Sha256 streaming;
    streaming.update(msg.substr(0, n / 2));
    streaming.update(msg.substr(n / 2));
    EXPECT_EQ(streaming.finish(), Sha256::hash(msg)) << "length " << n;
  }
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 h;
  h.update("abc");
  (void)h.finish();
  EXPECT_THROW(h.update("more"), PreconditionError);
  EXPECT_THROW(h.finish(), PreconditionError);
}

// --- HMAC-SHA256 (RFC 4231 test vectors) ---------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = strBytes("Hi There");
  EXPECT_EQ(toHex(HmacSha256::mac(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const Bytes key = strBytes("Jefe");
  const Bytes data = strBytes("what do ya want for nothing?");
  EXPECT_EQ(toHex(HmacSha256::mac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);  // key longer than the block size
  const Bytes data =
      strBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(toHex(HmacSha256::mac(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(PacketMac, VerifyAcceptsGenuineTag) {
  Key key{};
  key.fill(0x42);
  const Bytes msg = strBytes("sensor reading");
  const PacketMac tag = packetMac(key, 7, msg);
  EXPECT_TRUE(verifyPacketMac(key, 7, msg, tag));
}

TEST(PacketMac, RejectsWrongCounterKeyOrMessage) {
  Key key{};
  key.fill(0x42);
  const Bytes msg = strBytes("sensor reading");
  const PacketMac tag = packetMac(key, 7, msg);
  EXPECT_FALSE(verifyPacketMac(key, 8, msg, tag));
  Key other = key;
  other[0] ^= 1;
  EXPECT_FALSE(verifyPacketMac(other, 7, msg, tag));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(verifyPacketMac(key, 7, tampered, tag));
  PacketMac flipped = tag;
  flipped[0] ^= 1;
  EXPECT_FALSE(verifyPacketMac(key, 7, msg, flipped));
}

// --- Speck64/128 (vector from the Speck reference paper) -----------------------

TEST(Speck64, ReferenceVector) {
  // Key words (K3..K0) = 1b1a1918 13121110 0b0a0908 03020100,
  // plaintext (x, y) = (3b726574, 7475432d),
  // ciphertext (x, y) = (8c6fa548, 454e028b).
  Key key = {0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0a, 0x0b,
             0x10, 0x11, 0x12, 0x13, 0x18, 0x19, 0x1a, 0x1b};
  Speck64 cipher(key);
  auto [ex, ey] = cipher.encryptWords(0x3b726574u, 0x7475432du);
  EXPECT_EQ(ex, 0x8c6fa548u);
  EXPECT_EQ(ey, 0x454e028bu);
}

TEST(Speck64, DecryptInvertsEncrypt) {
  Key key{};
  for (std::size_t i = 0; i < key.size(); ++i)
    key[i] = static_cast<std::uint8_t>(i * 7 + 1);
  Speck64 cipher(key);
  for (std::uint8_t fill = 0; fill < 16; ++fill) {
    Speck64::Block block;
    block.fill(fill);
    EXPECT_EQ(cipher.decrypt(cipher.encrypt(block)), block);
  }
}

TEST(Speck64, DifferentKeysDifferentCiphertexts) {
  Key a{}, b{};
  a.fill(1);
  b.fill(2);
  Speck64::Block block{};
  EXPECT_NE(Speck64(a).encrypt(block), Speck64(b).encrypt(block));
}

// --- CTR mode -------------------------------------------------------------------

TEST(SpeckCtr, RoundTripVariousLengths) {
  Key key{};
  key.fill(0x5a);
  SpeckCtr ctr(key);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 24u, 64u, 100u}) {
    Bytes plain(n);
    for (std::size_t i = 0; i < n; ++i)
      plain[i] = static_cast<std::uint8_t>(i);
    const Bytes cipher = ctr.encrypt(99, plain);
    EXPECT_EQ(ctr.decrypt(99, cipher), plain) << "length " << n;
    if (n > 0) {
      EXPECT_NE(cipher, plain);
    }
  }
}

TEST(SpeckCtr, DistinctCountersDistinctKeystreams) {
  Key key{};
  key.fill(0x77);
  SpeckCtr ctr(key);
  const Bytes plain(32, 0);
  EXPECT_NE(ctr.encrypt(1, plain), ctr.encrypt(2, plain));
}

TEST(SpeckCtr, DistinctBlocksWithinMessage) {
  Key key{};
  key.fill(0x77);
  SpeckCtr ctr(key);
  const Bytes plain(16, 0);  // two identical plaintext blocks
  const Bytes cipher = ctr.encrypt(5, plain);
  EXPECT_NE(Bytes(cipher.begin(), cipher.begin() + 8),
            Bytes(cipher.begin() + 8, cipher.end()));
}

// --- KeyStore / counters ----------------------------------------------------------

TEST(KeyStore, DeterministicFromSeed) {
  KeyStore a = KeyStore::fromSeed(99);
  KeyStore b = KeyStore::fromSeed(99);
  EXPECT_EQ(a.pairwiseKey(1, 2), b.pairwiseKey(1, 2));
  EXPECT_EQ(a.broadcastSeedKey(4), b.broadcastSeedKey(4));
}

TEST(KeyStore, DistinctPairsDistinctKeys) {
  KeyStore ks = KeyStore::fromSeed(99);
  EXPECT_NE(ks.pairwiseKey(1, 2), ks.pairwiseKey(2, 1));
  EXPECT_NE(ks.pairwiseKey(1, 2), ks.pairwiseKey(1, 3));
  EXPECT_NE(ks.pairwiseKey(1, 2), ks.broadcastSeedKey(2));
  EXPECT_NE(KeyStore::fromSeed(1).pairwiseKey(1, 2),
            KeyStore::fromSeed(2).pairwiseKey(1, 2));
}

TEST(CounterWindow, AcceptsStrictlyIncreasingOnly) {
  CounterWindow window;
  EXPECT_TRUE(window.acceptAndAdvance(1));
  EXPECT_FALSE(window.acceptAndAdvance(1));  // replay
  EXPECT_TRUE(window.acceptAndAdvance(5));   // gaps are fine
  EXPECT_FALSE(window.acceptAndAdvance(3));  // late/replayed
  EXPECT_EQ(window.last(), 5u);
}

TEST(CounterSource, Monotonic) {
  CounterSource src;
  EXPECT_EQ(src.next(), 1u);
  EXPECT_EQ(src.next(), 2u);
  EXPECT_EQ(src.current(), 2u);
}

// --- TESLA --------------------------------------------------------------------------

TeslaParams testParams() {
  TeslaParams p;
  p.chainLength = 16;
  p.intervalDuration = sim::Time::seconds(1.0);
  p.startTime = sim::Time::zero();
  p.disclosureDelay = 2;
  return p;
}

TEST(TeslaChain, ChainStepsBackToCommitment) {
  Key seed{};
  seed.fill(9);
  TeslaChain chain(seed, 8);
  Key walked = chain.key(7);
  for (int i = 7; i > 0; --i) walked = TeslaChain::step(walked);
  EXPECT_EQ(walked, chain.commitment());
}

TEST(TeslaChain, MacKeyDiffersFromChainKey) {
  Key seed{};
  seed.fill(9);
  TeslaChain chain(seed, 4);
  EXPECT_NE(TeslaChain::macKey(chain.key(1)), chain.key(1));
}

TEST(Tesla, EndToEndAuthenticatedBroadcast) {
  Key seed{};
  seed.fill(3);
  TeslaBroadcaster broadcaster(seed, testParams());
  TeslaReceiver receiver(broadcaster.commitment(), testParams());

  const Bytes payload = strBytes("gateway moved to place 4");
  const sim::Time sendTime = sim::Time::seconds(1.5);  // interval 1
  const auto msg = broadcaster.sign(payload, sendTime);
  EXPECT_EQ(msg.interval, 1u);

  EXPECT_EQ(receiver.onMessage(msg, sendTime + sim::Time::milliseconds(20)),
            TeslaReceiver::Accept::kBuffered);

  // Key for interval 1 becomes disclosable in interval 3.
  const auto disclosed = broadcaster.disclosableKey(sim::Time::seconds(3.2));
  ASSERT_TRUE(disclosed.has_value());
  EXPECT_EQ(disclosed->first, 1u);

  const auto released =
      receiver.onKeyDisclosure(disclosed->first, disclosed->second);
  ASSERT_TRUE(released.has_value());
  ASSERT_EQ(released->size(), 1u);
  EXPECT_EQ((*released)[0], payload);
  EXPECT_EQ(receiver.verifiedThrough(), 1u);
}

TEST(Tesla, SecurityConditionRejectsLateMessages) {
  Key seed{};
  seed.fill(3);
  TeslaBroadcaster broadcaster(seed, testParams());
  TeslaReceiver receiver(broadcaster.commitment(), testParams());

  const auto msg = broadcaster.sign(strBytes("late"), sim::Time::seconds(1.5));
  // Arrives in interval 3 = 1 + disclosureDelay: the key may be public.
  EXPECT_EQ(receiver.onMessage(msg, sim::Time::seconds(3.1)),
            TeslaReceiver::Accept::kUnsafe);
}

TEST(Tesla, ForgedMacDroppedAtDisclosure) {
  Key seed{};
  seed.fill(3);
  TeslaBroadcaster broadcaster(seed, testParams());
  TeslaReceiver receiver(broadcaster.commitment(), testParams());

  auto msg = broadcaster.sign(strBytes("genuine"), sim::Time::seconds(1.5));
  msg.payload = strBytes("tampered");  // payload no longer matches the MAC
  receiver.onMessage(msg, sim::Time::seconds(1.6));

  const auto disclosed = broadcaster.disclosableKey(sim::Time::seconds(3.2));
  ASSERT_TRUE(disclosed.has_value());
  const auto released =
      receiver.onKeyDisclosure(disclosed->first, disclosed->second);
  ASSERT_TRUE(released.has_value());
  EXPECT_TRUE(released->empty());  // forgery silently dropped
}

TEST(Tesla, BogusKeyRejected) {
  Key seed{};
  seed.fill(3);
  TeslaBroadcaster broadcaster(seed, testParams());
  TeslaReceiver receiver(broadcaster.commitment(), testParams());
  Key bogus{};
  bogus.fill(0xee);
  EXPECT_FALSE(receiver.onKeyDisclosure(2, bogus).has_value());
  EXPECT_EQ(receiver.verifiedThrough(), 0u);
}

TEST(Tesla, SkippedIntervalsStillVerify) {
  Key seed{};
  seed.fill(7);
  TeslaBroadcaster broadcaster(seed, testParams());
  TeslaReceiver receiver(broadcaster.commitment(), testParams());

  // Sign in interval 4; receiver hears nothing in 1..3.
  const auto msg = broadcaster.sign(strBytes("hop"), sim::Time::seconds(4.5));
  receiver.onMessage(msg, sim::Time::seconds(4.6));
  const auto disclosed = broadcaster.disclosableKey(sim::Time::seconds(6.5));
  ASSERT_TRUE(disclosed.has_value());
  EXPECT_EQ(disclosed->first, 4u);
  const auto released =
      receiver.onKeyDisclosure(disclosed->first, disclosed->second);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->size(), 1u);
}

TEST(Tesla, SigningInIntervalZeroThrows) {
  Key seed{};
  seed.fill(3);
  TeslaBroadcaster broadcaster(seed, testParams());
  EXPECT_THROW(broadcaster.sign(strBytes("x"), sim::Time::seconds(0.5)),
               PreconditionError);
}

TEST(Tesla, ChainExhaustionThrows) {
  Key seed{};
  seed.fill(3);
  TeslaParams params = testParams();
  params.chainLength = 4;
  TeslaBroadcaster broadcaster(seed, params);
  EXPECT_THROW(broadcaster.sign(strBytes("x"), sim::Time::seconds(10.0)),
               PreconditionError);
}

}  // namespace
}  // namespace wmsn::crypto
