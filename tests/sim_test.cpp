#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/require.hpp"

namespace wmsn::sim {
namespace {

TEST(Time, ArithmeticAndConversions) {
  const Time a = Time::seconds(1.5);
  EXPECT_EQ(a.us, 1'500'000);
  EXPECT_DOUBLE_EQ(a.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(a.millis(), 1500.0);
  EXPECT_EQ((a + Time::milliseconds(500)).us, 2'000'000);
  EXPECT_EQ((a - Time::microseconds(500'000)).us, 1'000'000);
  EXPECT_LT(Time::zero(), a);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time{30}, [&] { fired.push_back(3); });
  q.push(Time{10}, [&] { fired.push_back(1); });
  q.push(Time{20}, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableFifoAtSameTimestamp) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    q.push(Time{5}, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(Time{1}, [&] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time{1}, [&] { fired.push_back(1); });
  const EventId mid = q.push(Time{2}, [&] { fired.push_back(2); });
  q.push(Time{3}, [&] { fired.push_back(3); });
  q.cancel(mid);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), PreconditionError);
  EXPECT_THROW(q.nextTime(), PreconditionError);
}

TEST(Simulator, AdvancesClockToEventTime) {
  Simulator sim;
  Time seen = Time::zero();
  sim.schedule(Time{100}, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.us, 100);
  EXPECT_EQ(sim.now().us, 100);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule(Time{10}, [&] {
    times.push_back(sim.now().us);
    sim.schedule(Time{5}, [&] { times.push_back(sim.now().us); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10, 15}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule(Time{i * 10}, [&] { ++fired; });
  sim.runUntil(Time{50});
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now().us, 50);
  sim.runUntil(Time{100});
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.runUntil(Time{1234});
  EXPECT_EQ(sim.now().us, 1234);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Time{1}, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(Time{2}, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A second run resumes with the remaining event.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(Time{10}, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(Time{10}, [] {});
  sim.run();
  EXPECT_THROW(sim.scheduleAt(Time{5}, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule(Time{-1}, [] {}), PreconditionError);
}

TEST(Simulator, EventLimit) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(Time{i}, [&] { ++fired; });
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator sim;
  sim.schedule(Time{10}, [] {});
  sim.schedule(Time{20}, [] {});
  sim.run(1);
  sim.reset();
  EXPECT_EQ(sim.now().us, 0);
  EXPECT_FALSE(sim.pendingEvents());
  EXPECT_EQ(sim.eventsProcessed(), 0u);
}

TEST(Simulator, CountsEventsProcessed) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(Time{i + 1}, [] {});
  sim.run();
  EXPECT_EQ(sim.eventsProcessed(), 5u);
}

TEST(Simulator, DeterministicInterleaving) {
  // Two identical simulations produce the same event count and final time.
  auto runOnce = [] {
    Simulator sim;
    std::uint64_t sum = 0;
    std::function<void(int)> spawn = [&](int depth) {
      sum += static_cast<std::uint64_t>(sim.now().us);
      if (depth < 6)
        for (int i = 1; i <= 2; ++i)
          sim.schedule(Time{i * 3}, [&spawn, depth] { spawn(depth + 1); });
    };
    sim.schedule(Time{1}, [&] { spawn(0); });
    sim.run();
    return std::make_pair(sum, sim.eventsProcessed());
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace wmsn::sim
