#include <gtest/gtest.h>

#include "crypto/keystore.hpp"
#include "net/sensor_network.hpp"
#include "routing/secmlr.hpp"
#include "util/require.hpp"

namespace wmsn::routing {
namespace {

SecMlrConfig testConfig() {
  SecMlrConfig c;
  c.keySeed = 0x5ec;
  c.tesla.chainLength = 128;
  c.tesla.intervalDuration = sim::Time::seconds(0.5);
  c.tesla.disclosureDelay = 2;
  c.collectWindow = sim::Time::milliseconds(100);
  c.responseWindow = sim::Time::seconds(1.0);
  return c;
}

/// Line of sensors (spacing 20, radio 25) with gateways at both ends.
/// Feasible places: the two end positions plus a spare.
struct SecNet {
  sim::Simulator simulator;
  net::SensorNetwork network;
  NetworkKnowledge knowledge;
  std::unique_ptr<ProtocolStack> stack;
  SecMlrConfig config = testConfig();

  explicit SecNet(std::size_t sensors, MlrParams mlrParams = {})
      : network(simulator, std::make_unique<net::UnitDiskRadio>(25.0),
                netParams()) {
    const double endX = 20.0 * static_cast<double>(sensors);
    for (std::size_t i = 0; i < sensors; ++i)
      network.addSensor({20.0 * static_cast<double>(i), 0.0});
    knowledge.feasiblePlaces = {{-20.0, 0.0}, {endX, 0.0}, {endX / 2, 20.0}};
    knowledge.gatewayIds.push_back(network.addGateway({-20.0, 0.0}));
    knowledge.gatewayIds.push_back(network.addGateway({endX, 0.0}));
    stack = std::make_unique<ProtocolStack>(
        network, knowledge,
        [this, mlrParams](net::SensorNetwork& n, net::NodeId id,
                          const NetworkKnowledge& k) {
          return std::make_unique<SecMlrRouting>(n, id, k, config, mlrParams);
        });
    stack->startAll();
  }

  static net::SensorNetworkParams netParams() {
    net::SensorNetworkParams p;
    p.mac = net::MacKind::kIdeal;
    p.medium.collisions = false;
    return p;
  }

  SecMlrRouting& secAt(net::NodeId id) {
    return dynamic_cast<SecMlrRouting&>(stack->at(id));
  }

  /// Announce initial placement and run until TESLA keys disclose and
  /// tables settle.
  void bootstrap() {
    stack->beginRound(0);
    secAt(knowledge.gatewayIds[0]).announceMove(0, kNoPlace, 0);
    secAt(knowledge.gatewayIds[1]).announceMove(1, kNoPlace, 0);
    run(3.0);  // interval 1 signing + delay-2 disclosure ≈ 2 s
  }

  void run(double seconds) {
    simulator.runUntil(simulator.now() + sim::Time::seconds(seconds));
  }
};

TEST(SecMlr, MoveAppliesOnlyAfterKeyDisclosure) {
  SecNet net(4);
  net.stack->beginRound(0);
  net.secAt(net.knowledge.gatewayIds[0]).announceMove(0, kNoPlace, 0);
  // Announcement is signed in interval 1 (0.5 s) and flooded; before the
  // key discloses (interval 3 = 1.5 s) no table entry may exist.
  net.run(1.0);  // t = 1.0 s: flood seen, key still secret
  EXPECT_TRUE(net.secAt(1).occupancy().empty());
  EXPECT_EQ(net.secAt(1).knownEntryCount(), 0u);
  net.run(1.5);  // t = 2.5 s: key disclosed and verified
  EXPECT_TRUE(net.secAt(1).occupancy().contains(0));
  EXPECT_GE(net.secAt(1).knownEntryCount(), 1u);
}

TEST(SecMlr, EndToEndSecureDelivery) {
  SecNet net(4);
  net.bootstrap();
  net.stack->at(2).originate(Bytes(24, 0x42));
  net.run(3.0);
  EXPECT_EQ(net.network.stats().delivered(), 1u);
  EXPECT_EQ(net.network.stats().generated(), 1u);
}

TEST(SecMlr, SessionReusedForFollowUpPackets) {
  SecNet net(4);
  net.bootstrap();
  net.stack->at(2).originate(Bytes(24, 1));
  net.run(3.0);
  const auto rreqs =
      net.network.stats().framesByKind().at(net::PacketKind::kRreq);
  net.stack->at(2).originate(Bytes(24, 2));
  net.stack->at(2).originate(Bytes(24, 3));
  net.run(2.0);
  EXPECT_EQ(net.network.stats().framesByKind().at(net::PacketKind::kRreq),
            rreqs);  // no new discovery
  EXPECT_EQ(net.network.stats().delivered(), 3u);
}

TEST(SecMlr, ChoosesNearGateway) {
  SecNet net(5);
  net.bootstrap();
  net.stack->at(0).originate(Bytes(24, 1));  // adjacent to gateway 0
  net.stack->at(4).originate(Bytes(24, 2));  // adjacent to gateway 1
  net.run(4.0);
  EXPECT_EQ(net.network.stats().delivered(), 2u);
  EXPECT_EQ(net.network.stats().perGatewayDeliveries().size(), 2u);
  EXPECT_DOUBLE_EQ(net.network.stats().hopStats().mean(), 1.0);
}

TEST(SecMlr, ReplayedDataRejectedAtGateway) {
  SecNet net(3);
  net.bootstrap();
  net.stack->at(1).originate(Bytes(24, 1));
  net.run(3.0);
  ASSERT_EQ(net.network.stats().delivered(), 1u);

  // Capture what the gateway's neighbour would forward and replay it: the
  // simplest replay is re-sending the source's own frame. Craft it by
  // asking the source to re-encrypt with an OLD counter — equivalently,
  // re-inject the identical wire bytes.
  // We emulate an on-air replay by having node 1 re-send its last DATA
  // frame verbatim via the raw network interface.
  auto& gwStats = net.secAt(net.knowledge.gatewayIds[0]);
  const auto rejectedBefore = gwStats.rejectedReplays() +
                              net.secAt(net.knowledge.gatewayIds[1])
                                  .rejectedReplays();

  // Construct a replay: encode a SecDataMsg with counter 1 (already used).
  crypto::KeyStore ks = crypto::KeyStore::fromSeed(net.config.keySeed);
  SecDataMsg msg;
  msg.source = 1;
  // Find which gateway delivered.
  const auto gw = net.network.stats().perGatewayDeliveries().begin()->first;
  msg.gateway = static_cast<std::uint16_t>(gw);
  msg.immediateSender = 1;
  msg.immediateReceiver = static_cast<std::uint16_t>(gw);
  msg.dataSeq = 1;
  msg.counter = 1;  // stale
  const crypto::Key key =
      ks.pairwiseKey(1, static_cast<std::uint16_t>(gw));
  msg.encData = crypto::SpeckCtr(key).encrypt(msg.counter, Bytes(24, 1));
  msg.mac = crypto::packetMac(key, msg.counter, msg.macInput());

  net::Packet pkt;
  pkt.kind = net::PacketKind::kData;
  pkt.origin = 1;
  pkt.hopDst = gw;
  pkt.payload = msg.encode();
  // The replayer must be within radio range of the gateway it targets.
  const net::NodeId replayer = gw == net.knowledge.gatewayIds[0] ? 0u : 2u;
  net.network.sendFrom(replayer, pkt);
  net.run(1.0);

  const auto rejectedAfter = net.secAt(net.knowledge.gatewayIds[0])
                                 .rejectedReplays() +
                             net.secAt(net.knowledge.gatewayIds[1])
                                 .rejectedReplays();
  EXPECT_EQ(rejectedAfter, rejectedBefore + 1);
  EXPECT_EQ(net.network.stats().duplicateDeliveries(), 0u);
}

TEST(SecMlr, ForgedMacRejectedAtGateway) {
  SecNet net(3);
  net.bootstrap();

  SecDataMsg msg;
  msg.source = 1;
  msg.gateway = static_cast<std::uint16_t>(net.knowledge.gatewayIds[0]);
  msg.immediateSender = 1;
  msg.immediateReceiver = msg.gateway;
  msg.counter = 50;
  msg.encData = Bytes(24, 0xee);
  msg.mac.fill(0x00);  // garbage tag

  net::Packet pkt;
  pkt.kind = net::PacketKind::kData;
  pkt.hopDst = net.knowledge.gatewayIds[0];
  pkt.payload = msg.encode();
  net.network.sendFrom(0, pkt);  // node 0 is in range of gateway 0
  net.run(1.0);

  EXPECT_EQ(net.secAt(net.knowledge.gatewayIds[0]).rejectedMacs(), 1u);
  EXPECT_EQ(net.network.stats().delivered(), 0u);
}

TEST(SecMlr, ForgedMoveNotificationNeverApplies) {
  SecNet net(4);
  net.bootstrap();
  ASSERT_TRUE(net.secAt(2).occupancy().contains(0));

  // Forge: "gateway 0 moved to place 2" with a random MAC, signed for a
  // plausible future interval.
  GatewayMoveMsg move;
  move.gateway = static_cast<std::uint16_t>(net.knowledge.gatewayIds[0]);
  move.newPlace = 2;
  move.prevPlace = 0;
  move.round = 1;
  SecMoveMsg wire;
  wire.gateway = move.gateway;
  wire.teslaPayload = move.encode();
  wire.interval =
      static_cast<std::uint32_t>(net.simulator.now().us / 500'000) + 1;
  wire.mac.fill(0xab);
  wire.hopCount = 0;

  net::Packet pkt;
  pkt.kind = net::PacketKind::kGatewayMove;
  pkt.hopDst = net::kBroadcastId;
  pkt.payload = wire.encode();
  net.network.sendFrom(1, pkt);
  net.run(4.0);  // give the real gateway time to disclose that interval

  // Occupancy unchanged: gateway 0 still at place 0, place 2 unoccupied.
  EXPECT_TRUE(net.secAt(2).occupancy().contains(0));
  EXPECT_FALSE(net.secAt(2).occupancy().contains(2));
}

TEST(SecMlr, GatewayMoveInvalidatesSessions) {
  SecNet net(4);
  net.bootstrap();
  net.stack->at(0).originate(Bytes(24, 1));
  net.run(3.0);
  const auto nearGw = net.knowledge.gatewayIds[0];
  ASSERT_TRUE(net.secAt(0).hasSessionTo(nearGw));

  // Gateway 0 moves to the spare place; after disclosure the session dies.
  net.stack->beginRound(1);
  net.network.setGatewayPosition(nearGw, net.knowledge.feasiblePlaces[2]);
  net.secAt(nearGw).announceMove(2, 0, 1);
  net.run(3.0);
  EXPECT_FALSE(net.secAt(0).hasSessionTo(nearGw));

  // Traffic still flows — a fresh discovery targets the best current
  // gateway.
  net.stack->at(0).originate(Bytes(24, 2));
  net.run(4.0);
  EXPECT_EQ(net.network.stats().delivered(), 2u);
}

TEST(SecMlr, OffPathInjectionDroppedByForwarder) {
  SecNet net(5);
  net.bootstrap();
  net.stack->at(0).originate(Bytes(24, 1));
  net.run(3.0);
  ASSERT_EQ(net.network.stats().delivered(), 1u);

  // Node 3 (off the 0→gateway0 path) injects a frame claiming to be part of
  // source 0's session, addressed to forwarder... node 0's path to gateway 0
  // is direct (1 hop), so use source 4's side instead: establish 4→gw1 via
  // nodes... simpler: inject toward node 1 with a wrong immediateSender.
  SecDataMsg msg;
  msg.source = 0;
  msg.gateway = static_cast<std::uint16_t>(net.knowledge.gatewayIds[0]);
  msg.immediateSender = 3;  // not the expected upstream
  msg.immediateReceiver = 1;
  msg.counter = 40;
  msg.encData = Bytes(24, 1);
  msg.mac.fill(0x11);

  net::Packet pkt;
  pkt.kind = net::PacketKind::kData;
  pkt.hopDst = 1;
  pkt.payload = msg.encode();
  net.network.sendFrom(3, pkt);
  net.run(1.0);
  // Nothing new delivered, no crash.
  EXPECT_EQ(net.network.stats().delivered(), 1u);
}

TEST(SecMlr, CryptoCostLandsOnGatewaysNotForwarders) {
  SecNet net(6);
  net.bootstrap();
  // Source 2 routes through forwarder 1 to gateway 0.
  net.stack->at(2).originate(Bytes(24, 1));
  net.run(3.0);
  ASSERT_GE(net.network.stats().delivered(), 1u);

  const double forwarderCpu = net.network.node(1).battery().cpuJ();
  const double sourceCpu = net.network.node(2).battery().cpuJ();
  const double gatewayCpu =
      net.network.node(net.knowledge.gatewayIds[0]).battery().cpuJ();
  // §6.2.4: intermediate sensors do no crypto on data; sources MAC/encrypt;
  // gateways verify everything. (Forwarders still paid TESLA verification,
  // so compare *data-path* cost via the source/gateway dominance.)
  EXPECT_GT(sourceCpu, 0.0);
  EXPECT_GT(gatewayCpu, forwarderCpu);
}

TEST(SecMlr, ParamsValidateChainLongEnough) {
  // A chain too short for the requested horizon throws at sign time, not
  // silently.
  SecNet net(3);
  net.config.tesla.chainLength = 4;
  // (no announce — just assert TeslaBroadcaster guards; covered in crypto
  // tests. Here we only check the protocol survives bootstrap with the
  // default config.)
  net.bootstrap();
  SUCCEED();
}

}  // namespace
}  // namespace wmsn::routing
