#include <gtest/gtest.h>

#include "mesh/mesh_network.hpp"
#include "mesh/mesh_routing.hpp"
#include "mesh/mesh_topology.hpp"
#include "mesh/wmsn_stack.hpp"
#include "routing/mlr.hpp"
#include "routing/protocol.hpp"
#include "util/require.hpp"

namespace wmsn::mesh {
namespace {

/// Hand-built backhaul: two WMGs, a WMR chain, one base station.
///    WMG0(0,0) — WMR2(200,0) — WMR3(400,0) — BASE4(600,0)
///    WMG1(0,200) — WMR2? no: WMG1 links to WMR2 via 200√2 ≈ 283 > 250 —
///    give WMG1 its own relay WMR5(200,200) → WMR3.
MeshTopology testTopology() {
  MeshTopology topo;
  topo.linkRange = 250.0;
  topo.nodes = {
      {{0, 0}, MeshNodeKind::kWmg},      // 0
      {{0, 200}, MeshNodeKind::kWmg},    // 1
      {{200, 0}, MeshNodeKind::kWmr},    // 2
      {{400, 0}, MeshNodeKind::kWmr},    // 3
      {{600, 0}, MeshNodeKind::kBaseStation},  // 4
      {{200, 200}, MeshNodeKind::kWmr},  // 5 (links WMG1 → WMR2/WMR3? 5→3 is
                                         //    283: no; 5→2 is 200: yes)
  };
  return topo;
}

TEST(MeshTopology, LinksByRange) {
  const MeshTopology topo = testTopology();
  EXPECT_TRUE(topo.linked(0, 2));
  EXPECT_FALSE(topo.linked(0, 3));
  EXPECT_FALSE(topo.linked(0, 0));
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.idsOf(MeshNodeKind::kWmg).size(), 2u);
  EXPECT_EQ(topo.idsOf(MeshNodeKind::kBaseStation),
            (std::vector<MeshNodeId>{4}));
}

TEST(MeshTopology, GeneratorProducesConnectedLayout) {
  Rng rng(3);
  MeshTopologyParams params;
  params.wmrCount = 9;
  const auto topo = makeMeshTopology(
      params, {{100, 100}, {500, 500}, {900, 100}}, rng);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.idsOf(MeshNodeKind::kWmg).size(), 3u);
}

TEST(MeshRouting, HopCountsTowardBase) {
  const MeshTopology topo = testTopology();
  MeshRoutingTable table(topo);
  EXPECT_EQ(table.hopsToBase(4), 0u);
  EXPECT_EQ(table.hopsToBase(3), 1u);
  EXPECT_EQ(table.hopsToBase(2), 2u);
  EXPECT_EQ(table.hopsToBase(0), 3u);
  EXPECT_EQ(table.hopsToBase(1), 4u);  // via 5 → 2 → 3 → 4
  EXPECT_EQ(table.nextHopToBase(3), 4u);
  EXPECT_EQ(table.nextHopToBase(0), 2u);
}

TEST(MeshRouting, RecomputeRoutesAroundDeadNode) {
  const MeshTopology topo = testTopology();
  MeshRoutingTable table(topo);
  std::vector<bool> alive(topo.nodes.size(), true);
  alive[2] = false;  // WMR2 dies: WMG0's only 200 m neighbour
  table.recompute(alive);
  EXPECT_EQ(table.hopsToBase(2), MeshRoutingTable::kUnreachable);
  EXPECT_EQ(table.hopsToBase(0), MeshRoutingTable::kUnreachable);
  EXPECT_EQ(table.hopsToBase(3), 1u);  // unaffected branch
}

TEST(MeshNetwork, DeliversToBaseWithLatency) {
  sim::Simulator simulator;
  MeshNetwork mesh(simulator, testTopology(), {}, Rng(1));
  int delivered = 0;
  std::uint32_t hops = 0;
  mesh.setBaseDelivery([&](const MeshMessage& msg, MeshNodeId base,
                           sim::Time) {
    ++delivered;
    hops = msg.hops;
    EXPECT_EQ(base, 4u);
  });
  mesh.inject(0, 101, 64);
  simulator.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(hops, 3u);
  EXPECT_EQ(mesh.delivered(), 1u);
  EXPECT_GT(mesh.latencyStats().mean(), 0.0);
}

TEST(MeshNetwork, SelfHealsAroundMidRouteFailure) {
  // Kill WMR3 (the only path for WMR2 → base is 2→3→4; after 3 dies, 2 has
  // no route — but WMG1's relay 5 doesn't help 2 either: 2→5→? 5 links only
  // to 1 and 2. So traffic from WMG0 is dropped). Verify the drop counter
  // AND that traffic before the failure got through.
  sim::Simulator simulator;
  MeshNetwork mesh(simulator, testTopology(), {}, Rng(1));
  mesh.inject(0, 1, 64);
  simulator.run();
  EXPECT_EQ(mesh.delivered(), 1u);
  mesh.setNodeAlive(3, false);
  mesh.inject(0, 2, 64);
  simulator.run();
  EXPECT_EQ(mesh.delivered(), 1u);
  EXPECT_EQ(mesh.dropped(), 1u);
  // Recovery: bring 3 back, traffic flows again.
  mesh.setNodeAlive(3, true);
  mesh.inject(0, 3, 64);
  simulator.run();
  EXPECT_EQ(mesh.delivered(), 2u);
  EXPECT_DOUBLE_EQ(mesh.deliveryRatio(), 2.0 / 3.0);
}

TEST(MeshNetwork, ReroutesMidFlightWhenNextHopDies) {
  // A message in flight re-decides at each hop: kill the old next hop while
  // the frame is in transit on the previous link.
  sim::Simulator simulator;
  MeshTopology topo = testTopology();
  // Add an alternative relay so a detour exists: WMR6 at (400, 200):
  // links to 5 (200), 3 (200), and base? (600-400, 0-200) = 283: no.
  topo.nodes.push_back(MeshNodeSpec{{400, 200}, MeshNodeKind::kWmr});
  MeshNetwork mesh(simulator, topo, {}, Rng(1));
  mesh.inject(1, 9, 64);  // WMG1 → 5 → 2 → 3 → 4
  // While the first hop is in the air, kill WMR2: the message should detour
  // 5 → 6 → 3 → 4.
  simulator.schedule(sim::Time::microseconds(400),
                     [&] { mesh.setNodeAlive(2, false); });
  simulator.run();
  EXPECT_EQ(mesh.delivered(), 1u);
}

TEST(MeshNetwork, LinkLossDropsProbabilistically) {
  sim::Simulator simulator;
  MeshParams params;
  params.linkLossProbability = 1.0;  // every hop fails
  MeshNetwork mesh(simulator, testTopology(), params, Rng(1));
  mesh.inject(0, 1, 64);
  simulator.run();
  EXPECT_EQ(mesh.delivered(), 0u);
  EXPECT_EQ(mesh.dropped(), 1u);
}

TEST(MeshNetwork, ForwardLoadTracked) {
  sim::Simulator simulator;
  MeshNetwork mesh(simulator, testTopology(), {}, Rng(1));
  for (int i = 0; i < 5; ++i) mesh.inject(0, 100 + i, 64);
  simulator.run();
  EXPECT_EQ(mesh.forwardLoad().at(2), 5u);
  EXPECT_EQ(mesh.forwardLoad().at(3), 5u);
}

// --- the full three-tier stack ---------------------------------------------------

TEST(WmsnStack, SensorReadingReachesBaseStation) {
  sim::Simulator simulator;

  // Sensor tier: 3 sensors in a line, 1 gateway.
  net::SensorNetworkParams netParams;
  netParams.mac = net::MacKind::kIdeal;
  netParams.medium.collisions = false;
  net::SensorNetwork sensorNet(
      simulator, std::make_unique<net::UnitDiskRadio>(25.0), netParams);
  for (int i = 0; i < 3; ++i)
    sensorNet.addSensor({20.0 * i, 0.0});
  routing::NetworkKnowledge knowledge;
  knowledge.feasiblePlaces = {{-20.0, 0.0}};
  knowledge.gatewayIds.push_back(sensorNet.addGateway({-20.0, 0.0}));
  routing::ProtocolStack stack(
      sensorNet, knowledge,
      [](net::SensorNetwork& n, net::NodeId id,
         const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::MlrRouting>(n, id, k);
      });
  stack.startAll();

  // Mesh tier sharing the same simulator.
  MeshNetwork mesh(simulator, testTopology(), {}, Rng(2));
  WmsnStack wmsn(mesh);
  wmsn.attach(sensorNet, {{knowledge.gatewayIds[0], MeshNodeId{0}}});

  stack.beginRound(0);
  dynamic_cast<routing::MlrRouting&>(stack.at(knowledge.gatewayIds[0]))
      .announceMove(0, routing::kNoPlace, 0);
  simulator.runUntil(sim::Time::seconds(1.0));

  stack.at(2).originate(Bytes(24, 7));
  simulator.runUntil(sim::Time::seconds(5.0));

  EXPECT_EQ(wmsn.readingsAtGateways(), 1u);
  EXPECT_EQ(wmsn.readingsAtBase(), 1u);
  EXPECT_EQ(wmsn.endToEndLatency().count(), 1u);
  EXPECT_GT(wmsn.endToEndLatency().mean(), 0.0);
}

TEST(WmsnStack, GatewayFailureKillsBothTiers) {
  sim::Simulator simulator;
  net::SensorNetworkParams netParams;
  netParams.mac = net::MacKind::kIdeal;
  netParams.medium.collisions = false;
  net::SensorNetwork sensorNet(
      simulator, std::make_unique<net::UnitDiskRadio>(25.0), netParams);
  sensorNet.addSensor({0.0, 0.0});
  routing::NetworkKnowledge knowledge;
  knowledge.feasiblePlaces = {{-20.0, 0.0}};
  knowledge.gatewayIds.push_back(sensorNet.addGateway({-20.0, 0.0}));
  routing::ProtocolStack stack(
      sensorNet, knowledge,
      [](net::SensorNetwork& n, net::NodeId id,
         const routing::NetworkKnowledge& k) {
        return std::make_unique<routing::MlrRouting>(n, id, k);
      });
  stack.startAll();

  MeshNetwork mesh(simulator, testTopology(), {}, Rng(2));
  WmsnStack wmsn(mesh);
  wmsn.attach(sensorNet, {{knowledge.gatewayIds[0], MeshNodeId{0}}});

  wmsn.setGatewayAlive(sensorNet, knowledge.gatewayIds[0], false);
  EXPECT_FALSE(sensorNet.node(knowledge.gatewayIds[0]).alive());
  EXPECT_FALSE(mesh.nodeAlive(0));

  stack.beginRound(0);
  stack.at(0).originate(Bytes(24, 7));
  simulator.runUntil(sim::Time::seconds(2.0));
  EXPECT_EQ(wmsn.readingsAtBase(), 0u);
}

TEST(WmsnStack, AttachValidatesMapping) {
  sim::Simulator simulator;
  net::SensorNetworkParams netParams;
  net::SensorNetwork sensorNet(
      simulator, std::make_unique<net::UnitDiskRadio>(25.0), netParams);
  const auto sensor = sensorNet.addSensor({0, 0});
  MeshNetwork mesh(simulator, testTopology(), {}, Rng(2));
  WmsnStack wmsn(mesh);
  // A sensor is not a gateway.
  EXPECT_THROW(wmsn.attach(sensorNet, {{sensor, MeshNodeId{0}}}),
               PreconditionError);
  // A WMR is not a WMG.
  const auto gw = sensorNet.addGateway({10, 0});
  EXPECT_THROW(wmsn.attach(sensorNet, {{gw, MeshNodeId{2}}}),
               PreconditionError);
}

}  // namespace
}  // namespace wmsn::mesh
