// Tests for the §4 "key issues" features: downstream commands (§5.1),
// load-balance advisories (§4.3), GAF sleep scheduling + delegation (§4.4),
// and the gateway-placement planner (§4.1).

#include <gtest/gtest.h>

#include "core/wmsn.hpp"
#include "routing/mlr.hpp"
#include "routing/secmlr.hpp"
#include "util/require.hpp"

namespace wmsn {
namespace {

// --- downstream commands -----------------------------------------------------

struct CommandNet {
  sim::Simulator simulator;
  net::SensorNetwork network;
  routing::NetworkKnowledge knowledge;
  std::unique_ptr<routing::ProtocolStack> stack;

  explicit CommandNet(bool secure)
      : network(simulator, std::make_unique<net::UnitDiskRadio>(25.0),
                params()) {
    for (int i = 0; i < 5; ++i)
      network.addSensor({20.0 * i, 0.0});
    knowledge.feasiblePlaces = {{-20.0, 0.0}, {120.0, 0.0}};
    knowledge.gatewayIds.push_back(network.addGateway({-20.0, 0.0}));
    routing::SecMlrConfig sec;
    sec.tesla.intervalDuration = sim::Time::seconds(0.5);
    stack = std::make_unique<routing::ProtocolStack>(
        network, knowledge,
        [secure, sec](net::SensorNetwork& n, net::NodeId id,
                      const routing::NetworkKnowledge& k)
            -> std::unique_ptr<routing::RoutingProtocol> {
          if (secure)
            return std::make_unique<routing::SecMlrRouting>(n, id, k, sec);
          return std::make_unique<routing::MlrRouting>(n, id, k);
        });
    stack->startAll();
    stack->beginRound(0);
  }

  static net::SensorNetworkParams params() {
    net::SensorNetworkParams p;
    p.mac = net::MacKind::kIdeal;
    p.medium.collisions = false;
    return p;
  }

  routing::MlrRouting& mlrAt(net::NodeId id) {
    return dynamic_cast<routing::MlrRouting&>(stack->at(id));
  }

  void run(double seconds) {
    simulator.runUntil(simulator.now() + sim::Time::seconds(seconds));
  }
};

TEST(Commands, FloodReachesDistantTarget) {
  CommandNet net(false);
  Bytes body{0x01, 0x02, 0x03};
  std::optional<routing::CommandMsg> received;
  net.mlrAt(4).setCommandHandler(
      [&](const routing::CommandMsg& msg) { received = msg; });
  net.mlrAt(net.knowledge.gatewayIds[0]).sendCommand(4, body);
  net.run(2.0);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->body, body);
  EXPECT_EQ(received->target, 4);
  EXPECT_EQ(net.mlrAt(4).commandsReceived(), 1u);
  // Non-targets relayed but did not consume.
  EXPECT_EQ(net.mlrAt(2).commandsReceived(), 0u);
}

TEST(Commands, DuplicateFloodCopiesConsumedOnce) {
  CommandNet net(false);
  net.mlrAt(net.knowledge.gatewayIds[0]).sendCommand(2, Bytes{9});
  net.run(2.0);
  EXPECT_EQ(net.mlrAt(2).commandsReceived(), 1u);
}

TEST(Commands, SecureCommandDecryptsAtTarget) {
  CommandNet net(true);
  Bytes body{0xde, 0xad, 0xbe, 0xef};
  std::optional<routing::CommandMsg> received;
  net.mlrAt(3).setCommandHandler(
      [&](const routing::CommandMsg& msg) { received = msg; });
  net.mlrAt(net.knowledge.gatewayIds[0]).sendCommand(3, body);
  net.run(2.0);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->body, body);  // decrypted back to the plaintext
}

TEST(Commands, SecureCommandForgeryRejected) {
  CommandNet net(true);
  std::optional<routing::CommandMsg> received;
  net.mlrAt(3).setCommandHandler(
      [&](const routing::CommandMsg& msg) { received = msg; });

  // Sensor 0 forges a command claiming to come from the gateway.
  routing::CommandMsg forged;
  forged.gateway = static_cast<std::uint16_t>(net.knowledge.gatewayIds[0]);
  forged.target = 3;
  forged.commandSeq = 42;
  ByteWriter sealed;
  sealed.u64(1);                    // counter
  sealed.bytes(Bytes(8, 0x66));     // bogus ciphertext
  sealed.raw(Bytes(crypto::kPacketMacSize, 0x00));  // bogus MAC
  forged.body = sealed.take();

  net::Packet pkt;
  pkt.kind = net::PacketKind::kCommand;
  pkt.hopDst = net::kBroadcastId;
  pkt.payload = forged.encode();
  net.network.sendFrom(0, pkt);
  net.run(2.0);
  EXPECT_FALSE(received.has_value());
  EXPECT_EQ(dynamic_cast<routing::SecMlrRouting&>(net.stack->at(3))
                .rejectedMacs(),
            1u);
}

TEST(Commands, SecureCommandReplayRejected) {
  CommandNet net(true);
  int hits = 0;
  net.mlrAt(2).setCommandHandler([&](const routing::CommandMsg&) { ++hits; });
  auto& gw = net.mlrAt(net.knowledge.gatewayIds[0]);
  gw.sendCommand(2, Bytes{1});
  net.run(2.0);
  ASSERT_EQ(hits, 1);

  // Capture and replay: re-flood the same sealed body with a NEW command
  // sequence (so the flood dedupe does not mask the counter check).
  // Easiest faithful replay: send the same counter again from a bystander.
  // We reconstruct it via the keystore, as a node-capture adversary would.
  crypto::KeyStore ks = crypto::KeyStore::fromSeed(0xc0ffee);
  const auto gwId = static_cast<std::uint16_t>(net.knowledge.gatewayIds[0]);
  const crypto::Key key = ks.pairwiseKey(2, gwId);
  Bytes enc = crypto::SpeckCtr(key).encrypt(1, Bytes{1});  // counter 1 reused
  const auto mac = crypto::packetMac(key, 1, enc);
  routing::CommandMsg replay;
  replay.gateway = gwId;
  replay.target = 2;
  replay.commandSeq = 77;
  ByteWriter sealed;
  sealed.u64(1);
  sealed.bytes(enc);
  sealed.raw(std::span<const std::uint8_t>(mac.data(), mac.size()));
  replay.body = sealed.take();

  net::Packet pkt;
  pkt.kind = net::PacketKind::kCommand;
  pkt.hopDst = net::kBroadcastId;
  pkt.payload = replay.encode();
  net.network.sendFrom(1, pkt);
  net.run(2.0);
  EXPECT_EQ(hits, 1);  // not consumed twice
  EXPECT_GE(dynamic_cast<routing::SecMlrRouting&>(net.stack->at(2))
                .rejectedReplays(),
            1u);
}

// --- load advisories (§4.3) -----------------------------------------------------

TEST(LoadBalance, AdvisoryShiftsMarginalTraffic) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 80;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.gatewaysMove = false;
  cfg.rounds = 6;
  cfg.packetsPerSensorPerRound = 1;
  cfg.hotspot.enabled = true;
  cfg.hotspot.placeOrdinal = 0;
  cfg.hotspot.radius = 70;
  cfg.hotspot.extraPacketsPerSensor = 4;
  cfg.seed = 3;

  auto hottestShare = [](const core::RunResult& r) {
    double total = 0, hottest = 0;
    for (const auto& [gw, count] : r.perGatewayDeliveries) {
      total += static_cast<double>(count);
      hottest = std::max(hottest, static_cast<double>(count));
    }
    return hottest / std::max(1.0, total);
  };

  const auto plain = core::runScenario(cfg);
  cfg.mlr.loadAdvisoryThreshold = 50;
  const auto balanced = core::runScenario(cfg);
  EXPECT_LT(hottestShare(balanced), hottestShare(plain));
  EXPECT_GT(balanced.deliveryRatio, 0.95);
}

TEST(LoadBalance, NoAdvisoryBelowThreshold) {
  // Uniform traffic well under the threshold: no advisories are flooded.
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.rounds = 4;
  cfg.packetsPerSensorPerRound = 1;
  cfg.mlr.loadAdvisoryThreshold = 100000;  // unreachable
  cfg.seed = 4;
  auto scenario = core::buildScenario(cfg);
  core::Experiment experiment(*scenario);
  experiment.run();
  EXPECT_EQ(scenario->network->stats().framesByKind().count(
                net::PacketKind::kLoadAdvisory),
            0u);
}

// --- sleep scheduling (§4.4) ------------------------------------------------------

TEST(Sleep, SchedulerElectsOneLeaderPerCellAndDelegates) {
  sim::Simulator simulator;
  net::SensorNetworkParams params;
  net::SensorNetwork network(
      simulator, std::make_unique<net::UnitDiskRadio>(30.0), params);
  // Two clusters of 3 nodes each, far apart → two cells (at least).
  for (double dx : {0.0, 2.0, 4.0})
    network.addSensor({dx, 0.0});
  for (double dx : {0.0, 2.0, 4.0})
    network.addSensor({100.0 + dx, 0.0});
  network.addGateway({50, 0});

  const auto assignment = core::applySleepSchedule(network, 30.0);
  EXPECT_EQ(assignment.sleeping, 4u);  // 6 sensors, 2 leaders
  EXPECT_EQ(assignment.delegations.size(), 4u);
  for (const auto& [sleeper, leader] : assignment.delegations) {
    EXPECT_TRUE(network.node(sleeper).sleeping());
    EXPECT_FALSE(network.node(leader).sleeping());
    // The delegate link must physically exist.
    EXPECT_LE(net::distance(network.node(sleeper).position(),
                            network.node(leader).position()),
              30.0);
  }
  EXPECT_NEAR(core::sleepingFraction(network), 4.0 / 6.0, 1e-9);
}

TEST(Sleep, LeadersRotateByResidualEnergy) {
  sim::Simulator simulator;
  net::SensorNetworkParams params;
  params.energy.initialEnergyJ = 1.0;
  net::SensorNetwork network(
      simulator, std::make_unique<net::UnitDiskRadio>(30.0), params);
  const auto a = network.addSensor({0, 0});
  const auto b = network.addSensor({1, 0});  // same cell
  network.addGateway({10, 0});

  core::applySleepSchedule(network, 30.0);
  const bool aLedFirst = !network.node(a).sleeping();
  // Drain the current leader; the next epoch must elect the other node.
  const auto leader = aLedFirst ? a : b;
  network.node(leader).battery().drawTx(0.5);
  core::applySleepSchedule(network, 30.0);
  EXPECT_TRUE(network.node(leader).sleeping());
  EXPECT_FALSE(network.node(aLedFirst ? b : a).sleeping());
}

TEST(Sleep, SleepingRadioNeitherHearsNorPaysRx) {
  sim::Simulator simulator;
  net::SensorNetworkParams params;
  params.mac = net::MacKind::kIdeal;
  net::SensorNetwork network(
      simulator, std::make_unique<net::UnitDiskRadio>(30.0), params);
  const auto a = network.addSensor({0, 0});
  const auto b = network.addSensor({10, 0});
  int got = 0;
  network.node(b).setReceiveHandler(
      [&](const net::Packet&, net::NodeId) { ++got; });
  network.node(b).setSleeping(true);

  net::Packet pkt;
  pkt.kind = net::PacketKind::kHello;
  pkt.hopDst = net::kBroadcastId;
  network.sendFrom(a, pkt);
  simulator.run();
  EXPECT_EQ(got, 0);
  EXPECT_DOUBLE_EQ(network.node(b).battery().rxJ(), 0.0);
}

TEST(Sleep, EndToEndDeliveryWithDutyCycling) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 120;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.radioRange = 45;
  cfg.rounds = 4;
  cfg.packetsPerSensorPerRound = 2;
  cfg.sleep.enabled = true;
  cfg.sleep.epochRounds = 2;
  cfg.seed = 5;
  const auto r = core::runScenario(cfg);
  EXPECT_GT(r.deliveryRatio, 0.95);
  // The duty cycle measurably reduced mean consumption vs always-on.
  cfg.sleep.enabled = false;
  const auto alwaysOn = core::runScenario(cfg);
  EXPECT_LT(r.sensorEnergy.meanJ, alwaysOn.sensorEnergy.meanJ);
}

TEST(Sleep, RequiresMlr) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kSecMlr;
  cfg.sleep.enabled = true;
  EXPECT_THROW(cfg.validate(), PreconditionError);
}

// --- placement planner (§4.1) -----------------------------------------------------

TEST(Placement, HopFieldMatchesLineDistances) {
  std::vector<net::Point> sensors;
  for (int i = 0; i < 5; ++i) sensors.push_back({20.0 * i, 0.0});
  const auto field = core::hopField(sensors, {-20.0, 0.0}, 25.0);
  for (std::size_t i = 0; i < sensors.size(); ++i)
    EXPECT_EQ(field[i], i + 1);
}

TEST(Placement, UnreachableSensorsFlagged) {
  const std::vector<net::Point> sensors = {{0, 0}, {500, 500}};
  const auto field = core::hopField(sensors, {10, 0}, 25.0);
  EXPECT_EQ(field[0], 1u);
  EXPECT_EQ(field[1], core::kUnreachableHops);
}

TEST(Placement, GreedyPicksObviouslyBestPlaces) {
  // Two sensor clusters; candidate places: one near each cluster, one in
  // the empty middle. m=2 must pick the two cluster-adjacent places.
  std::vector<net::Point> sensors;
  for (double dx : {0.0, 15.0, 30.0}) {
    sensors.push_back({dx, 0.0});
    sensors.push_back({500.0 + dx, 0.0});
  }
  const std::vector<net::Point> places = {{-20, 0}, {250, 0}, {520, 0}};
  const auto chosen = core::planGatewayPlaces(sensors, places, 2, 25.0);
  EXPECT_EQ(chosen.size(), 2u);
  EXPECT_TRUE((chosen[0] == 0 && chosen[1] == 2) ||
              (chosen[0] == 2 && chosen[1] == 0));
}

TEST(Placement, CostDecreasesMonotonicallyWithM) {
  Rng rng(2);
  net::DeploymentParams dp;
  dp.sensorCount = 60;
  const auto d = net::uniformDeployment(dp, rng);
  const auto places = net::feasiblePlaces(dp, 6, rng);
  double prev = std::numeric_limits<double>::max();
  for (std::size_t m = 1; m <= 6; ++m) {
    const auto sel = core::planGatewayPlaces(d.sensors, places, m,
                                             dp.radioRange);
    EXPECT_EQ(sel.size(), m);
    const double cost =
        core::totalHopCost(d.sensors, places, sel, dp.radioRange);
    EXPECT_LE(cost, prev);
    prev = cost;
  }
}

TEST(Placement, PlannedBeatsNaiveInSimulation) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 100;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 8;
  cfg.gatewaysMove = false;
  cfg.width = 220;
  cfg.height = 220;
  cfg.rounds = 3;
  cfg.seed = 9;
  const auto naive = core::runScenario(cfg);
  cfg.planGatewayPlacement = true;
  const auto planned = core::runScenario(cfg);
  EXPECT_LE(planned.meanHops, naive.meanHops + 0.01);
}

TEST(Placement, EstimateGatewayCountWithinRange) {
  Rng rng(4);
  net::DeploymentParams dp;
  dp.sensorCount = 80;
  const auto d = net::uniformDeployment(dp, rng);
  const auto places = net::feasiblePlaces(dp, 8, rng);
  const std::size_t kmax =
      core::estimateGatewayCount(d.sensors, places, dp.radioRange);
  EXPECT_GE(kmax, 1u);
  EXPECT_LE(kmax, 8u);
}

}  // namespace
}  // namespace wmsn
