// Property-style suites: invariants checked across parameter sweeps
// (seeds × protocols × deployments) rather than single examples.

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "core/wmsn.hpp"
#include "routing/mlr.hpp"
#include "routing/spr.hpp"

namespace wmsn {
namespace {

/// BFS hop distances from a start position over the CURRENT alive topology —
/// the oracle the protocols are judged against.
std::vector<std::uint32_t> bfsDistances(const net::SensorNetwork& network,
                                        net::NodeId start) {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(network.size(), kInf);
  std::deque<net::NodeId> frontier{start};
  dist[start] = 0;
  while (!frontier.empty()) {
    const net::NodeId cur = frontier.front();
    frontier.pop_front();
    for (net::NodeId nbr : network.neighborsOf(cur)) {
      // Gateways are sinks, not relays (except as BFS start).
      if (network.node(nbr).isGateway()) continue;
      if (dist[nbr] == kInf) {
        dist[nbr] = dist[cur] + 1;
        frontier.push_back(nbr);
      }
    }
  }
  return dist;
}

// ---------------------------------------------------------------------------
// MLR cost-field optimality: after the initial announcements, every sensor's
// table entry equals the true BFS distance to the gateway's place.
// ---------------------------------------------------------------------------

class MlrCostFieldProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MlrCostFieldProperty, FloodConvergesToBfsDistances) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kMlr;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = 150;
  cfg.height = 150;
  cfg.seed = GetParam();
  cfg.mac = net::MacKind::kIdeal;      // lossless flood → exact BFS expected
  cfg.medium.collisions = false;
  cfg.rounds = 1;

  auto scenario = core::buildScenario(cfg);
  core::Experiment experiment(*scenario);
  experiment.run();

  for (std::size_t g = 0; g < scenario->network->gatewayIds().size(); ++g) {
    const net::NodeId gw = scenario->network->gatewayIds()[g];
    const auto oracle = bfsDistances(*scenario->network, gw);
    const auto place = static_cast<std::uint16_t>(
        scenario->schedule->placeOf(g, 0));
    for (net::NodeId s : scenario->network->sensorIds()) {
      const auto& mlr =
          dynamic_cast<const routing::MlrRouting&>(scenario->stack->at(s));
      const auto& entry = mlr.placeTable()[place];
      ASSERT_TRUE(entry.known) << "sensor " << s << " has no entry";
      EXPECT_EQ(entry.hops, oracle[s])
          << "sensor " << s << " place " << place;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlrCostFieldProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 42));

// ---------------------------------------------------------------------------
// SPR optimality (Property 1's consequence): with an ideal channel, the
// discovered route to the chosen gateway has exactly the BFS hop count of
// the closest gateway.
// ---------------------------------------------------------------------------

class SprShortestPathProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SprShortestPathProperty, DiscoveredRoutesAreShortest) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::kSpr;
  cfg.sensorCount = 50;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 3;
  cfg.width = 150;
  cfg.height = 150;
  cfg.seed = GetParam();
  cfg.mac = net::MacKind::kIdeal;
  cfg.medium.collisions = false;
  cfg.gatewaysMove = false;
  cfg.rounds = 1;
  cfg.packetsPerSensorPerRound = 1;
  // Cache answering splices suboptimal paths (measured trade-off; see
  // DESIGN.md) — disable it to test the pure discovery mechanism.
  cfg.spr.answerFromCache = false;

  auto scenario = core::buildScenario(cfg);
  core::Experiment experiment(*scenario);
  experiment.run();

  // Property 1 (§5.2): a node's stored route to gateway G is a shortest
  // path to G. (Not necessarily to the globally closest gateway: the
  // paper's route-adoption optimisation — "sensor nodes that locate at an
  // established route do not need to discover routing" — lets a relay adopt
  // a passing route to a different gateway. We assert exactly what Property
  // 1 guarantees.)
  std::map<net::NodeId, std::vector<std::uint32_t>> oracles;
  for (net::NodeId gw : scenario->network->gatewayIds())
    oracles.emplace(gw, bfsDistances(*scenario->network, gw));

  std::size_t withRoutes = 0;
  for (net::NodeId s : scenario->network->sensorIds()) {
    const auto& spr =
        dynamic_cast<const routing::SprRouting&>(scenario->stack->at(s));
    const auto hops = spr.currentRouteHops();
    const auto gateway = spr.currentBestGateway();
    if (!hops || !gateway) continue;  // node may not have routed this round
    ++withRoutes;
    EXPECT_EQ(*hops, oracles.at(*gateway)[s]) << "sensor " << s;
  }
  EXPECT_GT(withRoutes, scenario->network->sensorIds().size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SprShortestPathProperty,
                         ::testing::Values(1, 2, 3, 7, 13));

// ---------------------------------------------------------------------------
// Cross-protocol invariants under realistic channel conditions.
// ---------------------------------------------------------------------------

struct ProtocolCase {
  core::ProtocolKind protocol;
  std::uint64_t seed;
  double minPdr;
};

class ProtocolInvariants : public ::testing::TestWithParam<ProtocolCase> {};

TEST_P(ProtocolInvariants, DeliveryEnergyAndAccountingInvariants) {
  const ProtocolCase& param = GetParam();
  core::ScenarioConfig cfg;
  cfg.protocol = param.protocol;
  cfg.sensorCount = 60;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = 150;
  cfg.height = 150;
  cfg.rounds = 4;
  cfg.packetsPerSensorPerRound = 2;
  cfg.seed = param.seed;

  const core::RunResult r = core::runScenario(cfg);

  // Conservation: you cannot deliver what was never generated.
  EXPECT_LE(r.delivered, r.generated);
  EXPECT_EQ(r.generated, 60u * 4u * 2u);
  EXPECT_GE(r.deliveryRatio, param.minPdr)
      << core::toString(param.protocol) << " seed " << param.seed;

  // Energy sanity: every battery drain is non-negative and the breakdown
  // sums to the total.
  EXPECT_GT(r.sensorEnergy.totalJ, 0.0);
  EXPECT_NEAR(r.sensorEnergy.txJ + r.sensorEnergy.rxJ + r.sensorEnergy.cpuJ,
              r.sensorEnergy.totalJ, 1e-9);
  EXPECT_GE(r.sensorEnergy.minJ, 0.0);
  EXPECT_LE(r.sensorEnergy.jainFairness, 1.0 + 1e-12);

  // Latency: positive and below a round duration for delivered packets.
  if (r.delivered > 0) {
    EXPECT_GT(r.meanLatencyMs, 0.0);
    EXPECT_LT(r.p95LatencyMs, cfg.roundDuration.millis());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolInvariants,
    ::testing::Values(
        ProtocolCase{core::ProtocolKind::kFlooding, 1, 0.85},
        ProtocolCase{core::ProtocolKind::kFlooding, 2, 0.85},
        ProtocolCase{core::ProtocolKind::kLeach, 1, 0.90},
        ProtocolCase{core::ProtocolKind::kLeach, 2, 0.90},
        ProtocolCase{core::ProtocolKind::kSingleSink, 1, 0.90},
        ProtocolCase{core::ProtocolKind::kSingleSink, 2, 0.90},
        ProtocolCase{core::ProtocolKind::kSpr, 1, 0.90},
        ProtocolCase{core::ProtocolKind::kSpr, 2, 0.90},
        ProtocolCase{core::ProtocolKind::kMlr, 1, 0.95},
        ProtocolCase{core::ProtocolKind::kMlr, 2, 0.95},
        ProtocolCase{core::ProtocolKind::kSecMlr, 1, 0.90},
        ProtocolCase{core::ProtocolKind::kSecMlr, 2, 0.90}),
    [](const auto& info) {
      std::string name = core::toString(info.param.protocol) + "_seed" +
                         std::to_string(info.param.seed);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------------------------------------------------------------------------
// Determinism across ALL protocols: bit-identical replays.
// ---------------------------------------------------------------------------

class DeterminismProperty
    : public ::testing::TestWithParam<core::ProtocolKind> {};

TEST_P(DeterminismProperty, IdenticalRunsProduceIdenticalResults) {
  core::ScenarioConfig cfg;
  cfg.protocol = GetParam();
  cfg.sensorCount = 40;
  cfg.gatewayCount = 2;
  cfg.feasiblePlaceCount = 4;
  cfg.width = 140;
  cfg.height = 140;
  cfg.rounds = 2;
  cfg.seed = 99;

  const core::RunResult a = core::runScenario(cfg);
  const core::RunResult b = core::runScenario(cfg);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.controlFrames, b.controlFrames);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_DOUBLE_EQ(a.sensorEnergy.totalJ, b.sensorEnergy.totalJ);
  EXPECT_DOUBLE_EQ(a.sensorEnergy.varianceD2, b.sensorEnergy.varianceD2);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DeterminismProperty,
    ::testing::Values(core::ProtocolKind::kFlooding,
                      core::ProtocolKind::kGossip,
                      core::ProtocolKind::kLeach,
                      core::ProtocolKind::kSingleSink,
                      core::ProtocolKind::kSpr, core::ProtocolKind::kMlr,
                      core::ProtocolKind::kSecMlr),
    [](const auto& info) {
      std::string name = core::toString(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------------------------------------------------------------------------
// Deployment invariants across kinds and seeds.
// ---------------------------------------------------------------------------

struct DeploymentCase {
  core::DeploymentKind kind;
  std::uint64_t seed;
};

class DeploymentProperty : public ::testing::TestWithParam<DeploymentCase> {};

TEST_P(DeploymentProperty, GeneratedLayoutsAreRoutable) {
  core::ScenarioConfig cfg;
  cfg.deployment = GetParam().kind;
  cfg.seed = GetParam().seed;
  cfg.sensorCount = 70;
  cfg.gatewayCount = 3;
  cfg.feasiblePlaceCount = 5;
  cfg.width = 160;
  cfg.height = 160;
  cfg.radioRange = GetParam().kind == core::DeploymentKind::kClustered
                       ? 45.0
                       : 30.0;
  cfg.rounds = 1;
  auto scenario = core::buildScenario(cfg);
  // Sensor-only connectivity + place attachment are the builder's promise.
  std::vector<net::Point> sensors;
  for (net::NodeId s : scenario->network->sensorIds())
    sensors.push_back(scenario->network->node(s).position());
  EXPECT_TRUE(net::sensorsConnected(sensors, cfg.radioRange));
  EXPECT_TRUE(net::placesAttached(scenario->feasiblePlaces, sensors,
                                  cfg.radioRange));
  EXPECT_TRUE(scenario->network->allSensorsCovered());
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, DeploymentProperty,
    ::testing::Values(DeploymentCase{core::DeploymentKind::kUniform, 1},
                      DeploymentCase{core::DeploymentKind::kUniform, 7},
                      DeploymentCase{core::DeploymentKind::kGrid, 1},
                      DeploymentCase{core::DeploymentKind::kGrid, 7},
                      DeploymentCase{core::DeploymentKind::kClustered, 1},
                      DeploymentCase{core::DeploymentKind::kClustered, 7}),
    [](const auto& info) {
      return core::toString(info.param.kind) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace wmsn
