"""wmsn-analyze engine — tokenizer, scope tracking, include graph, ledger.

The determinism auditor's core. Pure Python (stdlib only) so it runs
everywhere `scripts/check_all.sh` does: no libclang, no pip installs.
It does NOT try to be a C++ front end — it is a comment/string-aware
tokenizer with brace/paren scope tracking, which is exactly enough to
answer the questions the rule pack asks:

  * "is this line inside a conditional, and which function owns it?"
    (R4 draw-count divergence)
  * "which identifiers in scope name an unordered container / a
    floating-point accumulator / a deterministic Rng?"
    (R1 / R5 / R4 receiver resolution)
  * "which files can this output-path file reach through #include?"
    (R1 path-class reachability)

Suppressions live ONLY in a committed, audited ledger
(tools/analyze/suppressions.toml) for the determinism rules R1-R5;
the legacy wmsn-lint rules keep honouring the historical inline
`// wmsn-lint: allow(<rule>)` comment so the absorbed rule set stays
back-compatible. Every ledger entry must carry a justification and
must match at least one finding — unmatched or malformed entries are
findings themselves (`stale-suppression` / `invalid-suppression`), so
the ledger can never silently rot.
"""

import os
import re

try:
    import tomllib  # Python 3.11+
except ImportError:  # pragma: no cover - exercised only on old images
    tomllib = None

LEDGER_RELPATH = "tools/analyze/suppressions.toml"
MANIFEST_RELPATH = "tools/analyze/manifest.toml"
FIXED_DRAWS_ANNOTATION = "wmsn:fixed-draws"
MIN_REASON_LEN = 10

ALLOW = re.compile(r"wmsn-lint:\s*allow\(([a-zA-Z0-9-]+(?:\s*,\s*[a-zA-Z0-9-]+)*)\)")

SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = (".cpp", ".hpp", ".h")


class Finding:
    """One rule violation at file:line (possibly suppressed)."""

    __slots__ = ("rule", "file", "line", "message", "suppressed", "reason")

    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message
        self.suppressed = None  # None | "inline" | "ledger"
        self.reason = None

    def format(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self):
        d = {"rule": self.rule, "file": self.file, "line": self.line,
             "message": self.message}
        if self.suppressed:
            d["suppressed"] = self.suppressed
            if self.reason:
                d["reason"] = self.reason
        return d


class Scope:
    """One brace scope: kind + the line its header started on."""

    __slots__ = ("kind", "header_line")

    def __init__(self, kind, header_line):
        self.kind = kind
        self.header_line = header_line


# Scope kinds considered "conditionally executed" for R4: a draw inside
# one of these executes on some runs of the enclosing function and not
# others. Loops are deliberately NOT in this set: a fixed-trip loop
# draws a fixed count, and data-dependent trip counts are the loop
# *header's* problem (caught when the header itself draws conditionally).
CONDITIONAL_KINDS = frozenset({"if", "else", "switch"})
FUNCTION_KINDS = frozenset({"function", "lambda"})


class LineInfo:
    """Per-line scope context, computed once per file."""

    __slots__ = ("conditional_header", "function_header", "in_loop")

    def __init__(self):
        self.conditional_header = None  # line no of innermost if/else/switch
        self.function_header = None     # line no of enclosing function header
        self.in_loop = False


class SourceFile:
    """A tokenized translation unit / header."""

    def __init__(self, rel, raw_text):
        self.rel = rel
        self.is_header = rel.endswith((".hpp", ".h"))
        self.raw_lines = raw_text.splitlines()
        self.code_lines, self.comment_lines = strip_comments(raw_text)
        self.line_info = track_scopes(self.code_lines)
        self.includes = [
            m.group(1)
            for line in self.code_lines
            for m in [re.search(r'#\s*include\s*"([^"]+)"', line)]
            if m
        ]

    def code(self, i):
        """Cleaned line i (1-based)."""
        return self.code_lines[i - 1] if 0 < i <= len(self.code_lines) else ""

    def comment(self, i):
        return self.comment_lines[i - 1] if 0 < i <= len(self.comment_lines) else ""

    def raw(self, i):
        return self.raw_lines[i - 1] if 0 < i <= len(self.raw_lines) else ""

    def info(self, i):
        return self.line_info[i - 1] if 0 < i <= len(self.line_info) else LineInfo()

    def inline_allowed(self, names, i):
        """True if `// wmsn-lint: allow(...)` on line i or i-1 names one of
        `names` (a rule id or any of its legacy aliases)."""
        for j in (i, i - 1):
            m = ALLOW.search(self.comment(j))
            if m:
                allowed = {r.strip() for r in m.group(1).split(",")}
                if allowed & names:
                    return True
        return False

    def has_annotation(self, annotation, i):
        """True if `annotation` appears in a comment on line i, or anywhere
        in the contiguous comment-only block directly above it (so a
        multi-line justification comment anchors as one unit)."""
        if annotation in self.comment(i):
            return True
        j = i - 1
        while j >= 1 and not self.code(j).strip() and self.comment(j).strip():
            if annotation in self.comment(j):
                return True
            j -= 1
        return False

    def fixed_draws_at(self, i):
        """The `// wmsn:fixed-draws` contract: the annotation may sit on the
        draw line (or the comment block above it), the innermost
        conditional's header line (or its comment block), or the enclosing
        function's header line (or its comment block) — function-level
        placement asserts the whole function's draw pattern is
        simulation-state-deterministic."""
        if self.has_annotation(FIXED_DRAWS_ANNOTATION, i):
            return True
        info = self.info(i)
        for anchor in (info.conditional_header, info.function_header):
            if anchor and self.has_annotation(FIXED_DRAWS_ANNOTATION, anchor):
                return True
        return False


def strip_comments(text):
    """Blank out comments and string/char literal *contents*, preserving the
    line structure and the literal delimiters. Returns (code_lines,
    comment_lines): the comment text is preserved per line so annotation
    and suppression comments stay findable."""
    code = []
    comments = []
    cur_code = []
    cur_comment = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                # R"delim( ... )delim" raw strings
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1:i + 20]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw_string"
                    cur_code.append('"')
                    i += 1 + len(m.group(1)) + 1
                    continue
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(c)
            i += 1
            continue
        if state in ("line_comment", "block_comment"):
            if state == "block_comment" and c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            cur_comment.append(c)
            i += 1
            continue
        if state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                state = "code"
                cur_code.append('"')
            i += 1
            continue
        if state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'":
                state = "code"
                cur_code.append("'")
            i += 1
            continue
        if state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                cur_code.append('"')
                i += len(raw_delim)
                continue
            i += 1
            continue
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


_HEADER_IF = re.compile(r"(?:^|\W)if\s*\($")
_HEADER_SWITCH = re.compile(r"(?:^|\W)switch\s*\($")
_HEADER_LOOP = re.compile(r"(?:^|\W)(for|while)\s*\($")
_HEADER_TYPE = re.compile(r"\b(namespace|class|struct|enum|union)\b")
_HEADER_FUNC_TAIL = re.compile(
    r"\)\s*(const|noexcept(\s*\([^)]*\))?|override|final|->\s*[\w:<>,&*\s]+|\s)*$")


def _classify_header(header, paren_headers):
    """Classify the statement text preceding a '{'.

    `paren_headers` is the list of control keywords whose '(' opened and
    closed inside this header (collected by the scanner) — more reliable
    than re-parsing the flattened text."""
    h = header.strip()
    if not h:
        return "block"
    if "else" in paren_headers or re.search(r"(?:^|\})\s*else\s*$", h):
        return "else"
    if "if" in paren_headers:
        return "if"
    if "switch" in paren_headers:
        return "switch"
    if "for" in paren_headers or "while" in paren_headers or \
            re.search(r"(?:^|\W)do\s*$", h):
        return "loop"
    if _HEADER_TYPE.search(h) and not h.rstrip().endswith(")"):
        return "type"
    if re.search(r"\]\s*(\([^()]*\))?\s*(mutable|noexcept|->\s*[\w:<>,&*\s]+)*\s*$", h):
        return "lambda"
    if _HEADER_FUNC_TAIL.search(h):
        return "function"
    if h.endswith("=") or h.endswith(",") or h.endswith("(") or h.endswith("{"):
        return "init"
    return "block"


def track_scopes(code_lines):
    """Single pass over the cleaned lines building per-line scope context.

    Tracks a brace-scope stack (function / if / else / switch / loop /
    type / lambda / block), plus braceless conditional bodies
    (`if (x) stmt;`) which stay conditional until the statement's ';'."""
    infos = [LineInfo() for _ in code_lines]
    stack = [Scope("top", 0)]
    header = []          # chars since last ; { } at paren depth 0
    header_start = None  # line where current header began
    paren_depth = 0
    paren_headers = []   # control keywords whose ( .. ) closed in this header
    braceless = []       # [(kind, header_line)] awaiting their ';'
    pending_ctrl = None  # (kind, header_line): control header closed, no '{' yet

    def snapshot(line_no):
        info = infos[line_no - 1]
        func = None
        cond = None
        loop = False
        for s in stack:
            if s.kind in FUNCTION_KINDS:
                func = s.header_line
                cond = None
                loop = False
            elif s.kind in CONDITIONAL_KINDS:
                cond = s.header_line
            elif s.kind == "loop":
                loop = True
        for kind, hline in braceless:
            if kind in CONDITIONAL_KINDS:
                cond = hline
        if pending_ctrl and pending_ctrl[0] in CONDITIONAL_KINDS:
            cond = pending_ctrl[1]
        info.conditional_header = cond
        info.function_header = func
        info.in_loop = loop

    for line_no, line in enumerate(code_lines, start=1):
        snapshot(line_no)
        for idx, c in enumerate(line):
            if c in " \t":
                header.append(c)
                continue
            if header_start is None and c not in "}{;":
                header_start = line_no
            if c == "(":
                if paren_depth == 0:
                    m = re.search(r"(if|switch|for|while)\s*$",
                                  "".join(header))
                    paren_headers.append(m.group(1) if m else None)
                paren_depth += 1
                header.append(c)
                continue
            if c == ")":
                paren_depth = max(0, paren_depth - 1)
                header.append(c)
                if paren_depth == 0 and paren_headers and paren_headers[-1]:
                    kind = paren_headers[-1]
                    if kind == "if":
                        pending_ctrl = ("if", header_start or line_no)
                    elif kind == "switch":
                        pending_ctrl = ("switch", header_start or line_no)
                    elif kind in ("for", "while"):
                        pending_ctrl = ("loop", header_start or line_no)
                # re-snapshot so a braceless body on this same line (after
                # the ')') still sees the pending conditional
                snapshot(line_no)
                continue
            if paren_depth > 0:
                header.append(c)
                continue
            if c == "{":
                kws = [k for k in paren_headers if k]
                text = "".join(header)
                if pending_ctrl and pending_ctrl[0] == "if" and "if" not in kws:
                    kws.append("if")
                if re.search(r"(?:^|\})\s*else\s*$", text.strip()):
                    kws.append("else")
                kind = _classify_header(text, kws)
                stack.append(Scope(kind, header_start or line_no))
                header = []
                header_start = None
                paren_headers = []
                pending_ctrl = None
                snapshot(line_no)
                continue
            if c == "}":
                if len(stack) > 1:
                    stack.pop()
                header = []
                header_start = None
                paren_headers = []
                pending_ctrl = None
                snapshot(line_no)
                continue
            if c == ";":
                if pending_ctrl:
                    # `if (x) ;` or `if (x) stmt;` on one statement: the
                    # statement just ended, conditional over.
                    pending_ctrl = None
                elif braceless:
                    braceless.pop()
                header = []
                header_start = None
                paren_headers = []
                snapshot(line_no)
                continue
            # Any other code character: if a control header is pending and
            # this is not '{', we are entering a braceless body.
            if pending_ctrl:
                braceless.append(pending_ctrl)
                pending_ctrl = None
                snapshot(line_no)
            if header_start is None:
                header_start = line_no
            header.append(c)
        # `else` keyword followed by newline then statement: keep pending
        tail = "".join(header).strip()
        if tail.endswith("else"):
            pending_ctrl = ("else", line_no)
    return infos


# ---------------------------------------------------------------------------
# Manifest: path classes + whitelists
# ---------------------------------------------------------------------------

class Manifest:
    """Path-class manifest (tools/analyze/manifest.toml).

    * `classes.output`  — files that serialize results: metrics export,
      reports, trace sinks, campaign artifacts. R1's reachability closure
      seeds from these.
    * `classes.parallel` — files the kernel rewrite will run concurrently;
      R5 audits their floating-point accumulations.
    * `whitelist.*` — per-rule prefix whitelists (R3 clock telemetry, the
      RNG façade, ...).
    """

    def __init__(self, data=None):
        data = data or {}
        classes = data.get("classes", {})
        self.output_seeds = tuple(classes.get("output", ()))
        self.parallel = tuple(classes.get("parallel", ()))
        wl = data.get("whitelist", {})
        self.rng_facade = tuple(wl.get("rng-facade", ("src/util/random.",)))
        self.clock_telemetry = tuple(wl.get("clock-telemetry", ()))
        self.all_classes = False  # fixture mode: every file in every class

    @classmethod
    def load(cls, root):
        path = os.path.join(root, MANIFEST_RELPATH)
        if not os.path.isfile(path):
            return cls()
        return cls(_load_toml(path))

    @classmethod
    def fixture_mode(cls):
        m = cls()
        m.all_classes = True
        return m

    @staticmethod
    def _match(rel, prefixes):
        rel = rel.replace(os.sep, "/")
        return any(rel.startswith(p) for p in prefixes)

    def is_output_seed(self, rel):
        return self.all_classes or self._match(rel, self.output_seeds)

    def is_parallel(self, rel):
        return self.all_classes or self._match(rel, self.parallel)

    def is_rng_facade(self, rel):
        return not self.all_classes and self._match(rel, self.rng_facade)

    def is_clock_telemetry(self, rel):
        return not self.all_classes and self._match(rel, self.clock_telemetry)


def _load_toml(path):
    with open(path, "rb") as f:
        if tomllib is not None:
            return tomllib.load(f)
        return _mini_toml(f.read().decode("utf-8", errors="replace"))


def _mini_toml(text):
    """Tiny fallback for images older than Python 3.11: handles exactly the
    subset the manifest/ledger use — [table], [[array-of-tables]], string
    keys, integers, and arrays of strings."""
    root = {}
    current = root
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = re.match(r"^\[\[([\w.-]+)\]\]$", line)
        if m:
            current = {}
            root.setdefault(m.group(1), []).append(current)
            continue
        m = re.match(r"^\[([\w.-]+)\]$", line)
        if m:
            current = root.setdefault(m.group(1), {})
            continue
        m = re.match(r'^([\w-]+)\s*=\s*(.+)$', line)
        if not m:
            continue
        key, val = m.group(1), m.group(2).strip()
        if val.startswith("["):
            current[key] = re.findall(r'"((?:[^"\\]|\\.)*)"', val)
        elif val.startswith('"'):
            current[key] = re.match(r'"((?:[^"\\]|\\.)*)"', val).group(1)
        elif re.match(r"^-?\d+$", val):
            current[key] = int(val)
        else:
            current[key] = val
    return root


# ---------------------------------------------------------------------------
# Include graph / R1 reachability
# ---------------------------------------------------------------------------

def build_reachability(files, manifest):
    """R1's sensitive set: every file an output-path file can reach.

    Seeds are the manifest's `classes.output` files. Edges are quoted
    #include targets, resolved against the repo root and the including
    file's directory, PLUS header→implementation pairing (foo.hpp pulls in
    foo.cpp): a function defined in foo.cpp runs when an output path calls
    through foo.hpp, so the pair travels together."""
    by_rel = {f.rel.replace(os.sep, "/"): f for f in files}

    def resolve(rel, inc):
        inc = inc.replace("\\", "/")
        cand = os.path.normpath(
            os.path.join(os.path.dirname(rel), inc)).replace(os.sep, "/")
        if cand in by_rel:
            return cand
        if inc in by_rel:
            return inc
        for prefix in ("src/",):
            if prefix + inc in by_rel:
                return prefix + inc
        return None

    edges = {}
    for rel, f in by_rel.items():
        targets = set()
        for inc in f.includes:
            t = resolve(rel, inc)
            if t:
                targets.add(t)
        # hpp <-> cpp pairing (both directions: the implementation of a
        # reachable header is reachable, and a reachable .cpp's own header
        # already arrives via its #include).
        stem = re.sub(r"\.(hpp|h|cpp)$", "", rel)
        for ext in (".hpp", ".h", ".cpp"):
            pair = stem + ext
            if pair != rel and pair in by_rel:
                targets.add(pair)
        edges[rel] = targets

    sensitive = set()
    frontier = [rel for rel in by_rel if manifest.is_output_seed(rel)]
    while frontier:
        rel = frontier.pop()
        if rel in sensitive:
            continue
        sensitive.add(rel)
        frontier.extend(edges.get(rel, ()))
    return sensitive


# ---------------------------------------------------------------------------
# Suppression ledger
# ---------------------------------------------------------------------------

class LedgerEntry:
    __slots__ = ("rule", "file", "line", "contains", "reason",
                 "toml_line", "matched")

    def __init__(self, rule, file, line, contains, reason, toml_line):
        self.rule = rule
        self.file = file
        self.line = line
        self.contains = contains
        self.reason = reason
        self.toml_line = toml_line
        self.matched = 0

    def matches(self, finding, raw_line):
        if self.rule != finding.rule:
            return False
        if self.file != finding.file.replace(os.sep, "/"):
            return False
        if self.line is not None and self.line != finding.line:
            return False
        if self.contains and self.contains not in raw_line:
            return False
        return True


class Ledger:
    """tools/analyze/suppressions.toml — the only suppression channel for
    the determinism rules. Audited: entries without a justification, with
    an unknown rule id, or matching nothing are findings themselves."""

    def __init__(self, entries, audit_findings):
        self.entries = entries
        self.audit_findings = audit_findings

    @classmethod
    def load(cls, root, known_rules, path=None):
        path = path or os.path.join(root, LEDGER_RELPATH)
        entries = []
        audit = []
        if not os.path.isfile(path):
            return cls(entries, audit)
        data = _load_toml(path)
        # tomllib gives no line numbers; recover each entry's line by
        # scanning for the n-th [[suppress]] header (a trailing comment on
        # the header line is fine).
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
        headers = [i + 1 for i, l in enumerate(lines)
                   if l.strip().startswith("[[suppress]]")]
        for idx, item in enumerate(data.get("suppress", [])):
            toml_line = headers[idx] if idx < len(headers) else 1
            rule = item.get("rule", "")
            file = item.get("file", "")
            reason = (item.get("reason") or "").strip()
            problems = []
            if rule not in known_rules:
                problems.append(f"unknown rule id '{rule}'")
            if not file:
                problems.append("missing 'file'")
            if len(reason) < MIN_REASON_LEN:
                problems.append(
                    "missing or too-short 'reason' (a real justification "
                    f"of >= {MIN_REASON_LEN} chars is mandatory)")
            if problems:
                audit.append(Finding(
                    "invalid-suppression", LEDGER_RELPATH, toml_line,
                    "; ".join(problems)))
                continue
            entries.append(LedgerEntry(
                rule, file, item.get("line"), item.get("contains"),
                reason, toml_line))
        return cls(entries, audit)

    def apply(self, findings, raw_line_of, active_rules=None):
        """Mark suppressed findings; afterwards report stale entries.

        `active_rules` limits the staleness audit to entries whose rule
        actually ran this invocation — a partial `--rules` run must not
        condemn entries for rules it never gave a chance to fire.
        """
        for finding in findings:
            if finding.suppressed:
                continue
            raw = raw_line_of(finding)
            for e in self.entries:
                if e.matches(finding, raw):
                    e.matched += 1
                    finding.suppressed = "ledger"
                    finding.reason = e.reason
                    break
        stale = [
            Finding("stale-suppression", LEDGER_RELPATH, e.toml_line,
                    f"entry for [{e.rule}] {e.file}"
                    f"{':' + str(e.line) if e.line else ''} matches no "
                    "finding; delete it (the hazard it excused is gone)")
            for e in self.entries
            if e.matched == 0
            and (active_rules is None or e.rule in active_rules)
        ]
        return self.audit_findings + stale


# ---------------------------------------------------------------------------
# Tree walking
# ---------------------------------------------------------------------------

def collect_files(root, scan_dirs=SCAN_DIRS, extensions=EXTENSIONS):
    """Load every C++ file under the scan dirs, tokenized."""
    files = []
    for sub in scan_dirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith("build") and d != "golden")
            for name in sorted(filenames):
                if not name.endswith(extensions):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8", errors="replace") as f:
                    files.append(SourceFile(rel, f.read()))
    return files
