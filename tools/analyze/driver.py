"""wmsn-analyze driver — CLI, ledger application, fixture self-test.

Entry points:
  scripts/wmsn_analyze.py   the determinism auditor (full rule pack)
  scripts/wmsn_lint.py      back-compat shim (same engine, deprecation note)

Modes:
  (default)      scan src/ tests/ bench/ examples/ under --root, apply the
                 tools/analyze/suppressions.toml ledger, print unsuppressed
                 findings. Exit 0 clean, 1 findings, 2 usage.
  --list-rules   print the rule registry (id, group, hazard).
  --json         machine-readable output (findings incl. suppressed ones).
  --rules A,B    restrict to rule ids / groups (e.g. --rules R4,lint).
  --fixtures     run the fixture corpus under tools/analyze/fixtures/ and
                 verify every `// expect: <rule>` marker — the analyzer's
                 own test suite (wired as `ctest -L analyze`).
"""

import argparse
import json
import os
import sys

import engine
import rules as rules_mod
from engine import Finding, Ledger, Manifest, collect_files


def analyze_tree(root, selection=None, with_ledger=True):
    """Scan the repo; returns (findings, scanned_count, audit findings)."""
    manifest = Manifest.load(root)
    files = collect_files(root)
    active = rules_mod.rules_by_selection(selection)
    findings = rules_mod.run_rules(files, manifest, active)
    audit = []
    if with_ledger:
        by_rel = {f.rel: f for f in files}

        def raw_line_of(finding):
            f = by_rel.get(finding.file)
            return f.raw(finding.line) if f else ""

        ledger = Ledger.load(root, rules_mod.RULE_IDS)
        audit = ledger.apply(findings, raw_line_of,
                             active_rules={r.id for r in active})
    return findings, len(files), audit


def print_findings(findings, audit, scanned, as_json, label="wmsn-analyze"):
    open_findings = [f for f in findings if not f.suppressed] + audit
    if as_json:
        print(json.dumps({
            "version": 1,
            "tool": label,
            "scanned": scanned,
            "unsuppressed": len(open_findings),
            "findings": [f.as_json() for f in open_findings],
            "suppressed": [f.as_json() for f in findings if f.suppressed],
        }, indent=2, sort_keys=True))
        return 1 if open_findings else 0
    for f in sorted(open_findings, key=lambda x: (x.file, x.line, x.rule)):
        print(f.format())
    suppressed = sum(1 for f in findings if f.suppressed)
    if open_findings:
        print(f"{label}: {len(open_findings)} finding(s) in {scanned} files "
              f"({suppressed} suppressed)", file=sys.stderr)
        return 1
    print(f"{label}: clean ({scanned} files, {suppressed} suppressed)")
    return 0


def list_rules():
    print(f"{'rule':26} {'group':6} description")
    for r in rules_mod.RULES:
        print(f"{r.id:26} {r.group:6} {r.description}")
        print(f"{'':26} {'':6}   hazard: {r.hazard}")
        if r.aliases:
            print(f"{'':26} {'':6}   legacy aliases: {', '.join(r.aliases)}")
    for rid, desc in sorted(rules_mod.META_RULES.items()):
        print(f"{rid:26} {'meta':6} {desc}")
    return 0


# ---------------------------------------------------------------------------
# Fixture self-test
# ---------------------------------------------------------------------------

EXPECT = "// expect:"


def _expected_markers(path):
    """{(line, rule)} for every `// expect: ruleA, ruleB` marker."""
    expected = set()
    with open(path, encoding="utf-8", errors="replace") as fh:
        for i, line in enumerate(fh, start=1):
            idx = line.find(EXPECT)
            if idx < 0:
                continue
            for rid in line[idx + len(EXPECT):].split(","):
                rid = rid.strip()
                if rid:
                    expected.add((i, rid))
    return expected


def _run_fixture_dir(dirpath, errors):
    """Analyze one fixture corpus dir (all path classes active) and diff
    findings against the expect markers. Subdirs with a suppressions.toml
    of their own exercise the ledger round-trip."""
    manifest = Manifest.fixture_mode()
    files = collect_files(dirpath, scan_dirs=(".",))
    findings = rules_mod.run_rules(files, manifest)
    ledger_path = os.path.join(dirpath, "suppressions.toml")
    audit = []
    if os.path.isfile(ledger_path):
        by_rel = {f.rel: f for f in files}

        def raw_line_of(finding):
            f = by_rel.get(finding.file)
            return f.raw(finding.line) if f else ""

        # Ledger entries in fixtures address files relative to the fixture
        # dir, which is exactly how collect_files named them; the ledger
        # itself sits at the case root, not at the repo-tree relpath.
        ledger = Ledger.load(dirpath, rules_mod.RULE_IDS, path=ledger_path)
        audit = ledger.apply(findings, raw_line_of)

    got = {(f.file, f.line, f.rule) for f in findings if not f.suppressed}
    got |= {(f.file, f.line, f.rule) for f in audit}
    expected = set()
    for f in files:
        for line, rule in _expected_markers(os.path.join(dirpath, f.rel)):
            expected.add((f.rel, line, rule))
    if os.path.isfile(ledger_path):
        for line, rule in _expected_markers(ledger_path):
            expected.add((engine.LEDGER_RELPATH, line, rule))

    name = os.path.basename(dirpath)
    for miss in sorted(expected - got):
        errors.append(f"{name}/{miss[0]}:{miss[1]}: expected [{miss[2]}] "
                      "but the rule did not fire")
    for extra in sorted(got - expected):
        errors.append(f"{name}/{extra[0]}:{extra[1]}: unexpected "
                      f"[{extra[2]}] finding (add an `// expect:` marker "
                      "if intended)")


def run_fixtures(fixtures_dir):
    """Every immediate subdir of fixtures/ is one corpus case."""
    if not os.path.isdir(fixtures_dir):
        print(f"wmsn-analyze: no fixtures dir: {fixtures_dir}",
              file=sys.stderr)
        return 2
    errors = []
    cases = sorted(
        d for d in os.listdir(fixtures_dir)
        if os.path.isdir(os.path.join(fixtures_dir, d)))
    for case in cases:
        _run_fixture_dir(os.path.join(fixtures_dir, case), errors)
    if errors:
        for e in errors:
            print(e)
        print(f"wmsn-analyze --fixtures: {len(errors)} mismatch(es) across "
              f"{len(cases)} cases", file=sys.stderr)
        return 1
    print(f"wmsn-analyze --fixtures: {len(cases)} cases ok")
    return 0


# ---------------------------------------------------------------------------

def main(argv=None, label="wmsn-analyze", deprecation_note=None):
    parser = argparse.ArgumentParser(
        prog=label, description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: the tool's repo)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable findings")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids / groups to run")
    parser.add_argument("--fixtures", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="run the fixture self-test corpus "
                             "(default: tools/analyze/fixtures)")
    args = parser.parse_args(argv)

    if deprecation_note:
        print(deprecation_note, file=sys.stderr)

    if args.list_rules:
        return list_rules()

    tool_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    root = args.root or tool_root
    if not os.path.isdir(root):
        print(f"{label}: no such directory: {root}", file=sys.stderr)
        return 2

    if args.fixtures is not None:
        fixtures = args.fixtures or os.path.join(
            tool_root, "tools", "analyze", "fixtures")
        return run_fixtures(fixtures)

    selection = args.rules.split(",") if args.rules else None
    findings, scanned, audit = analyze_tree(root, selection)
    return print_findings(findings, audit, scanned, args.json, label=label)
