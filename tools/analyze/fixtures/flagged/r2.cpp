// R2 fixture — pointer-keyed ordering and address hashing.
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

struct Node;

struct Registry {
  std::map<Node*, int> rankByNode_;            // expect: R2-pointer-keyed-order
  std::unordered_map<const Node*, int> hits_;  // expect: R2-pointer-keyed-order
  std::set<Node*, std::less<Node*>> order_;    // expect: R2-pointer-keyed-order
};

using NodeHash = std::hash<Node*>;  // expect: R2-pointer-keyed-order
