// R5 fixture — floating-point compound accumulation in a file the kernel
// parallelizes (fixture mode puts every file in the parallel class).
struct Battery {
  double remaining_ = 1.0;

  void draw(double joules) {
    remaining_ -= joules;  // expect: R5-float-reduction
  }

  void refund(double joules) {
    remaining_ += joules;  // expect: R5-float-reduction
  }
};
