// R3 fixture — ambient nondeterminism sources outside any whitelist
// (fixture mode has no telemetry whitelist and no RNG facade).
#include <chrono>
#include <cstdlib>
#include <ctime>  // expect: R3-nondet-source

inline long stamp() {
  return std::chrono::steady_clock::now()  // expect: R3-nondet-source
      .time_since_epoch()
      .count();
}

inline const char* crashHook() {
  return std::getenv("WMSN_FIXTURE");  // expect: R3-nondet-source
}
