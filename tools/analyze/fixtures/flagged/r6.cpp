// R6 fixture — raw trace emission bypassing WMSN_TRACE, and a
// side-effecting WMSN_INVARIANT condition. (Analyzer input, not compiled:
// Tracer stays an incomplete type on purpose.)
struct Tracer;

inline void record(Tracer* t, int v) {
  t->emitSpan(v);  // expect: R6-macro-discipline
}

#define WMSN_INVARIANT(cond) ((void)0)

inline void tick(int n) {
  WMSN_INVARIANT(++n > 0);  // expect: R6-macro-discipline
}
