// R4 fixture — Rng draws inside conditionals with NO fixed-draws
// annotation: braced if-body, braceless same-line body, short-circuit.
struct Rng {
  double uniform01();
  bool chance(double p);
};

struct Sampler {
  Rng rng_;

  double bracedBody(bool armed) {
    double v = 0.0;
    if (armed) {
      v = rng_.uniform01();  // expect: R4-rng-draw-divergence
    }
    return v;
  }

  double bracelessBody(bool armed) {
    double v = 0.0;
    if (armed) v = rng_.uniform01();  // expect: R4-rng-draw-divergence
    return v;
  }

  bool shortCircuit(bool alive) {
    return alive && rng_.chance(0.5);  // expect: R4-rng-draw-divergence
  }
};
