// Legacy lint-group fixtures — float equality, process discipline,
// range-scan discipline, single-slot observer.
#include <cstdlib>
#include <functional>

inline bool atUnit(double x) {
  return x == 1.0;  // expect: float-equality
}

inline void shell() {
  std::system("true");  // expect: process-discipline
}

struct Radio {
  bool linked(int a, int b);
};

inline bool near(Radio& r) {
  return r.linked(0, 1);  // expect: rangescan-discipline
}

struct Hub {
  std::function<void(int)> frameObserver_;  // expect: observer-contract
};
