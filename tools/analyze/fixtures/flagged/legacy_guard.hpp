// expect: include-guard
struct FixtureGuardless {};
