// R1 fixture — unordered-container iteration in an output-reachable file
// (fixture mode puts every file in the output class).
#include <cstdint>
#include <unordered_map>

struct Report {
  std::unordered_map<std::uint32_t, double> latencyByNode_;

  double sum() const {
    double total = 0.0;
    for (const auto& kv : latencyByNode_)  // expect: R1-unordered-iteration
      total = total + kv.second;
    return total;
  }

  void walk() const {
    auto it = latencyByNode_.begin();  // expect: R1-unordered-iteration
    (void)it;
  }
};
