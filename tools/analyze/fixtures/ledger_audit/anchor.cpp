// Ledger-audit fixture: the R5 finding below is matched by the first
// ledger entry; the remaining entries are stale or invalid and must be
// reported by the ledger's self-audit (see suppressions.toml markers).
struct Meter {
  double total_ = 0.0;

  void accumulate(double v) { total_ += v; }
};
