// Ledger round-trip fixture: both findings below (R3 steady_clock, R5
// float reduction) are covered by this case's suppressions.toml, so the
// analyzer must report nothing for this directory.
#include <chrono>

struct Telemetry {
  double seconds_ = 0.0;

  void tick(double dt) { seconds_ += dt; }

  long stamp() const {
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }
};
