// R2 clean counterpart — containers keyed by stable ids, not addresses.
#include <cstdint>
#include <map>
#include <set>

struct Router {
  std::map<std::uint32_t, double> costById_;
  std::set<std::uint64_t> seenUids_;

  double cost(std::uint32_t id) const {
    auto it = costById_.find(id);
    return it != costById_.end() ? it->second : 0.0;
  }
};
