// R1 clean counterpart — point lookups and id-ordered iteration keep the
// unordered map's bucket order out of the output.
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Report {
  std::unordered_map<std::uint32_t, double> latencyByNode_;

  double total(const std::vector<std::uint32_t>& idsInOrder) const {
    double sum = 0.0;
    for (std::uint32_t id : idsInOrder) {
      auto it = latencyByNode_.find(id);
      if (it != latencyByNode_.end()) sum = sum + it->second;
    }
    return sum;
  }
};
