// R5 clean counterpart — integer accumulators may fold freely; float
// state updated by plain assignment is not a reduction.
#include <cstdint>

struct Stats {
  std::uint64_t frames_ = 0;
  double mean_ = 0.0;

  void onFrame(double sample) {
    frames_ += 1;
    mean_ = mean_ + (sample - mean_) / static_cast<double>(frames_);
  }
};
