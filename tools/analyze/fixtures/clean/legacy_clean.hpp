#pragma once

// Legacy clean counterpart — guarded header, tolerance-based comparison.
inline bool nearUnit(double x) {
  const double eps = 1e-9;
  return x > 1.0 - eps && x < 1.0 + eps;
}
