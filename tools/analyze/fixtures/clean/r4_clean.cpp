// R4 clean counterpart — annotated conditional draws, one per anchor
// position (draw line, conditional header, function header), plus an
// unconditional draw that needs no annotation.
struct Rng {
  double uniform01();
};

struct Sampler {
  Rng rng_;

  double onDrawLine(bool armed) {
    double v = 0.0;
    if (armed) {
      // wmsn:fixed-draws — fixture: the predicate is a config constant.
      v = rng_.uniform01();
    }
    return v;
  }

  double onConditionalHeader(bool armed) {
    double v = 0.0;
    // wmsn:fixed-draws — fixture: anchor on the `if` header covers the
    // whole branch body.
    if (armed) {
      v = rng_.uniform01();
    }
    return v;
  }

  // wmsn:fixed-draws — fixture: function-level anchor covers every draw
  // in the body, including the braceless one.
  double onFunctionHeader(bool armed) {
    double v = 1.0;
    if (armed) v = rng_.uniform01();
    return v;
  }

  double unconditional() { return rng_.uniform01(); }
};
