// R6 clean counterpart — trace/perf ride their null-guard macros and the
// invariant condition is a pure comparison. (Stub macros: analyzer input,
// not compiled.)
#define WMSN_TRACE(tracer, ...) ((void)0)
#define WMSN_PERF(counter, ...) ((void)0)
#define WMSN_INVARIANT(cond) ((void)0)

inline void record(int v) {
  WMSN_TRACE(nullptr, v);
  WMSN_PERF(kFramesOffered);
  WMSN_INVARIANT(v >= 0);
}
