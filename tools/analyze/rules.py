"""wmsn-analyze rule pack — R1-R6 determinism rules + absorbed lint rules.

Each rule documents the hazard and why it breaks the repo's byte-identity
contract (output byte-identical across `--threads`, `--resume`, and worker
crashes). The DESIGN.md "Correctness tooling" table mirrors this registry;
`--list-rules` prints it.
"""

import os
import re

from engine import Finding, build_reachability

DRAW_METHODS = ("next", "uniformInt", "uniform01", "uniform", "chance",
                "normal", "exponential", "shuffle", "pick", "index", "fork")


class Rule:
    __slots__ = ("id", "group", "description", "hazard", "aliases",
                 "inline_ok", "check")

    def __init__(self, id, group, description, hazard, check,
                 aliases=(), inline_ok=False):
        self.id = id
        self.group = group
        self.description = description
        self.hazard = hazard
        self.aliases = aliases
        # inline_ok: legacy wmsn-lint rules keep honouring the historical
        # `// wmsn-lint: allow(<rule>)` comment. The determinism rules
        # R1-R6 accept inline allows ONLY under a grandfathered legacy
        # alias; their own ids suppress exclusively via the ledger.
        self.inline_ok = inline_ok
        self.check = check


class TreeContext:
    """Cross-file state shared by the per-file checks."""

    def __init__(self, files, manifest):
        self.manifest = manifest
        self.by_rel = {f.rel: f for f in files}
        self.sensitive = build_reachability(files, manifest)
        self.unordered_names = {f.rel: collect_unordered_names(f)
                                for f in files}
        self.float_names = {f.rel: collect_float_names(f) for f in files}
        self.rng_names = {f.rel: collect_rng_names(f) for f in files}
        self._closure_cache = {}

    def include_closure(self, rel):
        """rel + every repo file it transitively includes (plus hpp/cpp
        pairs) — the set whose declarations are visible to rel."""
        if rel in self._closure_cache:
            return self._closure_cache[rel]
        seen = set()
        frontier = [rel]
        while frontier:
            r = frontier.pop()
            if r in seen or r not in self.by_rel:
                continue
            seen.add(r)
            f = self.by_rel[r]
            for inc in f.includes:
                t = self._resolve(r, inc)
                if t:
                    frontier.append(t)
            stem = re.sub(r"\.(hpp|h|cpp)$", "", r)
            for ext in (".hpp", ".h"):
                if stem + ext in self.by_rel:
                    frontier.append(stem + ext)
        self._closure_cache[rel] = seen
        return seen

    def _resolve(self, rel, inc):
        inc = inc.replace("\\", "/")
        cand = os.path.normpath(
            os.path.join(os.path.dirname(rel), inc)).replace(os.sep, "/")
        if cand in self.by_rel:
            return cand
        if inc in self.by_rel:
            return inc
        if "src/" + inc in self.by_rel:
            return "src/" + inc
        return None

    def visible_names(self, rel, table):
        names = set()
        for r in self.include_closure(rel):
            names |= table.get(r, set())
        return names


# ---------------------------------------------------------------------------
# Declaration collectors
# ---------------------------------------------------------------------------

_UNORDERED_DECL = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
_IDENT_AFTER = re.compile(r"\s*(?:&\s*)?([A-Za-z_]\w*)\s*[;={(,)]")


def _joined(f):
    return "\n".join(f.code_lines)


def _line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def _skip_template_args(text, pos):
    """pos points at '<'; return index just past the matching '>'."""
    depth = 0
    i = pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return i  # malformed / not a template after all
        i += 1
    return n


def collect_unordered_names(f):
    """Identifiers declared with std::unordered_{map,set,...} type."""
    text = _joined(f)
    names = set()
    for m in _UNORDERED_DECL.finditer(text):
        lt = text.index("<", m.start())
        end = _skip_template_args(text, lt)
        im = _IDENT_AFTER.match(text, end)
        if im:
            names.add(im.group(1))
    return names


_FLOAT_DECL = re.compile(
    r"(?:^|[;{}(,]|\bmutable\s|\bstatic\s|\bconstexpr\s)\s*"
    r"(?:double|float)\s+([A-Za-z_]\w*)\s*[;={]")


def collect_float_names(f):
    """Identifiers declared as raw double/float (accumulator candidates)."""
    return {m.group(1) for m in _FLOAT_DECL.finditer(_joined(f))}


_RNG_DECL = re.compile(
    r"\b(?:wmsn\s*::\s*)?(?:util\s*::\s*)?(?:Rng|SplitMix64)\s*[&*]?\s+"
    r"([A-Za-z_]\w*)\s*[;=({,)]")


def collect_rng_names(f):
    """Identifiers declared with the deterministic Rng / SplitMix64 type
    (locals, members, parameters)."""
    return {m.group(1) for m in _RNG_DECL.finditer(_joined(f))}


# ---------------------------------------------------------------------------
# R1 — unordered-container iteration on output-reachable paths
# ---------------------------------------------------------------------------

_RANGE_FOR = re.compile(
    r"\bfor\s*\([^;()]*?:\s*(?:this\s*->\s*)?((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*"
    r"[A-Za-z_]\w*)\s*\)")
_BEGIN_CALL = re.compile(
    r"\b(?:this\s*->\s*)?((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*[A-Za-z_]\w*)\s*"
    r"(?:\.|->)\s*c?begin\s*\(")


def check_r1(f, ctx, emit):
    if not ctx.manifest.all_classes and f.rel not in ctx.sensitive:
        return
    names = ctx.visible_names(f.rel, ctx.unordered_names)
    if not names:
        return
    for i, line in enumerate(f.code_lines, start=1):
        hits = []
        for m in _RANGE_FOR.finditer(line):
            hits.append((m.group(1), "range-for over"))
        for m in _BEGIN_CALL.finditer(line):
            hits.append((m.group(1), "iterator walk of"))
        for expr, how in hits:
            leaf = re.split(r"\.|->", expr.replace(" ", ""))[-1]
            if leaf in names:
                emit(Finding(
                    "R1-unordered-iteration", f.rel, i,
                    f"{how} std::unordered container '{leaf}' in an "
                    "output-reachable file: hash-bucket order is not part "
                    "of the determinism contract (it shifts with load "
                    "factor, libstdc++ version and insert history). "
                    "Iterate a sorted key snapshot, or switch the "
                    "container to std::map/std::vector"))


# ---------------------------------------------------------------------------
# R2 — pointer-keyed ordering / address hashing
# ---------------------------------------------------------------------------

_PTR_KEY_ORDERED = re.compile(
    r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?"
    r"[\w:]+(?:\s*<[^<>]*>)?\s*\*")
_PTR_KEY_UNORDERED = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?"
    r"[\w:]+(?:\s*<[^<>]*>)?\s*\*")
_PTR_HASH = re.compile(r"\bstd\s*::\s*hash\s*<\s*(?:const\s+)?[\w:]+\s*\*\s*>")
_PTR_LESS = re.compile(r"\bstd\s*::\s*less\s*<\s*(?:const\s+)?[\w:]+\s*\*\s*>")


def check_r2(f, ctx, emit):
    text = _joined(f)
    for pat, what in ((_PTR_KEY_ORDERED, "pointer-keyed std::map/set"),
                      (_PTR_KEY_UNORDERED,
                       "pointer-keyed std::unordered_map/set"),
                      (_PTR_HASH, "std::hash over a pointer type"),
                      (_PTR_LESS, "std::less over a pointer type")):
        for m in pat.finditer(text):
            emit(Finding(
                "R2-pointer-keyed-order", f.rel, _line_of(text, m.start()),
                f"{what}: ordering/hashing by heap address varies with "
                "allocator state, ASLR and malloc history, so any walk or "
                "tie-break over it diverges across runs. Key by a stable "
                "id (NodeId, uid, index) instead"))


# ---------------------------------------------------------------------------
# R3 — non-deterministic sources (wall clock, ambient RNG, environment)
# ---------------------------------------------------------------------------

_R3_TOKENS = [
    (re.compile(r"\bstd\s*::\s*rand\b|(?<![\w.:])rand\s*\(\s*\)"),
     "std::rand", "facade"),
    (re.compile(r"\bsrand\s*\("), "srand", "facade"),
    (re.compile(r"\brandom_device\b"), "std::random_device", "facade"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937", "facade"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr)", "facade"),
    (re.compile(r"\bsystem_clock\b"), "wall-clock system_clock", "never"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "high_resolution_clock", "never"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock", "telemetry"),
    (re.compile(r"\b(?:std\s*::\s*)?getenv\s*\("), "getenv", "never"),
]
_R3_BANNED_INCLUDE = re.compile(r'#\s*include\s*<(random|ctime)>')


def check_r3(f, ctx, emit):
    facade = ctx.manifest.is_rng_facade(f.rel)
    telemetry = ctx.manifest.is_clock_telemetry(f.rel)
    for i, line in enumerate(f.code_lines, start=1):
        for pat, label, scope in _R3_TOKENS:
            if not pat.search(line):
                continue
            if scope == "facade" and facade:
                continue
            if scope == "telemetry" and (telemetry or facade):
                continue
            if scope == "telemetry":
                msg = (f"{label} outside the whitelisted telemetry files "
                       "(tools/analyze/manifest.toml [whitelist]): a clock "
                       "read that feeds simulation state or output breaks "
                       "replay; telemetry belongs in obs::ResourceTelemetry")
            elif scope == "facade":
                msg = (f"{label} breaks deterministic replay; all "
                       "simulation randomness flows through wmsn::Rng "
                       "(src/util/random.hpp)")
            else:
                msg = (f"{label}: ambient process state (wall clock, "
                       "environment) leaking into a run makes its bytes "
                       "unreproducible across hosts and reruns")
            emit(Finding("R3-nondet-source", f.rel, i, msg))
        if not facade and _R3_BANNED_INCLUDE.search(line):
            emit(Finding(
                "R3-nondet-source", f.rel, i,
                "<random>/<ctime> only inside src/util/random.* — the "
                "deterministic RNG facade owns the only legitimate use"))


# ---------------------------------------------------------------------------
# R4 — RNG draw-count divergence in conditionals
# ---------------------------------------------------------------------------

_DRAW_CALL = re.compile(
    r"\b([A-Za-z_]\w*)\s*(\(\s*\))?\s*(?:\.|->)\s*(" +
    "|".join(DRAW_METHODS) + r")\s*\(")
_CTRL_OPEN = re.compile(r"\b(if|while|for)\s*\(")


def _same_line_conditional(line, pos):
    """Textual check for conditional constructs the scope tracker's
    line-start snapshot cannot see: same-line if/braceless bodies,
    short-circuit operands, and ternaries."""
    stmt = line[:pos].rsplit(";", 1)[-1]
    last = None
    for m in _CTRL_OPEN.finditer(stmt):
        last = m
    if last is not None:
        after = stmt[last.end() - 1:]
        depth = 0
        closed_at = None
        for j, c in enumerate(after):
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    closed_at = j
                    break
        if closed_at is not None:
            # Draw sits in the same-line body. An `if` body is conditional;
            # a for/while body is a LOOP body, which R4 excludes by design
            # (fixed-trip loops draw a fixed count).
            return last.group(1) == "if"
        # Draw inside the condition: conditional only when short-circuited.
        return bool(re.search(r"&&|\|\|", after))
    if re.search(r"&&|\|\|", stmt):
        return True  # short-circuit operand: `ok = alive && rng.chance(p)`
    if "?" in stmt:
        return True  # ternary arm (or condition tail — annotate either way)
    return False


def check_r4(f, ctx, emit):
    # The RNG facade is exempt: it DEFINES the draw-stream semantics
    # (e.g. the Marsaglia spare-normal cache is a documented part of the
    # stream contract), so "conditional draw" is its job description.
    if ctx.manifest.is_rng_facade(f.rel):
        return
    rng_names = ctx.visible_names(f.rel, ctx.rng_names)
    for i, line in enumerate(f.code_lines, start=1):
        for m in _DRAW_CALL.finditer(line):
            recv = m.group(1)
            if "rng" not in recv.lower() and recv not in rng_names:
                continue
            info = f.info(i)
            conditional = (info.conditional_header is not None or
                           _same_line_conditional(line, m.start()))
            if not conditional:
                continue
            if f.fixed_draws_at(i):
                continue
            emit(Finding(
                "R4-rng-draw-divergence", f.rel, i,
                f"'{recv}.{m.group(3)}(...)' draws inside a conditional: "
                "if the branch predicate ever depends on schedule, timing "
                "or telemetry, every later draw in the stream shifts and "
                "the run's bytes diverge. Verify the predicate is a pure "
                "function of simulation state and annotate "
                "`// wmsn:fixed-draws` (on the draw, its conditional "
                "header, or the function header), or hoist the draw out "
                "of the branch"))


# ---------------------------------------------------------------------------
# R5 — floating-point reductions in kernel-parallel files
# ---------------------------------------------------------------------------

_COMPOUND = re.compile(r"\b([A-Za-z_]\w*)\s*[+\-]=")


def check_r5(f, ctx, emit):
    if not ctx.manifest.is_parallel(f.rel):
        return
    names = ctx.visible_names(f.rel, ctx.float_names)
    if not names:
        return
    for i, line in enumerate(f.code_lines, start=1):
        for m in _COMPOUND.finditer(line):
            if m.group(1) not in names:
                continue
            emit(Finding(
                "R5-float-reduction", f.rel, i,
                f"floating-point accumulation into '{m.group(1)}' in a "
                "file the kernel parallelizes (manifest class 'parallel'): "
                "fp addition is not associative, so any future reordering "
                "of this reduction changes bytes. Keep the fold in a "
                "fixed (id-indexed) order, or suppress with a "
                "justification that the accumulator stays per-node-serial"))


# ---------------------------------------------------------------------------
# R6 — WMSN_TRACE / WMSN_PERF / WMSN_INVARIANT macro discipline
# ---------------------------------------------------------------------------

_TRACE_EXEMPT = re.compile(r"^(src/obs/|tests/)")
_TRACE_CALL = re.compile(r"\b(emitSpan|onEvent)\s*\(")
_PERF_EXEMPT = re.compile(r"^(src/obs/|tests/)")
_PERF_CALL = re.compile(
    r"\badd\s*\(\s*(?:::\s*)?(?:wmsn\s*::\s*)?(?:obs\s*::\s*)?PerfCounter\b")
_INVARIANT_EXEMPT = re.compile(r"^src/util/require\.hpp$")
_INVARIANT_CALL = re.compile(r"\bWMSN_INVARIANT(?:_MSG)?\s*\(")
_SIDE_EFFECT = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?!=)|"
    r"\b\w+\s*(?:\.|->)\s*(?:" + "|".join(DRAW_METHODS) + r")\s*\(")


def _macro_arg(text, open_paren):
    """First macro argument (up to the top-level ',' or the closing ')')."""
    depth = 0
    out = []
    for i in range(open_paren, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
            if depth == 1:
                continue
        elif c == ")":
            depth -= 1
            if depth == 0:
                break
        elif c == "," and depth == 1:
            break
        if depth >= 1:
            out.append(c)
    return "".join(out)


def check_r6(f, ctx, emit):
    # Trace/perf primitives must ride their null-guarding macros.
    if not _TRACE_EXEMPT.search(f.rel):
        for i, line in enumerate(f.code_lines, start=1):
            if _TRACE_CALL.search(line):
                emit(Finding(
                    "R6-macro-discipline", f.rel, i,
                    "direct emitSpan()/onEvent() outside src/obs/ bypasses "
                    "the WMSN_TRACE null-tracer guard and the "
                    "disabled-tracing zero-cost contract "
                    "(src/obs/packet_trace.hpp)"))
    if not _PERF_EXEMPT.search(f.rel):
        for i, line in enumerate(f.code_lines, start=1):
            if _PERF_CALL.search(line):
                emit(Finding(
                    "R6-macro-discipline", f.rel, i,
                    "direct PerfCounter add() outside src/obs/ bypasses "
                    "the WMSN_PERF null-ledger guard and crashes on "
                    "threads with no active ledger "
                    "(src/obs/perf_stats.hpp)"))
    # WMSN_INVARIANT conditions are compiled out by default: a side effect
    # or an Rng draw inside one makes the invariants build behave (and
    # draw!) differently from the production build.
    if not _INVARIANT_EXEMPT.search(f.rel):
        text = _joined(f)
        for m in _INVARIANT_CALL.finditer(text):
            if re.search(r"#\s*define\s*$",
                         text[max(0, m.start() - 80):m.start()].split("\n")[-1]):
                continue
            arg = _macro_arg(text, text.index("(", m.start()))
            if _SIDE_EFFECT.search(arg):
                emit(Finding(
                    "R6-macro-discipline", f.rel, _line_of(text, m.start()),
                    "side effect (assignment/increment/Rng draw) inside a "
                    "WMSN_INVARIANT condition: the macro compiles out by "
                    "default, so the invariants build would execute "
                    "different state mutations / draw counts than the "
                    "production build"))


# ---------------------------------------------------------------------------
# Absorbed legacy wmsn-lint rules (group "lint")
# ---------------------------------------------------------------------------

_FLOAT_EQ = re.compile(
    r"(?<![=!<>+\-*/&|^])(==|!=)\s*[+-]?\d+\.\d*(?![\w.])"
    r"|[+-]?\d+\.\d*\s*(==|!=)(?![=])")
_GTEST_LINE = re.compile(r"\b(EXPECT|ASSERT)_[A-Z_]+\s*\(")


def check_float_equality(f, ctx, emit):
    for i, line in enumerate(f.code_lines, start=1):
        if _FLOAT_EQ.search(line) and not _GTEST_LINE.search(line):
            emit(Finding(
                "float-equality", f.rel, i,
                "exact ==/!= on a floating-point literal; compare with a "
                "tolerance or an ordered test"))


_MUX_ATTACH = re.compile(r"\b\w*[oO]bservers?_\.attach\s*\(\s*(?P<arg>[^),]*)")
_STRING_LITERAL = re.compile(r'^\s*"')
_SINGLE_SLOT = re.compile(r"std::function\s*<[^;]*>\s*\w*[oO]bserver_\s*[;{=]")


def check_observer_contract(f, ctx, emit):
    for i, line in enumerate(f.code_lines, start=1):
        m = _MUX_ATTACH.search(line)
        if m:
            arg = m.group("arg").strip()
            if not arg and i < len(f.code_lines):
                arg = f.code_lines[i].strip()
            if not _STRING_LITERAL.match(arg):
                emit(Finding(
                    "observer-contract", f.rel, i,
                    "ObserverMux::attach needs a string-literal name at "
                    "the call site (see src/obs/mux.hpp)"))
        if _SINGLE_SLOT.search(line) and "mux.hpp" not in f.rel:
            emit(Finding(
                "observer-contract", f.rel, i,
                "single-slot std::function observer member; fan out "
                "through obs::ObserverMux instead (see src/obs/mux.hpp)"))


_PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b")


def check_include_guard(f, ctx, emit):
    if not f.is_header:
        return
    head = [l for l in f.raw_lines[:10] if l.strip()]
    if not any(_PRAGMA_ONCE.match(l) for l in head):
        emit(Finding("include-guard", f.rel, 1,
                     "header must start with #pragma once"))


_PROCESS_EXEMPT = re.compile(r"^(src/campaign/|src/util/random\.(cpp|hpp)$)")
_PROCESS_CALL = re.compile(
    r"(?<![\w.>])(?:::)?"
    r"(fork|vfork|execl|execle|execlp|execv|execve|execvp|execvpe"
    r"|posix_spawnp?|popen|system)\s*\(")


def check_process_discipline(f, ctx, emit):
    if _PROCESS_EXEMPT.search(f.rel):
        return
    for i, line in enumerate(f.code_lines, start=1):
        if _PROCESS_CALL.search(line):
            emit(Finding(
                "process-discipline", f.rel, i,
                "process creation is confined to src/campaign/ (the "
                "campaign worker pool owns fork/exec hygiene)"))


_RANGESCAN_EXEMPT = re.compile(r"^(src/(sim|net|mesh)/|tests/|bench/)")
_RANGESCAN_CALL = re.compile(r"[.>]\s*linked\s*\(")


def check_rangescan_discipline(f, ctx, emit):
    if _RANGESCAN_EXEMPT.search(f.rel):
        return
    for i, line in enumerate(f.code_lines, start=1):
        if _RANGESCAN_CALL.search(line):
            emit(Finding(
                "rangescan-discipline", f.rel, i,
                "direct linked() range test re-grows the O(n²) all-pairs "
                "scan; query SensorNetwork::neighborsOf or the spatial "
                "grid (docs/KERNEL.md)"))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

RULES = [
    Rule("R1-unordered-iteration", "R1",
         "unordered-container iteration reachable from output paths",
         "hash-bucket order leaks into bytes the determinism diff compares",
         check_r1),
    Rule("R2-pointer-keyed-order", "R2",
         "pointer-keyed map/set, address hashing or ordering",
         "heap addresses vary with ASLR/malloc history; any order over "
         "them diverges across runs",
         check_r2),
    Rule("R3-nondet-source", "R3",
         "wall clock / ambient RNG / getenv outside whitelisted telemetry",
         "ambient process state leaking into a run breaks replay across "
         "hosts and reruns",
         check_r3, aliases=("rng-discipline", "banned-header"),
         inline_ok=False),
    Rule("R4-rng-draw-divergence", "R4",
         "util::Rng draw inside a conditional without // wmsn:fixed-draws",
         "a schedule-dependent branch shifts every later draw in the "
         "stream; the annotation certifies the predicate is pure "
         "simulation state",
         check_r4),
    Rule("R5-float-reduction", "R5",
         "floating-point += / -= accumulation in kernel-parallel files",
         "fp addition is not associative; parallel reduction reorderings "
         "change bytes",
         check_r5),
    Rule("R6-macro-discipline", "R6",
         "WMSN_TRACE / WMSN_PERF riding their null-guard macros; "
         "side-effect-free WMSN_INVARIANT conditions",
         "bypassing the guards crashes unarmed threads or makes the "
         "invariants build execute differently from production",
         check_r6, aliases=("trace-discipline", "perf-discipline"),
         inline_ok=False),
    Rule("float-equality", "lint",
         "raw ==/!= on floating-point values",
         "exact fp comparison is brittle across optimization levels",
         check_float_equality, inline_ok=True),
    Rule("observer-contract", "lint",
         "observer wiring outside the ObserverMux contract",
         "single-slot observers silently evict; non-literal attach names "
         "defeat the double-attach audit",
         check_observer_contract, inline_ok=True),
    Rule("include-guard", "lint",
         "header missing #pragma once",
         "double inclusion breaks the one-definition discipline",
         check_include_guard, inline_ok=True),
    Rule("process-discipline", "lint",
         "fork/exec/system/popen outside src/campaign/",
         "stray process creation duplicates simulator state outside the "
         "pool's crash-isolation hygiene",
         check_process_discipline, inline_ok=True),
    Rule("rangescan-discipline", "lint",
         "direct linked() range test outside src/sim|net|mesh",
         "re-grows the O(n²) all-pairs scan the spatial grid deleted",
         check_rangescan_discipline, inline_ok=True),
]

META_RULES = {
    "stale-suppression":
        "suppressions.toml entry matching no finding (audited ledger)",
    "invalid-suppression":
        "suppressions.toml entry missing file/rule/justification",
}

RULE_IDS = {r.id for r in RULES} | set(META_RULES)


def rules_by_selection(selection=None):
    if not selection:
        return list(RULES)
    wanted = {s.strip() for s in selection}
    out = []
    for r in RULES:
        if r.id in wanted or r.group in wanted or \
                set(r.aliases) & wanted:
            out.append(r)
    return out


def run_rules(files, manifest, rules=None):
    """Run the rule pack; returns all findings (inline-suppressed ones
    already marked)."""
    ctx = TreeContext(files, manifest)
    active = rules if rules is not None else RULES
    findings = []
    for f in files:
        def emit(finding, _f=f):
            rule = next((r for r in RULES if r.id == finding.rule), None)
            # Legacy rules honour the historical inline allow under their
            # own id; absorbed rules (R3/R6) honour it ONLY under their
            # grandfathered legacy alias — the new R-ids suppress
            # exclusively via the ledger.
            names = set()
            if rule is not None:
                if rule.inline_ok:
                    names = {rule.id} | set(rule.aliases)
                else:
                    names = set(rule.aliases)
            if names and _f.inline_allowed(names, finding.line):
                finding.suppressed = "inline"
                finding.reason = "wmsn-lint: allow(...) comment"
            findings.append(finding)
        for rule in active:
            rule.check(f, ctx, emit)
    findings.sort(key=lambda x: (x.file, x.line, x.rule))
    return findings
