#include "routing/single_sink.hpp"

#include "routing/messages.hpp"
#include "util/require.hpp"

namespace wmsn::routing {

SingleSinkRouting::SingleSinkRouting(net::SensorNetwork& network,
                                     net::NodeId self,
                                     const NetworkKnowledge& knowledge,
                                     SingleSinkParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {
  WMSN_REQUIRE_MSG(!knowledge.gatewayIds.empty(),
                   "single-sink baseline needs a sink");
}

bool SingleSinkRouting::isTheSink() const {
  return self() == knowledge().gatewayIds.front();
}

void SingleSinkRouting::start() {
  if (isTheSink()) beacon();
}

void SingleSinkRouting::onRoundStart(std::uint32_t /*round*/) {
  // Stale gradient entries must not survive the re-beacon: a node that lost
  // its parent would otherwise forward into a void forever.
  if (!isTheSink()) return;
  ++epoch_;
  beacon();
}

void SingleSinkRouting::beacon() {
  CostBeaconMsg msg;
  msg.sink = static_cast<std::uint16_t>(self());
  msg.cost = 0;
  msg.epoch = epoch_;
  cost_ = 0;
  sendBroadcast(makePacket(net::PacketKind::kCostBeacon, net::kBroadcastId,
                           msg.encode()));
}

void SingleSinkRouting::onReceive(const net::Packet& packet,
                                  net::NodeId from) {
  switch (packet.kind) {
    case net::PacketKind::kCostBeacon: {
      if (isTheSink()) return;
      const CostBeaconMsg msg = CostBeaconMsg::decode(packet.payload);
      const std::uint16_t myCost = static_cast<std::uint16_t>(msg.cost + 1);
      const bool newEpoch = msg.epoch > epoch_;
      if (newEpoch) {
        epoch_ = msg.epoch;
        cost_.reset();
        parent_.reset();
      }
      if (!cost_ || myCost < *cost_) {
        cost_ = myCost;
        parent_ = from;
        CostBeaconMsg rebroadcast = msg;
        rebroadcast.cost = myCost;
        sendBroadcastJittered(makePacket(net::PacketKind::kCostBeacon,
                                         net::kBroadcastId,
                                         rebroadcast.encode()));
      }
      return;
    }
    case net::PacketKind::kData: {
      if (isTheSink()) {
        if (deliveredSeen_.insert(packet.uid).second)
          reportDelivered(packet.uid, packet.origin, packet.hops + 1u);
        return;
      }
      if (!parent_) return;  // no gradient — drop
      net::Packet copy = packet;
      copy.hops = static_cast<std::uint8_t>(packet.hops + 1);
      sendUnicast(*parent_, std::move(copy));
      return;
    }
    default:
      return;
  }
}

void SingleSinkRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  const std::uint64_t uid = registerGenerated();
  if (!parent_) return;  // never heard a beacon: partitioned from the sink

  DataMsg msg;
  msg.source = static_cast<std::uint16_t>(self());
  msg.gateway = static_cast<std::uint16_t>(knowledge().gatewayIds.front());
  msg.dataSeq = ++seq_;
  msg.reading = std::move(appPayload);

  net::Packet pkt;
  pkt.kind = net::PacketKind::kData;
  pkt.origin = self();
  pkt.finalDst = knowledge().gatewayIds.front();
  pkt.seq = seq_;
  pkt.uid = uid;
  pkt.payload = msg.encode();
  sendUnicast(*parent_, std::move(pkt));
}

}  // namespace wmsn::routing
