#pragma once

#include <optional>
#include <unordered_set>

#include "routing/protocol.hpp"

namespace wmsn::routing {

struct SingleSinkParams {
  std::size_t readingBytes = 24;
};

/// Minimum-cost forwarding toward a single sink (MCFA, §2.2.1 — the flat
/// single-sink architecture the paper argues against). The sink floods a
/// hop-count beacon; every node keeps its least cost and the neighbour it
/// heard it from; data descends the cost gradient. Re-beaconed every round
/// so the field adapts to node deaths.
///
/// Only gateway 0 participates as the sink — extra gateways are ignored,
/// which is exactly what makes this the "single point of failure" baseline
/// for the ROBUST experiment.
class SingleSinkRouting final : public RoutingProtocol {
 public:
  SingleSinkRouting(net::SensorNetwork& network, net::NodeId self,
                    const NetworkKnowledge& knowledge,
                    SingleSinkParams params = {});

  std::string name() const override { return "single-sink"; }
  void start() override;
  void onRoundStart(std::uint32_t round) override;
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

  std::optional<std::uint16_t> costToSink() const { return cost_; }

 private:
  bool isTheSink() const;
  void beacon();

  SingleSinkParams params_;
  std::uint32_t epoch_ = 0;
  std::optional<std::uint16_t> cost_;
  std::optional<net::NodeId> parent_;
  std::uint32_t seq_ = 0;
  std::unordered_set<std::uint64_t> deliveredSeen_;
};

}  // namespace wmsn::routing
