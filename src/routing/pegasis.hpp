#pragma once

#include <optional>
#include <vector>

#include "routing/messages.hpp"
#include "routing/protocol.hpp"

namespace wmsn::routing {

struct PegasisParams {
  /// When each round's gathering sweep starts (must leave room before the
  /// round ends; readings sensed after the sweep ride the next round).
  sim::Time sweepStart = sim::Time::seconds(14.0);
  /// How long the leader waits after the first arriving bundle for the
  /// sweep from the other chain arm.
  sim::Time leaderHoldoff = sim::Time::seconds(0.5);
  std::size_t readingBytes = 24;
};

/// PEGASIS (§2.2.2, ref [25]): "nodes need only communicate with their
/// closest neighbors and they take turns in communicating with the sink."
/// All sensors form one greedy chain (built farthest-from-sink first).
/// Readings buffer locally; once per round a gathering sweep starts at both
/// chain ends and fuses everything toward the round's designated leader,
/// which makes the single long-haul transmission to the sink. Readings
/// sensed after the sweep ride the next round's sweep (the protocol's
/// inherent latency/energy trade).
///
/// Chain links and the leader's uplink are power-controlled point links
/// (they pay the true-distance amplifier cost), which is what limits
/// PEGASIS on large fields — same trade-off the paper notes for LEACH.
class PegasisRouting final : public RoutingProtocol {
 public:
  PegasisRouting(net::SensorNetwork& network, net::NodeId self,
                 const NetworkKnowledge& knowledge,
                 PegasisParams params = {});

  std::string name() const override { return "pegasis"; }
  void onRoundStart(std::uint32_t round) override;
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

  // Introspection for tests.
  std::optional<net::NodeId> chainPrev() const { return prev_; }
  std::optional<net::NodeId> chainNext() const { return next_; }
  bool isLeader() const { return isLeader_; }

 private:
  /// Deterministic greedy chain over all alive sensors; every node computes
  /// the same chain from shared knowledge (ids + positions are static).
  void buildChain();
  net::NodeId sinkFor() const;
  void passAlong(AggregateMsg aggregate, std::uint8_t hops);
  void scheduleLeaderFlush();

  PegasisParams params_;
  std::uint32_t round_ = 0;
  std::vector<net::NodeId> chain_;
  std::optional<net::NodeId> prev_;  ///< toward the chain's far end
  std::optional<net::NodeId> next_;  ///< toward the leader
  bool isLeader_ = false;
  std::size_t chainIndex_ = 0;
  std::size_t leaderIndex_ = 0;
  AggregateMsg pending_;             ///< readings waiting for the pass
  bool flushScheduled_ = false;
  std::uint32_t seq_ = 0;
};

}  // namespace wmsn::routing
