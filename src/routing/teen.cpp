#include "routing/teen.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace wmsn::routing {

TeenRouting::TeenRouting(net::SensorNetwork& network, net::NodeId self,
                         const NetworkKnowledge& knowledge,
                         TeenParams teenParams, LeachParams leachParams)
    : LeachRouting(network, self, knowledge, leachParams),
      teen_(teenParams),
      value_(teenParams.valueStart) {
  WMSN_REQUIRE(teen_.valueMin < teen_.valueMax);
  WMSN_REQUIRE(teen_.softThreshold >= 0.0);
}

bool TeenRouting::shouldReport() const {
  if (value_ < teen_.hardThreshold) return false;
  return std::abs(value_ - lastReported_) >= teen_.softThreshold;
}

void TeenRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  ++sensingEvents_;
  // One sensing event: step the bounded random walk.
  value_ = std::clamp(value_ + rng().normal(0.0, teen_.stepSigma),
                      teen_.valueMin, teen_.valueMax);
  if (!shouldReport()) return;  // unremarkable reading — radio stays off

  lastReported_ = value_;
  ++reportsSent_;
  // Encode the actual value into the reading (the first 8 bytes).
  Bytes reading = std::move(appPayload);
  if (reading.size() < 8) reading.resize(8);
  ByteWriter w;
  w.f64(value_);
  std::copy(w.data().begin(), w.data().end(), reading.begin());
  LeachRouting::originate(std::move(reading));
}

}  // namespace wmsn::routing
