#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "routing/messages.hpp"
#include "routing/protocol.hpp"

namespace wmsn::routing {

struct MlrParams {
  /// Ablation (OVERHEAD experiment): clear tables at every round boundary,
  /// as a conventional table-driven protocol would, instead of accumulating
  /// entries "round by round" (§5.3).
  bool rebuildEveryRound = false;

  /// Hop-by-hop acknowledgements with retransmission; failed links
  /// invalidate table entries (enables self-healing and gives the ACK-spoof
  /// attack its target).
  bool reliableForwarding = false;

  std::uint32_t maxRetransmits = 2;
  sim::Time ackTimeout = sim::Time::seconds(0.1);
  std::size_t readingBytes = 24;

  /// Our extension (off by default, benched as an ablation): weight route
  /// choice by hops + energyPenalty/remaining-energy of the next hop.
  bool energyAwareSelection = false;

  /// §4.3 load balance / congestion control: a gateway that received more
  /// than this many data packets in a round floods a load advisory at the
  /// next round boundary; sensors penalise it for one round. 0 disables.
  std::uint32_t loadAdvisoryThreshold = 0;
  /// Hop-equivalent penalty applied to a fully-overloaded (1000‰) gateway.
  double loadPenaltyHops = 3.0;

  /// Fault-resilience hardening (off by default — every knob below only
  /// takes effect when this is on, so legacy runs stay byte-identical).
  /// Turns the per-round announcement into a heartbeat (the experiment
  /// makes every gateway announce each round), ages silent gateways out of
  /// the tables, reroutes ACK-exhausted packets to the next-best gateway,
  /// backs ACK timeouts off exponentially, and parks unroutable readings in
  /// a bounded buffer until a gateway reappears.
  bool failover = false;
  /// Rounds of announcement silence before a gateway is presumed down.
  std::uint32_t staleAfterRounds = 1;
  /// Times one data packet may be rerouted to another gateway after ACK
  /// exhaustion before it is finally dropped.
  std::uint32_t maxReroutes = 2;
  /// Capacity of the park-until-routable origination buffer.
  std::size_t deferredCapacity = 32;
};

/// MLR — Maximal network Lifetime Routing (§5.3). Gateways move among |P|
/// feasible places at round boundaries; each moved gateway floods a place
/// notification whose hop counter turns the flood into a BFS cost field.
/// Sensors accumulate one routing-table entry per feasible place —
/// entries are never rebuilt, because sensors are static so an old entry for
/// a place stays correct (Table 1's incremental rows). Data goes to the
/// occupied place with the fewest hops.
class MlrRouting : public RoutingProtocol {
 public:
  MlrRouting(net::SensorNetwork& network, net::NodeId self,
             const NetworkKnowledge& knowledge, MlrParams params = {});

  std::string name() const override { return "mlr"; }
  void onRoundStart(std::uint32_t round) override;
  void onTopologyChanged() override;
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

  /// Gateway-side hook, called by the experiment runner after repositioning:
  /// floods the place notification ("moved gateways notify all sensor nodes
  /// in local network of their new places").
  virtual void announceMove(std::uint16_t newPlace, std::uint16_t prevPlace,
                            std::uint32_t round);

  /// Downstream traffic (§5.1): the gateway disseminates a command to one
  /// sensor via a scoped flood. Returns the command's sequence number.
  virtual std::uint32_t sendCommand(net::NodeId target, Bytes body);

  /// §4.4 sleep scheduling: a sleeping sensor cannot hear route floods, so
  /// it hands its readings to its (awake) GAF cell leader, which re-routes
  /// them with its own table. Set by the sleep scheduler each epoch;
  /// nullopt for awake nodes.
  void setUplinkDelegate(std::optional<net::NodeId> delegate) {
    delegate_ = delegate;
  }
  std::optional<net::NodeId> uplinkDelegate() const { return delegate_; }

  /// Application upcall for commands arriving at this sensor.
  using CommandHandler = std::function<void(const CommandMsg&)>;
  void setCommandHandler(CommandHandler handler) {
    commandHandler_ = std::move(handler);
  }
  std::uint64_t commandsReceived() const { return commandsReceived_; }

  // --- introspection (tests and the Table 1 reproduction) -----------------
  struct PlaceEntry {
    bool known = false;
    std::uint16_t hops = 0;
    net::NodeId nextHop = net::kNoNode;
  };
  const std::vector<PlaceEntry>& placeTable() const { return table_; }
  const std::map<std::uint16_t, std::uint16_t>& occupancy() const {
    return occupiedBy_;
  }
  /// The place the node would route to right now (min hops over occupied
  /// places), if any.
  std::optional<std::uint16_t> selectedPlace() const;
  std::size_t knownEntryCount() const;

 protected:
  struct PendingAck {
    net::Packet packet;
    net::NodeId nextHop = net::kNoNode;
    std::uint16_t place = 0;
    std::uint32_t retries = 0;
    std::uint32_t reroutes = 0;  ///< failover: gateway switches so far
  };

  virtual void handleMove(const net::Packet& packet, net::NodeId from);
  virtual void handleData(const net::Packet& packet, net::NodeId from);
  void handleAck(const net::Packet& packet);
  void handleLoadAdvisory(const net::Packet& packet);
  virtual void handleCommand(const net::Packet& packet);
  /// Consumes a command addressed to this node (after any protocol-specific
  /// verification); bumps counters and invokes the app handler.
  void acceptCommand(const CommandMsg& msg);
  /// Emits the §4.3 advisory flood if last round's load crossed the
  /// threshold. Called from onRoundStart on gateways.
  void maybeAdviseLoad(std::uint32_t round);

  /// Applies an (already authenticated, for SecMLR) move notification to the
  /// local table and occupancy. If `reflood`, re-broadcasts when this node
  /// improves or first sees the notification (plain MLR's BFS flood);
  /// SecMLR floods before verification and passes false here.
  void applyMove(const GatewayMoveMsg& msg, net::NodeId from, bool reflood);

  void forwardData(net::Packet packet, const DataMsg& msg);
  void sendWithAck(net::Packet packet, net::NodeId nextHop,
                   std::uint16_t place);
  void transmitPending(std::uint64_t uid);
  void invalidateVia(net::NodeId nextHop);

  // --- failover hardening (params_.failover) ------------------------------
  /// Ages out gateways whose announcements fell silent; called from
  /// onRoundStart on sensors.
  void evictStaleGateways(std::uint32_t round);
  /// Hook fired once per evicted gateway — SecMLR tears down its sessions
  /// and 4-tuple forwarding entries here. Base implementation is a no-op
  /// (the table/occupancy cleanup already happened).
  virtual void onGatewayPresumedDown(std::uint16_t gateway);
  /// ACK exhaustion: retarget the packet at the current best place instead
  /// of dropping it (bounded by maxReroutes).
  void rerouteAfterAckLoss(PendingAck pending);
  /// Sends parked readings once a place becomes routable again.
  void flushDeferred();

  MlrParams params_;
  std::uint32_t round_ = 0;
  std::vector<PlaceEntry> table_;
  std::map<std::uint16_t, std::uint16_t> occupiedBy_;   ///< place → gateway
  std::map<std::uint16_t, std::uint16_t> placeOfGw_;    ///< gateway → place
  /// Best hop count already re-flooded per (gateway<<32|round) — the
  /// rebroadcast-on-improvement rule that makes the flood a proper BFS.
  std::unordered_map<std::uint64_t, std::uint16_t> advertised_;
  std::unordered_map<std::uint64_t, PendingAck> pendingAcks_;
  std::uint32_t seq_ = 0;
  std::uint16_t myPlace_ = kNoPlace;  ///< gateway side

  // §4.3 load balance.
  std::uint32_t dataReceivedThisRound_ = 0;         ///< gateway side
  /// Last round this gateway was stepped; a gap (crash + recovery under the
  /// active-set scheduler) invalidates dataReceivedThisRound_. The all-ones
  /// initial value makes round 0 read as "no gap" (wraps to 0).
  std::uint32_t lastGatewayRound_ = ~std::uint32_t{0};
  struct Advisory {
    std::uint32_t round = 0;
    std::uint16_t loadPermille = 0;
  };
  std::map<std::uint16_t, Advisory> advisories_;    ///< by gateway
  std::unordered_map<std::uint64_t, std::uint16_t> advisoryReflooded_;

  // §4.4 delegation.
  std::optional<net::NodeId> delegate_;

  // Failover: last round each gateway was heard announcing, and readings
  // parked while no gateway is routable (kept with their uid so delayed
  // delivery still counts in PDR).
  std::map<std::uint16_t, std::uint32_t> lastHeardRound_;
  struct Deferred {
    std::uint64_t uid = 0;
    std::uint32_t seq = 0;
    Bytes reading;
  };
  std::vector<Deferred> deferred_;

  // Downstream commands.
  CommandHandler commandHandler_;
  std::uint64_t commandsReceived_ = 0;
  std::uint32_t commandSeq_ = 0;                    ///< gateway side
  std::unordered_set<std::uint64_t> seenCommands_;  ///< (gw<<32)|seq
};

}  // namespace wmsn::routing
