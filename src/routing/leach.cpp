#include "routing/leach.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace wmsn::routing {

LeachRouting::LeachRouting(net::SensorNetwork& network, net::NodeId self,
                           const NetworkKnowledge& knowledge,
                           LeachParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {
  WMSN_REQUIRE(params.clusterHeadFraction > 0.0 &&
               params.clusterHeadFraction < 1.0);
  WMSN_REQUIRE_MSG(!knowledge.gatewayIds.empty(), "LEACH needs a sink");
}

bool LeachRouting::electSelf(std::uint32_t round) {
  // LEACH threshold: T(n) = p / (1 − p·(r mod 1/p)) for nodes that have not
  // been head within the last 1/p rounds, else 0.
  const double p = params_.clusterHeadFraction;
  const auto cycle = static_cast<std::uint32_t>(std::lround(1.0 / p));
  if (lastHeadRound_ && round < *lastHeadRound_ + cycle) return false;
  const double denominator = 1.0 - p * static_cast<double>(round % cycle);
  const double threshold = denominator > 0.0 ? p / denominator : 1.0;
  return rng().chance(threshold);
}

net::NodeId LeachRouting::nearestGateway() const {
  const net::Point here = network().node(self()).position();
  net::NodeId best = knowledge().gatewayIds.front();
  double bestD = std::numeric_limits<double>::max();
  for (net::NodeId g : knowledge().gatewayIds) {
    if (!network().node(g).alive()) continue;
    const double d = net::distance(here, network().node(g).position());
    if (d < bestD) {
      bestD = d;
      best = g;
    }
  }
  return best;
}

void LeachRouting::onRoundStart(std::uint32_t round) {
  round_ = round;
  isHead_ = false;
  myHead_.reset();
  pendingAggregate_.clear();
  flushScheduled_ = false;

  if (isGateway() || !alive()) return;

  if (electSelf(round)) {
    isHead_ = true;
    lastHeadRound_ = round;
    ChAdvertMsg msg;
    msg.round = round;
    // Small random offset avoids all heads advertising in the same instant.
    // wmsn:fixed-draws — electSelf() is the paper's threshold formula over
    // round number and head history: pure simulation state.
    scheduleAfter(sim::Time::microseconds(rng().uniformInt(0, 100'000)),
                  [this, msg] {
                    sendBroadcast(makePacket(net::PacketKind::kChAdvert,
                                             net::kBroadcastId, msg.encode()));
                  });
  }
}

void LeachRouting::onReceive(const net::Packet& packet, net::NodeId from) {
  switch (packet.kind) {
    case net::PacketKind::kChAdvert: {
      if (isGateway() || isHead_) return;
      const ChAdvertMsg msg = ChAdvertMsg::decode(packet.payload);
      if (msg.round != round_) return;
      const double d = net::distance(network().node(self()).position(),
                                     network().node(from).position());
      // "Closest head" ≈ strongest received signal in real LEACH.
      if (!myHead_ || d < myHeadDistance_) {
        myHead_ = from;
        myHeadDistance_ = d;
        ChJoinMsg join;
        join.round = round_;
        // Join messages are bookkeeping; heads accept data without them, but
        // sending one is part of LEACH's (and our) energy budget.
        // wmsn:fixed-draws — gated on the received advert and head
        // distance, both replayed identically.
        scheduleAfter(sim::Time::microseconds(rng().uniformInt(0, 100'000)),
                      [this, join, head = *myHead_] {
                        sendUnicast(head,
                                    makePacket(net::PacketKind::kChJoin,
                                               net::kBroadcastId,
                                               join.encode()));
                      });
      }
      return;
    }
    case net::PacketKind::kChJoin:
      return;  // membership is implicit in the data packets
    case net::PacketKind::kData: {
      if (isGateway()) {
        // An aggregate (or direct-send) arriving over the long haul.
        const AggregateMsg agg = AggregateMsg::decode(packet.payload);
        for (const auto& entry : agg.entries)
          reportDelivered(entry.uid, entry.origin, entry.hops);
        return;
      }
      // A member's reading arriving at this cluster head.
      if (!isHead_) return;
      const DataMsg msg = DataMsg::decode(packet.payload);
      pendingAggregate_.push_back(AggregateMsg::Entry{
          packet.uid, msg.source, static_cast<std::uint8_t>(2)});
      if (!flushScheduled_) {
        flushScheduled_ = true;
        scheduleAfter(params_.aggregateDelay, [this] { flushAggregate(); });
      }
      return;
    }
    default:
      return;
  }
}

void LeachRouting::flushAggregate() {
  flushScheduled_ = false;
  if (pendingAggregate_.empty()) return;
  // Include the head's own pending state; deliver everything in one
  // power-amplified frame to the nearest gateway (LEACH data fusion).
  AggregateMsg agg;
  agg.entries = std::move(pendingAggregate_);
  pendingAggregate_.clear();

  const net::NodeId gw = nearestGateway();
  net::Packet pkt = makePacket(net::PacketKind::kData, gw, agg.encode());
  pkt.finalDst = gw;
  pkt.seq = ++seq_;
  pkt.hops = 1;
  network().sendLongRangeFrom(self(), gw, std::move(pkt));
}

void LeachRouting::sendDirect(std::uint64_t uid, Bytes reading) {
  // No head heard this round: transmit straight to the nearest gateway.
  AggregateMsg agg;
  agg.entries.push_back(
      AggregateMsg::Entry{uid, static_cast<std::uint16_t>(self()), 1});
  (void)reading;  // the digest replaces the raw reading on the long haul
  const net::NodeId gw = nearestGateway();
  net::Packet pkt = makePacket(net::PacketKind::kData, gw, agg.encode());
  pkt.finalDst = gw;
  pkt.seq = ++seq_;
  network().sendLongRangeFrom(self(), gw, std::move(pkt));
}

void LeachRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  const std::uint64_t uid = registerGenerated();

  if (isHead_) {
    // The head's own reading joins its aggregate directly.
    pendingAggregate_.push_back(AggregateMsg::Entry{
        uid, static_cast<std::uint16_t>(self()), 1});
    if (!flushScheduled_) {
      flushScheduled_ = true;
      scheduleAfter(params_.aggregateDelay, [this] { flushAggregate(); });
    }
    return;
  }

  if (!myHead_ || !network().node(*myHead_).alive()) {
    sendDirect(uid, std::move(appPayload));
    return;
  }

  DataMsg msg;
  msg.source = static_cast<std::uint16_t>(self());
  msg.gateway = static_cast<std::uint16_t>(*myHead_);
  msg.dataSeq = ++seq_;
  msg.reading = std::move(appPayload);

  net::Packet pkt = makePacket(net::PacketKind::kData, *myHead_, msg.encode());
  pkt.uid = uid;
  pkt.seq = seq_;
  // Member→head is a power-controlled point link (LEACH's TDMA slot): it
  // pays the true-distance amplifier cost, which is what makes LEACH
  // degrade over large areas.
  network().sendLongRangeFrom(self(), *myHead_, std::move(pkt));
}

}  // namespace wmsn::routing
