#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "crypto/ctr.hpp"
#include "crypto/keystore.hpp"
#include "crypto/tesla.hpp"
#include "routing/mlr.hpp"

namespace wmsn::routing {

struct SecMlrConfig {
  std::uint64_t keySeed = 0xc0ffee;       ///< deployment-time master key seed
  crypto::TeslaParams tesla;              ///< broadcast-auth schedule
  sim::Time collectWindow = sim::Time::seconds(0.15);  ///< §6.2.2 timeout
  /// Source-side step-4 window: must cover the query flood, the gateway's
  /// collect window, and the response's walk back.
  sim::Time responseWindow = sim::Time::seconds(1.2);
  std::uint32_t maxQueryRetries = 2;
  std::uint8_t maxPathLength = 32;
  std::size_t readingBytes = 24;
};

/// SecMLR (§6.2) — the secure variant of MLR:
///
///  * Gateway place notifications are TESLA-authenticated (§6.2.3): nodes
///    flood-and-buffer the announcement, and only act on it after the
///    delayed key disclosure verifies against the gateway's hash chain —
///    a forged announcement (sinkhole bait, bogus "gateway left") dies at
///    verification.
///  * Route discovery is the encrypted query/response of §6.2.1–6.2.2:
///    RREQs carry {req}_{Kij,C} and a MAC binding the freshness counter;
///    the gateway authenticates the source, collects path copies for a
///    timeout, picks the min-hop path and answers with a MAC'd response
///    that installs 4-tuple forwarding entries (source, destination,
///    immediate sender, immediate receiver) along the way (§6.2.4, Fig. 6).
///  * Data travels encrypted with the per-pair key and a counter-bound MAC;
///    gateways reject replays by counter window. Forwarders do NO crypto —
///    "main computing tasks on resource-rich gateways" (§6.2.4).
///
/// Inherits the incremental place table from MlrRouting: the authenticated
/// floods feed the same BFS cost field used for gateway selection.
class SecMlrRouting : public MlrRouting {
 public:
  SecMlrRouting(net::SensorNetwork& network, net::NodeId self,
                const NetworkKnowledge& knowledge, SecMlrConfig config,
                MlrParams mlrParams = {});

  std::string name() const override { return "secmlr"; }
  void start() override;
  void onRoundStart(std::uint32_t round) override;
  void onTopologyChanged() override;
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;
  void announceMove(std::uint16_t newPlace, std::uint16_t prevPlace,
                    std::uint32_t round) override;

  /// Downstream command, secured: the body is encrypted and MAC'd with the
  /// target's pairwise key and a gateway→sensor freshness counter, so only
  /// the genuine gateway can command a sensor and replays are rejected.
  std::uint32_t sendCommand(net::NodeId target, Bytes body) override;

  // --- introspection ------------------------------------------------------
  std::uint64_t rejectedMacs() const { return rejectedMacs_; }
  std::uint64_t rejectedReplays() const { return rejectedReplays_; }
  std::uint64_t rejectedTesla() const { return rejectedTesla_; }
  std::uint64_t queriesStarted() const { return queriesStarted_; }
  std::uint64_t queriesFailed() const { return queriesFailed_; }
  bool hasSessionTo(net::NodeId gateway) const;

 protected:
  /// Failover eviction: a silent gateway loses not just its place entry but
  /// the secure session and every 4-tuple forwarding entry toward it.
  void onGatewayPresumedDown(std::uint16_t gateway) override;

 private:
  // --- key / counter plumbing ---------------------------------------------
  crypto::Key pairKey(std::uint16_t sensor, std::uint16_t gateway) const;
  void chargeCrypto(std::size_t bytes);

  // --- TESLA move notifications ------------------------------------------
  struct BufferedMove {
    Bytes teslaPayload;
    crypto::PacketMac mac{};
    std::uint16_t hops = 0;
    net::NodeId from = net::kNoNode;
  };
  struct TeslaState {
    crypto::Key lastVerifiedKey{};
    std::uint32_t verifiedInterval = 0;
    std::map<std::uint32_t, std::vector<BufferedMove>> pending;  // by interval
  };
  void handleSecMove(const net::Packet& packet, net::NodeId from);
  void handleKeyDisclose(const net::Packet& packet);

  // --- secure query / response --------------------------------------------
  void startQuery();
  void finishQuery();
  void handleSecRreq(const net::Packet& packet, net::NodeId from);
  void handleSecRres(const net::Packet& packet, net::NodeId from);
  void replyToQuery(std::uint16_t source, std::uint32_t reqId);

  // --- data plane ----------------------------------------------------------
  struct Session {
    bool valid = false;
    net::NodeId nextHop = net::kNoNode;
    std::uint16_t place = kNoPlace;
    std::uint16_t pathHops = 0;
  };
  struct ForwardEntry {
    net::NodeId immediateSender = net::kNoNode;
    net::NodeId immediateReceiver = net::kNoNode;
  };
  void handleSecData(const net::Packet& packet, net::NodeId from);
  void handleCommand(const net::Packet& packet) override;
  void sendSecData(std::uint64_t uid, Bytes reading, std::uint16_t gateway);
  std::optional<std::uint16_t> pickSessionGateway();
  void invalidateSessionsTo(std::uint16_t gateway);

  SecMlrConfig config_;
  crypto::KeyStore keystore_;

  // Sensor-side.
  std::map<std::uint16_t, crypto::CounterSource> counterTo_;    // per gateway
  std::map<std::uint16_t, crypto::CounterWindow> counterFrom_;  // per gateway
  std::map<std::uint16_t, TeslaState> tesla_;                   // per gateway
  std::map<std::uint16_t, Session> sessions_;                   // per gateway
  std::unordered_map<std::uint64_t, ForwardEntry> forward_;  // (src<<16)|gw
  std::deque<std::pair<std::uint64_t, Bytes>> dataQueue_;
  bool queryInFlight_ = false;
  std::uint32_t queryRetries_ = 0;
  std::uint32_t reqId_ = 0;
  std::uint32_t dataSeq_ = 0;
  std::unordered_set<std::uint64_t> seenSecRreq_;  // (src,reqId,gw) hash
  std::unordered_set<std::uint64_t> seenDisclose_; // (gw<<32)|interval
  std::unordered_map<std::uint64_t, std::uint16_t>
      moveReflooded_;  // (gw<<32)|interval → best hopCount re-flooded

  // Gateway-side.
  std::optional<crypto::TeslaBroadcaster> broadcaster_;
  std::map<std::uint16_t, crypto::CounterWindow> sensorWindow_;
  std::map<std::uint16_t, crypto::CounterSource> toSensorCounter_;
  struct Collect {
    std::vector<Path> paths;
    std::uint64_t counter = 0;
  };
  std::map<std::uint64_t, Collect> collecting_;  // (src<<32)|reqId

  // Diagnostics.
  std::uint64_t rejectedMacs_ = 0;
  std::uint64_t rejectedReplays_ = 0;
  std::uint64_t rejectedTesla_ = 0;
  std::uint64_t queriesStarted_ = 0;
  std::uint64_t queriesFailed_ = 0;
};

}  // namespace wmsn::routing
