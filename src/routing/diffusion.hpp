#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "routing/messages.hpp"
#include "routing/protocol.hpp"

namespace wmsn::routing {

struct DiffusionParams {
  std::uint8_t maxHops = 32;
  std::size_t readingBytes = 24;
};

/// Directed Diffusion (§2.2.1, ref [22]): the sink floods an *interest*;
/// nodes receiving it set up *gradients* (which neighbours the interest
/// came from, at what hop count). A source's first matching reading is sent
/// *exploratory* along every gradient; when a copy reaches the sink, the
/// sink sends a positive *reinforcement* back along the reverse path of the
/// first-arriving copy, and subsequent readings flow unicast down the
/// reinforced gradient only.
///
/// Gateway 0 acts as the interested sink (the paradigm is single-sink by
/// construction, like the paper's flat baselines).
class DiffusionRouting final : public RoutingProtocol {
 public:
  DiffusionRouting(net::SensorNetwork& network, net::NodeId self,
                   const NetworkKnowledge& knowledge,
                   DiffusionParams params = {});

  std::string name() const override { return "diffusion"; }
  void start() override;
  void onRoundStart(std::uint32_t round) override;
  void onTopologyChanged() override;
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

  // Introspection.
  bool reinforced() const { return reinforcedNext_.has_value(); }
  std::size_t gradientCount() const { return gradients_.size(); }

 private:
  bool isSink() const { return self() == knowledge().gatewayIds.front(); }
  void floodInterest();
  void sendExploratory(std::uint64_t uid);
  void sendReinforced(std::uint64_t uid);

  DiffusionParams params_;
  std::uint32_t epoch_ = 0;

  /// Gradient cache: neighbour → hop count of the interest heard from it.
  std::map<net::NodeId, std::uint16_t> gradients_;
  std::uint16_t bestGradientHops_ = 0xffff;

  /// Reverse-path state for reinforcement: per origin, who first handed us
  /// an exploratory copy.
  std::unordered_map<std::uint16_t, net::NodeId> exploratoryFrom_;
  /// After reinforcement: the downstream neighbour for this node's (and its
  /// subtree's) data.
  std::optional<net::NodeId> reinforcedNext_;

  std::unordered_set<std::uint64_t> seenExploratory_;
  std::unordered_set<std::uint16_t> reinforcedOrigins_;  // sink-side dedupe
  std::uint32_t seq_ = 0;
};

}  // namespace wmsn::routing
