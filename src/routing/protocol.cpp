#include "routing/protocol.hpp"

#include "obs/perf_stats.hpp"
#include "util/require.hpp"

namespace wmsn::routing {

RoutingProtocol::RoutingProtocol(net::SensorNetwork& network,
                                 net::NodeId self,
                                 const NetworkKnowledge& knowledge)
    : network_(network), self_(self), knowledge_(knowledge) {}

bool RoutingProtocol::isGateway() const {
  return network_.node(self_).isGateway();
}

void RoutingProtocol::scheduleAfter(sim::Time delay,
                                    std::function<void()> action) {
  // Wrap so the action silently no-ops when the node has died meanwhile —
  // a dead node's timers must not fire protocol logic.
  network_.simulator().schedule(
      delay, [this, action = std::move(action)] {
        if (network_.node(self_).alive()) action();
      });
}

net::Packet RoutingProtocol::makePacket(net::PacketKind kind,
                                        net::NodeId hopDst,
                                        Bytes payload) const {
  net::Packet pkt;
  pkt.kind = kind;
  pkt.origin = self_;
  pkt.hopSrc = self_;
  pkt.hopDst = hopDst;
  pkt.finalDst = net::kNoNode;
  pkt.payload = std::move(payload);
  return pkt;
}

void RoutingProtocol::sendBroadcast(net::Packet packet) {
  packet.hopDst = net::kBroadcastId;
  network_.sendFrom(self_, std::move(packet));
}

void RoutingProtocol::sendUnicast(net::NodeId nextHop, net::Packet packet) {
  packet.hopDst = nextHop;
  network_.sendFrom(self_, std::move(packet));
}

void RoutingProtocol::sendBroadcastJittered(net::Packet packet) {
  const sim::Time maxJitter = network_.floodJitter();
  if (maxJitter.us <= 0) {
    sendBroadcast(std::move(packet));
    return;
  }
  WMSN_PERF(kRngDraws);
  const sim::Time jitter = sim::Time::microseconds(
      network_.node(self_).rng().uniformInt(0, maxJitter.us));
  scheduleAfter(jitter, [this, packet = std::move(packet)]() mutable {
    sendBroadcast(std::move(packet));
  });
}

std::uint64_t RoutingProtocol::registerGenerated() {
  const std::uint64_t uid = network_.nextPacketUid();
  network_.stats().onGenerated(uid, self_, now());
  WMSN_TRACE(network_.tracer(), obs::TraceSpanKind::kOriginate, now().us, uid,
             self_);
  return uid;
}

void RoutingProtocol::reportDelivered(std::uint64_t uid, net::NodeId origin,
                                      std::uint32_t hops) {
  const bool first = network_.stats().onDelivered(uid, origin, self_, hops,
                                                  now());
  // Only the FIRST gateway delivery closes the reading's async trace —
  // duplicates (multipath, retransmission races) would emit unbalanced
  // Chrome-trace end events.
  if (first)
    WMSN_TRACE(network_.tracer(), obs::TraceSpanKind::kDeliver, now().us, uid,
               self_, origin, obs::TraceDropReason::kNone, hops);
}

ProtocolStack::ProtocolStack(net::SensorNetwork& network,
                             NetworkKnowledge knowledge,
                             const Factory& factory)
    : network_(network), knowledge_(std::move(knowledge)) {
  protocols_.reserve(network.size());
  for (net::NodeId id = 0; id < network.size(); ++id) {
    protocols_.push_back(factory(network, id, knowledge_));
    WMSN_REQUIRE(protocols_.back() != nullptr);
    network.node(id).setReceiveHandler(
        [this, id](const net::Packet& pkt, net::NodeId from) {
          // A malformed (hostile or corrupted) payload raises
          // PreconditionError from the decoder — the node drops the frame
          // instead of crashing.
          try {
            protocols_[id]->onReceive(pkt, from);
          } catch (const PreconditionError&) {
          }
        });
  }
}

RoutingProtocol& ProtocolStack::at(net::NodeId id) {
  WMSN_REQUIRE(id < protocols_.size());
  return *protocols_[id];
}

void ProtocolStack::startAll() {
  for (auto& p : protocols_) p->start();
}

void ProtocolStack::beginRound(std::uint32_t round) {
  // Active-set sweep: battery-dead and fault-crashed nodes are skipped
  // outright, not stepped-then-filtered — a corpse contributes zero
  // node-steps and zero RNG draws. Sleeping nodes still step (§4.4
  // duty-cycled sensing). The set is sorted ascending, so surviving nodes
  // run in exactly the order the all-nodes loop gave them.
  const auto& active = network_.activeNodeIds();
  WMSN_PERF(kNodeSteps, active.size());
  for (const net::NodeId id : active) protocols_[id]->onRoundStart(round);
}

void ProtocolStack::topologyChangedAll() {
  for (auto& p : protocols_) p->onTopologyChanged();
}

void ProtocolStack::replace(net::NodeId id,
                            std::unique_ptr<RoutingProtocol> protocol) {
  WMSN_REQUIRE(id < protocols_.size());
  WMSN_REQUIRE(protocol != nullptr);
  protocols_[id] = std::move(protocol);
}

}  // namespace wmsn::routing
