#pragma once

#include <optional>
#include <vector>

#include "routing/messages.hpp"
#include "routing/protocol.hpp"

namespace wmsn::routing {

struct LeachParams {
  double clusterHeadFraction = 0.05;  ///< LEACH's p
  sim::Time advertWindow = sim::Time::seconds(0.5);
  sim::Time joinWindow = sim::Time::seconds(0.5);
  sim::Time aggregateDelay = sim::Time::seconds(2.0);
  std::size_t readingBytes = 24;
};

/// LEACH (§2.2.2, ref [17]): 2-level clustering with randomised cluster-head
/// rotation. Each round, nodes elect themselves cluster head with the LEACH
/// threshold T(n); heads advertise; members join the closest head and send
/// their readings to it single-hop (power-controlled); heads aggregate and
/// send one long-haul transmission to the nearest gateway. Nodes that hear
/// no advertisement fall back to transmitting directly to the gateway.
///
/// This is the hierarchical baseline: it balances energy via rotation but —
/// as the paper notes — "is not applicable to networks deployed in large
/// regions" because the member→head and head→sink hops pay the d²/d⁴
/// amplifier cost over long distances.
class LeachRouting : public RoutingProtocol {
 public:
  LeachRouting(net::SensorNetwork& network, net::NodeId self,
               const NetworkKnowledge& knowledge, LeachParams params = {});

  std::string name() const override { return "leach"; }
  void onRoundStart(std::uint32_t round) override;
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

  bool isClusterHead() const { return isHead_; }

 private:
  bool electSelf(std::uint32_t round);
  net::NodeId nearestGateway() const;
  void flushAggregate();
  void sendDirect(std::uint64_t uid, Bytes reading);

  LeachParams params_;
  std::uint32_t round_ = 0;
  bool isHead_ = false;
  std::optional<std::uint32_t> lastHeadRound_;
  std::optional<net::NodeId> myHead_;
  double myHeadDistance_ = 0.0;
  std::vector<AggregateMsg::Entry> pendingAggregate_;
  bool flushScheduled_ = false;
  std::uint32_t seq_ = 0;
};

}  // namespace wmsn::routing
