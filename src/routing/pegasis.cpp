#include "routing/pegasis.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace wmsn::routing {

PegasisRouting::PegasisRouting(net::SensorNetwork& network, net::NodeId self,
                               const NetworkKnowledge& knowledge,
                               PegasisParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {
  WMSN_REQUIRE_MSG(!knowledge.gatewayIds.empty(), "PEGASIS needs a sink");
}

net::NodeId PegasisRouting::sinkFor() const {
  // Leaders transmit to the nearest alive gateway.
  const net::Point here = network().node(self()).position();
  net::NodeId best = knowledge().gatewayIds.front();
  double bestD = std::numeric_limits<double>::max();
  for (net::NodeId g : knowledge().gatewayIds) {
    if (!network().node(g).alive()) continue;
    const double d = net::distance(here, network().node(g).position());
    if (d < bestD) {
      bestD = d;
      best = g;
    }
  }
  return best;
}

void PegasisRouting::buildChain() {
  // Greedy chain (the paper's construction): start from the sensor farthest
  // from the sink, repeatedly append the nearest not-yet-chained sensor.
  // Every node derives the identical chain from static shared knowledge.
  std::vector<net::NodeId> alive;
  for (net::NodeId s : network().sensorIds())
    if (network().node(s).alive()) alive.push_back(s);
  chain_.clear();
  if (alive.empty()) return;

  const net::Point sinkPos =
      network().node(knowledge().gatewayIds.front()).position();
  auto posOf = [this](net::NodeId id) {
    return network().node(id).position();
  };

  std::size_t farthest = 0;
  for (std::size_t i = 1; i < alive.size(); ++i)
    if (net::distanceSq(posOf(alive[i]), sinkPos) >
        net::distanceSq(posOf(alive[farthest]), sinkPos))
      farthest = i;

  std::vector<bool> used(alive.size(), false);
  chain_.push_back(alive[farthest]);
  used[farthest] = true;
  while (chain_.size() < alive.size()) {
    const net::Point tail = posOf(chain_.back());
    std::size_t best = alive.size();
    double bestD = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < alive.size(); ++i) {
      if (used[i]) continue;
      const double d = net::distanceSq(tail, posOf(alive[i]));
      if (d < bestD) {
        bestD = d;
        best = i;
      }
    }
    chain_.push_back(alive[best]);
    used[best] = true;
  }
}

void PegasisRouting::onRoundStart(std::uint32_t round) {
  round_ = round;
  // Note: pending_ carries over — readings sensed after last round's sweep
  // ride this round's sweep.
  flushScheduled_ = false;
  prev_.reset();
  next_.reset();
  isLeader_ = false;
  if (isGateway()) return;

  buildChain();
  const auto it = std::find(chain_.begin(), chain_.end(), self());
  if (it == chain_.end()) return;  // dead or not chained
  chainIndex_ = static_cast<std::size_t>(it - chain_.begin());
  // "They take turns in communicating with the sink."
  leaderIndex_ = static_cast<std::size_t>(round) % chain_.size();
  isLeader_ = chainIndex_ == leaderIndex_;
  if (chainIndex_ > 0) prev_ = chain_[chainIndex_ - 1];
  if (chainIndex_ + 1 < chain_.size()) next_ = chain_[chainIndex_ + 1];

  // The gathering sweep starts at the chain ends; a solo-chain leader just
  // flushes its own buffer.
  const bool isEnd =
      chainIndex_ == 0 || chainIndex_ + 1 == chain_.size();
  if (chain_.size() == 1 && isLeader_) {
    scheduleAfter(params_.sweepStart, [this] { scheduleLeaderFlush(); });
  } else if (isEnd && !isLeader_) {
    scheduleAfter(params_.sweepStart,
                  [this] { passAlong(AggregateMsg{}, 1); });
  }
}

void PegasisRouting::scheduleLeaderFlush() {
  if (flushScheduled_) return;
  flushScheduled_ = true;
  scheduleAfter(params_.leaderHoldoff, [this] {
    flushScheduled_ = false;
    if (pending_.entries.empty()) return;
    AggregateMsg out;
    out.entries = std::move(pending_.entries);
    pending_.entries.clear();
    const net::NodeId sink = sinkFor();
    // Perfect fusion: one constant-size packet on the air, whatever it
    // represents; the entry list rides as simulator bookkeeping.
    net::Packet pkt = makePacket(net::PacketKind::kData, sink,
                                 Bytes(params_.readingBytes, 0xf5));
    pkt.meta = out.encode();
    pkt.finalDst = sink;
    pkt.seq = ++seq_;
    network().sendLongRangeFrom(self(), sink, std::move(pkt));
  });
}

void PegasisRouting::passAlong(AggregateMsg aggregate, std::uint8_t hops) {
  // Fuse everything this node is holding into the passing bundle.
  for (auto& entry : pending_.entries) aggregate.entries.push_back(entry);
  pending_.entries.clear();

  if (isLeader_) {
    for (auto& entry : aggregate.entries)
      pending_.entries.push_back(entry);
    scheduleLeaderFlush();  // wait for the other arm's sweep, then uplink
    return;
  }

  // Pass one link toward the leader (power-controlled chain link), fused
  // to constant size.
  const net::NodeId nextHop =
      chainIndex_ < leaderIndex_ ? *next_ : *prev_;
  for (auto& entry : aggregate.entries)
    entry.hops = static_cast<std::uint8_t>(hops);
  net::Packet pkt = makePacket(net::PacketKind::kData, nextHop,
                               Bytes(params_.readingBytes, 0xf5));
  pkt.meta = aggregate.encode();
  pkt.seq = ++seq_;
  network().sendLongRangeFrom(self(), nextHop, std::move(pkt));
}

void PegasisRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  const std::uint64_t uid = registerGenerated();
  (void)appPayload;  // fused into the 6-byte digest on the chain
  // Buffer until the sweep (or, for the leader, until its flush) — this is
  // what makes a whole round cost O(n) chain frames instead of O(n) per
  // reading.
  pending_.entries.push_back(
      AggregateMsg::Entry{uid, static_cast<std::uint16_t>(self()), 1});
}

void PegasisRouting::onReceive(const net::Packet& packet, net::NodeId from) {
  (void)from;
  if (packet.kind != net::PacketKind::kData) return;
  const AggregateMsg aggregate = AggregateMsg::decode(packet.meta);

  if (isGateway()) {
    for (const auto& entry : aggregate.entries)
      reportDelivered(entry.uid, entry.origin,
                      static_cast<std::uint32_t>(entry.hops) + 1u);
    return;
  }
  passAlong(aggregate, static_cast<std::uint8_t>(packet.hops + 1));
}

}  // namespace wmsn::routing
