#include "routing/flooding.hpp"

#include "routing/messages.hpp"

namespace wmsn::routing {

namespace {

net::Packet makeDataPacket(net::NodeId self, std::uint32_t seq,
                           std::uint64_t uid, Bytes reading) {
  DataMsg msg;
  msg.source = static_cast<std::uint16_t>(self);
  msg.gateway = kAllGateways;  // any gateway may consume a flooded reading
  msg.dataSeq = seq;
  msg.reading = std::move(reading);

  net::Packet pkt;
  pkt.kind = net::PacketKind::kData;
  pkt.origin = self;
  pkt.finalDst = net::kBroadcastId;
  pkt.seq = seq;
  pkt.uid = uid;
  pkt.payload = msg.encode();
  return pkt;
}

}  // namespace

FloodingRouting::FloodingRouting(net::SensorNetwork& network, net::NodeId self,
                                 const NetworkKnowledge& knowledge,
                                 FloodingParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {}

void FloodingRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  const std::uint64_t uid = registerGenerated();
  net::Packet pkt = makeDataPacket(self(), ++seq_, uid, std::move(appPayload));
  seen_.insert(uid);
  sendBroadcast(std::move(pkt));
}

void FloodingRouting::onReceive(const net::Packet& packet,
                                net::NodeId /*from*/) {
  if (packet.kind != net::PacketKind::kData) return;
  if (!seen_.insert(packet.uid).second) return;  // implosion guard

  if (isGateway()) {
    reportDelivered(packet.uid, packet.origin, packet.hops + 1u);
    return;
  }
  if (packet.hops + 1u >= params_.maxHops) return;

  net::Packet copy = packet;
  copy.hops = static_cast<std::uint8_t>(packet.hops + 1);
  sendBroadcastJittered(std::move(copy));
}

GossipRouting::GossipRouting(net::SensorNetwork& network, net::NodeId self,
                             const NetworkKnowledge& knowledge,
                             FloodingParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {}

void GossipRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  const std::uint64_t uid = registerGenerated();
  net::Packet pkt = makeDataPacket(self(), ++seq_, uid, std::move(appPayload));
  seen_.insert(uid);
  relay(std::move(pkt));
}

void GossipRouting::relay(net::Packet packet) {
  const auto neighbors = network().neighborsOf(self());
  if (neighbors.empty()) return;
  // Prefer handing the packet straight to a gateway neighbour if one exists
  // (gossip still recognises its destination); otherwise a random walk step.
  for (net::NodeId nbr : neighbors) {
    if (network().node(nbr).isGateway()) {
      sendUnicast(nbr, std::move(packet));
      return;
    }
  }
  sendUnicast(rng().pick(neighbors), std::move(packet));
}

void GossipRouting::onReceive(const net::Packet& packet, net::NodeId /*from*/) {
  if (packet.kind != net::PacketKind::kData) return;

  if (isGateway()) {
    if (seen_.insert(packet.uid).second)
      reportDelivered(packet.uid, packet.origin, packet.hops + 1u);
    return;
  }
  // Gossip forwards duplicates too (a random walk may revisit nodes), but
  // respects the TTL.
  if (packet.hops + 1u >= params_.maxHops) return;
  net::Packet copy = packet;
  copy.hops = static_cast<std::uint8_t>(packet.hops + 1);
  relay(std::move(copy));
}

}  // namespace wmsn::routing
