#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "routing/messages.hpp"
#include "routing/protocol.hpp"

namespace wmsn::routing {

struct SprParams {
  sim::Time responseWindow = sim::Time::seconds(0.3);  ///< RRES collection
  /// Gateways buffer RREQ copies this long and answer with the min-hop one
  /// (the same collect-timeout SecMLR specifies in §6.2.2); 0 answers the
  /// first copy immediately.
  sim::Time gatewayCollectWindow = sim::Time::seconds(0.1);
  /// Step 3.1: nodes holding a fresh route answer on the gateway's behalf
  /// and suppress the flood. Disable to ablate the optimisation.
  bool answerFromCache = true;
  std::uint32_t maxQueryRetries = 1;
  std::uint8_t maxPathLength = 32;
  std::size_t readingBytes = 24;
  /// Fault-resilience hardening: wait this long before the first re-flood
  /// of a failed discovery, doubling per retry (bounded). Zero (default)
  /// keeps the legacy immediate retry. Retries never cross a round boundary
  /// — SPR routes are round-scoped anyway.
  sim::Time retryBackoff = sim::Time::zero();
};

/// SPR — Shortest Path Routing (§5.2). On-demand min-hop routing to the best
/// of the m gateways:
///
///  1. A source with no fresh route floods an RREQ addressed to all
///     gateways, accumulating the traversed path.
///  2. A sensor that already knows a fresh route replies on the gateway's
///     behalf by appending its stored sub-path (Property 1: sub-paths of
///     shortest paths are shortest), instead of re-flooding.
///  3. Gateways reply to the first RREQ copy (first arrival ≈ min hops under
///     BFS flooding) with the completed path.
///  4. The source collects responses for a window and picks the gateway with
///     the fewest hops.
///  5. The first data packet carries the source route; nodes along it
///     install routing entries so follow-up packets need no route header.
///
/// Routes are valid for the current round only (§5.1: gateways may move at
/// round boundaries), giving the paper's table-driven/on-demand hybrid.
class SprRouting final : public RoutingProtocol {
 public:
  SprRouting(net::SensorNetwork& network, net::NodeId self,
             const NetworkKnowledge& knowledge, SprParams params = {});

  std::string name() const override { return "spr"; }
  void onRoundStart(std::uint32_t round) override;
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

  /// Test/bench introspection: hops of the chosen route, if any.
  std::optional<std::uint16_t> currentRouteHops() const;
  std::optional<net::NodeId> currentBestGateway() const;

 private:
  struct StoredRoute {
    Path path;            ///< [self, …, gateway]
    std::uint32_t round = 0;
  };

  bool routeFresh() const;
  void startQuery();
  void finishQuery();
  void sendData(std::uint64_t uid, Bytes reading);
  void handleRreq(const net::Packet& packet, net::NodeId from);
  void handleRres(const net::Packet& packet);
  void handleData(const net::Packet& packet);
  void installFromPath(const Path& path, std::size_t selfIndex,
                       std::uint16_t gateway);

  SprParams params_;
  std::uint32_t round_ = 0;

  // Source-side state.
  std::optional<StoredRoute> route_;       ///< to the chosen best gateway
  std::uint16_t routeGateway_ = 0;
  bool routeAnnounced_ = false;            ///< first DATA carried the path
  std::uint32_t reqId_ = 0;
  bool queryInFlight_ = false;
  std::uint32_t queryRetries_ = 0;
  std::vector<RresMsg> responses_;
  std::deque<std::pair<std::uint64_t, Bytes>> dataQueue_;
  std::uint32_t seq_ = 0;

  // Forwarding state (per round).
  std::unordered_map<std::uint16_t, net::NodeId> nextHopTo_;  ///< by gateway
  std::unordered_map<std::uint16_t, StoredRoute> knownPaths_; ///< by gateway
  std::unordered_set<std::uint64_t> seenRreq_;  ///< (origin<<32)|reqId

  // Gateway-side RREQ collection (one bucket per (origin<<32)|reqId).
  std::unordered_map<std::uint64_t, std::vector<Path>> collecting_;
  void gatewayAnswer(std::uint16_t origin, std::uint32_t reqId);
};

}  // namespace wmsn::routing
