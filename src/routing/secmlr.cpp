#include "routing/secmlr.hpp"

#include <algorithm>
#include <limits>

#include "util/invariants.hpp"
#include "util/require.hpp"

namespace wmsn::routing {

namespace {

std::uint64_t fwdKey(std::uint16_t source, std::uint16_t gateway) {
  return (static_cast<std::uint64_t>(source) << 16) | gateway;
}

std::uint64_t rreqKey(std::uint16_t source, std::uint16_t gateway,
                      std::uint32_t reqId) {
  return ((static_cast<std::uint64_t>(source) << 16 | gateway) << 32) | reqId;
}

std::uint64_t intervalKey(std::uint16_t gateway, std::uint32_t interval) {
  return (static_cast<std::uint64_t>(gateway) << 32) | interval;
}

std::uint64_t collectKey(std::uint16_t source, std::uint32_t reqId) {
  return (static_cast<std::uint64_t>(source) << 32) | reqId;
}

/// The semantic content of a routing query/response ("req"/"res" in §6.2).
Bytes plainReq() { return Bytes{'r', 'e', 'q', 0, 0, 0, 0, 0}; }
Bytes plainRes() { return Bytes{'r', 'e', 's', 0, 0, 0, 0, 0}; }

constexpr std::size_t kMaxBufferedMovesPerInterval = 32;

}  // namespace

SecMlrRouting::SecMlrRouting(net::SensorNetwork& network, net::NodeId self,
                             const NetworkKnowledge& knowledge,
                             SecMlrConfig config, MlrParams mlrParams)
    : MlrRouting(network, self, knowledge, mlrParams),
      config_(config),
      keystore_(crypto::KeyStore::fromSeed(config.keySeed)) {}

void SecMlrRouting::start() {
  if (isGateway())
    broadcaster_.emplace(keystore_.broadcastSeedKey(self()), config_.tesla);
  // Deployment-time bootstrap: every node (gateways relay floods too) is
  // flashed with each gateway's TESLA commitment K_0 (SPINS assumption).
  for (net::NodeId g : knowledge().gatewayIds) {
    if (g == self()) continue;
    crypto::TeslaChain chain(keystore_.broadcastSeedKey(g),
                             config_.tesla.chainLength);
    TeslaState state;
    state.lastVerifiedKey = chain.commitment();
    state.verifiedInterval = 0;
    tesla_[static_cast<std::uint16_t>(g)] = std::move(state);
  }
}

void SecMlrRouting::onRoundStart(std::uint32_t round) {
  MlrRouting::onRoundStart(round);
}

void SecMlrRouting::onTopologyChanged() {
  MlrRouting::onTopologyChanged();
  // Discovered 4-tuple paths may route through now-sleeping relays.
  for (auto& [gw, session] : sessions_) {
    (void)gw;
    session.valid = false;
  }
  forward_.clear();
  moveReflooded_.clear();
}

crypto::Key SecMlrRouting::pairKey(std::uint16_t sensor,
                                   std::uint16_t gateway) const {
  return keystore_.pairwiseKey(sensor, gateway);
}

void SecMlrRouting::chargeCrypto(std::size_t bytes) {
  network().chargeCrypto(self(), bytes);
}

bool SecMlrRouting::hasSessionTo(net::NodeId gateway) const {
  auto it = sessions_.find(static_cast<std::uint16_t>(gateway));
  return it != sessions_.end() && it->second.valid;
}

// --------------------------------------------------------------------------
// TESLA-authenticated gateway move notifications (§6.2.3)
// --------------------------------------------------------------------------

void SecMlrRouting::announceMove(std::uint16_t newPlace,
                                 std::uint16_t prevPlace,
                                 std::uint32_t round) {
  WMSN_REQUIRE_MSG(isGateway() && broadcaster_.has_value(),
                   "announceMove is gateway-side");
  myPlace_ = newPlace;
  if (prevPlace != kNoPlace) occupiedBy_.erase(prevPlace);
  occupiedBy_[newPlace] = static_cast<std::uint16_t>(self());
  placeOfGw_[static_cast<std::uint16_t>(self())] = newPlace;

  // TESLA cannot sign in interval 0 (its key is the public commitment);
  // wait for interval 1 if the simulation is that young.
  const sim::Time earliest =
      config_.tesla.startTime + config_.tesla.intervalDuration;
  if (now() < earliest) {
    const sim::Time delay = earliest - now();
    scheduleAfter(delay, [this, newPlace, prevPlace, round] {
      announceMove(newPlace, prevPlace, round);
    });
    return;
  }

  GatewayMoveMsg move;
  move.gateway = static_cast<std::uint16_t>(self());
  move.newPlace = newPlace;
  move.prevPlace = prevPlace;
  move.round = round;
  move.hopCount = 0;  // flood metadata lives in SecMoveMsg, not the payload
  const Bytes payload = move.encode();

  const auto signedMsg = broadcaster_->sign(payload, now());
  chargeCrypto(payload.size() + crypto::kPacketMacSize);

  SecMoveMsg wire;
  wire.gateway = move.gateway;
  wire.teslaPayload = payload;
  wire.interval = signedMsg.interval;
  wire.mac = signedMsg.mac;
  wire.hopCount = 0;
  sendBroadcast(makePacket(net::PacketKind::kGatewayMove, net::kBroadcastId,
                           wire.encode()));

  // Publish K_interval once interval + d begins.
  const sim::Time discloseAt =
      config_.tesla.startTime +
      sim::Time{config_.tesla.intervalDuration.us *
                (signedMsg.interval + config_.tesla.disclosureDelay)} +
      sim::Time::milliseconds(1);
  const std::uint32_t interval = signedMsg.interval;
  const sim::Time delay =
      discloseAt > now() ? discloseAt - now() : sim::Time::zero();
  scheduleAfter(delay, [this, interval] {
    KeyDiscloseMsg msg;
    msg.gateway = static_cast<std::uint16_t>(self());
    msg.interval = interval;
    msg.key = broadcaster_->chainKey(interval);
    sendBroadcast(makePacket(net::PacketKind::kKeyDisclose, net::kBroadcastId,
                             msg.encode()));
  });
}

void SecMlrRouting::handleSecMove(const net::Packet& packet,
                                  net::NodeId from) {
  const SecMoveMsg msg = SecMoveMsg::decode(packet.payload);
  if (msg.gateway == self()) return;

  auto state = tesla_.find(msg.gateway);
  if (state == tesla_.end()) {
    // Unknown broadcaster (gateways relay but hold commitments too; a truly
    // unknown id is bogus).
    ++rejectedTesla_;
    WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kReject, now().us, 0,
               static_cast<std::uint32_t>(self()), msg.gateway,
               obs::TraceDropReason::kTesla);
    return;
  }

  // TESLA security condition: drop if the signing key could already be
  // public on arrival.
  const std::uint32_t arrivalInterval = static_cast<std::uint32_t>(
      (now() - config_.tesla.startTime).us / config_.tesla.intervalDuration.us);
  if (msg.interval <= state->second.verifiedInterval ||
      arrivalInterval >= msg.interval + config_.tesla.disclosureDelay) {
    ++rejectedTesla_;
    return;
  }

  auto& bucket = state->second.pending[msg.interval];
  if (bucket.size() < kMaxBufferedMovesPerInterval) {
    BufferedMove buf;
    buf.teslaPayload = msg.teslaPayload;
    buf.mac = msg.mac;
    buf.hops = msg.hopCount;
    buf.from = from;
    bucket.push_back(std::move(buf));
  }

  // Gateways buffer (for occupancy) but never relay the route-building
  // flood — same reasoning as plain MLR: sinks must not enter BFS trees.
  if (isGateway()) return;

  // Re-flood first-seen or improved copies so the announcement reaches the
  // whole network before the key does.
  const std::uint64_t key = intervalKey(msg.gateway, msg.interval);
  const std::uint16_t mine = static_cast<std::uint16_t>(msg.hopCount + 1);
  auto it = moveReflooded_.find(key);
  if (it != moveReflooded_.end() && it->second <= mine) return;
  moveReflooded_[key] = mine;

  SecMoveMsg rebroadcast = msg;
  rebroadcast.hopCount = mine;
  sendBroadcastJittered(makePacket(net::PacketKind::kGatewayMove,
                                   net::kBroadcastId, rebroadcast.encode()));
}

void SecMlrRouting::handleKeyDisclose(const net::Packet& packet) {
  const KeyDiscloseMsg msg = KeyDiscloseMsg::decode(packet.payload);
  if (msg.gateway == self()) return;

  const bool firstSeen =
      seenDisclose_.insert(intervalKey(msg.gateway, msg.interval)).second;

  auto stateIt = tesla_.find(msg.gateway);
  if (stateIt != tesla_.end()) {
    TeslaState& state = stateIt->second;
    if (msg.interval > state.verifiedInterval &&
        msg.interval - state.verifiedInterval <=
            config_.tesla.chainLength) {
      // Walk the disclosed key back to the last verified chain element.
      crypto::Key walked = msg.key;
      const std::uint32_t steps = msg.interval - state.verifiedInterval;
      for (std::uint32_t i = 0; i < steps; ++i)
        walked = crypto::TeslaChain::step(walked);
      chargeCrypto(static_cast<std::size_t>(steps) * sizeof(crypto::Key));

      if (constantTimeEqual(
              std::span<const std::uint8_t>(walked.data(), walked.size()),
              std::span<const std::uint8_t>(state.lastVerifiedKey.data(),
                                            state.lastVerifiedKey.size()))) {
        const crypto::Key mk = crypto::TeslaChain::macKey(msg.key);
        auto bucket = state.pending.find(msg.interval);
        if (bucket != state.pending.end()) {
          for (const BufferedMove& buf : bucket->second) {
            chargeCrypto(buf.teslaPayload.size());
            if (!crypto::verifyPacketMac(mk, msg.interval, buf.teslaPayload,
                                         buf.mac)) {
              ++rejectedTesla_;  // forged announcement dies here
              continue;
            }
            GatewayMoveMsg move = GatewayMoveMsg::decode(buf.teslaPayload);
            move.hopCount = buf.hops;
            applyMove(move, buf.from, /*reflood=*/false);
            invalidateSessionsTo(move.gateway);
          }
        }
        // Older intervals can never be verified now — drop them.
        state.pending.erase(state.pending.begin(),
                            state.pending.upper_bound(msg.interval));
        state.lastVerifiedKey = msg.key;
        state.verifiedInterval = msg.interval;
      } else {
        ++rejectedTesla_;  // key does not belong to the chain
      }
    }
  }

  if (firstSeen) {
    sendBroadcastJittered(makePacket(net::PacketKind::kKeyDisclose,
                                     net::kBroadcastId, packet.payload));
  }
}

// --------------------------------------------------------------------------
// Secure route discovery (§6.2.1 / §6.2.2)
// --------------------------------------------------------------------------

void SecMlrRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  const std::uint64_t uid = registerGenerated();

  const auto gw = pickSessionGateway();
  if (gw) {
    sendSecData(uid, std::move(appPayload), *gw);
    return;
  }
  if (occupiedBy_.empty()) return;  // nothing to query yet — undelivered
  dataQueue_.emplace_back(uid, std::move(appPayload));
  if (!queryInFlight_) {
    queryRetries_ = 0;
    startQuery();
  }
}

std::optional<std::uint16_t> SecMlrRouting::pickSessionGateway() {
  std::optional<std::uint16_t> best;
  std::uint16_t bestHops = std::numeric_limits<std::uint16_t>::max();
  for (auto& [gw, session] : sessions_) {
    if (!session.valid) continue;
    // The session must still point at the gateway's current place.
    auto place = placeOfGw_.find(gw);
    if (place == placeOfGw_.end() || place->second != session.place) {
      session.valid = false;
      continue;
    }
    if (session.pathHops < bestHops) {
      bestHops = session.pathHops;
      best = gw;
    }
  }
  WMSN_INVARIANT_MSG(
      !best || inv::sessionConsistent(
                   sessions_.at(*best).valid,
                   sessions_.at(*best).nextHop != net::kNoNode,
                   sessions_.at(*best).place != kNoPlace,
                   sessions_.at(*best).pathHops,
                   placeOfGw_.at(*best) == sessions_.at(*best).place),
      "SecMLR §6.2.4: the selected session must point at its gateway's "
      "current place");
  return best;
}

void SecMlrRouting::invalidateSessionsTo(std::uint16_t gateway) {
  auto it = sessions_.find(gateway);
  if (it != sessions_.end()) it->second.valid = false;
}

void SecMlrRouting::onGatewayPresumedDown(std::uint16_t gateway) {
  invalidateSessionsTo(gateway);
  // Forwarding state toward a dead gateway only misroutes packets into the
  // void; clearing it makes the next query rebuild through live paths.
  std::erase_if(forward_, [gateway](const auto& kv) {
    return static_cast<std::uint16_t>(kv.first & 0xffff) == gateway;
  });
  WMSN_INVARIANT_MSG(
      !hasSessionTo(gateway) &&
          std::none_of(forward_.begin(), forward_.end(),
                       [gateway](const auto& kv) {
                         return static_cast<std::uint16_t>(kv.first & 0xffff) ==
                                gateway;
                       }),
      "SecMLR: a presumed-down gateway keeps no usable session and no "
      "forwarding entries");
}

void SecMlrRouting::startQuery() {
  queryInFlight_ = true;
  ++queriesStarted_;
  ++reqId_;

  // One MAC'd query per targeted gateway (each pair (S_i, G_j) shares a
  // distinct key). The first attempt targets only the gateway at the
  // min-hop occupied place — the place table already tells us who will win
  // step 4 — so the network carries one flood instead of m. A retry falls
  // back to the paper's literal "m destinations" broadcast.
  std::vector<std::uint16_t> targets;
  if (queryRetries_ == 0) {
    if (const auto place = selectedPlace())
      targets.push_back(occupiedBy_.at(*place));
  }
  if (targets.empty())
    for (const auto& [place, gw] : occupiedBy_) {
      (void)place;
      targets.push_back(gw);
    }

  for (std::uint16_t gw : targets) {
    SecRreqMsg msg;
    msg.source = static_cast<std::uint16_t>(self());
    msg.gateway = gw;
    msg.reqId = reqId_;
    msg.counter = counterTo_[gw].next();
    const crypto::Key key = pairKey(msg.source, gw);
    msg.encReq = crypto::SpeckCtr(key).encrypt(msg.counter, plainReq());
    msg.path.push_back(msg.source);
    msg.mac = crypto::packetMac(key, msg.counter, msg.macInput());
    chargeCrypto(msg.macInput().size() + msg.encReq.size());

    seenSecRreq_.insert(rreqKey(msg.source, gw, reqId_));
    sendBroadcast(makePacket(net::PacketKind::kRreq, net::kBroadcastId,
                             msg.encode()));
  }

  const std::uint32_t expectReq = reqId_;
  scheduleAfter(config_.responseWindow, [this, expectReq] {
    if (!queryInFlight_ || reqId_ != expectReq) return;
    finishQuery();
  });
}

void SecMlrRouting::finishQuery() {
  queryInFlight_ = false;
  const auto gw = pickSessionGateway();
  if (!gw) {
    if (queryRetries_ < config_.maxQueryRetries && !occupiedBy_.empty()) {
      ++queryRetries_;
      if (params_.failover) {
        // Bounded exponential backoff before re-flooding: the last flood
        // just died in the same outage an immediate retry would re-enter.
        // queryInFlight_ stays up so new readings queue instead of racing a
        // second discovery.
        queryInFlight_ = true;
        const std::uint32_t shift = std::min(queryRetries_ - 1, 5u);
        const std::uint32_t expectReq = reqId_;
        scheduleAfter(sim::Time{config_.collectWindow.us << shift},
                      [this, expectReq] {
                        if (reqId_ != expectReq) return;
                        startQuery();
                      });
      } else {
        startQuery();
      }
    } else {
      ++queriesFailed_;
      dataQueue_.clear();  // undeliverable this round — shows in PDR
    }
    return;
  }
  auto queue = std::move(dataQueue_);
  dataQueue_.clear();
  for (auto& [uid, reading] : queue) sendSecData(uid, std::move(reading), *gw);
}

void SecMlrRouting::handleSecRreq(const net::Packet& packet,
                                  net::NodeId /*from*/) {
  SecRreqMsg msg = SecRreqMsg::decode(packet.payload);
  if (msg.source == self()) return;
  if (msg.path.empty() || msg.path.front() != msg.source) return;
  if (!pathIsSimple(msg.path)) return;
  if (std::find(msg.path.begin(), msg.path.end(),
                static_cast<std::uint16_t>(self())) != msg.path.end())
    return;

  if (isGateway() && msg.gateway == self()) {
    // §6.2.2: verify origin authenticity and freshness, then collect path
    // copies for a timeout before answering.
    const crypto::Key key = pairKey(msg.source, msg.gateway);
    chargeCrypto(msg.macInput().size());
    if (!crypto::verifyPacketMac(key, msg.counter, msg.macInput(), msg.mac)) {
      ++rejectedMacs_;
      return;
    }
    if (msg.counter <= sensorWindow_[msg.source].last()) {
      ++rejectedReplays_;
      return;
    }
    const std::uint64_t ck = collectKey(msg.source, msg.reqId);
    auto [it, first] = collecting_.try_emplace(ck);
    it->second.counter = msg.counter;
    it->second.paths.push_back(msg.path);
    if (first) {
      const std::uint16_t source = msg.source;
      const std::uint32_t reqId = msg.reqId;
      scheduleAfter(config_.collectWindow,
                    [this, source, reqId] { replyToQuery(source, reqId); });
    }
    return;
  }

  // Relay: re-flood the first copy with ourselves appended. Gateways never
  // relay queries addressed to other gateways — a discovered path through a
  // mobile sink would break when it moves, and gateways do not forward data.
  if (isGateway()) return;
  if (!seenSecRreq_.insert(rreqKey(msg.source, msg.gateway, msg.reqId)).second)
    return;
  if (msg.path.size() >= config_.maxPathLength) return;
  msg.path.push_back(static_cast<std::uint16_t>(self()));
  sendBroadcastJittered(makePacket(net::PacketKind::kRreq, net::kBroadcastId,
                                   msg.encode()));
}

void SecMlrRouting::replyToQuery(std::uint16_t source, std::uint32_t reqId) {
  auto it = collecting_.find(collectKey(source, reqId));
  if (it == collecting_.end()) return;
  Collect collect = std::move(it->second);
  collecting_.erase(it);
  if (collect.paths.empty()) return;

  // Consume the query's counter now that it is being answered.
  if (!sensorWindow_[source].acceptAndAdvance(collect.counter)) {
    ++rejectedReplays_;
    return;
  }

  // path_ij = Min(|path_ij(k)|) over collected copies.
  const Path* best = &collect.paths.front();
  for (const Path& p : collect.paths)
    if (p.size() < best->size()) best = &p;

  SecRresMsg res;
  res.source = source;
  res.gateway = static_cast<std::uint16_t>(self());
  res.place = myPlace_;
  res.reqId = reqId;
  res.counter = toSensorCounter_[source].next();
  const crypto::Key key = pairKey(source, res.gateway);
  res.encRes = crypto::SpeckCtr(key).encrypt(res.counter, plainRes());
  res.path = *best;
  res.path.push_back(res.gateway);
  res.cursor = static_cast<std::uint16_t>(res.path.size() - 2);
  res.mac = crypto::packetMac(key, res.counter, res.macInput());
  chargeCrypto(res.macInput().size() + res.encRes.size());

  sendUnicast(res.path[res.cursor],
              makePacket(net::PacketKind::kRres, res.path[res.cursor],
                         res.encode()));
}

void SecMlrRouting::handleSecRres(const net::Packet& packet,
                                  net::NodeId /*from*/) {
  SecRresMsg msg = SecRresMsg::decode(packet.payload);
  if (msg.path.size() < 2 || msg.cursor >= msg.path.size()) return;
  if (msg.path[msg.cursor] != self()) return;
  if (!pathIsSimple(msg.path)) return;

  if (msg.cursor == 0) {
    // Back at the source: authenticate the gateway's answer.
    if (msg.source != self()) return;
    const crypto::Key key = pairKey(msg.source, msg.gateway);
    chargeCrypto(msg.macInput().size());
    if (!crypto::verifyPacketMac(key, msg.counter, msg.macInput(), msg.mac)) {
      ++rejectedMacs_;
      return;
    }
    if (!counterFrom_[msg.gateway].acceptAndAdvance(msg.counter)) {
      ++rejectedReplays_;
      return;
    }
    Session session;
    session.valid = true;
    session.nextHop = msg.path[1];
    session.place = msg.place;
    session.pathHops = static_cast<std::uint16_t>(msg.path.size() - 1);
    WMSN_INVARIANT_MSG(
        inv::sessionConsistent(session.valid, session.nextHop != net::kNoNode,
                               session.place != kNoPlace, session.pathHops,
                               /*placeMatchesGateway=*/true),
        "SecMLR §6.2.4: an installed session carries a real next hop, a real "
        "place, and at least one hop");
    sessions_[msg.gateway] = session;
    return;
  }

  // Intermediate node: install the 4-tuple forwarding entry (§6.2.4) —
  // (source, destination, immediate sender, immediate receiver) — and pass
  // the response one hop closer to the source.
  ForwardEntry entry;
  entry.immediateSender = msg.path[msg.cursor - 1];
  entry.immediateReceiver = msg.path[msg.cursor + 1];
  forward_[fwdKey(msg.source, msg.gateway)] = entry;

  msg.cursor -= 1;
  sendUnicast(msg.path[msg.cursor],
              makePacket(net::PacketKind::kRres, msg.path[msg.cursor],
                         msg.encode()));
}

// --------------------------------------------------------------------------
// Data forwarding (§6.2.4)
// --------------------------------------------------------------------------

void SecMlrRouting::sendSecData(std::uint64_t uid, Bytes reading,
                                std::uint16_t gateway) {
  auto it = sessions_.find(gateway);
  if (it == sessions_.end() || !it->second.valid) return;

  SecDataMsg msg;
  msg.source = static_cast<std::uint16_t>(self());
  msg.gateway = gateway;
  msg.immediateSender = static_cast<std::uint16_t>(self());
  msg.immediateReceiver = static_cast<std::uint16_t>(it->second.nextHop);
  msg.dataSeq = ++dataSeq_;
  msg.counter = counterTo_[gateway].next();
  const crypto::Key key = pairKey(msg.source, gateway);
  msg.encData = crypto::SpeckCtr(key).encrypt(msg.counter, reading);
  msg.mac = crypto::packetMac(key, msg.counter, msg.macInput());
  chargeCrypto(msg.macInput().size() + reading.size());

  net::Packet pkt = makePacket(net::PacketKind::kData, it->second.nextHop,
                               msg.encode());
  pkt.uid = uid;
  pkt.seq = msg.dataSeq;
  pkt.finalDst = gateway;
  sendUnicast(it->second.nextHop, std::move(pkt));
}

void SecMlrRouting::handleSecData(const net::Packet& packet,
                                  net::NodeId from) {
  SecDataMsg msg = SecDataMsg::decode(packet.payload);
  if (msg.immediateReceiver != self()) return;

  if (isGateway()) {
    if (msg.gateway != self()) return;
    const crypto::Key key = pairKey(msg.source, msg.gateway);
    chargeCrypto(msg.macInput().size() + msg.encData.size());
    if (!crypto::verifyPacketMac(key, msg.counter, msg.macInput(), msg.mac)) {
      ++rejectedMacs_;
      WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kReject, now().us,
                 packet.uid, static_cast<std::uint32_t>(self()),
                 msg.source, obs::TraceDropReason::kAuthMac, packet.hops);
      return;
    }
    if (!sensorWindow_[msg.source].acceptAndAdvance(msg.counter)) {
      ++rejectedReplays_;  // replayed data dies at the gateway
      WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kReject, now().us,
                 packet.uid, static_cast<std::uint32_t>(self()),
                 msg.source, obs::TraceDropReason::kReplay, packet.hops);
      return;
    }
    const Bytes reading =
        crypto::SpeckCtr(key).decrypt(msg.counter, msg.encData);
    (void)reading;  // content consumed by the application layer
    reportDelivered(packet.uid, msg.source, packet.hops + 1u);
    return;
  }

  // Forwarder: match the 4-tuple entry; rewrite IS/IR (§6.2.4). No crypto —
  // intermediate sensors spend no CPU on security.
  auto it = forward_.find(fwdKey(msg.source, msg.gateway));
  if (it == forward_.end()) return;
  if (it->second.immediateSender != from) return;  // off-path injection

  msg.immediateSender = static_cast<std::uint16_t>(self());
  msg.immediateReceiver =
      static_cast<std::uint16_t>(it->second.immediateReceiver);

  net::Packet fwd = makePacket(net::PacketKind::kData,
                               it->second.immediateReceiver, msg.encode());
  fwd.uid = packet.uid;
  fwd.origin = packet.origin;
  fwd.seq = packet.seq;
  fwd.finalDst = msg.gateway;
  fwd.hops = static_cast<std::uint8_t>(packet.hops + 1);
  sendUnicast(it->second.immediateReceiver, std::move(fwd));
}

// --------------------------------------------------------------------------
// Secure downstream commands (§5.1's gateway→sensor direction)
// --------------------------------------------------------------------------

std::uint32_t SecMlrRouting::sendCommand(net::NodeId target, Bytes body) {
  WMSN_REQUIRE_MSG(isGateway(), "commands originate at gateways");
  const auto targetId = static_cast<std::uint16_t>(target);
  const std::uint64_t counter = toSensorCounter_[targetId].next();
  const crypto::Key key = pairKey(targetId, static_cast<std::uint16_t>(self()));
  Bytes enc = crypto::SpeckCtr(key).encrypt(counter, body);
  const crypto::PacketMac mac = crypto::packetMac(key, counter, enc);
  chargeCrypto(body.size() + enc.size());

  ByteWriter sealed;
  sealed.u64(counter);
  sealed.bytes(enc);
  sealed.raw(std::span<const std::uint8_t>(mac.data(), mac.size()));
  return MlrRouting::sendCommand(target, sealed.take());
}

void SecMlrRouting::handleCommand(const net::Packet& packet) {
  const CommandMsg msg = CommandMsg::decode(packet.payload);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(msg.gateway) << 32) | msg.commandSeq;
  if (!seenCommands_.insert(key).second) return;
  if (msg.target == self()) {
    // Unseal: counter(8) + length-prefixed ciphertext + mac(8).
    ByteReader r(msg.body);
    const std::uint64_t counter = r.u64();
    const Bytes enc = r.bytes();
    const Bytes macRaw = r.raw(crypto::kPacketMacSize);
    crypto::PacketMac mac{};
    std::copy(macRaw.begin(), macRaw.end(), mac.begin());

    const crypto::Key pk =
        pairKey(static_cast<std::uint16_t>(self()), msg.gateway);
    chargeCrypto(enc.size() * 2);
    if (!crypto::verifyPacketMac(pk, counter, enc, mac)) {
      ++rejectedMacs_;  // forged command — an attacker cannot steer sensors
      return;
    }
    if (!counterFrom_[msg.gateway].acceptAndAdvance(counter)) {
      ++rejectedReplays_;
      return;
    }
    CommandMsg plain = msg;
    plain.body = crypto::SpeckCtr(pk).decrypt(counter, enc);
    acceptCommand(plain);
    return;
  }
  if (isGateway()) return;
  net::Packet copy = packet;
  copy.hops = static_cast<std::uint8_t>(packet.hops + 1);
  sendBroadcastJittered(std::move(copy));
}

// --------------------------------------------------------------------------

void SecMlrRouting::onReceive(const net::Packet& packet, net::NodeId from) {
  switch (packet.kind) {
    case net::PacketKind::kGatewayMove:
      handleSecMove(packet, from);
      return;
    case net::PacketKind::kKeyDisclose:
      handleKeyDisclose(packet);
      return;
    case net::PacketKind::kRreq:
      handleSecRreq(packet, from);
      return;
    case net::PacketKind::kRres:
      handleSecRres(packet, from);
      return;
    case net::PacketKind::kData:
      handleSecData(packet, from);
      return;
    case net::PacketKind::kCommand:
      handleCommand(packet);
      return;
    case net::PacketKind::kLoadAdvisory:
      // Advisories are soft hints (they bias place selection by a few
      // hops); a forged one degrades efficiency, never correctness, so the
      // plain handler suffices. TESLA-protecting them would cost a full
      // buffered-disclosure cycle per advisory.
      handleLoadAdvisory(packet);
      return;
    default:
      return;
  }
}

}  // namespace wmsn::routing
