#pragma once

#include <unordered_map>
#include <unordered_set>

#include "routing/messages.hpp"
#include "routing/protocol.hpp"

namespace wmsn::routing {

struct SpinParams {
  std::uint8_t maxHops = 32;
  std::size_t readingBytes = 24;
  std::size_t advBytes = 8;  ///< metadata descriptor size
};

/// SPIN (§2.2.1, refs [20, 21]): negotiation-based dissemination. "Whenever
/// a node has available data, it broadcasts a description of the data
/// instead of all the data and sends it only to the sensor nodes that
/// express interest" — the three-way ADV → REQ → DATA handshake that fixes
/// classic flooding's implosion (duplicate data transmissions) at the cost
/// of two small control frames per hop.
class SpinRouting final : public RoutingProtocol {
 public:
  SpinRouting(net::SensorNetwork& network, net::NodeId self,
              const NetworkKnowledge& knowledge, SpinParams params = {});

  std::string name() const override { return "spin"; }
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

 private:
  void advertise(std::uint64_t uid, std::uint8_t hops);

  SpinParams params_;
  /// Data this node holds (uid → hops it arrived with).
  std::unordered_map<std::uint64_t, std::uint8_t> cache_;
  /// uids we already requested (suppress duplicate REQs for in-flight data).
  std::unordered_set<std::uint64_t> requested_;
  std::uint32_t seq_ = 0;
};

}  // namespace wmsn::routing
