#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/sensor_network.hpp"

namespace wmsn::routing {

/// Static knowledge shared by all nodes at deployment time: the feasible
/// gateway places (MLR, §5.3) and which node ids are gateways. Real
/// deployments flash this into node firmware; it never changes at runtime.
struct NetworkKnowledge {
  std::vector<net::Point> feasiblePlaces;
  std::vector<net::NodeId> gatewayIds;
};

/// Per-node routing protocol instance. Lives next to its node; all
/// interaction with other nodes goes through packets on the medium.
class RoutingProtocol {
 public:
  RoutingProtocol(net::SensorNetwork& network, net::NodeId self,
                  const NetworkKnowledge& knowledge);
  virtual ~RoutingProtocol() = default;

  RoutingProtocol(const RoutingProtocol&) = delete;
  RoutingProtocol& operator=(const RoutingProtocol&) = delete;

  virtual std::string name() const = 0;

  /// Called once when the simulation starts (before any traffic).
  virtual void start() {}

  /// Called at each round boundary (§5.1: gateways may have moved).
  virtual void onRoundStart(std::uint32_t round) { (void)round; }

  /// Called when the relay topology changed out from under the protocol —
  /// e.g. a §4.4 sleep-schedule epoch put a different set of nodes to
  /// sleep. Protocols should drop cached routes that may traverse
  /// now-sleeping relays.
  virtual void onTopologyChanged() {}

  /// A frame addressed to this node (or broadcast) decoded successfully.
  virtual void onReceive(const net::Packet& packet, net::NodeId from) = 0;

  /// The application asks this sensor to report `appPayload` to the most
  /// appropriate gateway (protocol-specific policy).
  virtual void originate(Bytes appPayload) = 0;

 protected:
  net::NodeId self() const { return self_; }
  net::SensorNetwork& network() { return network_; }
  const net::SensorNetwork& network() const { return network_; }
  const NetworkKnowledge& knowledge() const { return knowledge_; }
  bool isGateway() const;
  bool alive() const { return network_.node(self_).alive(); }
  sim::Time now() const { return network_.simulator().now(); }
  Rng& rng() { return network_.node(self_).rng(); }

  void scheduleAfter(sim::Time delay, std::function<void()> action);

  /// Builds a packet originated (this hop) by this node.
  net::Packet makePacket(net::PacketKind kind, net::NodeId hopDst,
                         Bytes payload) const;

  void sendBroadcast(net::Packet packet);
  void sendUnicast(net::NodeId nextHop, net::Packet packet);

  /// Broadcast after a random forwarding delay in [0, the network's
  /// configured flood jitter] — standard flood-storm suppression:
  /// neighbours that would otherwise all rebroadcast in the same instant
  /// (and collide) spread out in time.
  void sendBroadcastJittered(net::Packet packet);

  /// Registers a fresh application payload and returns its uid.
  std::uint64_t registerGenerated();
  /// Reports gateway delivery to the metrics sink.
  void reportDelivered(std::uint64_t uid, net::NodeId origin,
                       std::uint32_t hops);

 private:
  net::SensorNetwork& network_;
  net::NodeId self_;
  const NetworkKnowledge& knowledge_;
};

/// Instantiates one protocol per node and wires receive handlers. Owns the
/// protocol objects and the shared knowledge.
class ProtocolStack {
 public:
  using Factory = std::function<std::unique_ptr<RoutingProtocol>(
      net::SensorNetwork&, net::NodeId, const NetworkKnowledge&)>;

  ProtocolStack(net::SensorNetwork& network, NetworkKnowledge knowledge,
                const Factory& factory);

  RoutingProtocol& at(net::NodeId id);
  const NetworkKnowledge& knowledge() const { return knowledge_; }

  void startAll();
  void beginRound(std::uint32_t round);
  void topologyChangedAll();

  /// Replaces the protocol on one node (used by the attack framework to
  /// substitute a compromised stack). The node keeps its id and battery.
  void replace(net::NodeId id, std::unique_ptr<RoutingProtocol> protocol);

 private:
  net::SensorNetwork& network_;
  NetworkKnowledge knowledge_;
  std::vector<std::unique_ptr<RoutingProtocol>> protocols_;
};

}  // namespace wmsn::routing
