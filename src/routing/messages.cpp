#include "routing/messages.hpp"

#include <unordered_set>

#include "util/require.hpp"

namespace wmsn::routing {

namespace {

void writeMac(ByteWriter& w, const crypto::PacketMac& mac) {
  w.raw(std::span<const std::uint8_t>(mac.data(), mac.size()));
}

crypto::PacketMac readMac(ByteReader& r) {
  const Bytes raw = r.raw(crypto::kPacketMacSize);
  crypto::PacketMac mac{};
  std::copy(raw.begin(), raw.end(), mac.begin());
  return mac;
}

void writeKey(ByteWriter& w, const crypto::Key& key) {
  w.raw(std::span<const std::uint8_t>(key.data(), key.size()));
}

crypto::Key readKey(ByteReader& r) {
  const Bytes raw = r.raw(sizeof(crypto::Key));
  crypto::Key key{};
  std::copy(raw.begin(), raw.end(), key.begin());
  return key;
}

}  // namespace

void encodePath(ByteWriter& w, const Path& path) {
  WMSN_REQUIRE_MSG(path.size() <= 0xff, "path too long to encode");
  w.u8(static_cast<std::uint8_t>(path.size()));
  for (std::uint16_t hop : path) w.u16(hop);
}

Path decodePath(ByteReader& r) {
  const std::size_t n = r.u8();
  Path path;
  path.reserve(n);
  for (std::size_t i = 0; i < n; ++i) path.push_back(r.u16());
  return path;
}

bool pathIsSimple(const Path& path) {
  std::unordered_set<std::uint16_t> seen;
  for (std::uint16_t hop : path)
    if (!seen.insert(hop).second) return false;
  return true;
}

// --- SPR --------------------------------------------------------------------

Bytes RreqMsg::encode() const {
  ByteWriter w;
  w.u32(reqId);
  w.u16(targetGateway);
  encodePath(w, path);
  return w.take();
}

RreqMsg RreqMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  RreqMsg m;
  m.reqId = r.u32();
  m.targetGateway = r.u16();
  m.path = decodePath(r);
  return m;
}

Bytes RresMsg::encode() const {
  ByteWriter w;
  w.u32(reqId);
  w.u16(gateway);
  w.u16(place);
  encodePath(w, path);
  w.u16(cursor);
  return w.take();
}

RresMsg RresMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  RresMsg m;
  m.reqId = r.u32();
  m.gateway = r.u16();
  m.place = r.u16();
  m.path = decodePath(r);
  m.cursor = r.u16();
  return m;
}

Bytes DataMsg::encode() const {
  ByteWriter w;
  w.u16(source);
  w.u16(gateway);
  w.u16(place);
  w.u32(dataSeq);
  encodePath(w, route);
  w.u16(cursor);
  w.bytes(reading);
  return w.take();
}

DataMsg DataMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  DataMsg m;
  m.source = r.u16();
  m.gateway = r.u16();
  m.place = r.u16();
  m.dataSeq = r.u32();
  m.route = decodePath(r);
  m.cursor = r.u16();
  m.reading = r.bytes();
  return m;
}

// --- MLR --------------------------------------------------------------------

Bytes GatewayMoveMsg::encode() const {
  ByteWriter w;
  w.u16(gateway);
  w.u16(newPlace);
  w.u16(prevPlace);
  w.u32(round);
  w.u16(hopCount);
  return w.take();
}

GatewayMoveMsg GatewayMoveMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  GatewayMoveMsg m;
  m.gateway = r.u16();
  m.newPlace = r.u16();
  m.prevPlace = r.u16();
  m.round = r.u32();
  m.hopCount = r.u16();
  return m;
}

Bytes LoadAdvisoryMsg::encode() const {
  ByteWriter w;
  w.u16(gateway);
  w.u16(place);
  w.u32(round);
  w.u16(loadPermille);
  w.u16(hopCount);
  return w.take();
}

LoadAdvisoryMsg LoadAdvisoryMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  LoadAdvisoryMsg m;
  m.gateway = r.u16();
  m.place = r.u16();
  m.round = r.u32();
  m.loadPermille = r.u16();
  m.hopCount = r.u16();
  return m;
}

Bytes CommandMsg::encode() const {
  ByteWriter w;
  w.u16(gateway);
  w.u16(target);
  w.u32(commandSeq);
  w.bytes(body);
  return w.take();
}

CommandMsg CommandMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  CommandMsg m;
  m.gateway = r.u16();
  m.target = r.u16();
  m.commandSeq = r.u32();
  m.body = r.bytes();
  return m;
}

// --- single-sink baseline -----------------------------------------------------

Bytes CostBeaconMsg::encode() const {
  ByteWriter w;
  w.u16(sink);
  w.u16(cost);
  w.u32(epoch);
  return w.take();
}

CostBeaconMsg CostBeaconMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  CostBeaconMsg m;
  m.sink = r.u16();
  m.cost = r.u16();
  m.epoch = r.u32();
  return m;
}

// --- LEACH --------------------------------------------------------------------

Bytes ChAdvertMsg::encode() const {
  ByteWriter w;
  w.u32(round);
  return w.take();
}

ChAdvertMsg ChAdvertMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  ChAdvertMsg m;
  m.round = r.u32();
  return m;
}

Bytes ChJoinMsg::encode() const {
  ByteWriter w;
  w.u32(round);
  return w.take();
}

ChJoinMsg ChJoinMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  ChJoinMsg m;
  m.round = r.u32();
  return m;
}

Bytes AggregateMsg::encode() const {
  ByteWriter w;
  WMSN_REQUIRE(entries.size() <= 0xffff);
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (const Entry& e : entries) {
    w.u64(e.uid);
    w.u16(e.origin);
    w.u8(e.hops);
  }
  return w.take();
}

AggregateMsg AggregateMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  AggregateMsg m;
  const std::size_t n = r.u16();
  m.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Entry e;
    e.uid = r.u64();
    e.origin = r.u16();
    e.hops = r.u8();
    m.entries.push_back(e);
  }
  return m;
}

// --- SecMLR -------------------------------------------------------------------

Bytes SecRreqMsg::macInput() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(net::PacketKind::kRreq));
  w.u16(source);
  w.u16(gateway);
  w.u32(reqId);
  w.u64(counter);
  w.bytes(encReq);
  return w.take();
}

Bytes SecRreqMsg::encode() const {
  ByteWriter w;
  w.u16(source);
  w.u16(gateway);
  w.u32(reqId);
  w.u64(counter);
  w.bytes(encReq);
  encodePath(w, path);
  writeMac(w, mac);
  return w.take();
}

SecRreqMsg SecRreqMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  SecRreqMsg m;
  m.source = r.u16();
  m.gateway = r.u16();
  m.reqId = r.u32();
  m.counter = r.u64();
  m.encReq = r.bytes();
  m.path = decodePath(r);
  m.mac = readMac(r);
  return m;
}

Bytes SecRresMsg::macInput() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(net::PacketKind::kRres));
  w.u16(source);
  w.u16(gateway);
  w.u16(place);
  w.u32(reqId);
  w.u64(counter);
  w.bytes(encRes);
  encodePath(w, path);  // the chosen path is gateway-asserted → MAC'd
  return w.take();
}

Bytes SecRresMsg::encode() const {
  ByteWriter w;
  w.u16(source);
  w.u16(gateway);
  w.u16(place);
  w.u32(reqId);
  w.u64(counter);
  w.bytes(encRes);
  encodePath(w, path);
  w.u16(cursor);
  writeMac(w, mac);
  return w.take();
}

SecRresMsg SecRresMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  SecRresMsg m;
  m.source = r.u16();
  m.gateway = r.u16();
  m.place = r.u16();
  m.reqId = r.u32();
  m.counter = r.u64();
  m.encRes = r.bytes();
  m.path = decodePath(r);
  m.cursor = r.u16();
  m.mac = readMac(r);
  return m;
}

Bytes SecDataMsg::macInput() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(net::PacketKind::kData));
  w.u16(source);
  w.u16(gateway);
  w.u32(dataSeq);
  w.u64(counter);
  w.bytes(encData);
  return w.take();
}

Bytes SecDataMsg::encode() const {
  ByteWriter w;
  w.u16(source);
  w.u16(gateway);
  w.u16(immediateSender);
  w.u16(immediateReceiver);
  w.u32(dataSeq);
  w.u64(counter);
  w.bytes(encData);
  writeMac(w, mac);
  return w.take();
}

SecDataMsg SecDataMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  SecDataMsg m;
  m.source = r.u16();
  m.gateway = r.u16();
  m.immediateSender = r.u16();
  m.immediateReceiver = r.u16();
  m.dataSeq = r.u32();
  m.counter = r.u64();
  m.encData = r.bytes();
  m.mac = readMac(r);
  return m;
}

Bytes SecMoveMsg::encode() const {
  ByteWriter w;
  w.u16(gateway);
  w.bytes(teslaPayload);
  w.u32(interval);
  writeMac(w, mac);
  w.u16(hopCount);
  return w.take();
}

SecMoveMsg SecMoveMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  SecMoveMsg m;
  m.gateway = r.u16();
  m.teslaPayload = r.bytes();
  m.interval = r.u32();
  m.mac = readMac(r);
  m.hopCount = r.u16();
  return m;
}

Bytes KeyDiscloseMsg::encode() const {
  ByteWriter w;
  w.u16(gateway);
  w.u32(interval);
  writeKey(w, key);
  return w.take();
}

KeyDiscloseMsg KeyDiscloseMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  KeyDiscloseMsg m;
  m.gateway = r.u16();
  m.interval = r.u32();
  m.key = readKey(r);
  return m;
}

Bytes AckMsg::encode() const {
  ByteWriter w;
  w.u64(uid);
  return w.take();
}

AckMsg AckMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  AckMsg m;
  m.uid = r.u64();
  return m;
}

}  // namespace wmsn::routing
