#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hmac.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace wmsn::routing {

/// Wire formats for every protocol payload. Every message has encode() →
/// Bytes and a static decode(Bytes) that throws PreconditionError on
/// malformed input — a hostile packet must never crash a node.
///
/// Node ids travel as 16-bit short addresses (802.15.4-style), so paths cost
/// 2 bytes per hop on air.

inline constexpr std::uint16_t kNoPlace = 0xffff;
inline constexpr std::uint16_t kAllGateways = 0xffff;

/// Path as carried in RREQ/RRES frames (§5.2, Fig. 4b).
using Path = std::vector<std::uint16_t>;

void encodePath(ByteWriter& w, const Path& path);
Path decodePath(ByteReader& r);

/// True if the path has no duplicate nodes (loops are a spoofing symptom).
bool pathIsSimple(const Path& path);

// --- SPR (§5.2) -----------------------------------------------------------

/// Routing query, flooded with "m destinations" (all gateways) or one.
struct RreqMsg {
  std::uint32_t reqId = 0;          ///< source-scoped request id
  std::uint16_t targetGateway = kAllGateways;
  Path path;                        ///< accumulated path, source first

  Bytes encode() const;
  static RreqMsg decode(const Bytes& payload);
};

/// Routing response, unicast hop-by-hop back along the reversed path.
struct RresMsg {
  std::uint32_t reqId = 0;
  std::uint16_t gateway = 0;
  std::uint16_t place = kNoPlace;   ///< feasible place (MLR bookkeeping)
  Path path;                        ///< source → gateway
  std::uint16_t cursor = 0;         ///< next index into path on the way back

  Bytes encode() const;
  static RresMsg decode(const Bytes& payload);
};

/// Application data. `route` carries the source route on a path's first
/// packet (§5.2 step 5.1); follow-up packets use installed tables and leave
/// it empty.
struct DataMsg {
  std::uint16_t source = 0;
  std::uint16_t gateway = 0;
  std::uint16_t place = kNoPlace;
  std::uint32_t dataSeq = 0;
  Path route;
  std::uint16_t cursor = 0;         ///< next index into route
  Bytes reading;                    ///< the sensed value(s)

  Bytes encode() const;
  static DataMsg decode(const Bytes& payload);
};

// --- MLR (§5.3) -----------------------------------------------------------

/// Gateway place notification, flooded at round starts. The hop counter is
/// incremented per rebroadcast, turning the notification flood into a BFS
/// cost field: every node learns its min-hop distance and next hop toward
/// the place ("update routing table by adding entries").
struct GatewayMoveMsg {
  std::uint16_t gateway = 0;
  std::uint16_t newPlace = 0;
  std::uint16_t prevPlace = kNoPlace;
  std::uint32_t round = 0;
  std::uint16_t hopCount = 0;

  Bytes encode() const;
  static GatewayMoveMsg decode(const Bytes& payload);
};

/// Congestion notification (§4.3): an overloaded gateway asks the network
/// to "automatically dispatch parts of traffic to other gateways with low
/// load". Flooded like a move notification; sensors penalise the gateway
/// for the advertised round.
struct LoadAdvisoryMsg {
  std::uint16_t gateway = 0;
  std::uint16_t place = 0;
  std::uint32_t round = 0;
  std::uint16_t loadPermille = 0;  ///< load relative to the overload threshold
  std::uint16_t hopCount = 0;

  Bytes encode() const;
  static LoadAdvisoryMsg decode(const Bytes& payload);
};

/// Downstream traffic (§5.1: "two kinds of data transmissions: from sensor
/// nodes to gateways and on the contrary"). Commands travel as a scoped
/// flood (standard WSN practice for sink→node dissemination); the target
/// consumes, everyone else relays once.
struct CommandMsg {
  std::uint16_t gateway = 0;   ///< issuing gateway
  std::uint16_t target = 0;    ///< destination sensor
  std::uint32_t commandSeq = 0;
  Bytes body;

  Bytes encode() const;
  static CommandMsg decode(const Bytes& payload);
};

// --- single-sink baseline (MCFA-style) -------------------------------------

struct CostBeaconMsg {
  std::uint16_t sink = 0;
  std::uint16_t cost = 0;
  std::uint32_t epoch = 0;

  Bytes encode() const;
  static CostBeaconMsg decode(const Bytes& payload);
};

// --- LEACH baseline ---------------------------------------------------------

struct ChAdvertMsg {
  std::uint32_t round = 0;

  Bytes encode() const;
  static ChAdvertMsg decode(const Bytes& payload);
};

struct ChJoinMsg {
  std::uint32_t round = 0;

  Bytes encode() const;
  static ChJoinMsg decode(const Bytes& payload);
};

/// Cluster-head → sink aggregate. Aggregation compresses readings to a
/// 6-byte digest each (uid for delivery accounting + origin), modelling
/// LEACH's in-cluster data fusion.
struct AggregateMsg {
  struct Entry {
    std::uint64_t uid = 0;   // uid is simulator bookkeeping; on air we count
    std::uint16_t origin = 0;// 6 bytes/entry (4-byte digest + 2-byte origin)
    std::uint8_t hops = 1;
  };
  std::vector<Entry> entries;

  Bytes encode() const;
  static AggregateMsg decode(const Bytes& payload);
};

// --- SecMLR (§6.2) ----------------------------------------------------------

/// Encrypted routing query: {req}_{Kij,C}, path, MAC(Kij, C | {req}).
/// One copy per gateway target is MAC'd separately (each gateway shares a
/// different key with the source), matching "floods a query packet with m
/// destinations".
struct SecRreqMsg {
  std::uint16_t source = 0;
  std::uint16_t gateway = 0;        ///< which K_ij authenticates this copy
  std::uint32_t reqId = 0;
  std::uint64_t counter = 0;        ///< freshness counter C
  Bytes encReq;                     ///< {req}_{Kij,C}
  Path path;                        ///< mutable — appended per hop
  crypto::PacketMac mac{};          ///< over the immutable fields

  Bytes encode() const;
  static SecRreqMsg decode(const Bytes& payload);
  /// The bytes covered by the MAC (everything except the mutable path).
  Bytes macInput() const;
};

/// Encrypted routing response: {res}_{Kij,C}, path_ij, MAC.
struct SecRresMsg {
  std::uint16_t source = 0;
  std::uint16_t gateway = 0;
  std::uint16_t place = kNoPlace;
  std::uint32_t reqId = 0;
  std::uint64_t counter = 0;
  Bytes encRes;
  Path path;                        ///< the gateway-chosen shortest path
  std::uint16_t cursor = 0;         ///< position on the way back (mutable)
  crypto::PacketMac mac{};

  Bytes encode() const;
  static SecRresMsg decode(const Bytes& payload);
  Bytes macInput() const;
};

/// Encrypted data with the RI routing information (Fig. 6): source,
/// destination, immediate sender, immediate receiver. IS/IR are rewritten
/// at every hop (§6.2.4) and are therefore outside the MAC.
struct SecDataMsg {
  std::uint16_t source = 0;
  std::uint16_t gateway = 0;
  std::uint16_t immediateSender = 0;
  std::uint16_t immediateReceiver = 0;
  std::uint32_t dataSeq = 0;
  std::uint64_t counter = 0;
  Bytes encData;                    ///< {data}_{Kij,C}
  crypto::PacketMac mac{};

  Bytes encode() const;
  static SecDataMsg decode(const Bytes& payload);
  Bytes macInput() const;
};

/// TESLA-authenticated gateway move notification (§6.2.3) and the
/// corresponding delayed key disclosure.
struct SecMoveMsg {
  std::uint16_t gateway = 0;
  Bytes teslaPayload;               ///< serialised GatewayMoveMsg
  std::uint32_t interval = 0;
  crypto::PacketMac mac{};
  std::uint16_t hopCount = 0;       ///< mutable flood metadata

  Bytes encode() const;
  static SecMoveMsg decode(const Bytes& payload);
};

struct KeyDiscloseMsg {
  std::uint16_t gateway = 0;
  std::uint32_t interval = 0;
  crypto::Key key{};

  Bytes encode() const;
  static KeyDiscloseMsg decode(const Bytes& payload);
};

// --- link-layer acknowledgement (reliable forwarding option) ---------------

struct AckMsg {
  std::uint64_t uid = 0;            ///< uid of the acknowledged data frame

  Bytes encode() const;
  static AckMsg decode(const Bytes& payload);
};

}  // namespace wmsn::routing
