#pragma once

#include <unordered_set>

#include "routing/protocol.hpp"

namespace wmsn::routing {

struct FloodingParams {
  std::uint8_t maxHops = 32;       ///< TTL cap ("maximum number of hops")
  std::size_t readingBytes = 24;   ///< app payload size per sensed value
};

/// Classic flooding (§2.2.1): every node rebroadcasts the first copy of each
/// data packet until the TTL expires or a gateway is reached. The textbook
/// baseline — maximal robustness, maximal energy waste (implosion).
class FloodingRouting final : public RoutingProtocol {
 public:
  FloodingRouting(net::SensorNetwork& network, net::NodeId self,
                  const NetworkKnowledge& knowledge,
                  FloodingParams params = {});

  std::string name() const override { return "flooding"; }
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

 private:
  FloodingParams params_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint32_t seq_ = 0;
};

/// Gossiping (§2.2.1): instead of broadcasting, each node relays the packet
/// to ONE randomly selected neighbour — no implosion, but propagation is a
/// random walk ("message propagation takes longer time").
class GossipRouting final : public RoutingProtocol {
 public:
  GossipRouting(net::SensorNetwork& network, net::NodeId self,
                const NetworkKnowledge& knowledge, FloodingParams params = {});

  std::string name() const override { return "gossip"; }
  void onReceive(const net::Packet& packet, net::NodeId from) override;
  void originate(Bytes appPayload) override;

 private:
  void relay(net::Packet packet);

  FloodingParams params_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint32_t seq_ = 0;
};

}  // namespace wmsn::routing
