#include "routing/spin.hpp"

namespace wmsn::routing {

namespace {

/// ADV and REQ carry just the data descriptor (its uid, here).
Bytes descriptor(std::uint64_t uid, std::uint8_t hops) {
  ByteWriter w;
  w.u64(uid);
  w.u8(hops);
  return w.take();
}

std::pair<std::uint64_t, std::uint8_t> parseDescriptor(const Bytes& payload) {
  ByteReader r(payload);
  const std::uint64_t uid = r.u64();
  const std::uint8_t hops = r.u8();
  return {uid, hops};
}

}  // namespace

SpinRouting::SpinRouting(net::SensorNetwork& network, net::NodeId self,
                         const NetworkKnowledge& knowledge, SpinParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {}

void SpinRouting::advertise(std::uint64_t uid, std::uint8_t hops) {
  net::Packet adv = makePacket(net::PacketKind::kAdv, net::kBroadcastId,
                               descriptor(uid, hops));
  sendBroadcastJittered(std::move(adv));
}

void SpinRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  (void)appPayload;  // regenerated from the cache at send time
  const std::uint64_t uid = registerGenerated();
  ++seq_;
  cache_.emplace(uid, 0);
  advertise(uid, 0);
}

void SpinRouting::onReceive(const net::Packet& packet, net::NodeId from) {
  switch (packet.kind) {
    case net::PacketKind::kAdv: {
      const auto [uid, hops] = parseDescriptor(packet.payload);
      if (cache_.contains(uid)) return;          // already have it
      if (!requested_.insert(uid).second) return;  // already asked someone
      if (!isGateway() && hops + 1u >= params_.maxHops) return;
      net::Packet req = makePacket(net::PacketKind::kReq, from,
                                   descriptor(uid, hops));
      sendUnicast(from, std::move(req));
      return;
    }
    case net::PacketKind::kReq: {
      const auto [uid, hops] = parseDescriptor(packet.payload);
      const auto it = cache_.find(uid);
      if (it == cache_.end()) return;  // we no longer (or never) had it
      DataMsg msg;
      msg.source = static_cast<std::uint16_t>(self());
      msg.gateway = kAllGateways;
      msg.dataSeq = ++seq_;
      msg.reading = Bytes(params_.readingBytes, 0x5b);
      net::Packet data =
          makePacket(net::PacketKind::kData, from, msg.encode());
      data.uid = uid;
      data.hops = it->second;
      sendUnicast(from, std::move(data));
      return;
    }
    case net::PacketKind::kData: {
      const std::uint64_t uid = packet.uid;
      const std::uint8_t hops = static_cast<std::uint8_t>(packet.hops + 1);
      if (!cache_.emplace(uid, hops).second) return;  // duplicate
      if (isGateway()) {
        const DataMsg msg = DataMsg::decode(packet.payload);
        reportDelivered(uid, msg.source, hops);
        return;
      }
      // Holding fresh data: negotiate it onward.
      advertise(uid, hops);
      return;
    }
    default:
      return;
  }
}

}  // namespace wmsn::routing
