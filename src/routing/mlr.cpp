#include "routing/mlr.hpp"

#include <algorithm>
#include <limits>

#include "obs/perf_stats.hpp"
#include "obs/profiler.hpp"
#include "util/invariants.hpp"
#include "util/require.hpp"

namespace wmsn::routing {

namespace {
std::uint64_t advertKey(std::uint16_t gateway, std::uint32_t round) {
  return (static_cast<std::uint64_t>(gateway) << 32) | round;
}
}  // namespace

MlrRouting::MlrRouting(net::SensorNetwork& network, net::NodeId self,
                       const NetworkKnowledge& knowledge, MlrParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {
  table_.resize(knowledge.feasiblePlaces.size());
}

void MlrRouting::onRoundStart(std::uint32_t round) {
  WMSN_INVARIANT_MSG(
      table_.size() == knowledge().feasiblePlaces.size(),
      "MLR §5.3: the routing table has exactly one slot per feasible place");
  round_ = round;
  pendingAcks_.clear();
  if (isGateway()) {
    // The active-set scheduler skips this node entirely while it is
    // crashed, so after recovery the load counter may still hold the count
    // from the pre-crash round. A round-number gap means exactly that:
    // discard the stale count instead of advising on it.
    if (round != lastGatewayRound_ + 1) dataReceivedThisRound_ = 0;
    lastGatewayRound_ = round;
    maybeAdviseLoad(round);
    dataReceivedThisRound_ = 0;
  }
  if (params_.rebuildEveryRound) {
    // Conventional table-driven behaviour — the ablation MLR improves on.
    table_.assign(table_.size(), PlaceEntry{});
    occupiedBy_.clear();
    placeOfGw_.clear();
  }
  if (params_.failover && !isGateway() && round > 0)
    evictStaleGateways(round);
}

void MlrRouting::evictStaleGateways(std::uint32_t round) {
  // With failover on, every live gateway announces every round, so a
  // gateway last heard before round - staleAfterRounds has fallen silent:
  // stop routing to it. Its table entry (hop field toward the place) stays —
  // a recovered or replacement gateway re-validates it by re-occupying.
  for (auto it = placeOfGw_.begin(); it != placeOfGw_.end();) {
    const std::uint16_t gw = it->first;
    const auto heard = lastHeardRound_.find(gw);
    const std::uint32_t last =
        heard == lastHeardRound_.end() ? 0 : heard->second;
    if (gw != self() && last + params_.staleAfterRounds < round) {
      const std::uint16_t place = it->second;
      auto occ = occupiedBy_.find(place);
      if (occ != occupiedBy_.end() && occ->second == gw)
        occupiedBy_.erase(occ);
      it = placeOfGw_.erase(it);
      WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kGatewayEvict,
                 now().us, 0, static_cast<std::uint32_t>(self()), gw,
                 obs::TraceDropReason::kNone, place);
      onGatewayPresumedDown(gw);
    } else {
      ++it;
    }
  }
}

void MlrRouting::onGatewayPresumedDown(std::uint16_t /*gateway*/) {}

void MlrRouting::onTopologyChanged() {
  // The awake relay set changed (§4.4 sleep epoch): hop counts and next
  // hops may now point through sleeping nodes. Occupancy (which gateway is
  // where) is unaffected; the cost field must re-form from fresh floods.
  table_.assign(table_.size(), PlaceEntry{});
  advertised_.clear();
  pendingAcks_.clear();
}

std::optional<std::uint16_t> MlrRouting::selectedPlace() const {
  std::optional<std::uint16_t> best;
  double bestCost = std::numeric_limits<double>::max();
  for (const auto& [place, gw] : occupiedBy_) {
    (void)gw;
    const PlaceEntry& e = table_[place];
    if (!e.known) continue;
    double cost = e.hops;
    // §4.3: an overloaded gateway advertised congestion this round — make
    // its place look a few hops further so marginal traffic spills over to
    // "starved" gateways. The penalty scales with the EXCESS over the
    // threshold (a gateway exactly at the threshold pays nothing), which
    // damps the shed-everything/ping-pong oscillation a flat penalty causes.
    if (params_.loadAdvisoryThreshold > 0) {
      const auto advisory = advisories_.find(occupiedBy_.at(place));
      if (advisory != advisories_.end() && advisory->second.round == round_) {
        const double excess =
            std::max(0.0,
                     (static_cast<double>(advisory->second.loadPermille) -
                      1000.0) /
                         1000.0);
        cost += params_.loadPenaltyHops * excess;
      }
    }
    if (params_.energyAwareSelection && e.nextHop != net::kNoNode) {
      // Extension ablation: bias away from routes whose first relay is
      // nearly drained (idealised — a deployment would piggyback residual
      // energy on HELLO beacons).
      const auto& battery = network().node(e.nextHop).battery();
      if (battery.finite()) {
        const double frac =
            battery.remainingJ() /
            network().energyParams().initialEnergyJ;
        cost += 4.0 * (1.0 - frac);
      }
    }
    if (cost < bestCost) {
      bestCost = cost;
      best = place;
    }
  }
  return best;
}

std::size_t MlrRouting::knownEntryCount() const {
  std::size_t n = 0;
  for (const auto& e : table_)
    if (e.known) ++n;
  return n;
}

void MlrRouting::announceMove(std::uint16_t newPlace, std::uint16_t prevPlace,
                              std::uint32_t round) {
  WMSN_PROFILE_PHASE(kRouteMaintenance);
  WMSN_REQUIRE_MSG(isGateway(), "only gateways announce moves");
  myPlace_ = newPlace;
  GatewayMoveMsg msg;
  msg.gateway = static_cast<std::uint16_t>(self());
  msg.newPlace = newPlace;
  msg.prevPlace = prevPlace;
  msg.round = round;
  msg.hopCount = 0;
  // Update our own view so data addressed here is recognised.
  if (prevPlace != kNoPlace) occupiedBy_.erase(prevPlace);
  occupiedBy_[newPlace] = msg.gateway;
  placeOfGw_[msg.gateway] = newPlace;
  advertised_[advertKey(msg.gateway, round)] = 0;
  sendBroadcast(makePacket(net::PacketKind::kGatewayMove, net::kBroadcastId,
                           msg.encode()));
}

void MlrRouting::onReceive(const net::Packet& packet, net::NodeId from) {
  switch (packet.kind) {
    case net::PacketKind::kGatewayMove:
      handleMove(packet, from);
      return;
    case net::PacketKind::kData:
      handleData(packet, from);
      return;
    case net::PacketKind::kAck:
      handleAck(packet);
      return;
    case net::PacketKind::kLoadAdvisory:
      handleLoadAdvisory(packet);
      return;
    case net::PacketKind::kCommand:
      handleCommand(packet);
      return;
    default:
      return;
  }
}

void MlrRouting::handleMove(const net::Packet& packet, net::NodeId from) {
  const GatewayMoveMsg msg = GatewayMoveMsg::decode(packet.payload);
  applyMove(msg, from, /*reflood=*/true);
}

void MlrRouting::applyMove(const GatewayMoveMsg& msg, net::NodeId from,
                           bool reflood) {
  WMSN_PROFILE_PHASE(kRouteMaintenance);
  if (msg.newPlace >= table_.size()) return;  // malformed
  if (msg.gateway == self()) return;

  // Freshness for the failover staleness check (monotone: late-arriving
  // re-floods of an old announcement must not rejuvenate a dead gateway).
  auto& heard = lastHeardRound_[msg.gateway];
  heard = std::max(heard, msg.round);

  // Occupancy bookkeeping: where each gateway now is.
  if (msg.prevPlace != kNoPlace) {
    auto it = occupiedBy_.find(msg.prevPlace);
    if (it != occupiedBy_.end() && it->second == msg.gateway)
      occupiedBy_.erase(it);
  }
  occupiedBy_[msg.newPlace] = msg.gateway;
  placeOfGw_[msg.gateway] = msg.newPlace;

  // Incremental table update (§5.3 step 2). Equal-cost updates refresh the
  // next hop too: when a DIFFERENT gateway re-occupies a known place, the
  // one-hop neighbours must repoint from the departed gateway to the new
  // occupant.
  PlaceEntry& entry = table_[msg.newPlace];
  const bool wasKnown = entry.known;
  const std::uint16_t prevHops = entry.hops;
  const std::uint16_t cand = static_cast<std::uint16_t>(msg.hopCount + 1);
  if (!entry.known || cand <= entry.hops) {
    WMSN_PERF(kRouteMutations);
    entry.known = true;
    entry.hops = cand;
    entry.nextHop = from;
  }
  WMSN_INVARIANT_MSG(
      inv::entryMonotone(wasKnown, prevHops, entry.hops),
      "MLR §5.3: an accumulated entry is never rebuilt — updates may only "
      "keep or improve its hop count");
  WMSN_INVARIANT_MSG(
      inv::tableWithinPlaces(knownEntryCount(),
                             knowledge().feasiblePlaces.size()) &&
          occupiedBy_.size() <= knowledge().feasiblePlaces.size(),
      "MLR §5.3: table and occupancy never exceed |P| entries");

  // A gateway just became routable — release any readings parked while the
  // network had none.
  if (params_.failover && !isGateway() && !deferred_.empty()) flushDeferred();

  // Gateways learn occupancy but never join the BFS tree: they are sinks,
  // not relays, and they move — a table entry pointing through a gateway
  // would break the moment it departs.
  if (isGateway()) return;

  if (!reflood) return;  // SecMLR runs its own (pre-verification) flood

  // Re-flood on first sight or improvement, advertising OUR current best
  // hops for the place (which may come from an older round — static sensors
  // keep old entries valid, so the flood converges to true BFS distances).
  const std::uint64_t key = advertKey(msg.gateway, msg.round);
  const std::uint16_t mine = entry.hops;
  auto it = advertised_.find(key);
  if (it != advertised_.end() && it->second <= mine) return;
  advertised_[key] = mine;

  GatewayMoveMsg rebroadcast = msg;
  rebroadcast.hopCount = mine;
  sendBroadcastJittered(makePacket(net::PacketKind::kGatewayMove,
                                   net::kBroadcastId, rebroadcast.encode()));
}

void MlrRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  const std::uint64_t uid = registerGenerated();

  // A sleeping node wakes just long enough to hand the reading to its GAF
  // cell leader (guaranteed in range), which owns a fresh routing table.
  if (delegate_) {
    DataMsg msg;
    msg.source = static_cast<std::uint16_t>(self());
    msg.gateway = kAllGateways;   // the delegate fills these in
    msg.place = kNoPlace;
    msg.dataSeq = ++seq_;
    msg.reading = std::move(appPayload);
    net::Packet pkt =
        makePacket(net::PacketKind::kData, *delegate_, msg.encode());
    pkt.uid = uid;
    pkt.seq = seq_;
    sendUnicast(*delegate_, std::move(pkt));
    return;
  }

  const auto place = selectedPlace();
  if (!place) {
    // Failover: park the reading (bounded) and flush it when some gateway
    // becomes routable again. It keeps its uid, so a late delivery still
    // counts in PDR; overflow and never-flushed readings stay undelivered.
    if (params_.failover && deferred_.size() < params_.deferredCapacity) {
      deferred_.push_back(Deferred{uid, ++seq_, std::move(appPayload)});
      WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kDefer, now().us,
                 uid, static_cast<std::uint32_t>(self()), obs::kTraceNoPeer,
                 obs::TraceDropReason::kNoRoute);
    } else {
      WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kDrop, now().us,
                 uid, static_cast<std::uint32_t>(self()), obs::kTraceNoPeer,
                 obs::TraceDropReason::kNoRoute);
    }
    return;  // no reachable gateway known — counted as undelivered
  }

  DataMsg msg;
  msg.source = static_cast<std::uint16_t>(self());
  msg.gateway = occupiedBy_.at(*place);
  msg.place = *place;
  msg.dataSeq = ++seq_;
  msg.reading = std::move(appPayload);

  const net::NodeId nextHop = table_[*place].nextHop;
  net::Packet pkt = makePacket(net::PacketKind::kData, nextHop, msg.encode());
  pkt.uid = uid;
  pkt.seq = seq_;
  pkt.finalDst = msg.gateway;

  if (params_.reliableForwarding)
    sendWithAck(std::move(pkt), nextHop, *place);
  else
    sendUnicast(nextHop, std::move(pkt));
}

void MlrRouting::handleData(const net::Packet& packet, net::NodeId from) {
  const DataMsg msg = DataMsg::decode(packet.payload);

  if (params_.reliableForwarding) {
    // Hop-by-hop ACK back to the immediate sender.
    AckMsg ack;
    ack.uid = packet.uid;
    sendUnicast(from, makePacket(net::PacketKind::kAck, from, ack.encode()));
  }

  if (isGateway()) {
    // Accept data addressed to us OR to the place we currently occupy (the
    // source may still name the previous occupant of this place).
    if (msg.gateway == self() ||
        (myPlace_ != kNoPlace && msg.place == myPlace_)) {
      ++dataReceivedThisRound_;
      reportDelivered(packet.uid, msg.source, packet.hops + 1u);
    }
    return;
  }
  forwardData(packet, msg);
}

void MlrRouting::forwardData(net::Packet packet, const DataMsg& msg) {
  if (msg.place == kNoPlace) {
    // Delegated reading from a sleeping cell member (§4.4): adopt it as if
    // it were our own traffic, keeping the original source.
    const auto place = selectedPlace();
    if (!place) {
      WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kDrop, now().us,
                 packet.uid, static_cast<std::uint32_t>(self()),
                 obs::kTraceNoPeer, obs::TraceDropReason::kNoRoute,
                 packet.hops);
      return;
    }
    DataMsg adopted = msg;
    adopted.gateway = occupiedBy_.at(*place);
    adopted.place = *place;
    net::Packet fwd = makePacket(net::PacketKind::kData,
                                 table_[*place].nextHop, adopted.encode());
    fwd.uid = packet.uid;
    fwd.origin = packet.origin;
    fwd.seq = packet.seq;
    fwd.finalDst = adopted.gateway;
    fwd.hops = static_cast<std::uint8_t>(packet.hops + 1);
    if (params_.reliableForwarding)
      sendWithAck(std::move(fwd), table_[*place].nextHop, *place);
    else
      sendUnicast(table_[*place].nextHop, std::move(fwd));
    return;
  }
  if (msg.place >= table_.size()) return;
  const PlaceEntry& entry = table_[msg.place];
  // Failover additionally demands the target place still be occupied — a
  // packet addressed to an evicted gateway is re-homed below rather than
  // walking a route to nobody.
  const bool routable =
      entry.known && (!params_.failover || occupiedBy_.contains(msg.place));
  if (!routable) {
    // Stale route upstream. Legacy behaviour drops; failover re-homes the
    // packet to the best place this node knows (hop cap bounds loops).
    if (!params_.failover || packet.hops >= 32) {
      WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kDrop, now().us,
                 packet.uid, static_cast<std::uint32_t>(self()),
                 obs::kTraceNoPeer, obs::TraceDropReason::kStaleRoute,
                 packet.hops);
      return;
    }
    const auto place = selectedPlace();
    if (!place || *place == msg.place) {
      WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kDrop, now().us,
                 packet.uid, static_cast<std::uint32_t>(self()),
                 obs::kTraceNoPeer, obs::TraceDropReason::kNoRoute,
                 packet.hops);
      return;
    }
    WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kReroute, now().us,
               packet.uid, static_cast<std::uint32_t>(self()),
               occupiedBy_.at(*place), obs::TraceDropReason::kStaleRoute,
               *place);
    DataMsg rehomed = msg;
    rehomed.gateway = occupiedBy_.at(*place);
    rehomed.place = *place;
    net::Packet fwd = makePacket(net::PacketKind::kData,
                                 table_[*place].nextHop, rehomed.encode());
    fwd.uid = packet.uid;
    fwd.origin = packet.origin;
    fwd.seq = packet.seq;
    fwd.finalDst = rehomed.gateway;
    fwd.hops = static_cast<std::uint8_t>(packet.hops + 1);
    if (params_.reliableForwarding)
      sendWithAck(std::move(fwd), table_[*place].nextHop, *place);
    else
      sendUnicast(table_[*place].nextHop, std::move(fwd));
    return;
  }

  packet.hops = static_cast<std::uint8_t>(packet.hops + 1);
  packet.hopSrc = self();
  if (params_.reliableForwarding)
    sendWithAck(std::move(packet), entry.nextHop, msg.place);
  else
    sendUnicast(entry.nextHop, std::move(packet));
}

void MlrRouting::sendWithAck(net::Packet packet, net::NodeId nextHop,
                             std::uint16_t place) {
  const std::uint64_t uid = packet.uid;
  PendingAck pending;
  pending.packet = std::move(packet);
  pending.nextHop = nextHop;
  pending.place = place;
  pendingAcks_[uid] = std::move(pending);
  transmitPending(uid);
}

void MlrRouting::transmitPending(std::uint64_t uid) {
  auto it = pendingAcks_.find(uid);
  if (it == pendingAcks_.end()) return;  // acknowledged meanwhile
  net::Packet copy = it->second.packet;
  // Failover doubles the ACK wait per retry (bounded): during an outage
  // every retransmission fails, and fixed-interval retries would keep the
  // channel saturated exactly when the network is trying to reconverge.
  const sim::Time timeout =
      params_.failover
          ? sim::Time{params_.ackTimeout.us
                      << std::min(it->second.retries, 5u)}
          : params_.ackTimeout;
  sendUnicast(it->second.nextHop, std::move(copy));

  scheduleAfter(timeout, [this, uid] {
    auto entry = pendingAcks_.find(uid);
    if (entry == pendingAcks_.end()) return;  // acknowledged
    if (entry->second.retries < params_.maxRetransmits) {
      ++entry->second.retries;
      transmitPending(uid);
    } else {
      invalidateVia(entry->second.nextHop);
      PendingAck lost = std::move(entry->second);
      pendingAcks_.erase(entry);
      if (params_.failover) {
        rerouteAfterAckLoss(std::move(lost));
      } else if (lost.packet.kind == net::PacketKind::kData) {
        WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kDrop, now().us,
                   lost.packet.uid, static_cast<std::uint32_t>(self()),
                   lost.nextHop, obs::TraceDropReason::kAckExhausted,
                   lost.packet.hops);
      }
    }
  });
}

void MlrRouting::rerouteAfterAckLoss(PendingAck pending) {
  if (pending.packet.kind != net::PacketKind::kData) return;
  if (pending.reroutes >= params_.maxReroutes) {
    WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kDrop, now().us,
               pending.packet.uid, static_cast<std::uint32_t>(self()),
               pending.nextHop, obs::TraceDropReason::kAckExhausted,
               pending.reroutes);
    return;
  }
  const auto place = selectedPlace();
  if (!place) {
    WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kDrop, now().us,
               pending.packet.uid, static_cast<std::uint32_t>(self()),
               pending.nextHop, obs::TraceDropReason::kNoRoute,
               pending.packet.hops);
    return;
  }
  WMSN_TRACE(network().tracer(), obs::TraceSpanKind::kReroute, now().us,
             pending.packet.uid, static_cast<std::uint32_t>(self()),
             occupiedBy_.at(*place), obs::TraceDropReason::kAckExhausted,
             pending.reroutes + 1);
  // Retarget at the current best place (invalidateVia just dropped every
  // entry through the dead link, so this picks a genuinely different path).
  DataMsg msg = DataMsg::decode(pending.packet.payload);
  msg.gateway = occupiedBy_.at(*place);
  msg.place = *place;
  const net::NodeId nextHop = table_[*place].nextHop;
  net::Packet pkt =
      makePacket(net::PacketKind::kData, nextHop, msg.encode());
  pkt.uid = pending.packet.uid;
  pkt.origin = pending.packet.origin;
  pkt.seq = pending.packet.seq;
  pkt.finalDst = msg.gateway;
  pkt.hops = pending.packet.hops;

  PendingAck next;
  next.packet = std::move(pkt);
  next.nextHop = nextHop;
  next.place = *place;
  next.reroutes = pending.reroutes + 1;
  const std::uint64_t uid = next.packet.uid;
  pendingAcks_[uid] = std::move(next);
  transmitPending(uid);
}

void MlrRouting::flushDeferred() {
  const auto place = selectedPlace();
  if (!place) return;
  std::vector<Deferred> queue = std::move(deferred_);
  deferred_.clear();
  for (Deferred& d : queue) {
    DataMsg msg;
    msg.source = static_cast<std::uint16_t>(self());
    msg.gateway = occupiedBy_.at(*place);
    msg.place = *place;
    msg.dataSeq = d.seq;
    msg.reading = std::move(d.reading);
    const net::NodeId nextHop = table_[*place].nextHop;
    net::Packet pkt =
        makePacket(net::PacketKind::kData, nextHop, msg.encode());
    pkt.uid = d.uid;
    pkt.seq = d.seq;
    pkt.finalDst = msg.gateway;
    if (params_.reliableForwarding)
      sendWithAck(std::move(pkt), nextHop, *place);
    else
      sendUnicast(nextHop, std::move(pkt));
  }
}

void MlrRouting::invalidateVia(net::NodeId nextHop) {
  // The link looks dead: forget every table entry that depends on it. The
  // entries re-form from the next move flood ("self-healing").
  for (auto& entry : table_)
    if (entry.known && entry.nextHop == nextHop) entry = PlaceEntry{};
}

void MlrRouting::handleAck(const net::Packet& packet) {
  if (!params_.reliableForwarding) return;
  const AckMsg msg = AckMsg::decode(packet.payload);
  pendingAcks_.erase(msg.uid);
}

// --- §4.3 load balance -------------------------------------------------------

void MlrRouting::maybeAdviseLoad(std::uint32_t round) {
  if (params_.loadAdvisoryThreshold == 0 || round == 0) return;
  if (dataReceivedThisRound_ <= params_.loadAdvisoryThreshold) return;
  LoadAdvisoryMsg msg;
  msg.gateway = static_cast<std::uint16_t>(self());
  msg.place = myPlace_;
  msg.round = round;
  // 1000‰ = exactly at the threshold; clamp far-overloaded gateways at 2x.
  const double ratio = static_cast<double>(dataReceivedThisRound_) /
                       static_cast<double>(params_.loadAdvisoryThreshold);
  msg.loadPermille =
      static_cast<std::uint16_t>(std::min(2.0, ratio) * 1000.0);
  msg.hopCount = 0;
  sendBroadcast(makePacket(net::PacketKind::kLoadAdvisory, net::kBroadcastId,
                           msg.encode()));
}

void MlrRouting::handleLoadAdvisory(const net::Packet& packet) {
  const LoadAdvisoryMsg msg = LoadAdvisoryMsg::decode(packet.payload);
  if (msg.gateway == self()) return;
  advisories_[msg.gateway] = Advisory{msg.round, msg.loadPermille};
  if (isGateway()) return;  // sinks learn but do not relay
  // Flood with the usual first-seen/improvement rule.
  const std::uint64_t key = advertKey(msg.gateway, msg.round) ^ 0x10adULL;
  const std::uint16_t mine = static_cast<std::uint16_t>(msg.hopCount + 1);
  auto it = advisoryReflooded_.find(key);
  if (it != advisoryReflooded_.end() && it->second <= mine) return;
  advisoryReflooded_[key] = mine;
  LoadAdvisoryMsg rebroadcast = msg;
  rebroadcast.hopCount = mine;
  sendBroadcastJittered(makePacket(net::PacketKind::kLoadAdvisory,
                                   net::kBroadcastId, rebroadcast.encode()));
}

// --- downstream commands (§5.1) ------------------------------------------------

std::uint32_t MlrRouting::sendCommand(net::NodeId target, Bytes body) {
  WMSN_REQUIRE_MSG(isGateway(), "commands originate at gateways");
  CommandMsg msg;
  msg.gateway = static_cast<std::uint16_t>(self());
  msg.target = static_cast<std::uint16_t>(target);
  msg.commandSeq = ++commandSeq_;
  msg.body = std::move(body);
  seenCommands_.insert(
      (static_cast<std::uint64_t>(msg.gateway) << 32) | msg.commandSeq);
  sendBroadcast(
      makePacket(net::PacketKind::kCommand, net::kBroadcastId, msg.encode()));
  return msg.commandSeq;
}

void MlrRouting::acceptCommand(const CommandMsg& msg) {
  ++commandsReceived_;
  if (commandHandler_) commandHandler_(msg);
}

void MlrRouting::handleCommand(const net::Packet& packet) {
  const CommandMsg msg = CommandMsg::decode(packet.payload);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(msg.gateway) << 32) | msg.commandSeq;
  if (!seenCommands_.insert(key).second) return;
  if (msg.target == self()) {
    acceptCommand(msg);
    return;  // scoped flood: the target terminates its branch
  }
  if (isGateway()) return;  // sinks do not relay the sensor-tier flood
  net::Packet copy = packet;
  copy.hops = static_cast<std::uint8_t>(packet.hops + 1);
  sendBroadcastJittered(std::move(copy));
}

}  // namespace wmsn::routing
