#include "routing/diffusion.hpp"

#include "util/require.hpp"

namespace wmsn::routing {

namespace {

/// Data-mode markers carried in DataMsg::place.
constexpr std::uint16_t kExploratory = 0xfffd;
constexpr std::uint16_t kReinforced = 0xfffc;

Bytes encodeReinforce(std::uint16_t origin) {
  ByteWriter w;
  w.u16(origin);
  return w.take();
}

std::uint16_t decodeReinforce(const Bytes& payload) {
  ByteReader r(payload);
  return r.u16();
}

}  // namespace

DiffusionRouting::DiffusionRouting(net::SensorNetwork& network,
                                   net::NodeId self,
                                   const NetworkKnowledge& knowledge,
                                   DiffusionParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {
  WMSN_REQUIRE_MSG(!knowledge.gatewayIds.empty(),
                   "directed diffusion needs a sink");
}

void DiffusionRouting::start() {
  if (isSink()) floodInterest();
}

void DiffusionRouting::onRoundStart(std::uint32_t /*round*/) {
  if (!isSink()) {
    // A fresh interest epoch invalidates gradients and reinforcements —
    // the paradigm's soft-state refresh.
    gradients_.clear();
    bestGradientHops_ = 0xffff;
    exploratoryFrom_.clear();
    reinforcedNext_.reset();
    return;
  }
  reinforcedOrigins_.clear();
  floodInterest();
}

void DiffusionRouting::onTopologyChanged() {
  // Recovery from a crash (the active-set scheduler skipped the soft-state
  // refresh while this node was down): gradients learned before the crash
  // point at a topology that no longer exists. Drop them; the next interest
  // epoch rebuilds.
  if (isSink()) return;
  gradients_.clear();
  bestGradientHops_ = 0xffff;
  exploratoryFrom_.clear();
  reinforcedNext_.reset();
}

void DiffusionRouting::floodInterest() {
  ++epoch_;
  CostBeaconMsg msg;
  msg.sink = static_cast<std::uint16_t>(self());
  msg.cost = 0;
  msg.epoch = epoch_;
  sendBroadcast(makePacket(net::PacketKind::kInterest, net::kBroadcastId,
                           msg.encode()));
}

void DiffusionRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  (void)appPayload;
  const std::uint64_t uid = registerGenerated();
  ++seq_;
  if (reinforcedNext_)
    sendReinforced(uid);
  else
    sendExploratory(uid);
}

void DiffusionRouting::sendExploratory(std::uint64_t uid) {
  if (gradients_.empty()) return;  // no interest heard — nobody is asking
  DataMsg msg;
  msg.source = static_cast<std::uint16_t>(self());
  msg.gateway = static_cast<std::uint16_t>(knowledge().gatewayIds.front());
  msg.place = kExploratory;
  msg.dataSeq = seq_;
  msg.reading = Bytes(params_.readingBytes, 0xdd);
  net::Packet pkt =
      makePacket(net::PacketKind::kData, net::kBroadcastId, msg.encode());
  pkt.uid = uid;
  seenExploratory_.insert(uid);
  sendBroadcast(std::move(pkt));
}

void DiffusionRouting::sendReinforced(std::uint64_t uid) {
  DataMsg msg;
  msg.source = static_cast<std::uint16_t>(self());
  msg.gateway = static_cast<std::uint16_t>(knowledge().gatewayIds.front());
  msg.place = kReinforced;
  msg.dataSeq = seq_;
  msg.reading = Bytes(params_.readingBytes, 0xdd);
  net::Packet pkt =
      makePacket(net::PacketKind::kData, *reinforcedNext_, msg.encode());
  pkt.uid = uid;
  sendUnicast(*reinforcedNext_, std::move(pkt));
}

void DiffusionRouting::onReceive(const net::Packet& packet, net::NodeId from) {
  switch (packet.kind) {
    case net::PacketKind::kInterest: {
      if (isSink()) return;
      const CostBeaconMsg msg = CostBeaconMsg::decode(packet.payload);
      if (msg.epoch > epoch_) {
        epoch_ = msg.epoch;
        gradients_.clear();
        bestGradientHops_ = 0xffff;
      } else if (msg.epoch < epoch_) {
        return;  // stale interest
      }
      // Every neighbour the interest arrives from is a gradient.
      const std::uint16_t cost = static_cast<std::uint16_t>(msg.cost + 1);
      gradients_[from] = cost;
      if (cost < bestGradientHops_) {
        bestGradientHops_ = cost;
        CostBeaconMsg rebroadcast = msg;
        rebroadcast.cost = cost;
        sendBroadcastJittered(makePacket(net::PacketKind::kInterest,
                                         net::kBroadcastId,
                                         rebroadcast.encode()));
      }
      return;
    }
    case net::PacketKind::kData: {
      const DataMsg msg = DataMsg::decode(packet.payload);
      if (msg.place == kExploratory) {
        if (!seenExploratory_.insert(packet.uid).second) return;
        // Remember the reverse path for the reinforcement walk.
        exploratoryFrom_.emplace(msg.source, from);
        if (isSink()) {
          reportDelivered(packet.uid, msg.source, packet.hops + 1u);
          // Reinforce the first-arriving (lowest-latency) path once.
          if (reinforcedOrigins_.insert(msg.source).second) {
            sendUnicast(from,
                        makePacket(net::PacketKind::kReinforce, from,
                                   encodeReinforce(msg.source)));
          }
          return;
        }
        if (isGateway()) return;  // other gateways stay out of this paradigm
        if (packet.hops + 1u >= params_.maxHops) return;
        if (gradients_.empty()) return;  // no path toward the sink
        net::Packet copy = packet;
        copy.hops = static_cast<std::uint8_t>(packet.hops + 1);
        sendBroadcastJittered(std::move(copy));
        return;
      }
      if (msg.place == kReinforced) {
        if (isSink()) {
          reportDelivered(packet.uid, msg.source, packet.hops + 1u);
          return;
        }
        if (isGateway()) return;
        net::Packet copy = packet;
        copy.hops = static_cast<std::uint8_t>(packet.hops + 1);
        if (reinforcedNext_) {
          sendUnicast(*reinforcedNext_, std::move(copy));
        } else if (!gradients_.empty()) {
          // Reinforcement lapsed here — degrade to exploratory flooding.
          DataMsg downgraded = msg;
          downgraded.place = kExploratory;
          copy.payload = downgraded.encode();
          copy.hopDst = net::kBroadcastId;
          seenExploratory_.insert(copy.uid);
          sendBroadcast(std::move(copy));
        }
        return;
      }
      return;
    }
    case net::PacketKind::kReinforce: {
      if (isGateway()) return;
      const std::uint16_t origin = decodeReinforce(packet.payload);
      // Data flows back toward whoever reinforced us.
      reinforcedNext_ = from;
      if (origin == self()) return;  // the walk reached the source
      const auto upstream = exploratoryFrom_.find(origin);
      if (upstream == exploratoryFrom_.end()) return;  // path evaporated
      sendUnicast(upstream->second,
                  makePacket(net::PacketKind::kReinforce, upstream->second,
                             encodeReinforce(origin)));
      return;
    }
    default:
      return;
  }
}

}  // namespace wmsn::routing
