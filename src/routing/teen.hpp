#pragma once

#include "routing/leach.hpp"

namespace wmsn::routing {

struct TeenParams {
  /// Report only when the sensed value exceeds the hard threshold…
  double hardThreshold = 40.0;
  /// …and has moved by at least the soft threshold since the last report
  /// ("the user can control the trade-off between energy efficiency and
  /// data accuracy", §2.2.2).
  double softThreshold = 2.0;

  /// Sensed-value model: a bounded random walk per node (temperature-like).
  double valueMin = 0.0;
  double valueMax = 100.0;
  double valueStart = 35.0;
  double stepSigma = 4.0;
};

/// TEEN (§2.2.2, ref [18]): LEACH-style clustering made *reactive* — a node
/// senses continuously but transmits only when the reading crosses the
/// hard threshold and has changed by more than the soft threshold since its
/// last report. Each originate() call is one sensing event; suppressed
/// events never enter the network (and are not counted as generated
/// traffic — TEEN's contract is that unremarkable readings are not owed
/// delivery).
class TeenRouting final : public LeachRouting {
 public:
  TeenRouting(net::SensorNetwork& network, net::NodeId self,
              const NetworkKnowledge& knowledge, TeenParams teenParams = {},
              LeachParams leachParams = {});

  std::string name() const override { return "teen"; }
  void originate(Bytes appPayload) override;

  // Introspection: the energy/accuracy trade-off, measurable.
  std::uint64_t sensingEvents() const { return sensingEvents_; }
  std::uint64_t reportsSent() const { return reportsSent_; }
  double currentValue() const { return value_; }

 private:
  bool shouldReport() const;

  TeenParams teen_;
  double value_;
  double lastReported_ = -1e18;
  std::uint64_t sensingEvents_ = 0;
  std::uint64_t reportsSent_ = 0;
};

}  // namespace wmsn::routing
