#include "routing/spr.hpp"

#include <algorithm>

#include "util/invariants.hpp"
#include "util/require.hpp"

namespace wmsn::routing {

namespace {
std::uint64_t rreqKey(std::uint16_t origin, std::uint32_t reqId) {
  return (static_cast<std::uint64_t>(origin) << 32) | reqId;
}
}  // namespace

SprRouting::SprRouting(net::SensorNetwork& network, net::NodeId self,
                       const NetworkKnowledge& knowledge, SprParams params)
    : RoutingProtocol(network, self, knowledge), params_(params) {}

void SprRouting::onRoundStart(std::uint32_t round) {
  // §5.3: "in next round nodes that need to send data reset up routing
  // table" — all route state is scoped to a round because gateways may have
  // moved.
  round_ = round;
  route_.reset();
  routeAnnounced_ = false;
  queryInFlight_ = false;
  queryRetries_ = 0;
  responses_.clear();
  nextHopTo_.clear();
  knownPaths_.clear();
  seenRreq_.clear();
}

bool SprRouting::routeFresh() const {
  return route_ && route_->round == round_;
}

std::optional<std::uint16_t> SprRouting::currentRouteHops() const {
  if (!route_) return std::nullopt;
  return static_cast<std::uint16_t>(route_->path.size() - 1);
}

std::optional<net::NodeId> SprRouting::currentBestGateway() const {
  if (!route_) return std::nullopt;
  return routeGateway_;
}

void SprRouting::originate(Bytes appPayload) {
  if (isGateway()) return;
  const std::uint64_t uid = registerGenerated();
  if (routeFresh()) {
    sendData(uid, std::move(appPayload));
    return;
  }
  dataQueue_.emplace_back(uid, std::move(appPayload));
  if (!queryInFlight_) {
    queryRetries_ = 0;
    startQuery();
  }
}

void SprRouting::startQuery() {
  queryInFlight_ = true;
  responses_.clear();
  ++reqId_;

  RreqMsg msg;
  msg.reqId = reqId_;
  msg.targetGateway = kAllGateways;  // "floods a query packet with m destinations"
  msg.path.push_back(static_cast<std::uint16_t>(self()));

  seenRreq_.insert(rreqKey(static_cast<std::uint16_t>(self()), reqId_));
  sendBroadcast(makePacket(net::PacketKind::kRreq, net::kBroadcastId,
                           msg.encode()));

  const std::uint32_t expectRound = round_;
  const std::uint32_t expectReq = reqId_;
  scheduleAfter(params_.responseWindow, [this, expectRound, expectReq] {
    if (round_ != expectRound || reqId_ != expectReq || !queryInFlight_)
      return;
    finishQuery();
  });
}

void SprRouting::finishQuery() {
  queryInFlight_ = false;
  if (responses_.empty()) {
    if (queryRetries_ < params_.maxQueryRetries) {
      ++queryRetries_;
      if (params_.retryBackoff.us > 0) {
        // Exponential backoff between re-discoveries: an immediate re-flood
        // mostly re-enters the congestion or outage that ate the first one.
        // queryInFlight_ stays up so fresh readings queue behind the retry.
        queryInFlight_ = true;
        const std::uint32_t shift = std::min(queryRetries_ - 1, 5u);
        const std::uint32_t expectRound = round_;
        scheduleAfter(sim::Time{params_.retryBackoff.us << shift},
                      [this, expectRound] {
                        if (round_ != expectRound) return;
                        startQuery();
                      });
      } else {
        startQuery();
      }
    } else {
      dataQueue_.clear();  // unreachable this round; drops show up in PDR
    }
    return;
  }

  // Step 4: "Si draws a conclusion on the best gateway and the
  // corresponding shortest path" — fewest hops, ties to the lower gateway id.
  const RresMsg* best = &responses_.front();
  for (const RresMsg& r : responses_) {
    if (r.path.size() < best->path.size() ||
        (r.path.size() == best->path.size() && r.gateway < best->gateway))
      best = &r;
  }
  WMSN_INVARIANT_MSG(
      inv::sprSubPath(best->path, static_cast<std::uint16_t>(self()),
                      best->gateway),
      "SPR Property 1 (§5.2): the chosen route must be a simple path "
      "self → gateway");
  route_ = StoredRoute{best->path, round_};
  routeGateway_ = best->gateway;
  routeAnnounced_ = false;
  responses_.clear();

  auto queue = std::move(dataQueue_);
  dataQueue_.clear();
  for (auto& [uid, reading] : queue) sendData(uid, std::move(reading));
}

void SprRouting::sendData(std::uint64_t uid, Bytes reading) {
  WMSN_REQUIRE(route_.has_value());
  if (route_->path.size() < 2) return;  // degenerate: self is the gateway?

  DataMsg msg;
  msg.source = static_cast<std::uint16_t>(self());
  msg.gateway = routeGateway_;
  msg.dataSeq = ++seq_;
  msg.reading = std::move(reading);
  if (!routeAnnounced_) {
    // Step 5.1: only the first packet carries the route.
    msg.route = route_->path;
    msg.cursor = 1;
    routeAnnounced_ = true;
  }

  net::Packet pkt = makePacket(net::PacketKind::kData, route_->path[1],
                               msg.encode());
  pkt.uid = uid;
  pkt.seq = seq_;
  pkt.finalDst = routeGateway_;
  sendUnicast(route_->path[1], std::move(pkt));
}

void SprRouting::onReceive(const net::Packet& packet, net::NodeId from) {
  switch (packet.kind) {
    case net::PacketKind::kRreq:
      handleRreq(packet, from);
      return;
    case net::PacketKind::kRres:
      handleRres(packet);
      return;
    case net::PacketKind::kData:
      handleData(packet);
      return;
    default:
      return;
  }
}

void SprRouting::handleRreq(const net::Packet& packet, net::NodeId /*from*/) {
  RreqMsg msg = RreqMsg::decode(packet.payload);
  if (msg.path.empty() || !pathIsSimple(msg.path)) return;
  const std::uint16_t origin = msg.path.front();
  if (origin == self()) return;
  if (std::find(msg.path.begin(), msg.path.end(),
                static_cast<std::uint16_t>(self())) != msg.path.end())
    return;

  if (isGateway()) {
    // Step 3.2: the gateway answers with the completed path. Copies are
    // collected for a short window (the §6.2.2 timeout) so the answer is
    // the true min-hop path, not merely the first arrival.
    Path full = msg.path;
    full.push_back(static_cast<std::uint16_t>(self()));
    if (params_.gatewayCollectWindow.us <= 0) {
      if (!seenRreq_.insert(rreqKey(origin, msg.reqId)).second) return;
      RresMsg res;
      res.reqId = msg.reqId;
      res.gateway = static_cast<std::uint16_t>(self());
      res.path = std::move(full);
      res.cursor = static_cast<std::uint16_t>(res.path.size() - 2);
      sendUnicast(res.path[res.cursor],
                  makePacket(net::PacketKind::kRres, res.path[res.cursor],
                             res.encode()));
      return;
    }
    const std::uint64_t key = rreqKey(origin, msg.reqId);
    auto [bucket, first] = collecting_.try_emplace(key);
    bucket->second.push_back(std::move(full));
    if (first) {
      const std::uint32_t reqId = msg.reqId;
      scheduleAfter(params_.gatewayCollectWindow,
                    [this, origin, reqId] { gatewayAnswer(origin, reqId); });
    }
    return;
  }

  if (!seenRreq_.insert(rreqKey(origin, msg.reqId)).second) return;

  // Step 3.1: a sensor holding a fresh stored path replies on the gateway's
  // behalf instead of re-flooding (Property 1 justifies splicing).
  auto known = knownPaths_.find(routeGateway_);
  if (params_.answerFromCache && routeFresh() &&
      known != knownPaths_.end() && known->second.round == round_) {
    const Path& suffix = known->second.path;  // [self, …, gateway]
    // Splice only if it stays simple — the query path must not revisit
    // nodes already on the stored suffix.
    Path full = msg.path;
    full.insert(full.end(), suffix.begin(), suffix.end());
    if (pathIsSimple(full) && full.size() <= params_.maxPathLength) {
      RresMsg res;
      res.reqId = msg.reqId;
      res.gateway = routeGateway_;
      res.path = std::move(full);
      res.cursor = static_cast<std::uint16_t>(msg.path.size() - 1);
      sendUnicast(res.path[res.cursor],
                  makePacket(net::PacketKind::kRres, res.path[res.cursor],
                             res.encode()));
      return;
    }
  }

  if (msg.path.size() >= params_.maxPathLength) return;
  msg.path.push_back(static_cast<std::uint16_t>(self()));
  sendBroadcastJittered(makePacket(net::PacketKind::kRreq, net::kBroadcastId,
                                   msg.encode()));
}

void SprRouting::gatewayAnswer(std::uint16_t origin, std::uint32_t reqId) {
  auto it = collecting_.find(rreqKey(origin, reqId));
  if (it == collecting_.end()) return;
  std::vector<Path> paths = std::move(it->second);
  collecting_.erase(it);
  if (paths.empty()) return;

  const Path* best = &paths.front();
  for (const Path& p : paths)
    if (p.size() < best->size()) best = &p;

  RresMsg res;
  res.reqId = reqId;
  res.gateway = static_cast<std::uint16_t>(self());
  res.path = *best;
  res.cursor = static_cast<std::uint16_t>(res.path.size() - 2);
  sendUnicast(res.path[res.cursor],
              makePacket(net::PacketKind::kRres, res.path[res.cursor],
                         res.encode()));
}

void SprRouting::handleRres(const net::Packet& packet) {
  RresMsg msg = RresMsg::decode(packet.payload);
  if (msg.path.size() < 2 || msg.cursor >= msg.path.size()) return;
  if (msg.path[msg.cursor] != self()) return;

  // "records the corresponding path information in local routing tables"
  installFromPath(msg.path, msg.cursor, msg.gateway);

  if (msg.cursor == 0) {
    // Back at the source: collect for step 4.
    if (queryInFlight_ && msg.reqId == reqId_) responses_.push_back(msg);
    return;
  }
  msg.cursor -= 1;
  sendUnicast(msg.path[msg.cursor],
              makePacket(net::PacketKind::kRres, msg.path[msg.cursor],
                         msg.encode()));
}

void SprRouting::installFromPath(const Path& path, std::size_t selfIndex,
                                 std::uint16_t gateway) {
  WMSN_REQUIRE(path[selfIndex] == self());
  if (selfIndex + 1 < path.size())
    nextHopTo_[gateway] = path[selfIndex + 1];
  StoredRoute stored;
  stored.path.assign(path.begin() + static_cast<std::ptrdiff_t>(selfIndex),
                     path.end());
  stored.round = round_;
  WMSN_INVARIANT_MSG(
      inv::sprSubPath(stored.path, static_cast<std::uint16_t>(self()),
                      gateway),
      "SPR Property 1 (§5.2): an installed sub-path of a shortest path must "
      "itself be a simple path self → gateway");
  knownPaths_[gateway] = std::move(stored);
  if (!isGateway() && !routeFresh()) {
    // Passing traffic taught us a route — adopt it ("sensor nodes that
    // locate at an established route do not need to discover routing").
    route_ = knownPaths_[gateway];
    routeGateway_ = gateway;
    routeAnnounced_ = false;
  }
}

void SprRouting::handleData(const net::Packet& packet) {
  DataMsg msg = DataMsg::decode(packet.payload);

  if (isGateway()) {
    if (msg.gateway == self())
      reportDelivered(packet.uid, msg.source, packet.hops + 1u);
    return;
  }

  net::NodeId nextHop = net::kNoNode;
  if (!msg.route.empty()) {
    // First packet of a flow: the source route tells us everything.
    if (msg.cursor >= msg.route.size() || msg.route[msg.cursor] != self())
      return;
    installFromPath(msg.route, msg.cursor, msg.gateway);
    if (msg.cursor + 1u >= msg.route.size()) return;
    nextHop = msg.route[msg.cursor + 1];
    msg.cursor += 1;
  } else {
    auto it = nextHopTo_.find(msg.gateway);
    if (it == nextHopTo_.end()) return;  // no entry — drop (shows in PDR)
    nextHop = it->second;
  }

  net::Packet fwd = makePacket(net::PacketKind::kData, nextHop, msg.encode());
  fwd.uid = packet.uid;
  fwd.origin = packet.origin;
  fwd.seq = packet.seq;
  fwd.finalDst = msg.gateway;
  fwd.hops = static_cast<std::uint8_t>(packet.hops + 1);
  sendUnicast(nextHop, std::move(fwd));
}

}  // namespace wmsn::routing
