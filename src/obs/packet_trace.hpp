#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wmsn::obs {

/// Reading-lifecycle transitions the causal trace pipeline records. One span
/// per transition, keyed by the reading's packet uid (the trace id), so a
/// reading's full fate — origination through delivery or drop — reconstructs
/// from its span sequence (trace_analyze.hpp).
enum class TraceSpanKind : std::uint8_t {
  kOriginate,     ///< application handed a fresh reading to the protocol
  kEnqueue,       ///< origin node handed the reading's frame to its MAC
  kForward,       ///< a relay handed the frame onward to its MAC
  kMacBackoff,    ///< CSMA found the channel busy and backed off
  kMacTx,         ///< the frame went on the air (ARQ retries re-emit)
  kRecv,          ///< addressed receiver decoded the frame
  kDeliver,       ///< first gateway delivery (end of the reading's trace)
  kDrop,          ///< the frame was lost; `reason` says why
  kReroute,       ///< failover retargeted the reading at another gateway
  kDefer,         ///< no routable gateway — reading parked in the buffer
  kGatewayEvict,  ///< a sensor presumed a silent gateway down (uid 0)
  kReject,        ///< SecMLR refused the frame; `reason` names the check
};

/// Why a kDrop (or kReject / kDefer / kReroute) span happened.
enum class TraceDropReason : std::uint8_t {
  kNone,
  kQueueOverflow,  ///< finite MAC transmit queue was full
  kMacExhausted,   ///< CSMA gave up after maxAttempts busy channels
  kCollision,      ///< overlapping receptions corrupted the frame
  kLinkLoss,       ///< channel/Gilbert–Elliott loss at the addressed receiver
  kNoRoute,        ///< no routable gateway known
  kStaleRoute,     ///< route pointed at an evicted place
  kAckExhausted,   ///< hop-by-hop ACK retries ran out
  kAuthMac,        ///< SecMLR MAC verification failed
  kReplay,         ///< SecMLR replay window rejected the sequence
  kTesla,          ///< TESLA disclosure verification failed
};

const char* toString(TraceSpanKind kind);
const char* toString(TraceDropReason reason);

/// Sentinel for "no peer node" in a span.
inline constexpr std::uint32_t kTraceNoPeer = 0xfffffffeu;

/// One causal trace event, reduced to plain integers so the obs layer stays
/// below net/. 40 bytes; the flight-recorder ring and the retained span
/// buffer both store these verbatim.
struct PacketSpan {
  std::int64_t timeUs = 0;   ///< simulation time (deterministic)
  std::uint64_t uid = 0;     ///< reading trace id (0 = network-scope event)
  std::uint32_t node = 0;    ///< acting node
  std::uint32_t peer = kTraceNoPeer;  ///< other end, if any
  std::uint32_t info = 0;    ///< kind-specific (hops, tries, place, …)
  std::uint32_t bytes = 0;   ///< on-air frame size, if any
  TraceSpanKind kind = TraceSpanKind::kOriginate;
  TraceDropReason reason = TraceDropReason::kNone;

  bool operator==(const PacketSpan&) const = default;
};

/// Deterministic head-sampling decision: a reading is traced iff the hash of
/// its uid lands under `permille`. uid 0 (network-scope events) is always
/// kept. Pure function of the uid, so every node — and every worker thread —
/// agrees on which readings are sampled without coordination.
bool traceSampled(std::uint64_t uid, std::uint32_t permille);

/// What one run retained: the sampled span stream plus the labels the
/// Chrome-trace writer needs. Spans are in emission order, which is
/// deterministic for a given seed; repeat mode concatenates logs in seed
/// order so the merged JSONL is byte-identical across --threads.
struct PacketTraceLog {
  bool enabled = false;
  std::uint64_t streamId = 0;  ///< run seed — the `pid` of every event
  std::uint32_t samplePermille = 1000;
  std::vector<PacketSpan> spans;

  /// Chrome-trace-event JSONL (catapult / Perfetto "JSON Array-of-lines"):
  /// one {"name","cat","ph","ts","pid","tid",...} object per line. Readings
  /// are async events keyed by id=uid (ph b/n/e); network-scope spans are
  /// instant events (ph i).
  std::string jsonl() const;
  void writeFile(const std::string& path) const;
};

struct PacketTraceOptions {
  bool retainSpans = false;        ///< keep sampled spans for export/analysis
  std::uint32_t samplePermille = 1000;
  std::uint64_t streamId = 0;      ///< run seed label for the export
};

/// The per-network span pipeline. Every emission lands in the thread-local
/// flight-recorder ring (always, at ring-write cost); sampled emissions are
/// additionally retained when `retainSpans` is on. Emission never draws RNG
/// and never writes output, so a run with tracing off is byte-identical to
/// one on a build without the tracer.
class PacketTracer {
 public:
  explicit PacketTracer(PacketTraceOptions options = {});

  void emitSpan(TraceSpanKind kind, std::int64_t timeUs, std::uint64_t uid,
                std::uint32_t node, std::uint32_t peer = kTraceNoPeer,
                TraceDropReason reason = TraceDropReason::kNone,
                std::uint32_t info = 0, std::uint32_t bytes = 0);

  bool retaining() const { return options_.retainSpans; }
  std::size_t retained() const { return log_.spans.size(); }
  const PacketTraceLog& log() const { return log_; }

 private:
  PacketTraceOptions options_;
  PacketTraceLog log_;
};

/// Fixed-size ring of the most recent spans on this thread — the crash
/// flight recorder. Always on: every PacketTracer emission lands here at
/// the cost of one array write, so a dump after an invariant failure or a
/// fatal signal shows what the simulation was doing just before it died.
class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 1024;

  /// The calling thread's recorder (each repeat-mode worker has its own).
  static FlightRecorder& current();

  void push(const PacketSpan& span) {
    ring_[head_] = span;
    head_ = (head_ + 1) % kCapacity;
    if (size_ < kCapacity) ++size_;
  }
  std::size_t size() const { return size_; }
  void clear() {
    head_ = 0;
    size_ = 0;
  }
  /// Oldest-first copy of the ring contents.
  std::vector<PacketSpan> snapshot() const;

  /// Serialises the ring (oldest first) with a header line naming `reason`,
  /// in the same JSONL-per-span shape as PacketTraceLog.
  std::string dump(const std::string& reason) const;

 private:
  FlightRecorder() = default;
  PacketSpan ring_[kCapacity];
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Arms crash dumps: on WMSN_INVARIANT failure (util/require.hpp hook) or a
/// fatal signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL), the calling thread's
/// flight-recorder ring is written to `path` before the error propagates.
/// An empty path disarms the hooks. Process-global.
void setFlightRecorderPath(const std::string& path);
std::string flightRecorderPath();

/// Writes the calling thread's ring to the armed path immediately (used by
/// the campaign worker's injected-crash path, which exits without raising a
/// signal). No-op when no path is armed; returns whether a file was written.
bool dumpFlightRecorder(const std::string& reason);

}  // namespace wmsn::obs

/// The sanctioned hot-path emission point. Call sites guard packet kind /
/// uid themselves; the macro only guards the tracer pointer so untraced
/// builds pay a single branch. wmsn_lint.py (trace-discipline) bans direct
/// emitSpan/onEvent calls outside src/obs/ — every emission in net/ and
/// routing/ must go through this macro so sampling stays centralised.
#define WMSN_TRACE(tracer, ...)                         \
  do {                                                  \
    auto* wmsnTracer = (tracer);                        \
    if (wmsnTracer != nullptr) wmsnTracer->emitSpan(__VA_ARGS__); \
  } while (false)
