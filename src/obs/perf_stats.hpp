#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/table.hpp"

namespace wmsn::obs {

/// The deterministic hot-path work counters. Each enumerator counts one kind
/// of logical work the simulator performs; together they form the per-run
/// PerfStats ledger that documents *how much* the kernel does (as opposed to
/// the Profiler, which documents how long it takes). Every count derives
/// from simulation state only, so two runs of the same scenario produce the
/// same ledger on any machine, at any --threads, under any sanitizer.
enum class PerfCounter : std::uint8_t {
  kNodeSteps,           ///< per-protocol round steps (ProtocolStack::beginRound)
  kFramesOffered,       ///< frames handed to a MAC (SensorNetwork::sendFrom)
  kFramesTransmitted,   ///< frames put on the air by the medium
  kFramesReceived,      ///< frames delivered to a node's receive handler
  kMacBackoffs,         ///< CSMA backoff iterations (channel sensed busy)
  kNeighborScans,       ///< neighborsOf range queries
  kPairsExamined,       ///< grid candidates examined by range queries —
                        ///< O(n·k) since the spatial index replaced the
                        ///< all-pairs scans (ROADMAP item 1)
  kRngDraws,            ///< hot-path RNG draws (channel, jitter, backoff)
  kRouteMutations,      ///< MLR place-table entry writes
  kObserverDispatches,  ///< ObserverMux handler invocations
  kGridQueries,         ///< SpatialGrid candidate queries (medium delivery
                        ///< and neighborsOf)
};
inline constexpr std::size_t kPerfCounterCount = 11;

/// Human label, e.g. "frames-transmitted" (table rows).
const char* toString(PerfCounter counter);
/// Metric-name stem, e.g. "frames_transmitted" (wmsn_perf_* metrics, JSON).
const char* metricName(PerfCounter counter);

/// Per-run ledger of deterministic work counters. Mirrors the Profiler's
/// activation model: a run installs its PerfStats as the thread's current
/// ledger for the duration of the run, and every WMSN_PERF site reports into
/// it. When no ledger is active an instrumented site costs a thread-local
/// load and a branch — the counters-off run is byte- and work-identical to a
/// build without the subsystem.
class PerfStats {
 public:
  /// The ledger WMSN_PERF sites on this thread report into (nullptr =
  /// counting off, sites are no-ops).
  static PerfStats* current();

  /// RAII activation: installs `stats` as the thread's current ledger and
  /// restores the previous one on destruction.
  class Activation {
   public:
    explicit Activation(PerfStats* stats);
    ~Activation();
    Activation(const Activation&) = delete;
    Activation& operator=(const Activation&) = delete;

   private:
    PerfStats* previous_;
  };

  void add(PerfCounter counter, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(counter)] += n;
  }

  std::uint64_t value(PerfCounter counter) const {
    return counters_[static_cast<std::size_t>(counter)];
  }

  /// Sums another ledger into this one. Multi-seed sweeps merge in seed
  /// order; sums are order-independent, so the merged ledger is invariant
  /// across --threads.
  void merge(const PerfStats& other);

  /// True once any counter is non-zero.
  bool any() const;

  /// All counters as rows sorted by metric name (stable, deterministic).
  TextTable table() const;

  /// Deterministic JSON object: {"node_steps": N, ...}, keys sorted by
  /// metric name. Contains only the deterministic counters — resource
  /// telemetry serialises separately (ResourceTelemetry::json).
  std::string json() const;

 private:
  std::array<std::uint64_t, kPerfCounterCount> counters_{};
};

/// Non-deterministic resource telemetry, kept strictly separate from the
/// counter ledger: wall-clock, peak RSS and allocation pressure vary with
/// machine and scheduling, so they never enter a deterministic output
/// (metrics registry, campaign metrics merge, stdout tables). `rounds` and
/// `frames` are deterministic numerators copied in so the derived
/// throughput rates survive multi-seed merging.
struct ResourceTelemetry {
  bool captured = false;
  std::uint64_t peakRssKb = 0;    ///< getrusage ru_maxrss, whole process
  std::uint64_t allocCount = 0;   ///< operator-new calls during the run
  std::uint64_t allocBytes = 0;   ///< bytes requested from operator new
  double wallSeconds = 0.0;       ///< wall time of the round loop
  std::uint64_t rounds = 0;       ///< rounds completed (deterministic)
  std::uint64_t frames = 0;       ///< frames transmitted (deterministic)

  double roundsPerSec() const {
    return wallSeconds > 0.0 ? static_cast<double>(rounds) / wallSeconds : 0.0;
  }
  double framesPerSec() const {
    return wallSeconds > 0.0 ? static_cast<double>(frames) / wallSeconds : 0.0;
  }

  /// Multi-seed accumulation: sums work and wall time (rates re-derive from
  /// the sums), takes the max RSS.
  void merge(const ResourceTelemetry& other);

  /// JSON object with the raw fields plus the derived rates.
  std::string json() const;
};

/// Peak resident set size of this process in KiB (getrusage). 0 when the
/// platform cannot report it.
std::uint64_t currentPeakRssKb();

/// Counts heap allocations made on this thread while the scope is alive.
/// The global operator new/delete replacements in perf_stats.cpp check a
/// thread-local slot: unarmed threads pay one load per allocation, armed
/// threads two increments. Scopes nest; each sees its own window.
class AllocationScope {
 public:
  AllocationScope();
  ~AllocationScope();
  AllocationScope(const AllocationScope&) = delete;
  AllocationScope& operator=(const AllocationScope&) = delete;

  std::uint64_t count() const { return count_; }
  std::uint64_t bytes() const { return bytes_; }

  /// Called by the allocator hook.
  void note(std::uint64_t bytes) {
    ++count_;
    bytes_ += bytes;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t bytes_ = 0;
  AllocationScope* previous_;
};

}  // namespace wmsn::obs

/// Counts `n` (default 1) into the thread's current PerfStats ledger, e.g.
/// WMSN_PERF(kFramesOffered) or WMSN_PERF(kPairsExamined, nodeCount). The
/// null guard is the whole point: with counting off this is a thread-local
/// load and a branch, and every counting site outside src/obs/ must ride it
/// (scripts/wmsn_lint.py perf-discipline).
#define WMSN_PERF(counter, ...)                                       \
  do {                                                                \
    ::wmsn::obs::PerfStats* wmsnPerfStats =                           \
        ::wmsn::obs::PerfStats::current();                            \
    if (wmsnPerfStats != nullptr)                                     \
      wmsnPerfStats->add(                                             \
          ::wmsn::obs::PerfCounter::counter __VA_OPT__(, ) __VA_ARGS__); \
  } while (false)
