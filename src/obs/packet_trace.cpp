#include "obs/packet_trace.hpp"

#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>

#include "util/require.hpp"

namespace wmsn::obs {

const char* toString(TraceSpanKind kind) {
  switch (kind) {
    case TraceSpanKind::kOriginate: return "originate";
    case TraceSpanKind::kEnqueue: return "enqueue";
    case TraceSpanKind::kForward: return "forward";
    case TraceSpanKind::kMacBackoff: return "mac-backoff";
    case TraceSpanKind::kMacTx: return "mac-tx";
    case TraceSpanKind::kRecv: return "recv";
    case TraceSpanKind::kDeliver: return "deliver";
    case TraceSpanKind::kDrop: return "drop";
    case TraceSpanKind::kReroute: return "reroute";
    case TraceSpanKind::kDefer: return "defer";
    case TraceSpanKind::kGatewayEvict: return "gateway-evict";
    case TraceSpanKind::kReject: return "reject";
  }
  return "unknown";
}

const char* toString(TraceDropReason reason) {
  switch (reason) {
    case TraceDropReason::kNone: return "none";
    case TraceDropReason::kQueueOverflow: return "queue-overflow";
    case TraceDropReason::kMacExhausted: return "mac-exhausted";
    case TraceDropReason::kCollision: return "collision";
    case TraceDropReason::kLinkLoss: return "link-loss";
    case TraceDropReason::kNoRoute: return "no-route";
    case TraceDropReason::kStaleRoute: return "stale-route";
    case TraceDropReason::kAckExhausted: return "ack-exhausted";
    case TraceDropReason::kAuthMac: return "auth-mac";
    case TraceDropReason::kReplay: return "replay";
    case TraceDropReason::kTesla: return "tesla";
  }
  return "unknown";
}

namespace {

// splitmix64 — a fast, well-mixed 64-bit finaliser. Sampling must depend on
// every uid bit: uids are sequential, so `uid % N` would sample a periodic
// (and protocol-phase-correlated) subset instead of a uniform one.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void appendSpanJsonl(std::string& out, const PacketSpan& span,
                     std::uint64_t pid) {
  const bool reading = span.uid != 0;
  out += "{\"name\":\"";
  out += toString(span.kind);
  out += reading ? "\",\"cat\":\"reading\",\"ph\":\""
                 : "\",\"cat\":\"net\",\"ph\":\"";
  if (!reading) {
    out += "i\",\"s\":\"p";
  } else if (span.kind == TraceSpanKind::kOriginate) {
    out += 'b';
  } else if (span.kind == TraceSpanKind::kDeliver) {
    out += 'e';
  } else {
    out += 'n';
  }
  out += "\",\"ts\":";
  out += std::to_string(span.timeUs);
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(span.node);
  if (reading) {
    out += ",\"id\":";
    out += std::to_string(span.uid);
  }
  out += ",\"args\":{";
  bool first = true;
  auto field = [&](const char* key, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += value;
  };
  if (span.peer != kTraceNoPeer) field("peer", std::to_string(span.peer));
  field("info", std::to_string(span.info));
  field("bytes", std::to_string(span.bytes));
  if (span.reason != TraceDropReason::kNone)
    field("reason", '"' + std::string(toString(span.reason)) + '"');
  out += "}}\n";
}

// The armed dump path lives in a fixed buffer (no allocation, no lock) so
// the fatal-signal handler can read it without touching the heap.
char gDumpPath[512] = {0};
std::atomic<bool> gArmed{false};

void dumpAndReraise(int sig) {
  dumpFlightRecorder(std::string("fatal signal ") + std::to_string(sig));
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void invariantDump() { dumpFlightRecorder("invariant failure"); }

void armSignalHandlers() {
  std::signal(SIGSEGV, dumpAndReraise);
  std::signal(SIGABRT, dumpAndReraise);
  std::signal(SIGBUS, dumpAndReraise);
  std::signal(SIGFPE, dumpAndReraise);
  std::signal(SIGILL, dumpAndReraise);
}

void disarmSignalHandlers() {
  std::signal(SIGSEGV, SIG_DFL);
  std::signal(SIGABRT, SIG_DFL);
  std::signal(SIGBUS, SIG_DFL);
  std::signal(SIGFPE, SIG_DFL);
  std::signal(SIGILL, SIG_DFL);
}

}  // namespace

bool traceSampled(std::uint64_t uid, std::uint32_t permille) {
  if (uid == 0 || permille >= 1000) return true;
  if (permille == 0) return false;
  return mix64(uid) % 1000 < permille;
}

std::string PacketTraceLog::jsonl() const {
  std::string out;
  out.reserve(spans.size() * 96);
  for (const PacketSpan& span : spans) appendSpanJsonl(out, span, streamId);
  return out;
}

void PacketTraceLog::writeFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  WMSN_REQUIRE_MSG(file.good(), "cannot open trace output file " + path);
  file << jsonl();
}

PacketTracer::PacketTracer(PacketTraceOptions options) : options_(options) {
  log_.enabled = options_.retainSpans;
  log_.streamId = options_.streamId;
  log_.samplePermille = options_.samplePermille;
}

void PacketTracer::emitSpan(TraceSpanKind kind, std::int64_t timeUs,
                            std::uint64_t uid, std::uint32_t node,
                            std::uint32_t peer, TraceDropReason reason,
                            std::uint32_t info, std::uint32_t bytes) {
  const PacketSpan span{timeUs, uid, node, peer, info, bytes, kind, reason};
  FlightRecorder::current().push(span);
  if (options_.retainSpans && traceSampled(uid, options_.samplePermille))
    log_.spans.push_back(span);
}

FlightRecorder& FlightRecorder::current() {
  thread_local FlightRecorder recorder;
  return recorder;
}

std::vector<PacketSpan> FlightRecorder::snapshot() const {
  std::vector<PacketSpan> out;
  out.reserve(size_);
  const std::size_t start = (head_ + kCapacity - size_) % kCapacity;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % kCapacity]);
  return out;
}

std::string FlightRecorder::dump(const std::string& reason) const {
  std::string out = "{\"name\":\"flight-recorder\",\"ph\":\"M\",\"pid\":0,"
                    "\"args\":{\"reason\":\"" + reason + "\",\"spans\":" +
                    std::to_string(size_) + "}}\n";
  for (const PacketSpan& span : snapshot()) appendSpanJsonl(out, span, 0);
  return out;
}

void setFlightRecorderPath(const std::string& path) {
  if (path.empty()) {
    gArmed.store(false, std::memory_order_release);
    detail::invariantDumpHook = nullptr;
    disarmSignalHandlers();
    return;
  }
  WMSN_REQUIRE_MSG(path.size() < sizeof(gDumpPath),
                   "flight-recorder path too long");
  std::memset(gDumpPath, 0, sizeof(gDumpPath));
  std::memcpy(gDumpPath, path.data(), path.size());
  gArmed.store(true, std::memory_order_release);
  detail::invariantDumpHook = invariantDump;
  armSignalHandlers();
}

std::string flightRecorderPath() {
  if (!gArmed.load(std::memory_order_acquire)) return "";
  return gDumpPath;
}

bool dumpFlightRecorder(const std::string& reason) {
  if (!gArmed.load(std::memory_order_acquire)) return false;
  std::ofstream file(gDumpPath, std::ios::binary);
  if (!file.good()) return false;
  file << FlightRecorder::current().dump(reason);
  return true;
}

}  // namespace wmsn::obs
