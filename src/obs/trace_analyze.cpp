#include "obs/trace_analyze.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "util/require.hpp"

namespace wmsn::obs {

namespace {

// Bucket edges mirror core/observability.cpp's wmsn_delivery_hops so the
// analyzer's path-hops histogram is directly comparable to the registry's.
const std::vector<double> kHopEdges = {1, 2, 3, 4, 5, 6, 8, 10, 15};
const std::vector<double> kLatencyMsEdges = {1,   5,    10,   50,
                                             100, 500, 1000, 5000};

struct ReadingState {
  ReadingTrace trace;
  std::int64_t lastTxUs = -1;
  std::int64_t firstRerouteUs = -1;
};

Labels withReason(Labels labels, const std::string& reason) {
  labels.emplace_back("reason", reason);
  return labels;
}

// --- minimal parser for our own writer's output ---------------------------

std::size_t findKey(const std::string& line, const std::string& key) {
  return line.find('"' + key + "\":");
}

bool extractInt(const std::string& line, const std::string& key,
                std::int64_t& out) {
  const std::size_t at = findKey(line, key);
  if (at == std::string::npos) return false;
  const std::size_t start = at + key.size() + 3;
  std::size_t end = start;
  while (end < line.size() &&
         (line[end] == '-' || (line[end] >= '0' && line[end] <= '9')))
    ++end;
  if (end == start) return false;
  out = std::stoll(line.substr(start, end - start));
  return true;
}

bool extractString(const std::string& line, const std::string& key,
                   std::string& out) {
  const std::size_t at = findKey(line, key);
  if (at == std::string::npos) return false;
  const std::size_t start = at + key.size() + 4;  // past `"key":"`
  const std::size_t end = line.find('"', start);
  if (start > line.size() || end == std::string::npos) return false;
  out = line.substr(start, end - start);
  return true;
}

bool parseKind(const std::string& name, TraceSpanKind& out) {
  static const std::map<std::string, TraceSpanKind> kByName = [] {
    std::map<std::string, TraceSpanKind> m;
    for (int k = 0; k <= static_cast<int>(TraceSpanKind::kReject); ++k) {
      const auto kind = static_cast<TraceSpanKind>(k);
      m[toString(kind)] = kind;
    }
    return m;
  }();
  const auto it = kByName.find(name);
  if (it == kByName.end()) return false;
  out = it->second;
  return true;
}

bool parseReason(const std::string& name, TraceDropReason& out) {
  static const std::map<std::string, TraceDropReason> kByName = [] {
    std::map<std::string, TraceDropReason> m;
    for (int r = 0; r <= static_cast<int>(TraceDropReason::kTesla); ++r) {
      const auto reason = static_cast<TraceDropReason>(r);
      m[toString(reason)] = reason;
    }
    return m;
  }();
  const auto it = kByName.find(name);
  if (it == kByName.end()) return false;
  out = it->second;
  return true;
}

}  // namespace

TraceAnalysis analyzeSpans(const std::vector<PacketSpan>& spans) {
  TraceAnalysis out;
  std::map<std::uint64_t, ReadingState> readings;  // uid order

  for (const PacketSpan& span : spans) {
    if (span.uid == 0) {
      if (span.kind == TraceSpanKind::kGatewayEvict) ++out.gatewayEvictions;
      continue;
    }
    if (span.kind == TraceSpanKind::kReject) {
      ++out.rejections;
      ++out.rejectsByReason[toString(span.reason)];
      continue;
    }
    ReadingState& state = readings[span.uid];
    ReadingTrace& r = state.trace;
    r.uid = span.uid;
    switch (span.kind) {
      case TraceSpanKind::kOriginate:
        r.origin = span.node;
        r.originateUs = span.timeUs;
        if (r.path.empty()) r.path.push_back(span.node);
        break;
      case TraceSpanKind::kEnqueue:
      case TraceSpanKind::kForward:
      case TraceSpanKind::kMacTx:
        state.lastTxUs = span.timeUs;
        break;
      case TraceSpanKind::kRecv:
        r.path.push_back(span.node);
        break;
      case TraceSpanKind::kDeliver:
        if (!r.delivered) {
          r.delivered = true;
          r.deliverUs = span.timeUs;
          r.deliverHops = span.info;
        }
        break;
      case TraceSpanKind::kDrop:
        r.drops.push_back(span.reason);
        ++out.dropEvents;
        ++out.dropsByReason[toString(span.reason)];
        break;
      case TraceSpanKind::kReroute:
        ++r.reroutes;
        if (state.firstRerouteUs < 0) {
          state.firstRerouteUs = span.timeUs;
          const std::int64_t since =
              state.lastTxUs >= 0 ? state.lastTxUs : r.originateUs;
          if (since >= 0)
            r.detectionMs = static_cast<double>(span.timeUs - since) * 1e-3;
        }
        break;
      case TraceSpanKind::kDefer:
        ++r.deferrals;
        break;
      case TraceSpanKind::kMacBackoff:
      case TraceSpanKind::kGatewayEvict:
      case TraceSpanKind::kReject:
        break;
    }
  }

  double hopSum = 0.0;
  for (auto& [uid, state] : readings) {
    (void)uid;
    ReadingTrace& r = state.trace;
    ++out.readings;
    out.reroutes += r.reroutes;
    out.deferrals += r.deferrals;
    if (r.delivered) {
      ++out.delivered;
      hopSum += r.deliverHops;
      if (state.firstRerouteUs >= 0)
        r.recoveryMs =
            static_cast<double>(r.deliverUs - state.firstRerouteUs) * 1e-3;
    }
    if (r.reroutes > 0) {
      ++out.routeFlaps;
      if (r.detectionMs >= 0.0) out.detectionMs.push_back(r.detectionMs);
      if (r.recoveryMs >= 0.0) out.recoveryMs.push_back(r.recoveryMs);
    }
    out.perReading.push_back(std::move(r));
  }
  if (out.delivered > 0)
    out.meanPathHops = hopSum / static_cast<double>(out.delivered);
  return out;
}

std::vector<PacketSpan> parseTraceJsonl(const std::string& text) {
  std::vector<PacketSpan> spans;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    std::string name;
    WMSN_REQUIRE_MSG(extractString(line, "name", name),
                     "trace line has no name: " + line);
    if (name == "flight-recorder") continue;  // dump metadata header

    PacketSpan span;
    WMSN_REQUIRE_MSG(parseKind(name, span.kind),
                     "unknown trace span kind: " + name);
    std::int64_t value = 0;
    WMSN_REQUIRE_MSG(extractInt(line, "ts", span.timeUs),
                     "trace line has no ts: " + line);
    WMSN_REQUIRE_MSG(extractInt(line, "tid", value),
                     "trace line has no tid: " + line);
    span.node = static_cast<std::uint32_t>(value);
    if (extractInt(line, "id", value))
      span.uid = static_cast<std::uint64_t>(value);
    if (extractInt(line, "peer", value))
      span.peer = static_cast<std::uint32_t>(value);
    if (extractInt(line, "info", value))
      span.info = static_cast<std::uint32_t>(value);
    if (extractInt(line, "bytes", value))
      span.bytes = static_cast<std::uint32_t>(value);
    std::string reason;
    if (extractString(line, "reason", reason))
      WMSN_REQUIRE_MSG(parseReason(reason, span.reason),
                       "unknown trace drop reason: " + reason);
    spans.push_back(span);
  }
  return spans;
}

void fillTraceMetrics(const TraceAnalysis& analysis, MetricsRegistry& registry,
                      const Labels& labels) {
  registry.counter("wmsn_trace_readings_total", labels)
      .add(analysis.readings);
  registry.counter("wmsn_trace_delivered_total", labels)
      .add(analysis.delivered);
  registry.counter("wmsn_trace_reroutes_total", labels)
      .add(analysis.reroutes);
  registry.counter("wmsn_trace_route_flaps_total", labels)
      .add(analysis.routeFlaps);
  registry.counter("wmsn_trace_deferrals_total", labels)
      .add(analysis.deferrals);
  registry.counter("wmsn_trace_gateway_evictions_total", labels)
      .add(analysis.gatewayEvictions);
  for (const auto& [reason, count] : analysis.dropsByReason)
    registry.counter("wmsn_trace_dropped_total", withReason(labels, reason))
        .add(count);
  for (const auto& [reason, count] : analysis.rejectsByReason)
    registry.counter("wmsn_trace_rejected_total", withReason(labels, reason))
        .add(count);

  auto& hops = registry.histogram("wmsn_trace_path_hops", kHopEdges, labels);
  for (const ReadingTrace& r : analysis.perReading)
    if (r.delivered) hops.observe(r.deliverHops);
  auto& detect = registry.histogram("wmsn_trace_reroute_detection_ms",
                                    kLatencyMsEdges, labels);
  for (const double ms : analysis.detectionMs) detect.observe(ms);
  auto& recover = registry.histogram("wmsn_trace_reroute_recovery_ms",
                                     kLatencyMsEdges, labels);
  for (const double ms : analysis.recoveryMs) recover.observe(ms);
}

std::string analysisReport(const TraceAnalysis& analysis) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  out << "trace analysis: " << analysis.readings << " traced readings, "
      << analysis.delivered << " delivered (ratio "
      << analysis.deliveredRatio() << "), mean path hops "
      << analysis.meanPathHops << "\n";
  out << "  drop events: " << analysis.dropEvents;
  for (const auto& [reason, count] : analysis.dropsByReason)
    out << " " << reason << "=" << count;
  out << "\n";
  out << "  reroutes: " << analysis.reroutes << " across "
      << analysis.routeFlaps << " flapped readings; deferrals "
      << analysis.deferrals << "; gateway evictions "
      << analysis.gatewayEvictions << "\n";
  auto mean = [](const std::vector<double>& xs) {
    double sum = 0.0;
    for (const double x : xs) sum += x;
    return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
  };
  out << "  reroute latency: detection mean " << mean(analysis.detectionMs)
      << " ms (" << analysis.detectionMs.size() << " samples), recovery mean "
      << mean(analysis.recoveryMs) << " ms (" << analysis.recoveryMs.size()
      << " samples)\n";
  if (analysis.rejections > 0) {
    out << "  secmlr rejections: " << analysis.rejections;
    for (const auto& [reason, count] : analysis.rejectsByReason)
      out << " " << reason << "=" << count;
    out << "\n";
  }
  return out.str();
}

}  // namespace wmsn::obs
