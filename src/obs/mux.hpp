#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/perf_stats.hpp"
#include "util/require.hpp"

namespace wmsn::obs {

/// Fan-out point for observer callbacks (ns-3's trace-source idea): any
/// number of named consumers attach to one signal and all of them fire, in
/// attach order. Replaces the single-slot observer fields that made trace,
/// viz and workload hooks silently evict each other. Attaching the same
/// name twice is a precondition violation — a double-attach is always a
/// wiring bug, never intent.
template <typename... Args>
class ObserverMux {
 public:
  using Handler = std::function<void(Args...)>;

  /// Attach contract: `name` must be unique among currently-attached
  /// observers and `handler` non-empty — attaching an already-attached
  /// name is a hard error (WMSN_REQUIRE failure), not a replacement.
  /// Consumers that legitimately re-attach must detach() first.
  void attach(const std::string& name, Handler handler) {
    WMSN_REQUIRE_MSG(handler != nullptr, "observer '" + name + "' is empty");
    WMSN_REQUIRE_MSG(!attached(name),
                     "observer '" + name + "' is already attached");
    observers_.emplace_back(name, std::move(handler));
  }

  /// Removes `name` if present; returns whether anything was detached.
  bool detach(const std::string& name) {
    for (auto it = observers_.begin(); it != observers_.end(); ++it) {
      if (it->first == name) {
        observers_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool attached(const std::string& name) const {
    for (const auto& [n, h] : observers_) {
      if (n == name) return true;
    }
    return false;
  }

  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }

  void notify(Args... args) const {
    if (!observers_.empty()) WMSN_PERF(kObserverDispatches, observers_.size());
    for (const auto& [name, handler] : observers_) handler(args...);
  }

 private:
  std::vector<std::pair<std::string, Handler>> observers_;
};

}  // namespace wmsn::obs
