#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/packet_trace.hpp"

namespace wmsn::obs {

/// One reading's reconstructed fate: the delivery path (origin followed by
/// every node that decoded a hop), reroute history, and drop attribution.
struct ReadingTrace {
  std::uint64_t uid = 0;
  std::uint32_t origin = kTraceNoPeer;
  bool delivered = false;
  std::int64_t originateUs = -1;
  std::int64_t deliverUs = -1;
  std::uint32_t deliverHops = 0;  ///< hop count the gateway reported
  std::vector<std::uint32_t> path;  ///< origin, then each receiving node
  std::uint32_t reroutes = 0;
  std::uint32_t deferrals = 0;
  std::vector<TraceDropReason> drops;

  /// Reroute-latency breakdown, meaningful when reroutes > 0: detection is
  /// last pre-reroute transmission → first reroute decision (how long the
  /// failure went unnoticed); recovery is first reroute → delivery (how
  /// long re-convergence took). Negative when the leg never happened.
  double detectionMs = -1.0;
  double recoveryMs = -1.0;
};

/// Aggregate route-diagnosis statistics over one span stream.
struct TraceAnalysis {
  std::uint64_t readings = 0;      ///< traced readings (sampled population)
  std::uint64_t delivered = 0;
  std::uint64_t dropEvents = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t routeFlaps = 0;    ///< readings rerouted at least once
  std::uint64_t deferrals = 0;
  std::uint64_t gatewayEvictions = 0;
  std::uint64_t rejections = 0;    ///< SecMLR refusals
  std::map<std::string, std::uint64_t> dropsByReason;
  std::map<std::string, std::uint64_t> rejectsByReason;
  std::vector<double> detectionMs;  ///< per flapped reading, uid order
  std::vector<double> recoveryMs;   ///< per flapped delivered reading
  std::vector<ReadingTrace> perReading;  ///< uid order

  double meanPathHops = 0.0;  ///< mean deliverHops over delivered readings
  double deliveredRatio() const {
    return readings == 0 ? 0.0
                         : static_cast<double>(delivered) /
                               static_cast<double>(readings);
  }
};

/// Reconstructs per-reading paths and route diagnostics from a span stream
/// (retained PacketTraceLog spans or parsed JSONL). Deterministic: output
/// depends only on span content, not arrival interleaving — readings are
/// keyed and reported in uid order.
TraceAnalysis analyzeSpans(const std::vector<PacketSpan>& spans);

/// Parses the Chrome-trace-event JSONL that PacketTraceLog::jsonl (and the
/// flight recorder) emit, back into spans. Tolerates the flight recorder's
/// metadata header line and blank lines; throws PreconditionError on a line
/// it cannot map back to a span.
std::vector<PacketSpan> parseTraceJsonl(const std::string& text);

/// Exports the analysis as the `wmsn_trace_*` metric family.
void fillTraceMetrics(const TraceAnalysis& analysis, MetricsRegistry& registry,
                      const Labels& labels = {});

/// Human-readable route-diagnosis summary (wmsn_cli --trace-analyze).
std::string analysisReport(const TraceAnalysis& analysis);

}  // namespace wmsn::obs
