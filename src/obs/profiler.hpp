#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace wmsn::obs {

/// The instrumented phases of a simulation run. Each phase corresponds to a
/// WMSN_PROFILE_PHASE scope placed on a hot path; the profiler reports where
/// simulator wall-time goes as scenarios scale.
enum class Phase : std::uint8_t {
  kEventDispatch,     ///< sim::Simulator event-queue dispatch (everything)
  kMacContention,     ///< CSMA carrier sensing, backoff and queue service
  kCrypto,            ///< HMAC-SHA256 and Speck-CTR work (SecMLR)
  kRouteMaintenance,  ///< MLR place-table updates and move announcements
};
inline constexpr std::size_t kPhaseCount = 4;

const char* toString(Phase phase);

/// Wall-clock totals for one phase. `inclusive` counts the whole scope;
/// `self` excludes time spent in nested profiled scopes (crypto runs inside
/// event dispatch, so dispatch self-time is dispatch minus crypto etc.).
struct PhaseTotals {
  std::uint64_t calls = 0;
  double inclusiveSeconds = 0.0;
  double selfSeconds = 0.0;
};

/// Scoped wall-clock profiler with phase accumulators. Cost model: when no
/// profiler is active on the current thread, an instrumented scope is a
/// thread-local load and a branch; when active, two steady_clock reads.
/// Profiling is per-thread (one simulation runs on one thread), so parallel
/// sweeps each activate their own Profiler without contention.
///
/// Wall-clock numbers are inherently non-deterministic — the profiler is a
/// diagnostic, never an input to simulation results.
class Profiler {
 public:
  /// The profiler instrumented scopes on this thread report into (nullptr =
  /// profiling off, scopes are no-ops).
  static Profiler* current();

  /// RAII activation: installs `profiler` as the thread's current profiler
  /// and restores the previous one on destruction.
  class Activation {
   public:
    explicit Activation(Profiler* profiler);
    ~Activation();
    Activation(const Activation&) = delete;
    Activation& operator=(const Activation&) = delete;

   private:
    Profiler* previous_;
  };

  void enter(Phase phase);
  void exit();

  const PhaseTotals& totals(Phase phase) const {
    return totals_[static_cast<std::size_t>(phase)];
  }
  /// Open scopes right now (0 outside instrumented code).
  std::size_t depth() const { return stack_.size(); }

  /// Sums another profiler's totals into this one (multi-seed sweeps).
  void merge(const Profiler& other);

  /// True once any scope has reported in.
  bool any() const;

  /// The end-of-run phase-time table: calls, self/inclusive milliseconds,
  /// and each phase's share of total self time.
  TextTable table() const;

 private:
  struct Frame {
    Phase phase;
    std::chrono::steady_clock::time_point start;
    double childSeconds = 0.0;
  };

  std::array<PhaseTotals, kPhaseCount> totals_{};
  std::vector<Frame> stack_;
};

/// RAII phase scope. Prefer the WMSN_PROFILE_PHASE macro at call sites.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase) : profiler_(Profiler::current()) {
    if (profiler_) profiler_->enter(phase);
  }
  ~ScopedPhase() {
    if (profiler_) profiler_->exit();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler* profiler_;
};

}  // namespace wmsn::obs

#define WMSN_PROFILE_CONCAT2(a, b) a##b
#define WMSN_PROFILE_CONCAT(a, b) WMSN_PROFILE_CONCAT2(a, b)
/// Times the rest of the enclosing scope under `phase` (a Phase enumerator
/// name, e.g. WMSN_PROFILE_PHASE(kCrypto)) on the thread's current profiler.
#define WMSN_PROFILE_PHASE(phase)                      \
  ::wmsn::obs::ScopedPhase WMSN_PROFILE_CONCAT(        \
      wmsnProfileScope, __COUNTER__)(::wmsn::obs::Phase::phase)
