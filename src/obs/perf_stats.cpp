#include "obs/perf_stats.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <cstdlib>
#include <new>
#include <vector>

#include "util/json.hpp"

namespace wmsn::obs {

namespace {
thread_local PerfStats* tlCurrent = nullptr;
}  // namespace

const char* toString(PerfCounter counter) {
  switch (counter) {
    case PerfCounter::kNodeSteps: return "node-steps";
    case PerfCounter::kFramesOffered: return "frames-offered";
    case PerfCounter::kFramesTransmitted: return "frames-transmitted";
    case PerfCounter::kFramesReceived: return "frames-received";
    case PerfCounter::kMacBackoffs: return "mac-backoffs";
    case PerfCounter::kNeighborScans: return "neighbor-scans";
    case PerfCounter::kPairsExamined: return "pairs-examined";
    case PerfCounter::kRngDraws: return "rng-draws";
    case PerfCounter::kRouteMutations: return "route-mutations";
    case PerfCounter::kObserverDispatches: return "observer-dispatches";
    case PerfCounter::kGridQueries: return "grid-queries";
  }
  return "unknown";
}

const char* metricName(PerfCounter counter) {
  switch (counter) {
    case PerfCounter::kNodeSteps: return "node_steps";
    case PerfCounter::kFramesOffered: return "frames_offered";
    case PerfCounter::kFramesTransmitted: return "frames_transmitted";
    case PerfCounter::kFramesReceived: return "frames_received";
    case PerfCounter::kMacBackoffs: return "mac_backoffs";
    case PerfCounter::kNeighborScans: return "neighbor_scans";
    case PerfCounter::kPairsExamined: return "pairs_examined";
    case PerfCounter::kRngDraws: return "rng_draws";
    case PerfCounter::kRouteMutations: return "route_mutations";
    case PerfCounter::kObserverDispatches: return "observer_dispatches";
    case PerfCounter::kGridQueries: return "grid_queries";
  }
  return "unknown";
}

PerfStats* PerfStats::current() { return tlCurrent; }

PerfStats::Activation::Activation(PerfStats* stats) : previous_(tlCurrent) {
  tlCurrent = stats;
}

PerfStats::Activation::~Activation() { tlCurrent = previous_; }

void PerfStats::merge(const PerfStats& other) {
  for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
    counters_[i] += other.counters_[i];
  }
}

bool PerfStats::any() const {
  for (std::uint64_t v : counters_) {
    if (v > 0) return true;
  }
  return false;
}

namespace {
/// Counter indices ordered by metric name — the one deterministic order
/// every exporter (table, JSON, metrics registry) shares.
std::vector<std::size_t> sortedByName() {
  std::vector<std::size_t> order(kPerfCounterCount);
  for (std::size_t i = 0; i < kPerfCounterCount; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [](std::size_t a, std::size_t b) {
                     return std::string(metricName(static_cast<PerfCounter>(a))) <
                            std::string(metricName(static_cast<PerfCounter>(b)));
                   });
  return order;
}
}  // namespace

TextTable PerfStats::table() const {
  TextTable table({"counter", "count"});
  for (std::size_t i : sortedByName()) {
    table.addRow({toString(static_cast<PerfCounter>(i)),
                  TextTable::num(counters_[i])});
  }
  return table;
}

std::string PerfStats::json() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i : sortedByName()) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += metricName(static_cast<PerfCounter>(i));
    out += "\": ";
    out += std::to_string(counters_[i]);
  }
  out += "}";
  return out;
}

void ResourceTelemetry::merge(const ResourceTelemetry& other) {
  if (!other.captured) return;
  captured = true;
  peakRssKb = std::max(peakRssKb, other.peakRssKb);
  allocCount += other.allocCount;
  allocBytes += other.allocBytes;
  wallSeconds += other.wallSeconds;
  rounds += other.rounds;
  frames += other.frames;
}

std::string ResourceTelemetry::json() const {
  std::string out = "{";
  out += "\"alloc_bytes\": " + std::to_string(allocBytes);
  out += ", \"alloc_count\": " + std::to_string(allocCount);
  out += ", \"frames\": " + std::to_string(frames);
  out += ", \"frames_per_sec\": " + jsonNumber(framesPerSec());
  out += ", \"peak_rss_kb\": " + std::to_string(peakRssKb);
  out += ", \"rounds\": " + std::to_string(rounds);
  out += ", \"rounds_per_sec\": " + jsonNumber(roundsPerSec());
  out += ", \"wall_seconds\": " + jsonNumber(wallSeconds);
  out += "}";
  return out;
}

std::uint64_t currentPeakRssKb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss > 0 ? static_cast<std::uint64_t>(usage.ru_maxrss) : 0;
}

namespace {
/// The innermost armed AllocationScope on this thread. A plain pointer of
/// trivial type: safe to read from the allocator hooks even during static
/// init/teardown (zero-initialised, never dereferenced unless armed).
thread_local AllocationScope* tlAllocScope = nullptr;
}  // namespace

AllocationScope::AllocationScope() : previous_(tlAllocScope) {
  tlAllocScope = this;
}

AllocationScope::~AllocationScope() { tlAllocScope = previous_; }

namespace detail {

void noteAllocation(std::size_t bytes) {
  if (tlAllocScope != nullptr) {
    tlAllocScope->note(static_cast<std::uint64_t>(bytes));
  }
}

void* allocateOrThrow(std::size_t bytes) {
  for (;;) {
    void* p = std::malloc(bytes == 0 ? 1 : bytes);
    if (p != nullptr) {
      noteAllocation(bytes);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* allocateAlignedOrThrow(std::size_t bytes, std::size_t alignment) {
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, std::max(alignment, sizeof(void*)),
                       bytes == 0 ? 1 : bytes) == 0) {
      noteAllocation(bytes);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace detail

}  // namespace wmsn::obs

// Global allocation hooks backing obs::AllocationScope. They replace the
// default operator new/delete for the whole binary; unarmed threads pay a
// thread-local load per allocation and nothing else. malloc/free remain the
// underlying allocator, so sanitizer interception still sees every block.

void* operator new(std::size_t bytes) {
  return wmsn::obs::detail::allocateOrThrow(bytes);
}

void* operator new[](std::size_t bytes) {
  return wmsn::obs::detail::allocateOrThrow(bytes);
}

void* operator new(std::size_t bytes, const std::nothrow_t&) noexcept {
  void* p = std::malloc(bytes == 0 ? 1 : bytes);
  if (p != nullptr) wmsn::obs::detail::noteAllocation(bytes);
  return p;
}

void* operator new[](std::size_t bytes, const std::nothrow_t&) noexcept {
  void* p = std::malloc(bytes == 0 ? 1 : bytes);
  if (p != nullptr) wmsn::obs::detail::noteAllocation(bytes);
  return p;
}

void* operator new(std::size_t bytes, std::align_val_t alignment) {
  return wmsn::obs::detail::allocateAlignedOrThrow(
      bytes, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t bytes, std::align_val_t alignment) {
  return wmsn::obs::detail::allocateAlignedOrThrow(
      bytes, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
