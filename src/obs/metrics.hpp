#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace wmsn::obs {

/// Metric labels: (key, value) pairs, e.g. {{"protocol","mlr"},{"node","7"}}.
/// Stored sorted by key so equal label sets compare (and serialise) equal
/// regardless of construction order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical serialisation of a label set: `k1=v1,k2=v2` in key order.
/// Part of a metric's identity inside the registry.
std::string labelKey(Labels labels);

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. `upperEdges` are inclusive upper bounds in
/// strictly increasing order; an observation lands in the first bucket with
/// x <= edge, or the implicit overflow (+inf) bucket past the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperEdges);

  void observe(double x);

  const std::vector<double>& edges() const { return edges_; }
  /// Per-bucket counts; size() == edges().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Adds another histogram's counts. Requires identical bucket edges.
  void merge(const Histogram& other);

  /// Rebuilds a histogram from serialised state (wire transport between
  /// campaign worker processes). `counts` must hold edges.size()+1 buckets;
  /// count() becomes their sum.
  static Histogram fromState(std::vector<double> edges,
                             std::vector<std::uint64_t> counts, double sum);

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// A registry of named, labelled metrics. Lookup creates on first use and
/// returns a stable reference afterwards; (name, labels, kind) is the
/// identity, so the same name may carry many label sets (one counter per
/// node, say). Export order is deterministic — sorted by name then label
/// key — so two runs that did the same work serialise byte-identically.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// Requires: an existing histogram under (name, labels) has the same
  /// edges.
  Histogram& histogram(const std::string& name, std::vector<double> edges,
                       Labels labels = {});

  /// nullptr when the metric does not exist (or is a different kind).
  const Counter* findCounter(const std::string& name,
                             Labels labels = {}) const;
  const Gauge* findGauge(const std::string& name, Labels labels = {}) const;
  const Histogram* findHistogram(const std::string& name,
                                 Labels labels = {}) const;

  std::size_t size() const { return metrics_.size(); }

  /// Folds `other` in: counters and histograms add, gauges take the other
  /// registry's value (latest-wins), absent metrics are copied. Requires
  /// kind (and histogram edge) agreement for shared names.
  void merge(const MetricsRegistry& other);

  /// The full registry as a deterministic JSON document:
  /// {"metrics":[{"name":...,"type":...,"labels":{...},...}, ...]}.
  std::string json() const;
  void writeJson(const std::string& path) const;

  /// Single-line wire serialisation for cross-process transport (the
  /// campaign runner ships per-run registries from forked workers over a
  /// pipe). Lossless: doubles travel as hexfloat, so
  /// fromWire(r.wire()).json() == r.json() exactly. Contains no newlines;
  /// metric names and label strings must be free of ASCII control
  /// characters (they are code-authored identifiers).
  std::string wire() const;
  static MetricsRegistry fromWire(const std::string& wire);

 private:
  struct Entry {
    std::string name;
    Labels labels;
    std::variant<Counter, Gauge, Histogram> metric;
  };

  Entry& lookup(const std::string& name, Labels labels);
  const Entry* find(const std::string& name, Labels labels) const;

  /// Keyed by name + '\x1f' + labelKey for deterministic iteration.
  std::map<std::string, Entry> metrics_;
};

}  // namespace wmsn::obs
