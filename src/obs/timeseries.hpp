#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace wmsn::obs {

/// One round's snapshot of the simulation — the time-series row. Traffic and
/// congestion fields are per-round deltas (what happened *in* this round);
/// the energy distribution is cumulative consumption at the round boundary,
/// which is what the paper's D² trajectory (eq. 1) plots.
struct RoundSample {
  std::uint32_t round = 0;
  double timeSeconds = 0.0;  ///< simulated time at the round boundary

  // Traffic, this round.
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  double pdrRound = 0.0;        ///< delivered/generated within the round
  double pdrCumulative = 0.0;   ///< run-so-far delivery ratio
  std::uint64_t controlBytes = 0;
  std::uint64_t dataBytes = 0;

  // Congestion, this round.
  std::uint64_t queueDrops = 0;
  std::uint64_t macDrops = 0;
  std::uint64_t collisions = 0;
  std::uint64_t queuePeakDepth = 0;  ///< deepest queue on any node
  double queueMeanDepth = 0.0;       ///< time-weighted mean over all nodes

  // Load balance: first deliveries per gateway ordinal, this round.
  std::vector<std::uint64_t> perGatewayDeliveries;

  // Sensor energy distribution, cumulative at the boundary.
  double energyMinJ = 0.0;
  double energyMeanJ = 0.0;
  double energyMaxJ = 0.0;
  double energyVarianceD2 = 0.0;  ///< the paper's D² (eq. 1)
  std::uint64_t aliveSensors = 0;

  // Fault injection: nodes crashed (reversibly) at the boundary. Recorded
  // in CSV/JSON only when the recorder enables its fault columns.
  std::uint64_t failedSensors = 0;
  std::uint64_t failedGateways = 0;

  /// Nodes bucketed by their peak queue depth this round; one count per
  /// recorder bucket (last = overflow).
  std::vector<std::uint64_t> queueDepthHist;
};

/// Accumulates RoundSamples and serialises them as CSV or JSON. The column
/// set adapts to the run's shape (gateway count, queue-depth bucket edges),
/// fixed at construction so every row agrees with the header.
class TimeSeriesRecorder {
 public:
  TimeSeriesRecorder(std::size_t gatewayCount,
                     std::vector<double> queueDepthEdges = defaultDepthEdges(),
                     bool faultColumns = false);

  /// Depth buckets used when none are supplied: ≤1, ≤2, ≤4, ≤8, ≤16, ≤32.
  static std::vector<double> defaultDepthEdges();

  std::size_t gatewayCount() const { return gatewayCount_; }
  const std::vector<double>& queueDepthEdges() const { return depthEdges_; }
  /// When on, CSV/JSON carry failed_sensors/failed_gateways columns; off by
  /// default so fault-free runs serialise byte-identically to older builds.
  bool faultColumns() const { return faultColumns_; }

  /// Requires sample.perGatewayDeliveries.size() == gatewayCount() and
  /// sample.queueDepthHist.size() == queueDepthEdges().size() + 1.
  void add(RoundSample sample);

  std::size_t rounds() const { return samples_.size(); }
  const std::vector<RoundSample>& samples() const { return samples_; }

  /// Column names, in row order. A leading "run" column carries the
  /// caller-chosen run label so multi-seed series concatenate cleanly.
  std::vector<std::string> csvHeader() const;
  /// Appends this series' rows (requires `csv` built from csvHeader()).
  void appendCsv(CsvWriter& csv, const std::string& runLabel) const;
  CsvWriter csv(const std::string& runLabel) const;
  void writeCsv(const std::string& path, const std::string& runLabel) const;

  /// JSON array of per-round objects.
  std::string json() const;
  void writeJson(const std::string& path) const;

 private:
  std::size_t gatewayCount_;
  std::vector<double> depthEdges_;
  bool faultColumns_ = false;
  std::vector<RoundSample> samples_;
};

}  // namespace wmsn::obs
