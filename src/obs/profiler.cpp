#include "obs/profiler.hpp"

#include <algorithm>
#include <cstring>

#include "util/require.hpp"

namespace wmsn::obs {

namespace {
thread_local Profiler* tlCurrent = nullptr;
}  // namespace

const char* toString(Phase phase) {
  switch (phase) {
    case Phase::kEventDispatch: return "event-dispatch";
    case Phase::kMacContention: return "mac-contention";
    case Phase::kCrypto: return "crypto";
    case Phase::kRouteMaintenance: return "route-maintenance";
  }
  return "unknown";
}

Profiler* Profiler::current() { return tlCurrent; }

Profiler::Activation::Activation(Profiler* profiler) : previous_(tlCurrent) {
  tlCurrent = profiler;
}

Profiler::Activation::~Activation() { tlCurrent = previous_; }

void Profiler::enter(Phase phase) {
  stack_.push_back({phase, std::chrono::steady_clock::now(), 0.0});
}

void Profiler::exit() {
  WMSN_REQUIRE_MSG(!stack_.empty(), "profiler exit without matching enter");
  const Frame frame = stack_.back();
  stack_.pop_back();
  const double inclusive =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    frame.start)
          .count();
  PhaseTotals& t = totals_[static_cast<std::size_t>(frame.phase)];
  ++t.calls;
  t.inclusiveSeconds += inclusive;
  t.selfSeconds += inclusive - frame.childSeconds;
  if (!stack_.empty()) stack_.back().childSeconds += inclusive;
}

void Profiler::merge(const Profiler& other) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    totals_[i].calls += other.totals_[i].calls;
    totals_[i].inclusiveSeconds += other.totals_[i].inclusiveSeconds;
    totals_[i].selfSeconds += other.totals_[i].selfSeconds;
  }
}

bool Profiler::any() const {
  for (const PhaseTotals& t : totals_) {
    if (t.calls > 0) return true;
  }
  return false;
}

TextTable Profiler::table() const {
  double totalSelf = 0.0;
  for (const PhaseTotals& t : totals_) totalSelf += t.selfSeconds;

  // Rows sorted by phase name, not enum order, so --profile output stays
  // byte-stable if enumerators are ever reordered or added.
  std::array<std::size_t, kPhaseCount> order{};
  for (std::size_t i = 0; i < kPhaseCount; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [](std::size_t a, std::size_t b) {
                     return std::strcmp(toString(static_cast<Phase>(a)),
                                        toString(static_cast<Phase>(b))) < 0;
                   });

  TextTable table({"phase", "calls", "self ms", "incl ms", "self %"});
  for (const std::size_t i : order) {
    const PhaseTotals& t = totals_[i];
    if (t.calls == 0) continue;
    table.addRow({toString(static_cast<Phase>(i)), TextTable::num(t.calls),
                  TextTable::num(t.selfSeconds * 1e3, 2),
                  TextTable::num(t.inclusiveSeconds * 1e3, 2),
                  TextTable::num(
                      totalSelf > 0.0 ? 100.0 * t.selfSeconds / totalSelf
                                      : 0.0,
                      1)});
  }
  return table;
}

}  // namespace wmsn::obs
