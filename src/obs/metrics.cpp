#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/require.hpp"

namespace wmsn::obs {

namespace {

using wmsn::jsonEscape;
using wmsn::jsonNumber;

void appendLabels(std::ostringstream& os, const Labels& labels) {
  os << "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ",";
    os << "\"" << jsonEscape(labels[i].first) << "\":\""
       << jsonEscape(labels[i].second) << "\"";
  }
  os << "}";
}

}  // namespace

std::string labelKey(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  return out;
}

Histogram::Histogram(std::vector<double> upperEdges)
    : edges_(std::move(upperEdges)), counts_(edges_.size() + 1, 0) {
  WMSN_REQUIRE_MSG(!edges_.empty(), "histogram needs at least one edge");
  WMSN_REQUIRE_MSG(std::is_sorted(edges_.begin(), edges_.end()) &&
                       std::adjacent_find(edges_.begin(), edges_.end()) ==
                           edges_.end(),
                   "histogram edges must be strictly increasing");
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  ++count_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  WMSN_REQUIRE_MSG(edges_ == other.edges_,
                   "cannot merge histograms with different bucket edges");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram Histogram::fromState(std::vector<double> edges,
                               std::vector<std::uint64_t> counts, double sum) {
  Histogram h(std::move(edges));
  WMSN_REQUIRE_MSG(counts.size() == h.edges_.size() + 1,
                   "histogram state wants edges.size()+1 bucket counts");
  h.counts_ = std::move(counts);
  h.count_ = 0;
  for (const std::uint64_t c : h.counts_) h.count_ += c;
  h.sum_ = sum;
  return h;
}

MetricsRegistry::Entry& MetricsRegistry::lookup(const std::string& name,
                                                Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = name + '\x1f' + labelKey(labels);
  const auto it = metrics_.find(key);
  if (it != metrics_.end()) return it->second;
  Entry entry{name, std::move(labels), Counter{}};
  return metrics_.emplace(key, std::move(entry)).first->second;
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                                    Labels labels) const {
  const auto it = metrics_.find(name + '\x1f' + labelKey(std::move(labels)));
  return it == metrics_.end() ? nullptr : &it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  Entry& entry = lookup(name, std::move(labels));
  WMSN_REQUIRE_MSG(std::holds_alternative<Counter>(entry.metric),
                   "metric '" + name + "' already registered as another kind");
  return std::get<Counter>(entry.metric);
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = name + '\x1f' + labelKey(labels);
  const auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry entry{name, std::move(labels), Gauge{}};
    return std::get<Gauge>(
        metrics_.emplace(key, std::move(entry)).first->second.metric);
  }
  WMSN_REQUIRE_MSG(std::holds_alternative<Gauge>(it->second.metric),
                   "metric '" + name + "' already registered as another kind");
  return std::get<Gauge>(it->second.metric);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> edges,
                                      Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = name + '\x1f' + labelKey(labels);
  const auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry entry{name, std::move(labels), Histogram(std::move(edges))};
    return std::get<Histogram>(
        metrics_.emplace(key, std::move(entry)).first->second.metric);
  }
  WMSN_REQUIRE_MSG(std::holds_alternative<Histogram>(it->second.metric),
                   "metric '" + name + "' already registered as another kind");
  Histogram& h = std::get<Histogram>(it->second.metric);
  WMSN_REQUIRE_MSG(h.edges() == edges,
                   "metric '" + name + "' re-registered with different edges");
  return h;
}

const Counter* MetricsRegistry::findCounter(const std::string& name,
                                            Labels labels) const {
  const Entry* e = find(name, std::move(labels));
  return e ? std::get_if<Counter>(&e->metric) : nullptr;
}

const Gauge* MetricsRegistry::findGauge(const std::string& name,
                                        Labels labels) const {
  const Entry* e = find(name, std::move(labels));
  return e ? std::get_if<Gauge>(&e->metric) : nullptr;
}

const Histogram* MetricsRegistry::findHistogram(const std::string& name,
                                                Labels labels) const {
  const Entry* e = find(name, std::move(labels));
  return e ? std::get_if<Histogram>(&e->metric) : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, theirs] : other.metrics_) {
    const auto mine = metrics_.find(key);
    if (mine == metrics_.end()) {
      metrics_.emplace(key, theirs);
      continue;
    }
    Entry& entry = mine->second;
    WMSN_REQUIRE_MSG(entry.metric.index() == theirs.metric.index(),
                     "metric '" + entry.name +
                         "' has different kinds across registries");
    if (auto* c = std::get_if<Counter>(&entry.metric)) {
      c->add(std::get<Counter>(theirs.metric).value());
    } else if (auto* g = std::get_if<Gauge>(&entry.metric)) {
      g->set(std::get<Gauge>(theirs.metric).value());
    } else {
      std::get<Histogram>(entry.metric)
          .merge(std::get<Histogram>(theirs.metric));
    }
  }
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, entry] : metrics_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << jsonEscape(entry.name) << "\",\"labels\":";
    appendLabels(os, entry.labels);
    if (const auto* c = std::get_if<Counter>(&entry.metric)) {
      os << ",\"type\":\"counter\",\"value\":" << c->value();
    } else if (const auto* g = std::get_if<Gauge>(&entry.metric)) {
      os << ",\"type\":\"gauge\",\"value\":" << jsonNumber(g->value());
    } else {
      const Histogram& h = std::get<Histogram>(entry.metric);
      os << ",\"type\":\"histogram\",\"count\":" << h.count()
         << ",\"sum\":" << jsonNumber(h.sum()) << ",\"buckets\":[";
      for (std::size_t i = 0; i < h.counts().size(); ++i) {
        if (i) os << ",";
        os << "{\"le\":";
        if (i < h.edges().size())
          os << jsonNumber(h.edges()[i]);
        else
          os << "\"inf\"";
        os << ",\"count\":" << h.counts()[i] << "}";
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

namespace {

// Wire framing: records separated by RS (\x1e), fields by US (\x1f), label
// key/value tokens by GS (\x1d). All three are banned from metric names and
// label strings (code-authored identifiers), which keeps parsing a pair of
// splits. The first record is the format tag.
constexpr char kRecordSep = '\x1e';
constexpr char kFieldSep = '\x1f';
constexpr char kTokenSep = '\x1d';
constexpr const char* kWireTag = "wmsnmr1";

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

void requireWireSafe(const std::string& s) {
  for (const char c : s)
    WMSN_REQUIRE_MSG(static_cast<unsigned char>(c) >= 0x20,
                     "control character in metric name/label: not wire-safe");
}

std::uint64_t parseU64(const std::string& s) {
  WMSN_REQUIRE_MSG(!s.empty() &&
                       s.find_first_not_of("0123456789") == std::string::npos,
                   "malformed wire integer: '" + s + "'");
  return std::stoull(s);
}

}  // namespace

std::string MetricsRegistry::wire() const {
  std::string out = kWireTag;
  for (const auto& [key, entry] : metrics_) {
    requireWireSafe(entry.name);
    out += kRecordSep;
    std::string labelBlob;
    for (const auto& [k, v] : entry.labels) {
      requireWireSafe(k);
      requireWireSafe(v);
      if (!labelBlob.empty()) labelBlob += kTokenSep;
      labelBlob += k;
      labelBlob += kTokenSep;
      labelBlob += v;
    }
    if (const auto* c = std::get_if<Counter>(&entry.metric)) {
      out += 'c';
      out += kFieldSep;
      out += entry.name + kFieldSep + labelBlob + kFieldSep;
      out += std::to_string(c->value());
    } else if (const auto* g = std::get_if<Gauge>(&entry.metric)) {
      out += 'g';
      out += kFieldSep;
      out += entry.name + kFieldSep + labelBlob + kFieldSep;
      out += wireDouble(g->value());
    } else {
      const Histogram& h = std::get<Histogram>(entry.metric);
      out += 'h';
      out += kFieldSep;
      out += entry.name + kFieldSep + labelBlob + kFieldSep;
      std::string edges;
      for (const double e : h.edges()) {
        if (!edges.empty()) edges += ';';
        edges += wireDouble(e);
      }
      std::string counts;
      for (const std::uint64_t c : h.counts()) {
        if (!counts.empty()) counts += ';';
        counts += std::to_string(c);
      }
      out += edges + kFieldSep + counts + kFieldSep + wireDouble(h.sum());
    }
  }
  return out;
}

MetricsRegistry MetricsRegistry::fromWire(const std::string& wire) {
  MetricsRegistry registry;
  const std::vector<std::string> records = split(wire, kRecordSep);
  WMSN_REQUIRE_MSG(!records.empty() && records.front() == kWireTag,
                   "metrics wire blob missing '" + std::string(kWireTag) +
                       "' tag");
  for (std::size_t r = 1; r < records.size(); ++r) {
    const std::vector<std::string> fields = split(records[r], kFieldSep);
    WMSN_REQUIRE_MSG(fields.size() >= 4 && fields[0].size() == 1,
                     "malformed metrics wire record");
    const char kind = fields[0][0];
    const std::string& name = fields[1];
    Labels labels;
    if (!fields[2].empty()) {
      const std::vector<std::string> tokens = split(fields[2], kTokenSep);
      WMSN_REQUIRE_MSG(tokens.size() % 2 == 0,
                       "odd label token count in metrics wire record");
      for (std::size_t i = 0; i < tokens.size(); i += 2)
        labels.emplace_back(tokens[i], tokens[i + 1]);
    }
    if (kind == 'c') {
      WMSN_REQUIRE_MSG(fields.size() == 4, "counter wire record wants 4 fields");
      registry.counter(name, labels).add(parseU64(fields[3]));
    } else if (kind == 'g') {
      WMSN_REQUIRE_MSG(fields.size() == 4, "gauge wire record wants 4 fields");
      registry.gauge(name, labels).set(parseWireDouble(fields[3]));
    } else if (kind == 'h') {
      WMSN_REQUIRE_MSG(fields.size() == 6,
                       "histogram wire record wants 6 fields");
      std::vector<double> edges;
      for (const std::string& e : split(fields[3], ';'))
        edges.push_back(parseWireDouble(e));
      std::vector<std::uint64_t> counts;
      for (const std::string& c : split(fields[4], ';'))
        counts.push_back(parseU64(c));
      registry.histogram(name, edges, labels)
          .merge(Histogram::fromState(std::move(edges), std::move(counts),
                                      parseWireDouble(fields[5])));
    } else {
      WMSN_REQUIRE_MSG(false, "unknown metrics wire record kind");
    }
  }
  return registry;
}

void MetricsRegistry::writeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << json();
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace wmsn::obs
