#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/require.hpp"

namespace wmsn::obs {

namespace {

/// Shortest round-trip-ish formatting that is locale-independent and stable
/// across runs — JSON output must be byte-identical for identical inputs.
std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void appendLabels(std::ostringstream& os, const Labels& labels) {
  os << "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ",";
    os << "\"" << jsonEscape(labels[i].first) << "\":\""
       << jsonEscape(labels[i].second) << "\"";
  }
  os << "}";
}

}  // namespace

std::string labelKey(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  return out;
}

Histogram::Histogram(std::vector<double> upperEdges)
    : edges_(std::move(upperEdges)), counts_(edges_.size() + 1, 0) {
  WMSN_REQUIRE_MSG(!edges_.empty(), "histogram needs at least one edge");
  WMSN_REQUIRE_MSG(std::is_sorted(edges_.begin(), edges_.end()) &&
                       std::adjacent_find(edges_.begin(), edges_.end()) ==
                           edges_.end(),
                   "histogram edges must be strictly increasing");
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  ++count_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  WMSN_REQUIRE_MSG(edges_ == other.edges_,
                   "cannot merge histograms with different bucket edges");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

MetricsRegistry::Entry& MetricsRegistry::lookup(const std::string& name,
                                                Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = name + '\x1f' + labelKey(labels);
  const auto it = metrics_.find(key);
  if (it != metrics_.end()) return it->second;
  Entry entry{name, std::move(labels), Counter{}};
  return metrics_.emplace(key, std::move(entry)).first->second;
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                                    Labels labels) const {
  const auto it = metrics_.find(name + '\x1f' + labelKey(std::move(labels)));
  return it == metrics_.end() ? nullptr : &it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  Entry& entry = lookup(name, std::move(labels));
  WMSN_REQUIRE_MSG(std::holds_alternative<Counter>(entry.metric),
                   "metric '" + name + "' already registered as another kind");
  return std::get<Counter>(entry.metric);
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = name + '\x1f' + labelKey(labels);
  const auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry entry{name, std::move(labels), Gauge{}};
    return std::get<Gauge>(
        metrics_.emplace(key, std::move(entry)).first->second.metric);
  }
  WMSN_REQUIRE_MSG(std::holds_alternative<Gauge>(it->second.metric),
                   "metric '" + name + "' already registered as another kind");
  return std::get<Gauge>(it->second.metric);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> edges,
                                      Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = name + '\x1f' + labelKey(labels);
  const auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry entry{name, std::move(labels), Histogram(std::move(edges))};
    return std::get<Histogram>(
        metrics_.emplace(key, std::move(entry)).first->second.metric);
  }
  WMSN_REQUIRE_MSG(std::holds_alternative<Histogram>(it->second.metric),
                   "metric '" + name + "' already registered as another kind");
  Histogram& h = std::get<Histogram>(it->second.metric);
  WMSN_REQUIRE_MSG(h.edges() == edges,
                   "metric '" + name + "' re-registered with different edges");
  return h;
}

const Counter* MetricsRegistry::findCounter(const std::string& name,
                                            Labels labels) const {
  const Entry* e = find(name, std::move(labels));
  return e ? std::get_if<Counter>(&e->metric) : nullptr;
}

const Gauge* MetricsRegistry::findGauge(const std::string& name,
                                        Labels labels) const {
  const Entry* e = find(name, std::move(labels));
  return e ? std::get_if<Gauge>(&e->metric) : nullptr;
}

const Histogram* MetricsRegistry::findHistogram(const std::string& name,
                                                Labels labels) const {
  const Entry* e = find(name, std::move(labels));
  return e ? std::get_if<Histogram>(&e->metric) : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, theirs] : other.metrics_) {
    const auto mine = metrics_.find(key);
    if (mine == metrics_.end()) {
      metrics_.emplace(key, theirs);
      continue;
    }
    Entry& entry = mine->second;
    WMSN_REQUIRE_MSG(entry.metric.index() == theirs.metric.index(),
                     "metric '" + entry.name +
                         "' has different kinds across registries");
    if (auto* c = std::get_if<Counter>(&entry.metric)) {
      c->add(std::get<Counter>(theirs.metric).value());
    } else if (auto* g = std::get_if<Gauge>(&entry.metric)) {
      g->set(std::get<Gauge>(theirs.metric).value());
    } else {
      std::get<Histogram>(entry.metric)
          .merge(std::get<Histogram>(theirs.metric));
    }
  }
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, entry] : metrics_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << jsonEscape(entry.name) << "\",\"labels\":";
    appendLabels(os, entry.labels);
    if (const auto* c = std::get_if<Counter>(&entry.metric)) {
      os << ",\"type\":\"counter\",\"value\":" << c->value();
    } else if (const auto* g = std::get_if<Gauge>(&entry.metric)) {
      os << ",\"type\":\"gauge\",\"value\":" << formatDouble(g->value());
    } else {
      const Histogram& h = std::get<Histogram>(entry.metric);
      os << ",\"type\":\"histogram\",\"count\":" << h.count()
         << ",\"sum\":" << formatDouble(h.sum()) << ",\"buckets\":[";
      for (std::size_t i = 0; i < h.counts().size(); ++i) {
        if (i) os << ",";
        os << "{\"le\":";
        if (i < h.edges().size())
          os << formatDouble(h.edges()[i]);
        else
          os << "\"inf\"";
        os << ",\"count\":" << h.counts()[i] << "}";
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

void MetricsRegistry::writeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << json();
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace wmsn::obs
