#include "obs/timeseries.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/require.hpp"
#include "util/table.hpp"

namespace wmsn::obs {

namespace {
std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string depthBucketName(const std::vector<double>& edges, std::size_t i) {
  if (i < edges.size())
    return "qdepth_le_" + std::to_string(static_cast<long>(edges[i]));
  return "qdepth_over";
}
}  // namespace

std::vector<double> TimeSeriesRecorder::defaultDepthEdges() {
  return {1, 2, 4, 8, 16, 32};
}

TimeSeriesRecorder::TimeSeriesRecorder(std::size_t gatewayCount,
                                       std::vector<double> queueDepthEdges,
                                       bool faultColumns)
    : gatewayCount_(gatewayCount),
      depthEdges_(std::move(queueDepthEdges)),
      faultColumns_(faultColumns) {}

void TimeSeriesRecorder::add(RoundSample sample) {
  WMSN_REQUIRE_MSG(sample.perGatewayDeliveries.size() == gatewayCount_,
                   "per-gateway delivery vector does not match gateway count");
  WMSN_REQUIRE_MSG(sample.queueDepthHist.size() == depthEdges_.size() + 1,
                   "queue-depth histogram does not match bucket edges");
  samples_.push_back(std::move(sample));
}

std::vector<std::string> TimeSeriesRecorder::csvHeader() const {
  std::vector<std::string> header = {
      "run",          "round",          "time_s",
      "generated",    "delivered",      "pdr_round",
      "pdr_cum",      "control_bytes",  "data_bytes",
      "queue_drops",  "mac_drops",      "collisions",
      "queue_peak",   "queue_mean",     "energy_min_j",
      "energy_mean_j","energy_max_j",   "energy_d2",
      "alive_sensors"};
  if (faultColumns_) {
    header.push_back("failed_sensors");
    header.push_back("failed_gateways");
  }
  for (std::size_t g = 0; g < gatewayCount_; ++g)
    header.push_back("gw" + std::to_string(g) + "_deliveries");
  for (std::size_t i = 0; i <= depthEdges_.size(); ++i)
    header.push_back(depthBucketName(depthEdges_, i));
  return header;
}

void TimeSeriesRecorder::appendCsv(CsvWriter& csv,
                                   const std::string& runLabel) const {
  for (const RoundSample& s : samples_) {
    std::vector<std::string> row = {
        runLabel,
        TextTable::num(s.round),
        TextTable::num(s.timeSeconds, 3),
        TextTable::num(s.generated),
        TextTable::num(s.delivered),
        TextTable::num(s.pdrRound, 4),
        TextTable::num(s.pdrCumulative, 4),
        TextTable::num(s.controlBytes),
        TextTable::num(s.dataBytes),
        TextTable::num(s.queueDrops),
        TextTable::num(s.macDrops),
        TextTable::num(s.collisions),
        TextTable::num(s.queuePeakDepth),
        TextTable::num(s.queueMeanDepth, 4),
        formatDouble(s.energyMinJ),
        formatDouble(s.energyMeanJ),
        formatDouble(s.energyMaxJ),
        formatDouble(s.energyVarianceD2),
        TextTable::num(s.aliveSensors)};
    if (faultColumns_) {
      row.push_back(TextTable::num(s.failedSensors));
      row.push_back(TextTable::num(s.failedGateways));
    }
    for (const std::uint64_t d : s.perGatewayDeliveries)
      row.push_back(TextTable::num(d));
    for (const std::uint64_t c : s.queueDepthHist)
      row.push_back(TextTable::num(c));
    csv.addRow(std::move(row));
  }
}

CsvWriter TimeSeriesRecorder::csv(const std::string& runLabel) const {
  CsvWriter out(csvHeader());
  appendCsv(out, runLabel);
  return out;
}

void TimeSeriesRecorder::writeCsv(const std::string& path,
                                  const std::string& runLabel) const {
  csv(runLabel).writeFile(path);
}

std::string TimeSeriesRecorder::json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const RoundSample& s = samples_[i];
    os << (i ? ",\n " : "\n ");
    os << "{\"round\":" << s.round
       << ",\"time_s\":" << formatDouble(s.timeSeconds)
       << ",\"generated\":" << s.generated
       << ",\"delivered\":" << s.delivered
       << ",\"pdr_round\":" << formatDouble(s.pdrRound)
       << ",\"pdr_cum\":" << formatDouble(s.pdrCumulative)
       << ",\"control_bytes\":" << s.controlBytes
       << ",\"data_bytes\":" << s.dataBytes
       << ",\"queue_drops\":" << s.queueDrops
       << ",\"mac_drops\":" << s.macDrops
       << ",\"collisions\":" << s.collisions
       << ",\"queue_peak\":" << s.queuePeakDepth
       << ",\"queue_mean\":" << formatDouble(s.queueMeanDepth)
       << ",\"energy_min_j\":" << formatDouble(s.energyMinJ)
       << ",\"energy_mean_j\":" << formatDouble(s.energyMeanJ)
       << ",\"energy_max_j\":" << formatDouble(s.energyMaxJ)
       << ",\"energy_d2\":" << formatDouble(s.energyVarianceD2)
       << ",\"alive_sensors\":" << s.aliveSensors;
    if (faultColumns_)
      os << ",\"failed_sensors\":" << s.failedSensors
         << ",\"failed_gateways\":" << s.failedGateways;
    os << ",\"gateway_deliveries\":[";
    for (std::size_t g = 0; g < s.perGatewayDeliveries.size(); ++g)
      os << (g ? "," : "") << s.perGatewayDeliveries[g];
    os << "],\"queue_depth_hist\":[";
    for (std::size_t b = 0; b < s.queueDepthHist.size(); ++b)
      os << (b ? "," : "") << s.queueDepthHist[b];
    os << "]}";
  }
  os << "\n]\n";
  return os.str();
}

void TimeSeriesRecorder::writeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << json();
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace wmsn::obs
