#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/csv.hpp"

namespace wmsn::obs {

/// One traced frame event, already reduced to plain fields so sinks need no
/// knowledge of the network layer. `kind` points at a static string (the
/// packet-kind name); sinks must copy it if they outlive the event.
struct TraceEvent {
  double timeSeconds = 0.0;
  bool transmit = false;       ///< true = handed to the MAC, false = delivered
  const char* kind = "";       ///< packet kind name ("DATA", "GW_MOVE", ...)
  std::uint64_t node = 0;      ///< acting node (sender or receiver)
  bool broadcast = false;      ///< link-local broadcast frame
  std::uint64_t hopDst = 0;    ///< link destination (meaningless if broadcast)
  std::uint64_t origin = 0;    ///< node that created the packet
  std::uint64_t uid = 0;       ///< simulator-global packet id
  std::uint64_t bytes = 0;     ///< on-air size
};

enum class TraceFormat : std::uint8_t { kCsv, kJsonl, kNull };

std::string toString(TraceFormat format);
/// Parses "csv" | "jsonl" | "null"; throws PreconditionError otherwise.
TraceFormat parseTraceFormat(const std::string& name);

/// Where trace events go (ns-3's trace-sink half). Implementations buffer in
/// memory and serialise on demand; events() is the row count either way.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual TraceFormat format() const = 0;
  virtual void onEvent(const TraceEvent& event) = 0;
  virtual std::size_t events() const = 0;
  /// The serialised trace ("" for the null sink).
  virtual std::string str() const = 0;
  virtual void writeFile(const std::string& path) const;
};

/// ns-2-style one-row-per-event CSV.
class CsvTraceSink final : public TraceSink {
 public:
  CsvTraceSink();
  TraceFormat format() const override { return TraceFormat::kCsv; }
  void onEvent(const TraceEvent& event) override;
  std::size_t events() const override { return csv_.rows(); }
  std::string str() const override { return csv_.str(); }
  void writeFile(const std::string& path) const override {
    csv_.writeFile(path);
  }
  const CsvWriter& csv() const { return csv_; }

 private:
  CsvWriter csv_;
};

/// One JSON object per line — the format log pipelines (jq, ClickHouse,
/// pandas.read_json(lines=True)) ingest directly.
class JsonlTraceSink final : public TraceSink {
 public:
  TraceFormat format() const override { return TraceFormat::kJsonl; }
  void onEvent(const TraceEvent& event) override;
  std::size_t events() const override { return events_; }
  std::string str() const override { return buffer_; }

  /// JSON string-body escaping (quotes, backslashes, control characters).
  static std::string escape(std::string_view s);

 private:
  std::string buffer_;
  std::size_t events_ = 0;
};

/// Counts events and drops them — the zero-cost sink used to measure
/// instrumentation overhead (bench_obs_overhead) and to answer "how many
/// frames flew" without paying for serialisation.
class CountingTraceSink final : public TraceSink {
 public:
  TraceFormat format() const override { return TraceFormat::kNull; }
  void onEvent(const TraceEvent&) override { ++events_; }
  std::size_t events() const override { return events_; }
  std::string str() const override { return ""; }

 private:
  std::size_t events_ = 0;
};

std::unique_ptr<TraceSink> makeTraceSink(TraceFormat format);

}  // namespace wmsn::obs
