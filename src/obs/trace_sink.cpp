#include "obs/trace_sink.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/require.hpp"
#include "util/table.hpp"

namespace wmsn::obs {

std::string toString(TraceFormat format) {
  switch (format) {
    case TraceFormat::kCsv: return "csv";
    case TraceFormat::kJsonl: return "jsonl";
    case TraceFormat::kNull: return "null";
  }
  return "unknown";
}

TraceFormat parseTraceFormat(const std::string& name) {
  if (name == "csv") return TraceFormat::kCsv;
  if (name == "jsonl") return TraceFormat::kJsonl;
  if (name == "null") return TraceFormat::kNull;
  WMSN_REQUIRE_MSG(false, "unknown trace format '" + name +
                              "' (expected csv|jsonl|null)");
  return TraceFormat::kCsv;  // unreachable
}

void TraceSink::writeFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << str();
  if (!out) throw std::runtime_error("failed writing " + path);
}

CsvTraceSink::CsvTraceSink()
    : csv_({"time_s", "event", "kind", "node", "hop_dst", "origin", "uid",
            "bytes"}) {}

void CsvTraceSink::onEvent(const TraceEvent& e) {
  csv_.addRow({TextTable::num(e.timeSeconds, 6), e.transmit ? "tx" : "rx",
               e.kind, TextTable::num(e.node),
               e.broadcast ? "*" : TextTable::num(e.hopDst),
               TextTable::num(e.origin), TextTable::num(e.uid),
               TextTable::num(e.bytes)});
}

std::string JsonlTraceSink::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonlTraceSink::onEvent(const TraceEvent& e) {
  char line[256];
  if (e.broadcast) {
    std::snprintf(line, sizeof(line),
                  "{\"time_s\":%.6f,\"event\":\"%s\",\"kind\":\"%s\","
                  "\"node\":%llu,\"hop_dst\":\"*\",\"origin\":%llu,"
                  "\"uid\":%llu,\"bytes\":%llu}\n",
                  e.timeSeconds, e.transmit ? "tx" : "rx",
                  escape(e.kind).c_str(),
                  static_cast<unsigned long long>(e.node),
                  static_cast<unsigned long long>(e.origin),
                  static_cast<unsigned long long>(e.uid),
                  static_cast<unsigned long long>(e.bytes));
  } else {
    std::snprintf(line, sizeof(line),
                  "{\"time_s\":%.6f,\"event\":\"%s\",\"kind\":\"%s\","
                  "\"node\":%llu,\"hop_dst\":%llu,\"origin\":%llu,"
                  "\"uid\":%llu,\"bytes\":%llu}\n",
                  e.timeSeconds, e.transmit ? "tx" : "rx",
                  escape(e.kind).c_str(),
                  static_cast<unsigned long long>(e.node),
                  static_cast<unsigned long long>(e.hopDst),
                  static_cast<unsigned long long>(e.origin),
                  static_cast<unsigned long long>(e.uid),
                  static_cast<unsigned long long>(e.bytes));
  }
  buffer_ += line;
  ++events_;
}

std::unique_ptr<TraceSink> makeTraceSink(TraceFormat format) {
  switch (format) {
    case TraceFormat::kCsv: return std::make_unique<CsvTraceSink>();
    case TraceFormat::kJsonl: return std::make_unique<JsonlTraceSink>();
    case TraceFormat::kNull: return std::make_unique<CountingTraceSink>();
  }
  return nullptr;
}

}  // namespace wmsn::obs
