#include "campaign/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace wmsn::campaign {

Aggregate aggregate(const std::vector<double>& samples) {
  Aggregate a;
  a.n = samples.size();
  if (a.n == 0) return a;
  a.min = *std::min_element(samples.begin(), samples.end());
  a.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double s : samples) sum += s;
  a.mean = sum / static_cast<double>(a.n);
  if (a.n < 2) return a;
  double ss = 0.0;
  for (const double s : samples) ss += (s - a.mean) * (s - a.mean);
  a.stddev = std::sqrt(ss / static_cast<double>(a.n - 1));
  a.ci95 = tCritical95(a.n - 1) * a.stddev / std::sqrt(static_cast<double>(a.n));
  return a;
}

double tCritical95(std::size_t df) {
  // Two-sided 95% quantiles of Student's t; beyond df = 30 the normal
  // approximation is within 2%.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  WMSN_REQUIRE_MSG(df >= 1, "t critical value needs df >= 1");
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

double signTestTwoSided(std::size_t positives, std::size_t negatives) {
  const std::size_t n = positives + negatives;
  if (n == 0 || positives == negatives) return 1.0;
  // p = 2 * P(X <= k) for X ~ Binomial(n, 1/2) with k = min(pos, neg);
  // k < n - k here, so the doubled tails are disjoint and the value exact.
  // C(n, i) / 2^n accumulates via the multiplicative recurrence, which
  // stays in double range for any campaign-sized n.
  const std::size_t k = std::min(positives, negatives);
  double tail = 0.0;
  double term = std::pow(0.5, static_cast<double>(n));  // C(n,0)/2^n
  for (std::size_t i = 0; i <= k; ++i) {
    tail += term;
    term *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return std::min(2.0 * tail, 1.0);
}

}  // namespace wmsn::campaign
