#pragma once

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "campaign/record.hpp"

namespace wmsn::campaign {

/// Append-only checkpoint journal: one header line binding the journal to a
/// spec (fingerprint + run count), then one encoded RunRecord line per
/// completed run, appended and flushed as workers report. `--resume` loads
/// it, skips every journaled run, and aggregates the stored records — so a
/// campaign killed at any point finishes to a byte-identical artifact.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  Journal(Journal&& other) noexcept { *this = std::move(other); }
  Journal& operator=(Journal&& other) noexcept {
    if (this != &other) {
      close();
      path_ = std::move(other.path_);
      file_ = other.file_;
      other.file_ = nullptr;
      loaded_ = std::move(other.loaded_);
      ids_ = std::move(other.ids_);
    }
    return *this;
  }

  /// Creates/truncates the journal and writes the header.
  static Journal create(const std::string& path, std::uint64_t specFingerprint,
                        std::size_t runsTotal);

  /// Opens an existing journal for resuming: validates the header against
  /// the spec, loads every intact record line, then reopens for append.
  /// A torn final line (the append the kill interrupted) is dropped;
  /// a torn or mismatched header, or a duplicate run ID, throws.
  static Journal resume(const std::string& path, std::uint64_t specFingerprint,
                        std::size_t runsTotal);

  /// Appends one completed run and flushes so a kill -9 right after still
  /// finds it on resume. Rejects duplicate run IDs.
  void append(const RunRecord& record);

  /// Records loaded by resume() (empty for a fresh journal), keyed by id.
  const std::map<std::string, RunRecord>& loaded() const { return loaded_; }

  const std::string& path() const { return path_; }

  void close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::map<std::string, RunRecord> loaded_;
  std::set<std::string> ids_;  ///< every id in the file: loaded + appended
};

}  // namespace wmsn::campaign
