#pragma once

#include <cstddef>
#include <string>

#include "campaign/pool.hpp"
#include "campaign/spec.hpp"
#include "obs/metrics.hpp"

namespace wmsn::campaign {

struct CampaignOptions {
  std::string outPath;      ///< artifact JSON destination
  std::string journalPath;  ///< checkpoint journal path
  bool resume = false;      ///< load the journal and skip finished runs
  unsigned workers = 1;
  std::string metricsOutPath;  ///< merged per-run registries (plan order)
  bool workerStats = false;    ///< add scheduling gauges to the metrics-out
  /// Deterministic kill simulation for the resume gate: execute at most this
  /// many fresh runs, journal them, then stop WITHOUT writing the artifact.
  /// 0 = run to completion.
  std::size_t stopAfter = 0;
  bool quiet = false;
  /// When non-empty, every worker arms the crash flight recorder: a run
  /// that dies (invariant failure, fatal signal, injected crash) dumps the
  /// last in-memory spans to "<dir>/flight-<runId>.jsonl" post-mortem.
  std::string flightRecorderDir;
};

struct CampaignOutcome {
  std::size_t runsTotal = 0;
  std::size_t runsFromJournal = 0;  ///< skipped via --resume
  std::size_t runsExecuted = 0;     ///< fresh completions this invocation
  std::size_t runsFailed = 0;       ///< failed records in the final set
  bool stoppedEarly = false;        ///< --stop-after cut the campaign short
  PoolStats pool;
};

/// Expands the spec, executes every not-yet-journaled run across the fork
/// pool, journals each completion, and (unless stopped early) renders the
/// deterministic artifact to opts.outPath — plus, when requested, the
/// seed-order MetricsRegistry merge to opts.metricsOutPath.
///
/// Worker crashes are contained: the crashed run is recorded as failed and
/// the campaign completes. Everything written to outPath/metricsOutPath is
/// independent of worker count, completion order and resume history.
CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const CampaignOptions& opts);

/// Env var holding a run ID; the worker that picks that run up _exits
/// without reporting, exercising the crash-isolation path end to end
/// (tests + the CI campaign gate).
extern const char* const kCrashRunEnv;

}  // namespace wmsn::campaign
