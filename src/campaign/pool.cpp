#include "campaign/pool.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <deque>
#include <string>

#include "util/require.hpp"

namespace wmsn::campaign {

namespace {

struct Worker {
  pid_t pid = -1;
  int cmdFd = -1;           ///< parent -> child: job index lines, then "q"
  int resFd = -1;           ///< child -> parent: one payload line per job
  std::string buf;          ///< partial payload line read so far
  bool busy = false;
  std::size_t current = 0;  ///< outstanding job index while busy
  std::deque<std::size_t> queue;
  std::uint64_t completed = 0;

  bool alive() const { return resFd >= 0; }
};

void writeAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // worker died mid-write; its result-pipe EOF reports it
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Child-side loop: read index lines off the command pipe, run the job,
/// write the payload line back. Exits only via _exit — a forked child must
/// not run the parent's atexit/stream teardown.
[[noreturn]] void workerLoop(int cmdFd, int resFd, const PoolJobFn& job) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl == std::string::npos) {
      const ssize_t n = ::read(cmdFd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) ::_exit(0);  // parent closed the pipe (or died)
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (line == "q") ::_exit(0);
    std::string payload = job(std::stoull(line));
    WMSN_REQUIRE_MSG(payload.find('\n') == std::string::npos,
                     "pool job payload may not contain newlines");
    payload += '\n';
    writeAll(resFd, payload);
  }
}

void spawnWorker(Worker& me, const std::vector<Worker>& all,
                 const PoolJobFn& job) {
  int cmd[2] = {-1, -1};
  int res[2] = {-1, -1};
  WMSN_REQUIRE_MSG(::pipe(cmd) == 0 && ::pipe(res) == 0,
                   "campaign pool: pipe() failed");
  const pid_t pid = ::fork();
  WMSN_REQUIRE_MSG(pid >= 0, "campaign pool: fork() failed");
  if (pid == 0) {
    // Keep only this worker's endpoints. Inherited copies of sibling pipes
    // would hold them open and mask the EOF the parent relies on to detect
    // a sibling's crash.
    ::close(cmd[1]);
    ::close(res[0]);
    for (const Worker& other : all) {
      if (other.cmdFd >= 0) ::close(other.cmdFd);
      if (other.resFd >= 0) ::close(other.resFd);
    }
    workerLoop(cmd[0], res[1], job);
  }
  ::close(cmd[0]);
  ::close(res[1]);
  me.pid = pid;
  me.cmdFd = cmd[1];
  me.resFd = res[0];
  me.buf.clear();
  me.busy = false;
}

void reapWorker(Worker& me) {
  if (me.cmdFd >= 0) ::close(me.cmdFd);
  if (me.resFd >= 0) ::close(me.resFd);
  me.cmdFd = -1;
  me.resFd = -1;
  me.buf.clear();
  if (me.pid > 0) {
    int status = 0;
    ::waitpid(me.pid, &status, 0);
    me.pid = -1;
  }
}

bool anyQueued(const std::vector<Worker>& workers) {
  for (const Worker& w : workers)
    if (!w.queue.empty()) return true;
  return false;
}

/// Hands worker `w` its next job — from its own queue, else stolen from the
/// tail of the longest sibling queue. Returns false when no job remains.
bool dispatch(std::vector<Worker>& workers, unsigned w, PoolStats& stats) {
  Worker& me = workers[w];
  if (me.queue.empty()) {
    Worker* victim = nullptr;
    for (Worker& other : workers)
      if (!other.queue.empty() &&
          (victim == nullptr || other.queue.size() > victim->queue.size()))
        victim = &other;
    if (victim == nullptr) return false;
    me.queue.push_back(victim->queue.back());
    victim->queue.pop_back();
    ++stats.stolen;
  }
  me.current = me.queue.front();
  me.queue.pop_front();
  me.busy = true;
  writeAll(me.cmdFd, std::to_string(me.current) + "\n");
  return true;
}

}  // namespace

PoolStats runForkPool(std::size_t jobCount, unsigned workers,
                      const PoolJobFn& job, const PoolResultFn& onResult) {
  WMSN_REQUIRE_MSG(workers >= 1, "campaign pool needs at least one worker");
  PoolStats stats;
  if (jobCount == 0) return stats;
  if (workers > jobCount) workers = static_cast<unsigned>(jobCount);

  // A worker that dies between dispatch and read would otherwise deliver
  // SIGPIPE to the parent; EOF on its result pipe is the crash signal.
  using SigHandler = void (*)(int);
  const SigHandler oldPipe = std::signal(SIGPIPE, SIG_IGN);

  std::vector<Worker> pool(workers);
  for (std::size_t i = 0; i < jobCount; ++i)
    pool[i % workers].queue.push_back(i);
  for (Worker& w : pool) spawnWorker(w, pool, job);
  for (unsigned w = 0; w < workers; ++w) dispatch(pool, w, stats);

  std::size_t remaining = jobCount;
  std::vector<pollfd> fds(workers);
  while (remaining > 0) {
    for (unsigned w = 0; w < workers; ++w)
      fds[w] = {pool[w].resFd, POLLIN, 0};  // fd -1 == ignored by poll
    const int rc = ::poll(fds.data(), workers, -1);
    if (rc < 0 && errno == EINTR) continue;
    WMSN_REQUIRE_MSG(rc > 0, "campaign pool: poll() failed");

    for (unsigned w = 0; w < workers; ++w) {
      Worker& me = pool[w];
      if (!me.alive() ||
          (fds[w].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
        continue;
      char chunk[65536];
      const ssize_t n = ::read(me.resFd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;

      if (n > 0) {
        me.buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl = 0;
        while ((nl = me.buf.find('\n')) != std::string::npos) {
          const std::string payload = me.buf.substr(0, nl);
          me.buf.erase(0, nl + 1);
          WMSN_REQUIRE_MSG(me.busy,
                           "campaign pool: unsolicited worker payload");
          me.busy = false;
          ++me.completed;
          --remaining;
          onResult(me.current, false, payload, w);
          dispatch(pool, w, stats);
        }
        continue;
      }

      // EOF (or hard read error): the worker died. Only the outstanding job
      // is lost; its queue stays with the parent. Fork a replacement if any
      // queued work could still land on this slot.
      reapWorker(me);
      if (me.busy) {
        me.busy = false;
        --remaining;
        ++stats.crashes;
        onResult(me.current, true, "", w);
      }
      if (remaining > 0 && anyQueued(pool)) {
        spawnWorker(me, pool, job);
        ++stats.respawns;
        dispatch(pool, w, stats);
      }
    }
  }

  stats.perWorkerCompleted.assign(workers, 0);
  for (unsigned w = 0; w < workers; ++w) {
    Worker& me = pool[w];
    stats.perWorkerCompleted[w] = me.completed;
    if (!me.alive()) continue;
    writeAll(me.cmdFd, "q\n");
    reapWorker(me);
  }
  std::signal(SIGPIPE, oldPipe);
  return stats;
}

}  // namespace wmsn::campaign
