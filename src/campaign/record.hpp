#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace wmsn::campaign {

/// What one campaign run reports back from its worker process: identity,
/// status, the scalar metrics the statistics layer aggregates, and (when
/// the spec enabled `metrics = on`) the run's MetricsRegistry in wire form
/// for the seed-order merge in the parent. This is also exactly what a
/// journal line stores, so a resumed campaign aggregates byte-identically
/// to an uninterrupted one.
struct RunRecord {
  enum class Status : std::uint8_t { kOk, kFailed };

  std::string id;
  std::string cell;
  std::uint64_t seed = 0;
  std::uint32_t seedIndex = 0;
  Status status = Status::kOk;
  std::string error;  ///< failure reason; empty when ok

  // Traffic & delivery.
  double pdr = 0.0;
  double meanLatencyMs = 0.0;
  double p95LatencyMs = 0.0;
  double meanHops = 0.0;
  double offeredPps = 0.0;
  double goodputPps = 0.0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queueDrops = 0;
  std::uint64_t macDrops = 0;
  std::uint64_t collisions = 0;
  std::uint64_t controlBytes = 0;
  std::uint64_t dataBytes = 0;
  std::uint32_t roundsCompleted = 0;

  // Lifetime (censored at end-of-run when no sensor died).
  bool firstDeathObserved = false;
  double lifetimeS = 0.0;

  // Energy.
  double energyTotalJ = 0.0;
  double energyD2 = 0.0;

  // Fault recovery.
  std::uint64_t outageEpisodes = 0;
  double meanRecoveryLatencyS = 0.0;
  double pdrDuringOutage = 1.0;

  // Causal-trace summary (zero unless the spec enabled `trace = on`):
  // analyzer aggregates over the run's retained spans, journaled so a
  // resumed campaign reports them without re-running.
  std::uint64_t traceSpans = 0;
  std::uint64_t traceReadings = 0;
  std::uint64_t traceReroutes = 0;
  std::uint64_t traceDropEvents = 0;
  double traceMeanPathHops = 0.0;

  // Perf summary (zero unless the spec enabled `perf = on`): the
  // deterministic work counters that define the kernel-scaling curve, plus
  // the run's resource telemetry. The counters aggregate deterministically;
  // the telemetry (RSS, wall, rates) is diagnostic and never enters the
  // deterministic artifact-metrics merge.
  bool perfCaptured = false;
  std::uint64_t perfNodeSteps = 0;
  std::uint64_t perfFramesTransmitted = 0;
  std::uint64_t perfPairsExamined = 0;
  std::uint64_t perfRngDraws = 0;
  std::uint64_t perfPeakRssKb = 0;
  double perfWallSeconds = 0.0;
  double perfRoundsPerSec = 0.0;
  double perfFramesPerSec = 0.0;

  /// obs::MetricsRegistry::wire() of the run's registry; empty when the
  /// spec did not enable metrics.
  std::string metricsWire;

  bool ok() const { return status == Status::kOk; }
};

/// Builds an ok-record from a finished run. `totalSimSeconds` censors the
/// lifetime metric when no sensor died.
RunRecord makeRecord(const std::string& id, const std::string& cell,
                     std::uint64_t seed, std::uint32_t seedIndex,
                     const core::RunResult& result, double totalSimSeconds);

/// Builds a failed-record (worker crash or in-run exception).
RunRecord makeFailedRecord(const std::string& id, const std::string& cell,
                           std::uint64_t seed, std::uint32_t seedIndex,
                           const std::string& error);

/// Single-line, newline-free, lossless encoding (doubles as hexfloat) used
/// on the worker result pipe and in the journal. decodeRecord is its exact
/// inverse; it throws PreconditionError on malformed input.
std::string encodeRecord(const RunRecord& record);
RunRecord decodeRecord(const std::string& line);

}  // namespace wmsn::campaign
