#include "campaign/artifact.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "campaign/stats.hpp"
#include "util/json.hpp"
#include "util/require.hpp"

namespace wmsn::campaign {

namespace {

/// The per-cell aggregate metrics, in artifact order.
struct MetricAccessor {
  const char* name;
  double (*get)(const RunRecord&);
};

constexpr MetricAccessor kCellMetrics[] = {
    {"pdr", [](const RunRecord& r) { return r.pdr; }},
    {"mean_latency_ms", [](const RunRecord& r) { return r.meanLatencyMs; }},
    {"p95_latency_ms", [](const RunRecord& r) { return r.p95LatencyMs; }},
    {"mean_hops", [](const RunRecord& r) { return r.meanHops; }},
    {"goodput_pps", [](const RunRecord& r) { return r.goodputPps; }},
    {"lifetime_s", [](const RunRecord& r) { return r.lifetimeS; }},
    {"energy_total_j", [](const RunRecord& r) { return r.energyTotalJ; }},
    {"pdr_during_outage",
     [](const RunRecord& r) { return r.pdrDuringOutage; }},
};

/// The paired-delta metrics (ISSUE: PDR / latency / lifetime).
constexpr MetricAccessor kDeltaMetrics[] = {
    {"pdr", [](const RunRecord& r) { return r.pdr; }},
    {"mean_latency_ms", [](const RunRecord& r) { return r.meanLatencyMs; }},
    {"lifetime_s", [](const RunRecord& r) { return r.lifetimeS; }},
};

void appendAggregate(std::ostream& os, const Aggregate& a) {
  os << "{\"n\": " << a.n << ", \"mean\": " << jsonNumber(a.mean)
     << ", \"stddev\": " << jsonNumber(a.stddev)
     << ", \"ci95\": " << jsonNumber(a.ci95)
     << ", \"min\": " << jsonNumber(a.min)
     << ", \"max\": " << jsonNumber(a.max) << "}";
}

void appendRun(std::ostream& os, const RunRecord& r) {
  os << "      {\"id\": \"" << jsonEscape(r.id) << "\", \"cell\": \""
     << jsonEscape(r.cell) << "\", \"seed\": " << r.seed
     << ", \"seed_index\": " << r.seedIndex << ", \"status\": \""
     << (r.ok() ? "ok" : "failed") << "\"";
  if (!r.ok()) {
    os << ", \"error\": \"" << jsonEscape(r.error) << "\"}";
    return;
  }
  os << ",\n       \"pdr\": " << jsonNumber(r.pdr)
     << ", \"mean_latency_ms\": " << jsonNumber(r.meanLatencyMs)
     << ", \"p95_latency_ms\": " << jsonNumber(r.p95LatencyMs)
     << ", \"mean_hops\": " << jsonNumber(r.meanHops)
     << ",\n       \"offered_pps\": " << jsonNumber(r.offeredPps)
     << ", \"goodput_pps\": " << jsonNumber(r.goodputPps)
     << ", \"generated\": " << r.generated
     << ", \"delivered\": " << r.delivered
     << ",\n       \"queue_drops\": " << r.queueDrops
     << ", \"mac_drops\": " << r.macDrops
     << ", \"collisions\": " << r.collisions
     << ", \"control_bytes\": " << r.controlBytes
     << ", \"data_bytes\": " << r.dataBytes
     << ",\n       \"rounds_completed\": " << r.roundsCompleted
     << ", \"first_death_observed\": "
     << (r.firstDeathObserved ? "true" : "false")
     << ", \"lifetime_s\": " << jsonNumber(r.lifetimeS)
     << ",\n       \"energy_total_j\": " << jsonNumber(r.energyTotalJ)
     << ", \"energy_d2\": " << jsonNumber(r.energyD2)
     << ",\n       \"outage_episodes\": " << r.outageEpisodes
     << ", \"mean_recovery_latency_s\": " << jsonNumber(r.meanRecoveryLatencyS)
     << ", \"pdr_during_outage\": " << jsonNumber(r.pdrDuringOutage);
  // Trace summary only when the spec traced the run, so untraced campaign
  // artifacts stay byte-identical to older builds.
  if (r.traceSpans > 0)
    os << ",\n       \"trace_spans\": " << r.traceSpans
       << ", \"trace_readings\": " << r.traceReadings
       << ", \"trace_reroutes\": " << r.traceReroutes
       << ", \"trace_drop_events\": " << r.traceDropEvents
       << ", \"trace_mean_path_hops\": " << jsonNumber(r.traceMeanPathHops);
  // Perf summary only when the spec counted the run, for the same
  // byte-compatibility reason. Deterministic work counters first, then the
  // machine-dependent telemetry (RSS, wall seconds, derived rates).
  if (r.perfCaptured)
    os << ",\n       \"perf_node_steps\": " << r.perfNodeSteps
       << ", \"perf_frames_transmitted\": " << r.perfFramesTransmitted
       << ", \"perf_pairs_examined\": " << r.perfPairsExamined
       << ", \"perf_rng_draws\": " << r.perfRngDraws
       << ",\n       \"perf_peak_rss_kb\": " << r.perfPeakRssKb
       << ", \"perf_wall_seconds\": " << jsonNumber(r.perfWallSeconds)
       << ", \"perf_rounds_per_sec\": " << jsonNumber(r.perfRoundsPerSec)
       << ", \"perf_frames_per_sec\": " << jsonNumber(r.perfFramesPerSec);
  os << "}";
}

struct Cell {
  std::string name;
  std::vector<std::string> labels;
  std::vector<const RunRecord*> ok;  ///< seed-index order (= plan order)
  std::size_t failed = 0;
};

int compareAxisIndex(const CampaignSpec& spec) {
  if (spec.compareKey.empty()) return -1;
  for (std::size_t i = 0; i < spec.axes.size(); ++i)
    if (spec.axes[i].key == spec.compareKey) return static_cast<int>(i);
  return -1;
}

}  // namespace

std::string renderArtifact(const CampaignSpec& spec,
                           const std::vector<PlannedRun>& plan,
                           const std::map<std::string, RunRecord>& records) {
  // Group by cell in plan (first-occurrence) order.
  std::vector<Cell> cells;
  std::map<std::string, std::size_t> cellIndex;
  // (context without the compare axis, compare label, seedIndex) -> record
  std::map<std::tuple<std::string, std::string, std::uint32_t>,
           const RunRecord*>
      byPair;
  std::vector<std::string> contexts;  // first-occurrence order
  const int compareAxis = compareAxisIndex(spec);

  std::size_t failedTotal = 0;
  for (const PlannedRun& run : plan) {
    const auto it = records.find(run.id);
    WMSN_REQUIRE_MSG(it != records.end(),
                     "campaign artifact is missing run: " + run.id);
    const RunRecord& rec = it->second;
    if (!rec.ok()) ++failedTotal;

    auto [ci, inserted] = cellIndex.emplace(run.cell, cells.size());
    if (inserted) {
      cells.push_back(Cell{run.cell, run.axisLabels, {}, 0});
    }
    Cell& cell = cells[ci->second];
    if (rec.ok())
      cell.ok.push_back(&rec);
    else
      ++cell.failed;

    if (compareAxis >= 0) {
      std::string context;
      for (std::size_t a = 0; a < run.axisLabels.size(); ++a) {
        if (static_cast<int>(a) == compareAxis) continue;
        if (!context.empty()) context += '/';
        context += run.axisLabels[a];
      }
      if (context.empty()) context = "-";
      const std::string& cmpLabel =
          run.axisLabels[static_cast<std::size_t>(compareAxis)];
      if (std::find(contexts.begin(), contexts.end(), context) ==
          contexts.end())
        contexts.push_back(context);
      byPair.emplace(std::make_tuple(context, cmpLabel, run.seedIndex), &rec);
    }
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"wmsn-campaign-v1\",\n";
  os << "  \"name\": \"" << jsonEscape(spec.name) << "\",\n";
  os << "  \"spec_fingerprint\": \"" << spec.fingerprint() << "\",\n";
  os << "  \"seed_base\": " << spec.seedBase << ",\n";
  os << "  \"repeats\": " << spec.repeats << ",\n";
  os << "  \"compare\": \"" << jsonEscape(spec.compareKey) << "\",\n";
  os << "  \"axes\": [";
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"key\": \"" << jsonEscape(spec.axes[i].key) << "\", \"labels\": [";
    for (std::size_t v = 0; v < spec.axes[i].values.size(); ++v) {
      if (v > 0) os << ", ";
      os << "\"" << jsonEscape(spec.axes[i].values[v].label) << "\"";
    }
    os << "]}";
  }
  os << "],\n";
  os << "  \"runs_total\": " << plan.size() << ",\n";
  os << "  \"runs_failed\": " << failedTotal << ",\n";

  os << "  \"runs\": [\n";
  for (std::size_t i = 0; i < plan.size(); ++i) {
    appendRun(os, records.at(plan[i].id));
    os << (i + 1 < plan.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  os << "  \"cells\": [\n";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    os << "      {\"cell\": \"" << jsonEscape(cell.name) << "\", \"labels\": {";
    for (std::size_t a = 0; a < spec.axes.size() && a < cell.labels.size();
         ++a) {
      if (a > 0) os << ", ";
      os << "\"" << jsonEscape(spec.axes[a].key) << "\": \""
         << jsonEscape(cell.labels[a]) << "\"";
    }
    os << "}, \"n_ok\": " << cell.ok.size()
       << ", \"n_failed\": " << cell.failed << ",\n       \"metrics\": {";
    bool firstMetric = true;
    for (const MetricAccessor& m : kCellMetrics) {
      std::vector<double> samples;
      samples.reserve(cell.ok.size());
      for (const RunRecord* r : cell.ok) samples.push_back(m.get(*r));
      if (!firstMetric) os << ", ";
      firstMetric = false;
      os << "\n        \"" << m.name << "\": ";
      appendAggregate(os, aggregate(samples));
    }
    os << "}}";
    os << (c + 1 < cells.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  // Paired-seed protocol-vs-protocol deltas along the compare axis: every
  // ordered pair (a earlier than b in axis declaration), paired by seed
  // index within each context (the other axes' labels), ok runs only.
  os << "  \"deltas\": [";
  bool firstDelta = true;
  if (compareAxis >= 0) {
    const Axis& axis = spec.axes[static_cast<std::size_t>(compareAxis)];
    for (const std::string& context : contexts) {
      for (std::size_t ia = 0; ia < axis.values.size(); ++ia) {
        for (std::size_t ib = ia + 1; ib < axis.values.size(); ++ib) {
          const std::string& la = axis.values[ia].label;
          const std::string& lb = axis.values[ib].label;
          // Collect seed-paired ok runs.
          std::vector<std::pair<const RunRecord*, const RunRecord*>> pairs;
          for (std::uint32_t s = 0; s < spec.repeats; ++s) {
            const auto pa = byPair.find(std::make_tuple(context, la, s));
            const auto pb = byPair.find(std::make_tuple(context, lb, s));
            if (pa == byPair.end() || pb == byPair.end()) continue;
            if (!pa->second->ok() || !pb->second->ok()) continue;
            pairs.emplace_back(pa->second, pb->second);
          }
          os << (firstDelta ? "\n" : ",\n");
          firstDelta = false;
          os << "      {\"axis\": \"" << jsonEscape(axis.key)
             << "\", \"context\": \"" << jsonEscape(context) << "\", \"a\": \""
             << jsonEscape(la) << "\", \"b\": \"" << jsonEscape(lb)
             << "\", \"pairs\": " << pairs.size() << ",\n       \"metrics\": {";
          bool firstMetric = true;
          for (const MetricAccessor& m : kDeltaMetrics) {
            std::size_t pos = 0;
            std::size_t neg = 0;
            std::size_t ties = 0;
            double sum = 0.0;
            for (const auto& [ra, rb] : pairs) {
              const double d = m.get(*rb) - m.get(*ra);
              sum += d;
              if (d > 0.0)
                ++pos;
              else if (d < 0.0)
                ++neg;
              else
                ++ties;
            }
            const double meanDelta =
                pairs.empty() ? 0.0 : sum / static_cast<double>(pairs.size());
            if (!firstMetric) os << ", ";
            firstMetric = false;
            os << "\n        \"" << m.name
               << "\": {\"mean_delta\": " << jsonNumber(meanDelta)
               << ", \"positive\": " << pos << ", \"negative\": " << neg
               << ", \"ties\": " << ties
               << ", \"sign_p\": " << jsonNumber(signTestTwoSided(pos, neg))
               << "}";
          }
          os << "}}";
        }
      }
    }
  }
  os << (firstDelta ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace wmsn::campaign
