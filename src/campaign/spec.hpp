#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"

namespace wmsn::campaign {

/// One point on a sweep axis: the short `label` names it in run IDs, cells
/// and the artifact; the `value` is what applySetting (or the variant
/// table) consumes.
struct AxisValue {
  std::string label;
  std::string value;
};

/// One declared sweep dimension, e.g. `variant = spr-m1, mlr-m3` or
/// `rate = 0.5, 1.0, 2.0`.
struct Axis {
  std::string key;
  std::vector<AxisValue> values;
};

/// A named settings bundle (`[variant NAME]` section): lets one axis sweep
/// heterogeneous protocol setups ("spr with m=1 and no failover" vs "mlr
/// with m=3") that no single scalar key could express.
using Settings = std::vector<std::pair<std::string, std::string>>;

/// A parsed campaign spec — the declarative description of a full
/// protocol × topology × workload × fault × seed grid. The TOML-lite
/// grammar (EXPERIMENTS.md "Campaign orchestration"):
///
///   # comment                    blank lines ignored
///   name = fault                 campaign-level keys: name, seed, repeats,
///   seed = 7                     compare
///   repeats = 5
///   rounds = 12                  any other top-level key=value is a base
///   sensors = 80                 ScenarioConfig setting (applySetting)
///
///   [variant spr-m1]             a named settings bundle
///   protocol = spr
///   gateways = 1
///
///   [sweep]                      axis declarations; expansion order is
///   variant = spr-m1, mlr-m3     declaration order, seeds innermost
///   fault = baseline=none, gw-crash=gw0@3
///
/// Axis items are `label=value` or a bare `value` (label == value). Fault
/// values join multiple tokens with ';' (e.g. `gw0@3;gw0+@6`).
struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t seedBase = 1;
  std::uint32_t repeats = 1;
  /// Axis whose values are compared pairwise in the paired-seed delta
  /// statistics. Empty = first of "variant"/"protocol" that is swept.
  std::string compareKey;

  Settings base;
  std::vector<std::pair<std::string, Settings>> variants;
  std::vector<Axis> axes;

  /// The raw spec text, kept for journal fingerprinting.
  std::string text;

  /// FNV-1a 64 over the raw text — a resume journal records it so `--resume`
  /// refuses to graft results from a different spec.
  std::uint64_t fingerprint() const;

  const Settings* findVariant(const std::string& name) const;
};

/// Parses the grammar above. Throws PreconditionError with the offending
/// line number on malformed input.
CampaignSpec parseSpec(const std::string& text);

/// Reads and parses a spec file. Throws on I/O failure.
CampaignSpec loadSpec(const std::string& path);

/// Applies one `key = value` setting to a scenario config. Shared by base
/// settings, variant bundles and axis values so every spelling of a knob
/// behaves identically. Throws PreconditionError naming the key on bad
/// input. `specs/` keys mirror wmsn_cli flags (EXPERIMENTS.md lists them).
void applySetting(core::ScenarioConfig& cfg, const std::string& key,
                  const std::string& value);

/// One expanded grid point: a fully-built ScenarioConfig plus the identity
/// strings the journal, artifact and statistics key on.
struct PlannedRun {
  std::string id;    ///< "<cell>/s<seed>" — unique across the campaign
  std::string cell;  ///< axis labels joined with '/' (seed excluded)
  std::vector<std::string> axisLabels;  ///< one label per declared axis
  std::uint32_t seedIndex = 0;
  std::uint64_t seed = 0;
  core::ScenarioConfig config;
};

/// Expands the spec's full cartesian grid in deterministic order: axes in
/// declaration order (first axis slowest), seed replicas innermost, seeds
/// from wmsn::seedSequence(spec.seedBase, spec.repeats). Validates every
/// config and REQUIREs run-ID uniqueness.
std::vector<PlannedRun> expand(const CampaignSpec& spec);

}  // namespace wmsn::campaign
