#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace wmsn::campaign {

/// Runs in a forked worker: executes job `index` and returns the single-line
/// payload to ship back to the parent (no embedded newlines). A thrown
/// exception is caught inside the worker and reported as a crash-free
/// failure by the caller's own payload convention; a real crash (segfault,
/// _exit) surfaces as `crashed = true` on the result callback.
using PoolJobFn = std::function<std::string(std::size_t index)>;

/// Runs in the parent as each job finishes (in completion order, which is
/// scheduling-dependent): `crashed` means the worker died mid-job and
/// `payload` is empty; `worker` is the slot that ran it.
using PoolResultFn = std::function<void(std::size_t index, bool crashed,
                                        const std::string& payload,
                                        unsigned worker)>;

/// Scheduling telemetry. Everything here depends on OS timing — callers must
/// not let any of it leak into deterministic artifacts.
struct PoolStats {
  std::uint64_t stolen = 0;    ///< jobs moved off their home worker's queue
  std::uint64_t crashes = 0;   ///< worker deaths observed mid-job
  std::uint64_t respawns = 0;  ///< replacement workers forked
  std::vector<std::uint64_t> perWorkerCompleted;
};

/// Fork-based process pool with parent-mediated work stealing and per-worker
/// crash isolation.
///
/// Jobs 0..jobCount-1 are dealt round-robin onto `workers` persistent forked
/// children. The parent drives everything through pipe pairs (index lines
/// down, payload lines up) and a poll() loop; an idle worker whose own queue
/// drained steals from the tail of the longest remaining queue. A worker
/// that dies mid-job (EOF on its result pipe) marks only that job crashed —
/// the parent reaps it, forks a replacement, and the campaign continues.
///
/// Even `workers == 1` forks: crash isolation is part of the contract, not
/// an optimization.
PoolStats runForkPool(std::size_t jobCount, unsigned workers,
                      const PoolJobFn& job, const PoolResultFn& onResult);

}  // namespace wmsn::campaign
