#pragma once

#include <map>
#include <string>
#include <vector>

#include "campaign/record.hpp"
#include "campaign/spec.hpp"

namespace wmsn::campaign {

/// Renders the campaign JSON artifact (schema "wmsn-campaign-v1", see
/// docs/METRICS.md). `records` must hold one RunRecord per planned run.
///
/// Determinism contract: output is a pure function of (spec, plan, records)
/// — iteration follows plan expansion order, numbers go through jsonNumber,
/// and nothing scheduling-dependent (worker count, completion order, steal
/// counts, timestamps) appears. This is what makes the artifact
/// byte-identical across --workers 1/4/16 and across kill + --resume.
std::string renderArtifact(const CampaignSpec& spec,
                           const std::vector<PlannedRun>& plan,
                           const std::map<std::string, RunRecord>& records);

}  // namespace wmsn::campaign
