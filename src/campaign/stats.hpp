#pragma once

#include <cstddef>
#include <vector>

namespace wmsn::campaign {

/// Per-cell summary of one metric across seed replicas.
struct Aggregate {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1); 0 when n < 2
  double ci95 = 0.0;    ///< t * stddev / sqrt(n) half-width; 0 when n < 2
  double min = 0.0;
  double max = 0.0;
};

Aggregate aggregate(const std::vector<double>& samples);

/// Two-sided Student-t critical value at 95% confidence for `df` degrees of
/// freedom (table through df = 30, then the normal 1.96).
double tCritical95(std::size_t df);

/// Exact two-sided binomial sign test: probability of a |#pos - #neg| split
/// at least this extreme under H0 p = 1/2, ties excluded. Returns 1.0 when
/// every pair tied.
double signTestTwoSided(std::size_t positives, std::size_t negatives);

}  // namespace wmsn::campaign
