#include "campaign/journal.hpp"

#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace wmsn::campaign {

namespace {

constexpr const char* kHeaderTag = "wmsncamp-journal";

std::string headerLine(std::uint64_t fingerprint, std::size_t runsTotal) {
  std::ostringstream os;
  os << kHeaderTag << " fp=" << fingerprint << " runs=" << runsTotal;
  return os.str();
}

}  // namespace

Journal::~Journal() { close(); }

void Journal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Journal Journal::create(const std::string& path, std::uint64_t specFingerprint,
                        std::size_t runsTotal) {
  Journal j;
  j.path_ = path;
  j.file_ = std::fopen(path.c_str(), "w");
  WMSN_REQUIRE_MSG(j.file_ != nullptr,
                   "cannot create campaign journal: " + path);
  const std::string header = headerLine(specFingerprint, runsTotal) + "\n";
  std::fwrite(header.data(), 1, header.size(), j.file_);
  std::fflush(j.file_);
  return j;
}

Journal Journal::resume(const std::string& path, std::uint64_t specFingerprint,
                        std::size_t runsTotal) {
  std::ifstream in(path, std::ios::binary);
  WMSN_REQUIRE_MSG(in.good(), "cannot open campaign journal for resume: " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();

  Journal j;
  j.path_ = path;

  // The header must be intact — a journal killed before the header finished
  // carries nothing worth resuming, and grafting onto a different spec's
  // journal would silently corrupt the campaign.
  const std::size_t headerEnd = content.find('\n');
  WMSN_REQUIRE_MSG(headerEnd != std::string::npos,
                   "campaign journal has no complete header line: " + path);
  WMSN_REQUIRE_MSG(content.substr(0, headerEnd) ==
                       headerLine(specFingerprint, runsTotal),
                   "campaign journal does not match this spec (different "
                   "fingerprint or run count): " + path);

  // Record lines. The final line may be torn by the kill that interrupted
  // the campaign — only a trailing fragment without its newline is dropped;
  // a malformed *complete* line is corruption and throws.
  std::size_t start = headerEnd + 1;
  while (start < content.size()) {
    const std::size_t end = content.find('\n', start);
    if (end == std::string::npos) break;  // torn final append
    const std::string line = content.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    RunRecord record = decodeRecord(line);
    const auto [it, inserted] = j.loaded_.emplace(record.id, std::move(record));
    WMSN_REQUIRE_MSG(inserted,
                     "campaign journal has duplicate run id: " + it->first);
    j.ids_.insert(it->first);
  }

  // Rewrite intact content so the torn fragment (if any) is gone, then keep
  // the handle open for appends.
  j.file_ = std::fopen(path.c_str(), "w");
  WMSN_REQUIRE_MSG(j.file_ != nullptr,
                   "cannot reopen campaign journal: " + path);
  const std::string intact = content.substr(0, start);
  std::fwrite(intact.data(), 1, intact.size(), j.file_);
  std::fflush(j.file_);
  return j;
}

void Journal::append(const RunRecord& record) {
  WMSN_REQUIRE_MSG(file_ != nullptr, "campaign journal is closed");
  WMSN_REQUIRE_MSG(ids_.insert(record.id).second,
                   "campaign journal already holds run: " + record.id);
  const std::string line = encodeRecord(record) + "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

}  // namespace wmsn::campaign
