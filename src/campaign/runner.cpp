#include "campaign/runner.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <vector>

#include "campaign/artifact.hpp"
#include "campaign/journal.hpp"
#include "core/experiment.hpp"
#include "obs/packet_trace.hpp"
#include "util/require.hpp"

namespace wmsn::campaign {

const char* const kCrashRunEnv = "WMSN_CAMPAIGN_CRASH_RUN";

namespace {

/// Run IDs contain '/' (cell/seed) — flatten for use as a file name.
std::string flattenId(const std::string& id) {
  std::string out = id;
  for (char& c : out)
    if (c == '/') c = '_';
  return out;
}

/// Executes one planned run inside a forked worker and encodes the outcome.
/// In-run exceptions become failed records (still a normal payload); only a
/// real crash leaves the parent to synthesize the record from pipe EOF.
std::string executeRun(const PlannedRun& run, const std::string& flightDir) {
  if (!flightDir.empty())
    obs::setFlightRecorderPath(flightDir + "/flight-" + flattenId(run.id) +
                               ".jsonl");
  const char* crashId = std::getenv(kCrashRunEnv);
  if (crashId != nullptr && run.id == crashId) {
    // _exit bypasses the fatal-signal handlers, so the post-mortem dump has
    // to be explicit here.
    if (!flightDir.empty())
      obs::dumpFlightRecorder("campaign-crash-injected");
    ::_exit(86);  // simulated worker crash: no payload, parent sees EOF
  }
  RunRecord record;
  try {
    const core::RunResult result = core::runScenario(run.config);
    const double totalSimSeconds =
        static_cast<double>(run.config.rounds) *
        run.config.roundDuration.seconds();
    record = makeRecord(run.id, run.cell, run.seed, run.seedIndex, result,
                        totalSimSeconds);
  } catch (const std::exception& e) {
    record = makeFailedRecord(run.id, run.cell, run.seed, run.seedIndex,
                              e.what());
  }
  return encodeRecord(record);
}

void progressLine(const CampaignOptions& opts, std::size_t done,
                  std::size_t total, const RunRecord& last) {
  if (opts.quiet) return;
  std::printf("[%zu/%zu] %s %s\n", done, total, last.ok() ? "ok" : "FAILED",
              last.id.c_str());
  std::fflush(stdout);
}

}  // namespace

CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const CampaignOptions& opts) {
  WMSN_REQUIRE_MSG(!opts.journalPath.empty(), "campaign needs a journal path");
  const std::vector<PlannedRun> plan = expand(spec);

  CampaignOutcome outcome;
  outcome.runsTotal = plan.size();

  Journal journal =
      opts.resume
          ? Journal::resume(opts.journalPath, spec.fingerprint(), plan.size())
          : Journal::create(opts.journalPath, spec.fingerprint(), plan.size());
  std::map<std::string, RunRecord> records = journal.loaded();
  outcome.runsFromJournal = records.size();

  // Fresh work, in plan order. --stop-after truncates it: the first N
  // pending runs execute and journal, then the campaign stops exactly as a
  // kill would have left it (minus torn lines).
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < plan.size(); ++i)
    if (records.find(plan[i].id) == records.end()) pending.push_back(i);
  if (opts.stopAfter > 0 && pending.size() > opts.stopAfter) {
    pending.resize(opts.stopAfter);
    outcome.stoppedEarly = true;
  }

  std::size_t done = outcome.runsFromJournal;
  outcome.pool = runForkPool(
      pending.size(), opts.workers,
      [&](std::size_t jobIndex) {
        return executeRun(plan[pending[jobIndex]], opts.flightRecorderDir);
      },
      [&](std::size_t jobIndex, bool crashed, const std::string& payload,
          unsigned /*worker*/) {
        const PlannedRun& run = plan[pending[jobIndex]];
        RunRecord record =
            crashed ? makeFailedRecord(run.id, run.cell, run.seed,
                                       run.seedIndex,
                                       "worker process died mid-run")
                    : decodeRecord(payload);
        WMSN_REQUIRE_MSG(record.id == run.id,
                         "campaign worker answered for the wrong run");
        journal.append(record);
        records.emplace(record.id, std::move(record));
        ++outcome.runsExecuted;
        ++done;
        progressLine(opts, done, plan.size(), records.at(run.id));
      });
  journal.close();

  for (const auto& [id, record] : records)
    if (!record.ok()) ++outcome.runsFailed;

  if (outcome.stoppedEarly) return outcome;

  if (!opts.outPath.empty()) {
    const std::string artifact = renderArtifact(spec, plan, records);
    std::ofstream out(opts.outPath, std::ios::binary);
    WMSN_REQUIRE_MSG(out.good(),
                     "cannot write campaign artifact: " + opts.outPath);
    out << artifact;
    out.close();
    WMSN_REQUIRE_MSG(out.good(),
                     "failed writing campaign artifact: " + opts.outPath);
  }

  if (!opts.metricsOutPath.empty()) {
    // Seed-order-deterministic merge: iterate the plan (axes outer, seeds
    // innermost), not completion order, so the merged registry is
    // byte-identical for any worker count. Campaign bookkeeping rides in
    // the same registry; scheduling-dependent telemetry only on request.
    obs::MetricsRegistry merged;
    for (const PlannedRun& run : plan) {
      const RunRecord& record = records.at(run.id);
      if (record.ok() && !record.metricsWire.empty())
        merged.merge(obs::MetricsRegistry::fromWire(record.metricsWire));
    }
    merged.counter("wmsn_campaign_runs_total").add(plan.size());
    merged.counter("wmsn_campaign_runs_from_journal")
        .add(outcome.runsFromJournal);
    merged.counter("wmsn_campaign_runs_executed").add(outcome.runsExecuted);
    merged.counter("wmsn_campaign_runs_failed").add(outcome.runsFailed);
    if (opts.workerStats) {
      merged.counter("wmsn_campaign_runs_stolen").add(outcome.pool.stolen);
      merged.counter("wmsn_campaign_worker_crashes")
          .add(outcome.pool.crashes);
      merged.counter("wmsn_campaign_worker_respawns")
          .add(outcome.pool.respawns);
      for (std::size_t w = 0; w < outcome.pool.perWorkerCompleted.size(); ++w)
        merged
            .gauge("wmsn_campaign_worker_runs",
                   {{"worker", std::to_string(w)}})
            .set(static_cast<double>(outcome.pool.perWorkerCompleted[w]));
    }
    merged.writeJson(opts.metricsOutPath);
  }

  return outcome;
}

}  // namespace wmsn::campaign
