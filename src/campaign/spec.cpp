#include "campaign/spec.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "util/random.hpp"
#include "util/require.hpp"

namespace wmsn::campaign {

namespace {

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> splitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(trim(s.substr(start)));
      return out;
    }
    out.push_back(trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw PreconditionError("campaign spec line " + std::to_string(line) + ": " +
                          what);
}

double parseDouble(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    WMSN_REQUIRE(used == value.size());
    return v;
  } catch (const std::exception&) {
    throw PreconditionError("campaign key '" + key +
                            "': not a number: '" + value + "'");
  }
}

std::uint64_t parseUint(const std::string& key, const std::string& value) {
  WMSN_REQUIRE_MSG(!value.empty() && value.find_first_not_of("0123456789") ==
                                         std::string::npos,
                   "campaign key '" + key + "': not a non-negative integer: '" +
                       value + "'");
  return std::stoull(value);
}

bool parseSwitch(const std::string& key, const std::string& value) {
  if (value == "on" || value == "true") return true;
  if (value == "off" || value == "false") return false;
  throw PreconditionError("campaign key '" + key +
                          "': expected on/off, got '" + value + "'");
}

core::ProtocolKind parseProtocol(const std::string& value) {
  static const std::vector<std::pair<std::string, core::ProtocolKind>> kMap = {
      {"flooding", core::ProtocolKind::kFlooding},
      {"gossip", core::ProtocolKind::kGossip},
      {"spin", core::ProtocolKind::kSpin},
      {"diffusion", core::ProtocolKind::kDiffusion},
      {"leach", core::ProtocolKind::kLeach},
      {"pegasis", core::ProtocolKind::kPegasis},
      {"teen", core::ProtocolKind::kTeen},
      {"single-sink", core::ProtocolKind::kSingleSink},
      {"spr", core::ProtocolKind::kSpr},
      {"mlr", core::ProtocolKind::kMlr},
      {"secmlr", core::ProtocolKind::kSecMlr},
  };
  for (const auto& [name, kind] : kMap)
    if (name == value) return kind;
  throw PreconditionError("campaign key 'protocol': unknown protocol '" +
                          value + "'");
}

/// Fault axis value: `none`, or ';'-joined tokens — scheduled events in the
/// --fault-plan grammar (gw0@3, s17+@5), `smtbf:N`/`smttr:N` sensor churn,
/// `gwmtbf:N`/`gwmttr:N` gateway churn, `loss:P` Gilbert–Elliott loss at
/// steady-state fraction P.
void applyFault(core::ScenarioConfig& cfg, const std::string& value) {
  cfg.faults = fault::FaultPlan{};
  if (value == "none") return;
  for (const std::string& token : splitList(value, ';')) {
    if (token.rfind("smtbf:", 0) == 0) {
      cfg.faults.sensorMtbfRounds = static_cast<std::uint32_t>(
          parseUint("fault", token.substr(6)));
    } else if (token.rfind("smttr:", 0) == 0) {
      cfg.faults.sensorMttrRounds = static_cast<std::uint32_t>(
          parseUint("fault", token.substr(6)));
    } else if (token.rfind("gwmtbf:", 0) == 0) {
      cfg.faults.gatewayMtbfRounds = static_cast<std::uint32_t>(
          parseUint("fault", token.substr(7)));
    } else if (token.rfind("gwmttr:", 0) == 0) {
      cfg.faults.gatewayMttrRounds = static_cast<std::uint32_t>(
          parseUint("fault", token.substr(7)));
    } else if (token.rfind("loss:", 0) == 0) {
      const double p = parseDouble("fault", token.substr(5));
      WMSN_REQUIRE_MSG(p >= 0.0 && p < 1.0,
                       "campaign key 'fault': loss fraction must be in [0,1)");
      if (p > 0.0) {
        cfg.faults.linkLoss.enabled = true;
        cfg.faults.linkLoss.pGoodToBad =
            cfg.faults.linkLoss.pBadToGood * p / (1.0 - p);
      }
    } else {
      const auto events = fault::parseFaultPlan(token);
      cfg.faults.events.insert(cfg.faults.events.end(), events.begin(),
                               events.end());
    }
  }
}

}  // namespace

void applySetting(core::ScenarioConfig& cfg, const std::string& key,
                  const std::string& value) {
  if (key == "protocol") {
    cfg.protocol = parseProtocol(value);
  } else if (key == "sensors") {
    cfg.sensorCount = parseUint(key, value);
  } else if (key == "gateways") {
    cfg.gatewayCount = parseUint(key, value);
  } else if (key == "places") {
    cfg.feasiblePlaceCount = parseUint(key, value);
  } else if (key == "clusters") {
    cfg.clusterCount = parseUint(key, value);
  } else if (key == "area") {
    cfg.width = cfg.height = parseDouble(key, value);
  } else if (key == "range") {
    cfg.radioRange = parseDouble(key, value);
  } else if (key == "rounds") {
    cfg.rounds = static_cast<std::uint32_t>(parseUint(key, value));
  } else if (key == "packets") {
    cfg.packetsPerSensorPerRound =
        static_cast<std::uint32_t>(parseUint(key, value));
  } else if (key == "reading-bytes") {
    cfg.readingBytes = parseUint(key, value);
  } else if (key == "deployment") {
    if (value == "uniform") cfg.deployment = core::DeploymentKind::kUniform;
    else if (value == "grid") cfg.deployment = core::DeploymentKind::kGrid;
    else if (value == "clustered")
      cfg.deployment = core::DeploymentKind::kClustered;
    else
      throw PreconditionError("campaign key 'deployment': unknown kind '" +
                              value + "'");
  } else if (key == "workload") {
    if (value == "legacy")
      cfg.workload.kind = workload::WorkloadKind::kLegacyRounds;
    else if (value == "periodic")
      cfg.workload.kind = workload::WorkloadKind::kPeriodic;
    else if (value == "poisson")
      cfg.workload.kind = workload::WorkloadKind::kPoisson;
    else if (value == "burst")
      cfg.workload.kind = workload::WorkloadKind::kBurst;
    else
      throw PreconditionError("campaign key 'workload': unknown kind '" +
                              value + "'");
  } else if (key == "rate") {
    cfg.workload.ratePerSensor = parseDouble(key, value);
    cfg.workload.burst.backgroundRate = cfg.workload.ratePerSensor;
  } else if (key == "queue") {
    cfg.macQueue.capacity = parseUint(key, value);
  } else if (key == "queue-policy") {
    if (value == "drop-tail") cfg.macQueue.policy = net::QueuePolicy::kDropTail;
    else if (value == "drop-oldest")
      cfg.macQueue.policy = net::QueuePolicy::kDropOldest;
    else
      throw PreconditionError("campaign key 'queue-policy': unknown policy '" +
                              value + "'");
  } else if (key == "static") {
    cfg.gatewaysMove = !parseSwitch(key, value);
  } else if (key == "plan") {
    cfg.planGatewayPlacement = parseSwitch(key, value);
  } else if (key == "sleep") {
    cfg.sleep.enabled = parseSwitch(key, value);
  } else if (key == "reliable") {
    cfg.mlr.reliableForwarding = parseSwitch(key, value);
  } else if (key == "lossy") {
    cfg.lossyRadio = parseSwitch(key, value);
  } else if (key == "failover") {
    // Mirrors wmsn_cli's fault-run default: MLR/SecMLR heartbeat failover
    // plus SPR re-discovery backoff, or the legacy ablation when off.
    const bool on = parseSwitch(key, value);
    cfg.mlr.failover = on;
    if (on && cfg.spr.retryBackoff.us == 0)
      cfg.spr.retryBackoff = sim::Time::seconds(0.2);
  } else if (key == "metrics") {
    cfg.obs.metrics = parseSwitch(key, value);
  } else if (key == "perf") {
    cfg.obs.perf = parseSwitch(key, value);
  } else if (key == "trace") {
    cfg.obs.traceSpans = parseSwitch(key, value);
  } else if (key == "trace-sample") {
    const double f = parseDouble(key, value);
    WMSN_REQUIRE_MSG(f > 0.0 && f <= 1.0,
                     "campaign key 'trace-sample': fraction must be in (0,1]");
    cfg.obs.traceSamplePermille =
        static_cast<std::uint32_t>(f * 1000.0 + 0.5);
  } else if (key == "attack") {
    if (value == "none") cfg.attack.kind = attacks::AttackKind::kNone;
    else if (value == "replay") cfg.attack.kind = attacks::AttackKind::kReplay;
    else if (value == "spoof")
      cfg.attack.kind = attacks::AttackKind::kSpoofMove;
    else if (value == "selective")
      cfg.attack.kind = attacks::AttackKind::kSelectiveForward;
    else if (value == "sinkhole")
      cfg.attack.kind = attacks::AttackKind::kSinkhole;
    else if (value == "hello-flood")
      cfg.attack.kind = attacks::AttackKind::kHelloFlood;
    else if (value == "sybil") cfg.attack.kind = attacks::AttackKind::kSybil;
    else if (value == "wormhole")
      cfg.attack.kind = attacks::AttackKind::kWormhole;
    else if (value == "ack-spoof")
      cfg.attack.kind = attacks::AttackKind::kAckSpoof;
    else
      throw PreconditionError("campaign key 'attack': unknown kind '" + value +
                              "'");
  } else if (key == "attackers") {
    cfg.attackerCount = parseUint(key, value);
  } else if (key == "fault") {
    applyFault(cfg, value);
  } else {
    throw PreconditionError("campaign spec: unknown setting key '" + key +
                            "'");
  }
}

std::uint64_t CampaignSpec::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

const Settings* CampaignSpec::findVariant(const std::string& name) const {
  for (const auto& [variantName, settings] : variants)
    if (variantName == name) return &settings;
  return nullptr;
}

CampaignSpec parseSpec(const std::string& text) {
  CampaignSpec spec;
  spec.text = text;

  enum class Section { kBase, kVariant, kSweep };
  Section section = Section::kBase;
  Settings* variant = nullptr;

  std::istringstream in(text);
  std::string raw;
  std::size_t lineNo = 0;
  while (std::getline(in, raw)) {
    ++lineNo;
    const std::size_t hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(lineNo, "unterminated section header");
      const std::string header = trim(line.substr(1, line.size() - 2));
      if (header == "sweep") {
        section = Section::kSweep;
        variant = nullptr;
        continue;
      }
      if (header.rfind("variant", 0) == 0) {
        const std::string name = trim(header.substr(7));
        if (name.empty()) fail(lineNo, "variant section needs a name");
        if (spec.findVariant(name))
          fail(lineNo, "duplicate variant '" + name + "'");
        spec.variants.emplace_back(name, Settings{});
        variant = &spec.variants.back().second;
        section = Section::kVariant;
        continue;
      }
      fail(lineNo, "unknown section '[" + header + "]'");
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(lineNo, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(lineNo, "empty key");
    if (value.empty()) fail(lineNo, "empty value for key '" + key + "'");

    switch (section) {
      case Section::kBase:
        if (key == "name") {
          spec.name = value;
        } else if (key == "seed") {
          spec.seedBase = parseUint(key, value);
        } else if (key == "repeats") {
          spec.repeats = static_cast<std::uint32_t>(parseUint(key, value));
          if (spec.repeats == 0) fail(lineNo, "repeats must be >= 1");
        } else if (key == "compare") {
          spec.compareKey = value;
        } else {
          spec.base.emplace_back(key, value);
        }
        break;
      case Section::kVariant:
        variant->emplace_back(key, value);
        break;
      case Section::kSweep: {
        for (const Axis& axis : spec.axes)
          if (axis.key == key) fail(lineNo, "duplicate axis '" + key + "'");
        Axis axis;
        axis.key = key;
        std::set<std::string> labels;
        for (const std::string& item : splitList(value, ',')) {
          if (item.empty()) fail(lineNo, "empty item in axis '" + key + "'");
          AxisValue av;
          const std::size_t itemEq = item.find('=');
          if (itemEq == std::string::npos) {
            av.label = av.value = item;
          } else {
            av.label = trim(item.substr(0, itemEq));
            av.value = trim(item.substr(itemEq + 1));
            if (av.label.empty() || av.value.empty())
              fail(lineNo, "bad 'label=value' item in axis '" + key + "'");
          }
          if (av.label.find('/') != std::string::npos)
            fail(lineNo, "axis label '" + av.label + "' may not contain '/'");
          if (!labels.insert(av.label).second)
            fail(lineNo, "duplicate label '" + av.label + "' in axis '" + key +
                             "'");
          axis.values.push_back(std::move(av));
        }
        spec.axes.push_back(std::move(axis));
        break;
      }
    }
  }

  WMSN_REQUIRE_MSG(!spec.axes.empty(),
                   "campaign spec declares no [sweep] axes");
  if (spec.compareKey.empty()) {
    for (const char* candidate : {"variant", "protocol"})
      for (const Axis& axis : spec.axes)
        if (spec.compareKey.empty() && axis.key == candidate)
          spec.compareKey = candidate;
  } else {
    const bool known = std::any_of(
        spec.axes.begin(), spec.axes.end(),
        [&](const Axis& a) { return a.key == spec.compareKey; });
    WMSN_REQUIRE_MSG(known, "campaign 'compare' names unswept axis '" +
                                spec.compareKey + "'");
  }
  return spec;
}

CampaignSpec loadSpec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PreconditionError("cannot open campaign spec " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parseSpec(text.str());
}

std::vector<PlannedRun> expand(const CampaignSpec& spec) {
  const std::vector<std::uint64_t> seeds =
      seedSequence(spec.seedBase, spec.repeats);

  core::ScenarioConfig base;
  for (const auto& [key, value] : spec.base) applySetting(base, key, value);

  std::vector<PlannedRun> runs;
  std::set<std::string> seen;
  std::vector<std::size_t> odometer(spec.axes.size(), 0);
  while (true) {
    // Build this cell's config: base settings, then each axis value in
    // declaration order (a variant value expands to its settings bundle).
    core::ScenarioConfig cfg = base;
    std::vector<std::string> labels;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const Axis& axis = spec.axes[a];
      const AxisValue& av = axis.values[odometer[a]];
      labels.push_back(av.label);
      if (axis.key == "variant") {
        const Settings* settings = spec.findVariant(av.value);
        WMSN_REQUIRE_MSG(settings, "campaign sweep names unknown variant '" +
                                       av.value + "'");
        for (const auto& [key, value] : *settings)
          applySetting(cfg, key, value);
      } else {
        applySetting(cfg, axis.key, av.value);
      }
    }
    std::string cell;
    for (const std::string& label : labels) {
      if (!cell.empty()) cell += '/';
      cell += label;
    }
    for (std::uint32_t k = 0; k < spec.repeats; ++k) {
      PlannedRun run;
      run.cell = cell;
      run.axisLabels = labels;
      run.seedIndex = k;
      run.seed = seeds[k];
      run.id = cell + "/s" + std::to_string(run.seed);
      run.config = cfg;
      run.config.seed = run.seed;
      run.config.validate();
      WMSN_REQUIRE_MSG(seen.insert(run.id).second,
                       "campaign grid produced duplicate run id '" + run.id +
                           "'");
      runs.push_back(std::move(run));
    }

    // Advance the odometer, last axis fastest.
    std::size_t a = spec.axes.size();
    while (a > 0) {
      --a;
      if (++odometer[a] < spec.axes[a].values.size()) break;
      odometer[a] = 0;
      if (a == 0) return runs;
    }
  }
}

}  // namespace wmsn::campaign
