#include "campaign/record.hpp"

#include "obs/trace_analyze.hpp"
#include "util/json.hpp"
#include "util/require.hpp"

namespace wmsn::campaign {

namespace {

// Fields separated by US (\x1f). The metrics wire blob rides as the FINAL
// field: it contains its own RS/US/GS framing, so the decoder splits only
// the fixed-count prefix and keeps the tail intact.
constexpr char kSep = '\x1f';
constexpr const char* kTag = "wmsnrec3";
constexpr std::size_t kFixedFields = 43;  // tag..lastScalar, excl. metrics

void appendField(std::string& out, const std::string& field) {
  out += kSep;
  out += field;
}

std::uint64_t parseU64(const std::string& s) {
  WMSN_REQUIRE_MSG(!s.empty() &&
                       s.find_first_not_of("0123456789") == std::string::npos,
                   "malformed run-record integer: '" + s + "'");
  return std::stoull(s);
}

/// Identity strings and error messages must survive the line framing: no
/// newlines, no US. (They are code-authored labels and exception texts.)
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    out += (c == '\n' || c == '\r' || c == kSep) ? ' ' : c;
  return out;
}

}  // namespace

RunRecord makeRecord(const std::string& id, const std::string& cell,
                     std::uint64_t seed, std::uint32_t seedIndex,
                     const core::RunResult& result, double totalSimSeconds) {
  RunRecord r;
  r.id = id;
  r.cell = cell;
  r.seed = seed;
  r.seedIndex = seedIndex;
  r.status = RunRecord::Status::kOk;
  r.pdr = result.deliveryRatio;
  r.meanLatencyMs = result.meanLatencyMs;
  r.p95LatencyMs = result.p95LatencyMs;
  r.meanHops = result.meanHops;
  r.offeredPps = result.offeredPps;
  r.goodputPps = result.goodputPps;
  r.generated = result.generated;
  r.delivered = result.delivered;
  r.queueDrops = result.queueDrops;
  r.macDrops = result.macDrops;
  r.collisions = result.collisions;
  r.controlBytes = result.controlBytes;
  r.dataBytes = result.dataBytes;
  r.roundsCompleted = result.roundsCompleted;
  r.firstDeathObserved = result.firstDeathObserved;
  r.lifetimeS =
      result.firstDeathObserved ? result.firstDeathSeconds : totalSimSeconds;
  r.energyTotalJ = result.sensorEnergy.totalJ;
  r.energyD2 = result.sensorEnergy.varianceD2;
  r.outageEpisodes = result.faults.outageEpisodes;
  r.meanRecoveryLatencyS = result.faults.meanRecoveryLatencyS;
  r.pdrDuringOutage = result.faults.pdrDuringOutage;
  if (result.observations) {
    r.metricsWire = result.observations->metrics.wire();
    if (result.observations->perfCounted) {
      const obs::PerfStats& perf = result.observations->perf;
      const obs::ResourceTelemetry& tel = result.observations->telemetry;
      r.perfCaptured = true;
      r.perfNodeSteps = perf.value(obs::PerfCounter::kNodeSteps);
      r.perfFramesTransmitted =
          perf.value(obs::PerfCounter::kFramesTransmitted);
      r.perfPairsExamined = perf.value(obs::PerfCounter::kPairsExamined);
      r.perfRngDraws = perf.value(obs::PerfCounter::kRngDraws);
      r.perfPeakRssKb = tel.peakRssKb;
      r.perfWallSeconds = tel.wallSeconds;
      r.perfRoundsPerSec = tel.roundsPerSec();
      r.perfFramesPerSec = tel.framesPerSec();
    }
    const auto& spans = result.observations->trace.spans;
    if (!spans.empty()) {
      const obs::TraceAnalysis analysis = obs::analyzeSpans(spans);
      r.traceSpans = spans.size();
      r.traceReadings = analysis.readings;
      r.traceReroutes = analysis.reroutes;
      r.traceDropEvents = analysis.dropEvents;
      r.traceMeanPathHops = analysis.meanPathHops;
    }
  }
  return r;
}

RunRecord makeFailedRecord(const std::string& id, const std::string& cell,
                           std::uint64_t seed, std::uint32_t seedIndex,
                           const std::string& error) {
  RunRecord r;
  r.id = id;
  r.cell = cell;
  r.seed = seed;
  r.seedIndex = seedIndex;
  r.status = RunRecord::Status::kFailed;
  r.error = error;
  return r;
}

std::string encodeRecord(const RunRecord& record) {
  std::string out = kTag;
  appendField(out, sanitize(record.id));
  appendField(out, sanitize(record.cell));
  appendField(out, std::to_string(record.seed));
  appendField(out, std::to_string(record.seedIndex));
  appendField(out, record.ok() ? "ok" : "failed");
  appendField(out, sanitize(record.error));
  appendField(out, wireDouble(record.pdr));
  appendField(out, wireDouble(record.meanLatencyMs));
  appendField(out, wireDouble(record.p95LatencyMs));
  appendField(out, wireDouble(record.meanHops));
  appendField(out, wireDouble(record.offeredPps));
  appendField(out, wireDouble(record.goodputPps));
  appendField(out, std::to_string(record.generated));
  appendField(out, std::to_string(record.delivered));
  appendField(out, std::to_string(record.queueDrops));
  appendField(out, std::to_string(record.macDrops));
  appendField(out, std::to_string(record.collisions));
  appendField(out, std::to_string(record.controlBytes));
  appendField(out, std::to_string(record.dataBytes));
  appendField(out, std::to_string(record.roundsCompleted));
  appendField(out, record.firstDeathObserved ? "1" : "0");
  appendField(out, wireDouble(record.lifetimeS));
  appendField(out, wireDouble(record.energyTotalJ));
  appendField(out, wireDouble(record.energyD2));
  appendField(out, std::to_string(record.outageEpisodes));
  appendField(out, wireDouble(record.meanRecoveryLatencyS));
  appendField(out, wireDouble(record.pdrDuringOutage));
  appendField(out, std::to_string(record.traceSpans));
  appendField(out, std::to_string(record.traceReadings));
  appendField(out, std::to_string(record.traceReroutes));
  appendField(out, std::to_string(record.traceDropEvents));
  appendField(out, wireDouble(record.traceMeanPathHops));
  appendField(out, record.perfCaptured ? "1" : "0");
  appendField(out, std::to_string(record.perfNodeSteps));
  appendField(out, std::to_string(record.perfFramesTransmitted));
  appendField(out, std::to_string(record.perfPairsExamined));
  appendField(out, std::to_string(record.perfRngDraws));
  appendField(out, std::to_string(record.perfPeakRssKb));
  appendField(out, wireDouble(record.perfWallSeconds));
  appendField(out, wireDouble(record.perfRoundsPerSec));
  appendField(out, wireDouble(record.perfFramesPerSec));
  appendField(out, std::to_string(record.metricsWire.size()));
  out += kSep;
  out += record.metricsWire;
  WMSN_REQUIRE_MSG(out.find('\n') == std::string::npos,
                   "run record encoding may not contain newlines");
  return out;
}

RunRecord decodeRecord(const std::string& line) {
  // Split exactly kFixedFields prefix fields; the remainder is the metrics
  // wire blob (whose own separators must not be split).
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i + 1 < kFixedFields; ++i) {
    const std::size_t pos = line.find(kSep, start);
    WMSN_REQUIRE_MSG(pos != std::string::npos,
                     "truncated run record (field " + std::to_string(i) + ")");
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  const std::size_t pos = line.find(kSep, start);
  WMSN_REQUIRE_MSG(pos != std::string::npos, "truncated run record (tail)");
  fields.push_back(line.substr(start, pos - start));
  const std::string tail = line.substr(pos + 1);

  WMSN_REQUIRE_MSG(fields.size() == kFixedFields && fields[0] == kTag,
                   "run record missing '" + std::string(kTag) + "' tag");
  RunRecord r;
  std::size_t f = 1;
  r.id = fields[f++];
  r.cell = fields[f++];
  r.seed = parseU64(fields[f++]);
  r.seedIndex = static_cast<std::uint32_t>(parseU64(fields[f++]));
  const std::string& status = fields[f++];
  WMSN_REQUIRE_MSG(status == "ok" || status == "failed",
                   "run record has unknown status '" + status + "'");
  r.status = status == "ok" ? RunRecord::Status::kOk : RunRecord::Status::kFailed;
  r.error = fields[f++];
  r.pdr = parseWireDouble(fields[f++]);
  r.meanLatencyMs = parseWireDouble(fields[f++]);
  r.p95LatencyMs = parseWireDouble(fields[f++]);
  r.meanHops = parseWireDouble(fields[f++]);
  r.offeredPps = parseWireDouble(fields[f++]);
  r.goodputPps = parseWireDouble(fields[f++]);
  r.generated = parseU64(fields[f++]);
  r.delivered = parseU64(fields[f++]);
  r.queueDrops = parseU64(fields[f++]);
  r.macDrops = parseU64(fields[f++]);
  r.collisions = parseU64(fields[f++]);
  r.controlBytes = parseU64(fields[f++]);
  r.dataBytes = parseU64(fields[f++]);
  r.roundsCompleted = static_cast<std::uint32_t>(parseU64(fields[f++]));
  r.firstDeathObserved = fields[f++] == "1";
  r.lifetimeS = parseWireDouble(fields[f++]);
  r.energyTotalJ = parseWireDouble(fields[f++]);
  r.energyD2 = parseWireDouble(fields[f++]);
  r.outageEpisodes = parseU64(fields[f++]);
  r.meanRecoveryLatencyS = parseWireDouble(fields[f++]);
  r.pdrDuringOutage = parseWireDouble(fields[f++]);
  r.traceSpans = parseU64(fields[f++]);
  r.traceReadings = parseU64(fields[f++]);
  r.traceReroutes = parseU64(fields[f++]);
  r.traceDropEvents = parseU64(fields[f++]);
  r.traceMeanPathHops = parseWireDouble(fields[f++]);
  r.perfCaptured = fields[f++] == "1";
  r.perfNodeSteps = parseU64(fields[f++]);
  r.perfFramesTransmitted = parseU64(fields[f++]);
  r.perfPairsExamined = parseU64(fields[f++]);
  r.perfRngDraws = parseU64(fields[f++]);
  r.perfPeakRssKb = parseU64(fields[f++]);
  r.perfWallSeconds = parseWireDouble(fields[f++]);
  r.perfRoundsPerSec = parseWireDouble(fields[f++]);
  r.perfFramesPerSec = parseWireDouble(fields[f++]);
  const std::uint64_t wireLen = parseU64(fields[f++]);
  WMSN_REQUIRE_MSG(tail.size() == wireLen,
                   "run record metrics blob length mismatch");
  r.metricsWire = tail;
  return r;
}

}  // namespace wmsn::campaign
