#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/geometry.hpp"
#include "util/random.hpp"

namespace wmsn::mesh {

using MeshNodeId = std::uint32_t;
inline constexpr MeshNodeId kNoMeshNode = 0xffffffffu;

/// Roles in the middle tier (§3.2): WMGs are dual-stack sinks of a sensor
/// network AND mesh routers; WMRs "only serve as routers of [the] wireless
/// mesh network"; base stations bridge to the Internet.
enum class MeshNodeKind : std::uint8_t { kWmg, kWmr, kBaseStation };

std::string toString(MeshNodeKind kind);

struct MeshNodeSpec {
  net::Point position;
  MeshNodeKind kind = MeshNodeKind::kWmr;
};

/// A generated mesh-tier layout.
struct MeshTopology {
  std::vector<MeshNodeSpec> nodes;
  double linkRange = 250.0;  ///< 802.11-class range, metres

  std::vector<MeshNodeId> idsOf(MeshNodeKind kind) const;
  bool linked(MeshNodeId a, MeshNodeId b) const;
  /// Every WMG can reach some base station over alive links? (all alive)
  bool connected() const;
};

struct MeshTopologyParams {
  std::size_t wmrCount = 9;
  std::size_t baseStationCount = 1;
  double width = 1000.0;
  double height = 1000.0;
  /// 802.11-class long-haul links with directional antennas; must exceed
  /// the WMR grid spacing (width / sqrt(wmrCount)) for a connected backbone.
  double linkRange = 360.0;
  std::size_t maxAttempts = 200;
};

/// WMRs on a jittered grid over the backhaul area, base stations at the
/// edge, WMGs at the caller-provided positions (the sensor networks'
/// gateway sites, scaled into the backhaul plane by the caller).
MeshTopology makeMeshTopology(const MeshTopologyParams& params,
                              const std::vector<net::Point>& wmgPositions,
                              Rng& rng);

}  // namespace wmsn::mesh
