#pragma once

#include <vector>

#include "mesh/mesh_topology.hpp"

namespace wmsn::mesh {

/// Link-state routing over the mesh tier: every node knows the full (alive)
/// topology — realistic for an 802.11 mesh running OLSR-class routing —
/// and forwards along min-hop paths to the nearest base station.
/// Tables recompute whenever a node dies or recovers, which is the "its
/// neighbors simply find another route" self-healing of §2.1.
class MeshRoutingTable {
 public:
  explicit MeshRoutingTable(const MeshTopology& topology);

  /// Recomputes all routes considering only `alive` nodes.
  void recompute(const std::vector<bool>& alive);

  /// Next hop from `from` toward its nearest base station, or kNoMeshNode if
  /// partitioned.
  MeshNodeId nextHopToBase(MeshNodeId from) const;

  /// Hop count from `from` to its nearest base station (0 for a base
  /// station itself), or kUnreachable.
  std::uint32_t hopsToBase(MeshNodeId from) const;

  /// Next hop from `from` toward arbitrary node `to` (downstream commands,
  /// base → WMG). kNoMeshNode if unreachable.
  MeshNodeId nextHopToward(MeshNodeId from, MeshNodeId to) const;

  static constexpr std::uint32_t kUnreachable = 0xffffffffu;

 private:
  void bfsFrom(const std::vector<MeshNodeId>& sources,
               const std::vector<bool>& alive,
               std::vector<std::uint32_t>& dist,
               std::vector<MeshNodeId>& next) const;

  const MeshTopology& topology_;
  std::vector<bool> alive_;
  // Toward-base field: distance + next hop per node.
  std::vector<std::uint32_t> distToBase_;
  std::vector<MeshNodeId> nextToBase_;
};

}  // namespace wmsn::mesh
