#pragma once

#include <map>

#include "mesh/mesh_network.hpp"
#include "net/sensor_network.hpp"

namespace wmsn::mesh {

/// The full three-tier architecture of §3.2 (Fig. 1): one or more sensor
/// networks whose gateways (WMGs) are simultaneously nodes of the mesh
/// tier, which backhauls every delivered reading to a base station — the
/// "Internet" edge. The stack wires the tiers together: a reading's first
/// arrival at a sensor-tier gateway is injected into the mesh at that
/// gateway's WMG.
class WmsnStack {
 public:
  explicit WmsnStack(MeshNetwork& mesh, std::size_t meshBytesPerReading = 32);

  /// Couples a sensor network to the mesh. `gatewayToWmg` maps sensor-tier
  /// gateway node ids to mesh-tier WMG ids. Replaces the sensor network's
  /// delivery callback.
  void attach(net::SensorNetwork& sensorNetwork,
              std::map<net::NodeId, MeshNodeId> gatewayToWmg);

  /// Kills/restores a WMG in BOTH tiers (the gateway node in the sensor
  /// network and the WMG in the mesh) — the ROBUST experiment's fault
  /// injection.
  void setGatewayAlive(net::SensorNetwork& sensorNetwork,
                       net::NodeId gateway, bool alive);

  // --- end-to-end metrics ---------------------------------------------------
  std::uint64_t readingsAtGateways() const { return atGateways_; }
  std::uint64_t readingsAtBase() const { return atBase_; }
  const SampleStats& endToEndLatency() const { return endToEndLatency_; }

 private:
  struct Attachment {
    net::SensorNetwork* network = nullptr;
    std::map<net::NodeId, MeshNodeId> gatewayToWmg;
  };

  MeshNetwork& mesh_;
  std::size_t meshBytesPerReading_;
  std::vector<Attachment> attachments_;
  std::map<std::uint64_t, sim::Time> sensedAt_;  ///< uid → gateway arrival
  std::uint64_t atGateways_ = 0;
  std::uint64_t atBase_ = 0;
  SampleStats endToEndLatency_;
};

}  // namespace wmsn::mesh
