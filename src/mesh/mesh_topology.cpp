#include "mesh/mesh_topology.hpp"

#include <cmath>
#include <deque>

#include "util/require.hpp"

namespace wmsn::mesh {

std::string toString(MeshNodeKind kind) {
  switch (kind) {
    case MeshNodeKind::kWmg: return "WMG";
    case MeshNodeKind::kWmr: return "WMR";
    case MeshNodeKind::kBaseStation: return "BASE";
  }
  return "?";
}

std::vector<MeshNodeId> MeshTopology::idsOf(MeshNodeKind kind) const {
  std::vector<MeshNodeId> out;
  for (MeshNodeId i = 0; i < nodes.size(); ++i)
    if (nodes[i].kind == kind) out.push_back(i);
  return out;
}

bool MeshTopology::linked(MeshNodeId a, MeshNodeId b) const {
  WMSN_REQUIRE(a < nodes.size() && b < nodes.size());
  if (a == b) return false;
  return net::distanceSq(nodes[a].position, nodes[b].position) <=
         linkRange * linkRange;
}

bool MeshTopology::connected() const {
  if (nodes.empty()) return true;
  const auto bases = idsOf(MeshNodeKind::kBaseStation);
  if (bases.empty()) return false;
  std::vector<bool> reached(nodes.size(), false);
  std::deque<MeshNodeId> frontier(bases.begin(), bases.end());
  for (MeshNodeId b : bases) reached[b] = true;
  while (!frontier.empty()) {
    const MeshNodeId cur = frontier.front();
    frontier.pop_front();
    for (MeshNodeId i = 0; i < nodes.size(); ++i) {
      if (!reached[i] && linked(cur, i)) {
        reached[i] = true;
        frontier.push_back(i);
      }
    }
  }
  for (MeshNodeId i = 0; i < nodes.size(); ++i)
    if (nodes[i].kind == MeshNodeKind::kWmg && !reached[i]) return false;
  return true;
}

MeshTopology makeMeshTopology(const MeshTopologyParams& params,
                              const std::vector<net::Point>& wmgPositions,
                              Rng& rng) {
  for (std::size_t attempt = 0; attempt < params.maxAttempts; ++attempt) {
    MeshTopology topo;
    topo.linkRange = params.linkRange;

    for (const net::Point& p : wmgPositions)
      topo.nodes.push_back(MeshNodeSpec{p, MeshNodeKind::kWmg});

    // WMRs on a jittered grid forming the backbone.
    const auto cols = static_cast<std::size_t>(std::ceil(
        std::sqrt(static_cast<double>(params.wmrCount))));
    const std::size_t rows =
        cols == 0 ? 0 : (params.wmrCount + cols - 1) / cols;
    for (std::size_t i = 0; i < params.wmrCount; ++i) {
      const double cx = (static_cast<double>(i % cols) + 0.5) * params.width /
                        static_cast<double>(cols);
      const double cy = (static_cast<double>(i / cols) + 0.5) * params.height /
                        static_cast<double>(rows);
      topo.nodes.push_back(MeshNodeSpec{
          net::Point{cx + rng.uniform(-0.1, 0.1) * params.width,
                     cy + rng.uniform(-0.1, 0.1) * params.height},
          MeshNodeKind::kWmr});
    }

    // Base stations along the top edge.
    for (std::size_t b = 0; b < params.baseStationCount; ++b) {
      const double x = (static_cast<double>(b) + 0.5) * params.width /
                       static_cast<double>(params.baseStationCount);
      topo.nodes.push_back(MeshNodeSpec{net::Point{x, params.height},
                                        MeshNodeKind::kBaseStation});
    }

    if (topo.connected()) return topo;
  }
  throw PreconditionError(
      "could not generate a connected mesh topology; widen linkRange or add "
      "WMRs");
}

}  // namespace wmsn::mesh
