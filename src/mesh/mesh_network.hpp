#pragma once

#include <functional>
#include <map>

#include "mesh/mesh_routing.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace wmsn::mesh {

struct MeshParams {
  double bitrateBps = 54e6;              ///< 802.11-class backhaul
  sim::Time perHopProcessing = sim::Time::microseconds(500);
  double linkLossProbability = 0.0;      ///< per-hop loss (stress testing)
};

/// A message travelling the mesh tier.
struct MeshMessage {
  std::uint64_t uid = 0;
  std::size_t bytes = 0;
  MeshNodeId ingress = kNoMeshNode;   ///< the WMG it entered at
  sim::Time injectedAt;
  std::uint32_t hops = 0;
};

/// The middle tier: WMGs + WMRs + base stations exchanging frames over
/// 802.11-class links, forwarding sensor readings toward the nearest base
/// station ("Internet"). Node failures trigger link-state recomputation —
/// the self-healing property of §3.1/§7.1.
class MeshNetwork {
 public:
  using BaseDeliveryCallback =
      std::function<void(const MeshMessage&, MeshNodeId base, sim::Time now)>;

  MeshNetwork(sim::Simulator& simulator, MeshTopology topology,
              MeshParams params, Rng rng);
  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  const MeshTopology& topology() const { return topology_; }

  /// Injects a reading at WMG `ingress`; it hops toward the nearest base
  /// station. Delivery (or silent drop on partition) is asynchronous.
  void inject(MeshNodeId ingress, std::uint64_t uid, std::size_t bytes);

  void setBaseDelivery(BaseDeliveryCallback cb) { onBase_ = std::move(cb); }

  /// Fails/restores a mesh node; routing recomputes immediately.
  void setNodeAlive(MeshNodeId id, bool alive);
  bool nodeAlive(MeshNodeId id) const;

  // --- metrics -------------------------------------------------------------
  std::uint64_t injected() const { return injected_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  double deliveryRatio() const;
  const SampleStats& hopStats() const { return hopStats_; }
  const SampleStats& latencyStats() const { return latencyStats_; }
  /// Frames forwarded per node — the backhaul load-balance view.
  const std::map<MeshNodeId, std::uint64_t>& forwardLoad() const {
    return forwardLoad_;
  }

 private:
  void hop(MeshMessage msg, MeshNodeId at);
  sim::Time transferTime(std::size_t bytes) const;

  sim::Simulator& simulator_;
  MeshTopology topology_;
  MeshParams params_;
  Rng rng_;
  MeshRoutingTable routing_;
  std::vector<bool> alive_;
  BaseDeliveryCallback onBase_;

  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  SampleStats hopStats_;
  SampleStats latencyStats_;
  std::map<MeshNodeId, std::uint64_t> forwardLoad_;
};

}  // namespace wmsn::mesh
