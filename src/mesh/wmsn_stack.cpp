#include "mesh/wmsn_stack.hpp"

#include "util/require.hpp"

namespace wmsn::mesh {

WmsnStack::WmsnStack(MeshNetwork& mesh, std::size_t meshBytesPerReading)
    : mesh_(mesh), meshBytesPerReading_(meshBytesPerReading) {
  mesh_.setBaseDelivery([this](const MeshMessage& msg, MeshNodeId /*base*/,
                               sim::Time now) {
    ++atBase_;
    auto it = sensedAt_.find(msg.uid);
    if (it != sensedAt_.end()) {
      // Gateway-ingress → base-station latency; the sensor-tier leg is in
      // the sensor network's own latency stats.
      endToEndLatency_.add((now - it->second).seconds());
      sensedAt_.erase(it);
    }
  });
}

void WmsnStack::attach(net::SensorNetwork& sensorNetwork,
                       std::map<net::NodeId, MeshNodeId> gatewayToWmg) {
  for (const auto& [gw, wmg] : gatewayToWmg) {
    WMSN_REQUIRE_MSG(sensorNetwork.node(gw).isGateway(),
                     "mapping must start at a sensor-tier gateway");
    WMSN_REQUIRE(wmg < mesh_.topology().nodes.size());
    WMSN_REQUIRE_MSG(
        mesh_.topology().nodes[wmg].kind == MeshNodeKind::kWmg,
        "mapping must land on a mesh-tier WMG");
  }
  Attachment attachment;
  attachment.network = &sensorNetwork;
  attachment.gatewayToWmg = std::move(gatewayToWmg);
  attachments_.push_back(attachment);

  sensorNetwork.stats().setDeliveryCallback(
      [this, &sensorNetwork](std::uint64_t uid, net::NodeId /*origin*/,
                             net::NodeId gateway, sim::Time when) {
        ++atGateways_;
        for (const Attachment& a : attachments_) {
          if (a.network != &sensorNetwork) continue;
          auto it = a.gatewayToWmg.find(gateway);
          if (it == a.gatewayToWmg.end()) return;
          sensedAt_[uid] = when;
          mesh_.inject(it->second, uid, meshBytesPerReading_);
          return;
        }
      });
}

void WmsnStack::setGatewayAlive(net::SensorNetwork& sensorNetwork,
                                net::NodeId gateway, bool alive) {
  WMSN_REQUIRE(sensorNetwork.node(gateway).isGateway());
  if (!alive) {
    sensorNetwork.node(gateway).kill(
        sensorNetwork.simulator().now());
  }
  // (Sensor-tier nodes have no "revive"; the mesh side does.)
  for (const Attachment& a : attachments_) {
    if (a.network != &sensorNetwork) continue;
    auto it = a.gatewayToWmg.find(gateway);
    if (it != a.gatewayToWmg.end()) mesh_.setNodeAlive(it->second, alive);
  }
}

}  // namespace wmsn::mesh
