#include "mesh/mesh_network.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace wmsn::mesh {

MeshNetwork::MeshNetwork(sim::Simulator& simulator, MeshTopology topology,
                         MeshParams params, Rng rng)
    : simulator_(simulator),
      topology_(std::move(topology)),
      params_(params),
      rng_(rng),
      routing_(topology_),
      alive_(topology_.nodes.size(), true) {
  WMSN_REQUIRE(params_.bitrateBps > 0.0);
}

sim::Time MeshNetwork::transferTime(std::size_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / params_.bitrateBps;
  return sim::Time::microseconds(std::max<std::int64_t>(
             1, static_cast<std::int64_t>(seconds * 1e6))) +
         params_.perHopProcessing;
}

void MeshNetwork::setNodeAlive(MeshNodeId id, bool alive) {
  WMSN_REQUIRE(id < alive_.size());
  if (alive_[id] == alive) return;
  alive_[id] = alive;
  routing_.recompute(alive_);  // link-state convergence (self-healing)
}

bool MeshNetwork::nodeAlive(MeshNodeId id) const {
  WMSN_REQUIRE(id < alive_.size());
  return alive_[id];
}

void MeshNetwork::inject(MeshNodeId ingress, std::uint64_t uid,
                         std::size_t bytes) {
  WMSN_REQUIRE(ingress < topology_.nodes.size());
  ++injected_;
  if (!alive_[ingress]) {
    ++dropped_;
    return;
  }
  MeshMessage msg;
  msg.uid = uid;
  msg.bytes = bytes;
  msg.ingress = ingress;
  msg.injectedAt = simulator_.now();
  hop(msg, ingress);
}

void MeshNetwork::hop(MeshMessage msg, MeshNodeId at) {
  if (!alive_[at]) {
    ++dropped_;
    return;
  }
  if (topology_.nodes[at].kind == MeshNodeKind::kBaseStation) {
    ++delivered_;
    hopStats_.add(static_cast<double>(msg.hops));
    latencyStats_.add((simulator_.now() - msg.injectedAt).seconds());
    if (onBase_) onBase_(msg, at, simulator_.now());
    return;
  }
  // Per-hop route decision against the CURRENT table: a failure between
  // hops reroutes mid-flight instead of dropping.
  const MeshNodeId next = routing_.nextHopToBase(at);
  if (next == kNoMeshNode) {
    ++dropped_;  // partitioned from every base station
    return;
  }
  // wmsn:fixed-draws — short-circuit on a config constant: either every
  // forward draws once (loss model on) or none ever does (off).
  if (params_.linkLossProbability > 0.0 &&
      rng_.chance(params_.linkLossProbability)) {
    ++dropped_;
    return;
  }
  ++forwardLoad_[at];
  msg.hops += 1;
  simulator_.schedule(transferTime(msg.bytes),
                      [this, msg, next] { hop(msg, next); });
}

double MeshNetwork::deliveryRatio() const {
  if (injected_ == 0) return 1.0;
  return static_cast<double>(delivered_) / static_cast<double>(injected_);
}

}  // namespace wmsn::mesh
