#include "mesh/mesh_routing.hpp"

#include <deque>

#include "util/require.hpp"

namespace wmsn::mesh {

MeshRoutingTable::MeshRoutingTable(const MeshTopology& topology)
    : topology_(topology) {
  recompute(std::vector<bool>(topology.nodes.size(), true));
}

void MeshRoutingTable::bfsFrom(const std::vector<MeshNodeId>& sources,
                               const std::vector<bool>& alive,
                               std::vector<std::uint32_t>& dist,
                               std::vector<MeshNodeId>& next) const {
  const std::size_t n = topology_.nodes.size();
  dist.assign(n, kUnreachable);
  next.assign(n, kNoMeshNode);
  std::deque<MeshNodeId> frontier;
  for (MeshNodeId s : sources) {
    if (s < n && alive[s]) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  // BFS outward from the sources; next[v] points one hop back toward them.
  while (!frontier.empty()) {
    const MeshNodeId cur = frontier.front();
    frontier.pop_front();
    for (MeshNodeId v = 0; v < n; ++v) {
      if (!alive[v] || dist[v] != kUnreachable) continue;
      if (!topology_.linked(cur, v)) continue;
      dist[v] = dist[cur] + 1;
      next[v] = cur;
      frontier.push_back(v);
    }
  }
}

void MeshRoutingTable::recompute(const std::vector<bool>& alive) {
  WMSN_REQUIRE(alive.size() == topology_.nodes.size());
  alive_ = alive;
  bfsFrom(topology_.idsOf(MeshNodeKind::kBaseStation), alive, distToBase_,
          nextToBase_);
}

MeshNodeId MeshRoutingTable::nextHopToBase(MeshNodeId from) const {
  WMSN_REQUIRE(from < nextToBase_.size());
  return nextToBase_[from];
}

std::uint32_t MeshRoutingTable::hopsToBase(MeshNodeId from) const {
  WMSN_REQUIRE(from < distToBase_.size());
  return distToBase_[from];
}

MeshNodeId MeshRoutingTable::nextHopToward(MeshNodeId from,
                                           MeshNodeId to) const {
  WMSN_REQUIRE(from < topology_.nodes.size());
  WMSN_REQUIRE(to < topology_.nodes.size());
  // Per-destination BFS (downstream traffic is rare — commands only).
  std::vector<std::uint32_t> dist;
  std::vector<MeshNodeId> next;
  bfsFrom({to}, alive_, dist, next);
  return next[from];
}

}  // namespace wmsn::mesh
