#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace wmsn {

/// splitmix64 — used to expand a single 64-bit seed into the xoshiro state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ — fast, high-quality, deterministic PRNG. All simulation
/// randomness flows through this engine so experiments reproduce bit-for-bit
/// across platforms (unlike std::mt19937 + std:: distributions, whose
/// distribution implementations are not standardised).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform size_t in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool hasSpareNormal_ = false;
  double spareNormal_ = 0.0;
};

/// Seed of the k-th replica of a multi-seed experiment. THE single
/// definition of how `--seed S --repeat K` (wmsn_cli) and a campaign spec's
/// `seed`/`repeats` expand into per-run seeds — both paths call this, so
/// replica k of base seed S names the same simulation everywhere. Wraps
/// modulo 2^64 like the unsigned arithmetic it replaces.
std::uint64_t replicaSeed(std::uint64_t base, std::uint64_t k);

/// The full replica seed sequence [replicaSeed(base,0) .. replicaSeed(base,
/// count-1)].
std::vector<std::uint64_t> seedSequence(std::uint64_t base,
                                        std::size_t count);

}  // namespace wmsn
