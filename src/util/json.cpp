#include "util/json.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/require.hpp"

namespace wmsn {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string wireDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parseWireDouble(const std::string& s) {
  WMSN_REQUIRE_MSG(!s.empty(), "empty wire double");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  WMSN_REQUIRE_MSG(end == s.c_str() + s.size(),
                   "malformed wire double: '" + s + "'");
  return v;
}

}  // namespace wmsn
