#pragma once

#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wmsn {

/// Aligned ASCII table used by the experiment binaries to print the
/// paper-shaped tables (Fig. 2 hop counts, Table 1 routing tables, ...).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  template <std::integral T>
  static std::string num(T v) {
    return std::to_string(v);
  }

  std::string str() const;
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wmsn
