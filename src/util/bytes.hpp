#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wmsn {

/// Raw octet buffer used for every over-the-air payload. Protocol headers are
/// serialised to bytes (not passed as typed C++ objects) so that (a) packet
/// sizes feeding the energy model are real, and (b) the SecMLR crypto layer
/// encrypts/authenticates actual wire bytes.
using Bytes = std::vector<std::uint8_t>;

/// Little-endian append-only serialiser.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// Length-prefixed (u16) byte string.
  void bytes(std::span<const std::uint8_t> v);
  /// Raw bytes, no length prefix (caller knows the framing).
  void raw(std::span<const std::uint8_t> v);
  void str(const std::string& s);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Little-endian reader over a byte span. Throws PreconditionError on
/// truncated input — a malformed packet must never read out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  Bytes bytes();          ///< length-prefixed counterpart of ByteWriter::bytes
  Bytes raw(std::size_t n);
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex encoding for diagnostics and test fixtures.
std::string toHex(std::span<const std::uint8_t> data);
Bytes fromHex(const std::string& hex);

/// Constant-time comparison (as a real security implementation would use for
/// MAC verification).
bool constantTimeEqual(std::span<const std::uint8_t> a,
                       std::span<const std::uint8_t> b);

}  // namespace wmsn
