#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace wmsn {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  WMSN_REQUIRE(!header_.empty());
}

void TextTable::addRow(std::vector<std::string> row) {
  WMSN_REQUIRE_MSG(row.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto line = [&](char fill) {
    os << '+';
    for (std::size_t w : width) os << std::string(w + 2, fill) << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    os << '\n';
  };
  line('-');
  emit(header_);
  line('=');
  for (const auto& row : rows_) emit(row);
  line('-');
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

}  // namespace wmsn
