#pragma once

#include <stdexcept>
#include <string>

namespace wmsn {

/// Thrown when a documented API precondition is violated. Using an exception
/// (rather than assert) keeps precondition checks active in release builds and
/// lets the test suite exercise them.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void requireFailed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement failed: " + expr +
                          (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace wmsn

/// Check a precondition; throws wmsn::PreconditionError with location info.
#define WMSN_REQUIRE(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::wmsn::detail::requireFailed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define WMSN_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::wmsn::detail::requireFailed(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)
