#pragma once

#include <stdexcept>
#include <string>

namespace wmsn {

/// Thrown when a documented API precondition is violated. Using an exception
/// (rather than assert) keeps precondition checks active in release builds and
/// lets the test suite exercise them.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a WMSN_INVARIANT(...) protocol invariant fails in a build
/// configured with -DWMSN_INVARIANTS=ON. Distinct from PreconditionError:
/// a precondition blames the caller, an invariant blames the protocol
/// implementation itself.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
/// Crash-dump hook fired just before an InvariantError is thrown. Installed
/// by obs::setFlightRecorderPath (a function pointer keeps util/ free of an
/// obs/ dependency); nullptr — the default — is a no-op. Defined in
/// util/invariants.cpp.
extern void (*invariantDumpHook)();

[[noreturn]] inline void requireFailed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement failed: " + expr +
                          (msg.empty() ? "" : " — " + msg));
}

[[noreturn]] inline void invariantFailed(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  if (invariantDumpHook != nullptr) invariantDumpHook();
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": invariant violated: " + expr +
                       (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace wmsn

/// Check a precondition; throws wmsn::PreconditionError with location info.
#define WMSN_REQUIRE(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::wmsn::detail::requireFailed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define WMSN_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::wmsn::detail::requireFailed(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)

/// Protocol-invariant check at a hot point (SPR Property 1, MLR table bounds,
/// energy monotonicity, MAC queue bounds, SecMLR session consistency, …).
/// Active only when the tree is configured with -DWMSN_INVARIANTS=ON; the
/// default build compiles the check out entirely — the expression is parsed
/// in an unevaluated context (so it stays well-formed and its operands count
/// as used) but generates no code, keeping release output byte-identical.
#ifdef WMSN_INVARIANTS
#define WMSN_INVARIANT(expr)                                            \
  do {                                                                  \
    if (!(expr))                                                        \
      ::wmsn::detail::invariantFailed(#expr, __FILE__, __LINE__, "");   \
  } while (false)
#define WMSN_INVARIANT_MSG(expr, msg)                                   \
  do {                                                                  \
    if (!(expr))                                                        \
      ::wmsn::detail::invariantFailed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
#else
#define WMSN_INVARIANT(expr) static_cast<void>(sizeof((expr) ? 1 : 0))
#define WMSN_INVARIANT_MSG(expr, msg) \
  static_cast<void>(sizeof((expr) ? 1 : 0) + sizeof(msg))
#endif
