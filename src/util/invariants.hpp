#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wmsn::inv {

/// Whether the wmsn libraries were compiled with -DWMSN_INVARIANTS=ON, i.e.
/// whether WMSN_INVARIANT(...) checks inside library code are live. Tests use
/// this to decide between asserting that a violation throws (invariants
/// build) and asserting that the same violation is silently compiled out
/// (default build).
bool enabledInBuild();

/// True when no node id appears twice — the well-formedness half of SPR
/// Property 1 (§5.2): any sub-path of a shortest path is itself a shortest
/// path, and shortest paths in a unit-cost graph are always simple.
bool simplePath(const std::vector<std::uint16_t>& path);

/// SPR Property-1 shape check for a stored route or spliced sub-path:
/// simple, at least one node, starting at `self` and terminating at
/// `gateway`. Every entry SPR installs into its routing state must satisfy
/// this — a cycle or a wrong endpoint means the splice rule was misapplied.
bool sprSubPath(const std::vector<std::uint16_t>& path, std::uint16_t self,
                std::uint16_t gateway);

/// MLR §5.3: the routing table accumulates at most one entry per feasible
/// place, so the number of known entries can never exceed |P|.
bool tableWithinPlaces(std::size_t knownEntries, std::size_t places);

/// MLR §5.3 "round by round" accumulation: an already-known entry is never
/// rebuilt from scratch — an update may only keep or improve its hop count.
bool entryMonotone(bool wasKnown, std::uint16_t previousHops,
                   std::uint16_t updatedHops);

/// Battery charge is monotone non-increasing: no draw may leave a node with
/// more energy than it had before.
bool energyMonotone(double beforeJ, double afterJ);

/// A finite MAC transmit queue (capacity > 0) never holds more waiting
/// frames than its capacity; capacity == 0 is the legacy unbounded
/// discipline and exempt.
bool queueWithinCapacity(std::size_t depth, std::size_t capacity);

/// SecMLR session-state consistency (§6.2.4): a valid session must carry a
/// real next hop, a real place, and a path of at least one hop — and the
/// place must be the one its gateway currently occupies.
bool sessionConsistent(bool valid, bool nextHopSet, bool placeSet,
                       std::uint16_t pathHops, bool placeMatchesGateway);

}  // namespace wmsn::inv
