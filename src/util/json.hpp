#pragma once

#include <string>

namespace wmsn {

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
/// Shared by every deterministic JSON emitter in the tree (obs registry,
/// campaign artifacts) so they all agree on the bytes.
std::string jsonEscape(const std::string& s);

/// Locale-independent, stable double formatting for JSON output (%.12g).
/// Short enough to read, precise enough that equal doubles always produce
/// equal bytes — the registry/artifact byte-identity guarantees ride on it.
std::string jsonNumber(double v);

/// Exact round-trip double encoding for wire transport between processes
/// (hexfloat). Human-hostile but lossless; use jsonNumber for documents.
std::string wireDouble(double v);

/// Inverse of wireDouble. Throws PreconditionError on garbage.
double parseWireDouble(const std::string& s);

}  // namespace wmsn
