#pragma once

#include <string>
#include <vector>

namespace wmsn {

/// Minimal SVG document builder — enough to render network topologies and
/// energy heat maps without any external dependency. Coordinates are in
/// user units; the viewBox is set from the constructor bounds.
class SvgWriter {
 public:
  SvgWriter(double width, double height, double margin = 20.0);

  void circle(double cx, double cy, double r, const std::string& fill,
              const std::string& stroke = "none", double strokeWidth = 0.0,
              double opacity = 1.0);
  void rect(double x, double y, double w, double h, const std::string& fill,
            const std::string& stroke = "none", double strokeWidth = 0.0);
  void line(double x1, double y1, double x2, double y2,
            const std::string& stroke, double strokeWidth = 1.0,
            double opacity = 1.0);
  void text(double x, double y, const std::string& content,
            double fontSize = 10.0, const std::string& fill = "#333333");
  /// An X marker (feasible places).
  void cross(double cx, double cy, double arm, const std::string& stroke,
             double strokeWidth = 1.5);

  std::string str() const;
  /// Writes the document to `path`; throws std::runtime_error on failure.
  void writeFile(const std::string& path) const;

  /// Linear green→yellow→red ramp for fraction in [0,1] (0 = good/green).
  static std::string heatColor(double fraction);

 private:
  double width_;
  double height_;
  double margin_;
  std::vector<std::string> elements_;
};

}  // namespace wmsn
