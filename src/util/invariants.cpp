#include "util/invariants.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace wmsn::detail {
void (*invariantDumpHook)() = nullptr;
}  // namespace wmsn::detail

namespace wmsn::inv {

bool enabledInBuild() {
#ifdef WMSN_INVARIANTS
  return true;
#else
  return false;
#endif
}

bool simplePath(const std::vector<std::uint16_t>& path) {
  std::vector<std::uint16_t> sorted = path;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

bool sprSubPath(const std::vector<std::uint16_t>& path, std::uint16_t self,
                std::uint16_t gateway) {
  if (path.empty()) return false;
  if (path.front() != self) return false;
  if (path.back() != gateway) return false;
  return simplePath(path);
}

bool tableWithinPlaces(std::size_t knownEntries, std::size_t places) {
  return knownEntries <= places;
}

bool entryMonotone(bool wasKnown, std::uint16_t previousHops,
                   std::uint16_t updatedHops) {
  return !wasKnown || updatedHops <= previousHops;
}

bool energyMonotone(double beforeJ, double afterJ) {
  return afterJ <= beforeJ;
}

bool queueWithinCapacity(std::size_t depth, std::size_t capacity) {
  return capacity == 0 || depth <= capacity;
}

bool sessionConsistent(bool valid, bool nextHopSet, bool placeSet,
                       std::uint16_t pathHops, bool placeMatchesGateway) {
  if (!valid) return true;  // invalidated sessions carry no guarantees
  return nextHopSet && placeSet && pathHops >= 1 && placeMatchesGateway;
}

}  // namespace wmsn::inv
