#pragma once

#include <cstddef>
#include <vector>

namespace wmsn {

/// Streaming mean/variance via Welford's algorithm — O(1) memory, numerically
/// stable, suitable for per-node energy accounting over millions of packets.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n). The paper's D² (eq. 1) is a
  /// population variance over all sensor nodes.
  double variancePopulation() const;
  /// Sample variance (divide by n-1).
  double varianceSample() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores samples for order statistics (percentiles / median). Use only for
/// bounded sample counts (latency samples per experiment).
class SampleStats {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires nonempty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void sortIfNeeded() const;
};

/// Jain's fairness index: (Σx)² / (n·Σx²); 1.0 = perfectly balanced.
/// Used for the energy-balance experiment (BALANCE).
double jainFairness(const std::vector<double>& xs);

}  // namespace wmsn
