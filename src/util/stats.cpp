#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace wmsn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variancePopulation() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::varianceSample() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variancePopulation()); }

void SampleStats::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleStats::sortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleStats::min() const {
  WMSN_REQUIRE(!samples_.empty());
  sortIfNeeded();
  return samples_.front();
}

double SampleStats::max() const {
  WMSN_REQUIRE(!samples_.empty());
  sortIfNeeded();
  return samples_.back();
}

double SampleStats::percentile(double p) const {
  WMSN_REQUIRE(!samples_.empty());
  WMSN_REQUIRE(p >= 0.0 && p <= 100.0);
  sortIfNeeded();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double jainFairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sumSq = 0.0;
  for (double x : xs) {
    sum += x;
    sumSq += x * x;
  }
  if (sumSq <= 0.0) return 1.0;  // all-zero loads are perfectly fair
  return sum * sum / (static_cast<double>(xs.size()) * sumSq);
}

}  // namespace wmsn
