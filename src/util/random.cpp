#include "util/random.hpp"

#include <cmath>

#include "util/require.hpp"

namespace wmsn {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  WMSN_REQUIRE(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = next();
  std::uint64_t threshold = (~span + 1) % span;  // = 2^64 mod span
  while (x < threshold) x = next();
  return lo + static_cast<std::int64_t>(x % span);
}

std::size_t Rng::index(std::size_t n) {
  WMSN_REQUIRE(n > 0);
  return static_cast<std::size_t>(
      uniformInt(0, static_cast<std::int64_t>(n - 1)));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  WMSN_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  if (hasSpareNormal_) {
    hasSpareNormal_ = false;
    return mean + stddev * spareNormal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s <= 0.0);  // reject the unit-circle rim and origin
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spareNormal_ = v * factor;
  hasSpareNormal_ = true;
  return mean + stddev * u * factor;
}

double Rng::exponential(double rate) {
  WMSN_REQUIRE(rate > 0.0);
  // 1 - uniform01() is in (0, 1], so log() is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

std::uint64_t replicaSeed(std::uint64_t base, std::uint64_t k) {
  // Consecutive seeds, not a hash: `--seed 40 --repeat 3` has always meant
  // seeds {40,41,42}, and the committed BENCH_*.json baselines pin exactly
  // this sequence. Changing the derivation invalidates every recorded
  // trajectory, so it lives here, once.
  return base + k;
}

std::vector<std::uint64_t> seedSequence(std::uint64_t base,
                                        std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t k = 0; k < count; ++k)
    seeds.push_back(replicaSeed(base, k));
  return seeds;
}

}  // namespace wmsn
