#pragma once

#include <string>
#include <vector>

namespace wmsn {

/// Minimal RFC-4180-style CSV writer for experiment output. Fields containing
/// commas, quotes or newlines are quoted.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);

  std::string str() const;
  /// Writes the accumulated table to `path`. Throws std::runtime_error on
  /// I/O failure.
  void writeFile(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  static std::string escape(const std::string& field);
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wmsn
