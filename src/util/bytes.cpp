#include "util/bytes.hpp"

#include <bit>
#include <cstring>

#include "util/require.hpp"

namespace wmsn {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> v) {
  WMSN_REQUIRE_MSG(v.size() <= 0xffff, "length-prefixed field too long");
  u16(static_cast<std::uint16_t>(v.size()));
  raw(v);
}

void ByteWriter::raw(std::span<const std::uint8_t> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void ByteWriter::str(const std::string& s) {
  bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void ByteReader::need(std::size_t n) const {
  WMSN_REQUIRE_MSG(remaining() >= n, "truncated packet");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

Bytes ByteReader::bytes() {
  const std::size_t n = u16();
  return raw(n);
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const Bytes b = bytes();
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string toHex(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

Bytes fromHex(const std::string& hex) {
  WMSN_REQUIRE_MSG(hex.size() % 2 == 0, "odd-length hex string");
  auto nibble = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
    throw PreconditionError("invalid hex digit");
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(nibble(hex[i]) << 4) |
                  nibble(hex[i + 1]));
  return out;
}

bool constantTimeEqual(std::span<const std::uint8_t> a,
                       std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace wmsn
