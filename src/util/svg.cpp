#include "util/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/require.hpp"

namespace wmsn {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

SvgWriter::SvgWriter(double width, double height, double margin)
    : width_(width), height_(height), margin_(margin) {
  WMSN_REQUIRE(width > 0 && height > 0 && margin >= 0);
}

void SvgWriter::circle(double cx, double cy, double r,
                       const std::string& fill, const std::string& stroke,
                       double strokeWidth, double opacity) {
  std::ostringstream os;
  os << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"" << r
     << "\" fill=\"" << escape(fill) << "\"";
  if (stroke != "none")
    os << " stroke=\"" << escape(stroke) << "\" stroke-width=\""
       << strokeWidth << "\"";
  if (opacity < 1.0) os << " opacity=\"" << opacity << "\"";
  os << "/>";
  elements_.push_back(os.str());
}

void SvgWriter::rect(double x, double y, double w, double h,
                     const std::string& fill, const std::string& stroke,
                     double strokeWidth) {
  std::ostringstream os;
  os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
     << "\" height=\"" << h << "\" fill=\"" << escape(fill) << "\"";
  if (stroke != "none")
    os << " stroke=\"" << escape(stroke) << "\" stroke-width=\""
       << strokeWidth << "\"";
  os << "/>";
  elements_.push_back(os.str());
}

void SvgWriter::line(double x1, double y1, double x2, double y2,
                     const std::string& stroke, double strokeWidth,
                     double opacity) {
  std::ostringstream os;
  os << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
     << "\" y2=\"" << y2 << "\" stroke=\"" << escape(stroke)
     << "\" stroke-width=\"" << strokeWidth << "\"";
  if (opacity < 1.0) os << " opacity=\"" << opacity << "\"";
  os << "/>";
  elements_.push_back(os.str());
}

void SvgWriter::text(double x, double y, const std::string& content,
                     double fontSize, const std::string& fill) {
  std::ostringstream os;
  os << "<text x=\"" << x << "\" y=\"" << y << "\" font-size=\"" << fontSize
     << "\" font-family=\"sans-serif\" fill=\"" << escape(fill) << "\">"
     << escape(content) << "</text>";
  elements_.push_back(os.str());
}

void SvgWriter::cross(double cx, double cy, double arm,
                      const std::string& stroke, double strokeWidth) {
  line(cx - arm, cy - arm, cx + arm, cy + arm, stroke, strokeWidth);
  line(cx - arm, cy + arm, cx + arm, cy - arm, stroke, strokeWidth);
}

std::string SvgWriter::heatColor(double fraction) {
  const double f = std::clamp(fraction, 0.0, 1.0);
  // 0 → green (#2ca25f), 0.5 → yellow (#ffd92f), 1 → red (#d7301f).
  auto lerp = [](int a, int b, double t) {
    return static_cast<int>(std::lround(a + (b - a) * t));
  };
  int r, g, b;
  if (f < 0.5) {
    const double t = f * 2.0;
    r = lerp(0x2c, 0xff, t);
    g = lerp(0xa2, 0xd9, t);
    b = lerp(0x5f, 0x2f, t);
  } else {
    const double t = (f - 0.5) * 2.0;
    r = lerp(0xff, 0xd7, t);
    g = lerp(0xd9, 0x30, t);
    b = lerp(0x2f, 0x1f, t);
  }
  char buf[8];
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x", r, g, b);
  return buf;
}

std::string SvgWriter::str() const {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\""
     << -margin_ << " " << -margin_ << " " << width_ + 2 * margin_ << " "
     << height_ + 2 * margin_ << "\">\n"
     << "<rect x=\"" << -margin_ << "\" y=\"" << -margin_ << "\" width=\""
     << width_ + 2 * margin_ << "\" height=\"" << height_ + 2 * margin_
     << "\" fill=\"#fcfcf8\"/>\n";
  for (const std::string& element : elements_) os << element << "\n";
  os << "</svg>\n";
  return os.str();
}

void SvgWriter::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open SVG output file: " + path);
  out << str();
  if (!out) throw std::runtime_error("failed writing SVG file: " + path);
}

}  // namespace wmsn
