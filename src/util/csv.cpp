#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/require.hpp"

namespace wmsn {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  WMSN_REQUIRE(!header_.empty());
}

void CsvWriter::addRow(std::vector<std::string> row) {
  WMSN_REQUIRE_MSG(row.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open CSV output file: " + path);
  out << str();
  if (!out) throw std::runtime_error("failed writing CSV output file: " + path);
}

}  // namespace wmsn
