#pragma once

#include "fault/plan.hpp"
#include "util/random.hpp"

namespace wmsn::fault {

/// One receiver's Gilbert–Elliott channel: a two-state Markov chain stepped
/// once per frame. Owns its own RNG stream so enabling burst loss never
/// perturbs the medium's existing delivery draws — runs with the model off
/// stay byte-identical to runs that never had it.
class GilbertElliottChain {
 public:
  GilbertElliottChain(GilbertElliottParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// Advances the chain one frame and returns true when that frame is lost.
  // wmsn:fixed-draws — exactly two draws per step() on every path: one
  // state-transition Bernoulli (whichever of the two branches runs) and
  // one loss draw. The chain state is pure simulation state.
  bool step() {
    if (bad_) {
      if (rng_.chance(params_.pBadToGood)) bad_ = false;
    } else {
      if (rng_.chance(params_.pGoodToBad)) bad_ = true;
    }
    const double loss = bad_ ? params_.lossBad : params_.lossGood;
    return rng_.chance(loss);
  }

  bool inBadState() const { return bad_; }

 private:
  GilbertElliottParams params_;
  Rng rng_;
  bool bad_ = false;  ///< chains start in the good state
};

}  // namespace wmsn::fault
