#include "fault/plan.hpp"

#include <cctype>

#include "util/require.hpp"

namespace wmsn::fault {

std::string toString(FaultTargetKind kind) {
  switch (kind) {
    case FaultTargetKind::kSensor: return "sensor";
    case FaultTargetKind::kGateway: return "gateway";
  }
  return "unknown";
}

double GilbertElliottParams::steadyStateLoss() const {
  const double denom = pGoodToBad + pBadToGood;
  if (denom <= 0.0) return lossGood;
  const double piBad = pGoodToBad / denom;
  return piBad * lossBad + (1.0 - piBad) * lossGood;
}

namespace {

FaultEvent parseEvent(const std::string& item) {
  FaultEvent event;
  std::size_t pos = 0;
  if (item.rfind("gw", 0) == 0) {
    event.target = FaultTargetKind::kGateway;
    pos = 2;
  } else if (!item.empty() && item[0] == 's') {
    event.target = FaultTargetKind::kSensor;
    pos = 1;
  } else {
    throw PreconditionError("fault event '" + item +
                            "': expected 's<n>' or 'gw<n>' target");
  }

  std::size_t digits = 0;
  while (pos + digits < item.size() &&
         std::isdigit(static_cast<unsigned char>(item[pos + digits])))
    ++digits;
  WMSN_REQUIRE_MSG(digits > 0,
                   "fault event '" + item + "': missing target ordinal");
  event.ordinal = std::stoul(item.substr(pos, digits));
  pos += digits;

  if (pos < item.size() && item[pos] == '+') {
    event.recover = true;
    ++pos;
  }
  WMSN_REQUIRE_MSG(pos < item.size() && item[pos] == '@',
                   "fault event '" + item + "': expected '@<round>'");
  ++pos;
  WMSN_REQUIRE_MSG(pos < item.size(),
                   "fault event '" + item + "': missing round");
  for (std::size_t i = pos; i < item.size(); ++i)
    WMSN_REQUIRE_MSG(std::isdigit(static_cast<unsigned char>(item[i])),
                     "fault event '" + item + "': malformed round");
  event.round = static_cast<std::uint32_t>(std::stoul(item.substr(pos)));
  return event;
}

}  // namespace

std::vector<FaultEvent> parseFaultPlan(const std::string& spec) {
  std::vector<FaultEvent> events;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    if (!item.empty()) events.push_back(parseEvent(item));
    if (end == spec.size()) break;
    start = end + 1;
  }
  WMSN_REQUIRE_MSG(!events.empty(),
                   "fault plan '" + spec + "' contains no events");
  return events;
}

}  // namespace wmsn::fault
