#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wmsn::fault {

/// What a fault event targets.
enum class FaultTargetKind : std::uint8_t {
  kSensor,   ///< a sensor node, by ordinal into the sensor list
  kGateway,  ///< a WMG, by ordinal into the gateway list
};

std::string toString(FaultTargetKind kind);

/// One scheduled fault action, applied at a round boundary. `recover`
/// distinguishes a crash from the matching repair; a failed node neither
/// transmits nor receives until it recovers (Node::setFailed), unlike a
/// battery death, which is permanent.
struct FaultEvent {
  std::uint32_t round = 0;
  FaultTargetKind target = FaultTargetKind::kSensor;
  std::size_t ordinal = 0;  ///< index into the sensor/gateway list
  bool recover = false;     ///< false = fail, true = recover
};

/// Two-state Gilbert–Elliott burst-loss model layered on the medium: the
/// channel sits in a good or bad state per receiver, flipping with the
/// given transition probabilities once per frame reception. Steady-state
/// loss = πB·lossBad + πG·lossGood with πB = pGoodToBad/(pGoodToBad+pBadToGood).
struct GilbertElliottParams {
  bool enabled = false;
  double pGoodToBad = 0.05;  ///< P(good→bad) per frame
  double pBadToGood = 0.25;  ///< P(bad→good) per frame
  double lossGood = 0.0;     ///< extra loss probability in the good state
  double lossBad = 1.0;      ///< loss probability in the bad state

  double steadyStateLoss() const;
};

/// A deterministic fault schedule: explicit per-round events plus optional
/// seeded-random crash/recover processes (geometric with the given mean,
/// i.e. per-round fail probability 1/mtbf and recover probability 1/mttr).
/// mtbf 0 disables the random process; mttr 0 makes random crashes
/// permanent. Everything is driven from the run's own seed, so a plan
/// replays byte-identically for any --threads value.
struct FaultPlan {
  std::vector<FaultEvent> events;

  std::uint32_t sensorMtbfRounds = 0;   ///< mean rounds between sensor crashes
  std::uint32_t sensorMttrRounds = 0;   ///< mean rounds to sensor repair
  std::uint32_t gatewayMtbfRounds = 0;  ///< mean rounds between WMG failures
  std::uint32_t gatewayMttrRounds = 0;  ///< mean rounds to WMG repair

  GilbertElliottParams linkLoss;

  bool any() const {
    return !events.empty() || sensorMtbfRounds > 0 || gatewayMtbfRounds > 0 ||
           linkLoss.enabled;
  }
};

/// Parses the wmsn_cli --fault-plan syntax: a comma-separated event list
/// where each item is `<target><ordinal>[+]@<round>` — `s` targets a sensor,
/// `gw` a gateway, and a trailing `+` before the `@` marks a recovery.
/// Examples: "gw0@3" (gateway 0 fails entering round 3),
/// "gw0+@6" (it recovers entering round 6), "s17@4,s17+@5".
/// Throws PreconditionError on malformed input.
std::vector<FaultEvent> parseFaultPlan(const std::string& spec);

}  // namespace wmsn::fault
