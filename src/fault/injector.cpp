#include "fault/injector.hpp"

#include "util/require.hpp"

namespace wmsn::fault {

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t sensorCount,
                             std::size_t gatewayCount, std::uint64_t seed)
    : plan_(plan),
      sensorDown_(sensorCount, false),
      gatewayDown_(gatewayCount, false),
      rng_(seed) {
  for (const FaultEvent& e : plan_.events) {
    const std::size_t limit = e.target == FaultTargetKind::kSensor
                                  ? sensorCount
                                  : gatewayCount;
    WMSN_REQUIRE_MSG(e.ordinal < limit,
                     "fault event targets " + toString(e.target) + " " +
                         std::to_string(e.ordinal) + " but only " +
                         std::to_string(limit) + " exist");
  }
}

bool FaultInjector::apply(FaultEvent event, std::vector<FaultEvent>& out) {
  auto& down = event.target == FaultTargetKind::kSensor ? sensorDown_
                                                        : gatewayDown_;
  if (down[event.ordinal] == !event.recover) return false;  // no-op
  down[event.ordinal] = !event.recover;

  if (event.target == FaultTargetKind::kSensor) {
    if (event.recover) {
      --failedSensors_;
      ++sensorRecoveries_;
    } else {
      ++failedSensors_;
      ++sensorCrashes_;
    }
  } else {
    if (event.recover) {
      --failedGateways_;
      ++gatewayRecoveries_;
    } else {
      ++failedGateways_;
      ++gatewayFailures_;
    }
  }
  out.push_back(event);
  return true;
}

// wmsn:fixed-draws — the MTBF/MTTR Bernoulli blocks below are gated on the
// round number and immutable plan constants only; one draw per node per
// round either way, so the stream length is a function of topology alone.
std::vector<FaultEvent> FaultInjector::actionsAtRound(std::uint32_t round) {
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : plan_.events)
    if (e.round == round) apply(e, out);

  // The random processes hold off until round 1 so every run starts from a
  // healthy network (round 0 is where the initial announcements flood).
  // One Bernoulli draw per node per round either way, so the RNG stream
  // length is a function of the topology alone — replay stays exact.
  if (round >= 1 && plan_.sensorMtbfRounds > 0) {
    const double pFail = 1.0 / plan_.sensorMtbfRounds;
    const double pRecover =
        plan_.sensorMttrRounds > 0 ? 1.0 / plan_.sensorMttrRounds : 0.0;
    for (std::size_t s = 0; s < sensorDown_.size(); ++s) {
      const bool flip = rng_.chance(sensorDown_[s] ? pRecover : pFail);
      if (!flip) continue;
      apply(FaultEvent{round, FaultTargetKind::kSensor, s, sensorDown_[s]},
            out);
    }
  }
  if (round >= 1 && plan_.gatewayMtbfRounds > 0) {
    const double pFail = 1.0 / plan_.gatewayMtbfRounds;
    const double pRecover =
        plan_.gatewayMttrRounds > 0 ? 1.0 / plan_.gatewayMttrRounds : 0.0;
    for (std::size_t g = 0; g < gatewayDown_.size(); ++g) {
      const bool flip = rng_.chance(gatewayDown_[g] ? pRecover : pFail);
      if (!flip) continue;
      apply(FaultEvent{round, FaultTargetKind::kGateway, g, gatewayDown_[g]},
            out);
    }
  }
  return out;
}

}  // namespace wmsn::fault
