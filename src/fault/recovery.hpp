#pragma once

#include <cstdint>
#include <vector>

namespace wmsn::fault {

/// One outage episode: opened when fault injection hits a healthy network,
/// closed at the first subsequent round whose delivery ratio climbs back to
/// `recoveryFraction` of the pre-outage baseline. A network that re-homes
/// traffic fast enough to keep PDR up "recovers" in zero rounds even while
/// the failed node stays down — recovery is about service, not hardware.
struct OutageEpisode {
  std::uint32_t openRound = 0;
  std::uint32_t closeRound = 0;  ///< meaningful only when recovered
  bool recovered = false;
  std::uint64_t generatedDuring = 0;  ///< rounds [open, close), or to end
  std::uint64_t deliveredDuring = 0;

  std::uint32_t latencyRounds() const { return closeRound - openRound; }
};

/// Observes the per-round delivery ratio around injected faults and turns
/// it into recovery latencies and a PDR-during-outage figure. Pure
/// observation — it never feeds back into the simulation, so attaching it
/// cannot change a run's results.
class RecoveryTracker {
 public:
  RecoveryTracker(double recoveryFraction, double roundSeconds)
      : recoveryFraction_(recoveryFraction), roundSeconds_(roundSeconds) {}

  /// Feed each completed round, in order: the round's generated/delivered
  /// deltas and how many fresh failures were injected at its boundary.
  void onRoundEnd(std::uint32_t round, std::uint64_t generated,
                  std::uint64_t delivered, std::size_t newFailures);

  const std::vector<OutageEpisode>& episodes() const { return episodes_; }
  std::size_t unrecovered() const;
  /// Recovery latencies of closed episodes, in seconds (latencyRounds ×
  /// round duration).
  std::vector<double> recoveryLatenciesSeconds() const;
  double meanRecoveryLatencySeconds() const;
  /// Aggregate delivered/generated over all open-outage rounds; 1.0 when no
  /// outage round elapsed.
  double pdrDuringOutage() const;

 private:
  double baseline() const;

  double recoveryFraction_;
  double roundSeconds_;
  double healthyPdrSum_ = 0.0;
  std::uint32_t healthyRounds_ = 0;
  bool open_ = false;
  std::vector<OutageEpisode> episodes_;
};

}  // namespace wmsn::fault
