#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "util/random.hpp"

namespace wmsn::fault {

/// Resolves a FaultPlan into the concrete crash/recover actions for each
/// round: scheduled events first (in plan order), then the seeded-random
/// MTBF/MTTR processes in node-ordinal order. Purely deterministic — the
/// random stream depends only on (seed, round sequence), never on wall
/// clock or thread interleaving — and it filters no-ops (failing a node
/// that is already down, recovering one that is up), so downstream
/// counters reflect real state transitions.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::size_t sensorCount,
                std::size_t gatewayCount, std::uint64_t seed);

  /// The actions to apply entering `round`. Call once per round, in round
  /// order — the RNG stream and the tracked up/down state advance with each
  /// call.
  std::vector<FaultEvent> actionsAtRound(std::uint32_t round);

  /// Currently-failed node counts (scheduled + random, post-filter).
  std::size_t failedSensors() const { return failedSensors_; }
  std::size_t failedGateways() const { return failedGateways_; }

  // Lifetime transition counters.
  std::uint64_t sensorCrashes() const { return sensorCrashes_; }
  std::uint64_t sensorRecoveries() const { return sensorRecoveries_; }
  std::uint64_t gatewayFailures() const { return gatewayFailures_; }
  std::uint64_t gatewayRecoveries() const { return gatewayRecoveries_; }

 private:
  bool apply(FaultEvent event, std::vector<FaultEvent>& out);

  FaultPlan plan_;
  std::vector<bool> sensorDown_;
  std::vector<bool> gatewayDown_;
  Rng rng_;
  std::size_t failedSensors_ = 0;
  std::size_t failedGateways_ = 0;
  std::uint64_t sensorCrashes_ = 0;
  std::uint64_t sensorRecoveries_ = 0;
  std::uint64_t gatewayFailures_ = 0;
  std::uint64_t gatewayRecoveries_ = 0;
};

}  // namespace wmsn::fault
