#include "fault/recovery.hpp"

namespace wmsn::fault {

double RecoveryTracker::baseline() const {
  // Rounds observed before any outage define "healthy"; a run whose very
  // first round already carries faults falls back to the ideal 1.0.
  return healthyRounds_ > 0 ? healthyPdrSum_ / healthyRounds_ : 1.0;
}

void RecoveryTracker::onRoundEnd(std::uint32_t round, std::uint64_t generated,
                                 std::uint64_t delivered,
                                 std::size_t newFailures) {
  const double pdr = generated > 0
                         ? static_cast<double>(delivered) /
                               static_cast<double>(generated)
                         : 1.0;

  if (!open_ && newFailures > 0) {
    open_ = true;
    OutageEpisode episode;
    episode.openRound = round;
    episodes_.push_back(episode);
  }

  if (open_) {
    OutageEpisode& episode = episodes_.back();
    if (pdr >= recoveryFraction_ * baseline()) {
      episode.recovered = true;
      episode.closeRound = round;
      open_ = false;
    } else {
      episode.generatedDuring += generated;
      episode.deliveredDuring += delivered;
    }
    return;
  }

  healthyPdrSum_ += pdr;
  ++healthyRounds_;
}

std::size_t RecoveryTracker::unrecovered() const {
  std::size_t n = 0;
  for (const OutageEpisode& e : episodes_)
    if (!e.recovered) ++n;
  return n;
}

std::vector<double> RecoveryTracker::recoveryLatenciesSeconds() const {
  std::vector<double> out;
  for (const OutageEpisode& e : episodes_)
    if (e.recovered) out.push_back(e.latencyRounds() * roundSeconds_);
  return out;
}

double RecoveryTracker::meanRecoveryLatencySeconds() const {
  const auto latencies = recoveryLatenciesSeconds();
  if (latencies.empty()) return 0.0;
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  return sum / static_cast<double>(latencies.size());
}

double RecoveryTracker::pdrDuringOutage() const {
  std::uint64_t generated = 0, delivered = 0;
  for (const OutageEpisode& e : episodes_) {
    generated += e.generatedDuring;
    delivered += e.deliveredDuring;
  }
  if (generated == 0) return 1.0;
  return static_cast<double>(delivered) / static_cast<double>(generated);
}

}  // namespace wmsn::fault
