#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/medium.hpp"
#include "net/metrics.hpp"
#include "net/node.hpp"
#include "net/radio.hpp"
#include "obs/mux.hpp"
#include "obs/packet_trace.hpp"
#include "sim/node_state.hpp"
#include "sim/simulator.hpp"

namespace wmsn::net {

enum class MacKind : std::uint8_t { kIdeal, kCsma };

struct SensorNetworkParams {
  EnergyParams energy;
  MediumParams medium;
  MacKind mac = MacKind::kCsma;
  CsmaParams csma;
  /// Finite per-node transmit queue (capacity 0 = legacy unbounded; see
  /// net::QueueParams). Only meaningful under the CSMA MAC.
  QueueParams queue;
  /// Random forwarding delay protocols apply before re-broadcasting a flood
  /// (storm suppression). Zero on an ideal channel, where it would only
  /// perturb BFS ordering.
  sim::Time floodJitter = sim::Time::milliseconds(30);
  bool gatewaysBatteryLimited = false;  ///< §4.1: forest-monitoring variant
  std::uint64_t seed = 1;
  /// Causal trace pipeline (obs/packet_trace.hpp). The tracer itself is
  /// always constructed — the flight-recorder ring is always-on — but spans
  /// are only retained for export when retainSpans is set.
  obs::PacketTraceOptions trace;
};

/// One low-tier wireless sensor network: the node population, the shared
/// radio medium, and traffic/energy accounting. Routing protocols attach per
/// node via receive handlers and the send API.
class SensorNetwork final : public MediumHost {
 public:
  SensorNetwork(sim::Simulator& simulator, std::unique_ptr<RadioModel> radio,
                SensorNetworkParams params);

  // --- population -------------------------------------------------------
  NodeId addSensor(Point position);
  NodeId addGateway(Point position);

  std::size_t size() const { return nodes_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  const std::vector<NodeId>& sensorIds() const { return sensorIds_; }
  const std::vector<NodeId>& gatewayIds() const { return gatewayIds_; }

  /// Alive nodes currently within radio range of `id` (excluding itself).
  /// Served from the spatial grid: candidates come from the cells the radio
  /// disk touches, then the exact RadioModel::linked predicate filters them.
  std::vector<NodeId> neighborsOf(NodeId id) const;

  /// The active set (sorted ascending): nodes that are neither battery-dead
  /// nor fault-crashed. The round loop steps exactly these — corpses cost
  /// zero node-steps and zero RNG draws.
  const std::vector<NodeId>& activeNodeIds() const {
    return block_.activeIds();
  }

  /// The struct-of-arrays hot state (positions, flags, spatial grid) the
  /// kernel sweeps. Exposed read-only for diagnostics and tests.
  const sim::NodeStateBlock& hotState() const { return block_; }

  /// True if every alive node can reach some gateway over alive nodes.
  bool allSensorsCovered() const;

  std::size_t aliveSensorCount() const;
  /// Simulation time of the first sensor death, if any — the paper's network
  /// lifetime definition (§5.3).
  std::optional<sim::Time> firstSensorDeathTime() const;

  /// Nodes currently crashed by fault injection (Node::failed()); disjoint
  /// from battery deaths, which are permanent.
  std::size_t failedSensorCount() const {
    std::size_t count = 0;
    for (const NodeId s : sensorIds_)
      if (nodes_[s]->failed()) ++count;
    return count;
  }
  std::size_t failedGatewayCount() const {
    std::size_t count = 0;
    for (const NodeId g : gatewayIds_)
      if (nodes_[g]->failed()) ++count;
    return count;
  }

  // --- protocol-facing services ------------------------------------------
  sim::Simulator& simulator() { return simulator_; }
  Medium& medium() { return *medium_; }
  const RadioModel& radio() const { return *radio_; }
  const EnergyParams& energyParams() const { return params_.energy; }
  TrafficStats& stats() { return stats_; }
  const TrafficStats& stats() const { return stats_; }
  Rng& rng() { return rng_; }

  std::uint64_t nextPacketUid() { return ++uidCounter_; }
  sim::Time floodJitter() const { return params_.floodJitter; }

  /// The causal trace pipeline: every packet-lifecycle hot point emits here
  /// via WMSN_TRACE. Never null — the flight-recorder ring is always-on;
  /// retention/sampling is governed by SensorNetworkParams::trace.
  obs::PacketTracer* tracer() { return &tracer_; }

  /// Per-frame observers for tracing: invoked with transmit=true when a
  /// node hands a frame to its MAC, and transmit=false when a frame is
  /// delivered to a node's protocol. Any number of named consumers (trace
  /// sinks, viz hooks, workload probes) attach side by side; attaching the
  /// same name twice REQUIRE-fails — the old single-slot setter silently
  /// evicted whoever attached first.
  using FrameObserver =
      std::function<void(const Packet&, NodeId node, bool transmit)>;
  using FrameObserverMux = obs::ObserverMux<const Packet&, NodeId, bool>;
  void attachFrameObserver(const std::string& name, FrameObserver observer) {
    // The documented wrapper entry point: it forwards the consumer's own
    // literal name. wmsn-lint: allow(observer-contract)
    frameObservers_.attach(name, std::move(observer));
  }
  bool detachFrameObserver(const std::string& name) {
    return frameObservers_.detach(name);
  }
  const FrameObserverMux& frameObservers() const { return frameObservers_; }

  /// Sends through the node's MAC (applies CSMA discipline if configured).
  void sendFrom(NodeId id, Packet packet);
  /// Power-amplified point-to-point send (LEACH cluster-head long haul).
  void sendLongRangeFrom(NodeId from, NodeId to, Packet packet);

  /// Charges a node's CPU budget for `bytes` of cryptographic processing
  /// (SecMLR cost accounting).
  void chargeCrypto(NodeId id, std::size_t bytes);

  /// Moves a gateway (round boundary, §5.1). Requires a gateway id.
  void setGatewayPosition(NodeId id, Point position);

  // --- MediumHost ---------------------------------------------------------
  std::size_t nodeCount() const override { return nodes_.size(); }
  Point positionOf(NodeId id) const override;
  bool aliveOf(NodeId id) const override;
  bool listeningOf(NodeId id) const override;
  void chargeTx(NodeId id, double joules) override;
  void chargeRx(NodeId id, double joules) override;
  void deliverFrame(NodeId to, const Packet& packet, NodeId from) override;
  void noteTransmit(PacketKind kind, std::size_t bytes) override;
  void noteCollision() override { stats_.onCollision(); }

 private:
  NodeId addNode(NodeKind kind, Point position);
  void handleDeath(NodeId id);

  sim::Simulator& simulator_;
  std::unique_ptr<RadioModel> radio_;
  SensorNetworkParams params_;
  Rng rng_;
  /// Hot per-node state (position, liveness flags, grid, active set) in
  /// struct-of-arrays layout; nodes_ entries are views over it.
  sim::NodeStateBlock block_;
  std::vector<Battery> batteries_;
  std::unique_ptr<Medium> medium_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<NodeId> sensorIds_;
  std::vector<NodeId> gatewayIds_;
  mutable std::vector<std::uint32_t> queryScratch_;
  TrafficStats stats_;
  obs::PacketTracer tracer_;
  std::uint64_t uidCounter_ = 0;
  FrameObserverMux frameObservers_;
};

}  // namespace wmsn::net
