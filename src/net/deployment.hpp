#pragma once

#include <vector>

#include "net/geometry.hpp"
#include "util/random.hpp"

namespace wmsn::net {

/// A generated node placement: sensor positions plus candidate gateway
/// positions. Generators retry until the layout is connected under the given
/// radio range, so experiments never start from a partitioned network.
struct Deployment {
  std::vector<Point> sensors;
  std::vector<Point> gateways;
  double width = 0.0;
  double height = 0.0;
};

struct DeploymentParams {
  std::size_t sensorCount = 100;
  std::size_t gatewayCount = 3;
  double width = 200.0;
  double height = 200.0;
  double radioRange = 30.0;
  std::size_t maxAttempts = 200;  ///< connectivity retries before giving up
};

/// Uniform random sensors; gateways placed on a jittered sub-grid so they
/// start spread out (the deployment-model principle of §4.1).
Deployment uniformDeployment(const DeploymentParams& params, Rng& rng);

/// Regular grid of sensors (spacing chosen from the area), gateways spread.
/// Matches the paper's "nodes distributed evenly" SPR assumption (§5.2).
Deployment gridDeployment(const DeploymentParams& params, Rng& rng);

/// Gaussian clusters — the "unevenly distributed" case that motivates MLR
/// (§5.3: nodes on many shortest paths die first).
Deployment clusteredDeployment(const DeploymentParams& params,
                               std::size_t clusterCount, Rng& rng);

/// Candidate feasible places for MLR gateway deployment (§5.3): a jittered
/// grid of `count` positions covering the area.
std::vector<Point> feasiblePlaces(const DeploymentParams& params,
                                  std::size_t count, Rng& rng);

/// True if every sensor can reach at least one gateway through hops of
/// length <= radioRange.
bool isConnected(const Deployment& deployment, double radioRange);

/// True if the sensor-only graph is one connected component. MLR deployments
/// need this: gateways move between rounds, so sensors must never depend on
/// a gateway as a relay between sensor clusters.
bool sensorsConnected(const std::vector<Point>& sensors, double radioRange);

/// True if every candidate place has at least one sensor within
/// `attachRange` — otherwise a gateway parked there is radio-isolated and
/// its move notifications can never enter the network.
bool placesAttached(const std::vector<Point>& places,
                    const std::vector<Point>& sensors, double attachRange);

}  // namespace wmsn::net
