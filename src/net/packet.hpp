#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace wmsn::net {

using NodeId = std::uint32_t;

/// Link-local broadcast address (all neighbours in radio range).
inline constexpr NodeId kBroadcastId = 0xffffffffu;
inline constexpr NodeId kNoNode = 0xfffffffeu;

/// Over-the-air frame types. The numeric values travel in the 1-byte `kind`
/// header field.
enum class PacketKind : std::uint8_t {
  kHello = 1,         ///< neighbour discovery beacon
  kRreq = 2,          ///< routing query (SPR §5.2 step 2, SecMLR §6.2.1)
  kRres = 3,          ///< routing response (SPR step 3, SecMLR §6.2.2)
  kData = 4,          ///< application data toward a gateway
  kCostBeacon = 5,    ///< MCFA-style cost-field beacon (single-sink baseline)
  kChAdvert = 6,      ///< LEACH cluster-head advertisement
  kChJoin = 7,        ///< LEACH join request
  kGatewayMove = 8,   ///< MLR/SecMLR gateway place notification (§5.3, §6.2.3)
  kKeyDisclose = 9,   ///< TESLA key disclosure broadcast
  kAck = 10,          ///< link-layer acknowledgement
  kLoadAdvisory = 11, ///< overloaded-gateway congestion notification (§4.3)
  kCommand = 12,      ///< downstream gateway→sensor traffic (§5.1)
  kAdv = 13,          ///< SPIN metadata advertisement (§2.2.1)
  kReq = 14,          ///< SPIN data request
  kInterest = 15,     ///< Directed Diffusion interest flood (§2.2.1)
  kReinforce = 16,    ///< Directed Diffusion positive reinforcement
};

std::string toString(PacketKind kind);
/// Static-lifetime kind name — the allocation-free variant trace sinks use
/// on the per-frame hot path.
const char* kindName(PacketKind kind);

/// One over-the-air frame. Addressing fields mirror a compressed
/// 802.15.4-class header; `payload` carries the protocol-specific body in
/// serialised form so its length feeds the energy model and SecMLR can
/// encrypt/authenticate real bytes.
struct Packet {
  PacketKind kind = PacketKind::kData;
  NodeId origin = kNoNode;    ///< node that created the packet
  NodeId finalDst = kNoNode;  ///< ultimate destination (gateway) or broadcast
  NodeId hopSrc = kNoNode;    ///< link-layer sender of this hop
  NodeId hopDst = kNoNode;    ///< link-layer receiver, or kBroadcastId
  std::uint32_t seq = 0;      ///< origin-scoped sequence number
  std::uint8_t hops = 0;      ///< hops travelled so far (TTL-style field)
  std::uint64_t uid = 0;      ///< simulator-global id (assigned on first send)
  Bytes payload;
  /// Simulator bookkeeping that does NOT travel on the air (excluded from
  /// sizeBytes). Used by perfect-fusion protocols (PEGASIS): the fused
  /// packet has constant on-air size, but the experiment still needs to
  /// know which readings it represents for delivery accounting.
  Bytes meta;

  /// Compressed header: kind(1) + 4 short addresses(2 each) + seq(2) +
  /// length(2) + FCS(2) = 15 bytes. uid is simulator bookkeeping and is NOT
  /// counted as on-air bytes.
  static constexpr std::size_t kHeaderBytes = 15;

  std::size_t sizeBytes() const { return kHeaderBytes + payload.size(); }
  std::size_t sizeBits() const { return sizeBytes() * 8; }

  bool isControl() const { return kind != PacketKind::kData; }
};

}  // namespace wmsn::net
