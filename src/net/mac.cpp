#include "net/mac.hpp"

#include <algorithm>

namespace wmsn::net {

CsmaMac::CsmaMac(Medium& medium, sim::Simulator& simulator, NodeId self,
                 Rng rng, CsmaParams params)
    : medium_(medium),
      simulator_(simulator),
      self_(self),
      rng_(rng),
      params_(params) {}

void CsmaMac::send(Packet packet) {
  // Initial random jitter de-synchronises nodes that react to the same
  // broadcast (e.g. a flood) in the same event — otherwise they would all
  // sense an idle channel simultaneously and collide deterministically.
  const sim::Time jitter = sim::Time::microseconds(
      rng_.uniformInt(0, params_.backoffUnit.us * 8));
  simulator_.schedule(jitter,
                      [this, packet = std::move(packet)] { attempt(packet, 0); });
}

void CsmaMac::attempt(Packet packet, std::uint32_t tries) {
  if (!medium_.channelBusy(self_)) {
    medium_.transmit(self_, std::move(packet));
    return;
  }
  if (tries + 1 >= params_.maxAttempts) {
    ++drops_;
    return;
  }
  const std::uint32_t be = std::min(params_.minBackoffExponent + tries,
                                    params_.maxBackoffExponent);
  const std::int64_t slots = rng_.uniformInt(1, (1 << be) - 1);
  simulator_.schedule(
      sim::Time::microseconds(slots * params_.backoffUnit.us),
      [this, packet = std::move(packet), tries] { attempt(packet, tries + 1); });
}

}  // namespace wmsn::net
