#include "net/mac.hpp"

#include <algorithm>

#include "obs/perf_stats.hpp"
#include "obs/profiler.hpp"
#include "util/invariants.hpp"
#include "util/require.hpp"

namespace wmsn::net {

std::string toString(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kDropTail: return "drop-tail";
    case QueuePolicy::kDropOldest: return "drop-oldest";
  }
  return "unknown";
}

CsmaMac::CsmaMac(Medium& medium, sim::Simulator& simulator, NodeId self,
                 Rng rng, CsmaParams params, QueueParams queue,
                 TrafficStats* stats, obs::PacketTracer* tracer)
    : medium_(medium),
      simulator_(simulator),
      self_(self),
      rng_(rng),
      params_(params),
      queue_(queue),
      stats_(stats),
      tracer_(tracer) {}

void CsmaMac::send(Packet packet) {
  if (queue_.capacity == 0) {
    // Legacy discipline: every frame contends independently; nothing ever
    // waits behind another frame and nothing is dropped for buffer space.
    serve(std::move(packet));
    return;
  }
  if (!busy_) {
    busy_ = true;
    serve(std::move(packet));
    return;
  }
  if (waiting_.size() >= queue_.capacity) {
    ++queueDrops_;
    if (stats_) stats_->onQueueDrop(self_);
    // The victim is the newcomer under drop-tail, the stalest waiting frame
    // under drop-oldest.
    const Packet& victim =
        queue_.policy == QueuePolicy::kDropTail ? packet : waiting_.front();
    if (victim.kind == PacketKind::kData)
      WMSN_TRACE(tracer_, obs::TraceSpanKind::kDrop, simulator_.now().us,
                 victim.uid, self_, victim.hopDst,
                 obs::TraceDropReason::kQueueOverflow, victim.hops,
                 static_cast<std::uint32_t>(victim.sizeBytes()));
    if (queue_.policy == QueuePolicy::kDropTail) return;
    // Drop-oldest: the stalest waiting frame makes room for the newcomer
    // (sensing data ages fast; fresh readings matter more).
    waiting_.pop_front();
    waiting_.push_back(std::move(packet));
    WMSN_INVARIANT_MSG(
        inv::queueWithinCapacity(waiting_.size(), queue_.capacity),
        "finite MAC transmit queue depth never exceeds its capacity");
    return;  // depth unchanged — no integral update needed
  }
  noteDepthChange();
  waiting_.push_back(std::move(packet));
  peakDepth_ = std::max(peakDepth_, waiting_.size());
  WMSN_INVARIANT_MSG(
      inv::queueWithinCapacity(waiting_.size(), queue_.capacity) &&
          inv::queueWithinCapacity(peakDepth_, queue_.capacity),
      "finite MAC transmit queue depth never exceeds its capacity");
  if (stats_) stats_->onQueueDepth(self_, waiting_.size());
}

void CsmaMac::serve(Packet packet) {
  // Initial random jitter de-synchronises nodes that react to the same
  // broadcast (e.g. a flood) in the same event — otherwise they would all
  // sense an idle channel simultaneously and collide deterministically.
  WMSN_PERF(kRngDraws);
  const sim::Time jitter = sim::Time::microseconds(
      rng_.uniformInt(0, params_.backoffUnit.us * 8));
  simulator_.schedule(jitter,
                      [this, packet = std::move(packet)] { attempt(packet, 0); });
}

void CsmaMac::attempt(Packet packet, std::uint32_t tries) {
  WMSN_PROFILE_PHASE(kMacContention);
  if (!medium_.channelBusy(self_)) {
    const sim::Time air = medium_.airTime(packet);
    medium_.transmit(self_, std::move(packet));
    // With a finite queue the MAC is half-duplex: the next waiting frame
    // starts contending only after this one's air time elapses.
    if (queue_.capacity > 0)
      simulator_.schedule(air, [this] { serveNext(); });
    return;
  }
  if (tries + 1 >= params_.maxAttempts) {
    ++drops_;
    if (stats_) stats_->onMacDrop();
    if (packet.kind == PacketKind::kData)
      WMSN_TRACE(tracer_, obs::TraceSpanKind::kDrop, simulator_.now().us,
                 packet.uid, self_, packet.hopDst,
                 obs::TraceDropReason::kMacExhausted, tries + 1,
                 static_cast<std::uint32_t>(packet.sizeBytes()));
    if (queue_.capacity > 0) serveNext();
    return;
  }
  if (packet.kind == PacketKind::kData)
    WMSN_TRACE(tracer_, obs::TraceSpanKind::kMacBackoff, simulator_.now().us,
               packet.uid, self_, packet.hopDst, obs::TraceDropReason::kNone,
               tries + 1, static_cast<std::uint32_t>(packet.sizeBytes()));
  WMSN_PERF(kMacBackoffs);
  WMSN_PERF(kRngDraws);
  const std::uint32_t be = std::min(params_.minBackoffExponent + tries,
                                    params_.maxBackoffExponent);
  const std::int64_t slots = rng_.uniformInt(1, (1 << be) - 1);
  simulator_.schedule(
      sim::Time::microseconds(slots * params_.backoffUnit.us),
      [this, packet = std::move(packet), tries] { attempt(packet, tries + 1); });
}

void CsmaMac::serveNext() {
  if (waiting_.empty()) {
    busy_ = false;
    return;
  }
  noteDepthChange();
  Packet next = std::move(waiting_.front());
  waiting_.pop_front();
  serve(std::move(next));
}

void CsmaMac::noteDepthChange() {
  const sim::Time now = simulator_.now();
  depthIntegral_ += static_cast<double>(waiting_.size()) *
                    (now - lastDepthChange_).seconds();
  lastDepthChange_ = now;
}

double CsmaMac::queueDepthIntegral(sim::Time now) const {
  return depthIntegral_ + static_cast<double>(waiting_.size()) *
                              (now - lastDepthChange_).seconds();
}

}  // namespace wmsn::net
