#pragma once

#include <cstddef>

namespace wmsn::net {

/// First-order radio model (Heinzelman et al. — the energy model of the
/// LEACH lineage the paper builds on). Transmitting k bits over distance d
/// costs E_elec·k + ε·k·d^α where α=2 (free space) below the crossover
/// distance d₀ and α=4 (multipath) above it; receiving costs E_elec·k.
struct EnergyParams {
  double eElecJPerBit = 50e-9;     ///< electronics energy, TX and RX
  double eFsJPerBitM2 = 10e-12;    ///< free-space amplifier (d < d₀)
  double eMpJPerBitM4 = 0.0013e-12;///< multipath amplifier (d ≥ d₀)
  double eCpuJPerByte = 0.8e-9;    ///< CPU cost per byte of crypto processing
                                   ///< (~order of a software AES on a MSP430)
  double initialEnergyJ = 2.0;     ///< sensor battery (2 J, standard in sims)

  /// Free-space / multipath crossover distance d₀ = sqrt(ε_fs / ε_mp).
  double crossoverDistance() const;

  double txCost(std::size_t bits, double distance) const;
  double rxCost(std::size_t bits) const;
  double cpuCost(std::size_t bytes) const;
};

/// Per-node battery with a breakdown of where the energy went. Gateways can
/// be built with infinite capacity (the paper's MLR assumption, §5.3: "let
/// gateways have unrestricted energy").
class Battery {
 public:
  Battery() = default;
  explicit Battery(double capacityJ) : remaining_(capacityJ), finite_(true) {}

  static Battery infinite() { return Battery(); }

  /// Draws `joules` from the battery; returns false if the node just died
  /// (charge could not be fully paid). A dead battery absorbs no further
  /// charges.
  bool drawTx(double joules) { return draw(joules, &txJ_); }
  bool drawRx(double joules) { return draw(joules, &rxJ_); }
  bool drawCpu(double joules) { return draw(joules, &cpuJ_); }

  bool depleted() const { return finite_ && remaining_ <= 0.0; }
  bool finite() const { return finite_; }
  double remainingJ() const { return finite_ ? remaining_ : 0.0; }
  double consumedJ() const { return txJ_ + rxJ_ + cpuJ_; }
  double txJ() const { return txJ_; }
  double rxJ() const { return rxJ_; }
  double cpuJ() const { return cpuJ_; }

 private:
  bool draw(double joules, double* bucket);

  double remaining_ = 0.0;
  bool finite_ = false;
  double txJ_ = 0.0;
  double rxJ_ = 0.0;
  double cpuJ_ = 0.0;
};

}  // namespace wmsn::net
