#include "net/sensor_network.hpp"

#include <deque>

#include "obs/perf_stats.hpp"
#include "util/require.hpp"

namespace wmsn::net {

SensorNetwork::SensorNetwork(sim::Simulator& simulator,
                             std::unique_ptr<RadioModel> radio,
                             SensorNetworkParams params)
    : simulator_(simulator),
      radio_(std::move(radio)),
      params_(params),
      rng_(params.seed),
      // Grid cells sized to the radio's nominal range: a range query then
      // touches at most a 3×3 cell block (docs/KERNEL.md).
      block_(this->radio_->nominalRange()),
      tracer_(params.trace) {
  WMSN_REQUIRE(radio_ != nullptr);
  medium_ = std::make_unique<Medium>(simulator_, *radio_, params_.energy,
                                     *this, params_.medium, rng_.fork());
  medium_->setHotState(&block_);
  medium_->setTracer(&tracer_);
}

NodeId SensorNetwork::addNode(NodeKind kind, Point position) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  const NodeId slot = block_.add(position.x, position.y);
  WMSN_REQUIRE(slot == id);
  batteries_.push_back(
      (kind == NodeKind::kSensor || params_.gatewaysBatteryLimited)
          ? Battery(params_.energy.initialEnergyJ)
          : Battery::infinite());
  auto node =
      std::make_unique<Node>(id, kind, block_, batteries_, rng_.fork());
  // wmsn:fixed-draws — the MAC kind is an immutable scenario constant, so
  // every node forks the same number of child streams on replay.
  switch (params_.mac) {
    case MacKind::kIdeal:
      node->setMac(std::make_unique<IdealMac>(*medium_, id));
      break;
    case MacKind::kCsma:
      node->setMac(std::make_unique<CsmaMac>(*medium_, simulator_, id,
                                             rng_.fork(), params_.csma,
                                             params_.queue, &stats_,
                                             &tracer_));
      break;
  }
  nodes_.push_back(std::move(node));
  (kind == NodeKind::kSensor ? sensorIds_ : gatewayIds_).push_back(id);
  return id;
}

NodeId SensorNetwork::addSensor(Point position) {
  return addNode(NodeKind::kSensor, position);
}

NodeId SensorNetwork::addGateway(Point position) {
  return addNode(NodeKind::kGateway, position);
}

Node& SensorNetwork::node(NodeId id) {
  WMSN_REQUIRE(id < nodes_.size());
  return *nodes_[id];
}

const Node& SensorNetwork::node(NodeId id) const {
  WMSN_REQUIRE(id < nodes_.size());
  return *nodes_[id];
}

std::vector<NodeId> SensorNetwork::neighborsOf(NodeId id) const {
  WMSN_REQUIRE(id < nodes_.size());
  const Point here{block_.x(id), block_.y(id)};
  WMSN_PERF(kNeighborScans);
  block_.grid().query(here.x, here.y, radio_->nominalRange(), queryScratch_);
  WMSN_PERF(kGridQueries);
  WMSN_PERF(kPairsExamined, queryScratch_.size());
  std::vector<NodeId> out;
  for (const std::uint32_t other : queryScratch_) {
    if (other == id || !block_.alive(other)) continue;
    if (radio_->linked(here, Point{block_.x(other), block_.y(other)}))
      out.push_back(other);
  }
  return out;
}

bool SensorNetwork::allSensorsCovered() const {
  // BFS from all alive gateways simultaneously over alive nodes.
  std::vector<bool> reached(nodes_.size(), false);
  std::deque<NodeId> frontier;
  for (NodeId g : gatewayIds_) {
    if (nodes_[g]->alive()) {
      reached[g] = true;
      frontier.push_back(g);
    }
  }
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (NodeId nbr : neighborsOf(cur)) {
      if (!reached[nbr]) {
        reached[nbr] = true;
        frontier.push_back(nbr);
      }
    }
  }
  for (NodeId s : sensorIds_)
    if (nodes_[s]->alive() && !reached[s]) return false;
  return true;
}

std::size_t SensorNetwork::aliveSensorCount() const {
  std::size_t count = 0;
  for (NodeId s : sensorIds_)
    if (nodes_[s]->alive()) ++count;
  return count;
}

std::optional<sim::Time> SensorNetwork::firstSensorDeathTime() const {
  std::optional<sim::Time> first;
  for (NodeId s : sensorIds_) {
    const auto t = nodes_[s]->deathTime();
    if (t && (!first || *t < *first)) first = t;
  }
  return first;
}

void SensorNetwork::sendFrom(NodeId id, Packet packet) {
  Node& sender = node(id);
  if (!sender.alive()) return;
  WMSN_PERF(kFramesOffered);
  packet.hopSrc = id;
  if (packet.uid == 0) packet.uid = nextPacketUid();
  if (packet.kind == PacketKind::kData)
    WMSN_TRACE(&tracer_,
               packet.origin == id ? obs::TraceSpanKind::kEnqueue
                                   : obs::TraceSpanKind::kForward,
               simulator_.now().us, packet.uid, id, packet.hopDst,
               obs::TraceDropReason::kNone, packet.hops,
               static_cast<std::uint32_t>(packet.sizeBytes()));
  if (!frameObservers_.empty())
    frameObservers_.notify(packet, id, /*transmit=*/true);
  sender.mac().send(std::move(packet));
}

void SensorNetwork::sendLongRangeFrom(NodeId from, NodeId to, Packet packet) {
  if (!node(from).alive()) return;
  if (packet.uid == 0) packet.uid = nextPacketUid();
  medium_->transmitLongRange(from, to, std::move(packet));
}

void SensorNetwork::chargeCrypto(NodeId id, std::size_t bytes) {
  Node& n = node(id);
  if (!n.alive()) return;
  if (!n.battery().drawCpu(params_.energy.cpuCost(bytes))) handleDeath(id);
}

void SensorNetwork::setGatewayPosition(NodeId id, Point position) {
  Node& n = node(id);
  WMSN_REQUIRE_MSG(n.isGateway(), "only gateways move (§5.1)");
  n.setPosition(position);
}

Point SensorNetwork::positionOf(NodeId id) const { return node(id).position(); }

bool SensorNetwork::aliveOf(NodeId id) const { return node(id).alive(); }

bool SensorNetwork::listeningOf(NodeId id) const {
  return node(id).listening();
}

void SensorNetwork::chargeTx(NodeId id, double joules) {
  if (!nodes_[id]->battery().drawTx(joules)) handleDeath(id);
}

void SensorNetwork::chargeRx(NodeId id, double joules) {
  if (!nodes_[id]->battery().drawRx(joules)) handleDeath(id);
}

void SensorNetwork::handleDeath(NodeId id) {
  nodes_[id]->kill(simulator_.now());
}

void SensorNetwork::deliverFrame(NodeId to, const Packet& packet,
                                 NodeId from) {
  WMSN_PERF(kFramesReceived);
  // One kRecv per decoded hop at the addressed receiver — the per-hop path
  // the trace analyzer reconstructs. Promiscuous/broadcast copies are not
  // path hops and stay untraced.
  if (packet.kind == PacketKind::kData && packet.hopDst == to)
    WMSN_TRACE(&tracer_, obs::TraceSpanKind::kRecv, simulator_.now().us,
               packet.uid, to, from, obs::TraceDropReason::kNone, packet.hops,
               static_cast<std::uint32_t>(packet.sizeBytes()));
  if (!frameObservers_.empty())
    frameObservers_.notify(packet, to, /*transmit=*/false);
  node(to).receive(packet, from);
}

void SensorNetwork::noteTransmit(PacketKind kind, std::size_t bytes) {
  stats_.onTransmit(kind, bytes);
}

}  // namespace wmsn::net
