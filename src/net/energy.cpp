#include "net/energy.hpp"

#include <cmath>

#include "util/invariants.hpp"
#include "util/require.hpp"

namespace wmsn::net {

double EnergyParams::crossoverDistance() const {
  return std::sqrt(eFsJPerBitM2 / eMpJPerBitM4);
}

double EnergyParams::txCost(std::size_t bits, double distance) const {
  WMSN_REQUIRE(distance >= 0.0);
  const double k = static_cast<double>(bits);
  const double d0 = crossoverDistance();
  const double amp = distance < d0
                         ? eFsJPerBitM2 * distance * distance
                         : eMpJPerBitM4 * distance * distance * distance *
                               distance;
  return eElecJPerBit * k + amp * k;
}

double EnergyParams::rxCost(std::size_t bits) const {
  return eElecJPerBit * static_cast<double>(bits);
}

double EnergyParams::cpuCost(std::size_t bytes) const {
  return eCpuJPerByte * static_cast<double>(bytes);
}

bool Battery::draw(double joules, double* bucket) {
  WMSN_REQUIRE(joules >= 0.0);
  if (!finite_) {
    *bucket += joules;
    return true;
  }
  if (remaining_ <= 0.0) return true;  // already dead; nothing changes
  const double before = remaining_;
  *bucket += joules;
  remaining_ -= joules;
  WMSN_INVARIANT_MSG(inv::energyMonotone(before, remaining_),
                     "battery charge is monotone non-increasing per node");
  if (remaining_ <= 0.0) {
    remaining_ = 0.0;
    return false;  // this charge killed the node
  }
  return true;
}

}  // namespace wmsn::net
