#include "net/medium.hpp"

#include <algorithm>

#include "obs/perf_stats.hpp"
#include "util/require.hpp"

namespace wmsn::net {

Medium::Medium(sim::Simulator& simulator, const RadioModel& radio,
               const EnergyParams& energy, MediumHost& host,
               MediumParams params, Rng rng)
    : simulator_(simulator),
      radio_(radio),
      energy_(energy),
      host_(host),
      params_(params),
      rng_(rng) {
  WMSN_REQUIRE(params_.bitrateBps > 0.0);
}

sim::Time Medium::airTime(const Packet& packet) const {
  const double seconds =
      static_cast<double>(packet.sizeBits()) / params_.bitrateBps;
  return sim::Time::microseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(seconds * 1e6)));
}

void Medium::setPromiscuous(NodeId id, bool enabled) {
  if (enabled)
    promiscuous_.insert(id);
  else
    promiscuous_.erase(id);
}

bool Medium::channelBusy(NodeId at) const {
  return at < busyUntil_.size() && simulator_.now() < busyUntil_[at];
}

fault::GilbertElliottChain& Medium::chainFor(NodeId rx) {
  auto it = linkChains_.find(rx);
  if (it == linkChains_.end()) {
    // Each receiver gets its own chain with its own RNG stream so the order
    // in which receivers first hear a frame cannot shift anyone's draws.
    const std::uint64_t seed =
        params_.linkLossSeed ^ (static_cast<std::uint64_t>(rx) * 0x9e3779b97f4a7c15ULL);
    it = linkChains_.emplace(rx, fault::GilbertElliottChain(params_.linkLoss, seed))
             .first;
  }
  return it->second;
}

void Medium::transmit(NodeId from, Packet packet) {
  const std::uint32_t retries =
      (params_.unicastArq && packet.hopDst != kBroadcastId)
          ? params_.maxArqRetries
          : 0;
  transmitAttempt(from, std::move(packet), retries);
}

void Medium::transmitAttempt(NodeId from, Packet packet,
                             std::uint32_t retriesLeft) {
  if (!host_.aliveOf(from)) return;

  const sim::Time now = simulator_.now();
  const sim::Time end = now + airTime(packet);
  const Point srcPos = host_.positionOf(from);
  const std::size_t bits = packet.sizeBits();

  packet.hopSrc = from;
  ++framesTransmitted_;
  WMSN_PERF(kFramesTransmitted);
  host_.noteTransmit(packet.kind, packet.sizeBytes());
  // Fixed transmit power sized to the nominal range (§5.2: identical power).
  host_.chargeTx(from, energy_.txCost(bits, radio_.nominalRange()));
  if (packet.kind == PacketKind::kData)
    WMSN_TRACE(tracer_, obs::TraceSpanKind::kMacTx, now.us, packet.uid, from,
               packet.hopDst, obs::TraceDropReason::kNone, retriesLeft,
               static_cast<std::uint32_t>(packet.sizeBytes()));

  WMSN_REQUIRE_MSG(hot_ != nullptr, "Medium::setHotState not wired");
  const std::size_t n = host_.nodeCount();
  if (busyUntil_.size() < n) busyUntil_.resize(n, sim::Time{});
  if (rxOngoing_.size() < n) rxOngoing_.resize(n);

  // Candidate receivers from the spatial grid: everyone whose cell
  // intersects the transmit disk, ascending by id so draw order matches the
  // old 0..n-1 scan byte for byte.
  hot_->grid().query(srcPos.x, srcPos.y, radio_.nominalRange(), scratch_);
  WMSN_PERF(kGridQueries);
  WMSN_PERF(kPairsExamined, scratch_.size());
  for (const std::uint32_t rx : scratch_) {
    if (!radio_.linked(srcPos, Point{hot_->x(rx), hot_->y(rx)})) continue;
    // Every radio in range hears energy on the channel — including the
    // sender itself and nodes that are asleep, failed, or dead. Carrier
    // sense is about the channel, not about who can decode.
    if (busyUntil_[rx] < end) busyUntil_[rx] = end;
    if (rx == from || !host_.listeningOf(rx)) continue;

    auto& ongoing = rxOngoing_[rx];
    std::erase_if(ongoing, [&](const auto& r) { return r->end <= now; });

    auto reception = std::make_shared<Reception>();
    reception->receiver = rx;
    reception->start = now;
    reception->end = end;

    if (params_.collisions) {
      for (const auto& other : ongoing) {
        // Receiver capture: the radio stays locked on the frame it started
        // decoding first; a later-arriving overlapping frame is lost, but
        // does not corrupt the locked one. Simultaneous starts jam both.
        if (other->start < now) {
          reception->corrupted = true;
        } else {
          other->corrupted = true;
          reception->corrupted = true;
        }
      }
    }
    ongoing.push_back(reception);

    const double pDeliver =
        radio_.deliveryProbability(srcPos, host_.positionOf(rx));
    WMSN_PERF(kRngDraws);
    const bool channelOk = rng_.chance(pDeliver);
    // Bursty fault-injection loss rides on top of the distance-based channel
    // model. The chain draws from its own stream, so when the model is
    // disabled no draw happens and the run is byte-identical to a build
    // without it.
    const bool linkOk =
        !params_.linkLoss.enabled || !chainFor(rx).step();
    const bool isArqTarget = packet.hopDst == rx;

    simulator_.scheduleAt(end, [this, reception, packet, channelOk, linkOk,
                                isArqTarget, retriesLeft, from] {
      const NodeId rxId = reception->receiver;
      const bool rxAlive = host_.listeningOf(rxId);
      const bool decoded =
          rxAlive && !reception->corrupted && channelOk && linkOk;
      if (rxAlive) {
        // The radio listened for the whole frame either way.
        host_.chargeRx(rxId, energy_.rxCost(packet.sizeBits()));
        if (reception->corrupted) {
          ++framesCorrupted_;
          host_.noteCollision();
        }
        if (!reception->corrupted && channelOk && !linkOk)
          ++framesLinkFaultDropped_;
      }

      if (isArqTarget && retriesLeft > 0 && !decoded) {
        // 802.15.4 AUTO-ACK ARQ: no immediate ACK arrived — retransmit
        // after the turnaround plus a short random backoff.
        ++arqRetransmissions_;
        WMSN_PERF(kRngDraws);
        const sim::Time backoff =
            params_.arqTurnaround +
            sim::Time::microseconds(rng_.uniformInt(0, 1000));
        simulator_.schedule(backoff, [this, from, packet, retriesLeft] {
          transmitAttempt(from, packet, retriesLeft - 1);
        });
        return;
      }
      if (!decoded) {
        // Terminal link-layer loss at the addressed receiver (ARQ budget —
        // if any — is spent): attribute the hop's fate for the analyzer.
        if (isArqTarget && packet.kind == PacketKind::kData)
          WMSN_TRACE(tracer_, obs::TraceSpanKind::kDrop,
                     simulator_.now().us, packet.uid, rxId, from,
                     reception->corrupted
                         ? obs::TraceDropReason::kCollision
                         : obs::TraceDropReason::kLinkLoss,
                     packet.hops,
                     static_cast<std::uint32_t>(packet.sizeBytes()));
        return;
      }

      if (isArqTarget && params_.unicastArq) {
        // Successful unicast: account the immediate-ACK exchange (the ACK
        // itself is modelled as reliable — it rides the SIFS turnaround).
        const std::size_t ackBits = params_.ackFrameBytes * 8;
        host_.chargeTx(rxId, energy_.txCost(ackBits, radio_.nominalRange()));
        host_.chargeRx(from, energy_.rxCost(ackBits));
      }

      if (packet.hopDst != kBroadcastId && packet.hopDst != rxId &&
          !promiscuous_.contains(rxId))
        return;
      host_.deliverFrame(rxId, packet, packet.hopSrc);
    });
  }
}

void Medium::transmitLongRange(NodeId from, NodeId to, Packet packet) {
  if (!host_.aliveOf(from)) return;
  const sim::Time end = simulator_.now() + airTime(packet);
  const double d = distance(host_.positionOf(from), host_.positionOf(to));
  const std::size_t bits = packet.sizeBits();

  packet.hopSrc = from;
  packet.hopDst = to;
  ++framesTransmitted_;
  WMSN_PERF(kFramesTransmitted);
  host_.noteTransmit(packet.kind, packet.sizeBytes());
  host_.chargeTx(from, energy_.txCost(bits, d));

  simulator_.scheduleAt(end, [this, to, packet] {
    if (!host_.listeningOf(to)) return;
    host_.chargeRx(to, energy_.rxCost(packet.sizeBits()));
    host_.deliverFrame(to, packet, packet.hopSrc);
  });
}

}  // namespace wmsn::net
