#include "net/radio.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace wmsn::net {

UnitDiskRadio::UnitDiskRadio(double range) : range_(range) {
  WMSN_REQUIRE(range > 0.0);
}

bool UnitDiskRadio::linked(const Point& a, const Point& b) const {
  return distanceSq(a, b) <= range_ * range_;
}

LogDistanceRadio::LogDistanceRadio(double reliableRange, double maxRange,
                                   double fringeExponent)
    : reliableRange_(reliableRange),
      maxRange_(maxRange),
      fringeExponent_(fringeExponent) {
  WMSN_REQUIRE(reliableRange > 0.0);
  WMSN_REQUIRE(maxRange >= reliableRange);
  WMSN_REQUIRE(fringeExponent > 0.0);
}

bool LogDistanceRadio::linked(const Point& a, const Point& b) const {
  return distanceSq(a, b) <= maxRange_ * maxRange_;
}

double LogDistanceRadio::deliveryProbability(const Point& a,
                                             const Point& b) const {
  const double d = distance(a, b);
  if (d <= reliableRange_) return 1.0;
  if (d >= maxRange_) return 0.0;
  const double frac = (d - reliableRange_) / (maxRange_ - reliableRange_);
  return std::pow(1.0 - frac, fringeExponent_);
}

}  // namespace wmsn::net
