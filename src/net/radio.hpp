#pragma once

#include <cstdint>
#include <memory>

#include "net/geometry.hpp"

namespace wmsn::net {

/// Propagation model: decides connectivity and per-link delivery probability
/// between two positions. Implementations must be deterministic functions of
/// their inputs so simulations reproduce exactly.
class RadioModel {
 public:
  virtual ~RadioModel() = default;

  /// True if a frame sent from `a` can reach `b` at all.
  virtual bool linked(const Point& a, const Point& b) const = 0;

  /// Probability that a frame from `a` decodes correctly at `b`
  /// (conditional on linked(a,b)).
  virtual double deliveryProbability(const Point& a, const Point& b) const = 0;

  /// Nominal communication range in metres — the distance assumed by the
  /// energy model for fixed-power transmission (§5.2: "all sensor nodes
  /// transmit data in identical power").
  virtual double nominalRange() const = 0;
};

/// Unit-disk radio: perfect links inside `range`, nothing outside. The
/// paper's network model (§5.1: "the radio range of a sensor node only
/// covers its immediate neighboring nodes").
class UnitDiskRadio final : public RadioModel {
 public:
  explicit UnitDiskRadio(double range);

  bool linked(const Point& a, const Point& b) const override;
  double deliveryProbability(const Point&, const Point&) const override {
    return 1.0;
  }
  double nominalRange() const override { return range_; }

 private:
  double range_;
};

/// Log-distance path-loss radio with a smooth delivery-probability falloff:
/// reliable inside `reliableRange`, decaying to zero at `maxRange`. Models
/// the lossy fringe real 802.15.4 links have; used by the robustness
/// experiments.
class LogDistanceRadio final : public RadioModel {
 public:
  LogDistanceRadio(double reliableRange, double maxRange,
                   double fringeExponent = 2.0);

  bool linked(const Point& a, const Point& b) const override;
  double deliveryProbability(const Point& a, const Point& b) const override;
  double nominalRange() const override { return maxRange_; }

 private:
  double reliableRange_;
  double maxRange_;
  double fringeExponent_;
};

}  // namespace wmsn::net
