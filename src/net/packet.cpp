#include "net/packet.hpp"

namespace wmsn::net {

const char* kindName(PacketKind kind) {
  switch (kind) {
    case PacketKind::kHello: return "HELLO";
    case PacketKind::kRreq: return "RREQ";
    case PacketKind::kRres: return "RRES";
    case PacketKind::kData: return "DATA";
    case PacketKind::kCostBeacon: return "COST";
    case PacketKind::kChAdvert: return "CH_ADV";
    case PacketKind::kChJoin: return "CH_JOIN";
    case PacketKind::kGatewayMove: return "GW_MOVE";
    case PacketKind::kKeyDisclose: return "KEY_DISC";
    case PacketKind::kAck: return "ACK";
    case PacketKind::kLoadAdvisory: return "LOAD_ADV";
    case PacketKind::kCommand: return "COMMAND";
    case PacketKind::kAdv: return "ADV";
    case PacketKind::kReq: return "REQ";
    case PacketKind::kInterest: return "INTEREST";
    case PacketKind::kReinforce: return "REINFORCE";
  }
  return "UNKNOWN";
}

std::string toString(PacketKind kind) { return kindName(kind); }

}  // namespace wmsn::net
