#include "net/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>

#include "util/require.hpp"

namespace wmsn::net {

namespace {

/// Spread `count` points on a jittered sub-grid covering the area.
std::vector<Point> spreadPoints(std::size_t count, double width, double height,
                                double jitterFraction, Rng& rng) {
  std::vector<Point> out;
  if (count == 0) return out;
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count) * width / height)));
  const std::size_t rows = (count + cols - 1) / cols;
  const double cellW = width / static_cast<double>(cols);
  const double cellH = height / static_cast<double>(rows);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t cx = i % cols;
    const std::size_t cy = i / cols;
    const double jx = rng.uniform(-jitterFraction, jitterFraction) * cellW;
    const double jy = rng.uniform(-jitterFraction, jitterFraction) * cellH;
    out.push_back(Point{
        std::clamp((static_cast<double>(cx) + 0.5) * cellW + jx, 0.0, width),
        std::clamp((static_cast<double>(cy) + 0.5) * cellH + jy, 0.0,
                   height)});
  }
  return out;
}

Deployment generateConnected(const DeploymentParams& params, Rng& rng,
                             const std::function<std::vector<Point>(Rng&)>&
                                 sensorGen) {
  for (std::size_t attempt = 0; attempt < params.maxAttempts; ++attempt) {
    Deployment d;
    d.width = params.width;
    d.height = params.height;
    d.sensors = sensorGen(rng);
    d.gateways =
        spreadPoints(params.gatewayCount, params.width, params.height,
                     0.25, rng);
    if (isConnected(d, params.radioRange)) return d;
  }
  throw PreconditionError(
      "could not generate a connected deployment; increase radio range, "
      "node count, or area density");
}

}  // namespace

bool isConnected(const Deployment& deployment, double radioRange) {
  const std::size_t s = deployment.sensors.size();
  const std::size_t total = s + deployment.gateways.size();
  if (s == 0) return true;
  if (deployment.gateways.empty()) return false;

  auto positionAt = [&](std::size_t i) -> const Point& {
    return i < s ? deployment.sensors[i] : deployment.gateways[i - s];
  };

  const double r2 = radioRange * radioRange;
  std::vector<bool> reached(total, false);
  std::deque<std::size_t> frontier;
  for (std::size_t g = s; g < total; ++g) {
    reached[g] = true;
    frontier.push_back(g);
  }
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    for (std::size_t i = 0; i < total; ++i) {
      if (reached[i]) continue;
      if (distanceSq(positionAt(cur), positionAt(i)) <= r2) {
        reached[i] = true;
        frontier.push_back(i);
      }
    }
  }
  return std::all_of(reached.begin(), reached.begin() + static_cast<long>(s),
                     [](bool b) { return b; });
}

bool sensorsConnected(const std::vector<Point>& sensors, double radioRange) {
  if (sensors.size() <= 1) return true;
  const double r2 = radioRange * radioRange;
  std::vector<bool> reached(sensors.size(), false);
  std::deque<std::size_t> frontier{0};
  reached[0] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      if (reached[i]) continue;
      if (distanceSq(sensors[cur], sensors[i]) <= r2) {
        reached[i] = true;
        ++count;
        frontier.push_back(i);
      }
    }
  }
  return count == sensors.size();
}

bool placesAttached(const std::vector<Point>& places,
                    const std::vector<Point>& sensors, double attachRange) {
  const double r2 = attachRange * attachRange;
  for (const Point& p : places) {
    bool attached = false;
    for (const Point& s : sensors) {
      if (distanceSq(p, s) <= r2) {
        attached = true;
        break;
      }
    }
    if (!attached) return false;
  }
  return true;
}

Deployment uniformDeployment(const DeploymentParams& params, Rng& rng) {
  return generateConnected(params, rng, [&params](Rng& r) {
    std::vector<Point> out;
    out.reserve(params.sensorCount);
    for (std::size_t i = 0; i < params.sensorCount; ++i)
      out.push_back(
          Point{r.uniform(0.0, params.width), r.uniform(0.0, params.height)});
    return out;
  });
}

Deployment gridDeployment(const DeploymentParams& params, Rng& rng) {
  return generateConnected(params, rng, [&params](Rng& r) {
    return spreadPoints(params.sensorCount, params.width, params.height, 0.05,
                        r);
  });
}

Deployment clusteredDeployment(const DeploymentParams& params,
                               std::size_t clusterCount, Rng& rng) {
  WMSN_REQUIRE(clusterCount >= 1);
  return generateConnected(params, rng, [&params, clusterCount](Rng& r) {
    // Cluster centres spread out; sensors normally distributed around them.
    const auto centres =
        spreadPoints(clusterCount, params.width, params.height, 0.2, r);
    const double sigma =
        std::min(params.width, params.height) /
        (3.0 * std::sqrt(static_cast<double>(clusterCount)));
    std::vector<Point> out;
    out.reserve(params.sensorCount);
    for (std::size_t i = 0; i < params.sensorCount; ++i) {
      const Point& c = centres[i % centres.size()];
      out.push_back(
          Point{std::clamp(r.normal(c.x, sigma), 0.0, params.width),
                std::clamp(r.normal(c.y, sigma), 0.0, params.height)});
    }
    return out;
  });
}

std::vector<Point> feasiblePlaces(const DeploymentParams& params,
                                  std::size_t count, Rng& rng) {
  return spreadPoints(count, params.width, params.height, 0.15, rng);
}

}  // namespace wmsn::net
