#pragma once

#include <cstdint>
#include <vector>

#include "net/geometry.hpp"
#include "util/random.hpp"

namespace wmsn::net {

/// MLR's mobility model (§5.3): gateways occupy m of |P| feasible places;
/// at round boundaries some gateways move to different places. A schedule
/// answers "which place does gateway g occupy in round r".
class GatewaySchedule {
 public:
  virtual ~GatewaySchedule() = default;

  /// Place index (into the feasible-place list) of gateway `g` in round `r`.
  virtual std::size_t placeOf(std::size_t gateway, std::uint32_t round) = 0;

  virtual std::size_t gatewayCount() const = 0;
  virtual std::size_t placeCount() const = 0;

  /// Gateways whose place changed going into round `r` (empty for r==0 —
  /// initial placement is not a move).
  std::vector<std::size_t> movedGateways(std::uint32_t round);
};

/// Fixed assignment — gateways never move.
class StaticSchedule final : public GatewaySchedule {
 public:
  StaticSchedule(std::vector<std::size_t> places, std::size_t placeCount);
  std::size_t placeOf(std::size_t gateway, std::uint32_t round) override;
  std::size_t gatewayCount() const override { return places_.size(); }
  std::size_t placeCount() const override { return placeCount_; }

 private:
  std::vector<std::size_t> places_;
  std::size_t placeCount_;
};

/// Explicit per-round assignments — used to reproduce Table 1's scripted
/// A,B,C → A,C,D → C,D,E sequence exactly.
class ScriptedSchedule final : public GatewaySchedule {
 public:
  ScriptedSchedule(std::vector<std::vector<std::size_t>> rounds,
                   std::size_t placeCount);
  std::size_t placeOf(std::size_t gateway, std::uint32_t round) override;
  std::size_t gatewayCount() const override;
  std::size_t placeCount() const override { return placeCount_; }

 private:
  std::vector<std::vector<std::size_t>> rounds_;  // rounds_[r][g] = place
  std::size_t placeCount_;
};

/// Each round, one gateway (rotating) moves to a uniformly-chosen free
/// place. Over enough rounds every feasible place gets visited — the
/// precondition for MLR's table convergence. Deterministic given the seed.
class RotatingRandomSchedule final : public GatewaySchedule {
 public:
  RotatingRandomSchedule(std::size_t gatewayCount, std::size_t placeCount,
                         std::uint64_t seed);
  std::size_t placeOf(std::size_t gateway, std::uint32_t round) override;
  std::size_t gatewayCount() const override { return current_.size(); }
  std::size_t placeCount() const override { return placeCount_; }

 private:
  void advanceTo(std::uint32_t round);

  std::size_t placeCount_;
  Rng rng_;
  std::uint32_t computedRound_ = 0;
  std::vector<std::size_t> current_;
  std::vector<std::vector<std::size_t>> history_;  // history_[r][g]
};

}  // namespace wmsn::net
