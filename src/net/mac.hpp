#pragma once

#include <cstdint>
#include <memory>

#include "net/medium.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace wmsn::net {

/// Link-layer send discipline for one node.
class Mac {
 public:
  virtual ~Mac() = default;
  virtual void send(Packet packet) = 0;
  virtual std::uint64_t drops() const { return 0; }
};

/// Transmits immediately — an idealised contention-free channel. Used by
/// analytical experiments where MAC noise would obscure the routing effect
/// (e.g. the exact Fig. 2 hop-count reproduction).
class IdealMac final : public Mac {
 public:
  IdealMac(Medium& medium, NodeId self) : medium_(medium), self_(self) {}
  void send(Packet packet) override { medium_.transmit(self_, packet); }

 private:
  Medium& medium_;
  NodeId self_;
};

struct CsmaParams {
  std::uint32_t maxAttempts = 6;
  std::uint32_t minBackoffExponent = 3;  ///< 802.15.4 macMinBE
  std::uint32_t maxBackoffExponent = 5;  ///< 802.15.4 macMaxBE
  sim::Time backoffUnit = sim::Time::microseconds(320);  ///< aUnitBackoffPeriod
};

/// Unslotted CSMA/CA in the style of 802.15.4: sense the channel, transmit
/// if idle, otherwise back off a random number of backoff units with a
/// growing window; give up after maxAttempts.
class CsmaMac final : public Mac {
 public:
  CsmaMac(Medium& medium, sim::Simulator& simulator, NodeId self, Rng rng,
          CsmaParams params = {});

  void send(Packet packet) override;
  std::uint64_t drops() const override { return drops_; }

 private:
  void attempt(Packet packet, std::uint32_t tries);

  Medium& medium_;
  sim::Simulator& simulator_;
  NodeId self_;
  Rng rng_;
  CsmaParams params_;
  std::uint64_t drops_ = 0;
};

}  // namespace wmsn::net
