#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "net/medium.hpp"
#include "net/metrics.hpp"
#include "net/packet.hpp"
#include "obs/packet_trace.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace wmsn::net {

/// What to do when a frame arrives at a full transmit queue.
enum class QueuePolicy : std::uint8_t {
  kDropTail,    ///< reject the newcomer (classic drop-tail)
  kDropOldest,  ///< evict the head to make room (freshest-data-first)
};

std::string toString(QueuePolicy policy);

/// Finite transmit-queue discipline. capacity == 0 keeps the legacy
/// behaviour: every send() contends for the channel independently with no
/// explicit buffer (and thus no drops), exactly as the seed experiments ran.
struct QueueParams {
  std::size_t capacity = 0;  ///< waiting slots behind the frame in service
  QueuePolicy policy = QueuePolicy::kDropTail;
};

/// Link-layer send discipline for one node.
class Mac {
 public:
  virtual ~Mac() = default;
  virtual void send(Packet packet) = 0;
  /// Frames abandoned after exhausting channel-access attempts.
  virtual std::uint64_t drops() const { return 0; }
  /// Frames rejected/evicted by a full finite transmit queue.
  virtual std::uint64_t queueDrops() const { return 0; }
  /// Deepest the transmit queue ever got (waiting frames, excluding the one
  /// in service).
  virtual std::size_t peakQueueDepth() const { return 0; }
  /// Time integral of queue depth in depth-seconds up to `now` — divide by
  /// elapsed time for the time-weighted mean depth.
  virtual double queueDepthIntegral(sim::Time now) const {
    (void)now;
    return 0.0;
  }
};

/// Transmits immediately — an idealised contention-free channel. Used by
/// analytical experiments where MAC noise would obscure the routing effect
/// (e.g. the exact Fig. 2 hop-count reproduction).
class IdealMac final : public Mac {
 public:
  IdealMac(Medium& medium, NodeId self) : medium_(medium), self_(self) {}
  void send(Packet packet) override { medium_.transmit(self_, packet); }

 private:
  Medium& medium_;
  NodeId self_;
};

struct CsmaParams {
  std::uint32_t maxAttempts = 6;
  std::uint32_t minBackoffExponent = 3;  ///< 802.15.4 macMinBE
  std::uint32_t maxBackoffExponent = 5;  ///< 802.15.4 macMaxBE
  sim::Time backoffUnit = sim::Time::microseconds(320);  ///< aUnitBackoffPeriod
};

/// Unslotted CSMA/CA in the style of 802.15.4: sense the channel, transmit
/// if idle, otherwise back off a random number of backoff units with a
/// growing window; give up after maxAttempts.
///
/// With a finite queue configured (QueueParams::capacity > 0) the MAC
/// serves one frame at a time — jitter, backoff, then the frame's air time
/// — while later sends wait in a bounded buffer; overflow drops per the
/// queue policy and is reported to TrafficStats.
class CsmaMac final : public Mac {
 public:
  CsmaMac(Medium& medium, sim::Simulator& simulator, NodeId self, Rng rng,
          CsmaParams params = {}, QueueParams queue = {},
          TrafficStats* stats = nullptr, obs::PacketTracer* tracer = nullptr);

  void send(Packet packet) override;
  std::uint64_t drops() const override { return drops_; }
  std::uint64_t queueDrops() const override { return queueDrops_; }
  std::size_t peakQueueDepth() const override { return peakDepth_; }
  double queueDepthIntegral(sim::Time now) const override;

 private:
  void attempt(Packet packet, std::uint32_t tries);
  void serve(Packet packet);
  void serveNext();
  void noteDepthChange();

  Medium& medium_;
  sim::Simulator& simulator_;
  NodeId self_;
  Rng rng_;
  CsmaParams params_;
  QueueParams queue_;
  TrafficStats* stats_;
  obs::PacketTracer* tracer_;

  std::deque<Packet> waiting_;
  bool busy_ = false;
  std::uint64_t drops_ = 0;
  std::uint64_t queueDrops_ = 0;
  std::size_t peakDepth_ = 0;
  double depthIntegral_ = 0.0;  ///< depth-seconds accumulated so far
  sim::Time lastDepthChange_ = sim::Time::zero();
};

}  // namespace wmsn::net
