#pragma once

#include <cmath>

namespace wmsn::net {

/// 2-D deployment-plane position, in metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

inline double distanceSq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) {
  return std::sqrt(distanceSq(a, b));
}

}  // namespace wmsn::net
