#include "net/metrics.hpp"

namespace wmsn::net {

void TrafficStats::onGenerated(std::uint64_t uid, NodeId /*origin*/,
                               sim::Time when) {
  ++generated_;
  genTime_.emplace(uid, when);
}

bool TrafficStats::onDelivered(std::uint64_t uid, NodeId origin,
                               NodeId gateway, std::uint32_t hops,
                               sim::Time when) {
  if (!deliveredUids_.insert(uid).second) {
    ++duplicateDeliveries_;
    return false;
  }
  hops_.add(static_cast<double>(hops));
  auto it = genTime_.find(uid);
  if (it != genTime_.end())
    latency_.add((when - it->second).seconds());
  ++perGateway_[gateway];
  if (onFirstDelivery_) onFirstDelivery_(uid, origin, gateway, when);
  return true;
}

void TrafficStats::onTransmit(PacketKind kind, std::size_t bytes) {
  ++framesByKind_[kind];
  if (kind != PacketKind::kData) {
    ++controlFrames_;
    controlBytes_ += bytes;
  } else {
    ++dataFrames_;
    dataBytes_ += bytes;
  }
}

double TrafficStats::deliveryRatio() const {
  if (generated_ == 0) return 1.0;
  return static_cast<double>(delivered()) / static_cast<double>(generated_);
}

void TrafficStats::reset() { *this = TrafficStats{}; }

}  // namespace wmsn::net
