#include "net/mobility.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace wmsn::net {

std::vector<std::size_t> GatewaySchedule::movedGateways(std::uint32_t round) {
  std::vector<std::size_t> moved;
  if (round == 0) return moved;
  for (std::size_t g = 0; g < gatewayCount(); ++g)
    if (placeOf(g, round) != placeOf(g, round - 1)) moved.push_back(g);
  return moved;
}

StaticSchedule::StaticSchedule(std::vector<std::size_t> places,
                               std::size_t placeCount)
    : places_(std::move(places)), placeCount_(placeCount) {
  for (std::size_t p : places_) WMSN_REQUIRE(p < placeCount_);
}

std::size_t StaticSchedule::placeOf(std::size_t gateway,
                                    std::uint32_t /*round*/) {
  WMSN_REQUIRE(gateway < places_.size());
  return places_[gateway];
}

ScriptedSchedule::ScriptedSchedule(
    std::vector<std::vector<std::size_t>> rounds, std::size_t placeCount)
    : rounds_(std::move(rounds)), placeCount_(placeCount) {
  WMSN_REQUIRE(!rounds_.empty());
  const std::size_t m = rounds_.front().size();
  for (const auto& r : rounds_) {
    WMSN_REQUIRE_MSG(r.size() == m, "all rounds must place every gateway");
    for (std::size_t p : r) WMSN_REQUIRE(p < placeCount_);
  }
}

std::size_t ScriptedSchedule::placeOf(std::size_t gateway,
                                      std::uint32_t round) {
  // Past the script's end the last assignment holds.
  const auto& r = rounds_[std::min<std::size_t>(round, rounds_.size() - 1)];
  WMSN_REQUIRE(gateway < r.size());
  return r[gateway];
}

std::size_t ScriptedSchedule::gatewayCount() const {
  return rounds_.front().size();
}

RotatingRandomSchedule::RotatingRandomSchedule(std::size_t gatewayCount,
                                               std::size_t placeCount,
                                               std::uint64_t seed)
    : placeCount_(placeCount), rng_(seed) {
  WMSN_REQUIRE(gatewayCount >= 1);
  WMSN_REQUIRE_MSG(placeCount >= gatewayCount,
                   "need at least as many feasible places as gateways");
  // Initial placement: first m places (deterministic; matches Table 1's
  // "first round at A, B, C").
  current_.resize(gatewayCount);
  for (std::size_t g = 0; g < gatewayCount; ++g) current_[g] = g;
  history_.push_back(current_);
}

void RotatingRandomSchedule::advanceTo(std::uint32_t round) {
  while (computedRound_ < round) {
    ++computedRound_;
    const std::size_t mover = (computedRound_ - 1) % current_.size();
    // Choose a place not currently occupied by any gateway.
    std::vector<std::size_t> free;
    for (std::size_t p = 0; p < placeCount_; ++p)
      if (std::find(current_.begin(), current_.end(), p) == current_.end())
        free.push_back(p);
    // wmsn:fixed-draws — the free-place set is a pure function of the
    // schedule's own history, so the skip-when-full draw replays exactly.
    if (!free.empty()) current_[mover] = free[rng_.index(free.size())];
    history_.push_back(current_);
  }
}

std::size_t RotatingRandomSchedule::placeOf(std::size_t gateway,
                                            std::uint32_t round) {
  WMSN_REQUIRE(gateway < current_.size());
  advanceTo(round);
  return history_[round][gateway];
}

}  // namespace wmsn::net
