#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace wmsn::net {

/// Network-wide traffic accounting, fed by the medium and the routing
/// protocols. Delivery is deduplicated by packet uid (flooding delivers many
/// copies; the application counts a reading once).
class TrafficStats {
 public:
  void onGenerated(std::uint64_t uid, NodeId origin, sim::Time when);

  /// Records a delivery at a gateway. Returns true if this uid was delivered
  /// for the first time.
  bool onDelivered(std::uint64_t uid, NodeId origin, NodeId gateway,
                   std::uint32_t hops, sim::Time when);

  /// A frame left some radio; control kinds count as routing overhead.
  void onTransmit(PacketKind kind, std::size_t bytes);

  void onMacDrop() { ++macDrops_; }
  /// A frame was rejected or evicted by `node`'s full finite transmit queue
  /// — the congestion-loss signal of the workload engine's capacity
  /// experiments, attributed per node so the time-series recorder can show
  /// where the congestion sits.
  void onQueueDrop(NodeId node) {
    ++queueDrops_;
    ++queueDropsByNode_[node];
  }
  /// `node`'s transmit queue grew to `depth` waiting frames. Tracks the
  /// all-time and the since-last-round-mark peak per node.
  void onQueueDepth(NodeId node, std::size_t depth) {
    std::size_t& peak = peakQueueDepthByNode_[node];
    if (depth > peak) peak = depth;
    std::size_t& roundPeak = roundPeakQueueDepthByNode_[node];
    if (depth > roundPeak) roundPeak = depth;
  }
  void onCollision() { ++collisions_; }

  std::uint64_t generated() const { return generated_; }
  std::uint64_t delivered() const { return deliveredUids_.size(); }
  double deliveryRatio() const;

  std::uint64_t controlFrames() const { return controlFrames_; }
  std::uint64_t dataFrames() const { return dataFrames_; }
  std::uint64_t controlBytes() const { return controlBytes_; }
  std::uint64_t dataBytes() const { return dataBytes_; }
  std::uint64_t macDrops() const { return macDrops_; }
  std::uint64_t queueDrops() const { return queueDrops_; }
  std::uint64_t collisions() const { return collisions_; }
  /// Per-node congestion views (ordered by node id for deterministic
  /// export). Nodes that never dropped / never queued are absent.
  const std::map<NodeId, std::uint64_t>& queueDropsByNode() const {
    return queueDropsByNode_;
  }
  const std::map<NodeId, std::size_t>& peakQueueDepthByNode() const {
    return peakQueueDepthByNode_;
  }
  /// Peak depth per node since the last markRound() — the per-round
  /// queue-depth histogram's input.
  const std::map<NodeId, std::size_t>& roundPeakQueueDepthByNode() const {
    return roundPeakQueueDepthByNode_;
  }
  /// Starts a new per-round accounting window (round boundary).
  void markRound() { roundPeakQueueDepthByNode_.clear(); }
  /// Deliveries of an already-delivered uid — what a replay attack inflates
  /// when the protocol lacks freshness counters.
  std::uint64_t duplicateDeliveries() const { return duplicateDeliveries_; }

  /// Hop counts of first deliveries.
  const SampleStats& hopStats() const { return hops_; }
  /// End-to-end latency (generation → first gateway delivery), seconds.
  const SampleStats& latencyStats() const { return latency_; }
  /// First-delivery count per gateway — the load-balance view (§4.3).
  const std::map<NodeId, std::uint64_t>& perGatewayDeliveries() const {
    return perGateway_;
  }

  /// Frames transmitted per packet kind — the overhead breakdown.
  const std::map<PacketKind, std::uint64_t>& framesByKind() const {
    return framesByKind_;
  }

  void reset();

  /// Invoked on each FIRST delivery of a uid — the hook the three-tier
  /// WMSN stack uses to hand the reading from the sensor tier to the mesh
  /// tier at the receiving gateway.
  using DeliveryCallback = std::function<void(
      std::uint64_t uid, NodeId origin, NodeId gateway, sim::Time when)>;
  void setDeliveryCallback(DeliveryCallback cb) {
    onFirstDelivery_ = std::move(cb);
  }

 private:
  DeliveryCallback onFirstDelivery_;
  std::uint64_t generated_ = 0;
  std::uint64_t controlFrames_ = 0;
  std::uint64_t dataFrames_ = 0;
  std::uint64_t controlBytes_ = 0;
  std::uint64_t dataBytes_ = 0;
  std::uint64_t macDrops_ = 0;
  std::uint64_t queueDrops_ = 0;
  std::uint64_t collisions_ = 0;
  std::map<NodeId, std::uint64_t> queueDropsByNode_;
  std::map<NodeId, std::size_t> peakQueueDepthByNode_;
  std::map<NodeId, std::size_t> roundPeakQueueDepthByNode_;
  std::uint64_t duplicateDeliveries_ = 0;
  std::unordered_map<std::uint64_t, sim::Time> genTime_;
  std::unordered_set<std::uint64_t> deliveredUids_;
  SampleStats hops_;
  SampleStats latency_;
  std::map<NodeId, std::uint64_t> perGateway_;
  std::map<PacketKind, std::uint64_t> framesByKind_;
};

}  // namespace wmsn::net
